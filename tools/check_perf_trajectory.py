#!/usr/bin/env python3
"""CI perf-trajectory gate for bench/fleet_scale.

Compares a freshly generated BENCH_fleet_scale.json against the committed
copy and fails when any run at the gated tenant count regressed by more
than --max-ratio in wall-clock. The threshold is deliberately tolerant
(shared CI runners are noisy); it exists to catch "something went quadratic
again", not single-digit-percent drift. Event counts are deterministic per
(scenario, seed), so a changed event count is reported too — that is a
behavior change, not noise, but it only warns here because the golden tests
already pin behavior.

When both files carry a "cluster" block for the same (hosts, tenants)
configuration, each placement policy's wall-clock is gated with the same
ratio, so regressions isolated to the cluster path (placement, per-shard
accounting) are caught too, not just the single-host engine. Likewise for
the "autoscale" block (fleet_scale --autoscale): the autoscaled storm's
wall-clock is gated at the committed (hosts, max_hosts, tenants)
configuration, and changed event counts / admission totals are reported
as behavior changes.

Usage:
  check_perf_trajectory.py FRESH.json COMMITTED.json \
      [--tenants 1000] [--max-ratio 3.0]

Exit codes: 0 ok, 1 regression or missing runs, 2 bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_perf_trajectory: cannot read {path}: {err}",
              file=sys.stderr)
        sys.exit(2)


def runs_at(doc, tenants):
    return {
        r["scenario"]: r
        for r in doc.get("runs", [])
        if r.get("tenants") == tenants
    }


def check_cluster(fresh_doc, committed_doc, max_ratio):
    """Gate the per-policy cluster sweep; returns True on failure."""
    base = committed_doc.get("cluster")
    fresh = fresh_doc.get("cluster")
    if base is None:
        return False  # nothing committed to gate against
    if fresh is None:
        print("  cluster sweep     MISSING from fresh results")
        return True
    config = (base.get("hosts"), base.get("tenants"))
    if (fresh.get("hosts"), fresh.get("tenants")) != config:
        # A different-shaped local run (e.g. --tenants 500 --hosts 2) is not
        # comparable; warn without failing. CI pins the matching
        # configuration, so there this branch never triggers.
        print(f"  cluster sweep     config mismatch: committed "
              f"hosts={base.get('hosts')} tenants={base.get('tenants')}, "
              f"fresh hosts={fresh.get('hosts')} "
              f"tenants={fresh.get('tenants')} -- skipped, not gated")
        return False
    failed = False
    print(f"cluster sweep at {config[1]} tenants across {config[0]} hosts:")
    fresh_runs = {r["policy"]: r for r in fresh.get("runs", [])}
    for run in base.get("runs", []):
        policy = run["policy"]
        fresh_run = fresh_runs.get(policy)
        if fresh_run is None:
            print(f"  {policy:<18} MISSING from fresh results")
            failed = True
            continue
        ratio = (fresh_run["wall_ms"] / run["wall_ms"]
                 if run["wall_ms"] > 0 else 0.0)
        verdict = "ok" if ratio <= max_ratio else "REGRESSION"
        print(f"  {policy:<18} committed {run['wall_ms']:8.1f} ms   "
              f"fresh {fresh_run['wall_ms']:8.1f} ms   ratio {ratio:4.2f}x   "
              f"{verdict}")
        if ratio > max_ratio:
            failed = True
        if fresh_run.get("events") != run.get("events"):
            print(f"  {policy:<18} note: event count changed "
                  f"{run.get('events')} -> {fresh_run.get('events')} "
                  f"(cluster behavior change — single-host goldens do not "
                  f"cover this)")
    return failed


def check_autoscale(fresh_doc, committed_doc, max_ratio):
    """Gate the autoscaled storm run; returns True on failure."""
    base = committed_doc.get("autoscale")
    fresh = fresh_doc.get("autoscale")
    if base is None:
        return False  # nothing committed to gate against
    if fresh is None:
        print("  autoscale run     MISSING from fresh results")
        return True
    config = (base.get("hosts"), base.get("max_hosts"), base.get("tenants"))
    fresh_config = (fresh.get("hosts"), fresh.get("max_hosts"),
                    fresh.get("tenants"))
    if fresh_config != config:
        print(f"  autoscale run     config mismatch: committed "
              f"{config}, fresh {fresh_config} -- skipped, not gated")
        return False
    base_run = base.get("run", {})
    fresh_run = fresh.get("run", {})
    # Schema drift (renamed key, empty run block) on either side must fail
    # loudly, not compute a 0.00x ratio that reads as "ok".
    if fresh_run.get("wall_ms", 0.0) <= 0.0:
        print("  autoscale run     fresh results carry no wall_ms")
        return True
    if base_run.get("wall_ms", 0.0) <= 0.0:
        print("  autoscale run     committed results carry no wall_ms")
        return True
    ratio = fresh_run["wall_ms"] / base_run["wall_ms"]
    verdict = "ok" if ratio <= max_ratio else "REGRESSION"
    print(f"autoscale storm at {config[2]} tenants, "
          f"{config[0]} -> {config[1]} hosts:")
    print(f"  wall              committed {base_run.get('wall_ms', 0.0):8.1f} ms   "
          f"fresh {fresh_run.get('wall_ms', 0.0):8.1f} ms   ratio {ratio:4.2f}x   "
          f"{verdict}")
    for key in ("events", "tenants_admitted", "final_hosts"):
        if fresh_run.get(key) != base_run.get(key):
            print(f"  note: {key} changed {base_run.get(key)} -> "
                  f"{fresh_run.get(key)} (autoscale behavior change)")
    return ratio > max_ratio


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh", help="JSON from the CI run")
    parser.add_argument("committed", help="checked-in trajectory JSON")
    parser.add_argument("--tenants", type=int, default=1000,
                        help="tenant count to gate on (default 1000)")
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when fresh/committed wall_ms exceeds this")
    args = parser.parse_args()

    fresh_doc = load(args.fresh)
    committed_doc = load(args.committed)
    fresh = runs_at(fresh_doc, args.tenants)
    committed = runs_at(committed_doc, args.tenants)
    if not committed:
        print(f"check_perf_trajectory: committed file has no runs at "
              f"{args.tenants} tenants", file=sys.stderr)
        return 2

    failed = False
    print(f"perf trajectory at {args.tenants} tenants "
          f"(gate: {args.max_ratio:.1f}x):")
    for scenario, base in sorted(committed.items()):
        run = fresh.get(scenario)
        if run is None:
            print(f"  {scenario:<18} MISSING from fresh results")
            failed = True
            continue
        ratio = run["wall_ms"] / base["wall_ms"] if base["wall_ms"] > 0 else 0.0
        verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
        print(f"  {scenario:<18} committed {base['wall_ms']:8.1f} ms   "
              f"fresh {run['wall_ms']:8.1f} ms   ratio {ratio:4.2f}x   "
              f"{verdict}")
        if ratio > args.max_ratio:
            failed = True
        if run.get("events") != base.get("events"):
            print(f"  {scenario:<18} note: event count changed "
                  f"{base.get('events')} -> {run.get('events')} "
                  f"(behavior change, pinned elsewhere)")
    if check_cluster(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    if check_autoscale(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
