#!/usr/bin/env python3
"""CI perf-trajectory gate for bench/fleet_scale.

Compares a freshly generated BENCH_fleet_scale.json against the committed
copy and fails when any run at the gated tenant count regressed by more
than --max-ratio in wall-clock, or when its events_per_sec throughput fell
below 1/--max-ratio of the committed value (the floor catches "each event
got slower" even when a run also processes fewer events). The threshold is
deliberately tolerant (shared CI runners are noisy); it exists to catch
"something went quadratic again", not single-digit-percent drift. Event
counts are deterministic per (scenario, seed), so a changed event count is
reported too — that is a behavior change, not noise, but it only warns
here because the golden tests already pin behavior.

Cluster sweeps are gated per configuration: schema_version 4 carries a
"clusters" list (e.g. the 10k-tenant/4-host storm and the 100k-tenant/
64-host storm), schema_version 3 a single "cluster" object — both shapes
are accepted on either side. Every committed configuration that has a
matching fresh (hosts, tenants) block is gated per policy on wall-clock
and the events_per_sec floor; a fresh file with no cluster blocks at all
fails loudly, while a shape-mismatched local run only warns. Likewise for
the "autoscale" block (fleet_scale --autoscale): the autoscaled storm's
wall-clock is gated at the committed (hosts, max_hosts, tenants)
configuration, and changed event counts / admission totals are reported
as behavior changes.

schema_version 5 adds a "parallel" block (fleet_scale --threads): the
sequential-vs-parallel sweep at the largest cluster shape. It is gated
per thread count — only a fresh run at the same (hosts, tenants, policy)
configuration and the same thread count is compared, on wall-clock ratio
and the events_per_sec floor. A fresh file without the block (a local run
that skipped --threads) warns and skips; CI always passes the matching
--threads list, so the gate is live where it matters.

schema_version 6 adds a "chaos" block (fleet_scale --chaos): the
crash-recovery storm — a mid-ramp host crash on a RAM-tight autoscaled
fleet — with its recovery SLOs. Gated config-matched at the committed
(hosts, max_hosts, tenants) on wall-clock ratio and the events_per_sec
floor; changed event counts or recovery outcomes (victims, re-admission
fraction, time-to-re-place p99) are reported as behavior changes, since
the chaos suite's determinism tests pin them separately.

schema_version 7 adds a "federation" list (fleet_scale --cells): the
federation storm routed across K cluster cells, one entry per
(cells, hosts_per_cell, tenants) shape with per-routing-policy runs.
Gated config-matched per routing policy on wall-clock ratio and the
events_per_sec floor; changed event counts or inter-cell spill totals
are reported as behavior changes (the federation determinism tests pin
the reports themselves).

schema_version 8 adds a "programs" block (fleet_scale --programs): the
program storm, where most tenants interpret a built-in syscall program
over the HostKernel instead of drawing statistical phases. Gated
config-matched at the committed (hosts, tenants) on wall-clock ratio
and the events_per_sec floor; changed event counts, op totals, worst
per-class op p99, or a flipped SLO verdict are reported as behavior
changes (the program determinism tests pin the reports).

schema_version 9 adds a "degraded" block (fleet_scale --degraded): the
committed degrade storm (disk degrade + KSM unmerge pressure + partial
partition + mid-pressure crash over interpreted programs) with per-op
retry/backoff on, plus a no-retry control over the same fault schedule.
Gated config-matched at the committed (hosts, tenants) on wall-clock
ratio and the events_per_sec floor, and hard-gated on the graceful-
degradation differential itself: the retry arm must keep strictly fewer
op give-ups and strictly fewer permanently lost tenants than the
control, or the gate fails — that differential is the block's reason to
exist, not a tolerance band. Changed counters otherwise warn as behavior
changes (the degraded determinism tests pin the reports).

Usage:
  check_perf_trajectory.py FRESH.json COMMITTED.json \
      [--tenants 1000] [--max-ratio 3.0]

Exit codes: 0 ok, 1 regression or missing runs, 2 bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_perf_trajectory: cannot read {path}: {err}",
              file=sys.stderr)
        sys.exit(2)


def runs_at(doc, tenants):
    return {
        r["scenario"]: r
        for r in doc.get("runs", [])
        if r.get("tenants") == tenants
    }


def throughput_floor_failed(label, base_run, fresh_run, max_ratio):
    """events_per_sec floor: fresh must stay above committed / max_ratio.
    Returns True on failure; silently passes when either side lacks the
    field (schema_version < 4 inputs)."""
    base_eps = base_run.get("events_per_sec")
    fresh_eps = fresh_run.get("events_per_sec")
    if not base_eps or fresh_eps is None:
        return False
    floor = base_eps / max_ratio
    if fresh_eps >= floor:
        return False
    print(f"  {label:<18} THROUGHPUT REGRESSION: events/sec "
          f"{base_eps:.0f} -> {fresh_eps:.0f} "
          f"(floor {floor:.0f} at {max_ratio:.1f}x)")
    return True


def cluster_blocks(doc):
    """Cluster sweep blocks from either schema: v4 "clusters" list or the
    v3 single "cluster" object."""
    blocks = doc.get("clusters")
    if blocks is None:
        single = doc.get("cluster")
        blocks = [single] if single is not None else []
    return blocks


def check_clusters(fresh_doc, committed_doc, max_ratio):
    """Gate every committed cluster sweep config; returns True on failure."""
    base_blocks = cluster_blocks(committed_doc)
    if not base_blocks:
        return False  # nothing committed to gate against
    fresh_blocks = cluster_blocks(fresh_doc)
    if not fresh_blocks:
        print("  cluster sweeps    MISSING from fresh results")
        return True
    fresh_by_config = {(b.get("hosts"), b.get("tenants")): b
                       for b in fresh_blocks}
    failed = False
    for base in base_blocks:
        config = (base.get("hosts"), base.get("tenants"))
        fresh = fresh_by_config.get(config)
        if fresh is None:
            # A different-shaped local run (e.g. --tenants 500 --hosts 2) is
            # not comparable; warn without failing. CI pins the matching
            # configurations, so there this branch never triggers.
            print(f"  cluster sweep     no fresh block for committed "
                  f"hosts={config[0]} tenants={config[1]} -- skipped, "
                  f"not gated")
            continue
        print(f"cluster sweep at {config[1]} tenants across "
              f"{config[0]} hosts:")
        fresh_runs = {r["policy"]: r for r in fresh.get("runs", [])}
        for run in base.get("runs", []):
            policy = run["policy"]
            fresh_run = fresh_runs.get(policy)
            if fresh_run is None:
                print(f"  {policy:<18} MISSING from fresh results")
                failed = True
                continue
            ratio = (fresh_run["wall_ms"] / run["wall_ms"]
                     if run["wall_ms"] > 0 else 0.0)
            verdict = "ok" if ratio <= max_ratio else "REGRESSION"
            print(f"  {policy:<18} committed {run['wall_ms']:8.1f} ms   "
                  f"fresh {fresh_run['wall_ms']:8.1f} ms   "
                  f"ratio {ratio:4.2f}x   {verdict}")
            if ratio > max_ratio:
                failed = True
            if throughput_floor_failed(policy, run, fresh_run, max_ratio):
                failed = True
            if fresh_run.get("events") != run.get("events"):
                print(f"  {policy:<18} note: event count changed "
                      f"{run.get('events')} -> {fresh_run.get('events')} "
                      f"(cluster behavior change — single-host goldens do "
                      f"not cover this)")
    return failed


def check_parallel(fresh_doc, committed_doc, max_ratio):
    """Gate the sequential-vs-parallel sweep; returns True on failure.

    Only thread-count-matched runs at the same (hosts, tenants, policy)
    configuration are compared — a threads=8 wall on a saturated runner
    must never be judged against a committed threads=1 number or vice
    versa."""
    base = committed_doc.get("parallel")
    if base is None:
        return False  # nothing committed to gate against
    fresh = fresh_doc.get("parallel")
    if fresh is None:
        print("  parallel sweep    no fresh block (run fleet_scale with "
              "--threads) -- skipped, not gated")
        return False
    config = (base.get("hosts"), base.get("tenants"), base.get("policy"))
    fresh_config = (fresh.get("hosts"), fresh.get("tenants"),
                    fresh.get("policy"))
    if fresh_config != config:
        print(f"  parallel sweep    config mismatch: committed {config}, "
              f"fresh {fresh_config} -- skipped, not gated")
        return False
    print(f"parallel sweep at {config[1]} tenants across {config[0]} hosts "
          f"({config[2]}):")
    fresh_runs = {r.get("threads"): r for r in fresh.get("runs", [])}
    failed = False
    for run in base.get("runs", []):
        threads = run.get("threads")
        label = f"threads={threads}"
        fresh_run = fresh_runs.get(threads)
        if fresh_run is None:
            print(f"  {label:<18} no thread-count-matched fresh run -- "
                  f"skipped, not gated")
            continue
        ratio = (fresh_run["wall_ms"] / run["wall_ms"]
                 if run["wall_ms"] > 0 else 0.0)
        verdict = "ok" if ratio <= max_ratio else "REGRESSION"
        print(f"  {label:<18} committed {run['wall_ms']:8.1f} ms   "
              f"fresh {fresh_run['wall_ms']:8.1f} ms   "
              f"ratio {ratio:4.2f}x   {verdict}")
        if ratio > max_ratio:
            failed = True
        if throughput_floor_failed(label, run, fresh_run, max_ratio):
            failed = True
        if fresh_run.get("events") != run.get("events"):
            print(f"  {label:<18} note: event count changed "
                  f"{run.get('events')} -> {fresh_run.get('events')} "
                  f"(behavior change — the parallel engine must process "
                  f"exactly the sequential event stream)")
    return failed


def check_autoscale(fresh_doc, committed_doc, max_ratio):
    """Gate the autoscaled storm run; returns True on failure."""
    base = committed_doc.get("autoscale")
    fresh = fresh_doc.get("autoscale")
    if base is None:
        return False  # nothing committed to gate against
    if fresh is None:
        print("  autoscale run     MISSING from fresh results")
        return True
    config = (base.get("hosts"), base.get("max_hosts"), base.get("tenants"))
    fresh_config = (fresh.get("hosts"), fresh.get("max_hosts"),
                    fresh.get("tenants"))
    if fresh_config != config:
        print(f"  autoscale run     config mismatch: committed "
              f"{config}, fresh {fresh_config} -- skipped, not gated")
        return False
    base_run = base.get("run", {})
    fresh_run = fresh.get("run", {})
    # Schema drift (renamed key, empty run block) on either side must fail
    # loudly, not compute a 0.00x ratio that reads as "ok".
    if fresh_run.get("wall_ms", 0.0) <= 0.0:
        print("  autoscale run     fresh results carry no wall_ms")
        return True
    if base_run.get("wall_ms", 0.0) <= 0.0:
        print("  autoscale run     committed results carry no wall_ms")
        return True
    ratio = fresh_run["wall_ms"] / base_run["wall_ms"]
    verdict = "ok" if ratio <= max_ratio else "REGRESSION"
    print(f"autoscale storm at {config[2]} tenants, "
          f"{config[0]} -> {config[1]} hosts:")
    print(f"  wall              committed {base_run.get('wall_ms', 0.0):8.1f} ms   "
          f"fresh {fresh_run.get('wall_ms', 0.0):8.1f} ms   ratio {ratio:4.2f}x   "
          f"{verdict}")
    for key in ("events", "tenants_admitted", "final_hosts"):
        if fresh_run.get(key) != base_run.get(key):
            print(f"  note: {key} changed {base_run.get(key)} -> "
                  f"{fresh_run.get(key)} (autoscale behavior change)")
    return ratio > max_ratio


def check_chaos(fresh_doc, committed_doc, max_ratio):
    """Gate the crash-recovery chaos run; returns True on failure."""
    base = committed_doc.get("chaos")
    fresh = fresh_doc.get("chaos")
    if base is None:
        return False  # nothing committed to gate against
    if fresh is None:
        print("  chaos run         MISSING from fresh results")
        return True
    config = (base.get("hosts"), base.get("max_hosts"), base.get("tenants"))
    fresh_config = (fresh.get("hosts"), fresh.get("max_hosts"),
                    fresh.get("tenants"))
    if fresh_config != config:
        print(f"  chaos run         config mismatch: committed "
              f"{config}, fresh {fresh_config} -- skipped, not gated")
        return False
    base_run = base.get("run", {})
    fresh_run = fresh.get("run", {})
    if fresh_run.get("wall_ms", 0.0) <= 0.0:
        print("  chaos run         fresh results carry no wall_ms")
        return True
    if base_run.get("wall_ms", 0.0) <= 0.0:
        print("  chaos run         committed results carry no wall_ms")
        return True
    ratio = fresh_run["wall_ms"] / base_run["wall_ms"]
    verdict = "ok" if ratio <= max_ratio else "REGRESSION"
    print(f"chaos crash-recovery at {config[2]} tenants, "
          f"{config[0]} -> {config[1]} hosts:")
    print(f"  wall              committed {base_run.get('wall_ms', 0.0):8.1f} ms   "
          f"fresh {fresh_run.get('wall_ms', 0.0):8.1f} ms   ratio {ratio:4.2f}x   "
          f"{verdict}")
    failed = ratio > max_ratio
    if throughput_floor_failed("chaos", base_run, fresh_run, max_ratio):
        failed = True
    if fresh_run.get("events") != base_run.get("events"):
        print(f"  note: events changed {base_run.get('events')} -> "
              f"{fresh_run.get('events')} (chaos behavior change — the "
              f"chaos determinism tests pin the report, not this gate)")
    base_rec = base.get("recovery", {})
    fresh_rec = fresh.get("recovery", {})
    for key in ("victims", "readmitted", "lost", "readmission_fraction",
                "replace_p99_ms", "scale_outs"):
        if fresh_rec.get(key) != base_rec.get(key):
            print(f"  note: {key} changed {base_rec.get(key)} -> "
                  f"{fresh_rec.get(key)} (recovery behavior change)")
    return failed


def check_programs(fresh_doc, committed_doc, max_ratio):
    """Gate the syscall-program storm run; returns True on failure."""
    base = committed_doc.get("programs")
    fresh = fresh_doc.get("programs")
    if base is None:
        return False  # nothing committed to gate against
    if fresh is None:
        print("  programs run      MISSING from fresh results")
        return True
    config = (base.get("hosts"), base.get("tenants"))
    fresh_config = (fresh.get("hosts"), fresh.get("tenants"))
    if fresh_config != config:
        print(f"  programs run      config mismatch: committed "
              f"{config}, fresh {fresh_config} -- skipped, not gated")
        return False
    base_run = base.get("run", {})
    fresh_run = fresh.get("run", {})
    if fresh_run.get("wall_ms", 0.0) <= 0.0:
        print("  programs run      fresh results carry no wall_ms")
        return True
    if base_run.get("wall_ms", 0.0) <= 0.0:
        print("  programs run      committed results carry no wall_ms")
        return True
    ratio = fresh_run["wall_ms"] / base_run["wall_ms"]
    verdict = "ok" if ratio <= max_ratio else "REGRESSION"
    print(f"program storm at {config[1]} tenants across {config[0]} hosts:")
    print(f"  wall              committed {base_run.get('wall_ms', 0.0):8.1f} ms   "
          f"fresh {fresh_run.get('wall_ms', 0.0):8.1f} ms   ratio {ratio:4.2f}x   "
          f"{verdict}")
    failed = ratio > max_ratio
    if throughput_floor_failed("programs", base_run, fresh_run, max_ratio):
        failed = True
    if fresh_run.get("events") != base_run.get("events"):
        print(f"  note: events changed {base_run.get('events')} -> "
              f"{fresh_run.get('events')} (program behavior change — the "
              f"program determinism tests pin the report, not this gate)")
    base_ops = base.get("ops", {})
    fresh_ops = fresh.get("ops", {})
    for key in ("program_tenants", "total_ops", "op_p99_worst_ms",
                "slo_pass"):
        if fresh_ops.get(key) != base_ops.get(key):
            print(f"  note: {key} changed {base_ops.get(key)} -> "
                  f"{fresh_ops.get(key)} (program behavior change)")
    return failed


def check_degraded(fresh_doc, committed_doc, max_ratio):
    """Gate the degrade storm + retry differential; returns True on
    failure."""
    base = committed_doc.get("degraded")
    fresh = fresh_doc.get("degraded")
    if base is None:
        return False  # nothing committed to gate against
    if fresh is None:
        print("  degraded run      MISSING from fresh results")
        return True
    config = (base.get("hosts"), base.get("tenants"))
    fresh_config = (fresh.get("hosts"), fresh.get("tenants"))
    if fresh_config != config:
        print(f"  degraded run      config mismatch: committed "
              f"{config}, fresh {fresh_config} -- skipped, not gated")
        return False
    base_run = base.get("run", {})
    fresh_run = fresh.get("run", {})
    if fresh_run.get("wall_ms", 0.0) <= 0.0:
        print("  degraded run      fresh results carry no wall_ms")
        return True
    if base_run.get("wall_ms", 0.0) <= 0.0:
        print("  degraded run      committed results carry no wall_ms")
        return True
    ratio = fresh_run["wall_ms"] / base_run["wall_ms"]
    verdict = "ok" if ratio <= max_ratio else "REGRESSION"
    print(f"degrade storm at {config[1]} tenants across {config[0]} hosts:")
    print(f"  wall              committed {base_run.get('wall_ms', 0.0):8.1f} ms   "
          f"fresh {fresh_run.get('wall_ms', 0.0):8.1f} ms   ratio {ratio:4.2f}x   "
          f"{verdict}")
    failed = ratio > max_ratio
    if throughput_floor_failed("degraded", base_run, fresh_run, max_ratio):
        failed = True
    if fresh_run.get("events") != base_run.get("events"):
        print(f"  note: events changed {base_run.get('events')} -> "
              f"{fresh_run.get('events')} (degraded behavior change — the "
              f"degraded determinism tests pin the report, not this gate)")
    # The committed graceful-degradation claim, gated hard: retries must
    # actually fire, and the retry arm must beat the no-retry control on
    # both give-ups and permanently lost tenants.
    retry = fresh.get("retry", {})
    control = fresh.get("no_retry_control", {})
    if retry.get("op_retries", 0) <= 0:
        print("  degraded run      DIFFERENTIAL BROKEN: retry arm issued "
              "no retries")
        failed = True
    if not retry.get("op_give_ups", 0) < control.get("op_give_ups", 0):
        print(f"  degraded run      DIFFERENTIAL BROKEN: give-ups "
              f"{retry.get('op_give_ups')} (retry) vs "
              f"{control.get('op_give_ups')} (no-retry control)")
        failed = True
    if not retry.get("crash_lost", 0) < control.get("crash_lost", 0):
        print(f"  degraded run      DIFFERENTIAL BROKEN: lost tenants "
              f"{retry.get('crash_lost')} (retry) vs "
              f"{control.get('crash_lost')} (no-retry control)")
        failed = True
    base_faults = base.get("faults", {})
    fresh_faults = fresh.get("faults", {})
    for key in ("degrade_faults", "affected", "added_p99_worst_ms"):
        if fresh_faults.get(key) != base_faults.get(key):
            print(f"  note: {key} changed {base_faults.get(key)} -> "
                  f"{fresh_faults.get(key)} (degraded behavior change)")
    for arm, arm_base, arm_fresh in (("retry", base.get("retry", {}), retry),
                                     ("no_retry_control",
                                      base.get("no_retry_control", {}),
                                      control)):
        for key in ("op_give_ups", "crash_lost"):
            if arm_fresh.get(key) != arm_base.get(key):
                print(f"  note: {arm}.{key} changed {arm_base.get(key)} -> "
                      f"{arm_fresh.get(key)} (degraded behavior change)")
    return failed


def check_federation(fresh_doc, committed_doc, max_ratio):
    """Gate every committed federation sweep shape; returns True on
    failure."""
    base_blocks = committed_doc.get("federation", [])
    if not base_blocks:
        return False  # nothing committed to gate against
    fresh_blocks = fresh_doc.get("federation", [])
    if not fresh_blocks:
        print("  federation sweeps MISSING from fresh results")
        return True
    fresh_by_config = {(b.get("cells"), b.get("hosts_per_cell"),
                        b.get("tenants")): b
                       for b in fresh_blocks}
    failed = False
    for base in base_blocks:
        config = (base.get("cells"), base.get("hosts_per_cell"),
                  base.get("tenants"))
        fresh = fresh_by_config.get(config)
        if fresh is None:
            print(f"  federation sweep  no fresh block for committed "
                  f"cells={config[0]} hosts_per_cell={config[1]} "
                  f"tenants={config[2]} -- skipped, not gated")
            continue
        print(f"federation sweep at {config[2]} tenants across "
              f"{config[0]} cells x {config[1]} hosts:")
        fresh_runs = {r["routing"]: r for r in fresh.get("runs", [])}
        for run in base.get("runs", []):
            routing = run["routing"]
            fresh_run = fresh_runs.get(routing)
            if fresh_run is None:
                print(f"  {routing:<18} MISSING from fresh results")
                failed = True
                continue
            ratio = (fresh_run["wall_ms"] / run["wall_ms"]
                     if run["wall_ms"] > 0 else 0.0)
            verdict = "ok" if ratio <= max_ratio else "REGRESSION"
            print(f"  {routing:<18} committed {run['wall_ms']:8.1f} ms   "
                  f"fresh {fresh_run['wall_ms']:8.1f} ms   "
                  f"ratio {ratio:4.2f}x   {verdict}")
            if ratio > max_ratio:
                failed = True
            if throughput_floor_failed(routing, run, fresh_run, max_ratio):
                failed = True
            for key in ("events", "spills", "admitted"):
                if fresh_run.get(key) != run.get(key):
                    print(f"  {routing:<18} note: {key} changed "
                          f"{run.get(key)} -> {fresh_run.get(key)} "
                          f"(federation behavior change — the federation "
                          f"determinism tests pin the reports)")
    return failed


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh", help="JSON from the CI run")
    parser.add_argument("committed", help="checked-in trajectory JSON")
    parser.add_argument("--tenants", type=int, default=1000,
                        help="tenant count to gate on (default 1000)")
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when fresh/committed wall_ms exceeds this")
    args = parser.parse_args()

    fresh_doc = load(args.fresh)
    committed_doc = load(args.committed)
    fresh = runs_at(fresh_doc, args.tenants)
    committed = runs_at(committed_doc, args.tenants)
    if not committed:
        print(f"check_perf_trajectory: committed file has no runs at "
              f"{args.tenants} tenants", file=sys.stderr)
        return 2

    failed = False
    print(f"perf trajectory at {args.tenants} tenants "
          f"(gate: {args.max_ratio:.1f}x):")
    for scenario, base in sorted(committed.items()):
        run = fresh.get(scenario)
        if run is None:
            print(f"  {scenario:<18} MISSING from fresh results")
            failed = True
            continue
        ratio = run["wall_ms"] / base["wall_ms"] if base["wall_ms"] > 0 else 0.0
        verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
        print(f"  {scenario:<18} committed {base['wall_ms']:8.1f} ms   "
              f"fresh {run['wall_ms']:8.1f} ms   ratio {ratio:4.2f}x   "
              f"{verdict}")
        if ratio > args.max_ratio:
            failed = True
        if throughput_floor_failed(scenario, base, run, args.max_ratio):
            failed = True
        if run.get("events") != base.get("events"):
            print(f"  {scenario:<18} note: event count changed "
                  f"{base.get('events')} -> {run.get('events')} "
                  f"(behavior change, pinned elsewhere)")
    if check_clusters(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    if check_parallel(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    if check_autoscale(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    if check_chaos(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    if check_programs(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    if check_degraded(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    if check_federation(fresh_doc, committed_doc, args.max_ratio):
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
