// Guest<->host network path models.
//
// The paper finds that the isolation mechanism on the network path decides
// throughput and latency (Section 3.4): namespace platforms bridge veth
// pairs (~9-10% throughput tax), hypervisors run TAP + virtio-net (~25%),
// gVisor funnels everything through its user-space Netstack (extreme
// outlier), and OSv's dedicated virtio path under QEMU is nearly native.
// A NetPath combines an efficiency/latency model with the host syscalls
// its data plane executes (feeding the HAP study).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hostk/host_kernel.h"
#include "hostk/nic.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace net {

/// Which architectural datapath carries guest traffic.
enum class PathKind {
  kNative,     // host stack directly
  kBridge,     // veth pair + Linux bridge (Docker, LXC, Kata outer hop)
  kTapVirtio,  // TAP device + virtio-net (hypervisors)
  kNetstack,   // gVisor user-space network stack
};

struct NetPathSpec {
  std::string name;
  PathKind kind = PathKind::kNative;
  /// Fraction of the native iperf3 throughput this path sustains.
  double throughput_efficiency = 1.0;
  /// Relative run-to-run stddev of the throughput result.
  double throughput_jitter = 0.01;
  /// Extra one-way latency added by the path's hops.
  sim::Nanos one_way_extra = 0;
  /// Extra tail latency (p90+) from batching/wakeup effects.
  sim::Nanos tail_extra = 0;
  /// CPU cost charged to the sender per packet (used by app workloads).
  sim::Nanos per_packet_cpu = 400;
};

/// A concrete guest network attachment.
class NetPath {
 public:
  NetPath(NetPathSpec spec, hostk::HostKernel& host);

  const NetPathSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// One iperf3-style run: the achieved steady-state throughput in bits/s
  /// over the given NIC.
  double iperf_throughput_bps(const hostk::Nic& nic, sim::Rng& rng) const;

  /// One netperf TCP_RR style round trip with a small payload; returns the
  /// full RTT including both directions of the path.
  sim::Nanos round_trip(const hostk::Nic& nic, std::uint32_t payload_bytes,
                        sim::Rng& rng) const;

  /// Record the host-side syscall/function activity of transferring
  /// `bytes` through this path (HAP instrumentation; trace-only).
  void record_traffic(std::uint64_t bytes, const hostk::Nic& nic,
                      sim::Rng& rng) const;

  /// CPU time the guest-side sender spends pushing `bytes` (packetization
  /// plus the per-packet datapath cost). Used by Memcached/MySQL models.
  sim::Nanos sender_cpu_cost(std::uint64_t bytes, const hostk::Nic& nic) const;

 private:
  NetPathSpec spec_;
  hostk::HostKernel* host_;
};

/// The catalog of per-platform network paths, calibrated to Figure 11/12.
class NetPathCatalog {
 public:
  static NetPathSpec native();
  static NetPathSpec docker_bridge();
  static NetPathSpec lxc_bridge();
  static NetPathSpec qemu_tap();
  static NetPathSpec firecracker_tap();
  static NetPathSpec cloud_hypervisor_tap();
  static NetPathSpec kata_bridge_tap();  // bridge + QEMU TAP; weakest link
  static NetPathSpec gvisor_netstack();
  static NetPathSpec osv_qemu();
  static NetPathSpec osv_firecracker();
};

}  // namespace net
