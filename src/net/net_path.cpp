#include "net/net_path.h"

#include <algorithm>

namespace net {

using hostk::Syscall;

NetPath::NetPath(NetPathSpec spec, hostk::HostKernel& host)
    : spec_(std::move(spec)), host_(&host) {}

double NetPath::iperf_throughput_bps(const hostk::Nic& nic, sim::Rng& rng) const {
  // Native ceiling: serialization + amortized per-packet cost at MTU.
  const double mtu_bits = static_cast<double>(nic.spec().mtu) * 8.0;
  const double per_pkt_s =
      mtu_bits / nic.spec().line_rate_bps +
      sim::to_seconds(nic.spec().per_packet_cost);
  const double native_bps = mtu_bits / per_pkt_s;
  double bps = native_bps * spec_.throughput_efficiency;
  bps *= 1.0 + rng.normal(0.0, spec_.throughput_jitter);
  return std::max(0.0, bps);
}

sim::Nanos NetPath::round_trip(const hostk::Nic& nic, std::uint32_t payload_bytes,
                               sim::Rng& rng) const {
  sim::Nanos rtt = 0;
  // Two traversals of wire + path stack.
  for (int dir = 0; dir < 2; ++dir) {
    rtt += nic.latency(rng);
    rtt += nic.transfer_time(payload_bytes, rng);
    rtt += spec_.one_way_extra;
  }
  // Tail effects (virtio kick coalescing, Sentry wakeups) hit a minority of
  // round trips but define the p90 the paper reports.
  if (spec_.tail_extra > 0 && rng.chance(0.18)) {
    rtt += spec_.tail_extra +
           static_cast<sim::Nanos>(rng.exponential(2.0) *
                                   static_cast<double>(spec_.tail_extra) / 4.0);
  }
  return rtt;
}

void NetPath::record_traffic(std::uint64_t bytes, const hostk::Nic& nic,
                             sim::Rng& rng) const {
  if (!host_->ftrace().recording()) {
    return;
  }
  // Syscall batching: ~16 MTU packets per sendmsg at iperf3 rates (GSO).
  const std::uint64_t pkts = std::max<std::uint64_t>(1, nic.packets_for(bytes));
  const std::uint64_t batches = std::max<std::uint64_t>(1, pkts / 16);
  const auto& reg = host_->registry();
  switch (spec_.kind) {
    case PathKind::kNative:
      host_->invoke(Syscall::kSendto, rng, batches);
      host_->invoke(Syscall::kRecvfrom, rng, batches);
      break;
    case PathKind::kBridge:
      host_->invoke(Syscall::kSendto, rng, batches);
      host_->invoke(Syscall::kRecvfrom, rng, batches);
      host_->record_background(
          {{reg.id_of("veth_xmit"), 1},
           {reg.id_of("br_handle_frame"), 1},
           {reg.id_of("br_forward"), 1},
           {reg.id_of("br_nf_pre_routing"), 1},
           {reg.id_of("nf_hook_slow"), 1},
           {reg.id_of("netif_rx_internal"), 1},
           {reg.id_of("enqueue_to_backlog"), 1},
           {reg.id_of("net_rx_action"), 1},
           {reg.id_of("__napi_poll"), 1},
           {reg.id_of("process_backlog"), 1}},
          pkts);
      break;
    case PathKind::kTapVirtio:
      // Guest kicks virtio queues (ioeventfd), host vhost thread moves
      // packets between the TAP device and the queue.
      host_->invoke(Syscall::kKvmIoeventfd, rng, batches);
      host_->invoke(Syscall::kReadv, rng, batches);   // tap read
      host_->invoke(Syscall::kWritev, rng, batches);  // tap write
      host_->record_background(
          {{reg.id_of("tun_get_user"), 1},
           {reg.id_of("tun_net_xmit"), 1},
           {reg.id_of("tap_do_read"), 1},
           {reg.id_of("vhost_net_tx"), 1},
           {reg.id_of("vhost_net_rx"), 1},
           {reg.id_of("vhost_poll_queue"), 1},
           {reg.id_of("netif_receive_skb"), 1},
           {reg.id_of("napi_gro_receive"), 1}},
          pkts);
      break;
    case PathKind::kNetstack:
      // The Sentry's Netstack terminates TCP itself and forwards raw
      // packets through its TAP-like endpoint with plain read/write.
      host_->invoke(Syscall::kRead, rng, pkts);
      host_->invoke(Syscall::kWrite, rng, pkts);
      host_->invoke(Syscall::kEpollWait, rng, batches);
      host_->invoke(Syscall::kFutexWake, rng, batches);
      break;
  }
}

sim::Nanos NetPath::sender_cpu_cost(std::uint64_t bytes,
                                    const hostk::Nic& nic) const {
  const std::uint64_t pkts = nic.packets_for(bytes);
  return static_cast<sim::Nanos>(pkts) * spec_.per_packet_cpu;
}

// --- Catalog -----------------------------------------------------------
// Efficiencies are anchored to Figure 11: native 37.28 Gbit/s, OSv 36.36,
// Docker -9.84%, LXC -9.19%, QEMU = OSv/1.257, OSv-FC = FC * 1.0653,
// Cloud Hypervisor below QEMU, gVisor an extreme outlier.

NetPathSpec NetPathCatalog::native() {
  return {.name = "native",
          .kind = PathKind::kNative,
          .throughput_efficiency = 1.0,
          .throughput_jitter = 0.008,
          .one_way_extra = 0,
          .tail_extra = 0,
          .per_packet_cpu = 350};
}

NetPathSpec NetPathCatalog::docker_bridge() {
  return {.name = "docker(bridge)",
          .kind = PathKind::kBridge,
          .throughput_efficiency = 0.9016,
          .throughput_jitter = 0.012,
          .one_way_extra = sim::micros(2.0),
          .tail_extra = sim::micros(4),
          .per_packet_cpu = 450};
}

NetPathSpec NetPathCatalog::lxc_bridge() {
  return {.name = "lxc(bridge)",
          .kind = PathKind::kBridge,
          .throughput_efficiency = 0.9081,
          .throughput_jitter = 0.012,
          .one_way_extra = sim::micros(1.9),
          .tail_extra = sim::micros(4),
          .per_packet_cpu = 450};
}

NetPathSpec NetPathCatalog::qemu_tap() {
  return {.name = "qemu(tap+virtio)",
          .kind = PathKind::kTapVirtio,
          .throughput_efficiency = 0.776,
          .throughput_jitter = 0.02,
          .one_way_extra = sim::micros(11),
          .tail_extra = sim::micros(26),
          .per_packet_cpu = 700};
}

NetPathSpec NetPathCatalog::firecracker_tap() {
  return {.name = "firecracker(tap+virtio)",
          .kind = PathKind::kTapVirtio,
          .throughput_efficiency = 0.741,
          .throughput_jitter = 0.022,
          .one_way_extra = sim::micros(12),
          .tail_extra = sim::micros(28),
          .per_packet_cpu = 720};
}

NetPathSpec NetPathCatalog::cloud_hypervisor_tap() {
  return {.name = "cloud-hypervisor(tap+virtio)",
          .kind = PathKind::kTapVirtio,
          .throughput_efficiency = 0.655,
          .throughput_jitter = 0.028,
          .one_way_extra = sim::micros(16),
          .tail_extra = sim::micros(30),
          .per_packet_cpu = 760};
}

NetPathSpec NetPathCatalog::kata_bridge_tap() {
  // Bridge into the sandbox, QEMU TAP+virtio inside: throughput equals the
  // weakest link (QEMU); latency benefits from the bridge front. Small
  // request/response packets, however, traverse BOTH hops' per-packet
  // datapaths without TSO amortization — the mechanism behind Kata's
  // surprisingly low Memcached score (Finding 18).
  return {.name = "kata(bridge+tap)",
          .kind = PathKind::kTapVirtio,
          .throughput_efficiency = 0.770,
          .throughput_jitter = 0.02,
          .one_way_extra = sim::micros(2.6),
          .tail_extra = sim::micros(6),
          .per_packet_cpu = 2300};
}

NetPathSpec NetPathCatalog::gvisor_netstack() {
  // Netstack misses many throughput-critical RFC features (Finding 12:
  // p90 3-4x competitors; Figure 11: extreme outlier).
  return {.name = "gvisor(netstack)",
          .kind = PathKind::kNetstack,
          .throughput_efficiency = 0.102,
          .throughput_jitter = 0.05,
          .one_way_extra = sim::micros(38),
          .tail_extra = sim::micros(80),
          .per_packet_cpu = 2600};
}

NetPathSpec NetPathCatalog::osv_qemu() {
  // OSv's kernel-integrated virtio-net under QEMU: 36.36 Gbit/s.
  return {.name = "osv(qemu)",
          .kind = PathKind::kTapVirtio,
          .throughput_efficiency = 0.9753,
          .throughput_jitter = 0.01,
          .one_way_extra = sim::micros(8),
          .tail_extra = sim::micros(18),
          .per_packet_cpu = 520};
}

NetPathSpec NetPathCatalog::osv_firecracker() {
  // OSv under Firecracker only beats plain Firecracker by 6.53%.
  return {.name = "osv(firecracker)",
          .kind = PathKind::kTapVirtio,
          .throughput_efficiency = 0.741 * 1.0653,
          .throughput_jitter = 0.015,
          .one_way_extra = sim::micros(9),
          .tail_extra = sim::micros(20),
          .per_packet_cpu = 560};
}

}  // namespace net
