// OSv unikernel architecture (Section 2.4.1 / Figure 4).
//
// OSv runs one application linked against a library OS in ring 0. Its
// dynamic ELF linker resolves glibc syscall wrappers to OSv kernel
// functions, so "syscalls" are plain function calls with no mode switch.
// The price: a custom thread scheduler that the paper blames for the
// severe ffmpeg penalty (Finding 1) and MySQL collapse (Finding 21), and
// no fork()/exec() — multi-process applications cannot run at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/boot.h"
#include "core/cpu_profile.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace unikernel {

/// Outcome of asking OSv to run an application.
enum class LoadResult {
  kOk,
  kNotRelocatable,   // not compiled as a shared object / PIE
  kRequiresFork,     // multi-process applications are unsupported
};

std::string load_result_name(LoadResult r);

/// How an application is packaged for OSv.
struct AppImage {
  std::string name;
  bool position_independent = true;
  bool uses_fork = false;
  std::uint64_t binary_bytes = 12ull << 20;
};

/// The OSv ELF linker: maps the app and resolves Linux ABI calls into the
/// OSv kernel.
class ElfLinker {
 public:
  /// Validate an application against OSv's constraints.
  LoadResult load(const AppImage& app) const;

  /// Cost of one resolved "syscall" — a function call, not a mode switch.
  sim::Nanos call_cost(sim::Rng& rng) const;

  /// One-time image fuse + link stages for build.py style image creation.
  core::BootTimeline link_timeline(const AppImage& app) const;
};

/// OSv's custom thread scheduler. Mature Linux CFS has alpha ~0.004 in our
/// CpuProfile terms; OSv's lock-free but simpler scheduler degrades much
/// faster with thread count and struggles with complex SIMD workloads on
/// many threads (the paper's ffmpeg observation).
class OsvScheduler {
 public:
  core::CpuProfile cpu_profile() const;

  /// Effective wall-time multiplier for a job using `threads` threads
  /// relative to a mature kernel scheduler at the same thread count.
  double multithread_penalty(int threads) const;
};

}  // namespace unikernel
