#include "unikernel/osv.h"

#include "sim/distribution.h"

namespace unikernel {

using sim::DurationDist;
using sim::millis;

std::string load_result_name(LoadResult r) {
  switch (r) {
    case LoadResult::kOk:
      return "ok";
    case LoadResult::kNotRelocatable:
      return "not-relocatable";
    case LoadResult::kRequiresFork:
      return "requires-fork";
  }
  return "unknown";
}

LoadResult ElfLinker::load(const AppImage& app) const {
  if (app.uses_fork) {
    return LoadResult::kRequiresFork;
  }
  if (!app.position_independent) {
    return LoadResult::kNotRelocatable;
  }
  return LoadResult::kOk;
}

sim::Nanos ElfLinker::call_cost(sim::Rng& rng) const {
  // A resolved PLT call into the OSv kernel: tens of nanoseconds, versus
  // hundreds for a real user->kernel mode switch.
  return DurationDist::lognormal(sim::nanos(28), 0.15).sample(rng);
}

core::BootTimeline ElfLinker::link_timeline(const AppImage& app) const {
  core::BootTimeline t;
  const double map_ms =
      static_cast<double>(app.binary_bytes) / (1 << 20) * 0.35;
  t.stage("osv:map-executable",
          DurationDist::lognormal(millis(std::max(map_ms, 0.2)), 0.2));
  t.stage("osv:resolve-symbols", DurationDist::lognormal(millis(2.6), 0.2));
  return t;
}

core::CpuProfile OsvScheduler::cpu_profile() const {
  core::CpuProfile p;
  p.scalar_factor = 1.0;   // Finding 1: prime check is on par everywhere
  p.simd_factor = 1.06;    // experimental platform SIMD handling
  p.sched_alpha = 0.034;   // custom scheduler degrades with threads
  p.futex_cost_factor = 4.2;  // custom mutex/thread primitives
  return p;
}

double OsvScheduler::multithread_penalty(int threads) const {
  const core::CpuProfile osv = cpu_profile();
  core::CpuProfile mature;
  return mature.parallel_efficiency(threads) /
         osv.parallel_efficiency(threads);
}

}  // namespace unikernel
