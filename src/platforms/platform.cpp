#include "platforms/platform.h"

namespace platforms {

std::string platform_id_name(PlatformId id) {
  switch (id) {
    case PlatformId::kNative:
      return "native";
    case PlatformId::kDocker:
      return "docker";
    case PlatformId::kLxc:
      return "lxc";
    case PlatformId::kQemuKvm:
      return "qemu-kvm";
    case PlatformId::kFirecracker:
      return "firecracker";
    case PlatformId::kCloudHypervisor:
      return "cloud-hypervisor";
    case PlatformId::kKataContainers:
      return "kata-containers";
    case PlatformId::kGvisor:
      return "gvisor";
    case PlatformId::kOsvQemu:
      return "osv";
    case PlatformId::kOsvFirecracker:
      return "osv-fc";
  }
  return "unknown";
}

std::string workload_class_name(WorkloadClass w) {
  switch (w) {
    case WorkloadClass::kCpu:
      return "cpu";
    case WorkloadClass::kMemory:
      return "memory";
    case WorkloadClass::kIo:
      return "io";
    case WorkloadClass::kNetwork:
      return "network";
    case WorkloadClass::kStartup:
      return "startup";
  }
  return "unknown";
}

Platform::Platform(PlatformId id, std::string name, core::HostSystem& host)
    : id_(id), name_(std::move(name)), host_(&host) {}

void Platform::set_net(net::NetPathSpec spec) {
  net_ = std::make_unique<net::NetPath>(std::move(spec), host_->kernel());
}

void Platform::set_block(storage::BlockPathSpec spec) {
  block_ = std::make_unique<storage::BlockPath>(
      std::move(spec), host_->kernel(), host_->nvme(), host_->page_cache());
}

core::BootResult Platform::boot(sim::Clock& clock, sim::Rng& rng) {
  record_boot_trace(rng);
  const core::BootResult result = boot_timeline().run(rng);
  clock.advance(result.total);
  return result;
}

const core::BootTimeline& Platform::cached_timeline() {
  if (!timeline_cached_) {
    timeline_cache_ = boot_timeline();
    timeline_cached_ = true;
  }
  return timeline_cache_;
}

sim::Nanos Platform::boot_total(sim::Clock& clock, sim::Rng& rng) {
  record_boot_trace(rng);
  const sim::Nanos total = cached_timeline().sample_total(rng);
  clock.advance(total);
  return total;
}

sim::Nanos Platform::sync_syscall_cost(sim::Rng& rng) const {
  // Default: a direct host futex wake (native, containers).
  return host_->kernel().invoke(hostk::Syscall::kFutexWake, rng, 1);
}

}  // namespace platforms
