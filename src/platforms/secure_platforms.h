// Secure-container platforms: Kata Containers and gVisor (Section 2.3).
#pragma once

#include "platforms/platform.h"
#include "securec/gvisor.h"
#include "securec/kata.h"
#include "storage/shared_fs.h"

namespace platforms {

/// Kata Containers: a namespaced container inside a stripped QEMU VM,
/// managed by kata-runtime/kata-agent over vsock ttRPC.
class KataPlatform : public Platform {
 public:
  KataPlatform(core::HostSystem& host,
               storage::SharedFsProtocol shared_fs =
                   storage::SharedFsProtocol::kNineP,
               bool via_daemon = false);

  securec::KataRuntime& runtime() { return runtime_; }
  storage::SharedFsProtocol shared_fs() const { return shared_fs_; }

  core::BootTimeline boot_timeline() const override;
  void record_workload(WorkloadClass w, sim::Rng& rng) override;
  sim::Nanos sync_syscall_cost(sim::Rng& rng) const override;

 protected:
  void record_boot_trace(sim::Rng& rng) override;

 private:
  storage::SharedFsProtocol shared_fs_;
  securec::KataRuntime runtime_;
};

/// gVisor: syscall interception into the Sentry user-space kernel, file
/// I/O through the Gofer, networking through Netstack.
class GvisorPlatform : public Platform {
 public:
  GvisorPlatform(core::HostSystem& host,
                 securec::GvisorPlatform intercept =
                     securec::GvisorPlatform::kPtrace,
                 bool via_daemon = false);

  securec::Sentry& sentry() { return sentry_; }
  securec::Gofer& gofer() { return gofer_; }

  core::BootTimeline boot_timeline() const override;
  void record_workload(WorkloadClass w, sim::Rng& rng) override;
  sim::Nanos sync_syscall_cost(sim::Rng& rng) const override;

 protected:
  void record_boot_trace(sim::Rng& rng) override;

 private:
  bool via_daemon_;
  securec::Sentry sentry_;
  securec::Gofer gofer_;
};

}  // namespace platforms
