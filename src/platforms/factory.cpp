#include "platforms/factory.h"

#include <stdexcept>

#include "platforms/container_platforms.h"
#include "platforms/hypervisor_platforms.h"
#include "platforms/native_platform.h"
#include "platforms/osv_platform.h"
#include "platforms/secure_platforms.h"

namespace platforms {

std::unique_ptr<Platform> PlatformFactory::create(PlatformId id,
                                                  core::HostSystem& host,
                                                  const FactoryOptions& opts) {
  switch (id) {
    case PlatformId::kNative:
      return std::make_unique<NativePlatform>(host);
    case PlatformId::kDocker:
      return std::make_unique<DockerPlatform>(host, opts.via_docker_daemon);
    case PlatformId::kLxc:
      return std::make_unique<LxcPlatform>(host);
    case PlatformId::kQemuKvm:
      return HypervisorPlatform::qemu(host);
    case PlatformId::kFirecracker:
      return HypervisorPlatform::firecracker(host);
    case PlatformId::kCloudHypervisor:
      return HypervisorPlatform::cloud_hypervisor(host);
    case PlatformId::kKataContainers:
      return std::make_unique<KataPlatform>(host, opts.kata_shared_fs,
                                            opts.via_docker_daemon);
    case PlatformId::kGvisor:
      return std::make_unique<GvisorPlatform>(host, opts.gvisor_platform,
                                              opts.via_docker_daemon);
    case PlatformId::kOsvQemu:
      return std::make_unique<OsvPlatform>(host, OsvHypervisor::kQemu);
    case PlatformId::kOsvFirecracker:
      return std::make_unique<OsvPlatform>(host, OsvHypervisor::kFirecracker);
  }
  throw std::invalid_argument("PlatformFactory: unknown platform id");
}

std::vector<std::unique_ptr<Platform>> PlatformFactory::paper_lineup(
    core::HostSystem& host) {
  std::vector<std::unique_ptr<Platform>> lineup;
  for (const PlatformId id :
       {PlatformId::kNative, PlatformId::kDocker, PlatformId::kLxc,
        PlatformId::kQemuKvm, PlatformId::kFirecracker,
        PlatformId::kCloudHypervisor, PlatformId::kKataContainers,
        PlatformId::kGvisor, PlatformId::kOsvQemu,
        PlatformId::kOsvFirecracker}) {
    lineup.push_back(create(id, host));
  }
  return lineup;
}

}  // namespace platforms
