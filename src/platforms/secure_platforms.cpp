#include "platforms/secure_platforms.h"

#include "net/net_path.h"
#include "sim/distribution.h"
#include "storage/block_path.h"
#include "vmm/vm_memory.h"

namespace platforms {

using hostk::Syscall;
using sim::DurationDist;

KataPlatform::KataPlatform(core::HostSystem& host,
                           storage::SharedFsProtocol shared_fs,
                           bool via_daemon)
    : Platform(PlatformId::kKataContainers,
               shared_fs == storage::SharedFsProtocol::kVirtioFs
                   ? "kata-virtiofs"
                   : "kata-containers",
               host),
      shared_fs_(shared_fs),
      runtime_(securec::KataSpec{.shared_fs = shared_fs,
                                 .via_docker_daemon = via_daemon},
               host.kernel()) {
  Capabilities caps;
  caps.hugepages = false;  // the paper: Kata does not support HugePages
  set_capabilities(caps);
  core::CpuProfile cpu;
  cpu.futex_cost_factor = 1.2;
  set_cpu_profile(cpu);
  set_memory_profile(vmm::MemoryBackingCatalog::kata_nvdimm_direct().profile);
  set_net(net::NetPathCatalog::kata_bridge_tap());
  set_block(shared_fs == storage::SharedFsProtocol::kVirtioFs
                ? storage::BlockPathCatalog::kata_virtio_fs()
                : storage::BlockPathCatalog::kata_9p());
}

core::BootTimeline KataPlatform::boot_timeline() const {
  return runtime_.boot_timeline();
}

void KataPlatform::record_boot_trace(sim::Rng& rng) {
  runtime_.record_boot(rng);
}

sim::Nanos KataPlatform::sync_syscall_cost(sim::Rng& rng) const {
  // Handled by the guest kernel inside the VM.
  return DurationDist::lognormal(sim::nanos(1000), 0.2).sample(rng);
}

void KataPlatform::record_workload(WorkloadClass w, sim::Rng& rng) {
  auto& k = kernel();
  if (w == WorkloadClass::kStartup) {
    record_boot_trace(rng);
    return;
  }
  // The QEMU instance under kata generates hypervisor-like activity...
  k.invoke(Syscall::kKvmRun, rng, w == WorkloadClass::kCpu ? 24 : 280);
  k.invoke(Syscall::kEpollWait, rng, 40);
  k.invoke(Syscall::kClockGettime, rng, 48);
  k.invoke(Syscall::kFutexWait, rng, 10);
  k.invoke(Syscall::kFutexWake, rng, 10);
  // ...the full VMM userspace surface (image files, guest RAM, monitor)...
  k.invoke(Syscall::kOpenat, rng, 6);
  k.invoke(Syscall::kClose, rng, 6);
  k.invoke(Syscall::kFstat, rng, 4);
  k.invoke(Syscall::kStatx, rng, 2);
  k.invoke(Syscall::kMmap, rng, 6);
  k.invoke(Syscall::kMunmap, rng, 3);
  k.invoke(Syscall::kGetdents64, rng, 1);
  k.invoke(Syscall::kSocket, rng, 1);
  k.invoke(Syscall::kAccept4, rng, 1);
  k.invoke(Syscall::kWait4, rng, 1);
  k.invoke(Syscall::kTgkill, rng, 2);
  k.invoke(Syscall::kRtSigreturn, rng, 2);
  k.invoke(Syscall::kPipe2, rng, 1);
  k.invoke(Syscall::kFcntl, rng, 1);
  k.invoke(Syscall::kNanosleep, rng, 2);
  k.invoke(Syscall::kIoctlTun, rng, 4);
  // ...and the container-runtime half: containerd-shim-kata-v2 process
  // management and image/rootfs plumbing (Finding 26: both worlds' host
  // footprints stack up).
  k.invoke(Syscall::kClone3, rng, 1);
  k.invoke(Syscall::kExecve, rng, 1);
  k.invoke(Syscall::kConnect, rng, 1);
  k.invoke(Syscall::kSendto, rng, 2);
  k.invoke(Syscall::kRecvfrom, rng, 2);
  k.invoke(Syscall::kEventfd2, rng, 1);
  k.invoke(Syscall::kFallocate, rng, 1);
  k.invoke(Syscall::kFsync, rng, 2);
  k.invoke(Syscall::kLseek, rng, 2);
  k.invoke(Syscall::kIoctlLoop, rng, 2);
  // ...plus the container-side plumbing on the host: shim, vsock control
  // traffic, cgroup accounting (Finding 26: secure containers are high).
  k.invoke(Syscall::kVsockSend, rng, 6);
  k.invoke(Syscall::kVsockRecv, rng, 6);
  k.invoke(Syscall::kCgroupWrite, rng, 2);
  k.invoke(Syscall::kProcRead, rng, 2);
  k.invoke(Syscall::kKvmIrqLine, rng, 24);
  k.invoke(Syscall::kKvmIoeventfd, rng, 24);
  switch (w) {
    case WorkloadClass::kIo: {
      // Shared-fs traffic to serve the guest's disk I/O.
      const std::uint64_t trips =
          shared_fs_ == storage::SharedFsProtocol::kNineP ? 96 : 24;
      k.invoke(Syscall::kSendmsg, rng, trips);
      k.invoke(Syscall::kRecvmsg, rng, trips);
      k.invoke(Syscall::kPread64, rng, 64);
      k.invoke(Syscall::kPwrite64, rng, 64);
      k.invoke(Syscall::kOpenat, rng, 8);
      k.invoke(Syscall::kFstat, rng, 8);
      break;
    }
    case WorkloadClass::kNetwork:
      net().record_traffic(32ull << 20, host().nic(), rng);
      k.invoke(Syscall::kReadv, rng, 48);
      k.invoke(Syscall::kWritev, rng, 48);
      break;
    case WorkloadClass::kMemory:
      k.invoke(Syscall::kMadvise, rng, 8);
      k.invoke(Syscall::kMmap, rng, 6);
      break;
    default:
      break;
  }
}

GvisorPlatform::GvisorPlatform(core::HostSystem& host,
                               securec::GvisorPlatform intercept,
                               bool via_daemon)
    : Platform(PlatformId::kGvisor,
               intercept == securec::GvisorPlatform::kKvm ? "gvisor-kvm"
                                                          : "gvisor",
               host),
      via_daemon_(via_daemon),
      sentry_(securec::SentrySpec{.platform = intercept}, host.kernel()),
      gofer_(host.kernel()) {
  set_capabilities({});
  core::CpuProfile cpu;
  // The Sentry's Go-runtime threading and syscall interception make
  // synchronization-heavy multithreaded work expensive (Finding 21).
  cpu.sched_alpha = 0.011;
  cpu.futex_cost_factor = 5.5;
  cpu.simd_factor = 1.03;
  set_cpu_profile(cpu);
  set_memory_profile(vmm::MemoryBackingCatalog::gvisor_sentry().profile);
  set_net(net::NetPathCatalog::gvisor_netstack());
  set_block(storage::BlockPathCatalog::gvisor_gofer_9p());
}

core::BootTimeline GvisorPlatform::boot_timeline() const {
  core::BootTimeline t;
  if (via_daemon_) {
    t.stage("daemon:cli-to-dockerd", DurationDist::lognormal(sim::millis(48), 0.18));
    t.stage("daemon:image-resolve", DurationDist::lognormal(sim::millis(64), 0.20));
    t.stage("daemon:network-allocate",
            DurationDist::lognormal(sim::millis(86), 0.18));
    t.stage("daemon:containerd-shim", DurationDist::lognormal(sim::millis(52), 0.15));
  }
  t.append(sentry_.boot_timeline());
  t.append(gofer_.boot_timeline());
  t.stage("gvisor:app-exec", DurationDist::lognormal(sim::millis(8), 0.2));
  t.stage("gvisor:teardown", DurationDist::lognormal(sim::millis(4), 0.25));
  return t;
}

void GvisorPlatform::record_boot_trace(sim::Rng& rng) {
  sentry_.record_boot(rng);
  gofer_.handle_request(4096, rng);  // rootfs attach round trip
}

sim::Nanos GvisorPlatform::sync_syscall_cost(sim::Rng& rng) const {
  // Every syscall, including futexes, pays interception + Sentry handling.
  return sentry_.interception_cost(rng) +
         DurationDist::lognormal(sim::nanos(900), 0.25).sample(rng);
}

void GvisorPlatform::record_workload(WorkloadClass w, sim::Rng& rng) {
  auto& k = kernel();
  if (w == WorkloadClass::kStartup) {
    record_boot_trace(rng);
    return;
  }
  // Finding 26: the user-space kernel does not reduce host calls as much
  // as expected — the Sentry constantly uses futex/epoll/timers, and every
  // intercepted syscall bounces through ptrace or KVM.
  const std::uint64_t intercepts = w == WorkloadClass::kCpu ? 16 : 200;
  for (std::uint64_t i = 0; i < intercepts / 8; ++i) {
    sentry_.serve_internal(rng);
  }
  k.invoke(Syscall::kFutexWait, rng, 48);
  k.invoke(Syscall::kFutexWake, rng, 48);
  k.invoke(Syscall::kEpollWait, rng, 32);
  k.invoke(Syscall::kClockGettime, rng, 64);
  k.invoke(Syscall::kNanosleep, rng, 8);
  k.invoke(Syscall::kSchedYield, rng, 8);
  k.invoke(Syscall::kMmap, rng, 8);      // Go runtime arena growth
  k.invoke(Syscall::kMunmap, rng, 4);
  k.invoke(Syscall::kMadvise, rng, 12);  // heap release
  k.invoke(Syscall::kTgkill, rng, 4);    // goroutine preemption signals
  k.invoke(Syscall::kRtSigreturn, rng, 4);
  k.invoke(Syscall::kEventfd2, rng, 1);
  k.invoke(Syscall::kPipe2, rng, 1);
  // Gofer-side host VFS work beyond plain reads.
  k.invoke(Syscall::kFstat, rng, 4);
  k.invoke(Syscall::kStatx, rng, 2);
  k.invoke(Syscall::kGetdents64, rng, 2);
  k.invoke(Syscall::kLseek, rng, 2);
  k.invoke(Syscall::kFsync, rng, 1);
  k.invoke(Syscall::kFallocate, rng, 1);
  k.invoke(Syscall::kPread64, rng, 8);
  k.invoke(Syscall::kPwrite64, rng, 8);
  k.invoke(Syscall::kClose, rng, 4);
  k.invoke(Syscall::kProcRead, rng, 2);
  k.invoke(Syscall::kWait4, rng, 2);     // ptrace tracee management
  k.invoke(Syscall::kKill, rng, 1);
  k.invoke(Syscall::kClone3, rng, 1);    // Sentry task threads
  k.invoke(Syscall::kExecve, rng, 1);    // runsc exec entry
  k.invoke(Syscall::kBind, rng, 1);      // control server socket
  k.invoke(Syscall::kListen, rng, 1);
  switch (w) {
    case WorkloadClass::kIo:
      for (int i = 0; i < 12; ++i) {
        sentry_.serve_via_gofer(128 << 10, rng);
        gofer_.handle_request(128 << 10, rng);
      }
      break;
    case WorkloadClass::kNetwork:
      net().record_traffic(32ull << 20, host().nic(), rng);
      k.invoke(Syscall::kIoctlTun, rng, 8);  // Netstack's TAP endpoint
      k.invoke(Syscall::kSetsockopt, rng, 2);
      break;
    case WorkloadClass::kMemory:
      k.invoke(Syscall::kMprotect, rng, 8);
      k.invoke(Syscall::kBrk, rng, 2);
      break;
    default:
      break;
  }
}

}  // namespace platforms
