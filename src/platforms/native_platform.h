// The bare-metal baseline: no isolation at all.
#pragma once

#include "platforms/platform.h"

namespace platforms {

/// Processes run directly on the host kernel. This is the paper's "native"
/// series: every figure's reference point.
class NativePlatform : public Platform {
 public:
  explicit NativePlatform(core::HostSystem& host);

  core::BootTimeline boot_timeline() const override;
  void record_workload(WorkloadClass w, sim::Rng& rng) override;

 protected:
  void record_boot_trace(sim::Rng& rng) override;
};

}  // namespace platforms
