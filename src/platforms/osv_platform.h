// The OSv unikernel platform (Section 2.4.1).
#pragma once

#include "platforms/platform.h"
#include "unikernel/osv.h"
#include "vmm/vm.h"

namespace platforms {

/// Which hypervisor carries the OSv guest — the paper shows this choice
/// dominates both memory performance (Finding 5) and boot time (Figure 15).
enum class OsvHypervisor { kQemu, kQemuMicroVm, kFirecracker };

class OsvPlatform : public Platform {
 public:
  OsvPlatform(core::HostSystem& host, OsvHypervisor hypervisor,
              unikernel::AppImage app = {.name = "benchmark-app"});

  OsvHypervisor hypervisor() const { return hypervisor_; }
  const unikernel::ElfLinker& linker() const { return linker_; }
  const unikernel::OsvScheduler& scheduler() const { return scheduler_; }

  /// Validate an app against OSv's constraints (no fork, PIE required).
  unikernel::LoadResult can_run(const unikernel::AppImage& app) const;

  core::BootTimeline boot_timeline() const override;
  void record_workload(WorkloadClass w, sim::Rng& rng) override;

  /// "Syscalls" are function calls into the library OS — no mode switch,
  /// but OSv's own primitives are slower under contention.
  sim::Nanos sync_syscall_cost(sim::Rng& rng) const override;

 protected:
  void record_boot_trace(sim::Rng& rng) override;

 private:
  OsvHypervisor hypervisor_;
  vmm::Vm vm_;
  unikernel::ElfLinker linker_;
  unikernel::OsvScheduler scheduler_;
  unikernel::AppImage app_;
};

}  // namespace platforms
