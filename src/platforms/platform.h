// The isolation-platform abstraction — the library's primary public API.
//
// A Platform bundles everything the paper measures about one isolation
// option: its boot sequence (Figures 13-15), CPU/memory/I/O/network
// profiles (Figures 5-12), application-visible syscall costs (Figures
// 16-17), and the host-kernel footprint of running workloads on it
// (Figure 18, the HAP study). Concrete subclasses assemble the models of
// Section 2's architectures; PlatformFactory (factory.h) builds the ten
// configurations the paper evaluates.
#pragma once

#include <memory>
#include <string>

#include "core/boot.h"
#include "core/cpu_profile.h"
#include "core/host_system.h"
#include "mem/hierarchy.h"
#include "net/net_path.h"
#include "sim/clock.h"
#include "sim/rng.h"
#include "storage/block_path.h"

namespace platforms {

enum class PlatformId {
  kNative,
  kDocker,
  kLxc,
  kQemuKvm,
  kFirecracker,
  kCloudHypervisor,
  kKataContainers,
  kGvisor,
  kOsvQemu,
  kOsvFirecracker,
};

std::string platform_id_name(PlatformId id);

/// Feature support; experiments honor these the way the paper excludes
/// platforms from individual figures.
struct Capabilities {
  bool extra_disk = true;    // can attach a dedicated benchmark disk
  bool libaio = true;        // fio's libaio engine works
  bool fork_exec = true;     // multi-process applications
  bool hugepages = true;
  bool smp = true;           // multiple vCPUs available to the guest
};

/// Workload classes traced in the HAP experiment (Section 4).
enum class WorkloadClass { kCpu, kMemory, kIo, kNetwork, kStartup };

std::string workload_class_name(WorkloadClass w);

class Platform {
 public:
  Platform(PlatformId id, std::string name, core::HostSystem& host);
  virtual ~Platform() = default;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  PlatformId id() const { return id_; }
  const std::string& name() const { return name_; }
  core::HostSystem& host() { return *host_; }

  const Capabilities& capabilities() const { return caps_; }
  const core::CpuProfile& cpu_profile() const { return cpu_; }
  const mem::MemoryProfile& memory_profile() const { return memory_; }

  /// Network attachment (present on every platform).
  net::NetPath& net() { return *net_; }

  /// Block I/O path; null when the platform cannot attach a test disk.
  storage::BlockPath* block() { return block_.get(); }

  /// The full end-to-end startup sequence (process creation to process
  /// termination, the paper's Section 3.5 convention).
  virtual core::BootTimeline boot_timeline() const = 0;

  /// Boot once: records HAP-visible setup syscalls and advances the clock
  /// by the sampled end-to-end duration.
  core::BootResult boot(sim::Clock& clock, sim::Rng& rng);

  /// boot() without the per-stage BootResult: the composed timeline is
  /// cached after the first call (platform configurations are immutable
  /// after construction) and only the total is sampled. Identical RNG
  /// draw sequence and syscall trace to boot() — the fleet engine boots
  /// thousands of tenants through this.
  sim::Nanos boot_total(sim::Clock& clock, sim::Rng& rng);

  /// Record the host-kernel activity of running one unit of a workload
  /// class on this platform (ftrace must be started by the caller).
  virtual void record_workload(WorkloadClass w, sim::Rng& rng) = 0;

  /// Guest-visible cost of one synchronization-class syscall (futex wake
  /// or similar): drives the application benchmarks' contention models.
  virtual sim::Nanos sync_syscall_cost(sim::Rng& rng) const;

 protected:
  /// Subclass assembly helpers.
  void set_capabilities(Capabilities caps) { caps_ = caps; }
  void set_cpu_profile(core::CpuProfile cpu) { cpu_ = cpu; }
  void set_memory_profile(mem::MemoryProfile m) { memory_ = m; }
  void set_net(net::NetPathSpec spec);
  void set_block(storage::BlockPathSpec spec);

  /// HAP-visible boot-time syscalls; called by boot().
  virtual void record_boot_trace(sim::Rng& rng) = 0;

  hostk::HostKernel& kernel() { return host_->kernel(); }

 private:
  const core::BootTimeline& cached_timeline();

  PlatformId id_;
  std::string name_;
  core::HostSystem* host_;
  Capabilities caps_;
  core::CpuProfile cpu_;
  mem::MemoryProfile memory_;
  std::unique_ptr<net::NetPath> net_;
  std::unique_ptr<storage::BlockPath> block_;
  core::BootTimeline timeline_cache_;
  bool timeline_cached_ = false;
};

}  // namespace platforms
