#include "platforms/osv_platform.h"

#include "net/net_path.h"
#include "sim/distribution.h"
#include "storage/block_path.h"

namespace platforms {

using hostk::Syscall;

namespace {
vmm::VmmSpec vmm_spec_for(OsvHypervisor h) {
  switch (h) {
    case OsvHypervisor::kQemu:
      return vmm::VmmCatalog::osv_on_qemu();
    case OsvHypervisor::kQemuMicroVm:
      return vmm::VmmCatalog::osv_on_qemu_microvm();
    case OsvHypervisor::kFirecracker:
      return vmm::VmmCatalog::osv_on_firecracker();
  }
  return vmm::VmmCatalog::osv_on_qemu();
}

PlatformId id_for(OsvHypervisor h) {
  return h == OsvHypervisor::kFirecracker ? PlatformId::kOsvFirecracker
                                          : PlatformId::kOsvQemu;
}

std::string name_for(OsvHypervisor h) {
  switch (h) {
    case OsvHypervisor::kQemu:
      return "osv";
    case OsvHypervisor::kQemuMicroVm:
      return "osv-microvm";
    case OsvHypervisor::kFirecracker:
      return "osv-fc";
  }
  return "osv";
}
}  // namespace

OsvPlatform::OsvPlatform(core::HostSystem& host, OsvHypervisor hypervisor,
                         unikernel::AppImage app)
    : Platform(id_for(hypervisor), name_for(hypervisor), host),
      hypervisor_(hypervisor),
      vm_(vmm_spec_for(hypervisor), host.kernel()),
      app_(std::move(app)) {
  Capabilities caps;
  caps.fork_exec = false;  // no multi-process support (Section 2.4.1)
  caps.libaio = false;     // fio's libaio engine does not work on OSv
  caps.extra_disk = hypervisor != OsvHypervisor::kFirecracker;
  set_capabilities(caps);
  set_cpu_profile(scheduler_.cpu_profile());
  set_memory_profile(vm_.memory_profile());
  set_net(hypervisor == OsvHypervisor::kFirecracker
              ? net::NetPathCatalog::osv_firecracker()
              : net::NetPathCatalog::osv_qemu());
  if (caps.extra_disk) {
    set_block(storage::BlockPathCatalog::osv_zfs());
  }
}

unikernel::LoadResult OsvPlatform::can_run(const unikernel::AppImage& app) const {
  return linker_.load(app);
}

core::BootTimeline OsvPlatform::boot_timeline() const {
  core::BootTimeline t;
  t.append(vm_.boot_timeline());
  t.append(linker_.link_timeline(app_));
  return t;
}

void OsvPlatform::record_boot_trace(sim::Rng& rng) {
  sim::Clock scratch;
  vm_.record_boot(scratch, rng);
}

sim::Nanos OsvPlatform::sync_syscall_cost(sim::Rng& rng) const {
  // A lock handoff through OSv's own primitives: cheap to enter (function
  // call) but the custom scheduler makes contended handoffs expensive.
  return linker_.call_cost(rng) +
         sim::DurationDist::lognormal(sim::nanos(3800), 0.3).sample(rng);
}

void OsvPlatform::record_workload(WorkloadClass w, sim::Rng& rng) {
  auto& k = kernel();
  if (w == WorkloadClass::kStartup) {
    record_boot_trace(rng);
    return;
  }
  // Finding 27: OSv executes host kernel functions *sparingly* — guest
  // "syscalls" never leave the guest, and the minimal device set exits
  // rarely. Only a thin KVM_RUN + event-loop trickle reaches the host.
  vm_.record_steady_state(w == WorkloadClass::kCpu ? 8 : 48, rng);
  if (w == WorkloadClass::kNetwork) {
    net().record_traffic(32ull << 20, host().nic(), rng);
  }
  if (w == WorkloadClass::kIo) {
    k.invoke(Syscall::kPread64, rng, 24);
    k.invoke(Syscall::kPwrite64, rng, 24);
  }
}

}  // namespace platforms
