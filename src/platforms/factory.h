// PlatformFactory: builds the paper's evaluated configurations.
#pragma once

#include <memory>
#include <vector>

#include "platforms/platform.h"
#include "securec/gvisor.h"
#include "storage/shared_fs.h"

namespace platforms {

/// Options for the configurable platforms.
struct FactoryOptions {
  /// Kata shared filesystem (Finding 7's ablation).
  storage::SharedFsProtocol kata_shared_fs = storage::SharedFsProtocol::kNineP;
  /// gVisor interception platform (ptrace vs KVM).
  securec::GvisorPlatform gvisor_platform = securec::GvisorPlatform::kPtrace;
  /// Route container creation through the Docker daemon (vs direct OCI).
  bool via_docker_daemon = false;
};

class PlatformFactory {
 public:
  /// Build one platform by id.
  static std::unique_ptr<Platform> create(PlatformId id, core::HostSystem& host,
                                          const FactoryOptions& opts = {});

  /// The ten configurations of the paper's performance study, in the
  /// order the figures list them.
  static std::vector<std::unique_ptr<Platform>> paper_lineup(
      core::HostSystem& host);
};

}  // namespace platforms
