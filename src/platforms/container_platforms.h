// Namespace-based container platforms: Docker and LXC (Section 2.2).
#pragma once

#include "container/runtime.h"
#include "platforms/platform.h"

namespace platforms {

/// Docker: runc + overlay2 + bridge networking + tini init. Constructed
/// either through the Docker daemon or by invoking the OCI runtime
/// directly (Figure 13 plots both).
class DockerPlatform : public Platform {
 public:
  DockerPlatform(core::HostSystem& host, bool via_daemon);

  bool via_daemon() const { return via_daemon_; }

  core::BootTimeline boot_timeline() const override;
  void record_workload(WorkloadClass w, sim::Rng& rng) override;

 protected:
  void record_boot_trace(sim::Rng& rng) override;

 private:
  bool via_daemon_;
  container::ContainerRuntime runtime_;
};

/// LXC: "an environment as close as possible to a standard Linux
/// installation" — full systemd init and a ZFS storage pool.
class LxcPlatform : public Platform {
 public:
  LxcPlatform(core::HostSystem& host, bool unprivileged = false);

  core::BootTimeline boot_timeline() const override;
  void record_workload(WorkloadClass w, sim::Rng& rng) override;

 protected:
  void record_boot_trace(sim::Rng& rng) override;

 private:
  container::ContainerRuntime runtime_;
};

}  // namespace platforms
