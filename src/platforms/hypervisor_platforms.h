// Hypervisor platforms: QEMU/KVM, Firecracker, Cloud Hypervisor (§2.1).
#pragma once

#include "platforms/platform.h"
#include "vmm/vm.h"

namespace platforms {

/// Which VMM flavor a HypervisorPlatform models; decides the breadth of
/// host-kernel activity its event loop generates (the HAP differences of
/// Findings 24 & 25).
enum class VmmFlavor { kQemu, kFirecracker, kCloudHypervisor };

/// A full-system VM platform: guest Linux on a VMM on KVM.
class HypervisorPlatform : public Platform {
 public:
  HypervisorPlatform(PlatformId id, std::string name, core::HostSystem& host,
                     vmm::VmmSpec vmm_spec, VmmFlavor flavor);

  static std::unique_ptr<HypervisorPlatform> qemu(core::HostSystem& host);
  static std::unique_ptr<HypervisorPlatform> firecracker(core::HostSystem& host);
  static std::unique_ptr<HypervisorPlatform> cloud_hypervisor(
      core::HostSystem& host);

  vmm::Vm& vm() { return vm_; }
  VmmFlavor flavor() const { return flavor_; }

  core::BootTimeline boot_timeline() const override;
  void record_workload(WorkloadClass w, sim::Rng& rng) override;

  /// Guest syscalls are served by the guest kernel; only a fraction exits
  /// to the host. Synchronization stays fully in-guest.
  sim::Nanos sync_syscall_cost(sim::Rng& rng) const override;

 protected:
  void record_boot_trace(sim::Rng& rng) override;

 private:
  vmm::Vm vm_;
  VmmFlavor flavor_;
};

}  // namespace platforms
