#include "platforms/native_platform.h"

#include "net/net_path.h"
#include "storage/block_path.h"
#include "vmm/vm_memory.h"

namespace platforms {

using hostk::Syscall;
using sim::DurationDist;
using sim::millis;

NativePlatform::NativePlatform(core::HostSystem& host)
    : Platform(PlatformId::kNative, "native", host) {
  set_capabilities({});
  set_cpu_profile({});
  set_memory_profile(vmm::MemoryBackingCatalog::host_native().profile);
  set_net(net::NetPathCatalog::native());
  set_block(storage::BlockPathCatalog::native());
}

core::BootTimeline NativePlatform::boot_timeline() const {
  core::BootTimeline t;
  t.stage("native:fork-exec", DurationDist::lognormal(millis(2.1), 0.2));
  t.stage("native:exit", DurationDist::lognormal(millis(0.9), 0.25));
  return t;
}

void NativePlatform::record_boot_trace(sim::Rng& rng) {
  kernel().invoke(Syscall::kClone, rng, 1);
  kernel().invoke(Syscall::kExecve, rng, 1);
  kernel().invoke(Syscall::kExitGroup, rng, 1);
  kernel().invoke(Syscall::kWait4, rng, 1);
}

void NativePlatform::record_workload(WorkloadClass w, sim::Rng& rng) {
  auto& k = kernel();
  switch (w) {
    case WorkloadClass::kCpu:
      // A compute loop barely touches the kernel: timer ticks and the
      // occasional yield.
      k.invoke(Syscall::kClockGettime, rng, 32);
      k.invoke(Syscall::kSchedYield, rng, 4);
      k.invoke(Syscall::kFutexWait, rng, 2);
      k.invoke(Syscall::kFutexWake, rng, 2);
      break;
    case WorkloadClass::kMemory:
      k.invoke(Syscall::kMmap, rng, 16);
      k.invoke(Syscall::kMadvise, rng, 8);
      k.invoke(Syscall::kBrk, rng, 4);
      k.invoke(Syscall::kMunmap, rng, 16);
      k.invoke(Syscall::kMprotect, rng, 4);
      break;
    case WorkloadClass::kIo:
      k.invoke(Syscall::kOpenat, rng, 4);
      k.invoke(Syscall::kFallocate, rng, 1);
      k.invoke(Syscall::kIoSubmit, rng, 64);
      k.invoke(Syscall::kIoGetevents, rng, 64);
      k.invoke(Syscall::kFsync, rng, 2);
      k.invoke(Syscall::kClose, rng, 4);
      k.invoke(Syscall::kFstat, rng, 4);
      break;
    case WorkloadClass::kNetwork:
      net().record_traffic(32ull << 20, host().nic(), rng);
      k.invoke(Syscall::kSocket, rng, 1);
      k.invoke(Syscall::kConnect, rng, 1);
      k.invoke(Syscall::kSetsockopt, rng, 2);
      k.invoke(Syscall::kEpollWait, rng, 16);
      break;
    case WorkloadClass::kStartup:
      record_boot_trace(rng);
      break;
  }
}

}  // namespace platforms
