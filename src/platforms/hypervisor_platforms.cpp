#include "platforms/hypervisor_platforms.h"

#include "net/net_path.h"
#include "sim/distribution.h"
#include "storage/block_path.h"

namespace platforms {

using hostk::Syscall;

namespace {
// Host syscalls any general-purpose VMM process issues while serving a
// guest: file-backed images, guest-memory management, monitor/QMP
// sockets, worker-thread signaling. Cloud Hypervisor deliberately does
// NOT go through here — its work-in-progress feature surface is the
// reason Finding 25 measures so few host functions for it.
void record_vmm_userspace_surface(hostk::HostKernel& k, sim::Rng& rng) {
  k.invoke(Syscall::kOpenat, rng, 6);
  k.invoke(Syscall::kClose, rng, 6);
  k.invoke(Syscall::kFstat, rng, 4);
  k.invoke(Syscall::kStatx, rng, 2);
  k.invoke(Syscall::kMmap, rng, 8);
  k.invoke(Syscall::kMunmap, rng, 4);
  k.invoke(Syscall::kBrk, rng, 2);
  k.invoke(Syscall::kMadvise, rng, 4);
  k.invoke(Syscall::kSocket, rng, 1);   // monitor socket
  k.invoke(Syscall::kAccept4, rng, 1);
  k.invoke(Syscall::kSendmsg, rng, 2);
  k.invoke(Syscall::kRecvmsg, rng, 2);
  k.invoke(Syscall::kPipe2, rng, 1);
  k.invoke(Syscall::kDup3, rng, 1);
  k.invoke(Syscall::kFcntl, rng, 2);
  k.invoke(Syscall::kGetdents64, rng, 1);
  k.invoke(Syscall::kReadv, rng, 8);
  k.invoke(Syscall::kWritev, rng, 8);
  k.invoke(Syscall::kPread64, rng, 8);
  k.invoke(Syscall::kPwrite64, rng, 8);
  k.invoke(Syscall::kWait4, rng, 1);
  k.invoke(Syscall::kTgkill, rng, 2);   // vCPU-thread kicks
  k.invoke(Syscall::kRtSigreturn, rng, 2);
  k.invoke(Syscall::kNanosleep, rng, 2);
  k.invoke(Syscall::kProcRead, rng, 1);
  k.invoke(Syscall::kIoctlTun, rng, 4);
  // Disk-image housekeeping: sparse allocation, flush barriers, and the
  // loop-device-backed rootfs path from Section 3.3.
  k.invoke(Syscall::kFallocate, rng, 1);
  k.invoke(Syscall::kFsync, rng, 2);
  k.invoke(Syscall::kLseek, rng, 4);
  k.invoke(Syscall::kIoctlLoop, rng, 2);
  k.invoke(Syscall::kConnect, rng, 1);
}
}  // namespace

HypervisorPlatform::HypervisorPlatform(PlatformId id, std::string name,
                                       core::HostSystem& host,
                                       vmm::VmmSpec vmm_spec, VmmFlavor flavor)
    : Platform(id, std::move(name), host),
      vm_(std::move(vmm_spec), host.kernel()),
      flavor_(flavor) {
  set_memory_profile(vm_.memory_profile());
  core::CpuProfile cpu;
  cpu.futex_cost_factor = 1.15;  // guest futexes occasionally trap
  set_cpu_profile(cpu);
}

std::unique_ptr<HypervisorPlatform> HypervisorPlatform::qemu(
    core::HostSystem& host) {
  auto p = std::make_unique<HypervisorPlatform>(
      PlatformId::kQemuKvm, "qemu-kvm", host, vmm::VmmCatalog::qemu_kvm(),
      VmmFlavor::kQemu);
  p->set_capabilities({});
  p->set_net(net::NetPathCatalog::qemu_tap());
  p->set_block(storage::BlockPathCatalog::qemu_virtio_blk());
  return p;
}

std::unique_ptr<HypervisorPlatform> HypervisorPlatform::firecracker(
    core::HostSystem& host) {
  auto p = std::make_unique<HypervisorPlatform>(
      PlatformId::kFirecracker, "firecracker", host,
      vmm::VmmCatalog::firecracker(), VmmFlavor::kFirecracker);
  Capabilities caps;
  caps.extra_disk = false;  // excluded from the fio figure for this reason
  p->set_capabilities(caps);
  p->set_net(net::NetPathCatalog::firecracker_tap());
  // The ROOT drive still exists (applications like MySQL use it); only a
  // dedicated benchmark disk cannot be attached.
  p->set_block(storage::BlockPathCatalog::firecracker_virtio_blk());
  return p;
}

std::unique_ptr<HypervisorPlatform> HypervisorPlatform::cloud_hypervisor(
    core::HostSystem& host) {
  auto p = std::make_unique<HypervisorPlatform>(
      PlatformId::kCloudHypervisor, "cloud-hypervisor", host,
      vmm::VmmCatalog::cloud_hypervisor(), VmmFlavor::kCloudHypervisor);
  p->set_capabilities({});
  p->set_net(net::NetPathCatalog::cloud_hypervisor_tap());
  p->set_block(storage::BlockPathCatalog::cloud_hypervisor_virtio_blk());
  return p;
}

core::BootTimeline HypervisorPlatform::boot_timeline() const {
  return vm_.boot_timeline();
}

void HypervisorPlatform::record_boot_trace(sim::Rng& rng) {
  sim::Clock scratch;
  vm_.record_boot(scratch, rng);
}

sim::Nanos HypervisorPlatform::sync_syscall_cost(sim::Rng& rng) const {
  // Futexes are handled by the *guest* kernel without a VM exit in the
  // common case; contended wakes sometimes kick a halted vCPU.
  const sim::Nanos guest_cost =
      sim::DurationDist::lognormal(sim::nanos(950), 0.2).sample(rng);
  if (rng.chance(0.08)) {
    return guest_cost + sim::micros(1.8);  // kick -> KVM_RUN re-entry
  }
  return guest_cost;
}

void HypervisorPlatform::record_workload(WorkloadClass w, sim::Rng& rng) {
  auto& k = kernel();
  if (w == WorkloadClass::kStartup) {
    record_boot_trace(rng);
    return;
  }
  // Common to every class: the guest exits and the VMM event loop.
  const std::uint64_t exits =
      w == WorkloadClass::kCpu ? 24 : (w == WorkloadClass::kMemory ? 80 : 320);
  vm_.record_steady_state(exits, rng);

  switch (flavor_) {
    case VmmFlavor::kQemu:
      // The big general-purpose process: main_loop_wait over many fd
      // sources, timers, bottom-halves (Section 2.1.1).
      record_vmm_userspace_surface(k, rng);
      k.invoke(Syscall::kEpollWait, rng, 48);
      k.invoke(Syscall::kClockGettime, rng, 64);
      k.invoke(Syscall::kNanosleep, rng, 4);
      k.invoke(Syscall::kFutexWait, rng, 12);
      k.invoke(Syscall::kFutexWake, rng, 12);
      k.invoke(Syscall::kEventfd2, rng, 2);
      if (w == WorkloadClass::kIo) {
        k.invoke(Syscall::kIoSubmit, rng, 96);
        k.invoke(Syscall::kIoGetevents, rng, 96);
        k.invoke(Syscall::kPread64, rng, 16);
        k.invoke(Syscall::kPwrite64, rng, 16);
      }
      if (w == WorkloadClass::kNetwork) {
        net().record_traffic(32ull << 20, host().nic(), rng);
      }
      if (w == WorkloadClass::kMemory) {
        k.invoke(Syscall::kMadvise, rng, 8);
        k.invoke(Syscall::kMmap, rng, 4);
      }
      break;

    case VmmFlavor::kFirecracker:
      // Finding 24: the minimalist VMM exposes the WIDEST interface —
      // every virtio kick, timer, API-socket poll and rate-limiter check
      // is an individual small syscall, and the jailer adds the whole
      // namespace/cgroup/chroot surface that other hypervisors never
      // touch. Minimal device model != minimal host interface.
      record_vmm_userspace_surface(k, rng);
      k.invoke(Syscall::kUnshare, rng, 1);    // jailer namespaces
      k.invoke(Syscall::kPivotRoot, rng, 1);  // jailer chroot
      k.invoke(Syscall::kMount, rng, 2);
      k.invoke(Syscall::kCgroupWrite, rng, 3);
      k.invoke(Syscall::kSeccompLoad, rng, 1);
      k.invoke(Syscall::kSetns, rng, 1);
      k.invoke(Syscall::kClone3, rng, 1);     // jailer -> firecracker
      k.invoke(Syscall::kExecve, rng, 1);
      k.invoke(Syscall::kKill, rng, 1);       // watchdog teardown path
      k.invoke(Syscall::kEpollWait, rng, 160);
      k.invoke(Syscall::kClockGettime, rng, 128);
      k.invoke(Syscall::kEventfd2, rng, 4);
      k.invoke(Syscall::kRead, rng, 96);   // eventfd + device queues
      k.invoke(Syscall::kWrite, rng, 96);
      k.invoke(Syscall::kFutexWait, rng, 24);
      k.invoke(Syscall::kFutexWake, rng, 24);
      k.invoke(Syscall::kNanosleep, rng, 8);
      k.invoke(Syscall::kSchedYield, rng, 8);
      k.invoke(Syscall::kMadvise, rng, 12);  // balloon/dirty tracking
      k.invoke(Syscall::kMprotect, rng, 6);
      k.invoke(Syscall::kMmap, rng, 6);
      k.invoke(Syscall::kAccept4, rng, 1);  // API socket
      k.invoke(Syscall::kRecvfrom, rng, 4);
      k.invoke(Syscall::kSendto, rng, 4);
      k.invoke(Syscall::kStatx, rng, 4);    // jailer chroot checks
      k.invoke(Syscall::kGetdents64, rng, 2);
      k.invoke(Syscall::kFcntl, rng, 4);
      k.invoke(Syscall::kDup3, rng, 2);
      k.invoke(Syscall::kPipe2, rng, 1);
      k.invoke(Syscall::kPrctl, rng, 2);
      k.invoke(Syscall::kTgkill, rng, 2);   // vCPU thread signaling
      k.invoke(Syscall::kRtSigreturn, rng, 2);
      k.invoke(Syscall::kProcRead, rng, 2);
      if (w == WorkloadClass::kIo) {
        k.invoke(Syscall::kPread64, rng, 128);
        k.invoke(Syscall::kPwrite64, rng, 128);
        k.invoke(Syscall::kFsync, rng, 8);
      }
      if (w == WorkloadClass::kNetwork) {
        net().record_traffic(32ull << 20, host().nic(), rng);
        k.invoke(Syscall::kReadv, rng, 64);
        k.invoke(Syscall::kWritev, rng, 64);
      }
      break;

    case VmmFlavor::kCloudHypervisor:
      // Finding 25: surprisingly few host functions — the work-in-progress
      // VMM simply does not exercise much of the host surface yet.
      k.invoke(Syscall::kEpollWait, rng, 24);
      k.invoke(Syscall::kRead, rng, 16);
      k.invoke(Syscall::kWrite, rng, 16);
      k.invoke(Syscall::kClockGettime, rng, 16);
      if (w == WorkloadClass::kIo) {
        k.invoke(Syscall::kPread64, rng, 32);
        k.invoke(Syscall::kPwrite64, rng, 32);
      }
      if (w == WorkloadClass::kNetwork) {
        net().record_traffic(32ull << 20, host().nic(), rng);
      }
      break;
  }
}

}  // namespace platforms
