#include "platforms/container_platforms.h"

#include "net/net_path.h"
#include "storage/block_path.h"
#include "vmm/vm_memory.h"

namespace platforms {

using container::RuntimeCatalog;
using hostk::Syscall;

namespace {
// Containers share the host kernel: workload-induced host activity is the
// native activity plus namespace/cgroup bookkeeping.
void record_shared_kernel_workload(Platform& p, hostk::HostKernel& k,
                                   WorkloadClass w, sim::Rng& rng) {
  switch (w) {
    case WorkloadClass::kCpu:
      k.invoke(Syscall::kClockGettime, rng, 32);
      k.invoke(Syscall::kSchedYield, rng, 4);
      k.invoke(Syscall::kFutexWait, rng, 2);
      k.invoke(Syscall::kFutexWake, rng, 2);
      break;
    case WorkloadClass::kMemory:
      k.invoke(Syscall::kMmap, rng, 16);
      k.invoke(Syscall::kMadvise, rng, 8);
      k.invoke(Syscall::kBrk, rng, 4);
      k.invoke(Syscall::kMunmap, rng, 16);
      break;
    case WorkloadClass::kIo:
      k.invoke(Syscall::kOpenat, rng, 4);
      k.invoke(Syscall::kIoSubmit, rng, 64);
      k.invoke(Syscall::kIoGetevents, rng, 64);
      k.invoke(Syscall::kFsync, rng, 2);
      k.invoke(Syscall::kClose, rng, 4);
      break;
    case WorkloadClass::kNetwork:
      p.net().record_traffic(32ull << 20, p.host().nic(), rng);
      k.invoke(Syscall::kEpollWait, rng, 16);
      break;
    case WorkloadClass::kStartup:
      break;  // handled by the caller via record_boot_trace
  }
  // cgroup accounting shows up on every class.
  k.invoke(Syscall::kCgroupWrite, rng, 1);
  k.invoke(Syscall::kProcRead, rng, 1);
}
}  // namespace

DockerPlatform::DockerPlatform(core::HostSystem& host, bool via_daemon)
    : Platform(PlatformId::kDocker,
               via_daemon ? "docker" : "docker-oci", host),
      via_daemon_(via_daemon),
      runtime_(via_daemon ? RuntimeCatalog::docker_daemon()
                          : RuntimeCatalog::runc_oci(),
               host.kernel()) {
  set_capabilities({});
  set_cpu_profile({});
  set_memory_profile(vmm::MemoryBackingCatalog::host_native().profile);
  set_net(net::NetPathCatalog::docker_bridge());
  set_block(storage::BlockPathCatalog::docker_bind_mount());
}

core::BootTimeline DockerPlatform::boot_timeline() const {
  return runtime_.boot_timeline();
}

void DockerPlatform::record_boot_trace(sim::Rng& rng) {
  sim::Clock scratch;
  runtime_.record_boot(scratch, rng);
}

void DockerPlatform::record_workload(WorkloadClass w, sim::Rng& rng) {
  if (w == WorkloadClass::kStartup) {
    record_boot_trace(rng);
    return;
  }
  record_shared_kernel_workload(*this, kernel(), w, rng);
}

LxcPlatform::LxcPlatform(core::HostSystem& host, bool unprivileged)
    : Platform(PlatformId::kLxc, unprivileged ? "lxc-unpriv" : "lxc", host),
      runtime_(unprivileged ? RuntimeCatalog::lxc_unprivileged()
                            : RuntimeCatalog::lxc(),
               host.kernel()) {
  set_capabilities({});
  set_cpu_profile({});
  set_memory_profile(vmm::MemoryBackingCatalog::host_native().profile);
  set_net(net::NetPathCatalog::lxc_bridge());
  set_block(storage::BlockPathCatalog::lxc_zfs());
}

core::BootTimeline LxcPlatform::boot_timeline() const {
  return runtime_.boot_timeline();
}

void LxcPlatform::record_boot_trace(sim::Rng& rng) {
  sim::Clock scratch;
  runtime_.record_boot(scratch, rng);
}

void LxcPlatform::record_workload(WorkloadClass w, sim::Rng& rng) {
  if (w == WorkloadClass::kStartup) {
    record_boot_trace(rng);
    return;
  }
  record_shared_kernel_workload(*this, kernel(), w, rng);
}

}  // namespace platforms
