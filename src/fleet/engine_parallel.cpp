// Parallel execution mode for FleetEngine (Scenario::threads > 1).
//
// Conservative parallel discrete-event simulation over the engine's shard
// structure: shards only interact through placement and autoscale decisions,
// all of which happen at *coordinator events* (arrivals, host events,
// autoscale evaluations). Everything between two coordinator events is
// shard-local, so it can run on a worker pool — as long as the global side
// effects (report accumulators, fleet counters, event sequence numbers) are
// applied in exactly the order the sequential loop would have produced.
// Reports are byte-identical to `threads = 1` at every thread count; the
// differential tests in tests/fleet_parallel_test.cpp pin that.
//
// Two mechanisms share one worker pool:
//
//  * Boot lanes. Arrival processing is inherently serial (placement is a
//    global decision), and during a storm nearly every instant has an
//    arrival, which would starve windows. But the expensive part of a boot
//    — platform boot-sequence sampling plus the image pull through the
//    shard's page cache and NVMe — is shard-local and runs *between* the
//    kBootPhys event and its kBootDone. When the coordinator pops a
//    kBootPhys it reserves the kBootDone's sequence number immediately
//    (that is all determinism needs: only the completion *time* is still
//    unknown) and hands the physics to the owning shard's FIFO lane.
//    Workers compute completion times behind the coordinator's back while
//    it keeps placing arrivals; completed boots are harvested back into
//    the global queue before the queue could reach them. kBootFloorNs
//    makes the harvest horizon provable: a boot issued at time T cannot
//    complete before T + kBootFloorNs, so an entry is only forced (waited
//    on) once the queue is about to pop an event at or past that horizon.
//    Per-lane FIFO order equals the sequential per-shard order, so page
//    cache and RNG streams see identical access sequences.
//
//  * Windows. When the queue's head is a shard-local event (kBootDone,
//    kPhaseDone, kTeardown, or an in-flight kBootPhys), the coordinator
//    extracts the maximal run of such events — up to the next coordinator
//    event, and no further than churn_gap ahead when churn is on (a
//    teardown at time t can spawn a re-arrival no earlier than
//    t + churn_gap, so nothing inside the window can create a coordinator
//    event inside the window) — into per-shard sub-queues. Workers drain
//    the sub-queues concurrently, applying shard-local state directly and
//    recording every global effect in a WorkerRecord. The coordinator then
//    replays the records in merged (time, sequence) order, reproducing the
//    sequential loop's report updates, sequence-number issue order, and
//    event-generation order bit for bit.
//
// Sequence reconstruction: events born inside a window (a phase completion
// scheduled by a phase start, a teardown scheduled by the last phase) get
// per-shard provisional sequence numbers at or above win_seq_base_ (the
// queue's next_seq() snapshot — strictly greater than every real queued
// seq, so sub-queue ordering is correct). The replay issues one real
// reserve_seqs(1) per generated event in merged order — exactly where the
// sequential loop would have stamped it — and `born` maps each shard's
// k-th provisional seq to its real one. A parent record always precedes
// its child in the shard's stream, so the child's real seq is known by the
// time the merge needs it.
#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/demand.h"
#include "fleet/engine.h"

namespace fleet {

namespace {

using demand::kBootVcpus;
using demand::workload_vcpus;

/// Windows smaller than this are drained inline by the coordinator: the
/// records/replay path is identical (so bytes are too), it just skips the
/// pool wakeup, which would cost more than it buys on tiny windows.
constexpr std::size_t kMinParallelWindow = 64;

bool is_coordinator_kind(EventKind k) {
  // Fault events are barriers too: a crash rewrites foreign tenants' state
  // and the topology, a partition boundary changes NIC behavior on either
  // side of it, and a degrade boundary mutates KSM state (the unmerge
  // storm / re-merge scan) that admissions read.
  return k == EventKind::kArrival || k == EventKind::kHostEvent ||
         k == EventKind::kAutoscaleEval || k == EventKind::kHostCrash ||
         k == EventKind::kPartitionStart || k == EventKind::kPartitionEnd ||
         k == EventKind::kDegradeStart || k == EventKind::kDegradeEnd;
}

}  // namespace

// --- Worker pool + boot lanes ------------------------------------------------

class FleetEngine::ParallelCtx {
 public:
  ParallelCtx(FleetEngine& engine, const Scenario& s, int workers)
      : engine_(engine), scenario_(&s) {
    lanes_.resize(engine_.shards_.size());
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  ParallelCtx(const ParallelCtx&) = delete;
  ParallelCtx& operator=(const ParallelCtx&) = delete;

  ~ParallelCtx() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
      cv_.notify_all();
    }
    for (std::thread& th : threads_) {
      th.join();
    }
  }

  /// Boots still in flight. Coordinator-only state, no lock needed.
  std::size_t outstanding() const { return outstanding_; }

  /// Queue one deferred boot's physics on the owning shard's lane. `seq` is
  /// the kBootDone's pre-reserved global sequence number.
  void submit(const Event& e, std::uint64_t seq) {
    std::lock_guard<std::mutex> lk(mu_);
    const int shard = engine_.tenants_[e.tenant].host;
    Lane& lane = lanes_[static_cast<std::size_t>(shard)];
    lane.entries.push_back(Entry{e.time, 0, e.tenant, seq, e.epoch});
    fifo_.push_back(shard);
    ++outstanding_;
    cv_.notify_one();
  }

  /// Harvest completed boots back into the global queue, in submission
  /// order. With `all`, drains every outstanding entry (the full barrier
  /// before windows and topology changes); otherwise only entries whose
  /// provable earliest completion (phys + kBootFloorNs) is at or before
  /// `horizon` — later entries cannot produce events the queue could reach
  /// yet. Waits for (or computes inline) entries that are due but not done.
  /// Returns true if anything was pushed, so the caller re-examines top().
  bool harvest(sim::Nanos horizon, bool all) {
    bool pushed = false;
    std::vector<Entry*> batch;
    std::unique_lock<std::mutex> lk(mu_);
    while (!fifo_.empty()) {
      const int li = fifo_.front();
      Lane& lane = lanes_[static_cast<std::size_t>(li)];
      {
        const Entry& e = lane.entries[lane.harvested - lane.base];
        if (!all && e.phys + kBootFloorNs > horizon) {
          break;  // fifo_ is phys-nondecreasing: nothing further is due
        }
      }
      if (lane.done <= lane.harvested) {
        // Due but not computed. If the lane is idle, run its backlog on
        // this thread; otherwise a worker owns the in-flight batch — wait
        // for it. Either way, re-examine the front afterwards.
        if (!lane.busy && lane.claimed <= lane.harvested) {
          run_lane_batch(lk, li, batch);
        } else {
          done_cv_.wait(lk);
        }
        continue;
      }
      const Entry e = lane.entries[lane.harvested - lane.base];
      ++lane.harvested;
      while (lane.base < lane.harvested) {
        lane.entries.pop_front();
        ++lane.base;
      }
      fifo_.pop_front();
      --outstanding_;
      engine_.queue_.push_at_seq(e.done, e.seq, e.tenant, EventKind::kBootDone,
                                 e.epoch);
      pushed = true;
    }
    return pushed;
  }

  /// A host event may have added shards: give them lanes.
  void ensure_topology() {
    std::lock_guard<std::mutex> lk(mu_);
    while (lanes_.size() < engine_.shards_.size()) {
      lanes_.emplace_back();
    }
  }

  /// Drain the current window's per-shard sub-queues on the pool; the
  /// coordinator participates. Returns once every shard task is drained.
  void run_window() {
    std::unique_lock<std::mutex> lk(mu_);
    window_next_ = 0;
    window_count_ = engine_.win_shards_.size();
    window_remaining_ = window_count_;
    window_active_ = true;
    cv_.notify_all();
    while (true) {
      if (window_next_ < window_count_) {
        const int h = engine_.win_shards_[window_next_++];
        lk.unlock();
        engine_.window_drain(engine_.tasks_[static_cast<std::size_t>(h)],
                             *scenario_);
        lk.lock();
        if (--window_remaining_ == 0) {
          break;
        }
        continue;
      }
      if (window_remaining_ == 0) {
        break;
      }
      done_cv_.wait(lk);
    }
    window_active_ = false;
  }

 private:
  /// One deferred boot: submitted by the coordinator, computed by a worker
  /// (done = completion time), harvested back by the coordinator.
  struct Entry {
    sim::Nanos phys = 0;
    sim::Nanos done = 0;
    std::uint64_t tenant = 0;
    std::uint64_t seq = 0;
    std::uint32_t epoch = 0;
  };

  /// Per-shard FIFO of deferred boots. Indices (claimed/done/harvested) are
  /// absolute submission counts; `base` is the count already popped off the
  /// deque's front. `busy` gives one worker at a time exclusive ownership
  /// of the lane's claimed-but-unfinished batch, which preserves the
  /// per-shard page-cache and RNG order the sequential engine produces.
  struct Lane {
    std::deque<Entry> entries;
    std::size_t base = 0;
    std::size_t claimed = 0;
    std::size_t done = 0;
    std::size_t harvested = 0;
    bool busy = false;
  };

  void compute(Entry& e) {
    Tenant& t = engine_.tenants_[e.tenant];
    Shard& sh = engine_.shards_[static_cast<std::size_t>(t.host)];
    e.done = engine_.boot_physics(sh, t, *scenario_, t.boot_factor);
  }

  /// Claim lane li's whole backlog and compute it outside the lock. Entry
  /// pointers stay valid across the unlock: std::deque never moves elements
  /// on push_back, and the harvested prefix (the only part popped) is
  /// always behind `claimed`.
  void run_lane_batch(std::unique_lock<std::mutex>& lk, int li,
                      std::vector<Entry*>& batch) {
    Lane& lane = lanes_[static_cast<std::size_t>(li)];
    const std::size_t begin = lane.claimed;
    const std::size_t end = lane.base + lane.entries.size();
    lane.claimed = end;
    lane.busy = true;
    batch.clear();
    for (std::size_t i = begin; i < end; ++i) {
      batch.push_back(&lane.entries[i - lane.base]);
    }
    lk.unlock();
    for (Entry* e : batch) {
      compute(*e);
    }
    lk.lock();
    lane.done = end;
    lane.busy = false;
    done_cv_.notify_all();
  }

  /// A lane with unclaimed work, preferring the one the coordinator will
  /// harvest next. -1 if none.
  int find_lane_work() const {
    if (!fifo_.empty()) {
      const int li = fifo_.front();
      const Lane& lane = lanes_[static_cast<std::size_t>(li)];
      if (!lane.busy && lane.claimed < lane.base + lane.entries.size()) {
        return li;
      }
    }
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const Lane& lane = lanes_[i];
      if (!lane.busy && lane.claimed < lane.base + lane.entries.size()) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void worker_main() {
    std::vector<Entry*> batch;
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      if (shutdown_) {
        return;
      }
      if (window_active_ && window_next_ < window_count_) {
        const int h = engine_.win_shards_[window_next_++];
        lk.unlock();
        engine_.window_drain(engine_.tasks_[static_cast<std::size_t>(h)],
                             *scenario_);
        lk.lock();
        if (--window_remaining_ == 0) {
          done_cv_.notify_all();
        }
        continue;
      }
      if (const int li = find_lane_work(); li >= 0) {
        run_lane_batch(lk, li, batch);
        continue;
      }
      cv_.wait(lk);
    }
  }

  FleetEngine& engine_;
  const Scenario* scenario_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_;       // wakes workers (submit/window/shutdown)
  std::condition_variable done_cv_;  // wakes the coordinator (progress)
  bool shutdown_ = false;

  /// Lanes by shard index. A deque so mid-run scale-out can append without
  /// moving lanes other threads may reference.
  std::deque<Lane> lanes_;
  /// Shard index per submission, in submission (= phys-time) order; the
  /// front is always the entry harvest() must emit next.
  std::deque<int> fifo_;
  std::size_t outstanding_ = 0;  // coordinator-only

  // Window dispatch state, all under mu_.
  bool window_active_ = false;
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_remaining_ = 0;
};

// --- Coordinator loop --------------------------------------------------------

void FleetEngine::run_loop_parallel(const Scenario& s,
                                    const std::vector<sim::Nanos>& arrivals,
                                    sim::Nanos& last_event) {
  ParallelCtx ctx(*this, s, std::max(1, s.threads - 1));
  tasks_.clear();
  tasks_.resize(shards_.size());
  win_shards_.clear();

  while (true) {
    if (queue_.empty()) {
      if (ctx.outstanding() == 0) {
        break;  // no events, no boots in flight: the run is over
      }
      ctx.harvest(0, /*all=*/true);
      continue;
    }
    const Event top = queue_.top();
    if (ctx.outstanding() > 0 && ctx.harvest(top.time, /*all=*/false)) {
      continue;  // harvested boots may now precede the old top
    }
    switch (top.kind) {
      case EventKind::kArrival:
        // Placement is the serial core of the run; lanes keep computing
        // boot physics underneath it. An arrival touches placement state,
        // KSM, and demand counters — all coordinator-owned — while lane
        // workers touch only the page cache / NVMe and the booting
        // tenant's private state, so they commute.
        process_event(queue_.pop(), s, arrivals, last_event);
        break;
      case EventKind::kHostEvent:
      case EventKind::kAutoscaleEval:
      case EventKind::kHostCrash:
      case EventKind::kPartitionStart:
      case EventKind::kPartitionEnd:
      case EventKind::kDegradeStart:
      case EventKind::kDegradeEnd:
        // Topology may change here: add_shard can reallocate shards_, and a
        // drain or crash rewrites foreign tenants' state, either of which
        // would race in-flight lane work. Wait out every boot first; the
        // pushes all land strictly after top.time (their horizon has not
        // been reached), so `top` is still the queue's head.
        ctx.harvest(0, /*all=*/true);
        process_event(queue_.pop(), s, arrivals, last_event);
        ctx.ensure_topology();
        if (tasks_.size() < shards_.size()) {
          tasks_.resize(shards_.size());
        }
        break;
      case EventKind::kBootPhys: {
        // Lane path. Mirror the sequential pop accounting, reserve the
        // kBootDone's seq at exactly the point the sequential loop would
        // have stamped it, and let the pool compute the completion time.
        const Event e = queue_.pop();
        ++report_.events_processed;
        global_clock_.advance_to(e.time);
        Tenant& t = tenants_[e.tenant];
        if (e.epoch != t.epoch) {
          break;  // superseded by a drain: inert, consumes no seq
        }
        last_event = e.time;
        ctx.submit(e, queue_.reserve_seqs(1));
        break;
      }
      case EventKind::kBootDone:
      case EventKind::kPhaseDone:
      case EventKind::kProgramStep:
      case EventKind::kTeardown: {
        // Window path. Full lane barrier first: window workers touch the
        // same shard state lanes do, and per-shard ordering requires all
        // earlier (smaller time/seq) boot physics to have run.
        ctx.harvest(0, /*all=*/true);
        const std::size_t n = build_window(s);
        if (n == 0) {
          break;  // defensive: the head was shard-local, so n >= 1
        }
        if (win_shards_.size() > 1 && n >= kMinParallelWindow) {
          ctx.run_window();
        } else {
          for (const int h : win_shards_) {
            window_drain(tasks_[static_cast<std::size_t>(h)], s);
          }
        }
        replay_window(s, last_event);
        break;
      }
    }
  }
}

// --- Window extraction -------------------------------------------------------

std::size_t FleetEngine::build_window(const Scenario& s) {
  const Event first = queue_.top();
  win_seq_base_ = queue_.next_seq();
  // With churn on, a teardown at time t >= first.time re-queues its arrival
  // at t + churn_gap >= this bound, so bounding the window keeps every
  // coordinator event outside it. use_parallel() rejects churn_gap <= 0.
  win_bound_ = s.churn_rounds > 0
                   ? first.time + s.churn_gap
                   : std::numeric_limits<sim::Nanos>::max();
  win_has_stop_ = false;
  win_stop_time_ = 0;
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Event top = queue_.top();
    if (is_coordinator_kind(top.kind)) {
      win_has_stop_ = true;
      win_stop_time_ = top.time;
      break;
    }
    if (top.time >= win_bound_) {
      break;
    }
    const Event e = queue_.pop();
    const int h = tenants_[e.tenant].host;
    ShardTask& task = tasks_[static_cast<std::size_t>(h)];
    if (task.q.empty() && task.records.empty()) {
      win_shards_.push_back(h);  // first touch this window
    }
    task.q.push_at_seq(e.time, e.seq, e.tenant, e.kind, e.epoch);
    ++n;
  }
  return n;
}

bool FleetEngine::birth_in_window(sim::Nanos time) const {
  // An event born at the stop event's own timestamp would still pop after
  // the stop (its seq is issued later), so the strict < is exact.
  return time < win_bound_ && (!win_has_stop_ || time < win_stop_time_);
}

// --- Worker side -------------------------------------------------------------

void FleetEngine::window_drain(ShardTask& task, const Scenario& s) {
  while (!task.q.empty()) {
    window_step(task, task.q.pop(), s);
  }
}

void FleetEngine::worker_start_phase(ShardTask& task, WorkerRecord& r,
                                     Tenant& t, platforms::WorkloadClass w,
                                     const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  sh.cpu_demand += workload_vcpus(w);
  if (w == platforms::WorkloadClass::kNetwork) {
    ++sh.net_active;
  }
  t.in_flight = Tenant::InFlight::kPhase;
  // note_peaks, split. The shard slice runs here; of the global slice,
  // peak_active cannot move inside a window (arrivals set it >= active_,
  // and windows only decrement active_), the fleet-resident check is a
  // no-op (any in-window release strictly shrinks fleet residency below
  // the standing peak) — so only the cpu-demand ratio survives, folded
  // as a running max and merged at replay (max is order-free and exact).
  note_shard_peaks(sh);
  task.max_cpu_ratio = std::max(
      task.max_cpu_ratio,
      sh.cpu_demand / static_cast<double>(sh.host->spec().cpu_threads));
  t.phase_start = t.clock.now();
  t.clock.advance(phase_cost(t, w, s));
  r.gen = true;
  r.gen_kind = EventKind::kPhaseDone;
  r.gen_time = t.clock.now();
}

void FleetEngine::worker_start_program_op(ShardTask& task, WorkerRecord& r,
                                          Tenant& t, const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  const SyscallProgram& prog = builtin_program(t.program);
  const ProgramOp& op = prog.ops[static_cast<std::size_t>(t.prog_op)];
  const OpClass cls = op_class(op.sc);
  t.prog_vcpus = op_vcpus(cls);
  sh.cpu_demand += t.prog_vcpus;
  if (cls == OpClass::kNetwork) {
    ++sh.net_active;
  }
  t.in_flight = Tenant::InFlight::kProgram;
  // Same note_peaks split as worker_start_phase: shard slice here, the
  // cpu-demand ratio folded as a running max and merged at replay.
  note_shard_peaks(sh);
  task.max_cpu_ratio = std::max(
      task.max_cpu_ratio,
      sh.cpu_demand / static_cast<double>(sh.host->spec().cpu_threads));
  t.phase_start = t.clock.now();
  // Same retry loop as the sequential path (shard-local state plus the
  // immutable window lists only); the fleet-side outcome accounting rides
  // the record and is folded in by note_op_outcome during replay.
  const OpIssue issue = issue_program_op(t, op, s);
  t.prog_service = issue.service;
  r.op_retries = issue.retries;
  r.op_give_up = issue.give_up;
  r.degrade_fault = issue.fault;
  r.degrade_added_ms = issue.added_ms;
  t.clock.advance(op.think);
  r.gen = true;
  r.gen_kind = EventKind::kProgramStep;
  r.gen_time = t.clock.now();
}

void FleetEngine::window_step(ShardTask& task, const Event& e,
                              const Scenario& s) {
  WorkerRecord r;
  r.time = e.time;
  r.seq = e.seq;
  r.tenant = e.tenant;
  r.kind = e.kind;
  Tenant& t = tenants_[e.tenant];
  if (e.epoch != t.epoch) {
    r.stale = true;  // replay still counts it, exactly like the main loop
    task.records.push_back(r);
    return;
  }
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  task.dirty = true;
  switch (e.kind) {
    case EventKind::kBootPhys: {
      const sim::Nanos done = boot_physics(sh, t, s, t.boot_factor);
      r.gen = true;
      r.gen_kind = EventKind::kBootDone;
      r.gen_time = done;
      break;
    }
    case EventKind::kBootDone: {
      sh.cpu_demand -= kBootVcpus;
      t.in_flight = Tenant::InFlight::kNone;
      // Stats land in the report at replay, in merged order; the sample is
      // fixed here so the accumulator sees the identical double.
      r.count_tenant = !t.counted_in_stats;
      t.counted_in_stats = true;
      r.sample_ms = sim::to_millis(t.outcome.boot_latency);
      if (t.crash_fault >= 0) {
        // Crash recovery resolves here; the verdict update itself is a
        // report_ mutation, so it rides the record into the replay.
        r.recovery_fault = t.crash_fault;
        r.recovery_ms = sim::to_millis(
            t.clock.now() -
            faults_[static_cast<std::size_t>(t.crash_fault)].time);
        t.crash_fault = -1;
      }
      if (t.program >= 0) {
        // Program tenants restart their program at every boot completion;
        // the pstats pointer is resolved at replay (report-side state).
        t.prog_op = 0;
        t.prog_loops_left = std::max(1, builtin_program(t.program).loops);
        worker_start_program_op(task, r, t, s);
      } else if (t.phases.empty()) {
        r.gen = true;
        r.gen_kind = EventKind::kTeardown;
        r.gen_time = t.clock.now();
      } else {
        worker_start_phase(task, r, t,
                           t.phases[static_cast<std::size_t>(t.next_phase)], s);
      }
      break;
    }
    case EventKind::kPhaseDone: {
      const platforms::WorkloadClass w =
          t.phases[static_cast<std::size_t>(t.next_phase)];
      sh.cpu_demand -= workload_vcpus(w);
      if (w == platforms::WorkloadClass::kNetwork) {
        --sh.net_active;
      }
      t.in_flight = Tenant::InFlight::kNone;
      t.platform->record_workload(w, t.rng);
      r.sample_ms = sim::to_millis(t.clock.now() - t.phase_start);
      ++t.next_phase;
      ++t.outcome.phases_run;
      if (t.next_phase < static_cast<int>(t.phases.size())) {
        worker_start_phase(task, r, t,
                           t.phases[static_cast<std::size_t>(t.next_phase)], s);
      } else {
        t.platform->record_workload(platforms::WorkloadClass::kStartup, t.rng);
        t.clock.advance(sim::millis(t.rng.uniform(2.0, 8.0)));
        r.gen = true;
        r.gen_kind = EventKind::kTeardown;
        r.gen_time = t.clock.now();
      }
      break;
    }
    case EventKind::kProgramStep: {
      const SyscallProgram& prog = builtin_program(t.program);
      const ProgramOp& op = prog.ops[static_cast<std::size_t>(t.prog_op)];
      const OpClass cls = op_class(op.sc);
      sh.cpu_demand -= t.prog_vcpus;
      if (cls == OpClass::kNetwork) {
        --sh.net_active;
      }
      t.in_flight = Tenant::InFlight::kNone;
      // The per-class sample lands in the report at replay, in merged
      // order, like boot and phase samples.
      r.prog_class = static_cast<std::uint8_t>(cls);
      r.prog_ops = op.repeat;
      r.sample_ms = sim::to_millis(t.prog_service);
      ++t.outcome.phases_run;
      ++t.prog_op;
      if (t.prog_op < static_cast<int>(prog.ops.size())) {
        worker_start_program_op(task, r, t, s);
        break;
      }
      t.prog_op = 0;
      if (--t.prog_loops_left > 0) {
        worker_start_program_op(task, r, t, s);
        break;
      }
      t.platform->record_workload(platforms::WorkloadClass::kStartup, t.rng);
      t.clock.advance(sim::millis(t.rng.uniform(2.0, 8.0)));
      r.gen = true;
      r.gen_kind = EventKind::kTeardown;
      r.gen_time = t.clock.now();
      break;
    }
    case EventKind::kTeardown: {
      // Shard-local release now; the fleet-global half (active_, fleet
      // counters, placement notification) replays from the record.
      const FleetDelta before = fleet_before(sh);
      release_core(sh, t);
      const FleetDelta after = fleet_before(sh);
      r.delta = FleetDelta{after.resident - before.resident,
                           after.advised - before.advised,
                           after.backing - before.backing,
                           after.shared - before.shared};
      task.counts_touched.push_back(t.platform_id);
      t.outcome.completed = true;
      t.outcome.completion = t.clock.now();
      ++t.outcome.rounds_completed;
      if (t.rounds_left > 0) {
        --t.rounds_left;
        t.next_phase = 0;
        t.clock.advance(s.churn_gap);
        t.outcome.arrival = t.clock.now();
        t.outcome.boot_latency = 0;
        t.outcome.completion = 0;
        t.outcome.completed = false;
        r.gen = true;
        r.gen_kind = EventKind::kArrival;
        r.gen_time = t.clock.now();
      }
      break;
    }
    case EventKind::kArrival:
    case EventKind::kHostEvent:
    case EventKind::kAutoscaleEval:
    case EventKind::kHostCrash:
    case EventKind::kPartitionStart:
    case EventKind::kPartitionEnd:
    case EventKind::kDegradeStart:
    case EventKind::kDegradeEnd:
      break;  // never extracted into a window
  }
  if (r.gen && r.gen_kind != EventKind::kArrival && birth_in_window(r.gen_time)) {
    // Still ours: queue it under a provisional seq. Provisional seqs start
    // at win_seq_base_ (> every extracted seq) and rise in generation
    // order, which is exactly the relative order the sequential engine
    // would have stamped.
    task.q.push_at_seq(r.gen_time, win_seq_base_ + task.next_birth++, e.tenant,
                       r.gen_kind, e.epoch);
  }
  task.records.push_back(r);
}

// --- Deterministic replay ----------------------------------------------------

void FleetEngine::replay_record(ShardTask& task, const WorkerRecord& r,
                                const Scenario& s, sim::Nanos& last_event) {
  ++report_.events_processed;
  global_clock_.advance_to(r.time);
  if (!r.stale) {
    last_event = r.time;
    Tenant& t = tenants_[r.tenant];
    switch (r.kind) {
      case EventKind::kBootDone: {
        PlatformFleetStats*& slot =
            stats_by_id_[static_cast<std::size_t>(t.platform_id)];
        if (slot == nullptr) {
          slot = &report_.by_platform[t.platform->name()];
          slot->platform = t.platform->name();
        }
        t.stats = slot;
        if (r.count_tenant) {
          ++slot->tenants;
        }
        slot->boot_ms.add(r.sample_ms);
        report_.cluster_boot_ms.add(r.sample_ms);
        if (t.program >= 0) {
          // A tenant's kBootDone always replays before its program steps
          // (same stream, earlier time/seq), so pstats is resolved in time.
          ProgramFleetStats*& pslot =
              pstats_by_id_[static_cast<std::size_t>(t.program)];
          if (pslot == nullptr) {
            pslot = &report_.by_program[builtin_program(t.program).name];
            pslot->program = builtin_program(t.program).name;
          }
          t.pstats = pslot;
          if (r.count_tenant) {
            ++pslot->tenants;
          }
        }
        if (r.recovery_fault >= 0) {
          auto& rv = report_.recovery[static_cast<std::size_t>(
              recovery_slot_[static_cast<std::size_t>(r.recovery_fault)])];
          rv.replace_ms.add(r.recovery_ms);
          ++rv.readmitted;
          ++report_.crash_readmitted;
          report_.replace_ms.add(r.recovery_ms);
        }
        break;
      }
      case EventKind::kPhaseDone:
        t.stats->phase_ms.add(r.sample_ms);
        break;
      case EventKind::kProgramStep: {
        auto& pcls = t.pstats->by_class[r.prog_class];
        pcls.ops += r.prog_ops;
        pcls.op_ms.add(r.sample_ms);
        break;
      }
      case EventKind::kTeardown:
        fleet_resident_ += r.delta.resident;
        fleet_ksm_advised_ += r.delta.advised;
        fleet_ksm_backing_ += r.delta.backing;
        fleet_ksm_shared_ += r.delta.shared;
        --active_;
        ++report_.completed;
        if (r.gen && r.gen_kind == EventKind::kArrival) {
          ++report_.churn_rearrivals;
        }
        break;
      default:
        break;  // kBootPhys has no global side
    }
    if (r.op_retries > 0 || r.op_give_up || r.degrade_fault >= 0) {
      // The worker started this tenant's next op inside the window; fold
      // its issue outcome into the fleet/verdict ledgers here, in merged
      // order — exactly where the sequential start_program_op would have.
      OpIssue issue;
      issue.retries = r.op_retries;
      issue.give_up = r.op_give_up;
      issue.fault = r.degrade_fault;
      issue.added_ms = r.degrade_added_ms;
      note_op_outcome(r.tenant, issue);
    }
  }
  if (r.gen) {
    // One reserve per generated event, issued in merged order — the exact
    // seq the sequential loop's push() would have stamped.
    const std::uint64_t gseq = queue_.reserve_seqs(1);
    if (r.gen_kind != EventKind::kArrival && birth_in_window(r.gen_time)) {
      task.born.push_back(gseq);  // stream order = provisional numbering
    } else {
      queue_.push_at_seq(r.gen_time, gseq, r.tenant, r.gen_kind,
                         tenants_[r.tenant].epoch);
    }
  }
  (void)s;
}

void FleetEngine::replay_window(const Scenario& s, sim::Nanos& last_event) {
  struct Head {
    sim::Nanos time;
    std::uint64_t seq;
    int shard;
  };
  // Min-heap over stream heads by (time, true seq): O(records log M)
  // instead of scanning every shard per record.
  const auto later = [](const Head& a, const Head& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  };
  const auto head_of = [this](int h) {
    const ShardTask& task = tasks_[static_cast<std::size_t>(h)];
    const WorkerRecord& rec = task.records[task.replay_pos];
    // A provisional seq's parent is always earlier in the same stream, so
    // its real seq is already in `born` when the head reaches it.
    const std::uint64_t seq =
        rec.seq >= win_seq_base_
            ? task.born[static_cast<std::size_t>(rec.seq - win_seq_base_)]
            : rec.seq;
    return Head{rec.time, seq, h};
  };
  std::vector<Head> heap;
  heap.reserve(win_shards_.size());
  for (const int h : win_shards_) {
    if (!tasks_[static_cast<std::size_t>(h)].records.empty()) {
      heap.push_back(head_of(h));
    }
  }
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const int h = heap.back().shard;
    heap.pop_back();
    ShardTask& task = tasks_[static_cast<std::size_t>(h)];
    replay_record(task, task.records[task.replay_pos++], s, last_event);
    if (task.replay_pos < task.records.size()) {
      heap.push_back(head_of(h));
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  // Coalesced policy publishes: one final state push per dirty shard and
  // one count push per touched (shard, platform). Policies key off the
  // state itself, so the end-of-window policy state matches the
  // sequential loop's, which published after every event.
  for (const int h : win_shards_) {
    ShardTask& task = tasks_[static_cast<std::size_t>(h)];
    Shard& sh = shards_[static_cast<std::size_t>(h)];
    report_.peak_cpu_demand =
        std::max(report_.peak_cpu_demand, task.max_cpu_ratio);
    for (const platforms::PlatformId id : task.counts_touched) {
      notify_platform_count(sh, id);
    }
    if (task.dirty) {
      publish_host(sh);
    }
    task.records.clear();
    task.born.clear();
    task.next_birth = 0;
    task.max_cpu_ratio = 0.0;
    task.dirty = false;
    task.counts_touched.clear();
    task.replay_pos = 0;
  }
  win_shards_.clear();
}

}  // namespace fleet
