// PlacementPolicy: where does the next tenant land — and where next if
// that host refuses?
//
// The cluster splits scheduling into policy (this header) and mechanism
// (FleetEngine charging one shard's host models): a policy sees a snapshot
// of every live host's load and ranks them, nothing more. Placement runs
// once per arrival, consults no RNG, and admission control on the hosts
// remains authoritative — the engine walks the ranked candidate list in
// order and admits on the first host whose RAM accepts the tenant
// (retry-on-reject). Only when every live host refused is the arrival an
// OOM, attributed to the last host tried; an admission on any host other
// than the first-ranked one is a *spill*, counted per host
// (HostRollup::spill_out on the first choice, spill_in on the admitter) so
// policies can be compared on how much spilling they cause.
//
// Built-in policies:
//   round-robin     — cycle hosts in index order, ignoring load
//   least-loaded    — most free RAM first (ties: lowest index)
//   ksm-affinity    — co-locate tenants of the same platform image so their
//                     KSM digest runs (and boot image cache) merge; falls
//                     back to least-loaded while no co-tenant exists
//   least-pressure  — lowest weighted RAM/CPU/NIC pressure score first,
//                     using the HostPressure snapshot the engine maintains
//                     incrementally (free RAM, vCPU demand, active network
//                     phases, tenant count)
//   pack-then-spill — fill the lowest-index host to a resident watermark
//                     before opening the next, maximizing KSM merge
//                     density; the retry walk turns watermark overshoot
//                     into a spill instead of an OOM
//
// The same shape recurs one level up: fleet::RoutingPolicy (federation.h)
// ranks *cells* for a global router exactly the way PlacementPolicy ranks
// hosts for a cluster. Both speak the RankingPolicy<State, Request>
// protocol below and reuse the IncrementalRanking / HeapWalkRanking
// indexed-heap machinery, so candidate selection is O(log M) over hosts
// and O(log K) over cells with one shared implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/indexed_heap.h"
#include "platforms/platform.h"

namespace fleet {

enum class PlacementKind {
  kRoundRobin,
  kLeastLoaded,
  kKsmAffinity,
  kLeastPressure,
  kPackThenSpill,
};

std::string placement_kind_name(PlacementKind k);

/// All built-in policies, in a stable sweep order for benches and tests.
std::vector<PlacementKind> all_placement_kinds();

/// One host's runtime CPU/NIC pressure as the engine tracks it
/// incrementally: nothing here is recomputed from scratch at an arrival.
/// RAM (ram_cap_bytes/resident_bytes) and tenant count live on HostView
/// itself — one source of truth per quantity.
struct HostPressure {
  /// vCPUs currently demanded by in-flight boots and phases on this host.
  double cpu_demand = 0.0;
  int cpu_threads = 1;
  /// Tenants currently inside a network phase (sharing this host's NIC).
  int net_active = 0;
};

/// One host's load as the policy sees it at an arrival — together with
/// `pressure`, the full snapshot (free RAM, CPU demand, NIC activity,
/// tenant count) pressure-aware policies rank on. Only live
/// (non-draining) hosts appear in the snapshot.
struct HostView {
  int index = 0;
  std::uint64_t ram_cap_bytes = 0;
  /// Bytes currently charged against this host (non-KSM resident plus KSM
  /// backing pages).
  std::uint64_t resident_bytes = 0;
  int active_tenants = 0;
  /// Active tenants on this host running the arriving tenant's platform.
  int same_platform_tenants = 0;
  HostPressure pressure;
};

/// The arriving tenant, as much as a policy may know about it.
struct PlacementRequest {
  std::uint64_t tenant_id = 0;
  platforms::PlatformId platform_id = platforms::PlatformId::kNative;
  bool hypervisor_backed = false;
  std::uint64_t guest_ram_bytes = 0;
};

/// Request-independent per-host state for the incremental protocol: what
/// host_updated() pushes after an engine-side change. The same quantities
/// as HostView minus same_platform_tenants (which depends on the arriving
/// tenant; incremental policies track it via platform_count_changed).
struct HostState {
  int index = 0;
  std::uint64_t ram_cap_bytes = 0;
  std::uint64_t resident_bytes = 0;
  int active_tenants = 0;
  HostPressure pressure;
};

/// The shared incremental ranking protocol, generic over what is being
/// ranked: hosts inside one cluster (PlacementPolicy, StateT = HostState)
/// or whole cells inside a federation (RoutingPolicy, StateT = CellState).
///
/// Policies returning incremental() == true maintain target orderings
/// incrementally (indexed heaps updated from pushed state deltas) and
/// serve the admission walk through walk_begin()/walk_next() in
/// O(walk length * log N), instead of receiving a fresh O(N) snapshot and
/// sorting it per request. The caller pushes target_updated() after each
/// change, platform_count_changed() when a target's per-platform tenant
/// count moves, and target_removed() on a drain/outage. The emitted walk
/// order must be identical to the policy's snapshot-sort spec path
/// (rank_hosts / rank_cells on the concrete interfaces, pinned by
/// tests/placement_equivalence_test.cpp for the built-in placements).
template <typename StateT, typename RequestT>
class RankingPolicy {
 public:
  using State = StateT;
  using Request = RequestT;

  virtual ~RankingPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once at the start of every run; clears any cursor state so
  /// identical runs make identical decisions.
  virtual void reset() {}

  /// True when this policy implements the incremental protocol.
  virtual bool incremental() const { return false; }

  /// Upsert one live target's state (also how new targets are introduced).
  virtual void target_updated(const State& state) { (void)state; }

  /// A target's active tenant count for one platform changed.
  virtual void platform_count_changed(int target,
                                      platforms::PlatformId platform,
                                      int count) {
    (void)target;
    (void)platform;
    (void)count;
  }

  /// The target was drained (host) or went dark (cell): drop it from
  /// every ordering.
  virtual void target_removed(int target) { (void)target; }

  /// Start a candidate walk for one request. Advances cursor state exactly
  /// like one snapshot-sort call.
  virtual void walk_begin(const Request& req) { (void)req; }

  /// Next candidate in ranked order, or -1 when every live target has been
  /// emitted. Only valid between walk_begin() calls.
  virtual int walk_next() { return -1; }
};

/// Host placement inside one cluster. The legacy host_updated/host_removed
/// spellings are kept as non-virtual aliases so engine and test callers
/// read naturally; implementations override the generic protocol names.
class PlacementPolicy : public RankingPolicy<HostState, PlacementRequest> {
 public:
  /// The snapshot-sort spec path, and the only method a custom policy MUST
  /// implement: rank hosts from most to least preferred, appending
  /// HostView::index values to `ranked` (which arrives cleared). `hosts`
  /// has one view per live host, in index order, and is never empty. The
  /// engine tries admission in ranked order. Must append a non-empty
  /// subset, each host at most once; hosts left unranked are simply never
  /// tried (that is how SingleShotPolicy emulates PR 3's no-retry
  /// placement). Policies that skip the incremental protocol
  /// (incremental() == false) are served O(M) snapshots through this path
  /// — slower, but the easiest way to write a one-off or test policy, and
  /// the executable spec the incremental walk is pinned against.
  virtual void rank_hosts(const PlacementRequest& req,
                          const std::vector<HostView>& hosts,
                          std::vector<int>& ranked) = 0;

  /// Convenience: the most-preferred host (front of rank_hosts). Advances
  /// any cursor state exactly like one rank_hosts call.
  int place(const PlacementRequest& req, const std::vector<HostView>& hosts);

  void host_updated(const HostState& state) { target_updated(state); }
  void host_removed(int host) { target_removed(host); }
};

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind);

// --- Shared incremental machinery ----------------------------------------
// Base must be a concrete interface deriving RankingPolicy (PlacementPolicy
// or RoutingPolicy); these templates supply the state bookkeeping and heap
// walks on top of it.

/// Authoritative pushed per-target state, liveness, and the popped-
/// candidate list a lazy walk must restore before the next request.
/// Subclasses implement the ordering hooks (reset_orderings /
/// target_added / target_changed / target_dropped).
template <typename Base>
class IncrementalRanking : public Base {
 public:
  using State = typename Base::State;

  bool incremental() const override { return true; }

  void reset() override {
    states_.clear();
    live_.clear();
    popped_.clear();
    reset_orderings();
  }

  void target_updated(const State& s) override {
    const auto i = static_cast<std::size_t>(s.index);
    if (i >= states_.size()) {
      states_.resize(i + 1);
      live_.resize(i + 1, 0);
    }
    const bool was_live = live_[i] != 0;
    states_[i] = s;
    live_[i] = 1;
    if (was_live) {
      target_changed(s.index);
    } else {
      target_added(s.index);
    }
  }

  void target_removed(int target) override {
    const auto i = static_cast<std::size_t>(target);
    if (i >= live_.size() || live_[i] == 0) {
      return;
    }
    live_[i] = 0;
    target_dropped(target);
  }

 protected:
  virtual void reset_orderings() = 0;
  virtual void target_added(int target) = 0;    // newly live: join orderings
  virtual void target_changed(int target) = 0;  // key changed: reposition
  virtual void target_dropped(int target) = 0;  // gone: leave the orderings

  bool is_live(int target) const {
    return static_cast<std::size_t>(target) < live_.size() &&
           live_[static_cast<std::size_t>(target)] != 0;
  }

  std::vector<State> states_;
  std::vector<char> live_;
  /// Targets emitted by the current walk (out of their heap until
  /// restored).
  std::vector<int> popped_;
};

/// Single-heap incremental policy: one comparator, one ordering. The walk
/// pops candidates lazily — O(log N) per candidate actually tried — and
/// walk_begin() re-inserts the previous walk's pops.
template <typename Base, typename Cmp>
class HeapWalkRanking : public IncrementalRanking<Base> {
 public:
  using Request = typename Base::Request;

  void walk_begin(const Request& req) override {
    (void)req;
    restore_popped();
  }

  int walk_next() override {
    if (heap_.empty()) {
      return -1;
    }
    const int target = heap_.pop();
    this->popped_.push_back(target);
    return target;
  }

 protected:
  explicit HeapWalkRanking(Cmp cmp) : heap_(cmp) {}

  void reset_orderings() override { heap_.clear(); }
  void target_added(int target) override { heap_.push(target); }
  void target_changed(int target) override {
    if (heap_.contains(target)) {  // popped targets rejoin with fresh state
      heap_.update(target);
    }
  }
  void target_dropped(int target) override {
    if (heap_.contains(target)) {
      heap_.erase(target);
    }
  }

  void restore_popped() {
    for (const int target : this->popped_) {
      if (this->is_live(target) && !heap_.contains(target)) {
        heap_.push(target);
      }
    }
    this->popped_.clear();
  }

  IndexedHeap<Cmp> heap_;
};

/// Wraps a policy but ranks only its first choice — PR 3's single-shot
/// placement semantics, where a refusal is an OOM even if another host
/// has room. For differential comparisons against the retry walk
/// (bench/fleet_scale's retry_vs_single_shot block and the spill-chain
/// tests share this definition).
class SingleShotPolicy final : public PlacementPolicy {
 public:
  explicit SingleShotPolicy(std::unique_ptr<PlacementPolicy> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name() + "-single-shot"; }
  void reset() override { inner_->reset(); }
  void rank_hosts(const PlacementRequest& req,
                  const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    ranked.push_back(inner_->place(req, hosts));
  }

 private:
  std::unique_ptr<PlacementPolicy> inner_;
};

}  // namespace fleet
