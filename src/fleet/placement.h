// PlacementPolicy: where does the next tenant land?
//
// The cluster splits scheduling into policy (this header) and mechanism
// (FleetEngine charging one shard's host models): a policy sees a snapshot
// of every host's load and picks an index, nothing more. Placement runs
// once per arrival, consults no RNG, and admission control on the chosen
// host remains authoritative — a policy may overpack a host and take the
// OOM rejection, which the per-host report rollups then make visible.
//
// Built-in policies:
//   round-robin   — cycle hosts in index order, ignoring load
//   least-loaded  — most free RAM first (ties: lowest index)
//   ksm-affinity  — co-locate tenants of the same platform image so their
//                   KSM digest runs (and boot image cache) merge; falls
//                   back to least-loaded while no co-tenant exists
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "platforms/platform.h"

namespace fleet {

enum class PlacementKind {
  kRoundRobin,
  kLeastLoaded,
  kKsmAffinity,
};

std::string placement_kind_name(PlacementKind k);

/// All built-in policies, in a stable sweep order for benches and tests.
std::vector<PlacementKind> all_placement_kinds();

/// One host's load as the policy sees it at an arrival.
struct HostView {
  int index = 0;
  std::uint64_t ram_cap_bytes = 0;
  /// Bytes currently charged against this host (non-KSM resident plus KSM
  /// backing pages).
  std::uint64_t resident_bytes = 0;
  int active_tenants = 0;
  /// Active tenants on this host running the arriving tenant's platform.
  int same_platform_tenants = 0;
};

/// The arriving tenant, as much as a policy may know about it.
struct PlacementRequest {
  std::uint64_t tenant_id = 0;
  platforms::PlatformId platform_id = platforms::PlatformId::kNative;
  bool hypervisor_backed = false;
  std::uint64_t guest_ram_bytes = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once at the start of every run; clears any cursor state so
  /// identical runs make identical decisions.
  virtual void reset() {}

  /// Pick the host index for this arrival. `hosts` has one view per host,
  /// in index order, and is never empty. Must return a valid index.
  virtual int place(const PlacementRequest& req,
                    const std::vector<HostView>& hosts) = 0;
};

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind);

}  // namespace fleet
