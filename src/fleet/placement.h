// PlacementPolicy: where does the next tenant land — and where next if
// that host refuses?
//
// The cluster splits scheduling into policy (this header) and mechanism
// (FleetEngine charging one shard's host models): a policy sees a snapshot
// of every live host's load and ranks them, nothing more. Placement runs
// once per arrival, consults no RNG, and admission control on the hosts
// remains authoritative — the engine walks the ranked candidate list in
// order and admits on the first host whose RAM accepts the tenant
// (retry-on-reject). Only when every live host refused is the arrival an
// OOM, attributed to the last host tried; an admission on any host other
// than the first-ranked one is a *spill*, counted per host
// (HostRollup::spill_out on the first choice, spill_in on the admitter) so
// policies can be compared on how much spilling they cause.
//
// Built-in policies:
//   round-robin     — cycle hosts in index order, ignoring load
//   least-loaded    — most free RAM first (ties: lowest index)
//   ksm-affinity    — co-locate tenants of the same platform image so their
//                     KSM digest runs (and boot image cache) merge; falls
//                     back to least-loaded while no co-tenant exists
//   least-pressure  — lowest weighted RAM/CPU/NIC pressure score first,
//                     using the HostPressure snapshot the engine maintains
//                     incrementally (free RAM, vCPU demand, active network
//                     phases, tenant count)
//   pack-then-spill — fill the lowest-index host to a resident watermark
//                     before opening the next, maximizing KSM merge
//                     density; the retry walk turns watermark overshoot
//                     into a spill instead of an OOM
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "platforms/platform.h"

namespace fleet {

enum class PlacementKind {
  kRoundRobin,
  kLeastLoaded,
  kKsmAffinity,
  kLeastPressure,
  kPackThenSpill,
};

std::string placement_kind_name(PlacementKind k);

/// All built-in policies, in a stable sweep order for benches and tests.
std::vector<PlacementKind> all_placement_kinds();

/// One host's runtime CPU/NIC pressure as the engine tracks it
/// incrementally: nothing here is recomputed from scratch at an arrival.
/// RAM (ram_cap_bytes/resident_bytes) and tenant count live on HostView
/// itself — one source of truth per quantity.
struct HostPressure {
  /// vCPUs currently demanded by in-flight boots and phases on this host.
  double cpu_demand = 0.0;
  int cpu_threads = 1;
  /// Tenants currently inside a network phase (sharing this host's NIC).
  int net_active = 0;
};

/// One host's load as the policy sees it at an arrival — together with
/// `pressure`, the full snapshot (free RAM, CPU demand, NIC activity,
/// tenant count) pressure-aware policies rank on. Only live
/// (non-draining) hosts appear in the snapshot.
struct HostView {
  int index = 0;
  std::uint64_t ram_cap_bytes = 0;
  /// Bytes currently charged against this host (non-KSM resident plus KSM
  /// backing pages).
  std::uint64_t resident_bytes = 0;
  int active_tenants = 0;
  /// Active tenants on this host running the arriving tenant's platform.
  int same_platform_tenants = 0;
  HostPressure pressure;
};

/// The arriving tenant, as much as a policy may know about it.
struct PlacementRequest {
  std::uint64_t tenant_id = 0;
  platforms::PlatformId platform_id = platforms::PlatformId::kNative;
  bool hypervisor_backed = false;
  std::uint64_t guest_ram_bytes = 0;
};

/// Request-independent per-host state for the incremental protocol: what
/// host_updated() pushes after an engine-side change. The same quantities
/// as HostView minus same_platform_tenants (which depends on the arriving
/// tenant; incremental policies track it via platform_count_changed).
struct HostState {
  int index = 0;
  std::uint64_t ram_cap_bytes = 0;
  std::uint64_t resident_bytes = 0;
  int active_tenants = 0;
  HostPressure pressure;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string name() const = 0;

  /// Called once at the start of every run; clears any cursor state so
  /// identical runs make identical decisions.
  virtual void reset() {}

  // --- Incremental protocol -----------------------------------------------
  // Policies returning true here maintain host orderings incrementally
  // (indexed heaps updated from the engine's per-event state deltas) and
  // serve the admission walk through walk_begin()/walk_next() in
  // O(walk length * log M), instead of receiving a fresh O(M) snapshot and
  // sorting it on every arrival. The engine then never builds HostView
  // snapshots: it pushes host_updated() after each event that changed a
  // host, platform_count_changed() when a host's per-platform tenant count
  // moves, and host_removed() on a drain. The emitted walk order must be
  // identical to rank_hosts() on an equivalent snapshot (pinned by
  // tests/placement_equivalence_test.cpp for the built-in policies).

  /// True when this policy implements the incremental protocol.
  virtual bool incremental() const { return false; }

  /// Upsert one live host's state (also how new hosts are introduced).
  virtual void host_updated(const HostState& state) { (void)state; }

  /// A host's active tenant count for one platform changed.
  virtual void platform_count_changed(int host, platforms::PlatformId platform,
                                      int count) {
    (void)host;
    (void)platform;
    (void)count;
  }

  /// The host was drained: drop it from every ordering.
  virtual void host_removed(int host) { (void)host; }

  /// Start a candidate walk for one arrival. Advances cursor state exactly
  /// like one rank_hosts() call.
  virtual void walk_begin(const PlacementRequest& req) { (void)req; }

  /// Next candidate in ranked order, or -1 when every live host has been
  /// emitted. Only valid between walk_begin() calls.
  virtual int walk_next() { return -1; }

  /// Rank hosts from most to least preferred, appending HostView::index
  /// values to `ranked` (which arrives cleared). `hosts` has one view per
  /// live host, in index order, and is never empty. The engine tries
  /// admission in ranked order. Must append a non-empty subset, each host
  /// at most once; hosts left unranked are simply never tried (that is
  /// how SingleShotPolicy emulates PR 3's no-retry placement).
  virtual void rank_hosts(const PlacementRequest& req,
                          const std::vector<HostView>& hosts,
                          std::vector<int>& ranked) = 0;

  /// Convenience: the most-preferred host (front of rank_hosts). Advances
  /// any cursor state exactly like one rank_hosts call.
  int place(const PlacementRequest& req, const std::vector<HostView>& hosts);
};

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind);

/// Wraps a policy but ranks only its first choice — PR 3's single-shot
/// placement semantics, where a refusal is an OOM even if another host
/// has room. For differential comparisons against the retry walk
/// (bench/fleet_scale's retry_vs_single_shot block and the spill-chain
/// tests share this definition).
class SingleShotPolicy final : public PlacementPolicy {
 public:
  explicit SingleShotPolicy(std::unique_ptr<PlacementPolicy> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name() + "-single-shot"; }
  void reset() override { inner_->reset(); }
  void rank_hosts(const PlacementRequest& req,
                  const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    ranked.push_back(inner_->place(req, hosts));
  }

 private:
  std::unique_ptr<PlacementPolicy> inner_;
};

}  // namespace fleet
