// Fault injection for the fleet engine: the chaos half of the
// policy/mechanism split.
//
// A FaultSpec is pure policy — *what* fails and when: timed host crashes,
// timed network partitions, rack-correlated faults, and seeded-random
// schedules drawn deterministically from the scenario seed. The engine is
// the mechanism: resolved faults become first-class events on the one
// global deterministic queue (kHostCrash / kPartitionStart / kPartitionEnd
// in event_queue.h), so every failure scenario is byte-reproducible at
// every thread count and can be pinned as a golden like any other run.
//
// Fault semantics (engine.cpp):
//  * Crash: every tenant on the host dies mid-phase with its in-flight
//    CPU/NIC demand released; the host's page cache and KSM stable tree
//    are lost wholesale; victims re-arrive on the survivors after
//    restart_delay (plus per-victim jitter) as a surge through placement
//    and admission. The report's recovery section records the verdict.
//  * Partition: NIC-bound completions on the affected hosts stall — work
//    makes no progress inside a partition window, so completion times
//    stretch by the overlap. Network phases always stall; boots stall only
//    when they actually pull the image (a fully cache-resident boot never
//    touches the wire).
//  * Rack fault: a named group of hosts (ClusterTopology::racks) crashes
//    or partitions at one instant — the correlated-failure case.
//  * Cell outage: every host of the initial topology crashes at one
//    instant — the whole failure domain goes dark. Standalone, every
//    victim is lost (there are no survivors to re-place onto); under a
//    Federation (federation.h) the stranded victims re-route through the
//    global router to another cell.
//
// Degraded-mode faults (the middle ground between alive and dead):
//  * Disk degrade: the host's NVMe runs at 1/multiplier throughput for a
//    window — page-cache-missing boots and disk-touching program ops
//    stretch by exactly the overlap at the degraded rate, instead of the
//    host failing outright.
//  * Memory pressure: a KSM unmerge storm — every merged page re-expands
//    to its backing copy at the fault instant (resident jumps by the full
//    density gain), and the stable tree is only re-merged by a scan at the
//    window end (or early, by the hypervisor's admission-time scan pass).
//    The spike can trip admission pressure and the autoscale watermark.
//  * Partial partition: a host *pair* loses reachability instead of a
//    host-wide NIC freeze — network program ops stall only when the
//    op's drawn peer is on the unreachable side, so retry with a fresh
//    peer draw can route around the cut.
// Degrade-family faults are judged in the report's render-gated
// `degraded:` section (DegradeVerdict), not the crash-recovery section.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace fleet {

struct Scenario;

/// One injected fault, as the scenario author writes it.
struct Fault {
  enum class Kind {
    kCrash,
    kPartition,
    kCellOutage,
    kDiskDegrade,
    kMemPressure,
    kPartialPartition,
  };
  Kind kind = Kind::kCrash;
  /// Injection instant (virtual time).
  sim::Nanos time = 0;
  /// Target host index into the initial topology. Ignored when `rack` is
  /// set, which targets every member of that rack at the same instant, and
  /// for kCellOutage, which targets the entire initial topology.
  int host = 0;
  /// Named rack (ClusterTopology::racks) for correlated faults.
  std::string rack;
  /// Window length (kPartition and all degrade-family kinds).
  sim::Nanos duration = sim::millis(50);
  /// NVMe throughput divisor while a kDiskDegrade window is open: disk
  /// work progresses at 1/degrade speed. Must be >= 1.
  double degrade = 4.0;
  /// The other end of a kPartialPartition: the pair {host, peer} (or
  /// {rack members, peer}) loses reachability for the window. Must name a
  /// host distinct from the target.
  int peer = -1;
  /// Crash victims re-arrive this long after the crash instant...
  sim::Nanos restart_delay = sim::millis(20);
  /// ...plus a per-victim uniform draw in [0, restart_jitter), so the
  /// re-arrival surge spreads out the way real restart backoff does. The
  /// jitter stream is per-fault (derived from scenario seed and fault id),
  /// never the tenant's own RNG, so victim workloads replay identically.
  sim::Nanos restart_jitter = sim::millis(20);
};

/// The fault schedule: an explicit timed list plus optional seeded-random
/// faults. Random faults draw injection times uniformly over
/// [0, random_horizon) and target hosts uniformly over the initial
/// topology, from an RNG derived from the scenario seed — same seed, same
/// chaos, byte for byte.
struct FaultSpec {
  std::vector<Fault> timed;
  int random_crashes = 0;
  int random_partitions = 0;
  int random_disk_degrades = 0;
  int random_mem_pressures = 0;
  int random_partial_partitions = 0;
  /// Additional random faults whose *kind* is drawn too, from the per-kind
  /// weights below (any weight left at 0 removes that kind from the pool).
  /// Validated up front: random_mixed > 0 needs at least one positive
  /// weight, and weights must be non-negative.
  int random_mixed = 0;
  double weight_crash = 0.0;
  double weight_partition = 0.0;
  double weight_disk_degrade = 0.0;
  double weight_mem_pressure = 0.0;
  double weight_partial_partition = 0.0;
  sim::Nanos random_horizon = 0;
  /// Shape of the random faults.
  sim::Nanos random_partition_duration = sim::millis(50);
  sim::Nanos random_restart_delay = sim::millis(20);
  sim::Nanos random_restart_jitter = sim::millis(20);
  sim::Nanos random_degrade_duration = sim::millis(50);
  double random_degrade_multiplier = 4.0;

  bool enabled() const {
    // != 0, not > 0: a negative count must reach resolve_faults so it is
    // rejected up front rather than silently disabling chaos.
    return !timed.empty() || random_crashes != 0 || random_partitions != 0 ||
           random_disk_degrades != 0 || random_mem_pressures != 0 ||
           random_partial_partitions != 0 || random_mixed != 0;
  }
};

/// True for the fault kinds judged by DegradeVerdicts (the `degraded:`
/// report section) instead of crash-recovery verdicts.
inline bool is_degrade_kind(Fault::Kind k) {
  return k == Fault::Kind::kDiskDegrade || k == Fault::Kind::kMemPressure ||
         k == Fault::Kind::kPartialPartition;
}

/// One fault resolved against a concrete topology: rack names expanded to
/// host lists, random faults drawn, the whole schedule sorted by time with
/// ids assigned in that order. The id doubles as the event payload
/// (Event::tenant) and as the index of the fault's RecoveryVerdict in
/// FleetReport::recovery.
struct ResolvedFault {
  int id = 0;
  Fault::Kind kind = Fault::Kind::kCrash;
  sim::Nanos time = 0;
  std::vector<int> hosts;
  std::string rack;  // label only; empty for single-host faults
  sim::Nanos duration = 0;
  sim::Nanos restart_delay = 0;
  sim::Nanos restart_jitter = 0;
  double degrade = 0.0;  // kDiskDegrade multiplier
  int peer = -1;         // kPartialPartition far end
};

/// Expand and validate the scenario's fault schedule against the initial
/// topology. Throws std::invalid_argument on negative times, non-positive
/// partition durations, out-of-range host indices, unknown or malformed
/// racks — up front, instead of UB deep in the event loop.
std::vector<ResolvedFault> resolve_faults(const Scenario& s,
                                          int initial_hosts);

/// Up-front validation of the scenario's timed HostEvent hooks: negative
/// times and host indices that could never name a real host are rejected
/// with a clear error. Throws std::invalid_argument.
void validate_host_events(const Scenario& s, int initial_hosts);

/// Half-open window [start, end) during which a host's NIC makes no
/// progress.
struct PartitionWindow {
  sim::Nanos start = 0;
  sim::Nanos end = 0;
};

/// Per-host partition windows (indexed by initial-topology host index),
/// sorted and coalesced. Empty when the schedule has no partitions, so
/// fault-free runs pay nothing. Immutable for the whole run — worker
/// threads read it without synchronization.
std::vector<std::vector<PartitionWindow>> build_partition_windows(
    const std::vector<ResolvedFault>& faults, int initial_hosts);

/// Completion instant of `work` nanoseconds of NIC-bound progress starting
/// at `start`, with progress frozen inside every window: the completion
/// stretches by exactly the partition overlap. Windows must be sorted and
/// non-overlapping (build_partition_windows guarantees both).
sim::Nanos stalled_completion(const std::vector<PartitionWindow>& windows,
                              sim::Nanos start, sim::Nanos work);

/// Half-open window [start, end) during which a host's NVMe runs at
/// 1/multiplier throughput. `fault` is the ResolvedFault id that opened
/// the window, for DegradeVerdict attribution.
struct DegradeWindow {
  sim::Nanos start = 0;
  sim::Nanos end = 0;
  double multiplier = 1.0;
  int fault = -1;
};

/// Per-host disk-degrade windows (indexed by initial-topology host index),
/// sorted and split into disjoint pieces; where windows overlap the worst
/// (largest) multiplier wins and the earliest fault id keeps attribution.
/// Empty when the schedule has no disk degrades. Immutable for the whole
/// run — worker threads read it without synchronization.
std::vector<std::vector<DegradeWindow>> build_degrade_windows(
    const std::vector<ResolvedFault>& faults, int initial_hosts);

/// Completion instant of `work` nanoseconds of disk-bound progress starting
/// at `start`, with progress slowed to 1/multiplier inside every window:
/// the completion stretches by (multiplier - 1) x the degraded share of the
/// work. Windows must be sorted and disjoint (build_degrade_windows
/// guarantees both). If `fault` is non-null it receives the id of the first
/// window that actually slowed this span, or -1.
sim::Nanos degraded_completion(const std::vector<DegradeWindow>& windows,
                               sim::Nanos start, sim::Nanos work,
                               int* fault = nullptr);

/// Half-open window [start, end) during which the pair {host, peer} is
/// unreachable. Stored per host (both directions), so a network op on
/// `host` whose drawn far end is `peer` stalls until the window closes.
struct PairWindow {
  sim::Nanos start = 0;
  sim::Nanos end = 0;
  int peer = -1;
  int fault = -1;
};

/// Per-host partial-partition windows (indexed by initial-topology host
/// index), each listing the {peer, window} cuts affecting that host,
/// sorted by start. Empty when the schedule has no partial partitions.
/// Immutable for the whole run.
std::vector<std::vector<PairWindow>> build_pair_windows(
    const std::vector<ResolvedFault>& faults, int initial_hosts);

/// Completion instant of `work` nanoseconds of NIC-bound progress from
/// `start` on a host whose drawn far end is `peer`: progress freezes while
/// any window cutting {host, peer} is open. If `fault` is non-null it
/// receives the id of the first window that stalled this span, or -1.
sim::Nanos pair_stalled_completion(const std::vector<PairWindow>& windows,
                                   int peer, sim::Nanos start,
                                   sim::Nanos work, int* fault = nullptr);

}  // namespace fleet
