// SyscallProgram: typed per-tenant operation streams over the host kernel.
//
// Statistical workload phases describe *how long* a tenant computes;
// programs describe *what it does*: a compact op list (open/read/mmap/
// send/recv/fsync/... with byte counts, repeat blocks, and think-time
// gaps) interpreted by the fleet engine as first-class deterministic
// events. Every op dispatches through HostKernel::invoke — so its CPU
// cost and per-function ftrace hits come from the real modeled syscall
// table — and its payload rides the shard's page cache, NVMe, and NIC
// exactly like boots and phases do. The shape follows the middleware
// pattern of a typed verb stream (dispatch by op id, not by duration
// scalar) rather than a workload-class scalar.
//
// Programs are opt-in per scenario (TrafficSpec::program_mix); the default
// is all-statistical, which keeps every pinned golden byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hostk/syscall.h"
#include "sim/time.h"

namespace fleet {

/// Coarse accounting class of one program op, for the report rollup and
/// the per-op vCPU demand charged while the op is in flight.
enum class OpClass {
  kFile,     // VFS read/write/metadata path
  kMemory,   // address-space ops (mmap/madvise/brk/...)
  kNetwork,  // socket send/receive and readiness
  kSync,     // durability barriers (fsync): NVMe write flush
  kOther,    // everything else: kernel cost only
};
inline constexpr std::size_t kOpClassCount = 5;

std::string op_class_name(OpClass c);

/// Accounting class of a syscall when it appears as a program op.
OpClass op_class(hostk::Syscall sc);

/// True for ops that dirty the page cache instead of reading through it
/// (write/pwrite64/writev): buffered, so the device charge is fsync's.
bool op_is_write(hostk::Syscall sc);

/// vCPUs one in-flight program op demands, mirroring demand::workload_vcpus
/// so programs and statistical phases contend on the same scale.
double op_vcpus(OpClass c);

/// One step of a program: `repeat` back-to-back invocations of `sc`, moving
/// `bytes` of payload each, then an idle `think` gap before the next op.
struct ProgramOp {
  hostk::Syscall sc = hostk::Syscall::kRead;
  /// Payload per invocation: file bytes read/written, mapping length, or
  /// wire bytes, depending on the op's class. 0 = metadata-only.
  std::uint64_t bytes = 0;
  /// Back-to-back invocations folded into one step (one event, one latency
  /// sample, `repeat` ftrace expansions).
  std::uint32_t repeat = 1;
  /// Idle gap after the op completes; excluded from its latency sample.
  sim::Nanos think = 0;
  /// File-backed ops only: use the program-shared file (one per program,
  /// cache-shared across its tenants — an image or common dataset) instead
  /// of the tenant-private stream.
  bool shared_file = false;
  /// Per-op retry budget: when > 0 an issue of this op whose service would
  /// blow the op SLO (stalled by a partition/degrade window, or just slow)
  /// times out at the SLO, backs off, and re-issues instead of completing
  /// late — up to this many times, then the late completion counts as a
  /// give-up. 0 defers to the scenario-wide TrafficSpec::op_max_retries.
  int max_retries = 0;
  /// Base backoff before re-issue number n: backoff_base_ms * 2^(n-1),
  /// plus a uniform jitter in [0, backoff_base_ms) drawn from the tenant
  /// RNG. 0 defers to TrafficSpec::op_backoff_base_ms. Must be positive
  /// whenever max_retries > 0. (sim::Nanos, like op_slo_ms: the _ms name
  /// states the rendering unit, not the storage unit.)
  sim::Nanos backoff_base_ms = 0;
};

/// A named op list run `loops` times end-to-end, then the tenant tears
/// down. Interpreted per tenant with the tenant's private RNG, so two
/// tenants running the same program still draw distinct cost samples.
struct SyscallProgram {
  std::string name;
  std::vector<ProgramOp> ops;
  int loops = 1;
};

// Built-in program ids, usable directly in TrafficSpec::program_mix.
inline constexpr int kProgKvServer = 0;       // epoll/recv/pread/send loop
inline constexpr int kProgImagePull = 1;      // shared image pull, then serve
inline constexpr int kProgLogWriter = 2;      // buffered writes + fsync churn
inline constexpr int kProgMmapAnalytics = 3;  // map/scan/unmap working sets

int builtin_program_count();

/// The built-in program table entry; throws std::out_of_range for an index
/// outside [0, builtin_program_count()).
const SyscallProgram& builtin_program(int index);

}  // namespace fleet
