#include "fleet/scenario.h"

#include <algorithm>

#include "fleet/program.h"

namespace fleet {

std::string arrival_pattern_name(ArrivalPattern p) {
  switch (p) {
    case ArrivalPattern::kStorm:
      return "storm";
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kRamp:
      return "ramp";
  }
  return "unknown";
}

std::vector<TenantSeed> TrafficSpec::draw_population() const {
  // This is the engine's historical inline draw, hoisted verbatim: ALL
  // arrival times first (then one sort), and only then each tenant's
  // platform pick, RNG fork, and phase draws off that fork. The order of
  // draws against the root rng is load-bearing — any reordering changes
  // every downstream report byte.
  sim::Rng rng(seed);

  double mix_total = 0.0;
  for (const auto& share : platform_mix) {
    mix_total += share.weight;
  }
  double workload_total = 0.0;
  for (const auto& share : workload_mix) {
    workload_total += share.weight;
  }
  const auto pick_platform = [&](sim::Rng& r) {
    double x = r.next_double() * mix_total;
    for (const auto& share : platform_mix) {
      x -= share.weight;
      if (x <= 0.0) {
        return share.id;
      }
    }
    return platform_mix.back().id;
  };
  const auto pick_workload = [&](sim::Rng& r) {
    double x = r.next_double() * workload_total;
    for (const auto& share : workload_mix) {
      x -= share.weight;
      if (x <= 0.0) {
        return share.workload;
      }
    }
    return workload_mix.back().workload;
  };
  double program_total = 0.0;
  for (const auto& share : program_mix) {
    program_total += share.weight;
  }
  const auto pick_program = [&](sim::Rng& r) {
    double x = r.next_double() * program_total;
    for (const auto& share : program_mix) {
      x -= share.weight;
      if (x <= 0.0) {
        return share.program;
      }
    }
    return program_mix.back().program;
  };

  std::vector<sim::Nanos> arrivals;
  arrivals.reserve(static_cast<std::size_t>(tenant_count));
  sim::Nanos poisson_t = 0;
  for (int i = 0; i < tenant_count; ++i) {
    switch (arrival) {
      case ArrivalPattern::kStorm:
        arrivals.push_back(static_cast<sim::Nanos>(
            rng.next_double() * static_cast<double>(arrival_window)));
        break;
      case ArrivalPattern::kRamp:
        arrivals.push_back(tenant_count <= 1
                               ? 0
                               : arrival_window * i / (tenant_count - 1));
        break;
      case ArrivalPattern::kPoisson:
        poisson_t += sim::seconds(
            rng.exponential(std::max(1e-9, arrival_rate_per_sec)));
        arrivals.push_back(poisson_t);
        break;
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<TenantSeed> seeds;
  seeds.reserve(static_cast<std::size_t>(tenant_count));
  for (int i = 0; i < tenant_count; ++i) {
    seeds.emplace_back();
    TenantSeed& t = seeds.back();
    t.arrival = arrivals[static_cast<std::size_t>(i)];
    t.platform_id = pick_platform(rng);
    t.rng = rng.fork();
    t.phases.reserve(static_cast<std::size_t>(phases_per_tenant));
    for (int p = 0; p < phases_per_tenant; ++p) {
      t.phases.push_back(pick_workload(t.rng));
    }
    // The program draw comes strictly after the phase draws and only when a
    // mix is declared: all-statistical scenarios consume exactly the
    // historical draw sequence, so their reports stay byte-identical.
    if (!program_mix.empty()) {
      t.program = pick_program(t.rng);
    }
  }
  return seeds;
}

Scenario Scenario::coldstart_storm(int tenants) {
  Scenario s;
  s.name = "coldstart-storm";
  s.tenant_count = tenants;
  s.arrival = ArrivalPattern::kStorm;
  s.arrival_window = sim::millis(50);
  s.platform_mix = {
      {platforms::PlatformId::kDocker, 0.35},
      {platforms::PlatformId::kFirecracker, 0.30},
      {platforms::PlatformId::kGvisor, 0.20},
      {platforms::PlatformId::kOsvFirecracker, 0.15},
  };
  s.workload_mix = {{platforms::WorkloadClass::kCpu, 1.0}};
  s.phases_per_tenant = 1;
  s.mean_phase_duration = sim::millis(40);  // short function invocation
  s.guest_ram_bytes = 256ull << 20;
  s.image_bytes = 64ull << 20;
  return s;
}

Scenario Scenario::density_sweep(int max_tenants) {
  Scenario s;
  s.name = "density-sweep";
  s.tenant_count = max_tenants;
  s.arrival = ArrivalPattern::kRamp;
  s.arrival_window = sim::seconds(2);
  s.platform_mix = {
      {platforms::PlatformId::kQemuKvm, 0.5},
      {platforms::PlatformId::kFirecracker, 0.5},
  };
  s.workload_mix = {{platforms::WorkloadClass::kMemory, 1.0}};
  s.phases_per_tenant = 2;
  s.mean_phase_duration = sim::millis(400);
  s.guest_ram_bytes = 2048ull << 20;
  s.enable_ksm = true;
  s.stop_at_first_oom = true;
  return s;
}

Scenario Scenario::steady_state_mix(int tenants) {
  Scenario s;
  s.name = "steady-state-mix";
  s.tenant_count = tenants;
  s.arrival = ArrivalPattern::kPoisson;
  s.arrival_rate_per_sec = 40.0;
  // The paper's full lineup, side by side on one host.
  s.platform_mix = {
      {platforms::PlatformId::kNative, 0.05},
      {platforms::PlatformId::kDocker, 0.20},
      {platforms::PlatformId::kLxc, 0.10},
      {platforms::PlatformId::kQemuKvm, 0.10},
      {platforms::PlatformId::kFirecracker, 0.15},
      {platforms::PlatformId::kCloudHypervisor, 0.10},
      {platforms::PlatformId::kKataContainers, 0.10},
      {platforms::PlatformId::kGvisor, 0.08},
      {platforms::PlatformId::kOsvQemu, 0.07},
      {platforms::PlatformId::kOsvFirecracker, 0.05},
  };
  s.workload_mix = {
      {platforms::WorkloadClass::kCpu, 0.30},
      {platforms::WorkloadClass::kMemory, 0.20},
      {platforms::WorkloadClass::kIo, 0.25},
      {platforms::WorkloadClass::kNetwork, 0.25},
  };
  s.phases_per_tenant = 4;
  s.mean_phase_duration = sim::millis(300);
  return s;
}

Scenario Scenario::cluster_storm(int tenants, int hosts,
                                 PlacementKind placement) {
  Scenario s = coldstart_storm(tenants);
  s.name = "cluster-storm";
  // More hypervisor-backed weight than the single-host storm: placement
  // affinity only matters where guest RAM can merge.
  s.platform_mix = {
      {platforms::PlatformId::kDocker, 0.25},
      {platforms::PlatformId::kFirecracker, 0.35},
      {platforms::PlatformId::kQemuKvm, 0.20},
      {platforms::PlatformId::kOsvFirecracker, 0.20},
  };
  s.cluster.host_count = hosts;
  s.placement = placement;
  return s;
}

Scenario Scenario::autoscale_storm(int tenants, int hosts, int max_hosts) {
  Scenario s = cluster_storm(tenants, hosts, PlacementKind::kLeastPressure);
  s.name = "autoscale-storm";
  // Ramp, not storm: arrivals spread wide enough that the autoscaler's
  // evaluation cadence can add capacity while demand is still arriving.
  s.arrival = ArrivalPattern::kRamp;
  s.arrival_window = sim::millis(500);
  s.autoscale.enabled = true;
  s.autoscale.max_hosts = max_hosts;
  // Never shrink below the starting topology: without this floor the very
  // first evaluation (before load arrives) would scale the idle fleet in.
  s.autoscale.min_hosts = hosts;
  return s;
}

Scenario Scenario::crash_recovery(int tenants, int hosts, int max_hosts) {
  Scenario s = autoscale_storm(tenants, hosts, max_hosts);
  s.name = "crash-recovery";
  // RAM-tight hosts, tuned so the fixed topology rides *under* the
  // scale-out watermark on its own (the fault-free control run never
  // scales) and the crash — lost capacity plus the victim re-admission
  // surge on the survivors — pushes it over: the crash itself triggers
  // scale-out.
  const std::uint64_t per_tenant = s.guest_ram_bytes / 2 + s.image_bytes;
  s.cluster.ram_bytes = per_tenant * static_cast<std::uint64_t>(tenants) * 5 /
                        static_cast<std::uint64_t>(8 * std::max(1, hosts));
  Fault crash;
  crash.kind = Fault::Kind::kCrash;
  crash.time = sim::millis(150);  // mid-ramp: victims and fresh arrivals mix
  crash.host = 0;
  crash.restart_delay = sim::millis(25);
  crash.restart_jitter = sim::millis(50);
  s.faults.timed.push_back(crash);
  // Declared recovery budget: every victim re-placed, p99 within 10 s.
  // The committed bench config lands around 8.7 s, so the verdict passes
  // with headroom but would trip on a recovery-path regression.
  s.replace_slo_ms = sim::seconds(10);
  return s;
}

Scenario Scenario::rack_outage(int tenants, int hosts) {
  Scenario s = cluster_storm(tenants, hosts, PlacementKind::kLeastPressure);
  s.name = "rack-outage";
  s.arrival = ArrivalPattern::kRamp;
  s.arrival_window = sim::millis(300);
  // Two failure domains: r0 takes the first half of the hosts, r1 the rest.
  ClusterTopology::Rack r0{"r0", {}};
  ClusterTopology::Rack r1{"r1", {}};
  for (int h = 0; h < hosts; ++h) {
    (h < hosts / 2 ? r0 : r1).hosts.push_back(h);
  }
  s.cluster.racks = {r0, r1};
  Fault crash;
  crash.kind = Fault::Kind::kCrash;
  crash.time = sim::millis(100);
  crash.rack = "r0";
  crash.restart_delay = sim::millis(25);
  crash.restart_jitter = sim::millis(50);
  s.faults.timed.push_back(crash);
  return s;
}

Scenario Scenario::partition_storm(int tenants, int hosts) {
  Scenario s = cluster_storm(tenants, hosts, PlacementKind::kLeastPressure);
  s.name = "partition-storm";
  // Network-heavy phases so the partition's stall is visible in makespan
  // and phase percentiles, not just the NIC-stall counter.
  s.workload_mix = {
      {platforms::WorkloadClass::kNetwork, 0.6},
      {platforms::WorkloadClass::kCpu, 0.4},
  };
  s.phases_per_tenant = 2;
  s.mean_phase_duration = sim::millis(60);
  ClusterTopology::Rack r0{"r0", {}};
  for (int h = 0; h < (hosts + 1) / 2; ++h) {
    r0.hosts.push_back(h);
  }
  s.cluster.racks = {r0};
  Fault part;
  part.kind = Fault::Kind::kPartition;
  part.time = sim::millis(30);
  part.rack = "r0";
  part.duration = sim::millis(40);
  s.faults.timed.push_back(part);
  return s;
}

Scenario Scenario::program_storm(int tenants, int hosts) {
  Scenario s = cluster_storm(tenants, hosts, PlacementKind::kLeastLoaded);
  s.name = "program-storm";
  s.arrival_window = sim::millis(100);
  // Most tenants interpret a built-in program; a statistical control share
  // rides along so program and phase traffic contend on the same hosts.
  s.program_mix = {
      {-1, 0.20},
      {kProgKvServer, 0.30},
      {kProgImagePull, 0.20},
      {kProgLogWriter, 0.15},
      {kProgMmapAnalytics, 0.15},
  };
  // Per-op p99 budget. The slowest built-in op — mmap-analytics faulting a
  // cold 16 MiB mapping through the NVMe — lands around 5 ms p99, so the
  // verdict passes with headroom but trips on an op-path cost regression.
  s.op_slo_ms = sim::millis(12);
  return s;
}

Scenario Scenario::degrade_storm(int tenants, int hosts) {
  Scenario s = program_storm(tenants, hosts);
  s.name = "degrade-storm";
  // RAM-tight enough that the mem-pressure resident spike and the crash
  // victims' re-admission surge actually contend for headroom — that is
  // what makes the no-retry control lose tenants.
  const std::uint64_t per_tenant = s.guest_ram_bytes / 2 + s.image_bytes;
  s.cluster.ram_bytes = per_tenant * static_cast<std::uint64_t>(tenants) * 3 /
                        static_cast<std::uint64_t>(4 * std::max(1, hosts));
  // The degrade family, timed to overlap the *program* phase (boots run
  // roughly to the 150 ms mark; interpreted ops from there to the tail).
  // Requires hosts >= 2 (the partial partition needs a pair).
  Fault disk;
  disk.kind = Fault::Kind::kDiskDegrade;
  disk.time = sim::millis(150);
  disk.host = 0;
  disk.duration = sim::millis(200);
  disk.degrade = 6.0;
  s.faults.timed.push_back(disk);
  Fault mem;
  mem.kind = Fault::Kind::kMemPressure;
  mem.time = sim::millis(200);
  mem.host = 1;
  mem.duration = sim::millis(100);
  s.faults.timed.push_back(mem);
  Fault pair;
  pair.kind = Fault::Kind::kPartialPartition;
  pair.time = sim::millis(150);
  pair.host = 0;
  pair.peer = 1;
  pair.duration = sim::millis(200);
  s.faults.timed.push_back(pair);
  // A mid-pressure crash on top, on the host the degrades spared: its
  // victims must re-admit onto hosts 0/1, and whether they fit depends on
  // how much RAM the degraded ops there have already released — the retry
  // run routes around the cut, tears tenants down sooner and loses fewer.
  Fault crash;
  crash.kind = Fault::Kind::kCrash;
  crash.time = sim::millis(250);
  crash.host = 2;
  crash.restart_delay = sim::millis(25);
  crash.restart_jitter = sim::millis(50);
  s.faults.timed.push_back(crash);
  // Retry/backoff on: ops that would blow the 12 ms budget time out and
  // re-issue (network ops redraw their peer, routing around the partial
  // partition) instead of completing late.
  s.op_max_retries = 3;
  s.op_backoff_base_ms = sim::millis(1);
  return s;
}

Scenario Scenario::churn_mix(int tenants, int rounds) {
  Scenario s = steady_state_mix(tenants);
  s.name = "churn-mix";
  s.churn_rounds = rounds;
  s.churn_gap = sim::millis(100);
  return s;
}

}  // namespace fleet
