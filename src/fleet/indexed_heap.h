// Indexed d-ary min-heap over small integer ids.
//
// The incremental placement policies (placement.cpp) keep every live host
// in one of these, ordered by the policy's comparator over engine-pushed
// host state. An admission walk pops candidates lazily — O(log M) per
// candidate actually tried instead of a full O(M log M) sort per arrival —
// and pushes the popped ones back before the next walk. update() repositions
// one id after its key changed (the engine notifies per state delta).
//
// d = 4: shallower than binary for the sift-down-heavy pop/update mix, and
// the four children share a cache line of ids.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fleet {

/// Less(a, b) must be a strict weak ordering that totally orders ids
/// (tie-break on the id itself), so the pop sequence is deterministic and
/// identical to a stable sort by the same comparator.
template <typename Less>
class IndexedHeap {
 public:
  explicit IndexedHeap(Less less) : less_(less) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < pos_.size() &&
           pos_[static_cast<std::size_t>(id)] >= 0;
  }

  void clear() {
    heap_.clear();
    pos_.assign(pos_.size(), -1);
  }

  /// Insert an id not currently in the heap.
  void push(int id) {
    if (static_cast<std::size_t>(id) >= pos_.size()) {
      pos_.resize(static_cast<std::size_t>(id) + 1, -1);
    }
    pos_[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(heap_.size());
    heap_.push_back(id);
    sift_up(heap_.size() - 1);
  }

  /// Reposition an id whose key changed.
  void update(int id) {
    const std::size_t i =
        static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]);
    if (!sift_up(i)) {
      sift_down(i);
    }
  }

  void erase(int id) {
    const std::size_t i =
        static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]);
    remove_at(i);
  }

  int top() const { return heap_.front(); }

  int pop() {
    const int id = heap_.front();
    remove_at(0);
    return id;
  }

 private:
  static constexpr std::size_t kArity = 4;

  void remove_at(std::size_t i) {
    pos_[static_cast<std::size_t>(heap_[i])] = -1;
    const int last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      heap_[i] = last;
      pos_[static_cast<std::size_t>(last)] = static_cast<std::int32_t>(i);
      if (!sift_up(i)) {
        sift_down(i);
      }
    }
  }

  bool sift_up(std::size_t i) {
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less_(heap_[i], heap_[parent])) {
        break;
      }
      swap_at(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) {
        break;
      }
      std::size_t best = i;
      const std::size_t end = std::min(first_child + kArity, n);
      for (std::size_t c = first_child; c < end; ++c) {
        if (less_(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (best == i) {
        break;
      }
      swap_at(i, best);
      i = best;
    }
  }

  void swap_at(std::size_t a, std::size_t b) {
    const int ida = heap_[a];
    const int idb = heap_[b];
    heap_[a] = idb;
    heap_[b] = ida;
    pos_[static_cast<std::size_t>(ida)] = static_cast<std::int32_t>(b);
    pos_[static_cast<std::size_t>(idb)] = static_cast<std::int32_t>(a);
  }

  std::vector<int> heap_;
  std::vector<std::int32_t> pos_;  // id -> heap index, -1 when absent
  Less less_;
};

}  // namespace fleet
