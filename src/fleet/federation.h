// Federation: K cluster cells behind one global router.
//
// One level above Cluster, the same policy/mechanism split recurs: a
// FederationTopology describes K cells (each a full CellSpec — hosts,
// placement, autoscaler, fault schedule; heterogeneous cells are fine),
// a single TrafficSpec describes the global tenant population, and a
// pluggable RoutingPolicy decides which cell each arrival enters. The
// router speaks the exact RankingPolicy protocol PlacementPolicy speaks
// for hosts (placement.h), reusing the IncrementalRanking / HeapWalkRanking
// indexed-heap machinery, so cell selection is O(log K) per arrival.
//
// Execution model: the federation routes the whole population up front on
// *projected* cell load (the router never sees inside a cell mid-run),
// then runs each cell as its own deterministic Cluster with its routed
// subset as an explicit population. Cells remain byte-reproducible event
// streams; the federation adds no global clock. When a cell's run ends
// with tenants it would not hold — rejected at admission, or stranded by
// a fault with no survivor capacity — each such tenant walks the routing
// ranking again, skipping every cell it already tried, and moves to the
// next candidate: an inter-cell *spill*, mirrored per cell as
// spill_out/spill_in exactly like host-level spills inside a cluster.
// Affected cells re-run with their updated populations until the
// assignment reaches a fixed point (each tenant visits a cell at most
// once, so the loop is bounded by K runs per tenant in the worst case).
//
// Cell outages (chaos.h kCellOutage) kill every host of a cell at one
// instant. Standalone that strands every victim; under a federation the
// stranded victims re-enter the router at their jittered re-arrival time
// and re-boot in another cell. The federation-level recovery verdict
// measures outage instant -> re-boot served in the new cell, against the
// same TrafficSpec::replace_slo_ms budget in-cell crash recovery uses.
//
// A 1-cell federation is the degenerate case: FederationReport::to_text()
// renders the lone cell's FleetReport verbatim, byte-identical to running
// the equivalent Scenario through Cluster directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/cluster.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "sim/time.h"
#include "stats/sample_set.h"

namespace fleet {

enum class RoutingKind {
  kRoundRobin,       // cycle cells in index order, ignoring load
  kLeastLoadedCell,  // most aggregate free RAM first (ties: lowest index)
  kPlatformAffinity, // co-locate a platform's tenants in few cells so each
                     // cell's KSM digests and boot image caches merge;
                     // falls back to least-loaded while no co-tenant exists
};

std::string routing_kind_name(RoutingKind k);

/// All built-in routing policies, in a stable sweep order.
std::vector<RoutingKind> all_routing_kinds();

/// One cell's load as the router tracks it: aggregate free RAM projected
/// from routed-tenant estimates, never a peek inside the cell's engine.
/// The request-independent half of the incremental protocol (what
/// cell_updated pushes); per-platform routed counts travel through
/// platform_count_changed.
struct CellState {
  int index = 0;
  /// Aggregate RAM across the cell's initial hosts (admission-effective:
  /// honors host_ram_override_bytes).
  std::uint64_t ram_cap_bytes = 0;
  /// Projected resident bytes of every tenant currently routed here.
  std::uint64_t resident_bytes = 0;
  int active_tenants = 0;
};

/// Snapshot row for the rank_cells spec path: CellState plus the one
/// request-dependent quantity.
struct CellView {
  int index = 0;
  std::uint64_t ram_cap_bytes = 0;
  std::uint64_t resident_bytes = 0;
  int active_tenants = 0;
  /// Tenants of the arriving tenant's platform currently routed here.
  int same_platform_tenants = 0;
};

/// The arriving tenant looks the same to a router as to a placement
/// policy: the request type is shared outright.
using RouteRequest = PlacementRequest;

/// Cell selection for a federation. Same contract as PlacementPolicy one
/// level down: rank_cells is the snapshot-sort spec path every custom
/// policy must implement; built-in policies also implement the shared
/// incremental protocol (RankingPolicy, placement.h) and are served
/// O(log K) walks. The cell_updated/cell_removed spellings alias the
/// generic protocol names so federation call sites read naturally.
class RoutingPolicy : public RankingPolicy<CellState, RouteRequest> {
 public:
  /// Rank cells from most to least preferred, appending CellView::index
  /// values to `ranked` (which arrives cleared). `cells` has one view per
  /// live cell, in index order, and is never empty. Must append a
  /// non-empty subset, each cell at most once; the federation tries the
  /// arrival against cells in ranked order and spills down the list.
  virtual void rank_cells(const RouteRequest& req,
                          const std::vector<CellView>& cells,
                          std::vector<int>& ranked) = 0;

  /// Convenience: the most-preferred cell (front of rank_cells). Advances
  /// any cursor state exactly like one rank_cells call.
  int route(const RouteRequest& req, const std::vector<CellView>& cells);

  void cell_updated(const CellState& state) { target_updated(state); }
  void cell_removed(int cell) { target_removed(cell); }
};

std::unique_ptr<RoutingPolicy> make_routing(RoutingKind kind);

/// One cell of the federation: a label, a region, and the full mechanism
/// spec of the cluster behind it.
struct CellDesc {
  /// Display name; empty defaults to "cell<index>" at run time.
  std::string name;
  std::string region = "r0";
  CellSpec spec;
};

struct FederationTopology {
  std::vector<CellDesc> cells;

  /// K identical cells stamped from one CellSpec, named cell0..cellK-1.
  static FederationTopology uniform(int cells, const CellSpec& spec);
};

/// A whole-cell failure, addressed by cell index. Lowered into that cell's
/// fault schedule as a chaos.h kCellOutage (every host dies at `time`);
/// the stranded victims re-enter the global router at their jittered
/// re-arrival instants and re-boot in another cell.
struct CellOutage {
  int cell = 0;
  sim::Nanos time = 0;
  sim::Nanos restart_delay = sim::millis(20);
  sim::Nanos restart_jitter = sim::millis(20);
};

/// The federated scenario: global policy (traffic + routing) over K
/// cell-scoped mechanism specs. The policy/mechanism split that Scenario
/// flattens into one struct for single-cluster runs is explicit here.
struct FederatedScenario {
  TrafficSpec traffic;
  RoutingKind routing = RoutingKind::kRoundRobin;
  FederationTopology topology;
  std::vector<CellOutage> outages;

  /// Lift a single-cluster Scenario into a K-cell federation: the traffic
  /// half becomes the global population, the cell half is stamped K times.
  /// With cells == 1 and kRoundRobin the run is byte-identical to
  /// Cluster::run(s).
  static FederatedScenario from_scenario(
      const Scenario& s, int cells = 1,
      RoutingKind routing = RoutingKind::kRoundRobin);

  /// Headline federation scenario: a cluster storm spread over K cells.
  static FederatedScenario federation_storm(
      int tenants, int cells, int hosts_per_cell,
      RoutingKind routing = RoutingKind::kLeastLoadedCell);
};

/// Everything a federated run observed: per-cell FleetReports rolled up
/// into global totals. Same contract as FleetReport — same scenario, seed
/// and topology render byte-identical text at every thread count.
class FederationReport {
 public:
  std::string scenario;
  std::uint64_t seed = 0;
  std::string routing;

  struct CellRollup {
    std::string name;
    std::string region;
    int hosts = 0;    // initial host count
    int routed = 0;   // tenants in the final assignment
    int admitted = 0; // distinct tenants admitted (final run)
    int rejected = 0; // admission rejections in the final run
    /// Inter-cell spills absorbed / shed by this cell. Federation-wide,
    /// sum(spill_in) == sum(spill_out) == FederationReport::spills.
    int spill_in = 0;
    int spill_out = 0;
    bool outage = false;  // a kCellOutage hit this cell
    FleetReport report;   // the cell's full final report
  };
  std::vector<CellRollup> cells;

  // Global totals over the final assignment (each tenant counted once).
  int tenants = 0;    // global population size
  int admitted = 0;   // tenants admitted in their final cell
  int rejected = 0;   // tenants no cell would hold
  int completed = 0;
  /// Inter-cell moves: a tenant leaving a cell that refused or lost it
  /// for the next cell in its routing ranking.
  int spills = 0;
  sim::Nanos makespan = 0;              // max over cells
  std::uint64_t events_processed = 0;   // summed over final cell runs

  // Cell outages resolve at the federation level: in-cell the victims are
  // lost (no survivors), globally they re-route.
  int outage_victims = 0;   // tenants stranded by a cell outage
  int outage_rerouted = 0;  // re-admitted in another cell
  int outage_lost = 0;      // no remaining cell would take them
  /// Outage instant -> victim's re-boot served in its new cell, ms.
  stats::SampleSet outage_replace_ms;

  /// Recovery budget copied from TrafficSpec::replace_slo_ms; zero means
  /// no budget, no verdict line.
  sim::Nanos replace_slo_ms = 0;

  /// Federation recovery verdict: every in-cell fault verdict passes the
  /// budget — except cell-outage verdicts, which are judged here instead
  /// (re-routed victims with the p99 within budget, nobody lost), since
  /// in-cell a whole-cell outage always loses everyone.
  bool recovery_slo_pass() const;

  /// With one cell this is the cell's FleetReport::to_text() verbatim;
  /// with K > 1, a federation header, the cell rollup table, then each
  /// cell's full report.
  std::string to_text() const;
};

/// K cells behind one router. Owns the per-cell Clusters; run() is
/// deterministic for a given FederatedScenario (cells re-built fresh per
/// run, exactly like "build a fresh Cluster per reproducible run").
class Federation {
 public:
  explicit Federation(FederationTopology topology);

  /// Route, run, spill to a fixed point, roll up. The scenario's topology
  /// must match this federation's (cell count); throws
  /// std::invalid_argument on malformed scenarios (no cells, outage
  /// targeting an unknown cell, unsorted explicit population).
  FederationReport run(const FederatedScenario& fs);

  int cell_count() const { return static_cast<int>(topology_.cells.size()); }

  /// The cell's Cluster from the most recent run (final re-run state).
  /// Null before the first run() touches that cell.
  Cluster* cell(int index) {
    return cells_[static_cast<std::size_t>(index)].get();
  }

 private:
  FederationTopology topology_;
  std::vector<std::unique_ptr<Cluster>> cells_;
};

}  // namespace fleet
