#include "fleet/program.h"

#include <stdexcept>

namespace fleet {

using hostk::Syscall;

std::string op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kFile:
      return "file";
    case OpClass::kMemory:
      return "memory";
    case OpClass::kNetwork:
      return "network";
    case OpClass::kSync:
      return "sync";
    case OpClass::kOther:
      return "other";
  }
  return "unknown";
}

OpClass op_class(Syscall sc) {
  switch (sc) {
    case Syscall::kRead:
    case Syscall::kWrite:
    case Syscall::kPread64:
    case Syscall::kPwrite64:
    case Syscall::kReadv:
    case Syscall::kWritev:
    case Syscall::kOpenat:
    case Syscall::kClose:
    case Syscall::kFstat:
    case Syscall::kStatx:
    case Syscall::kLseek:
    case Syscall::kFallocate:
    case Syscall::kGetdents64:
      return OpClass::kFile;
    case Syscall::kMmap:
    case Syscall::kMunmap:
    case Syscall::kMprotect:
    case Syscall::kMadvise:
    case Syscall::kBrk:
      return OpClass::kMemory;
    case Syscall::kSocket:
    case Syscall::kBind:
    case Syscall::kListen:
    case Syscall::kAccept4:
    case Syscall::kConnect:
    case Syscall::kSendto:
    case Syscall::kRecvfrom:
    case Syscall::kSendmsg:
    case Syscall::kRecvmsg:
    case Syscall::kSetsockopt:
    case Syscall::kVsockSend:
    case Syscall::kVsockRecv:
    case Syscall::kEpollWait:
    case Syscall::kEpollCtl:
      return OpClass::kNetwork;
    case Syscall::kFsync:
      return OpClass::kSync;
    default:
      return OpClass::kOther;
  }
}

bool op_is_write(Syscall sc) {
  return sc == Syscall::kWrite || sc == Syscall::kPwrite64 ||
         sc == Syscall::kWritev;
}

double op_vcpus(OpClass c) {
  switch (c) {
    case OpClass::kFile:
    case OpClass::kSync:
    case OpClass::kNetwork:
      return 0.5;
    case OpClass::kMemory:
      return 1.0;
    case OpClass::kOther:
      return 1.0;
  }
  return 1.0;
}

namespace {

std::vector<SyscallProgram> make_builtins() {
  std::vector<SyscallProgram> programs;

  // kv-server: the serving loop of a small key-value store — wait for a
  // request, read it off the socket, fetch the value from the tenant's
  // store file (cache-hot after the first touch), answer, stamp metrics.
  SyscallProgram kv;
  kv.name = "kv-server";
  kv.loops = 24;
  kv.ops = {
      {Syscall::kEpollWait, 0, 1, 0, false},
      {Syscall::kRecvfrom, 2ull << 10, 1, 0, false},
      {Syscall::kPread64, 16ull << 10, 1, 0, false},
      {Syscall::kSendto, 8ull << 10, 1, 0, false},
      {Syscall::kClockGettime, 0, 2, sim::micros(150), false},
  };
  programs.push_back(std::move(kv));

  // image-pull-then-serve: pull a program-shared image (the first tenant
  // pays NVMe, later ones hit the shared cache lines), map it, then serve
  // a burst of requests out of it.
  SyscallProgram pull;
  pull.name = "image-pull-serve";
  pull.loops = 6;
  pull.ops = {
      {Syscall::kOpenat, 0, 1, 0, true},
      {Syscall::kRead, 8ull << 20, 1, 0, true},
      {Syscall::kMmap, 4ull << 20, 1, 0, true},
      {Syscall::kRecvfrom, 2ull << 10, 8, 0, false},
      {Syscall::kSendto, 16ull << 10, 8, sim::micros(200), false},
  };
  programs.push_back(std::move(pull));

  // log-writer: append-heavy durability churn — buffered writes are cheap
  // (page-cache dirtying only), every fsync pays the NVMe flush for the
  // megabyte just written.
  SyscallProgram log;
  log.name = "log-writer";
  log.loops = 32;
  log.ops = {
      {Syscall::kWrite, 256ull << 10, 4, 0, false},
      {Syscall::kFsync, 1ull << 20, 1, sim::micros(100), false},
  };
  programs.push_back(std::move(log));

  // mmap-analytics: map a private working set, advise the scan pattern,
  // block on the join, unmap — the address-space-heavy end of the mix.
  SyscallProgram mm;
  mm.name = "mmap-analytics";
  mm.loops = 12;
  mm.ops = {
      {Syscall::kMmap, 16ull << 20, 1, 0, false},
      {Syscall::kMadvise, 0, 2, 0, false},
      {Syscall::kFutexWait, 0, 1, 0, false},
      {Syscall::kMunmap, 16ull << 20, 1, sim::micros(250), false},
  };
  programs.push_back(std::move(mm));

  return programs;
}

const std::vector<SyscallProgram>& builtins() {
  static const std::vector<SyscallProgram> table = make_builtins();
  return table;
}

}  // namespace

int builtin_program_count() {
  return static_cast<int>(builtins().size());
}

const SyscallProgram& builtin_program(int index) {
  const auto& table = builtins();
  if (index < 0 || index >= static_cast<int>(table.size())) {
    throw std::out_of_range("builtin_program: unknown program index");
  }
  return table[static_cast<std::size_t>(index)];
}

}  // namespace fleet
