#include "fleet/report.h"

#include <cstdio>

#include "stats/table.h"

namespace fleet {

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return std::string(buf);
}

}  // namespace

std::string FleetReport::to_text() const {
  std::string out;
  out += "scenario: " + scenario + " (seed " + std::to_string(seed) + ")\n";
  if (is_cluster()) {
    out += "placement: " + placement + " across " +
           std::to_string(hosts.size()) + " hosts\n";
  }
  out += "tenants: " + std::to_string(admitted) + " admitted, " +
         std::to_string(rejected) + " rejected, " + std::to_string(completed) +
         " completed; peak active " + std::to_string(peak_active) + "\n";
  if (spills > 0) {
    out += "spills: " + std::to_string(spills) +
           " admissions landed on a lower-ranked host after a refusal\n";
  }
  out += "makespan: " + fmt("%.2f", sim::to_millis(makespan)) + " ms; peak CPU demand " +
         fmt("%.2f", peak_cpu_demand) + "x host threads; peak resident " +
         fmt("%.1f", static_cast<double>(peak_resident_bytes) / (1ull << 30)) +
         " GiB\n";
  if (first_oom_tenant >= 0) {
    out += "density wall: tenant " + std::to_string(first_oom_tenant) +
           " was the first to not fit in host RAM\n";
  }
  if (ksm.enabled) {
    out += "ksm: " + std::to_string(ksm.advised_pages) + " pages advised -> " +
           std::to_string(ksm.backing_pages) + " backing (gain " +
           fmt("%.2f", ksm.density_gain) + "x, " +
           fmt("%.1f", 100.0 * ksm.shared_fraction) + "% cross-tenant shared)\n";
  }
  out += "host page cache: " + std::to_string(page_cache_hits) + " hits, " +
         std::to_string(page_cache_misses) + " misses; nvme read " +
         fmt("%.1f", static_cast<double>(nvme_bytes_read) / (1ull << 20)) +
         " MiB\n";
  out += "fleet HAP: " + std::to_string(hap.distinct_functions) +
         " distinct host fns, " + std::to_string(hap.total_invocations) +
         " invocations, extended HAP " + fmt("%.2f", hap.extended_hap) + "\n";
  if (is_cluster() && !cluster_boot_ms.empty()) {
    out += "cluster boot CDF: p50 " + fmt("%.2f", cluster_boot_ms.percentile(50)) +
           " ms, p90 " + fmt("%.2f", cluster_boot_ms.percentile(90)) +
           " ms, p99 " + fmt("%.2f", cluster_boot_ms.percentile(99)) +
           " ms over " + std::to_string(cluster_boot_ms.size()) + " boots\n";
  }
  // SLO verdict: rendered only when the scenario set a budget, so
  // budget-less runs stay byte-identical to the pinned goldens.
  if (boot_slo_ms > 0 && !cluster_boot_ms.empty()) {
    out += "boot SLO: " + fmt("%.1f", 100.0 * boot_slo_fraction()) +
           "% of " + std::to_string(cluster_boot_ms.size()) +
           " cold starts within " + fmt("%.2f", sim::to_millis(boot_slo_ms)) +
           " ms\n";
  }
  if (churn_rearrivals > 0) {
    out += "churn: " + std::to_string(churn_rearrivals) + " re-arrivals\n";
  }
  if (!autoscale_timeline.empty()) {
    out += "autoscale: " + std::to_string(autoscale_timeline.size()) +
           " actions; final " + std::to_string(final_host_count) +
           " live hosts";
    if (drain_migrations > 0) {
      out += "; " + std::to_string(drain_migrations) + " drain migrations";
    }
    out += "\n";
    for (const AutoscaleAction& a : autoscale_timeline) {
      out += "  t=" + fmt("%.2f", sim::to_millis(a.time)) + " ms  " +
             a.action + " host " + std::to_string(a.host) + " (" +
             std::to_string(a.live_hosts) + " live, resident " +
             fmt("%.1f", 100.0 * a.resident_fraction) + "%)\n";
    }
  }
  // Chaos section: rendered only for runs that injected faults, so
  // fault-free goldens stay byte-identical.
  if (!recovery.empty()) {
    out += "chaos: " + std::to_string(recovery.size()) + " faults; " +
           std::to_string(crash_victims) + " victims, " +
           std::to_string(crash_readmitted) + " re-admitted (" +
           fmt("%.1f", 100.0 * readmission_fraction()) + "%), " +
           std::to_string(crash_lost) + " lost";
    if (nic_stalls > 0) {
      out += "; " + std::to_string(nic_stalls) + " NIC completions stalled";
    }
    out += "\n";
    for (const RecoveryVerdict& v : recovery) {
      out += "  t=" + fmt("%.2f", sim::to_millis(v.time)) + " ms  " + v.kind;
      if (!v.rack.empty()) {
        out += " rack " + v.rack;
      }
      out += " host(s)";
      for (const int h : v.hosts) {
        out += " " + std::to_string(h);
      }
      if (v.kind == "partition") {
        out += " for " + fmt("%.2f", sim::to_millis(v.duration)) + " ms";
      } else {
        out += ": " + std::to_string(v.victims) + " victims, " +
               std::to_string(v.readmitted) + " re-admitted, " +
               std::to_string(v.lost) + " lost";
        // Rendered only when a crash actually caught a boot in flight, so
        // crash goldens without mid-boot victims keep their bytes.
        if (v.boots_lost > 0) {
          out += ", " + std::to_string(v.boots_lost) + " partial boots lost";
        }
        if (!v.replace_ms.empty()) {
          out += "; re-place p50 " + fmt("%.2f", v.replace_ms.percentile(50)) +
                 " ms, p99 " + fmt("%.2f", v.replace_ms.percentile(99)) +
                 " ms";
        }
        // Per-fault SLO verdict, gated on a declared budget so budget-less
        // chaos runs keep their historical bytes.
        if (replace_slo_ms > 0) {
          out += v.slo_pass(replace_slo_ms) ? "; SLO PASS" : "; SLO FAIL";
        }
      }
      out += "\n";
    }
    if (!replace_ms.empty()) {
      out += "recovery: time-to-re-place p50 " +
             fmt("%.2f", replace_ms.percentile(50)) + " ms, p99 " +
             fmt("%.2f", replace_ms.percentile(99)) + " ms over " +
             std::to_string(replace_ms.size()) + " re-placements\n";
    }
    if (replace_slo_ms > 0) {
      out += "recovery SLO: p99 time-to-re-place within " +
             fmt("%.2f", sim::to_millis(replace_slo_ms)) + " ms, no loss -> " +
             (recovery_slo_pass() ? "PASS" : "FAIL") + "\n";
    }
  }
  // Degraded-mode section: rendered only when degrade-family faults fired
  // or the retry engine counted anything, so every historical golden stays
  // byte-identical.
  if (!degraded.empty() || op_retries > 0 || op_give_ups > 0) {
    out += "degraded: " + std::to_string(degraded.size()) + " faults; " +
           std::to_string(op_retries) + " op retries, " +
           std::to_string(op_give_ups) + " give-ups\n";
    for (const DegradeVerdict& v : degraded) {
      out += "  t=" + fmt("%.2f", sim::to_millis(v.time)) + " ms  " + v.kind;
      if (!v.rack.empty()) {
        out += " rack " + v.rack;
      }
      out += " host(s)";
      for (const int h : v.hosts) {
        out += " " + std::to_string(h);
      }
      if (v.kind == "partial-partition") {
        out += " <-> " + std::to_string(v.peer);
      }
      if (v.kind == "disk-degrade") {
        out += " x" + fmt("%.1f", v.multiplier);
      }
      out += " for " + fmt("%.2f", sim::to_millis(v.duration)) + " ms: " +
             std::to_string(v.affected) + " tenants affected, " +
             std::to_string(v.retries) + " retries, " +
             std::to_string(v.give_ups) + " give-ups";
      if (v.kind == "mem-pressure") {
        out += ", resident spike " +
               fmt("%.1f", static_cast<double>(v.resident_spike_bytes) /
                               (1ull << 20)) +
               " MiB";
      }
      if (!v.added_ms.empty()) {
        out += "; added latency p50 " + fmt("%.3f", v.added_ms.percentile(50)) +
               " ms, p99 " + fmt("%.3f", v.added_ms.percentile(99)) + " ms";
      }
      out += "\n";
    }
  }
  // Syscall-program section: rendered only for runs with a program mix, so
  // all-statistical goldens stay byte-identical.
  if (!by_program.empty()) {
    int program_tenants = 0;
    std::uint64_t program_ops = 0;
    for (const auto& [name, prog] : by_program) {
      (void)name;
      program_tenants += prog.tenants;
      for (const ProgramOpClassStats& cls : prog.by_class) {
        program_ops += cls.ops;
      }
    }
    out += "programs: " + std::to_string(by_program.size()) + " programs, " +
           std::to_string(program_tenants) + " tenants, " +
           std::to_string(program_ops) + " ops\n";
    for (const auto& [name, prog] : by_program) {
      out += "  " + name + " (" + std::to_string(prog.tenants) + " tenants)\n";
      for (std::size_t c = 0; c < prog.by_class.size(); ++c) {
        const ProgramOpClassStats& cls = prog.by_class[c];
        if (cls.ops == 0) {
          continue;
        }
        out += "    " + op_class_name(static_cast<OpClass>(c)) + ": " +
               std::to_string(cls.ops) + " ops, p50 " +
               fmt("%.3f", cls.op_ms.percentile(50)) + " ms, p99 " +
               fmt("%.3f", cls.op_ms.percentile(99)) + " ms";
        // Per-class SLO verdict, gated on a declared budget so budget-less
        // program runs keep their bytes.
        if (op_slo_ms > 0) {
          out += cls.op_ms.percentile(99) <=
                         static_cast<double>(op_slo_ms) / 1e6
                     ? " [SLO PASS]"
                     : " [SLO FAIL]";
        }
        out += "\n";
      }
    }
    if (op_slo_ms > 0) {
      out += "program SLO: per-op p99 within " +
             fmt("%.2f", sim::to_millis(op_slo_ms)) + " ms -> " +
             (program_slo_pass() ? "PASS" : "FAIL") + "\n";
    }
  }
  out += "\n";

  stats::Table table({"platform", "tenants", "boot p50 (ms)", "boot p90 (ms)",
                      "boot p99 (ms)", "phase p50 (ms)"});
  for (const auto& [name, stats] : by_platform) {
    if (stats.boot_ms.empty()) {
      table.add_row({name, std::to_string(stats.tenants), "-", "-", "-", "-"});
      continue;
    }
    table.add_row(
        {name, std::to_string(stats.tenants),
         stats::Table::num(stats.boot_ms.percentile(50)),
         stats::Table::num(stats.boot_ms.percentile(90)),
         stats::Table::num(stats.boot_ms.percentile(99)),
         stats.phase_ms.empty() ? "-"
                                : stats::Table::num(stats.phase_ms.percentile(50))});
  }
  out += table.to_text();

  if (is_cluster()) {
    out += "\n";
    stats::Table host_table({"host", "admitted", "rejected", "spill in",
                             "spill out", "peak active",
                             "peak resident (GiB)", "ksm shared pages",
                             "hap fns", "extended HAP"});
    bool any_drained = false;
    bool any_crashed = false;
    for (const HostRollup& h : hosts) {
      any_drained = any_drained || h.drained;
      any_crashed = any_crashed || h.crashed;
      host_table.add_row(
          {std::to_string(h.host) +
               (h.drained ? "*" : h.crashed ? "!" : ""),
           std::to_string(h.admitted),
           std::to_string(h.rejected), std::to_string(h.spill_in),
           std::to_string(h.spill_out), std::to_string(h.peak_active),
           stats::Table::num(static_cast<double>(h.peak_resident_bytes) /
                             static_cast<double>(1ull << 30), 1),
           std::to_string(h.ksm.shared_pages),
           std::to_string(h.hap.distinct_functions),
           stats::Table::num(h.hap.extended_hap)});
    }
    out += host_table.to_text();
    if (any_drained) {
      out += "(* = host was drained mid-run)\n";
    }
    if (any_crashed) {
      out += "(! = host crashed mid-run)\n";
    }
  }
  return out;
}

double FleetReport::boot_slo_fraction() const {
  if (cluster_boot_ms.empty()) {
    return 0.0;
  }
  return cluster_boot_ms.fraction_below(sim::to_millis(boot_slo_ms));
}

core::CdfSeries FleetReport::cluster_boot_cdf() const {
  core::CdfSeries s;
  s.platform = "cluster";
  s.samples_ms = cluster_boot_ms;
  return s;
}

std::vector<core::CdfSeries> FleetReport::boot_cdfs() const {
  std::vector<core::CdfSeries> series;
  for (const auto& [name, stats] : by_platform) {
    if (stats.boot_ms.empty()) {
      continue;
    }
    core::CdfSeries s;
    s.platform = name;
    s.samples_ms = stats.boot_ms;
    series.push_back(std::move(s));
  }
  return series;
}

}  // namespace fleet
