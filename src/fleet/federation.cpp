#include "fleet/federation.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "core/host_system.h"
#include "fleet/engine.h"
#include "fleet/indexed_heap.h"

namespace fleet {

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return std::string(buf);
}

// --- Ranking keys, shared by the sort path (rank_cells over a CellView
// snapshot) and the heap path (incremental walk over CellState), exactly
// like placement.cpp does for hosts. ---------------------------------------

std::uint64_t free_bytes_of(std::uint64_t cap, std::uint64_t resident) {
  return cap > resident ? cap - resident : 0;
}

std::uint64_t free_bytes(const CellView& c) {
  return free_bytes_of(c.ram_cap_bytes, c.resident_bytes);
}

std::uint64_t free_bytes(const CellState& c) {
  return free_bytes_of(c.ram_cap_bytes, c.resident_bytes);
}

/// Sort positions 0..n-1 by `less` and append the corresponding
/// CellView::index values to `ranked` (placement.cpp's rank_by, one level
/// up).
template <typename Less>
void rank_by(const std::vector<CellView>& cells, std::vector<int>& ranked,
             Less less) {
  const auto first = static_cast<std::ptrdiff_t>(ranked.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ranked.push_back(static_cast<int>(i));
  }
  std::sort(ranked.begin() + first, ranked.end(), [&](int a, int b) {
    return less(cells[static_cast<std::size_t>(a)],
                cells[static_cast<std::size_t>(b)]);
  });
  for (auto it = ranked.begin() + first; it != ranked.end(); ++it) {
    *it = cells[static_cast<std::size_t>(*it)].index;
  }
}

// --- Built-in routing policies --------------------------------------------

class RoundRobinRouting final : public RoutingPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  bool incremental() const override { return true; }
  void reset() override {
    cursor_ = 0;
    live_cells_.clear();
    walk_start_ = 0;
    walk_emitted_ = 0;
  }
  void rank_cells(const RouteRequest&, const std::vector<CellView>& cells,
                  std::vector<int>& ranked) override {
    const std::size_t n = cells.size();
    const std::size_t start = static_cast<std::size_t>(cursor_++ % n);
    for (std::size_t k = 0; k < n; ++k) {
      ranked.push_back(cells[(start + k) % n].index);
    }
  }

  void target_updated(const CellState& s) override {
    const auto it =
        std::lower_bound(live_cells_.begin(), live_cells_.end(), s.index);
    if (it == live_cells_.end() || *it != s.index) {
      live_cells_.insert(it, s.index);
    }
  }
  void target_removed(int cell) override {
    const auto it =
        std::lower_bound(live_cells_.begin(), live_cells_.end(), cell);
    if (it != live_cells_.end() && *it == cell) {
      live_cells_.erase(it);
    }
  }
  void walk_begin(const RouteRequest&) override {
    walk_start_ = static_cast<std::size_t>(cursor_++ % live_cells_.size());
    walk_emitted_ = 0;
  }
  int walk_next() override {
    if (walk_emitted_ >= live_cells_.size()) {
      return -1;
    }
    return live_cells_[(walk_start_ + walk_emitted_++) % live_cells_.size()];
  }

 private:
  std::uint64_t cursor_ = 0;
  std::vector<int> live_cells_;  // sorted, mirrors the snapshot's order
  std::size_t walk_start_ = 0;
  std::size_t walk_emitted_ = 0;
};

struct CellFreeCmp {
  const std::vector<CellState>* states;
  bool operator()(int a, int b) const {
    const std::uint64_t fa = free_bytes((*states)[static_cast<std::size_t>(a)]);
    const std::uint64_t fb = free_bytes((*states)[static_cast<std::size_t>(b)]);
    if (fa != fb) {
      return fa > fb;
    }
    return a < b;
  }
};

class LeastLoadedCellRouting final
    : public HeapWalkRanking<RoutingPolicy, CellFreeCmp> {
 public:
  LeastLoadedCellRouting()
      : HeapWalkRanking<RoutingPolicy, CellFreeCmp>(CellFreeCmp{&states_}) {}
  std::string name() const override { return "least-loaded-cell"; }
  void rank_cells(const RouteRequest&, const std::vector<CellView>& cells,
                  std::vector<int>& ranked) override {
    rank_by(cells, ranked, [](const CellView& a, const CellView& b) {
      const std::uint64_t fa = free_bytes(a);
      const std::uint64_t fb = free_bytes(b);
      if (fa != fb) {
        return fa > fb;
      }
      return a.index < b.index;
    });
  }
};

class PlatformAffinityRouting;

struct CellAffinityCmp {
  const PlatformAffinityRouting* self;
  platforms::PlatformId platform;
  bool operator()(int a, int b) const;
};

/// Cell-level analogue of ksm-affinity placement: steer a platform's
/// tenants into the fewest cells so each cell's KSM digest runs and boot
/// image caches merge across as many co-tenants as possible.
class PlatformAffinityRouting final
    : public IncrementalRanking<RoutingPolicy> {
 public:
  std::string name() const override { return "platform-affinity"; }
  void rank_cells(const RouteRequest&, const std::vector<CellView>& cells,
                  std::vector<int>& ranked) override {
    rank_by(cells, ranked, [](const CellView& a, const CellView& b) {
      if (a.same_platform_tenants != b.same_platform_tenants) {
        return a.same_platform_tenants > b.same_platform_tenants;
      }
      const std::uint64_t fa = free_bytes(a);
      const std::uint64_t fb = free_bytes(b);
      if (fa != fb) {
        return fa > fb;
      }
      return a.index < b.index;
    });
  }

  void platform_count_changed(int cell, platforms::PlatformId platform,
                              int count) override {
    auto& per_cell = counts_[platform];
    if (per_cell.size() <= static_cast<std::size_t>(cell)) {
      per_cell.resize(static_cast<std::size_t>(cell) + 1, 0);
    }
    per_cell[static_cast<std::size_t>(cell)] = count;
    const auto it = heaps_.find(platform);
    if (it != heaps_.end() && it->second.contains(cell)) {
      it->second.update(cell);
    }
  }

  void walk_begin(const RouteRequest& req) override {
    restore_popped();
    walk_platform_ = req.platform_id;
    has_walked_ = true;
    auto it = heaps_.find(walk_platform_);
    if (it == heaps_.end()) {
      it = heaps_
               .emplace(walk_platform_, IndexedHeap<CellAffinityCmp>(
                                            CellAffinityCmp{this,
                                                            walk_platform_}))
               .first;
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i] != 0) {
          it->second.push(static_cast<int>(i));
        }
      }
    }
  }

  int walk_next() override {
    auto& heap = heaps_.at(walk_platform_);
    if (heap.empty()) {
      return -1;
    }
    const int cell = heap.pop();
    popped_.push_back(cell);
    return cell;
  }

  int count_for(platforms::PlatformId platform, int cell) const {
    const auto it = counts_.find(platform);
    if (it == counts_.end() ||
        it->second.size() <= static_cast<std::size_t>(cell)) {
      return 0;
    }
    return it->second[static_cast<std::size_t>(cell)];
  }

  const CellState& state_of(int cell) const {
    return states_[static_cast<std::size_t>(cell)];
  }

 protected:
  void reset_orderings() override {
    heaps_.clear();
    counts_.clear();
    has_walked_ = false;
  }
  void target_added(int cell) override {
    for (auto& [platform, heap] : heaps_) {
      heap.push(cell);
    }
  }
  void target_changed(int cell) override {
    for (auto& [platform, heap] : heaps_) {
      if (heap.contains(cell)) {
        heap.update(cell);
      }
    }
  }
  void target_dropped(int cell) override {
    for (auto& [platform, heap] : heaps_) {
      if (heap.contains(cell)) {
        heap.erase(cell);
      }
    }
  }

  void restore_popped() {
    if (!has_walked_) {
      popped_.clear();
      return;
    }
    auto& heap = heaps_.at(walk_platform_);
    for (const int cell : popped_) {
      if (is_live(cell) && !heap.contains(cell)) {
        heap.push(cell);
      }
    }
    popped_.clear();
  }

 private:
  std::unordered_map<platforms::PlatformId, std::vector<int>> counts_;
  std::unordered_map<platforms::PlatformId, IndexedHeap<CellAffinityCmp>>
      heaps_;
  platforms::PlatformId walk_platform_ = platforms::PlatformId::kNative;
  bool has_walked_ = false;
};

bool CellAffinityCmp::operator()(int a, int b) const {
  const int ca = self->count_for(platform, a);
  const int cb = self->count_for(platform, b);
  if (ca != cb) {
    return ca > cb;
  }
  const std::uint64_t fa = free_bytes(self->state_of(a));
  const std::uint64_t fb = free_bytes(self->state_of(b));
  if (fa != fb) {
    return fa > fb;
  }
  return a < b;
}

}  // namespace

std::string routing_kind_name(RoutingKind k) {
  switch (k) {
    case RoutingKind::kRoundRobin:
      return "round-robin";
    case RoutingKind::kLeastLoadedCell:
      return "least-loaded-cell";
    case RoutingKind::kPlatformAffinity:
      return "platform-affinity";
  }
  return "unknown";
}

std::vector<RoutingKind> all_routing_kinds() {
  return {RoutingKind::kRoundRobin, RoutingKind::kLeastLoadedCell,
          RoutingKind::kPlatformAffinity};
}

int RoutingPolicy::route(const RouteRequest& req,
                         const std::vector<CellView>& cells) {
  std::vector<int> ranked;
  rank_cells(req, cells, ranked);
  if (ranked.empty()) {
    throw std::logic_error("RoutingPolicy: rank_cells returned no cells");
  }
  return ranked.front();
}

std::unique_ptr<RoutingPolicy> make_routing(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kRoundRobin:
      return std::make_unique<RoundRobinRouting>();
    case RoutingKind::kLeastLoadedCell:
      return std::make_unique<LeastLoadedCellRouting>();
    case RoutingKind::kPlatformAffinity:
      return std::make_unique<PlatformAffinityRouting>();
  }
  throw std::invalid_argument("make_routing: unknown RoutingKind");
}

FederationTopology FederationTopology::uniform(int cells,
                                               const CellSpec& spec) {
  if (cells < 1) {
    throw std::invalid_argument("FederationTopology: cells must be >= 1");
  }
  FederationTopology t;
  t.cells.resize(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    t.cells[static_cast<std::size_t>(i)].name = "cell" + std::to_string(i);
    t.cells[static_cast<std::size_t>(i)].spec = spec;
  }
  return t;
}

FederatedScenario FederatedScenario::from_scenario(const Scenario& s,
                                                   int cells,
                                                   RoutingKind routing) {
  FederatedScenario fs;
  fs.traffic = static_cast<const TrafficSpec&>(s);
  fs.routing = routing;
  fs.topology =
      FederationTopology::uniform(cells, static_cast<const CellSpec&>(s));
  return fs;
}

FederatedScenario FederatedScenario::federation_storm(int tenants, int cells,
                                                      int hosts_per_cell,
                                                      RoutingKind routing) {
  const Scenario base = Scenario::cluster_storm(tenants, hosts_per_cell,
                                                PlacementKind::kLeastPressure);
  FederatedScenario fs = from_scenario(base, cells, routing);
  fs.traffic.name = "federation-storm";
  return fs;
}

bool FederationReport::recovery_slo_pass() const {
  if (replace_slo_ms <= 0) {
    return true;
  }
  for (const CellRollup& c : cells) {
    for (const FleetReport::RecoveryVerdict& v : c.report.recovery) {
      // Cell-outage verdicts are judged federation-wide below: in-cell a
      // whole-cell outage always loses every victim.
      if (v.kind != "cell-outage" && !v.slo_pass(replace_slo_ms)) {
        return false;
      }
    }
  }
  if (outage_lost > 0) {
    return false;
  }
  return outage_replace_ms.empty() ||
         outage_replace_ms.percentile(99.0) <=
             static_cast<double>(replace_slo_ms) / 1e6;
}

std::string FederationReport::to_text() const {
  // The degenerate federation renders its lone cell verbatim: one cell
  // behind a router IS that cluster, byte for byte.
  if (cells.size() == 1) {
    return cells[0].report.to_text();
  }
  std::string out;
  out += "federation: " + scenario + " (seed " + std::to_string(seed) + ")\n";
  out += "routing: " + routing + " across " + std::to_string(cells.size()) +
         " cells\n";
  out += "tenants: " + std::to_string(admitted) + " admitted, " +
         std::to_string(rejected) + " rejected, " + std::to_string(completed) +
         " completed of " + std::to_string(tenants) + " routed\n";
  if (spills > 0) {
    out += "inter-cell spills: " + std::to_string(spills) +
           " tenants moved to a lower-ranked cell after a refusal\n";
  }
  out += "makespan: " + fmt("%.2f", sim::to_millis(makespan)) +
         " ms; events processed: " + std::to_string(events_processed) + "\n";
  if (outage_victims > 0) {
    out += "cell outages: " + std::to_string(outage_victims) + " stranded, " +
           std::to_string(outage_rerouted) + " re-routed, " +
           std::to_string(outage_lost) + " lost";
    if (!outage_replace_ms.empty()) {
      out += "; re-place p50 " + fmt("%.2f", outage_replace_ms.percentile(50)) +
             " ms, p99 " + fmt("%.2f", outage_replace_ms.percentile(99)) +
             " ms";
    }
    out += "\n";
  }
  if (replace_slo_ms > 0) {
    out += "recovery SLO: p99 time-to-re-place within " +
           fmt("%.2f", sim::to_millis(replace_slo_ms)) + " ms, no loss -> " +
           (recovery_slo_pass() ? "PASS" : "FAIL") + "\n";
  }
  out += "\n";
  for (const CellRollup& c : cells) {
    out += c.name + " [" + c.region + "]: hosts " + std::to_string(c.hosts) +
           ", routed " + std::to_string(c.routed) + ", admitted " +
           std::to_string(c.admitted) + ", rejected " +
           std::to_string(c.rejected) + ", spill in " +
           std::to_string(c.spill_in) + ", spill out " +
           std::to_string(c.spill_out) + (c.outage ? ", OUTAGE" : "") + "\n";
  }
  for (const CellRollup& c : cells) {
    out += "\n--- " + c.name + " [" + c.region + "] ---\n";
    out += c.report.to_text();
  }
  return out;
}

Federation::Federation(FederationTopology topology)
    : topology_(std::move(topology)) {
  if (topology_.cells.empty()) {
    throw std::invalid_argument("Federation: topology has no cells");
  }
  cells_.resize(topology_.cells.size());
}

FederationReport Federation::run(const FederatedScenario& fs) {
  const int cell_n = cell_count();
  if (!fs.topology.cells.empty() &&
      static_cast<int>(fs.topology.cells.size()) != cell_n) {
    throw std::invalid_argument(
        "Federation: scenario topology has " +
        std::to_string(fs.topology.cells.size()) + " cells, federation has " +
        std::to_string(cell_n));
  }
  for (const CellOutage& o : fs.outages) {
    if (o.cell < 0 || o.cell >= cell_n) {
      throw std::invalid_argument("Federation: outage targets cell " +
                                  std::to_string(o.cell) + " of " +
                                  std::to_string(cell_n));
    }
  }

  // The global population, drawn once from the seed (or taken verbatim).
  std::vector<TenantSeed> population = fs.traffic.population.empty()
                                           ? fs.traffic.draw_population()
                                           : fs.traffic.population;
  const int n = static_cast<int>(population.size());
  for (int i = 1; i < n; ++i) {
    if (population[static_cast<std::size_t>(i)].arrival <
        population[static_cast<std::size_t>(i - 1)].arrival) {
      throw std::invalid_argument(
          "Federation: explicit population must be sorted by arrival");
    }
  }

  // Per-cell Scenario skeletons: global traffic + that cell's mechanism,
  // with scenario-level outages lowered into the cell's fault schedule.
  std::vector<Scenario> cs(static_cast<std::size_t>(cell_n));
  for (int k = 0; k < cell_n; ++k) {
    Scenario& s = cs[static_cast<std::size_t>(k)];
    static_cast<TrafficSpec&>(s) = fs.traffic;
    static_cast<CellSpec&>(s) = topology_.cells[static_cast<std::size_t>(k)].spec;
    s.population.clear();
    s.tenant_count = 0;  // cells only ever run their routed subset
  }
  for (const CellOutage& o : fs.outages) {
    Fault f;
    f.kind = Fault::Kind::kCellOutage;
    f.time = o.time;
    f.restart_delay = o.restart_delay;
    f.restart_jitter = o.restart_jitter;
    cs[static_cast<std::size_t>(o.cell)].faults.timed.push_back(f);
  }

  // Admission-effective aggregate RAM per cell, for the router's
  // projections (mirrors FleetEngine::init_shard's per-host cap).
  std::vector<std::uint64_t> cell_cap(static_cast<std::size_t>(cell_n));
  for (int k = 0; k < cell_n; ++k) {
    const CellSpec& spec = topology_.cells[static_cast<std::size_t>(k)].spec;
    const std::uint64_t per_host =
        spec.host_ram_override_bytes != 0
            ? spec.host_ram_override_bytes
            : (spec.cluster.ram_bytes != 0 ? spec.cluster.ram_bytes
                                           : core::HostSystemSpec{}.ram_bytes);
    cell_cap[static_cast<std::size_t>(k)] =
        per_host * static_cast<std::uint64_t>(
                       std::max(1, spec.cluster.host_count));
  }

  // Projected router-side load. The router never sees inside a cell; it
  // ranks on these estimates, and real admission inside each cell settles
  // the rest (spilling back through the router on refusal).
  struct Projection {
    std::uint64_t resident = 0;
    int count = 0;
    std::map<platforms::PlatformId, int> by_platform;
  };
  std::vector<Projection> proj(static_cast<std::size_t>(cell_n));

  std::unique_ptr<RoutingPolicy> router = make_routing(fs.routing);
  router->reset();
  for (int k = 0; k < cell_n; ++k) {
    router->cell_updated(
        CellState{k, cell_cap[static_cast<std::size_t>(k)], 0, 0});
  }

  // Effective seeds: a moved tenant carries its updated arrival (rejection
  // instant keeps the original; outage victims re-enter at their jittered
  // re-arrival).
  std::vector<TenantSeed> eff = population;

  const auto estimate = [&](int gid) {
    const bool hv = is_hypervisor_backed(
        eff[static_cast<std::size_t>(gid)].platform_id);
    // Same projection the density check uses: hypervisor tenants pin their
    // guest RAM; process-backed ones are assumed far lighter.
    return hv ? fs.traffic.guest_ram_bytes : fs.traffic.guest_ram_bytes / 4;
  };

  std::unordered_map<int, std::vector<char>> tried;
  std::vector<int> ranked_scratch;

  const auto route_one = [&](int gid) -> int {
    const TenantSeed& seed = eff[static_cast<std::size_t>(gid)];
    RouteRequest req;
    req.tenant_id = static_cast<std::uint64_t>(gid);
    req.platform_id = seed.platform_id;
    req.hypervisor_backed = is_hypervisor_backed(seed.platform_id);
    req.guest_ram_bytes = fs.traffic.guest_ram_bytes;
    const auto it = tried.find(gid);
    const std::vector<char>* skip = it == tried.end() ? nullptr : &it->second;
    if (router->incremental()) {
      router->walk_begin(req);
      int c;
      while ((c = router->walk_next()) >= 0) {
        if (skip == nullptr || (*skip)[static_cast<std::size_t>(c)] == 0) {
          return c;
        }
      }
      return -1;
    }
    // Snapshot-sort spec path for custom policies.
    std::vector<CellView> views(static_cast<std::size_t>(cell_n));
    for (int k = 0; k < cell_n; ++k) {
      CellView& v = views[static_cast<std::size_t>(k)];
      v.index = k;
      v.ram_cap_bytes = cell_cap[static_cast<std::size_t>(k)];
      v.resident_bytes = proj[static_cast<std::size_t>(k)].resident;
      v.active_tenants = proj[static_cast<std::size_t>(k)].count;
      const auto pit =
          proj[static_cast<std::size_t>(k)].by_platform.find(req.platform_id);
      v.same_platform_tenants =
          pit == proj[static_cast<std::size_t>(k)].by_platform.end()
              ? 0
              : pit->second;
    }
    ranked_scratch.clear();
    router->rank_cells(req, views, ranked_scratch);
    for (const int c : ranked_scratch) {
      if (skip == nullptr || (*skip)[static_cast<std::size_t>(c)] == 0) {
        return c;
      }
    }
    return -1;
  };

  const auto project_into = [&](int gid, int k, int direction) {
    Projection& p = proj[static_cast<std::size_t>(k)];
    const std::uint64_t est = estimate(gid);
    if (direction > 0) {
      p.resident += est;
      p.count += 1;
    } else {
      p.resident = p.resident >= est ? p.resident - est : 0;
      p.count -= 1;
    }
    int& pc = p.by_platform[eff[static_cast<std::size_t>(gid)].platform_id];
    pc += direction;
    router->cell_updated(CellState{k, cell_cap[static_cast<std::size_t>(k)],
                                   p.resident, p.count});
    router->platform_count_changed(
        k, eff[static_cast<std::size_t>(gid)].platform_id, pc);
  };

  // --- Initial routing pass, in global arrival order ----------------------
  std::vector<int> cell_of(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> members(static_cast<std::size_t>(cell_n));
  for (int gid = 0; gid < n; ++gid) {
    const int c = route_one(gid);
    cell_of[static_cast<std::size_t>(gid)] = c;
    members[static_cast<std::size_t>(c)].push_back(gid);
    project_into(gid, c, +1);
  }

  // Ordered insert position by (effective arrival, global id) — the order
  // every cell population is kept in.
  const auto member_pos = [&](std::vector<int>& m, int gid) {
    return std::lower_bound(m.begin(), m.end(), gid, [&](int lhs, int rhs) {
      const sim::Nanos la = eff[static_cast<std::size_t>(lhs)].arrival;
      const sim::Nanos ra = eff[static_cast<std::size_t>(rhs)].arrival;
      if (la != ra) {
        return la < ra;
      }
      return lhs < rhs;
    });
  };

  // --- Run cells, spill the refused, repeat to a fixed point --------------
  std::vector<FleetReport> reports(static_cast<std::size_t>(cell_n));
  std::vector<std::vector<int>> run_members(static_cast<std::size_t>(cell_n));
  std::vector<int> spill_in(static_cast<std::size_t>(cell_n), 0);
  std::vector<int> spill_out(static_cast<std::size_t>(cell_n), 0);
  int spills = 0;
  // First strand instant per cell-outage victim, for the federation-level
  // recovery clock (ordered: the rollup below iterates it).
  std::map<int, sim::Nanos> outage_at;

  std::vector<char> dirty(static_cast<std::size_t>(cell_n), 1);
  bool any_dirty = true;
  while (any_dirty) {
    std::vector<int> ran;
    for (int k = 0; k < cell_n; ++k) {
      if (dirty[static_cast<std::size_t>(k)] != 0) {
        ran.push_back(k);
        dirty[static_cast<std::size_t>(k)] = 0;
      }
    }
    any_dirty = false;
    for (const int k : ran) {
      Scenario s = cs[static_cast<std::size_t>(k)];
      s.population.reserve(members[static_cast<std::size_t>(k)].size());
      for (const int gid : members[static_cast<std::size_t>(k)]) {
        s.population.push_back(eff[static_cast<std::size_t>(gid)]);
      }
      run_members[static_cast<std::size_t>(k)] =
          members[static_cast<std::size_t>(k)];
      cells_[static_cast<std::size_t>(k)] = std::make_unique<Cluster>(
          topology_.cells[static_cast<std::size_t>(k)].spec.cluster);
      reports[static_cast<std::size_t>(k)] =
          cells_[static_cast<std::size_t>(k)]->run(s);
    }
    for (const int k : ran) {
      const FleetReport& rep = reports[static_cast<std::size_t>(k)];
      const std::vector<int>& who = run_members[static_cast<std::size_t>(k)];
      for (std::size_t idx = 0; idx < who.size(); ++idx) {
        const TenantOutcome& o = rep.tenants[idx];
        if (o.admitted) {
          continue;
        }
        const int gid = who[idx];
        const bool stranded = o.lost_to_fault >= 0;
        const bool outage_victim =
            stranded &&
            rep.recovery[static_cast<std::size_t>(o.lost_to_fault)].kind ==
                "cell-outage";
        if (outage_victim) {
          outage_at.emplace(
              gid,
              rep.recovery[static_cast<std::size_t>(o.lost_to_fault)].time);
        }
        // Only refusals and whole-cell outages walk on: a tenant lost to an
        // ordinary crash already had its chance on the cell's survivors,
        // and that cell's own recovery verdict owns the failure.
        if (stranded && !outage_victim) {
          continue;
        }
        auto& mask = tried.try_emplace(gid, static_cast<std::size_t>(cell_n), 0)
                         .first->second;
        mask[static_cast<std::size_t>(k)] = 1;
        const int next = route_one(gid);
        if (next < 0) {
          continue;  // every cell tried: a federation-level rejection
        }
        // Move gid k -> next at its refusal/re-arrival instant.
        auto& from = members[static_cast<std::size_t>(k)];
        from.erase(member_pos(from, gid));
        project_into(gid, k, -1);
        eff[static_cast<std::size_t>(gid)].arrival = o.arrival;
        auto& to = members[static_cast<std::size_t>(next)];
        to.insert(member_pos(to, gid), gid);
        project_into(gid, next, +1);
        cell_of[static_cast<std::size_t>(gid)] = next;
        spill_out[static_cast<std::size_t>(k)] += 1;
        spill_in[static_cast<std::size_t>(next)] += 1;
        spills += 1;
        dirty[static_cast<std::size_t>(k)] = 1;
        dirty[static_cast<std::size_t>(next)] = 1;
        any_dirty = true;
      }
    }
  }

  // --- Roll up -------------------------------------------------------------
  FederationReport fr;
  fr.scenario = fs.traffic.name;
  fr.seed = fs.traffic.seed;
  fr.routing = router->name();
  fr.tenants = n;
  fr.spills = spills;
  fr.replace_slo_ms = fs.traffic.replace_slo_ms;
  for (int k = 0; k < cell_n; ++k) {
    const CellDesc& desc = topology_.cells[static_cast<std::size_t>(k)];
    FederationReport::CellRollup r;
    r.name = desc.name.empty() ? "cell" + std::to_string(k) : desc.name;
    r.region = desc.region;
    r.hosts = std::max(1, desc.spec.cluster.host_count);
    r.routed = static_cast<int>(members[static_cast<std::size_t>(k)].size());
    r.admitted = reports[static_cast<std::size_t>(k)].tenants_admitted();
    r.rejected = reports[static_cast<std::size_t>(k)].rejected;
    r.spill_in = spill_in[static_cast<std::size_t>(k)];
    r.spill_out = spill_out[static_cast<std::size_t>(k)];
    for (const FleetReport::RecoveryVerdict& v :
         reports[static_cast<std::size_t>(k)].recovery) {
      r.outage = r.outage || v.kind == "cell-outage";
    }
    fr.admitted += r.admitted;
    fr.completed += reports[static_cast<std::size_t>(k)].completed;
    fr.events_processed +=
        reports[static_cast<std::size_t>(k)].events_processed;
    fr.makespan =
        std::max(fr.makespan, reports[static_cast<std::size_t>(k)].makespan);
    r.report = std::move(reports[static_cast<std::size_t>(k)]);
    fr.cells.push_back(std::move(r));
  }
  fr.rejected = n - fr.admitted;

  // Cell-outage recovery, judged federation-wide: the cell lost everyone,
  // the router gave the victims somewhere else to boot.
  if (!outage_at.empty()) {
    std::vector<std::unordered_map<int, std::size_t>> pos(
        static_cast<std::size_t>(cell_n));
    for (int k = 0; k < cell_n; ++k) {
      const auto& m = members[static_cast<std::size_t>(k)];
      for (std::size_t i = 0; i < m.size(); ++i) {
        pos[static_cast<std::size_t>(k)][m[i]] = i;
      }
    }
    for (const auto& [gid, t0] : outage_at) {
      fr.outage_victims += 1;
      const int c = cell_of[static_cast<std::size_t>(gid)];
      const std::size_t idx = pos[static_cast<std::size_t>(c)].at(gid);
      const TenantOutcome& o =
          fr.cells[static_cast<std::size_t>(c)].report.tenants[idx];
      if (o.admitted) {
        fr.outage_rerouted += 1;
        fr.outage_replace_ms.add(
            sim::to_millis(o.arrival + o.boot_latency - t0));
      } else {
        fr.outage_lost += 1;
      }
    }
  }
  return fr;
}

}  // namespace fleet
