// Deterministic priority event queue for the fleet scenario engine.
//
// The engine models N concurrent tenant lifecycles on one shared host by
// merging their per-tenant timelines into a single global ordering. Events
// are popped in (time, sequence) order; the sequence number makes ties
// deterministic (FIFO among simultaneous events), which the fleet report's
// byte-identical-output guarantee depends on.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace fleet {

enum class EventKind {
  kArrival,    // tenant requests admission and starts booting
  kBootDone,   // boot sequence finished; workload phases begin
  kPhaseDone,  // one workload phase finished
  kTeardown,   // tenant released its resources
};

struct Event {
  sim::Nanos time = 0;
  std::uint64_t seq = 0;  // global issue order, breaks time ties
  std::uint64_t tenant = 0;
  EventKind kind = EventKind::kArrival;
};

/// Min-heap over (time, seq). push() stamps the sequence number.
class EventQueue {
 public:
  void push(sim::Nanos time, std::uint64_t tenant, EventKind kind) {
    heap_.push(Event{time, next_seq_++, tenant, kind});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest event without removing it.
  const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fleet
