// Deterministic priority event queue for the fleet scenario engine.
//
// The engine models N concurrent tenant lifecycles on one shared host by
// merging their per-tenant timelines into a single global ordering. Events
// are popped in (time, sequence) order; the sequence number makes ties
// deterministic (FIFO among simultaneous events), which the fleet report's
// byte-identical-output guarantee depends on.
//
// Events sharing a timestamp are batched: the binary heap orders *batches*
// (one per distinct timestamp currently queued), and each batch drains its
// events in push order. A 10k-tenant storm where admissions, boot
// completions and teardowns pile up on the same instants then pays one heap
// operation per timestamp instead of one per event, and batch storage is
// recycled so steady-state churn does not allocate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace fleet {

enum class EventKind {
  kArrival,        // tenant requests admission and starts booting
  kBootPhys,       // deferred boot physics: sampling + image pull on the
                   //   admitted shard (cluster-capable runs only; plain
                   //   single-host runs boot inline at the arrival)
  kBootDone,       // boot sequence finished; workload phases begin
  kPhaseDone,      // one workload phase finished
  kProgramStep,    // one syscall-program op finished (program-mix tenants);
                   //   shard-local and window-parallel, like kPhaseDone
  kTeardown,       // tenant released its resources
  kHostEvent,      // timed operator hook: add or drain a host (tenant field
                   //   indexes Scenario::host_events)
  kAutoscaleEval,  // periodic watermark evaluation (tenant field unused)
  kHostCrash,      // fault injection: a host (or rack) dies; tenant field
                   //   indexes the run's resolved fault schedule (chaos.h)
  kPartitionStart,  // network partition opens on the fault's hosts
  kPartitionEnd,    // ...and heals; barrier marker, stall is precomputed
  kDegradeStart,    // degrade-family fault opens (disk degrade, memory
                    //   pressure, partial partition); tenant field indexes
                    //   the resolved fault schedule like kHostCrash
  kDegradeEnd,      // ...and ends; memory pressure re-merges (KSM scan)
                    //   here — disk/pair stretch is precomputed per window
};

struct Event {
  sim::Nanos time = 0;
  std::uint64_t seq = 0;  // global issue order, breaks time ties
  std::uint64_t tenant = 0;
  EventKind kind = EventKind::kArrival;
  /// Tenant lifecycle generation. A host drain migrates its tenants by
  /// bumping their epoch and re-injecting arrivals; already-queued events
  /// carrying the old epoch are popped and discarded, deterministically.
  std::uint32_t epoch = 0;
};

/// Pops events in (time, seq) order; push() stamps the sequence number.
class EventQueue {
 public:
  void push(sim::Nanos time, std::uint64_t tenant, EventKind kind,
            std::uint32_t epoch = 0) {
    push_at_seq(time, next_seq_++, tenant, kind, epoch);
  }

  /// Reserve `n` consecutive sequence numbers and return the first. The
  /// engine pre-assigns arrival seqs with this so arrivals seeded lazily
  /// (one step ahead of the cursor) keep the exact same-timestamp tie
  /// order an eagerly seeded queue would have had.
  std::uint64_t reserve_seqs(std::uint64_t n) {
    const std::uint64_t base = next_seq_;
    next_seq_ += n;
    return base;
  }

  /// Push with a seq obtained from reserve_seqs(). The seq must be larger
  /// than every already-popped event's seq at this timestamp (the engine's
  /// ascending arrival order guarantees this).
  void push_at_seq(sim::Nanos time, std::uint64_t seq, std::uint64_t tenant,
                   EventKind kind, std::uint32_t epoch = 0) {
    const auto [it, inserted] = open_.try_emplace(time, 0u);
    if (inserted) {
      it->second = alloc_batch(time, seq);
      heap_.push_back(it->second);
      sift_up(heap_.size() - 1);
    }
    Batch& b = batches_[it->second];
    // Reserved seqs can be smaller than ones already queued at this
    // timestamp: keep the pending tail of the batch sorted by seq.
    if (b.items.empty() || b.items.back().seq < seq) {
      b.items.push_back(Item{seq, tenant, kind, epoch});
    } else {
      auto pos = b.items.begin() + static_cast<std::ptrdiff_t>(b.cursor);
      while (pos != b.items.end() && pos->seq < seq) {
        ++pos;
      }
      b.items.insert(pos, Item{seq, tenant, kind, epoch});
    }
    ++size_;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Next sequence number push() would stamp. The parallel loop snapshots
  /// this at each window start: shard-local events born inside the window
  /// get provisional seqs from here upward (strictly above every queued
  /// event), then the deterministic replay re-issues the real seqs in
  /// merged order so the global numbering matches the sequential engine's.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Earliest event without removing it. Requires !empty().
  Event top() const {
    const Batch& b = batches_[heap_.front()];
    const Item& item = b.items[b.cursor];
    return Event{b.time, item.seq, item.tenant, item.kind, item.epoch};
  }

  Event pop() {
    const std::uint32_t id = heap_.front();
    Batch& b = batches_[id];
    const Item item = b.items[b.cursor++];
    const Event e{b.time, item.seq, item.tenant, item.kind, item.epoch};
    --size_;
    if (b.cursor == b.items.size()) {
      // Batch drained: retire it. A later push at the same timestamp simply
      // opens a fresh batch, which still pops in seq order.
      open_.erase(b.time);
      pop_root();
      free_.push_back(id);
    }
    return e;
  }

 private:
  struct Item {
    std::uint64_t seq;
    std::uint64_t tenant;
    EventKind kind;
    std::uint32_t epoch;
  };

  /// All events queued for one exact timestamp, in push (= seq) order.
  /// cursor marks how far the front batch has drained.
  struct Batch {
    sim::Nanos time = 0;
    std::uint64_t first_seq = 0;
    std::size_t cursor = 0;
    std::vector<Item> items;
  };

  std::uint32_t alloc_batch(sim::Nanos time, std::uint64_t first_seq) {
    std::uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      batches_[id].items.clear();  // keeps capacity: no steady-state allocs
    } else {
      id = static_cast<std::uint32_t>(batches_.size());
      batches_.emplace_back();
    }
    batches_[id].time = time;
    batches_[id].first_seq = first_seq;
    batches_[id].cursor = 0;
    return id;
  }

  /// Min-heap order over batches: (time, first_seq). A timestamp maps to at
  /// most one open batch, so first_seq ties only occur between a drained
  /// batch's successor and unrelated timestamps — never ambiguously.
  bool before(std::uint32_t a, std::uint32_t b) const {
    const Batch& x = batches_[a];
    const Batch& y = batches_[b];
    if (x.time != y.time) {
      return x.time < y.time;
    }
    return x.first_seq < y.first_seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void pop_root() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t best = i;
      if (l < n && before(heap_[l], heap_[best])) {
        best = l;
      }
      if (r < n && before(heap_[r], heap_[best])) {
        best = r;
      }
      if (best == i) {
        break;
      }
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Batch> batches_;          // indexed by batch id
  std::vector<std::uint32_t> free_;     // retired batch ids for reuse
  std::vector<std::uint32_t> heap_;     // batch ids, min-heap by before()
  std::unordered_map<sim::Nanos, std::uint32_t> open_;  // time -> open batch
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fleet
