#include "fleet/chaos.h"

#include <algorithm>
#include <stdexcept>

#include "fleet/scenario.h"
#include "sim/rng.h"

namespace fleet {

namespace {

void validate_racks(const ClusterTopology& topo, int initial_hosts) {
  for (const ClusterTopology::Rack& rack : topo.racks) {
    if (rack.name.empty()) {
      throw std::invalid_argument("ClusterTopology: rack with an empty name");
    }
    if (rack.hosts.empty()) {
      throw std::invalid_argument("ClusterTopology: rack '" + rack.name +
                                  "' has no hosts");
    }
    for (const int h : rack.hosts) {
      if (h < 0 || h >= initial_hosts) {
        throw std::invalid_argument(
            "ClusterTopology: rack '" + rack.name + "' references host " +
            std::to_string(h) + " outside the initial topology of " +
            std::to_string(initial_hosts) + " hosts");
      }
    }
  }
}

}  // namespace

std::vector<ResolvedFault> resolve_faults(const Scenario& s,
                                          int initial_hosts) {
  const FaultSpec& spec = s.faults;
  std::vector<ResolvedFault> out;
  if (!spec.enabled()) {
    return out;
  }
  validate_racks(s.cluster, initial_hosts);
  if (spec.random_crashes < 0 || spec.random_partitions < 0) {
    throw std::invalid_argument(
        "FaultSpec: random fault counts must be non-negative");
  }

  const auto resolve_one = [&](const Fault& f) {
    if (f.time < 0) {
      throw std::invalid_argument("FaultSpec: fault time must be non-negative");
    }
    if (f.restart_delay < 0 || f.restart_jitter < 0) {
      throw std::invalid_argument(
          "FaultSpec: restart delay and jitter must be non-negative");
    }
    ResolvedFault r;
    r.kind = f.kind;
    r.time = f.time;
    r.restart_delay = f.restart_delay;
    r.restart_jitter = f.restart_jitter;
    if (f.kind == Fault::Kind::kPartition) {
      if (f.duration <= 0) {
        throw std::invalid_argument(
            "FaultSpec: partition duration must be positive");
      }
      r.duration = f.duration;
    }
    if (f.kind == Fault::Kind::kCellOutage) {
      // The whole failure domain goes dark at once: every host of the
      // initial topology. Host/rack targeting is ignored by design —
      // the cell IS the target.
      r.hosts.resize(static_cast<std::size_t>(initial_hosts));
      for (int h = 0; h < initial_hosts; ++h) {
        r.hosts[static_cast<std::size_t>(h)] = h;
      }
      out.push_back(std::move(r));
      return;
    }
    if (!f.rack.empty()) {
      const ClusterTopology::Rack* rack = nullptr;
      for (const ClusterTopology::Rack& candidate : s.cluster.racks) {
        if (candidate.name == f.rack) {
          rack = &candidate;
          break;
        }
      }
      if (rack == nullptr) {
        throw std::invalid_argument("FaultSpec: unknown rack '" + f.rack +
                                    "'");
      }
      r.rack = f.rack;
      r.hosts = rack->hosts;
    } else {
      if (f.host < 0 || f.host >= initial_hosts) {
        throw std::invalid_argument(
            "FaultSpec: fault targets host " + std::to_string(f.host) +
            " outside the initial topology of " +
            std::to_string(initial_hosts) + " hosts");
      }
      r.hosts = {f.host};
    }
    out.push_back(std::move(r));
  };

  for (const Fault& f : spec.timed) {
    resolve_one(f);
  }
  if (spec.random_crashes > 0 || spec.random_partitions > 0) {
    if (spec.random_horizon <= 0) {
      throw std::invalid_argument(
          "FaultSpec: random faults need a positive random_horizon");
    }
    // One stream for the whole random schedule, derived from the scenario
    // seed: same seed, same chaos.
    sim::Rng rng(s.seed ^ 0xFA01'7C4A'0500'0001ull);
    const auto draw = [&](Fault::Kind kind) {
      Fault f;
      f.kind = kind;
      f.time = static_cast<sim::Nanos>(
          rng.next_double() * static_cast<double>(spec.random_horizon));
      f.host = std::min(initial_hosts - 1,
                        static_cast<int>(rng.next_double() *
                                         static_cast<double>(initial_hosts)));
      f.duration = spec.random_partition_duration;
      f.restart_delay = spec.random_restart_delay;
      f.restart_jitter = spec.random_restart_jitter;
      resolve_one(f);
    };
    for (int i = 0; i < spec.random_crashes; ++i) {
      draw(Fault::Kind::kCrash);
    }
    for (int i = 0; i < spec.random_partitions; ++i) {
      draw(Fault::Kind::kPartition);
    }
  }

  // Injection order = time order, stable so same-instant faults keep their
  // authoring order. Ids follow, so the event stream pops faults in id
  // order and FleetReport::recovery[id] is fault id's verdict.
  std::stable_sort(out.begin(), out.end(),
                   [](const ResolvedFault& a, const ResolvedFault& b) {
                     return a.time < b.time;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = static_cast<int>(i);
  }
  return out;
}

void validate_host_events(const Scenario& s, int initial_hosts) {
  // Indices at or above this can never name a host in this scenario: the
  // initial topology plus every explicit add, with any autoscale headroom
  // making the index space unbounded (scale-out always appends).
  int adds = 0;
  for (const HostEvent& he : s.host_events) {
    adds += he.kind == HostEvent::Kind::kAdd ? 1 : 0;
  }
  const bool can_grow =
      s.autoscale.enabled && s.autoscale.max_hosts > initial_hosts;
  for (const HostEvent& he : s.host_events) {
    if (he.time < 0) {
      throw std::invalid_argument(
          "HostEvent: event time must be non-negative");
    }
    if (he.kind != HostEvent::Kind::kDrain) {
      continue;
    }
    if (he.host < -1) {
      throw std::invalid_argument(
          "HostEvent: drain host must be a host index or -1 (engine picks)");
    }
    if (!can_grow && he.host >= initial_hosts + adds) {
      throw std::invalid_argument(
          "HostEvent: drain targets host " + std::to_string(he.host) +
          " but at most " + std::to_string(initial_hosts + adds) +
          " hosts can ever exist in this scenario");
    }
  }
}

std::vector<std::vector<PartitionWindow>> build_partition_windows(
    const std::vector<ResolvedFault>& faults, int initial_hosts) {
  std::vector<std::vector<PartitionWindow>> windows;
  bool any = false;
  for (const ResolvedFault& f : faults) {
    any = any || f.kind == Fault::Kind::kPartition;
  }
  if (!any) {
    return windows;  // empty: fault-free NIC paths stay zero-cost
  }
  windows.resize(static_cast<std::size_t>(initial_hosts));
  for (const ResolvedFault& f : faults) {
    if (f.kind != Fault::Kind::kPartition) {
      continue;
    }
    for (const int h : f.hosts) {
      windows[static_cast<std::size_t>(h)].push_back(
          PartitionWindow{f.time, f.time + f.duration});
    }
  }
  for (auto& w : windows) {
    std::sort(w.begin(), w.end(),
              [](const PartitionWindow& a, const PartitionWindow& b) {
                return a.start < b.start;
              });
    // Coalesce overlaps so stalled_completion walks disjoint windows.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (kept > 0 && w[i].start <= w[kept - 1].end) {
        w[kept - 1].end = std::max(w[kept - 1].end, w[i].end);
      } else {
        w[kept++] = w[i];
      }
    }
    w.resize(kept);
  }
  return windows;
}

sim::Nanos stalled_completion(const std::vector<PartitionWindow>& windows,
                              sim::Nanos start, sim::Nanos work) {
  sim::Nanos at = start;
  sim::Nanos left = work;
  for (const PartitionWindow& w : windows) {
    if (w.end <= at) {
      continue;  // already past this window
    }
    const sim::Nanos gap = w.start > at ? w.start - at : 0;
    if (gap >= left) {
      break;  // finishes before the next stall begins
    }
    left -= gap;
    at = w.end;  // frozen for the rest of the window
  }
  return at + left;
}

}  // namespace fleet
