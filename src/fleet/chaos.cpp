#include "fleet/chaos.h"

#include <algorithm>
#include <stdexcept>

#include "fleet/scenario.h"
#include "sim/rng.h"

namespace fleet {

namespace {

void validate_racks(const ClusterTopology& topo, int initial_hosts) {
  for (const ClusterTopology::Rack& rack : topo.racks) {
    if (rack.name.empty()) {
      throw std::invalid_argument("ClusterTopology: rack with an empty name");
    }
    if (rack.hosts.empty()) {
      throw std::invalid_argument("ClusterTopology: rack '" + rack.name +
                                  "' has no hosts");
    }
    for (const int h : rack.hosts) {
      if (h < 0 || h >= initial_hosts) {
        throw std::invalid_argument(
            "ClusterTopology: rack '" + rack.name + "' references host " +
            std::to_string(h) + " outside the initial topology of " +
            std::to_string(initial_hosts) + " hosts");
      }
    }
  }
}

}  // namespace

std::vector<ResolvedFault> resolve_faults(const Scenario& s,
                                          int initial_hosts) {
  const FaultSpec& spec = s.faults;
  std::vector<ResolvedFault> out;
  if (!spec.enabled()) {
    return out;
  }
  validate_racks(s.cluster, initial_hosts);
  if (spec.random_crashes < 0 || spec.random_partitions < 0 ||
      spec.random_disk_degrades < 0 || spec.random_mem_pressures < 0 ||
      spec.random_partial_partitions < 0 || spec.random_mixed < 0) {
    throw std::invalid_argument(
        "FaultSpec: random fault counts must be non-negative");
  }

  const auto resolve_one = [&](const Fault& f) {
    if (f.time < 0) {
      throw std::invalid_argument("FaultSpec: fault time must be non-negative");
    }
    if (f.restart_delay < 0 || f.restart_jitter < 0) {
      throw std::invalid_argument(
          "FaultSpec: restart delay and jitter must be non-negative");
    }
    ResolvedFault r;
    r.kind = f.kind;
    r.time = f.time;
    r.restart_delay = f.restart_delay;
    r.restart_jitter = f.restart_jitter;
    if (f.kind == Fault::Kind::kPartition || is_degrade_kind(f.kind)) {
      if (f.duration <= 0) {
        throw std::invalid_argument(
            f.kind == Fault::Kind::kPartition
                ? "FaultSpec: partition duration must be positive"
                : "FaultSpec: degrade-family fault duration must be positive");
      }
      r.duration = f.duration;
    }
    if (f.kind == Fault::Kind::kDiskDegrade) {
      if (!(f.degrade >= 1.0)) {
        throw std::invalid_argument(
            "FaultSpec: disk degrade multiplier must be >= 1 (got " +
            std::to_string(f.degrade) + ")");
      }
      r.degrade = f.degrade;
    }
    if (f.kind == Fault::Kind::kPartialPartition) {
      if (f.peer < 0 || f.peer >= initial_hosts) {
        throw std::invalid_argument(
            "FaultSpec: partial partition peer " + std::to_string(f.peer) +
            " outside the initial topology of " +
            std::to_string(initial_hosts) + " hosts");
      }
      r.peer = f.peer;
    }
    if (f.kind == Fault::Kind::kCellOutage) {
      // The whole failure domain goes dark at once: every host of the
      // initial topology. Host/rack targeting is ignored by design —
      // the cell IS the target.
      r.hosts.resize(static_cast<std::size_t>(initial_hosts));
      for (int h = 0; h < initial_hosts; ++h) {
        r.hosts[static_cast<std::size_t>(h)] = h;
      }
      out.push_back(std::move(r));
      return;
    }
    if (!f.rack.empty()) {
      const ClusterTopology::Rack* rack = nullptr;
      for (const ClusterTopology::Rack& candidate : s.cluster.racks) {
        if (candidate.name == f.rack) {
          rack = &candidate;
          break;
        }
      }
      if (rack == nullptr) {
        throw std::invalid_argument("FaultSpec: unknown rack '" + f.rack +
                                    "'");
      }
      r.rack = f.rack;
      r.hosts = rack->hosts;
    } else {
      if (f.host < 0 || f.host >= initial_hosts) {
        throw std::invalid_argument(
            "FaultSpec: fault targets host " + std::to_string(f.host) +
            " outside the initial topology of " +
            std::to_string(initial_hosts) + " hosts");
      }
      r.hosts = {f.host};
    }
    if (f.kind == Fault::Kind::kPartialPartition) {
      for (const int h : r.hosts) {
        if (h == r.peer) {
          throw std::invalid_argument(
              "FaultSpec: partial partition pairs host " + std::to_string(h) +
              " with itself");
        }
      }
    }
    out.push_back(std::move(r));
  };

  for (const Fault& f : spec.timed) {
    resolve_one(f);
  }
  const bool any_random =
      spec.random_crashes > 0 || spec.random_partitions > 0 ||
      spec.random_disk_degrades > 0 || spec.random_mem_pressures > 0 ||
      spec.random_partial_partitions > 0 || spec.random_mixed > 0;
  if (any_random) {
    if (spec.random_horizon <= 0) {
      throw std::invalid_argument(
          "FaultSpec: random faults need a positive random_horizon");
    }
    const double weights[] = {
        spec.weight_crash, spec.weight_partition, spec.weight_disk_degrade,
        spec.weight_mem_pressure, spec.weight_partial_partition};
    const Fault::Kind weighted_kinds[] = {
        Fault::Kind::kCrash, Fault::Kind::kPartition,
        Fault::Kind::kDiskDegrade, Fault::Kind::kMemPressure,
        Fault::Kind::kPartialPartition};
    double weight_total = 0.0;
    for (const double w : weights) {
      if (w < 0.0) {
        throw std::invalid_argument(
            "FaultSpec: random fault kind weights must be non-negative");
      }
      weight_total += w;
    }
    if (spec.random_mixed > 0 && weight_total <= 0.0) {
      throw std::invalid_argument(
          "FaultSpec: random_mixed needs at least one positive kind weight");
    }
    if ((spec.random_partial_partitions > 0 ||
         (spec.random_mixed > 0 && spec.weight_partial_partition > 0.0)) &&
        initial_hosts < 2) {
      throw std::invalid_argument(
          "FaultSpec: random partial partitions need at least 2 hosts");
    }
    // One stream for the whole random schedule, derived from the scenario
    // seed: same seed, same chaos. The per-kind loops draw in a fixed kind
    // order (crash, partition, disk degrade, mem pressure, partial
    // partition, then the weighted pool), so a schedule that only enables
    // crashes and partitions replays the historical stream byte for byte.
    sim::Rng rng(s.seed ^ 0xFA01'7C4A'0500'0001ull);
    const auto draw = [&](Fault::Kind kind) {
      Fault f;
      f.kind = kind;
      f.time = static_cast<sim::Nanos>(
          rng.next_double() * static_cast<double>(spec.random_horizon));
      f.host = std::min(initial_hosts - 1,
                        static_cast<int>(rng.next_double() *
                                         static_cast<double>(initial_hosts)));
      if (kind == Fault::Kind::kPartialPartition) {
        // Draw the far end among the other hosts: an extra draw only this
        // kind consumes, so other kinds' streams are unaffected.
        const int other = std::min(
            initial_hosts - 2,
            static_cast<int>(rng.next_double() *
                             static_cast<double>(initial_hosts - 1)));
        f.peer = other >= f.host ? other + 1 : other;
      }
      f.duration = is_degrade_kind(kind) ? spec.random_degrade_duration
                                         : spec.random_partition_duration;
      f.degrade = spec.random_degrade_multiplier;
      f.restart_delay = spec.random_restart_delay;
      f.restart_jitter = spec.random_restart_jitter;
      resolve_one(f);
    };
    for (int i = 0; i < spec.random_crashes; ++i) {
      draw(Fault::Kind::kCrash);
    }
    for (int i = 0; i < spec.random_partitions; ++i) {
      draw(Fault::Kind::kPartition);
    }
    for (int i = 0; i < spec.random_disk_degrades; ++i) {
      draw(Fault::Kind::kDiskDegrade);
    }
    for (int i = 0; i < spec.random_mem_pressures; ++i) {
      draw(Fault::Kind::kMemPressure);
    }
    for (int i = 0; i < spec.random_partial_partitions; ++i) {
      draw(Fault::Kind::kPartialPartition);
    }
    for (int i = 0; i < spec.random_mixed; ++i) {
      // Kind first, then the regular shape draws for that kind.
      double pick = rng.next_double() * weight_total;
      Fault::Kind kind = Fault::Kind::kCrash;
      for (std::size_t k = 0; k < 5; ++k) {
        kind = weighted_kinds[k];
        if (pick < weights[k]) {
          break;
        }
        pick -= weights[k];
      }
      draw(kind);
    }
  }

  // Injection order = time order, stable so same-instant faults keep their
  // authoring order. Ids follow, so the event stream pops faults in id
  // order and FleetReport::recovery[id] is fault id's verdict.
  std::stable_sort(out.begin(), out.end(),
                   [](const ResolvedFault& a, const ResolvedFault& b) {
                     return a.time < b.time;
                   });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].id = static_cast<int>(i);
  }
  return out;
}

void validate_host_events(const Scenario& s, int initial_hosts) {
  // Indices at or above this can never name a host in this scenario: the
  // initial topology plus every explicit add, with any autoscale headroom
  // making the index space unbounded (scale-out always appends).
  int adds = 0;
  for (const HostEvent& he : s.host_events) {
    adds += he.kind == HostEvent::Kind::kAdd ? 1 : 0;
  }
  const bool can_grow =
      s.autoscale.enabled && s.autoscale.max_hosts > initial_hosts;
  for (const HostEvent& he : s.host_events) {
    if (he.time < 0) {
      throw std::invalid_argument(
          "HostEvent: event time must be non-negative");
    }
    if (he.kind != HostEvent::Kind::kDrain) {
      continue;
    }
    if (he.host < -1) {
      throw std::invalid_argument(
          "HostEvent: drain host must be a host index or -1 (engine picks)");
    }
    if (!can_grow && he.host >= initial_hosts + adds) {
      throw std::invalid_argument(
          "HostEvent: drain targets host " + std::to_string(he.host) +
          " but at most " + std::to_string(initial_hosts + adds) +
          " hosts can ever exist in this scenario");
    }
  }
}

std::vector<std::vector<PartitionWindow>> build_partition_windows(
    const std::vector<ResolvedFault>& faults, int initial_hosts) {
  std::vector<std::vector<PartitionWindow>> windows;
  bool any = false;
  for (const ResolvedFault& f : faults) {
    any = any || f.kind == Fault::Kind::kPartition;
  }
  if (!any) {
    return windows;  // empty: fault-free NIC paths stay zero-cost
  }
  windows.resize(static_cast<std::size_t>(initial_hosts));
  for (const ResolvedFault& f : faults) {
    if (f.kind != Fault::Kind::kPartition) {
      continue;
    }
    for (const int h : f.hosts) {
      windows[static_cast<std::size_t>(h)].push_back(
          PartitionWindow{f.time, f.time + f.duration});
    }
  }
  for (auto& w : windows) {
    std::sort(w.begin(), w.end(),
              [](const PartitionWindow& a, const PartitionWindow& b) {
                return a.start < b.start;
              });
    // Coalesce overlaps so stalled_completion walks disjoint windows.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (kept > 0 && w[i].start <= w[kept - 1].end) {
        w[kept - 1].end = std::max(w[kept - 1].end, w[i].end);
      } else {
        w[kept++] = w[i];
      }
    }
    w.resize(kept);
  }
  return windows;
}

sim::Nanos stalled_completion(const std::vector<PartitionWindow>& windows,
                              sim::Nanos start, sim::Nanos work) {
  sim::Nanos at = start;
  sim::Nanos left = work;
  for (const PartitionWindow& w : windows) {
    if (w.end <= at) {
      continue;  // already past this window
    }
    const sim::Nanos gap = w.start > at ? w.start - at : 0;
    if (gap >= left) {
      break;  // finishes before the next stall begins
    }
    left -= gap;
    at = w.end;  // frozen for the rest of the window
  }
  return at + left;
}

std::vector<std::vector<DegradeWindow>> build_degrade_windows(
    const std::vector<ResolvedFault>& faults, int initial_hosts) {
  std::vector<std::vector<DegradeWindow>> windows;
  bool any = false;
  for (const ResolvedFault& f : faults) {
    any = any || f.kind == Fault::Kind::kDiskDegrade;
  }
  if (!any) {
    return windows;  // empty: fault-free disk paths stay zero-cost
  }
  windows.resize(static_cast<std::size_t>(initial_hosts));
  for (const ResolvedFault& f : faults) {
    if (f.kind != Fault::Kind::kDiskDegrade) {
      continue;
    }
    for (const int h : f.hosts) {
      windows[static_cast<std::size_t>(h)].push_back(
          DegradeWindow{f.time, f.time + f.duration, f.degrade, f.id});
    }
  }
  for (auto& w : windows) {
    if (w.size() <= 1) {
      continue;
    }
    // Split overlapping windows into disjoint pieces: boundary sweep, the
    // worst multiplier wins inside each piece, earliest fault id keeps the
    // attribution so verdicts stay stable under reordering.
    std::vector<sim::Nanos> cuts;
    for (const DegradeWindow& d : w) {
      cuts.push_back(d.start);
      cuts.push_back(d.end);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    std::vector<DegradeWindow> flat;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      DegradeWindow piece{cuts[i], cuts[i + 1], 1.0, -1};
      for (const DegradeWindow& d : w) {
        if (d.start <= piece.start && d.end >= piece.end &&
            (piece.fault < 0 || d.multiplier > piece.multiplier)) {
          piece.multiplier = d.multiplier;
          piece.fault = d.fault;
        }
      }
      if (piece.fault < 0) {
        continue;  // gap between windows
      }
      if (!flat.empty() && flat.back().end == piece.start &&
          flat.back().multiplier == piece.multiplier &&
          flat.back().fault == piece.fault) {
        flat.back().end = piece.end;
      } else {
        flat.push_back(piece);
      }
    }
    w = std::move(flat);
  }
  return windows;
}

sim::Nanos degraded_completion(const std::vector<DegradeWindow>& windows,
                               sim::Nanos start, sim::Nanos work,
                               int* fault) {
  if (fault != nullptr) {
    *fault = -1;
  }
  sim::Nanos at = start;
  sim::Nanos left = work;
  for (const DegradeWindow& w : windows) {
    if (left <= 0) {
      break;
    }
    if (w.end <= at) {
      continue;  // already past this window
    }
    const sim::Nanos gap = w.start > at ? w.start - at : 0;
    if (gap >= left) {
      break;  // finishes before the next degraded stretch begins
    }
    left -= gap;
    at += gap;
    // Inside the window disk work progresses at 1/multiplier: the span
    // until w.end completes span/multiplier worth of work.
    const sim::Nanos span = w.end - at;
    const sim::Nanos can = static_cast<sim::Nanos>(
        static_cast<double>(span) / w.multiplier);
    if (fault != nullptr && *fault < 0 && w.multiplier > 1.0) {
      *fault = w.fault;
    }
    if (left <= can) {
      return at + static_cast<sim::Nanos>(static_cast<double>(left) *
                                          w.multiplier);
    }
    left -= can;
    at = w.end;
  }
  return at + left;
}

std::vector<std::vector<PairWindow>> build_pair_windows(
    const std::vector<ResolvedFault>& faults, int initial_hosts) {
  std::vector<std::vector<PairWindow>> windows;
  bool any = false;
  for (const ResolvedFault& f : faults) {
    any = any || f.kind == Fault::Kind::kPartialPartition;
  }
  if (!any) {
    return windows;  // empty: fault-free peer paths stay zero-cost
  }
  windows.resize(static_cast<std::size_t>(initial_hosts));
  for (const ResolvedFault& f : faults) {
    if (f.kind != Fault::Kind::kPartialPartition) {
      continue;
    }
    // Both directions: the cut is symmetric, so an op on either side
    // stalls when its drawn far end is across the cut.
    for (const int h : f.hosts) {
      windows[static_cast<std::size_t>(h)].push_back(
          PairWindow{f.time, f.time + f.duration, f.peer, f.id});
      windows[static_cast<std::size_t>(f.peer)].push_back(
          PairWindow{f.time, f.time + f.duration, h, f.id});
    }
  }
  for (auto& w : windows) {
    std::sort(w.begin(), w.end(), [](const PairWindow& a, const PairWindow& b) {
      return a.start != b.start ? a.start < b.start : a.peer < b.peer;
    });
  }
  return windows;
}

sim::Nanos pair_stalled_completion(const std::vector<PairWindow>& windows,
                                   int peer, sim::Nanos start,
                                   sim::Nanos work, int* fault) {
  if (fault != nullptr) {
    *fault = -1;
  }
  sim::Nanos at = start;
  sim::Nanos left = work;
  for (const PairWindow& w : windows) {
    if (w.peer != peer || w.end <= at) {
      continue;  // a different pair, or already past this window
    }
    const sim::Nanos gap = w.start > at ? w.start - at : 0;
    if (gap >= left) {
      break;  // finishes before the cut opens (windows sorted by start)
    }
    if (fault != nullptr && *fault < 0) {
      *fault = w.fault;
    }
    left -= gap;
    at = w.end;  // frozen while the pair is cut
  }
  return at + left;
}

}  // namespace fleet
