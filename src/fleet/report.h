// FleetReport: everything a scenario run observed, rendered deterministically.
//
// Per-platform boot and phase latency distributions reuse stats::SampleSet
// (the same machinery behind the paper's CDF figures); the text rendering
// reuses stats::Table so bench output stays uniform; boot CDFs can be CSV-
// exported through core::export like every figure. The same seed and
// scenario always produce a byte-identical to_text().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/figures.h"
#include "sim/time.h"
#include "stats/sample_set.h"

namespace fleet {

/// Lifecycle record of one tenant.
struct TenantOutcome {
  std::uint64_t id = 0;
  std::string platform;
  sim::Nanos arrival = 0;
  sim::Nanos boot_latency = 0;  // admission to serving (end-to-end cold start)
  sim::Nanos completion = 0;    // teardown finished
  int phases_run = 0;
  bool admitted = false;
  bool completed = false;
};

/// Per-platform aggregate over all tenants that ran on it.
struct PlatformFleetStats {
  std::string platform;
  int tenants = 0;
  stats::SampleSet boot_ms;
  stats::SampleSet phase_ms;
};

/// KSM density outcome (hypervisor-backed tenants only).
struct FleetKsmStats {
  bool enabled = false;
  std::uint64_t advised_pages = 0;
  std::uint64_t backing_pages = 0;
  double density_gain = 1.0;
  double shared_fraction = 0.0;
};

/// Fleet-wide host attack surface: one ftrace window spanning the whole
/// scenario, scored like the per-platform HAP study (Section 4).
struct FleetHapRollup {
  std::size_t distinct_functions = 0;
  std::uint64_t total_invocations = 0;
  double extended_hap = 0.0;
};

class FleetReport {
 public:
  std::string scenario;
  std::uint64_t seed = 0;

  std::vector<TenantOutcome> tenants;
  /// Keyed by platform name; std::map keeps rendering order deterministic.
  std::map<std::string, PlatformFleetStats> by_platform;

  sim::Nanos makespan = 0;   // first arrival to last teardown
  int admitted = 0;
  int rejected = 0;
  int completed = 0;
  int peak_active = 0;
  double peak_cpu_demand = 0.0;  // vCPUs demanded / host threads, at peak
  /// First tenant whose admission would have exceeded host RAM; -1 if the
  /// scenario never hit the density wall.
  std::int64_t first_oom_tenant = -1;
  std::uint64_t peak_resident_bytes = 0;

  FleetKsmStats ksm;
  FleetHapRollup hap;

  /// Host-model totals charged during the run.
  std::uint64_t page_cache_hits = 0;
  std::uint64_t page_cache_misses = 0;
  std::uint64_t nvme_bytes_read = 0;

  /// Simulator events the engine's loop processed for this run. Fed to the
  /// scaling bench's events/sec metric; deliberately not rendered by
  /// to_text(), whose output is a compatibility surface.
  std::uint64_t events_processed = 0;

  /// Per-platform latency table plus fleet summary. Byte-identical for
  /// identical (scenario, seed).
  std::string to_text() const;

  /// Boot CDFs in the figure-export shape (for core::export_cdfs).
  std::vector<core::CdfSeries> boot_cdfs() const;
};

}  // namespace fleet
