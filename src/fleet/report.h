// FleetReport: everything a scenario run observed, rendered deterministically.
//
// Per-platform boot and phase latency distributions reuse stats::SampleSet
// (the same machinery behind the paper's CDF figures); the text rendering
// reuses stats::Table so bench output stays uniform; boot CDFs can be CSV-
// exported through core::export like every figure. The same seed and
// scenario always produce a byte-identical to_text().
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/figures.h"
#include "fleet/program.h"
#include "platforms/platform.h"
#include "sim/time.h"
#include "stats/sample_set.h"

namespace fleet {

/// Lifecycle record of one tenant. Under churn, arrival/boot_latency/
/// completion/admitted/completed describe the tenant's LAST round (each
/// re-arrival resets them), while phases_run and rounds_completed
/// accumulate across rounds. Deliberately flat and string-free: a
/// million-tenant run keeps one of these per tenant, so the platform is
/// identified by id (FleetReport::by_platform still carries the names).
struct TenantOutcome {
  std::uint64_t id = 0;
  platforms::PlatformId platform_id = platforms::PlatformId::kNative;
  sim::Nanos arrival = 0;
  sim::Nanos boot_latency = 0;  // admission to serving (end-to-end cold start)
  sim::Nanos completion = 0;    // teardown finished
  int phases_run = 0;
  int rounds_completed = 0;  // teardowns reached (1 + churn rounds completed)
  /// Index into FleetReport::recovery of the verdict whose fault
  /// permanently stranded this tenant — it was crashed off its host and
  /// then rejected on re-arrival; -1 for everyone else. A federation
  /// router uses this to re-route cell-outage victims to another cell.
  /// (A verdict index, not a fault id: degrade-family faults interleave
  /// ids without pushing recovery verdicts.)
  std::int32_t lost_to_fault = -1;
  bool admitted = false;
  bool completed = false;
};

/// Per-platform aggregate over all tenants that ran on it. tenants counts
/// distinct tenants; under churn, boot_ms/phase_ms collect one sample per
/// boot/phase including every re-admission round.
struct PlatformFleetStats {
  std::string platform;
  int tenants = 0;
  stats::SampleSet boot_ms;
  stats::SampleSet phase_ms;
};

/// Per-op-class slice of one program's rollup: repeat-expanded syscall
/// invocations and the per-step service-latency distribution (think-time
/// gaps excluded, so the sample is the op itself).
struct ProgramOpClassStats {
  std::uint64_t ops = 0;
  stats::SampleSet op_ms;
};

/// Per-program aggregate over all tenants that interpreted it. tenants
/// counts distinct tenants (crash/churn re-runs never double-count), and
/// the by_class slices are indexed by fleet::OpClass.
struct ProgramFleetStats {
  std::string program;
  int tenants = 0;
  std::array<ProgramOpClassStats, kOpClassCount> by_class;
};

/// KSM density outcome (hypervisor-backed tenants only).
struct FleetKsmStats {
  bool enabled = false;
  std::uint64_t advised_pages = 0;
  std::uint64_t backing_pages = 0;
  /// Advised pages sharing backing with at least one other VM (absolute
  /// count; shared_fraction times advised_pages).
  std::uint64_t shared_pages = 0;
  double density_gain = 1.0;
  double shared_fraction = 0.0;
};

/// Fleet-wide host attack surface: one ftrace window spanning the whole
/// scenario, scored like the per-platform HAP study (Section 4). For
/// cluster runs the fleet totals sum every host kernel's window.
struct FleetHapRollup {
  std::size_t distinct_functions = 0;
  std::uint64_t total_invocations = 0;
  double extended_hap = 0.0;
};

/// Everything one host shard observed during a cluster run: admission
/// outcomes, peaks, its own KSM stable tree and host-kernel HAP window,
/// and its host-model totals. hosts.size() == 1 for single-host runs.
struct HostRollup {
  int host = 0;
  int admitted = 0;
  /// Full-candidate-walk failures attributed to this host — i.e. this was
  /// the *last* host tried when every live host refused the tenant.
  /// Rejections short-circuited by a tripped stop_at_first_oom latch never
  /// consult a host and count only in the fleet-level total, so under that
  /// latch FleetReport::rejected can exceed the sum over hosts.
  int rejected = 0;
  /// Spilled admissions this host absorbed: tenants admitted here after a
  /// higher-ranked host refused them.
  int spill_in = 0;
  /// Tenants this host (as the placement's first choice) refused that were
  /// then admitted elsewhere. Fleet-wide, sum(spill_out) == sum(spill_in).
  int spill_out = 0;
  /// True once the host was drained (autoscale scale-in or an explicit
  /// HostEvent): its tenants were re-placed and it stopped taking new ones.
  bool drained = false;
  /// True once the host crashed (chaos.h kHostCrash): its tenants died
  /// mid-phase and its page cache and KSM stable tree were lost.
  bool crashed = false;
  /// NIC-bound completions on this host stretched by a partition window.
  int nic_stalls = 0;
  int peak_active = 0;
  std::uint64_t peak_resident_bytes = 0;
  FleetKsmStats ksm;
  FleetHapRollup hap;
  std::uint64_t page_cache_hits = 0;
  std::uint64_t page_cache_misses = 0;
  std::uint64_t nvme_bytes_read = 0;
};

class FleetReport {
 public:
  std::string scenario;
  std::uint64_t seed = 0;
  /// Placement policy name for cluster runs; empty on single-host runs,
  /// which keeps their to_text() byte-identical to the pinned goldens.
  std::string placement;

  std::vector<TenantOutcome> tenants;
  /// Keyed by platform name; std::map keeps rendering order deterministic.
  std::map<std::string, PlatformFleetStats> by_platform;
  /// Keyed by program name; empty for all-statistical runs, which keeps
  /// their to_text() byte-identical to the pinned goldens.
  std::map<std::string, ProgramFleetStats> by_program;
  /// One rollup per host shard, in host index order.
  std::vector<HostRollup> hosts;

  bool is_cluster() const { return hosts.size() > 1; }

  sim::Nanos makespan = 0;   // first arrival to last teardown
  int admitted = 0;
  int rejected = 0;
  int completed = 0;
  /// Admissions that landed on a host other than the placement's first
  /// choice (retry-on-reject walked past at least one refusal).
  int spills = 0;
  int peak_active = 0;
  double peak_cpu_demand = 0.0;  // vCPUs demanded / host threads, at peak
  /// First tenant whose admission would have exceeded host RAM; -1 if the
  /// scenario never hit the density wall.
  std::int64_t first_oom_tenant = -1;
  std::uint64_t peak_resident_bytes = 0;

  FleetKsmStats ksm;
  FleetHapRollup hap;

  /// Host-model totals charged during the run.
  std::uint64_t page_cache_hits = 0;
  std::uint64_t page_cache_misses = 0;
  std::uint64_t nvme_bytes_read = 0;

  /// Simulator events the engine's loop processed for this run. Fed to the
  /// scaling bench's events/sec metric; deliberately not rendered by
  /// to_text(), whose output is a compatibility surface.
  std::uint64_t events_processed = 0;

  /// Re-arrivals scheduled by tenant churn loops (scenario.churn_rounds).
  int churn_rearrivals = 0;

  /// Tenants a host drain re-placed through placement + admission as
  /// churn-style re-arrivals.
  int drain_migrations = 0;

  /// One entry per mid-run topology change, in event order. Empty for
  /// fixed-topology runs, which keeps their to_text() byte-identical to
  /// the pinned goldens.
  struct AutoscaleAction {
    sim::Nanos time = 0;
    /// "scale-out" / "scale-in" (watermark autoscaler), "add" / "drain"
    /// (explicit HostEvent hooks).
    std::string action;
    int host = 0;        // host added or drained
    int live_hosts = 0;  // live hosts after the action
    /// Fleet resident fraction (resident / capacity over live hosts) that
    /// the action was evaluated against, before it took effect.
    double resident_fraction = 0.0;
  };
  std::vector<AutoscaleAction> autoscale_timeline;

  /// Outcome of one injected fault (chaos.h), indexed by fault id. Crash
  /// verdicts carry the recovery SLO numbers: how many tenants died, how
  /// many made it back through placement + admission, how many were
  /// permanently lost, and the time-to-re-place distribution (crash
  /// instant to the victim's re-boot completing on a survivor). Partition
  /// verdicts record the window for the timeline. Empty for fault-free
  /// runs, which keeps their to_text() byte-identical to the pinned
  /// goldens.
  struct RecoveryVerdict {
    int fault = 0;
    std::string kind;  // "crash" / "partition"
    std::string rack;  // correlated-fault label; empty for single-host
    sim::Nanos time = 0;
    sim::Nanos duration = 0;    // partitions only
    std::vector<int> hosts;     // live hosts the fault actually hit
    int victims = 0;            // tenants killed mid-flight
    int readmitted = 0;         // victims re-admitted on a survivor
    int lost = 0;               // victims rejected on re-arrival
    /// Victims the crash caught *mid-boot*: their partial boot work is
    /// lost wholesale and the re-arrival starts a fresh boot from zero
    /// (a subset of `victims`). Rendered only when non-zero, keeping
    /// crash goldens without in-flight boots byte-identical.
    int boots_lost = 0;
    stats::SampleSet replace_ms;  // crash instant -> re-boot served

    /// Recovery-SLO verdict against a declared p99 time-to-re-place
    /// budget: pass iff no victim was permanently lost and the p99 (over
    /// victims that re-booted; vacuously true with none) fits the budget.
    /// Partition verdicts pass trivially — nobody dies in a partition.
    bool slo_pass(sim::Nanos budget) const {
      if (kind == "partition") {
        return true;
      }
      return lost == 0 &&
             (replace_ms.empty() ||
              replace_ms.percentile(99.0) <=
                  static_cast<double>(budget) / 1e6);
    }
  };
  std::vector<RecoveryVerdict> recovery;

  /// Fleet totals across every crash fault.
  int crash_victims = 0;
  int crash_readmitted = 0;
  int crash_lost = 0;
  /// Crash victims caught mid-boot (partial boot lost), fleet-wide.
  int boots_lost = 0;
  /// Time-to-re-place over every crash victim that booted again.
  stats::SampleSet replace_ms;
  /// NIC-bound completions stretched by a partition, fleet-wide.
  int nic_stalls = 0;

  /// Outcome of one degrade-family fault (chaos.h kDiskDegrade /
  /// kMemPressure / kPartialPartition): the graceful-degradation ledger.
  /// Empty for runs without degrade faults, which keeps every pinned
  /// golden byte-identical.
  struct DegradeVerdict {
    int fault = 0;
    std::string kind;  // "disk-degrade" / "mem-pressure" / "partial-partition"
    std::string rack;  // correlated-fault label; empty for single-host
    sim::Nanos time = 0;
    sim::Nanos duration = 0;
    std::vector<int> hosts;  // live hosts the fault actually hit
    int peer = -1;           // partial-partition far end
    double multiplier = 0.0; // disk-degrade NVMe throughput divisor
    /// Memory pressure: bytes the KSM unmerge storm re-expanded at the
    /// fault instant (resident jumps by exactly this much).
    std::uint64_t resident_spike_bytes = 0;
    /// Distinct tenants that felt this fault: an op stretched or stalled
    /// by its window (disk degrade / partial partition), or resident on an
    /// unmerged host (mem pressure).
    int affected = 0;
    int retries = 0;   // op re-issues this fault's windows caused
    int give_ups = 0;  // ops that still blew the SLO with retries exhausted
    /// Added latency per affected op issue: stretched/stalled completion
    /// minus the undisturbed completion, in ms.
    stats::SampleSet added_ms;
  };
  std::vector<DegradeVerdict> degraded;

  /// Fleet totals across every program op issue, counted only while
  /// degraded accounting is active (degrade faults present or retry knobs
  /// set): op re-issues after an SLO timeout, and ops that completed past
  /// the SLO with no retries left.
  int op_retries = 0;
  int op_give_ups = 0;

  /// Fraction of crash victims that made it back through admission.
  double readmission_fraction() const {
    return crash_victims == 0
               ? 0.0
               : static_cast<double>(crash_readmitted) /
                     static_cast<double>(crash_victims);
  }

  /// Live (non-drained) hosts when the run ended.
  int final_host_count = 0;

  /// Distinct tenants whose final outcome was an admission. Unlike
  /// `admitted` (which counts admissions, including churn and
  /// drain-migration re-admissions), this never counts a tenant twice.
  int tenants_admitted() const {
    int n = 0;
    for (const TenantOutcome& t : tenants) {
      n += t.admitted ? 1 : 0;
    }
    return n;
  }

  /// Cold-start SLO budget copied from Scenario::boot_slo_ms; zero means
  /// no budget was set and no verdict line is rendered (keeping pinned
  /// goldens byte-identical).
  sim::Nanos boot_slo_ms = 0;

  /// Recovery budget copied from TrafficSpec::replace_slo_ms; zero means
  /// no budget was set and no pass/fail is rendered (keeping budget-less
  /// chaos output byte-identical).
  sim::Nanos replace_slo_ms = 0;

  /// Fleet recovery-SLO verdict: every fault's verdict passes the declared
  /// budget. True (vacuously) when no budget is set or no fault fired, so
  /// callers can gate on it unconditionally.
  bool recovery_slo_pass() const {
    if (replace_slo_ms <= 0) {
      return true;
    }
    for (const RecoveryVerdict& v : recovery) {
      if (!v.slo_pass(replace_slo_ms)) {
        return false;
      }
    }
    return true;
  }

  /// Per-op latency budget copied from TrafficSpec::op_slo_ms; zero means
  /// no budget was set and no PASS/FAIL is rendered (keeping budget-less
  /// program output byte-identical).
  sim::Nanos op_slo_ms = 0;

  /// Program op-latency SLO verdict: every rendered op class's p99 fits
  /// the declared budget. True (vacuously) when no budget is set or no
  /// program ran, so callers can gate on it unconditionally.
  bool program_slo_pass() const {
    if (op_slo_ms <= 0) {
      return true;
    }
    const double budget_ms = static_cast<double>(op_slo_ms) / 1e6;
    for (const auto& [name, prog] : by_program) {
      (void)name;
      for (const ProgramOpClassStats& cls : prog.by_class) {
        if (!cls.op_ms.empty() && cls.op_ms.percentile(99.0) > budget_ms) {
          return false;
        }
      }
    }
    return true;
  }

  /// Fraction of boots within the SLO budget, over every boot the run
  /// observed (all platforms, all hosts, every churn round). Only
  /// meaningful when boot_slo_ms > 0 and at least one boot completed.
  double boot_slo_fraction() const;

  /// Every boot latency across all platforms and hosts — the cluster-wide
  /// boot CDF. Filled on single-host runs too, but only rendered (and only
  /// exported via cluster_boot_cdf()) for cluster runs.
  stats::SampleSet cluster_boot_ms;

  /// The cluster-wide boot CDF in the figure-export shape.
  core::CdfSeries cluster_boot_cdf() const;

  /// Per-platform latency table plus fleet summary. Byte-identical for
  /// identical (scenario, seed).
  std::string to_text() const;

  /// Boot CDFs in the figure-export shape (for core::export_cdfs).
  std::vector<core::CdfSeries> boot_cdfs() const;
};

}  // namespace fleet
