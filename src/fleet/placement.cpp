#include "fleet/placement.h"

#include <algorithm>
#include <stdexcept>

namespace fleet {

namespace {

std::uint64_t free_bytes(const HostView& h) {
  return h.ram_cap_bytes > h.resident_bytes
             ? h.ram_cap_bytes - h.resident_bytes
             : 0;
}

/// Sort positions 0..n-1 by `less` (which must totally order ties, e.g. by
/// index) and append the corresponding HostView::index values to `ranked`.
/// Sorts inside `ranked` itself — no scratch allocation on the per-arrival
/// hot path (the engine recycles the ranked buffer).
template <typename Less>
void rank_by(const std::vector<HostView>& hosts, std::vector<int>& ranked,
             Less less) {
  const auto first = static_cast<std::ptrdiff_t>(ranked.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    ranked.push_back(static_cast<int>(i));
  }
  std::sort(ranked.begin() + first, ranked.end(), [&](int a, int b) {
    return less(hosts[static_cast<std::size_t>(a)],
                hosts[static_cast<std::size_t>(b)]);
  });
  for (auto it = ranked.begin() + first; it != ranked.end(); ++it) {
    *it = hosts[static_cast<std::size_t>(*it)].index;
  }
}

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  void reset() override { cursor_ = 0; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    // One cursor step per arrival; the retry walk continues around the
    // cycle from wherever the cursor landed.
    const std::size_t n = hosts.size();
    const std::size_t start = static_cast<std::size_t>(cursor_++ % n);
    for (std::size_t k = 0; k < n; ++k) {
      ranked.push_back(hosts[(start + k) % n].index);
    }
  }

 private:
  std::uint64_t cursor_ = 0;
};

class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "least-loaded"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      const std::uint64_t fa = free_bytes(a);
      const std::uint64_t fb = free_bytes(b);
      if (fa != fb) {
        return fa > fb;
      }
      return a.index < b.index;
    });
  }
};

class KsmAffinityPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "ksm-affinity"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    // Lexicographic (co-tenants, free RAM): with no co-tenant anywhere this
    // degrades to least-loaded, which also spreads the first tenant of each
    // platform onto the emptiest host before piles start forming.
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      if (a.same_platform_tenants != b.same_platform_tenants) {
        return a.same_platform_tenants > b.same_platform_tenants;
      }
      const std::uint64_t fa = free_bytes(a);
      const std::uint64_t fb = free_bytes(b);
      if (fa != fb) {
        return fa > fb;
      }
      return a.index < b.index;
    });
  }
};

/// Weighted pressure score: RAM dominates (it is the hard admission
/// limit), CPU demand stretches every in-flight duration, the NIC only
/// congests network phases.
constexpr double kRamWeight = 0.5;
constexpr double kCpuWeight = 0.35;
constexpr double kNicWeight = 0.15;

double pressure_score(const HostView& h) {
  const double ram_used =
      h.ram_cap_bytes == 0
          ? 1.0
          : 1.0 - static_cast<double>(free_bytes(h)) /
                      static_cast<double>(h.ram_cap_bytes);
  const double threads = static_cast<double>(std::max(1, h.pressure.cpu_threads));
  // CPU and NIC saturate at 1.0: past saturation everything on the host is
  // already stretched, and RAM — the hard admission limit — must keep
  // dominating the comparison.
  const double cpu = std::min(1.0, h.pressure.cpu_demand / threads);
  const double nic =
      std::min(1.0, static_cast<double>(h.pressure.net_active) / threads);
  return kRamWeight * ram_used + kCpuWeight * cpu + kNicWeight * nic;
}

class LeastPressurePlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "least-pressure"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      const double sa = pressure_score(a);
      const double sb = pressure_score(b);
      if (sa != sb) {
        return sa < sb;
      }
      return a.index < b.index;
    });
  }
};

/// Fraction of a host's RAM that pack-then-spill fills before opening the
/// next host. Below 1.0 so the pile leaves headroom for admission-time
/// variance; the retry walk absorbs overshoot as a spill, not an OOM.
constexpr double kPackWatermark = 0.9;

bool above_watermark(const HostView& h) {
  return static_cast<double>(h.resident_bytes) >=
         kPackWatermark * static_cast<double>(h.ram_cap_bytes);
}

class PackThenSpillPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "pack-then-spill"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    // Hosts below the watermark in index order (so the lowest-index open
    // host soaks up every arrival until it crosses the line), then the
    // full hosts in index order as spill targets of last resort.
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      const bool fa = above_watermark(a);
      const bool fb = above_watermark(b);
      if (fa != fb) {
        return !fa;
      }
      return a.index < b.index;
    });
  }
};

}  // namespace

int PlacementPolicy::place(const PlacementRequest& req,
                           const std::vector<HostView>& hosts) {
  std::vector<int> ranked;
  rank_hosts(req, hosts, ranked);
  if (ranked.empty()) {
    throw std::logic_error("PlacementPolicy::rank_hosts ranked no hosts");
  }
  return ranked.front();
}

std::string placement_kind_name(PlacementKind k) {
  switch (k) {
    case PlacementKind::kRoundRobin:
      return "round-robin";
    case PlacementKind::kLeastLoaded:
      return "least-loaded";
    case PlacementKind::kKsmAffinity:
      return "ksm-affinity";
    case PlacementKind::kLeastPressure:
      return "least-pressure";
    case PlacementKind::kPackThenSpill:
      return "pack-then-spill";
  }
  return "unknown";
}

std::vector<PlacementKind> all_placement_kinds() {
  return {PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded,
          PlacementKind::kKsmAffinity, PlacementKind::kLeastPressure,
          PlacementKind::kPackThenSpill};
}

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementKind::kLeastLoaded:
      return std::make_unique<LeastLoadedPlacement>();
    case PlacementKind::kKsmAffinity:
      return std::make_unique<KsmAffinityPlacement>();
    case PlacementKind::kLeastPressure:
      return std::make_unique<LeastPressurePlacement>();
    case PlacementKind::kPackThenSpill:
      return std::make_unique<PackThenSpillPlacement>();
  }
  throw std::invalid_argument("make_placement: unknown PlacementKind");
}

}  // namespace fleet
