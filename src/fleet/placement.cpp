#include "fleet/placement.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "fleet/indexed_heap.h"

namespace fleet {

namespace {

// --- Ranking keys, shared by the sort path (rank_hosts over a HostView
// snapshot) and the heap path (incremental walk over HostState) so the two
// orderings cannot drift apart. ------------------------------------------

std::uint64_t free_bytes_of(std::uint64_t cap, std::uint64_t resident) {
  return cap > resident ? cap - resident : 0;
}

std::uint64_t free_bytes(const HostView& h) {
  return free_bytes_of(h.ram_cap_bytes, h.resident_bytes);
}

std::uint64_t free_bytes(const HostState& h) {
  return free_bytes_of(h.ram_cap_bytes, h.resident_bytes);
}

/// Weighted pressure score: RAM dominates (it is the hard admission
/// limit), CPU demand stretches every in-flight duration, the NIC only
/// congests network phases.
constexpr double kRamWeight = 0.5;
constexpr double kCpuWeight = 0.35;
constexpr double kNicWeight = 0.15;

double pressure_score_of(std::uint64_t cap, std::uint64_t resident,
                         const HostPressure& p) {
  const double ram_used =
      cap == 0 ? 1.0
               : 1.0 - static_cast<double>(free_bytes_of(cap, resident)) /
                           static_cast<double>(cap);
  const double threads = static_cast<double>(std::max(1, p.cpu_threads));
  // CPU and NIC saturate at 1.0: past saturation everything on the host is
  // already stretched, and RAM — the hard admission limit — must keep
  // dominating the comparison.
  const double cpu = std::min(1.0, p.cpu_demand / threads);
  const double nic = std::min(1.0, static_cast<double>(p.net_active) / threads);
  return kRamWeight * ram_used + kCpuWeight * cpu + kNicWeight * nic;
}

double pressure_score(const HostView& h) {
  return pressure_score_of(h.ram_cap_bytes, h.resident_bytes, h.pressure);
}

double pressure_score(const HostState& h) {
  return pressure_score_of(h.ram_cap_bytes, h.resident_bytes, h.pressure);
}

/// Fraction of a host's RAM that pack-then-spill fills before opening the
/// next host. Below 1.0 so the pile leaves headroom for admission-time
/// variance; the retry walk absorbs overshoot as a spill, not an OOM.
constexpr double kPackWatermark = 0.9;

bool above_watermark_of(std::uint64_t cap, std::uint64_t resident) {
  return static_cast<double>(resident) >=
         kPackWatermark * static_cast<double>(cap);
}

bool above_watermark(const HostView& h) {
  return above_watermark_of(h.ram_cap_bytes, h.resident_bytes);
}

bool above_watermark(const HostState& h) {
  return above_watermark_of(h.ram_cap_bytes, h.resident_bytes);
}

/// Sort positions 0..n-1 by `less` (which must totally order ties, e.g. by
/// index) and append the corresponding HostView::index values to `ranked`.
/// Sorts inside `ranked` itself — no scratch allocation on the per-arrival
/// hot path (the engine recycles the ranked buffer).
template <typename Less>
void rank_by(const std::vector<HostView>& hosts, std::vector<int>& ranked,
             Less less) {
  const auto first = static_cast<std::ptrdiff_t>(ranked.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    ranked.push_back(static_cast<int>(i));
  }
  std::sort(ranked.begin() + first, ranked.end(), [&](int a, int b) {
    return less(hosts[static_cast<std::size_t>(a)],
                hosts[static_cast<std::size_t>(b)]);
  });
  for (auto it = ranked.begin() + first; it != ranked.end(); ++it) {
    *it = hosts[static_cast<std::size_t>(*it)].index;
  }
}

// --- Incremental machinery -----------------------------------------------
// The state bookkeeping and heap walks live in placement.h as the shared
// IncrementalRanking / HeapWalkRanking templates (fleet::RoutingPolicy
// reuses them for cell ranking); these aliases bind them to the host
// domain.

using IncrementalPolicy = IncrementalRanking<PlacementPolicy>;

template <typename Cmp>
using HeapWalkPolicy = HeapWalkRanking<PlacementPolicy, Cmp>;

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  bool incremental() const override { return true; }
  void reset() override {
    cursor_ = 0;
    live_hosts_.clear();
    walk_start_ = 0;
    walk_emitted_ = 0;
  }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    // One cursor step per arrival; the retry walk continues around the
    // cycle from wherever the cursor landed.
    const std::size_t n = hosts.size();
    const std::size_t start = static_cast<std::size_t>(cursor_++ % n);
    for (std::size_t k = 0; k < n; ++k) {
      ranked.push_back(hosts[(start + k) % n].index);
    }
  }

  void target_updated(const HostState& s) override {
    const auto it =
        std::lower_bound(live_hosts_.begin(), live_hosts_.end(), s.index);
    if (it == live_hosts_.end() || *it != s.index) {
      live_hosts_.insert(it, s.index);
    }
  }
  void target_removed(int host) override {
    const auto it =
        std::lower_bound(live_hosts_.begin(), live_hosts_.end(), host);
    if (it != live_hosts_.end() && *it == host) {
      live_hosts_.erase(it);
    }
  }
  void walk_begin(const PlacementRequest&) override {
    walk_start_ = static_cast<std::size_t>(cursor_++ % live_hosts_.size());
    walk_emitted_ = 0;
  }
  int walk_next() override {
    if (walk_emitted_ >= live_hosts_.size()) {
      return -1;
    }
    return live_hosts_[(walk_start_ + walk_emitted_++) % live_hosts_.size()];
  }

 private:
  std::uint64_t cursor_ = 0;
  std::vector<int> live_hosts_;  // sorted, mirrors the snapshot's order
  std::size_t walk_start_ = 0;
  std::size_t walk_emitted_ = 0;
};

struct LeastLoadedCmp {
  const std::vector<HostState>* states;
  bool operator()(int a, int b) const {
    const std::uint64_t fa = free_bytes((*states)[static_cast<std::size_t>(a)]);
    const std::uint64_t fb = free_bytes((*states)[static_cast<std::size_t>(b)]);
    if (fa != fb) {
      return fa > fb;
    }
    return a < b;
  }
};

class LeastLoadedPlacement final : public HeapWalkPolicy<LeastLoadedCmp> {
 public:
  LeastLoadedPlacement() : HeapWalkPolicy<LeastLoadedCmp>(LeastLoadedCmp{&states_}) {}
  std::string name() const override { return "least-loaded"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      const std::uint64_t fa = free_bytes(a);
      const std::uint64_t fb = free_bytes(b);
      if (fa != fb) {
        return fa > fb;
      }
      return a.index < b.index;
    });
  }
};

class KsmAffinityPlacement;

struct AffinityCmp {
  const KsmAffinityPlacement* self;
  platforms::PlatformId platform;
  bool operator()(int a, int b) const;
};

class KsmAffinityPlacement final : public IncrementalPolicy {
 public:
  std::string name() const override { return "ksm-affinity"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    // Lexicographic (co-tenants, free RAM): with no co-tenant anywhere this
    // degrades to least-loaded, which also spreads the first tenant of each
    // platform onto the emptiest host before piles start forming.
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      if (a.same_platform_tenants != b.same_platform_tenants) {
        return a.same_platform_tenants > b.same_platform_tenants;
      }
      const std::uint64_t fa = free_bytes(a);
      const std::uint64_t fb = free_bytes(b);
      if (fa != fb) {
        return fa > fb;
      }
      return a.index < b.index;
    });
  }

  void platform_count_changed(int host, platforms::PlatformId platform,
                              int count) override {
    auto& per_host = counts_[platform];
    if (per_host.size() <= static_cast<std::size_t>(host)) {
      per_host.resize(static_cast<std::size_t>(host) + 1, 0);
    }
    per_host[static_cast<std::size_t>(host)] = count;
    const auto it = heaps_.find(platform);
    if (it != heaps_.end() && it->second.contains(host)) {
      it->second.update(host);
    }
  }

  void walk_begin(const PlacementRequest& req) override {
    restore_popped();
    walk_platform_ = req.platform_id;
    has_walked_ = true;
    auto it = heaps_.find(walk_platform_);
    if (it == heaps_.end()) {
      // First arrival of this platform: build its ordering lazily from the
      // current live set (counts default to zero, so this is just a
      // free-RAM ordering until piles form).
      it = heaps_.emplace(walk_platform_,
                          IndexedHeap<AffinityCmp>(
                              AffinityCmp{this, walk_platform_}))
               .first;
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (live_[i] != 0) {
          it->second.push(static_cast<int>(i));
        }
      }
    }
  }

  int walk_next() override {
    auto& heap = heaps_.at(walk_platform_);
    if (heap.empty()) {
      return -1;
    }
    const int host = heap.pop();
    popped_.push_back(host);
    return host;
  }

  int count_for(platforms::PlatformId platform, int host) const {
    const auto it = counts_.find(platform);
    if (it == counts_.end() ||
        it->second.size() <= static_cast<std::size_t>(host)) {
      return 0;
    }
    return it->second[static_cast<std::size_t>(host)];
  }

  const HostState& state_of(int host) const {
    return states_[static_cast<std::size_t>(host)];
  }

 protected:
  void reset_orderings() override {
    heaps_.clear();
    counts_.clear();
    has_walked_ = false;
  }
  void target_added(int host) override {
    for (auto& [platform, heap] : heaps_) {
      heap.push(host);
    }
  }
  void target_changed(int host) override {
    for (auto& [platform, heap] : heaps_) {
      if (heap.contains(host)) {
        heap.update(host);
      }
    }
  }
  void target_dropped(int host) override {
    for (auto& [platform, heap] : heaps_) {
      if (heap.contains(host)) {
        heap.erase(host);
      }
    }
  }

  void restore_popped() {
    if (!has_walked_) {
      popped_.clear();
      return;
    }
    auto& heap = heaps_.at(walk_platform_);
    for (const int host : popped_) {
      if (is_live(host) && !heap.contains(host)) {
        heap.push(host);
      }
    }
    popped_.clear();
  }

 private:
  std::unordered_map<platforms::PlatformId, std::vector<int>> counts_;
  std::unordered_map<platforms::PlatformId, IndexedHeap<AffinityCmp>> heaps_;
  platforms::PlatformId walk_platform_ = platforms::PlatformId::kNative;
  bool has_walked_ = false;
};

bool AffinityCmp::operator()(int a, int b) const {
  const int ca = self->count_for(platform, a);
  const int cb = self->count_for(platform, b);
  if (ca != cb) {
    return ca > cb;
  }
  const std::uint64_t fa = free_bytes(self->state_of(a));
  const std::uint64_t fb = free_bytes(self->state_of(b));
  if (fa != fb) {
    return fa > fb;
  }
  return a < b;
}

struct LeastPressureCmp {
  const std::vector<HostState>* states;
  bool operator()(int a, int b) const {
    const double sa = pressure_score((*states)[static_cast<std::size_t>(a)]);
    const double sb = pressure_score((*states)[static_cast<std::size_t>(b)]);
    if (sa != sb) {
      return sa < sb;
    }
    return a < b;
  }
};

class LeastPressurePlacement final : public HeapWalkPolicy<LeastPressureCmp> {
 public:
  LeastPressurePlacement()
      : HeapWalkPolicy<LeastPressureCmp>(LeastPressureCmp{&states_}) {}
  std::string name() const override { return "least-pressure"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      const double sa = pressure_score(a);
      const double sb = pressure_score(b);
      if (sa != sb) {
        return sa < sb;
      }
      return a.index < b.index;
    });
  }
};

struct PackThenSpillCmp {
  const std::vector<HostState>* states;
  bool operator()(int a, int b) const {
    const bool fa = above_watermark((*states)[static_cast<std::size_t>(a)]);
    const bool fb = above_watermark((*states)[static_cast<std::size_t>(b)]);
    if (fa != fb) {
      return !fa;
    }
    return a < b;
  }
};

class PackThenSpillPlacement final : public HeapWalkPolicy<PackThenSpillCmp> {
 public:
  PackThenSpillPlacement()
      : HeapWalkPolicy<PackThenSpillCmp>(PackThenSpillCmp{&states_}) {}
  std::string name() const override { return "pack-then-spill"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    // Hosts below the watermark in index order (so the lowest-index open
    // host soaks up every arrival until it crosses the line), then the
    // full hosts in index order as spill targets of last resort.
    rank_by(hosts, ranked, [](const HostView& a, const HostView& b) {
      const bool fa = above_watermark(a);
      const bool fb = above_watermark(b);
      if (fa != fb) {
        return !fa;
      }
      return a.index < b.index;
    });
  }
};

}  // namespace

int PlacementPolicy::place(const PlacementRequest& req,
                           const std::vector<HostView>& hosts) {
  std::vector<int> ranked;
  rank_hosts(req, hosts, ranked);
  if (ranked.empty()) {
    throw std::logic_error("PlacementPolicy::rank_hosts ranked no hosts");
  }
  return ranked.front();
}

std::string placement_kind_name(PlacementKind k) {
  switch (k) {
    case PlacementKind::kRoundRobin:
      return "round-robin";
    case PlacementKind::kLeastLoaded:
      return "least-loaded";
    case PlacementKind::kKsmAffinity:
      return "ksm-affinity";
    case PlacementKind::kLeastPressure:
      return "least-pressure";
    case PlacementKind::kPackThenSpill:
      return "pack-then-spill";
  }
  return "unknown";
}

std::vector<PlacementKind> all_placement_kinds() {
  return {PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded,
          PlacementKind::kKsmAffinity, PlacementKind::kLeastPressure,
          PlacementKind::kPackThenSpill};
}

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementKind::kLeastLoaded:
      return std::make_unique<LeastLoadedPlacement>();
    case PlacementKind::kKsmAffinity:
      return std::make_unique<KsmAffinityPlacement>();
    case PlacementKind::kLeastPressure:
      return std::make_unique<LeastPressurePlacement>();
    case PlacementKind::kPackThenSpill:
      return std::make_unique<PackThenSpillPlacement>();
  }
  throw std::invalid_argument("make_placement: unknown PlacementKind");
}

}  // namespace fleet
