#include "fleet/placement.h"

#include <stdexcept>

namespace fleet {

namespace {

std::uint64_t free_bytes(const HostView& h) {
  return h.ram_cap_bytes > h.resident_bytes
             ? h.ram_cap_bytes - h.resident_bytes
             : 0;
}

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  void reset() override { cursor_ = 0; }
  int place(const PlacementRequest&,
            const std::vector<HostView>& hosts) override {
    return static_cast<int>(cursor_++ % hosts.size());
  }

 private:
  std::uint64_t cursor_ = 0;
};

class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "least-loaded"; }
  int place(const PlacementRequest&,
            const std::vector<HostView>& hosts) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < hosts.size(); ++i) {
      if (free_bytes(hosts[i]) > free_bytes(hosts[best])) {
        best = i;
      }
    }
    return hosts[best].index;
  }
};

class KsmAffinityPlacement final : public PlacementPolicy {
 public:
  std::string name() const override { return "ksm-affinity"; }
  int place(const PlacementRequest&,
            const std::vector<HostView>& hosts) override {
    // Lexicographic (co-tenants, free RAM): with no co-tenant anywhere this
    // degrades to least-loaded, which also spreads the first tenant of each
    // platform onto the emptiest host before piles start forming.
    std::size_t best = 0;
    for (std::size_t i = 1; i < hosts.size(); ++i) {
      const HostView& h = hosts[i];
      const HostView& b = hosts[best];
      if (h.same_platform_tenants > b.same_platform_tenants ||
          (h.same_platform_tenants == b.same_platform_tenants &&
           free_bytes(h) > free_bytes(b))) {
        best = i;
      }
    }
    return hosts[best].index;
  }
};

}  // namespace

std::string placement_kind_name(PlacementKind k) {
  switch (k) {
    case PlacementKind::kRoundRobin:
      return "round-robin";
    case PlacementKind::kLeastLoaded:
      return "least-loaded";
    case PlacementKind::kKsmAffinity:
      return "ksm-affinity";
  }
  return "unknown";
}

std::vector<PlacementKind> all_placement_kinds() {
  return {PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded,
          PlacementKind::kKsmAffinity};
}

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRoundRobin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementKind::kLeastLoaded:
      return std::make_unique<LeastLoadedPlacement>();
    case PlacementKind::kKsmAffinity:
      return std::make_unique<KsmAffinityPlacement>();
  }
  throw std::invalid_argument("make_placement: unknown PlacementKind");
}

}  // namespace fleet
