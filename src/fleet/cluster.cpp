#include "fleet/cluster.h"

#include <stdexcept>

#include "fleet/engine.h"
#include "fleet/placement.h"

namespace fleet {

Cluster::Cluster(const ClusterTopology& topo) {
  if (topo.host_count < 1) {
    throw std::invalid_argument("Cluster: host_count must be >= 1");
  }
  hosts_.reserve(static_cast<std::size_t>(topo.host_count));
  for (int i = 0; i < topo.host_count; ++i) {
    core::HostSystemSpec spec;
    if (topo.cpu_threads > 0) {
      spec.cpu_threads = topo.cpu_threads;
    }
    if (topo.ram_bytes > 0) {
      spec.ram_bytes = topo.ram_bytes;
    }
    if (topo.nic_gbps > 0.0) {
      spec.nic.line_rate_bps = topo.nic_gbps * 1e9;
    }
    // Distinct per-host RNG streams; host 0 keeps the default seed so a
    // 1-host cluster matches the single-host engine byte for byte.
    spec.rng_seed += 0x9E37'79B9'7F4A'7C15ull * static_cast<std::uint64_t>(i);
    hosts_.push_back(std::make_unique<core::HostSystem>(spec));
  }
}

FleetReport Cluster::run(const Scenario& scenario) {
  const auto policy = make_placement(scenario.placement);
  std::vector<core::HostSystem*> hosts;
  hosts.reserve(hosts_.size());
  for (const auto& h : hosts_) {
    hosts.push_back(h.get());
  }
  FleetEngine engine(hosts, policy.get());
  return engine.run(scenario);
}

}  // namespace fleet
