#include "fleet/cluster.h"

#include <stdexcept>

#include "fleet/placement.h"

namespace fleet {

Cluster::Cluster(const ClusterTopology& topo) : topo_(topo) {
  if (topo.host_count < 1) {
    throw std::invalid_argument("Cluster: host_count must be >= 1");
  }
  hosts_.reserve(static_cast<std::size_t>(topo.host_count));
  for (int i = 0; i < topo.host_count; ++i) {
    add_host();
  }
}

core::HostSystemSpec Cluster::spec_for(int index) const {
  core::HostSystemSpec spec;
  if (topo_.cpu_threads > 0) {
    spec.cpu_threads = topo_.cpu_threads;
  }
  if (topo_.ram_bytes > 0) {
    spec.ram_bytes = topo_.ram_bytes;
  }
  if (topo_.nic_gbps > 0.0) {
    spec.nic.line_rate_bps = topo_.nic_gbps * 1e9;
  }
  // Distinct per-host RNG streams; host 0 keeps the default seed so a
  // 1-host cluster matches the single-host engine byte for byte. Derived
  // from the host index alone, so host i is identical whether built at
  // construction or added by the autoscaler mid-run.
  spec.rng_seed += 0x9E37'79B9'7F4A'7C15ull * static_cast<std::uint64_t>(index);
  return spec;
}

core::HostSystem& Cluster::add_host() {
  const int index = static_cast<int>(hosts_.size());
  hosts_.push_back(std::make_unique<core::HostSystem>(spec_for(index)));
  retired_.push_back(false);
  return *hosts_.back();
}

void Cluster::drain_host(int index) {
  retired_.at(static_cast<std::size_t>(index)) = true;
}

int Cluster::live_host_count() const {
  int live = 0;
  for (const bool retired : retired_) {
    live += retired ? 0 : 1;
  }
  return live;
}

FleetReport Cluster::run(const Scenario& scenario) {
  // A run starts with every host live: the engine rebuilds all shard state
  // from scratch, so hosts retired by a previous run's drains are revived
  // here to keep is_retired()/live_host_count() agreeing with what the
  // engine actually places on. (Reproducible runs use a fresh Cluster
  // anyway — reuse also carries warmed caches and advanced RNG streams.)
  retired_.assign(retired_.size(), false);
  const auto policy = make_placement(scenario.placement);
  std::vector<core::HostSystem*> hosts;
  hosts.reserve(hosts_.size());
  for (const auto& h : hosts_) {
    hosts.push_back(h.get());
  }
  FleetEngine engine(hosts, policy.get(), this);
  return engine.run(scenario);
}

}  // namespace fleet
