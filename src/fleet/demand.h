// Shared demand-model constants for the fleet engine's event handlers,
// split out so the sequential loop (engine.cpp) and the parallel worker
// path (engine_parallel.cpp) charge byte-identical vCPU demand.
#pragma once

#include "platforms/platform.h"

namespace fleet::demand {

/// vCPUs a tenant demands while booting.
constexpr double kBootVcpus = 2.0;

/// vCPUs one in-flight workload phase demands, per class.
inline double workload_vcpus(platforms::WorkloadClass w) {
  switch (w) {
    case platforms::WorkloadClass::kCpu:
      return 2.0;
    case platforms::WorkloadClass::kMemory:
      return 1.0;
    case platforms::WorkloadClass::kIo:
    case platforms::WorkloadClass::kNetwork:
      return 0.5;
    case platforms::WorkloadClass::kStartup:
      return 1.0;
  }
  return 1.0;
}

}  // namespace fleet::demand
