// Scenario: the policy side of a fleet simulation.
//
// Separates *what the fleet does* (tenant arrivals, platform mix, workload
// mix) from *how the platforms behave* (the cost models under src/platforms
// and src/hostk), in the spirit of policy-aware middleware design. Since the
// federation redesign the split is explicit in the types:
//
//   TrafficSpec — global policy: who arrives when, what they run, which
//                 SLOs the run is held to, and the seed. One TrafficSpec
//                 drives a whole federation; it knows nothing about hosts.
//   CellSpec    — cell-scoped mechanism: topology, placement policy,
//                 autoscaling, operator host events, fault injection, and
//                 the execution thread knob for ONE cluster cell.
//   Scenario    — TrafficSpec + CellSpec glued back together (by
//                 inheritance, so every existing `s.tenant_count` /
//                 `s.cluster` access keeps compiling verbatim). This is the
//                 single-cluster API every test, bench, and golden uses.
//
// A Scenario is a plain value; FleetEngine (engine.h) executes it against
// one shared core::HostSystem, fleet::Cluster shards it across hosts, and
// fleet::Federation (federation.h) routes one TrafficSpec across K CellSpec
// cells. The built-in scenarios cover the consolidation questions the paper
// raises but only answers one tenant at a time: serverless cold-start
// storms, density sweeps to first OOM, and steady-state mixed-platform
// fleets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/chaos.h"
#include "fleet/placement.h"
#include "platforms/platform.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace fleet {

/// Cluster topology: M identical hosts, each its own HostSystem shard with
/// private page cache, NVMe, NIC, kernel ftrace, and KSM stable tree.
/// Zero-valued knobs fall back to the core::HostSystemSpec defaults
/// (128 threads, 256 GiB RAM, 40 GbE).
struct ClusterTopology {
  int host_count = 1;
  int cpu_threads = 0;
  std::uint64_t ram_bytes = 0;
  double nic_gbps = 0.0;

  /// Named failure domains for correlated faults: a rack groups host
  /// indices (into the initial topology) that one Fault can crash or
  /// partition at a single instant.
  struct Rack {
    std::string name;
    std::vector<int> hosts;
  };
  std::vector<Rack> racks;
};

/// Watermark-driven mid-run cluster resizing. The engine emits periodic
/// evaluation events on the one global deterministic queue; an evaluation
/// compares the fleet-wide resident fraction (resident bytes over RAM
/// capacity, live hosts only) against the watermarks and, cooldown
/// permitting, adds a fresh host (scale-out) or drains the live host with
/// the fewest active tenants (scale-in). Draining re-places that host's
/// tenants through placement + admission as churn-style re-arrivals.
struct AutoscaleSpec {
  bool enabled = false;
  /// Scale out when the fleet resident fraction exceeds this.
  double scale_out_watermark = 0.85;
  /// Scale in when it drops below this (hysteresis gap keeps it stable).
  double scale_in_watermark = 0.20;
  /// Minimum virtual time between two scaling actions. NOTE: typed
  /// sim::Nanos like every duration here — assign via sim::millis(...),
  /// not a bare number.
  sim::Nanos cooldown_ms = sim::millis(20);
  /// Spacing of evaluation events on the global queue.
  sim::Nanos eval_interval = sim::millis(10);
  /// Ceiling on live hosts; 0 disables scale-out. Scale-out needs a host
  /// provisioner (fleet::Cluster provides one; a bare FleetEngine cannot
  /// grow).
  int max_hosts = 0;
  /// Floor on live hosts for scale-in. Scenarios that should never shrink
  /// below their starting topology set this to the initial host count
  /// (Scenario::autoscale_storm does).
  int min_hosts = 1;
};

/// A timed operator hook: explicitly add a fresh host or drain one at a
/// fixed virtual time, independent of the watermark autoscaler. Processed
/// on the same global deterministic event queue as tenant events.
struct HostEvent {
  enum class Kind { kAdd, kDrain };
  sim::Nanos time = 0;
  Kind kind = Kind::kAdd;
  /// Drain target host index; -1 lets the engine pick (fewest active
  /// tenants, ties to the highest index). Ignored for kAdd.
  int host = -1;
};

/// How tenant arrival times are drawn over the scenario's warm-up window.
enum class ArrivalPattern {
  kStorm,    // all tenants arrive within a short burst window
  kPoisson,  // exponential inter-arrivals at arrival_rate_per_sec
  kRamp,     // evenly spaced across the burst window
};

std::string arrival_pattern_name(ArrivalPattern p);

/// One entry of the platform mix; weights are normalized by the engine.
struct PlatformShare {
  platforms::PlatformId id;
  double weight = 1.0;
};

/// One entry of the workload mix; weights are normalized by the engine.
struct WorkloadShare {
  platforms::WorkloadClass workload;
  double weight = 1.0;
};

/// One entry of the program mix; weights are normalized by the engine.
/// `program` is a built-in syscall-program index (fleet/program.h), or -1
/// to keep that share of the population on statistical phases.
struct ProgramShare {
  int program = -1;
  double weight = 1.0;
};

/// One fully-drawn tenant: arrival instant, platform, private RNG stream
/// (already forked and advanced past the phase draws), and workload phases.
/// TrafficSpec::draw_population() materializes the whole population exactly
/// as FleetEngine used to draw it inline, so a federation can draw once
/// globally, route seeds to cells, and each cell replays its subset
/// byte-identically to a standalone run of the same tenants.
struct TenantSeed {
  sim::Nanos arrival = 0;
  platforms::PlatformId platform_id = platforms::PlatformId::kQemuKvm;
  sim::Rng rng{0};
  std::vector<platforms::WorkloadClass> phases;
  /// Built-in syscall program this tenant interprets instead of its
  /// statistical phases; -1 (the default, and the only value drawn when
  /// program_mix is empty) keeps the tenant statistical. Routed through
  /// federations verbatim like every other seed field.
  int program = -1;
};

/// Global policy half of a scenario: the traffic (who arrives when, running
/// what) and the service-level objectives it is held to. Shared verbatim by
/// every cell of a federation; contains nothing about hosts or topology.
struct TrafficSpec {
  std::string name = "custom";

  // --- Tenant population --------------------------------------------------
  int tenant_count = 64;
  ArrivalPattern arrival = ArrivalPattern::kStorm;
  /// Burst/ramp window over which arrivals land (kStorm, kRamp).
  sim::Nanos arrival_window = sim::millis(100);
  /// Mean arrival rate (kPoisson).
  double arrival_rate_per_sec = 100.0;

  /// Explicit pre-drawn population. Empty (the default) means the engine
  /// draws tenant_count tenants from the seed via draw_population(); a
  /// federation router fills this with each cell's routed subset instead,
  /// and the engine then ignores tenant_count / arrival knobs entirely.
  std::vector<TenantSeed> population;

  // --- Platform and workload mix ------------------------------------------
  std::vector<PlatformShare> platform_mix;
  std::vector<WorkloadShare> workload_mix;
  /// Syscall-program mix (fleet/program.h). Empty (the default) keeps the
  /// whole population on statistical phases — and skips the per-tenant
  /// program draw entirely, so existing scenarios and goldens stay
  /// byte-identical. Non-empty: each tenant draws one share from its
  /// private RNG (after its phase draws); shares with program >= 0 run
  /// that built-in program instead of phases, shares with program == -1
  /// stay statistical.
  std::vector<ProgramShare> program_mix;

  /// Workload phases each tenant runs between boot and teardown.
  int phases_per_tenant = 3;
  /// Mean virtual duration of one phase before platform/contention scaling.
  sim::Nanos mean_phase_duration = sim::millis(250);
  /// Payload pushed through the NIC during a network phase.
  std::uint64_t net_bytes_per_phase = 8ull << 20;
  /// Bytes read through the host I/O path during an I/O phase.
  std::uint64_t io_bytes_per_phase = 32ull << 20;

  // --- Per-tenant memory ---------------------------------------------------
  /// Guest RAM reserved per hypervisor-backed tenant.
  std::uint64_t guest_ram_bytes = 512ull << 20;
  /// Boot image pulled through the host page cache on every boot.
  std::uint64_t image_bytes = 128ull << 20;

  // --- Service-level objectives -------------------------------------------
  /// Cold-start budget: when positive, the report renders the fraction of
  /// boots (admission to serving, across all platforms and churn rounds)
  /// that finished within it. Zero disables the verdict line entirely, so
  /// budget-less runs stay byte-identical to the pinned goldens. NOTE:
  /// typed sim::Nanos like every duration here — assign via
  /// sim::millis(...), not a bare number.
  sim::Nanos boot_slo_ms = 0;
  /// Recovery budget: when positive, every crash fault's RecoveryVerdict
  /// renders pass/fail against this p99 time-to-re-place budget (and fails
  /// outright if any victim was lost), so chaos runs can gate like perf
  /// runs do. Zero disables the verdict, keeping budget-less chaos output
  /// byte-identical.
  sim::Nanos replace_slo_ms = 0;
  /// Per-op latency budget for syscall-program runs: when positive, every
  /// program op class renders a p99 PASS/FAIL verdict against it. Zero
  /// disables the verdict, keeping budget-less program output stable.
  /// NOTE: typed sim::Nanos like every duration here — assign via
  /// sim::millis(...), not a bare number.
  sim::Nanos op_slo_ms = 0;
  /// Fleet-wide per-op retry budget for syscall programs: an op issue whose
  /// service would blow op_slo_ms times out at the budget, backs off
  /// exponentially (op_backoff_base_ms * 2^(n-1) plus uniform jitter from
  /// the tenant RNG) and re-issues, up to this many times; a late
  /// completion with retries exhausted counts as a give-up. Per-op
  /// ProgramOp::max_retries overrides this when set. 0 = complete late
  /// (binary-failure behavior, byte-identical to the historical engine).
  int op_max_retries = 0;
  /// Base backoff between re-issues (sim::Nanos; see op_slo_ms note). Must
  /// be positive whenever op_max_retries > 0.
  sim::Nanos op_backoff_base_ms = 0;

  // --- Churn (long-horizon runs) ------------------------------------------
  /// Times each tenant re-enters the fleet after teardown: its resources
  /// are released, it idles churn_gap, then re-arrives and faces placement
  /// and admission again (possibly on a different host). 0 = single pass.
  int churn_rounds = 0;
  sim::Nanos churn_gap = sim::millis(100);

  // --- Reproducibility ----------------------------------------------------
  std::uint64_t seed = 0xF1EE'75EE'D000'0001ull;

  /// Draw the full tenant population from the seed: arrival times first
  /// (then sorted), then per tenant a platform pick, a forked private RNG,
  /// and the workload phases off that fork — the exact draw sequence the
  /// engine performed inline before populations became explicit, so a run
  /// fed the returned seeds is byte-identical to one that draws its own.
  std::vector<TenantSeed> draw_population() const;
};

/// Cell-scoped mechanism half of a scenario: everything that describes ONE
/// cluster cell — its hosts, how tenants are placed on them, how it scales,
/// what faults hit it, and how it executes. A federation carries K of
/// these, one per cell, possibly heterogeneous.
struct CellSpec {
  // --- Cluster ------------------------------------------------------------
  /// Host count and per-host shape; host_count 1 is the single-host engine.
  ClusterTopology cluster;
  /// Which host an arriving tenant lands on (cluster runs only). The
  /// policy ranks every live host; admission walks the ranking and spills
  /// to the next candidate on refusal.
  PlacementKind placement = PlacementKind::kRoundRobin;
  /// Watermark-driven mid-run host add/drain (cluster runs only).
  AutoscaleSpec autoscale;
  /// Explicit timed add/drain hooks, evaluated alongside the autoscaler.
  std::vector<HostEvent> host_events;
  /// Fault injection (chaos.h): timed and seeded-random host crashes,
  /// network partitions, rack-correlated faults, and whole-cell outages.
  /// Resolved and validated at run start, then injected as first-class
  /// events on the same global deterministic queue as everything else.
  FaultSpec faults;

  // --- Memory mechanism ----------------------------------------------------
  /// Deduplicate identical VM pages across tenants (Section 3.2's KSM).
  bool enable_ksm = true;
  /// Density-sweep mode: stop admitting at the first tenant whose projected
  /// resident set exceeds host RAM, and record it.
  bool stop_at_first_oom = false;
  /// Host RAM cap for the density check, applied to every host; 0 means
  /// use each HostSystem's spec.
  std::uint64_t host_ram_override_bytes = 0;

  // --- Execution -----------------------------------------------------------
  /// Worker threads for the engine's parallel execution mode (cluster runs
  /// only; single-host runs ignore it). 1 = the sequential loop. Any value
  /// produces byte-identical reports — threads is an execution knob, not a
  /// model parameter, so it never appears in the report text.
  int threads = 1;
};

/// The single-cluster scenario: one TrafficSpec applied to one CellSpec.
/// Inheritance keeps the pre-federation flat field access (`s.tenant_count`,
/// `s.cluster`, `s.placement`, ...) compiling unchanged everywhere.
struct Scenario : TrafficSpec, CellSpec {
  /// Serverless burst: many small tenants on boot-optimized platforms all
  /// arriving at once; one phase each, then teardown (Figures 13-15 at
  /// fleet scale).
  static Scenario coldstart_storm(int tenants = 64);

  /// Hypervisor tenants packed onto one host until RAM runs out, with KSM
  /// stretching density the way Section 3.2 describes.
  static Scenario density_sweep(int max_tenants = 192);

  /// Long-running mixed fleet: containers, microVMs and unikernels side by
  /// side, Poisson arrivals, all workload classes active.
  static Scenario steady_state_mix(int tenants = 48);

  /// Cold-start storm sharded across a cluster: a platform mix heavy on
  /// hypervisor-backed tenants so placement visibly moves KSM sharing.
  static Scenario cluster_storm(
      int tenants, int hosts,
      PlacementKind placement = PlacementKind::kRoundRobin);

  /// Long-horizon churn: the steady-state mix where every tenant tears
  /// down and re-enters the fleet `rounds` more times.
  static Scenario churn_mix(int tenants = 48, int rounds = 2);

  /// Cluster storm with the watermark autoscaler on: starts at `hosts`
  /// hosts and may grow to `max_hosts`, arrivals ramped so the autoscaler
  /// can track the pressure. With max_hosts == hosts this is the fixed-
  /// topology control for the same traffic.
  static Scenario autoscale_storm(int tenants, int hosts, int max_hosts);

  /// Headline chaos scenario: a RAM-tight autoscaled storm where one host
  /// crashes mid-storm. Its victims surge back through placement and
  /// admission on the survivors, the lost capacity pushes the resident
  /// fraction over the scale-out watermark, and the recovery verdict
  /// records time-to-re-place percentiles and the re-admission fraction
  /// against a declared replace_slo_ms budget.
  static Scenario crash_recovery(int tenants, int hosts, int max_hosts);

  /// Correlated failure: the hosts split into two named racks and one
  /// whole rack crashes at a single instant mid-storm.
  static Scenario rack_outage(int tenants, int hosts);

  /// Network chaos: a mid-run partition stalls NIC phases (and image-pull
  /// boots) on half the fleet; completions stretch by the overlap.
  static Scenario partition_storm(int tenants, int hosts);

  /// Syscall-program traffic: a cluster storm where most tenants interpret
  /// built-in programs (kv-server, image-pull-serve, log-writer,
  /// mmap-analytics) over the host kernel, with a statistical control
  /// share riding along and a per-op latency SLO declared.
  static Scenario program_storm(int tenants, int hosts);

  /// Headline graceful-degradation scenario: the program storm with the
  /// degrade-family faults layered on — a disk-degrade window on host 0, a
  /// memory-pressure unmerge storm on host 1, a partial partition cutting
  /// the {0, 1} pair, and a late crash on a RAM-tight fleet — with per-op
  /// retry/backoff enabled. The no-retry control (op_max_retries = 0, same
  /// fault schedule) shows strictly more SLO give-ups and lost tenants:
  /// degradation handled gracefully instead of failing wholesale.
  static Scenario degrade_storm(int tenants, int hosts);
};

}  // namespace fleet
