#include "fleet/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fleet/demand.h"

namespace fleet {

namespace {

using platforms::PlatformId;
using platforms::WorkloadClass;

using demand::kBootVcpus;
using demand::workload_vcpus;

/// KSM granularity for fleet guest RAM: 2 MiB (THP-sized) units keep the
/// stable tree small enough to rescan on every admission decision.
constexpr std::uint64_t kFleetPageBytes = 2ull << 20;

/// Fraction of a guest's RAM that stays untouched (zero pages) and merges
/// across every tenant once KSM scans it.
constexpr double kZeroPageFraction = 0.35;

/// Host RSS of the virtualization layer itself (device model, Sentry, ...).
std::uint64_t platform_overhead_bytes(PlatformId id) {
  switch (id) {
    case PlatformId::kQemuKvm:
      return 192ull << 20;
    case PlatformId::kKataContainers:
      return 160ull << 20;
    case PlatformId::kCloudHypervisor:
      return 48ull << 20;
    case PlatformId::kFirecracker:
      return 32ull << 20;
    case PlatformId::kOsvQemu:
      return 96ull << 20;
    case PlatformId::kOsvFirecracker:
      return 24ull << 20;
    case PlatformId::kGvisor:
      return 64ull << 20;
    case PlatformId::kNative:
    case PlatformId::kDocker:
    case PlatformId::kLxc:
      return 8ull << 20;
  }
  return 0;
}

std::uint64_t image_file_id(PlatformId id) {
  return 0xF1EE'0000ull + static_cast<std::uint64_t>(id);
}

/// Page-cache file ids for program ops: one private stream per tenant and
/// one shared file per built-in program (an image or common dataset the
/// whole program population reads). Both ranges sit far above the 32-bit
/// image/IO-phase ids, so they can never collide with them.
constexpr std::uint64_t kProgramFileBase = 0x509A'0000'0000ull;
constexpr std::uint64_t kProgramSharedBase = 0xA119'0000'0000ull;

std::uint64_t program_file_id(const FleetEngine&, std::uint64_t tenant,
                              int program, bool shared) {
  return shared ? kProgramSharedBase + static_cast<std::uint64_t>(program)
                : kProgramFileBase + tenant;
}

/// Digest runs for one hypervisor tenant's guest RAM at kFleetPageBytes
/// granularity: a merged-everywhere zero-page run, a per-image run that
/// merges across tenants of the same platform, and a tenant-private run.
/// Three PageRuns describe the whole guest — no per-page vector ever
/// materializes, and the KSM stable tree ingests each run as one interval.
/// Fills `out` (recycled across admission trials; the retry walk probes
/// the same runs against every candidate host).
void guest_page_runs(std::vector<mem::PageRun>& out, std::uint64_t tenant,
                     PlatformId platform, std::uint64_t guest_ram_bytes,
                     std::uint64_t image_bytes) {
  const std::uint64_t total = std::max<std::uint64_t>(
      1, guest_ram_bytes / kFleetPageBytes);
  const auto zero_units = static_cast<std::uint64_t>(
      static_cast<double>(total) * kZeroPageFraction);
  const std::uint64_t image_units =
      std::min(total - zero_units, image_bytes / kFleetPageBytes);
  const std::uint64_t private_units = total - zero_units - image_units;
  out.clear();
  out.push_back({0x2E80'0000'0000'0000ull, zero_units});  // zero pages: global
  out.push_back(
      {0xBA5E'0000'0000'0000ull + (static_cast<std::uint64_t>(platform) << 32),
       image_units});
  out.push_back(
      {0x7E4A'0000'0000'0000ull + (tenant << 24) + zero_units + image_units,
       private_units});
}

}  // namespace

bool is_hypervisor_backed(PlatformId id) {
  switch (id) {
    case PlatformId::kQemuKvm:
    case PlatformId::kFirecracker:
    case PlatformId::kCloudHypervisor:
    case PlatformId::kKataContainers:
    case PlatformId::kOsvQemu:
    case PlatformId::kOsvFirecracker:
      return true;
    case PlatformId::kNative:
    case PlatformId::kDocker:
    case PlatformId::kLxc:
    case PlatformId::kGvisor:
      return false;
  }
  return false;
}

FleetEngine::FleetEngine(core::HostSystem& host) {
  shards_.emplace_back();
  shards_.back().host = &host;
}

FleetEngine::FleetEngine(const std::vector<core::HostSystem*>& hosts,
                         PlacementPolicy* policy, HostProvisioner* provisioner)
    : policy_(policy), provisioner_(provisioner) {
  if (hosts.empty()) {
    throw std::invalid_argument("FleetEngine: needs at least one host");
  }
  shards_.reserve(hosts.size());
  for (core::HostSystem* h : hosts) {
    if (h == nullptr) {
      throw std::invalid_argument("FleetEngine: null host");
    }
    shards_.emplace_back();
    shards_.back().host = h;
  }
}

std::uint64_t FleetEngine::Shard::resident_bytes() const {
  return non_ksm_resident + ksm.backing_pages() * kFleetPageBytes;
}

double FleetEngine::Shard::cpu_factor() const {
  const double threads = static_cast<double>(host->spec().cpu_threads);
  return std::max(1.0, cpu_demand / threads);
}

void FleetEngine::note_shard_peaks(Shard& sh) {
  sh.rollup.peak_active = std::max(sh.rollup.peak_active, sh.active);
  const std::uint64_t shard_resident = sh.resident_bytes();
  if (shard_resident >= sh.rollup.peak_resident_bytes) {
    sh.rollup.peak_resident_bytes = shard_resident;
    sh.rollup.ksm.advised_pages = sh.ksm.advised_pages();
    sh.rollup.ksm.backing_pages = sh.ksm.backing_pages();
    sh.rollup.ksm.shared_pages = sh.ksm.shared_pages();
    sh.rollup.ksm.density_gain = sh.ksm.density_gain();
    sh.rollup.ksm.shared_fraction = sh.ksm.shared_fraction();
  }
}

void FleetEngine::note_peaks(Shard& sh) {
  report_.peak_active = std::max(report_.peak_active, active_);
  report_.peak_cpu_demand = std::max(
      report_.peak_cpu_demand,
      sh.cpu_demand / static_cast<double>(sh.host->spec().cpu_threads));

  note_shard_peaks(sh);

  if (peak_audit_) {
    // Summed reference form the incremental counters replaced; any drift
    // between the two is a bookkeeping bug, latched for the test to see.
    std::uint64_t resident = 0;
    std::uint64_t advised = 0;
    std::uint64_t backing = 0;
    std::uint64_t shared = 0;
    for (const Shard& s : shards_) {
      resident += s.resident_bytes();
      advised += s.ksm.advised_pages();
      backing += s.ksm.backing_pages();
      shared += s.ksm.shared_pages();
    }
    if (resident != fleet_resident_ || advised != fleet_ksm_advised_ ||
        backing != fleet_ksm_backing_ || shared != fleet_ksm_shared_) {
      peak_audit_failed_ = true;
    }
  }
  if (fleet_resident_ >= report_.peak_resident_bytes) {
    report_.peak_resident_bytes = fleet_resident_;
    // Snapshot density at the high-water mark; teardowns later drain the
    // stable trees, so end-of-run numbers would always read empty.
    report_.ksm.advised_pages = fleet_ksm_advised_;
    report_.ksm.backing_pages = fleet_ksm_backing_;
    report_.ksm.shared_pages = fleet_ksm_shared_;
    report_.ksm.density_gain =
        fleet_ksm_backing_ == 0
            ? 1.0
            : static_cast<double>(fleet_ksm_advised_) /
                  static_cast<double>(fleet_ksm_backing_);
    report_.ksm.shared_fraction =
        fleet_ksm_advised_ == 0
            ? 0.0
            : static_cast<double>(fleet_ksm_shared_) /
                  static_cast<double>(fleet_ksm_advised_);
  }
}

FleetEngine::FleetDelta FleetEngine::fleet_before(const Shard& sh) const {
  return {sh.resident_bytes(), sh.ksm.advised_pages(), sh.ksm.backing_pages(),
          sh.ksm.shared_pages()};
}

void FleetEngine::fleet_apply(const Shard& sh, const FleetDelta& before) {
  fleet_resident_ += sh.resident_bytes() - before.resident;
  fleet_ksm_advised_ += sh.ksm.advised_pages() - before.advised;
  fleet_ksm_backing_ += sh.ksm.backing_pages() - before.backing;
  fleet_ksm_shared_ += sh.ksm.shared_pages() - before.shared;
}

bool FleetEngine::admit(Shard& sh, Tenant& t, const Scenario& s) {
  const FleetDelta before = fleet_before(sh);
  const std::uint64_t overhead = platform_overhead_bytes(t.platform_id);
  if (is_hypervisor_backed(t.platform_id) && s.enable_ksm) {
    // Fast-fail before the probe: advising only ever adds backing pages,
    // so a host that cannot even fit the overhead on top of its current
    // resident set cannot pass the probe check either.
    if (sh.resident_bytes() + overhead > sh.ram_cap) {
      return false;
    }
    // Read-only admission trial: probe the exact backing-page delta the
    // guest's digest runs would cause. Only the host that admits pays the
    // advise+scan tree mutation — a refusing candidate's stable tree is
    // never touched (the old path paid a full advise+scan / remove+scan
    // rollback cycle per refusal).
    guest_page_runs(run_scratch_, t.id, t.platform_id, s.guest_ram_bytes,
                    s.image_bytes);
    const mem::Ksm::ProbeDelta delta = sh.ksm.probe_runs(run_scratch_);
    if (sh.resident_bytes() + delta.backing_delta * kFleetPageBytes +
            overhead > sh.ram_cap) {
      return false;
    }
    sh.ksm.advise_runs(t.id, run_scratch_);
    sh.ksm.scan();
    t.resident_bytes = overhead;
    t.ksm_registered = true;
  } else {
    // Hypervisor guests without KSM reserve full guest RAM; namespace-
    // backed tenants only pay their process RSS.
    t.resident_bytes = is_hypervisor_backed(t.platform_id)
                           ? overhead + s.guest_ram_bytes
                           : overhead + s.guest_ram_bytes / 4;
    if (sh.resident_bytes() + t.resident_bytes > sh.ram_cap) {
      return false;
    }
  }
  sh.non_ksm_resident += t.resident_bytes;
  fleet_apply(sh, before);
  return true;
}

void FleetEngine::rank_candidates(const Tenant& t, const Scenario& s) {
  ranked_.clear();
  if (shards_.size() == 1) {
    ranked_.push_back(0);
    return;
  }
  views_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = shards_[i];
    if (!sh.live) {
      continue;  // draining/retired hosts take no new placements
    }
    HostView v;
    v.index = static_cast<int>(i);
    v.ram_cap_bytes = sh.ram_cap;
    v.resident_bytes = sh.resident_bytes();
    v.active_tenants = sh.active;
    const auto it = sh.tenants_by_platform.find(t.platform_id);
    v.same_platform_tenants =
        it == sh.tenants_by_platform.end() ? 0 : it->second;
    v.pressure.cpu_demand = sh.cpu_demand;
    v.pressure.cpu_threads = sh.host->spec().cpu_threads;
    v.pressure.net_active = sh.net_active;
    views_.push_back(v);
  }
  PlacementRequest req;
  req.tenant_id = t.id;
  req.platform_id = t.platform_id;
  req.hypervisor_backed = is_hypervisor_backed(t.platform_id);
  req.guest_ram_bytes = s.guest_ram_bytes;
  policy_->rank_hosts(req, views_, ranked_);
  if (ranked_.empty()) {
    throw std::logic_error("PlacementPolicy::rank_hosts ranked no hosts");
  }
  for (const int host : ranked_) {
    if (host < 0 || host >= static_cast<int>(shards_.size()) ||
        !shards_[static_cast<std::size_t>(host)].live) {
      throw std::out_of_range(
          "PlacementPolicy::rank_hosts returned an invalid host index");
    }
  }
}

void FleetEngine::handle_arrival(Tenant& t, const Scenario& s) {
  // A tripped density-stop latch rejects before placement: no host is
  // consulted, no policy state advances, and the rejection counts only in
  // the fleet-level total — not against any host's rollup.
  if (s.stop_at_first_oom && report_.first_oom_tenant >= 0) {
    t.outcome.admitted = false;
    ++report_.rejected;
    note_crash_loss(t);
    return;
  }
  // A crash can kill the whole fleet; with nowhere to place, the arrival
  // is rejected fleet-level (no host consulted, no first-OOM latch — this
  // is a capacity outage, not a density wall).
  if (live_hosts_ == 0) {
    t.outcome.admitted = false;
    ++report_.rejected;
    note_crash_loss(t);
    return;
  }

  // Retry-on-reject: walk the policy's ranked candidates and admit on the
  // first host whose RAM accepts the tenant. Only a full walk with every
  // live host refusing is an OOM — attributed to the *last* host tried —
  // and only then may the density-stop latch trip. Incremental policies
  // are walked lazily (one heap pop per candidate actually tried); legacy
  // policies get the snapshot-and-sort path.
  int first_choice = -1;
  int admitted_host = -1;
  int last_tried = -1;
  const auto try_host = [&](int host) {
    Shard& candidate = shards_[static_cast<std::size_t>(host)];
    if (first_choice < 0) {
      first_choice = host;
    }
    last_tried = host;
    t.platform = candidate.platforms.at(t.platform_id).get();
    if (admit(candidate, t, s)) {
      admitted_host = host;
    }
  };
  if (shards_.size() == 1) {
    try_host(0);
  } else if (incremental_placement_) {
    PlacementRequest req;
    req.tenant_id = t.id;
    req.platform_id = t.platform_id;
    req.hypervisor_backed = is_hypervisor_backed(t.platform_id);
    req.guest_ram_bytes = s.guest_ram_bytes;
    policy_->walk_begin(req);
    for (int host = policy_->walk_next(); host >= 0;
         host = policy_->walk_next()) {
      if (host >= static_cast<int>(shards_.size()) ||
          !shards_[static_cast<std::size_t>(host)].live) {
        throw std::out_of_range(
            "PlacementPolicy::walk_next returned an invalid host index");
      }
      try_host(host);
      if (admitted_host >= 0) {
        break;
      }
    }
    if (first_choice < 0) {
      throw std::logic_error("PlacementPolicy::walk_next emitted no hosts");
    }
  } else {
    rank_candidates(t, s);
    for (const int host : ranked_) {
      try_host(host);
      if (admitted_host >= 0) {
        break;
      }
    }
  }
  if (admitted_host < 0) {
    if (report_.first_oom_tenant < 0) {
      report_.first_oom_tenant = static_cast<std::int64_t>(t.id);
    }
    t.outcome.admitted = false;
    t.resident_bytes = 0;
    ++report_.rejected;
    ++shards_[static_cast<std::size_t>(last_tried)].rollup.rejected;
    note_crash_loss(t);
    return;
  }

  Shard& sh = shards_[static_cast<std::size_t>(admitted_host)];
  t.host = admitted_host;
  if (admitted_host != first_choice) {
    ++report_.spills;
    ++sh.rollup.spill_in;
    ++shards_[static_cast<std::size_t>(first_choice)].rollup.spill_out;
  }
  t.outcome.admitted = true;
  ++report_.admitted;
  ++sh.rollup.admitted;
  ++active_;
  ++sh.active;
  ++sh.tenants_by_platform[t.platform_id];
  notify_platform_count(sh, t.platform_id);
  sh.cpu_demand += kBootVcpus;
  t.in_flight = Tenant::InFlight::kBoot;
  t.holds_resources = true;
  note_peaks(sh);

  // Boot: the platform's sampled end-to-end sequence plus pulling the boot
  // image through the shard's host page cache, both stretched by CPU
  // contention across that host's fleet share. Runs that can shard defer
  // the physics to a kBootPhys event at the same instant: the contention
  // factor is captured here (placement-visible state), but the sampling
  // and cache/NVMe charges are shard-local, so the parallel loop can run
  // them on the shard's worker instead of the coordinator.
  if (deferred_boot_) {
    t.boot_factor = sh.cpu_factor();
    queue_.push(t.clock.now(), t.id, EventKind::kBootPhys, t.epoch);
    return;
  }
  const sim::Nanos done = boot_physics(sh, t, s, sh.cpu_factor());
  queue_.push(done, t.id, EventKind::kBootDone, t.epoch);
}

sim::Nanos FleetEngine::boot_physics(Shard& sh, Tenant& t, const Scenario& s,
                                     double factor) {
  const sim::Nanos arrival = t.clock.now();
  t.platform->boot_total(t.clock, t.rng);
  const sim::Nanos boot_ns = t.clock.now() - arrival;

  auto& cache = sh.host->page_cache();
  const std::uint64_t misses =
      cache.access_range(image_file_id(t.platform_id), 0, s.image_bytes);
  sim::Nanos image_ns = 0;
  if (misses > 0) {
    image_ns =
        sh.host->nvme().read(misses * hostk::PageCache::kPageSize, t.rng);
  } else {
    image_ns = sim::micros(50);  // fully cache-resident image
  }

  // Floor the boot at the cache-resident image cost. It never binds (the
  // image term alone is >= 50us in both branches), but it turns "boots are
  // never instantaneous" into a provable invariant the parallel loop's
  // harvest horizon leans on: a kBootPhys issued at time T cannot produce a
  // kBootDone before T + kBootFloorNs.
  auto total = std::max<sim::Nanos>(
      kBootFloorNs, static_cast<sim::Nanos>(
                        static_cast<double>(boot_ns + image_ns) * factor));
  // Boots that actually pulled the image run the pull at degraded NVMe
  // speed inside a disk-degrade window, and wait out any partition window
  // on this host; a fully cache-resident boot touches neither the device
  // nor the wire. Stalls only ever add time, so the kBootFloorNs horizon
  // still holds.
  if (misses > 0) {
    if (sh.rollup.host < static_cast<int>(degrades_.size())) {
      total = degraded_completion(
                  degrades_[static_cast<std::size_t>(sh.rollup.host)],
                  arrival, total) -
              arrival;
    }
    const sim::Nanos stalled = partition_stall(sh.rollup.host, arrival, total);
    if (stalled != total) {
      ++sh.rollup.nic_stalls;
      total = stalled;
    }
  }
  t.clock.advance_to(arrival + total);
  t.outcome.boot_latency = total;
  return arrival + total;
}

void FleetEngine::handle_boot_phys(Tenant& t, const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  const sim::Nanos done = boot_physics(sh, t, s, t.boot_factor);
  queue_.push(done, t.id, EventKind::kBootDone, t.epoch);
}

void FleetEngine::handle_boot_done(Tenant& t, const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  sh.cpu_demand -= kBootVcpus;
  t.in_flight = Tenant::InFlight::kNone;
  // One string-keyed lookup per *platform id* per run, here; boots reuse
  // the id-indexed slot and phases the per-tenant pointer. Creating the
  // entry lazily (not at tenant setup) keeps platforms whose tenants never
  // booted out of the report table.
  PlatformFleetStats*& slot =
      stats_by_id_[static_cast<std::size_t>(t.platform_id)];
  if (slot == nullptr) {
    slot = &report_.by_platform[t.platform->name()];
    slot->platform = t.platform->name();
  }
  auto& stats = *slot;
  t.stats = &stats;
  const bool first_boot = !t.counted_in_stats;
  if (first_boot) {
    // Distinct tenants, not boots: churn re-arrivals add boot/phase
    // samples but must not inflate the fleet-composition column.
    ++stats.tenants;
    t.counted_in_stats = true;
  }
  stats.boot_ms.add(sim::to_millis(t.outcome.boot_latency));
  report_.cluster_boot_ms.add(sim::to_millis(t.outcome.boot_latency));
  if (t.crash_fault >= 0) {
    // Recovery resolved: the victim is serving again on a survivor.
    // Time-to-re-place runs from the crash instant to this boot finishing.
    // Re-admission is counted here, not at the admitting arrival, so a
    // victim drain-migrated between admission and boot counts once.
    const double ms = sim::to_millis(
        t.clock.now() - faults_[static_cast<std::size_t>(t.crash_fault)].time);
    auto& rv = report_.recovery[static_cast<std::size_t>(
        recovery_slot_[static_cast<std::size_t>(t.crash_fault)])];
    rv.replace_ms.add(ms);
    ++rv.readmitted;
    ++report_.crash_readmitted;
    report_.replace_ms.add(ms);
    t.crash_fault = -1;
  }

  if (t.program >= 0) {
    // Program tenants interpret their syscall program instead of the drawn
    // statistical phases. The cursor is reset at *every* boot completion:
    // a crash or drain loses the in-flight cursor, and the re-admitted
    // tenant starts its program over from the top.
    const SyscallProgram& prog = builtin_program(t.program);
    ProgramFleetStats*& pslot =
        pstats_by_id_[static_cast<std::size_t>(t.program)];
    if (pslot == nullptr) {
      pslot = &report_.by_program[prog.name];
      pslot->program = prog.name;
    }
    t.pstats = pslot;
    if (first_boot) {
      ++pslot->tenants;
    }
    t.prog_op = 0;
    t.prog_loops_left = std::max(1, prog.loops);
    start_program_op(t, s);
    return;
  }

  if (t.phases.empty()) {
    queue_.push(t.clock.now(), t.id, EventKind::kTeardown, t.epoch);
    return;
  }
  start_phase(t, t.phases[static_cast<std::size_t>(t.next_phase)], s);
}

void FleetEngine::start_phase(Tenant& t, platforms::WorkloadClass w,
                              const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  sh.cpu_demand += workload_vcpus(w);
  if (w == WorkloadClass::kNetwork) {
    ++sh.net_active;
  }
  t.in_flight = Tenant::InFlight::kPhase;
  note_peaks(sh);
  t.phase_start = t.clock.now();
  t.clock.advance(phase_cost(t, w, s));
  queue_.push(t.clock.now(), t.id, EventKind::kPhaseDone, t.epoch);
}

void FleetEngine::handle_phase_done(Tenant& t, const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  const WorkloadClass w = t.phases[static_cast<std::size_t>(t.next_phase)];
  sh.cpu_demand -= workload_vcpus(w);
  if (w == WorkloadClass::kNetwork) {
    --sh.net_active;
  }
  t.in_flight = Tenant::InFlight::kNone;
  t.platform->record_workload(w, t.rng);  // this host's HAP window
  t.stats->phase_ms.add(sim::to_millis(t.clock.now() - t.phase_start));
  ++t.next_phase;
  ++t.outcome.phases_run;

  if (t.next_phase < static_cast<int>(t.phases.size())) {
    start_phase(t, t.phases[static_cast<std::size_t>(t.next_phase)], s);
    return;
  }
  // Teardown costs one more trace-visible startup-class interaction.
  t.platform->record_workload(WorkloadClass::kStartup, t.rng);
  t.clock.advance(sim::millis(t.rng.uniform(2.0, 8.0)));
  queue_.push(t.clock.now(), t.id, EventKind::kTeardown, t.epoch);
}

void FleetEngine::start_program_op(Tenant& t, const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  const SyscallProgram& prog = builtin_program(t.program);
  const ProgramOp& op = prog.ops[static_cast<std::size_t>(t.prog_op)];
  const OpClass cls = op_class(op.sc);
  t.prog_vcpus = op_vcpus(cls);
  sh.cpu_demand += t.prog_vcpus;
  if (cls == OpClass::kNetwork) {
    ++sh.net_active;
  }
  t.in_flight = Tenant::InFlight::kProgram;
  note_peaks(sh);
  t.phase_start = t.clock.now();
  // Service time excludes the think gap: the op-latency sample the report
  // percentiles come from is the modeled syscall (plus any retry timeouts
  // and backoffs), not the idle wait.
  const OpIssue issue = issue_program_op(t, op, s);
  t.prog_service = issue.service;
  note_op_outcome(t.id, issue);
  t.clock.advance(op.think);
  queue_.push(t.clock.now(), t.id, EventKind::kProgramStep, t.epoch);
}

FleetEngine::OpIssue FleetEngine::issue_program_op(Tenant& t,
                                                   const ProgramOp& op,
                                                   const Scenario& s) {
  OpIssue issue;
  const sim::Nanos slo = s.op_slo_ms;
  const int max_retries = op.max_retries > 0 ? op.max_retries
                                             : s.op_max_retries;
  const sim::Nanos backoff_base =
      op.backoff_base_ms > 0 ? op.backoff_base_ms : s.op_backoff_base_ms;
  const bool can_retry = degraded_accounting_ && max_retries > 0 && slo > 0;

  OpImpact first{};
  sim::Nanos cost = program_op_cost(t, op, s, &first);
  issue.fault = first.fault;
  // Undisturbed first-attempt cost: the baseline the issue's added-latency
  // sample is judged against.
  const sim::Nanos base0 = cost - first.added;
  sim::Nanos elapsed = 0;
  while (can_retry && cost > slo && issue.retries < max_retries) {
    // The attempt blew its budget: abandon it at the deadline, back off
    // exponentially (jitter from the tenant's own stream so replays are
    // exact), and re-issue. The re-issue recomputes the full cost — fresh
    // cache state, fresh contention, and for network ops a fresh peer
    // draw, which is what routes around a partial partition.
    const sim::Nanos backoff =
        (backoff_base << issue.retries) +
        static_cast<sim::Nanos>(t.rng.next_double() *
                                static_cast<double>(backoff_base));
    t.clock.advance(slo + backoff);
    elapsed += slo + backoff;
    ++issue.retries;
    OpImpact again{};
    cost = program_op_cost(t, op, s, &again);
    if (issue.fault < 0) {
      issue.fault = again.fault;
    }
  }
  t.clock.advance(cost);
  issue.service = elapsed + cost;
  // A give-up is a *final* attempt still past the budget: the op completes
  // late instead of failing, but the SLO is gone. With retries disabled
  // (the no-retry control) every over-budget op is a give-up.
  if (degraded_accounting_ && slo > 0 && cost > slo) {
    issue.give_up = true;
  }
  if (issue.fault >= 0) {
    issue.added_ms = sim::to_millis(issue.service - base0);
  }
  return issue;
}

void FleetEngine::note_op_outcome(std::uint64_t tenant_id,
                                  const OpIssue& issue) {
  if (!degraded_accounting_) {
    return;
  }
  report_.op_retries += issue.retries;
  if (issue.give_up) {
    ++report_.op_give_ups;
  }
  if (issue.fault < 0) {
    return;
  }
  const int slot = degraded_slot_[static_cast<std::size_t>(issue.fault)];
  if (slot < 0) {
    return;
  }
  auto& v = report_.degraded[static_cast<std::size_t>(slot)];
  degrade_affected_[static_cast<std::size_t>(slot)].insert(tenant_id);
  v.retries += issue.retries;
  if (issue.give_up) {
    ++v.give_ups;
  }
  if (issue.added_ms >= 0.0) {
    v.added_ms.add(issue.added_ms);
  }
}

sim::Nanos FleetEngine::program_op_cost(Tenant& t, const ProgramOp& op,
                                        const Scenario& s,
                                        OpImpact* impact) {
  (void)s;
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  // The kernel charge is the first-class part: every op dispatches through
  // HostKernel::invoke, so programs light up the same ftrace/HAP machinery
  // the statistical phases do — per *syscall*, not per workload class.
  sim::Nanos cost = sh.host->kernel().invoke(op.sc, t.rng, op.repeat);
  const OpClass cls = op_class(op.sc);
  const std::uint64_t payload =
      op.bytes * static_cast<std::uint64_t>(op.repeat);
  // Ops that actually reached the NVMe this issue; only those stretch
  // through a disk-degrade window (a cache-served read never notices a
  // slow device).
  bool touched_disk = false;
  switch (cls) {
    case OpClass::kFile:
      if (payload > 0 && !op_is_write(op.sc)) {
        // Reads walk the host page cache; only misses touch the NVMe.
        auto& cache = sh.host->page_cache();
        const std::uint64_t misses = cache.access_range(
            program_file_id(*this, t.id, t.program, op.shared_file), 0,
            payload);
        if (misses > 0) {
          cost += sh.host->nvme().read(misses * hostk::PageCache::kPageSize,
                                       t.rng);
          touched_disk = true;
        }
      }
      // Writes are buffered: they dirty the cache for free and pay the
      // device only when an explicit fsync flushes them.
      break;
    case OpClass::kSync:
      cost += sh.host->nvme().write(
          std::max<std::uint64_t>(payload, hostk::PageCache::kPageSize),
          t.rng);
      touched_disk = true;
      break;
    case OpClass::kMemory:
      if (payload > 0) {
        // mmap-backed data faults through the same cache/device path.
        auto& cache = sh.host->page_cache();
        const std::uint64_t misses = cache.access_range(
            program_file_id(*this, t.id, t.program, op.shared_file), 0,
            payload);
        if (misses > 0) {
          cost += sh.host->nvme().read(misses * hostk::PageCache::kPageSize,
                                       t.rng);
          touched_disk = true;
        }
      }
      break;
    case OpClass::kNetwork:
      if (payload > 0) {
        auto& nic = sh.host->nic();
        cost += nic.transfer_time(payload, t.rng) *
                    std::max(1, sh.net_active) +
                nic.latency(t.rng);
      }
      break;
    case OpClass::kOther:
      break;
  }
  auto total =
      static_cast<sim::Nanos>(static_cast<double>(cost) * sh.cpu_factor());
  if (touched_disk &&
      sh.rollup.host < static_cast<int>(degrades_.size())) {
    // Disk work progresses at 1/multiplier inside a degrade window: the
    // completion stretches by exactly the degraded share of the overlap.
    const sim::Nanos begin = t.clock.now();
    int dfault = -1;
    const sim::Nanos done = degraded_completion(
        degrades_[static_cast<std::size_t>(sh.rollup.host)], begin, total,
        &dfault);
    if (done != begin + total) {
      if (impact) {
        if (impact->fault < 0) {
          impact->fault = dfault;
        }
        impact->added += done - (begin + total);
      }
      total = done - begin;
    }
  }
  if (cls == OpClass::kNetwork && payload > 0) {
    // Same rule as statistical network phases: a partition freezes NIC
    // progress and the op stretches by exactly the window overlap.
    const sim::Nanos stalled =
        partition_stall(sh.rollup.host, t.clock.now(), total);
    if (stalled != total) {
      ++sh.rollup.nic_stalls;
      total = stalled;
    }
    if (!pairs_.empty()) {
      // Partial partitions cut host *pairs*: draw the far end uniformly
      // over the initial topology, self included (self = host-local
      // traffic that never crosses the cut). The op stalls only when the
      // drawn peer sits across an open cut — so a later re-issue's fresh
      // draw can route around it.
      const int n = static_cast<int>(pairs_.size());
      const int peer = std::min(
          n - 1, static_cast<int>(t.rng.next_double() *
                                  static_cast<double>(n)));
      const int host = sh.rollup.host;
      if (host < n && peer != host) {
        const sim::Nanos begin = t.clock.now();
        int pfault = -1;
        const sim::Nanos done = pair_stalled_completion(
            pairs_[static_cast<std::size_t>(host)], peer, begin, total,
            &pfault);
        if (done != begin + total) {
          ++sh.rollup.nic_stalls;
          if (impact) {
            if (impact->fault < 0) {
              impact->fault = pfault;
            }
            impact->added += done - (begin + total);
          }
          total = done - begin;
        }
      }
    }
  }
  return total;
}

void FleetEngine::handle_program_step(Tenant& t, const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  const SyscallProgram& prog = builtin_program(t.program);
  const ProgramOp& op = prog.ops[static_cast<std::size_t>(t.prog_op)];
  const OpClass cls = op_class(op.sc);
  sh.cpu_demand -= t.prog_vcpus;
  if (cls == OpClass::kNetwork) {
    --sh.net_active;
  }
  t.in_flight = Tenant::InFlight::kNone;
  auto& pcls = t.pstats->by_class[static_cast<std::size_t>(cls)];
  pcls.ops += op.repeat;
  pcls.op_ms.add(sim::to_millis(t.prog_service));
  ++t.outcome.phases_run;

  ++t.prog_op;
  if (t.prog_op < static_cast<int>(prog.ops.size())) {
    start_program_op(t, s);
    return;
  }
  t.prog_op = 0;
  if (--t.prog_loops_left > 0) {
    start_program_op(t, s);
    return;
  }
  // Teardown costs one more trace-visible startup-class interaction, same
  // as a statistical tenant's exit.
  t.platform->record_workload(WorkloadClass::kStartup, t.rng);
  t.clock.advance(sim::millis(t.rng.uniform(2.0, 8.0)));
  queue_.push(t.clock.now(), t.id, EventKind::kTeardown, t.epoch);
}

void FleetEngine::release_core(Shard& sh, Tenant& t) {
  switch (t.in_flight) {
    case Tenant::InFlight::kBoot:
      sh.cpu_demand -= kBootVcpus;
      break;
    case Tenant::InFlight::kPhase: {
      const WorkloadClass w = t.phases[static_cast<std::size_t>(t.next_phase)];
      sh.cpu_demand -= workload_vcpus(w);
      if (w == WorkloadClass::kNetwork) {
        --sh.net_active;
      }
      break;
    }
    case Tenant::InFlight::kProgram: {
      sh.cpu_demand -= t.prog_vcpus;
      const ProgramOp& op = builtin_program(t.program)
                                .ops[static_cast<std::size_t>(t.prog_op)];
      if (op_class(op.sc) == OpClass::kNetwork) {
        --sh.net_active;
      }
      break;
    }
    case Tenant::InFlight::kNone:
      break;
  }
  t.in_flight = Tenant::InFlight::kNone;
  if (t.ksm_registered) {
    sh.ksm.remove(t.id);
    sh.ksm.scan();
    t.ksm_registered = false;
  }
  sh.non_ksm_resident -= t.resident_bytes;
  t.resident_bytes = 0;
  --sh.active;
  --sh.tenants_by_platform[t.platform_id];
  t.holds_resources = false;
}

void FleetEngine::release_tenant(Shard& sh, Tenant& t) {
  const FleetDelta before = fleet_before(sh);
  release_core(sh, t);
  --active_;
  notify_platform_count(sh, t.platform_id);
  fleet_apply(sh, before);
}

void FleetEngine::publish_host(Shard& sh) {
  if (!incremental_placement_ || !sh.live) {
    return;
  }
  HostState state;
  state.index = sh.rollup.host;
  state.ram_cap_bytes = sh.ram_cap;
  state.resident_bytes = sh.resident_bytes();
  state.active_tenants = sh.active;
  state.pressure.cpu_demand = sh.cpu_demand;
  state.pressure.cpu_threads = sh.host->spec().cpu_threads;
  state.pressure.net_active = sh.net_active;
  policy_->host_updated(state);
}

void FleetEngine::notify_platform_count(Shard& sh, platforms::PlatformId id) {
  if (!incremental_placement_ || !sh.live) {
    return;
  }
  policy_->platform_count_changed(sh.rollup.host, id,
                                  sh.tenants_by_platform[id]);
}

void FleetEngine::handle_teardown(Tenant& t, const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  release_tenant(sh, t);
  t.outcome.completed = true;
  t.outcome.completion = t.clock.now();
  ++t.outcome.rounds_completed;
  ++report_.completed;

  if (t.rounds_left > 0) {
    // Churn: idle out the gap, then re-enter the fleet. Placement and
    // admission run again, so the tenant may land on a different host or
    // be rejected if the fleet filled up meanwhile. The outcome's
    // per-round fields restart here so a rejected re-arrival cannot keep
    // a stale completed/boot record from the previous round.
    --t.rounds_left;
    t.next_phase = 0;
    t.clock.advance(s.churn_gap);
    t.outcome.arrival = t.clock.now();
    t.outcome.boot_latency = 0;
    t.outcome.completion = 0;
    t.outcome.completed = false;
    ++report_.churn_rearrivals;
    queue_.push(t.clock.now(), t.id, EventKind::kArrival, t.epoch);
  }
}

// --- Mid-run topology changes ----------------------------------------------

int FleetEngine::live_host_count() const { return live_hosts_; }

double FleetEngine::resident_fraction() const {
  std::uint64_t cap = 0;
  std::uint64_t resident = 0;
  for (const Shard& sh : shards_) {
    if (!sh.live) {
      continue;
    }
    cap += sh.ram_cap;
    resident += sh.resident_bytes();
  }
  return cap == 0 ? 0.0
                  : static_cast<double>(resident) / static_cast<double>(cap);
}

int FleetEngine::pick_drain_host() const {
  int best = -1;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = shards_[i];
    if (!sh.live) {
      continue;
    }
    // Fewest active tenants = cheapest migration; ties drain the highest
    // index (the newest host), mirroring scale-out order.
    if (best < 0 || sh.active <= shards_[static_cast<std::size_t>(best)].active) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void FleetEngine::record_autoscale(sim::Nanos time, const std::string& action,
                                   int host, double fraction) {
  FleetReport::AutoscaleAction a;
  a.time = time;
  a.action = action;
  a.host = host;
  a.live_hosts = live_host_count();
  a.resident_fraction = fraction;
  report_.autoscale_timeline.push_back(std::move(a));
}

int FleetEngine::add_shard(const Scenario& s) {
  core::HostSystem* host = provisioner_->provision_host();
  const int index = static_cast<int>(shards_.size());
  shards_.emplace_back();
  Shard& sh = shards_.back();
  sh.host = host;
  init_shard(sh, index, s);
  // Mid-run hosts start observing from their birth instant, exactly like
  // run() does for the initial set before the event loop.
  sh.host->kernel().ftrace().start();
  sh.cache_hits0 = sh.host->page_cache().hits();
  sh.cache_misses0 = sh.host->page_cache().misses();
  sh.nvme_read0 = sh.host->nvme().bytes_read();
  ++live_hosts_;
  publish_host(sh);
  return index;
}

void FleetEngine::drain_shard(int index, const Scenario& s, sim::Nanos now) {
  Shard& sh = shards_[static_cast<std::size_t>(index)];
  if (!sh.live) {
    // Already drained or crashed — possibly earlier in this very timestamp
    // batch (a timed kDrain racing a same-instant crash). Draining a dead
    // host twice would re-release its tenants and corrupt every counter.
    return;
  }
  sh.live = false;
  --live_hosts_;
  sh.rollup.drained = true;
  if (incremental_placement_) {
    policy_->host_removed(index);
  }
  // Re-place every tenant this host still held, as churn-style
  // re-arrivals: resources released here and now, a fresh arrival event
  // queued at the drain instant, placement + admission deciding again.
  // Bumping the epoch discards the tenant's already-queued events.
  for (Tenant& t : tenants_) {
    if (t.host != index || !t.holds_resources) {
      continue;
    }
    release_tenant(sh, t);
    ++t.epoch;
    t.next_phase = 0;
    t.clock = sim::Clock(now);
    t.outcome.arrival = now;
    t.outcome.boot_latency = 0;
    t.outcome.completion = 0;
    t.outcome.completed = false;
    ++report_.drain_migrations;
    queue_.push(now, t.id, EventKind::kArrival, t.epoch);
  }
  if (provisioner_ != nullptr) {
    provisioner_->retire_host(index);
  }
  (void)s;
}

void FleetEngine::handle_host_event(const Event& e, const Scenario& s) {
  const HostEvent& he = s.host_events[static_cast<std::size_t>(e.tenant)];
  if (he.kind == HostEvent::Kind::kAdd) {
    if (provisioner_ == nullptr) {
      return;  // a bare engine cannot grow; the hook is a no-op
    }
    const double fraction = resident_fraction();
    const int index = add_shard(s);
    record_autoscale(e.time, "add", index, fraction);
    return;
  }
  int target = he.host;
  if (target < 0) {
    target = pick_drain_host();
  }
  if (target < 0 || target >= static_cast<int>(shards_.size()) ||
      !shards_[static_cast<std::size_t>(target)].live ||
      live_host_count() <= 1) {
    return;  // never drain the last live host or a dead index
  }
  const double fraction = resident_fraction();
  drain_shard(target, s, e.time);
  record_autoscale(e.time, "drain", target, fraction);
}

void FleetEngine::handle_autoscale_eval(sim::Nanos now, const Scenario& s) {
  const AutoscaleSpec& a = s.autoscale;
  const double fraction = resident_fraction();
  const bool cooled = !has_scaled_ || now - last_scale_ >= a.cooldown_ms;
  if (cooled) {
    const int live = live_host_count();
    if (fraction > a.scale_out_watermark && live < a.max_hosts &&
        provisioner_ != nullptr) {
      const int index = add_shard(s);
      record_autoscale(now, "scale-out", index, fraction);
      has_scaled_ = true;
      last_scale_ = now;
    } else if (fraction < a.scale_in_watermark && live > a.min_hosts) {
      const int target = pick_drain_host();
      if (target >= 0) {
        drain_shard(target, s, now);
        record_autoscale(now, "scale-in", target, fraction);
        has_scaled_ = true;
        last_scale_ = now;
      }
    }
  }
  // Keep evaluating while any tenant activity remains; when this eval was
  // the only queued event, the loop (and the run) is over.
  if (!queue_.empty()) {
    queue_.push(now + a.eval_interval, 0, EventKind::kAutoscaleEval);
  }
}

// --- Fault injection ---------------------------------------------------------

void FleetEngine::handle_fault(const Event& e, const Scenario& s) {
  const ResolvedFault& f = faults_[e.tenant];
  if (e.kind == EventKind::kDegradeStart) {
    // KSM unmerge storm (kMemPressure is the only kind that queues these):
    // every merged page on the target hosts re-expands to its backing copy
    // at this instant, and the stable tree re-merges only at the window-end
    // scan — or early, by a hypervisor admission's scan pass. The resident
    // spike is real RAM pressure: it can trip admission and the autoscale
    // watermark, which is exactly the degraded-mode story.
    const int slot = degraded_slot_[static_cast<std::size_t>(f.id)];
    auto& dv = report_.degraded[static_cast<std::size_t>(slot)];
    for (const int h : f.hosts) {
      Shard& sh = shards_[static_cast<std::size_t>(h)];
      if (!sh.live) {
        continue;
      }
      const FleetDelta before = fleet_before(sh);
      const std::uint64_t pages = sh.ksm.unmerge();
      fleet_apply(sh, before);
      dv.resident_spike_bytes += pages * kFleetPageBytes;
      note_peaks(sh);
      publish_host(sh);
    }
    for (const Tenant& t : tenants_) {
      if (!t.holds_resources || !t.ksm_registered) {
        continue;
      }
      for (const int h : f.hosts) {
        if (t.host == h) {
          degrade_affected_[static_cast<std::size_t>(slot)].insert(t.id);
          break;
        }
      }
    }
    return;
  }
  if (e.kind == EventKind::kDegradeEnd) {
    // Window closes: one scan pass re-merges whatever survived on the
    // stable tree. Merging only shrinks resident, but the barrier (and the
    // republish) keeps placement pressure honest at every thread count.
    for (const int h : f.hosts) {
      Shard& sh = shards_[static_cast<std::size_t>(h)];
      if (!sh.live) {
        continue;
      }
      const FleetDelta before = fleet_before(sh);
      sh.ksm.scan();
      fleet_apply(sh, before);
      publish_host(sh);
    }
    return;
  }
  if (e.kind == EventKind::kPartitionEnd) {
    // Heal instant. The stall itself is precomputed from the immutable
    // window list; this event exists as a parallel-loop barrier (NIC
    // behavior changes across it) and to keep the queue's timeline honest.
    return;
  }
  // Every crash-family fault pushes exactly one verdict at its start
  // event; recovery_slot_ maps the fault id to that verdict for all later
  // bookkeeping (degrade-family faults own DegradeVerdicts instead, so
  // recovery is not indexable by fault id).
  FleetReport::RecoveryVerdict v;
  v.fault = f.id;
  v.rack = f.rack;
  v.time = f.time;
  if (e.kind == EventKind::kPartitionStart) {
    v.kind = "partition";
    v.duration = f.duration;
    for (const int h : f.hosts) {
      if (shards_[static_cast<std::size_t>(h)].live) {
        v.hosts.push_back(h);
      }
    }
    recovery_slot_[static_cast<std::size_t>(f.id)] =
        static_cast<int>(report_.recovery.size());
    report_.recovery.push_back(std::move(v));
    return;
  }
  // A cell outage resolves to every initial host (chaos.h) and otherwise
  // follows crash semantics; the verdict keeps its own kind so a federation
  // (and the report reader) can tell total loss from a single-host crash.
  v.kind = f.kind == Fault::Kind::kCellOutage ? "cell-outage" : "crash";
  // Per-fault restart-jitter stream: victims draw from it in tenant-id
  // order, never from their own RNGs, so victim workloads replay
  // identically after the crash.
  sim::Rng frng(s.seed ^ (0xC8A5'0000'0000'0000ull +
                          static_cast<std::uint64_t>(f.id)));
  for (const int h : f.hosts) {
    if (!shards_[static_cast<std::size_t>(h)].live) {
      continue;  // already drained or crashed, possibly this same instant
    }
    v.hosts.push_back(h);
    crash_shard(h, f, e.time, frng, v);
  }
  report_.crash_victims += v.victims;
  report_.boots_lost += v.boots_lost;
  recovery_slot_[static_cast<std::size_t>(f.id)] =
      static_cast<int>(report_.recovery.size());
  report_.recovery.push_back(std::move(v));
}

void FleetEngine::crash_shard(int index, const ResolvedFault& f,
                              sim::Nanos now, sim::Rng& frng,
                              FleetReport::RecoveryVerdict& v) {
  Shard& sh = shards_[static_cast<std::size_t>(index)];
  const FleetDelta before = fleet_before(sh);
  sh.live = false;
  --live_hosts_;
  sh.rollup.crashed = true;
  if (incremental_placement_) {
    policy_->host_removed(index);
  }
  // Victims die mid-phase: unlike a graceful drain there is no per-tenant
  // release — their in-flight CPU/NIC demand vanishes with the host, and
  // the host's KSM stable tree and page cache are lost wholesale below.
  // Each victim re-arrives on the survivors after the fault's restart
  // delay plus a per-victim jitter draw, facing placement + admission
  // again; bumping the epoch discards its already-queued events.
  for (Tenant& t : tenants_) {
    if (t.host != index || !t.holds_resources) {
      continue;
    }
    if (t.in_flight == Tenant::InFlight::kBoot) {
      // Crash-during-boot: the partial boot dies with the host. Nothing
      // carries over — the re-arrival faces admission again and starts a
      // fresh boot against a cold image cache.
      ++v.boots_lost;
    }
    t.in_flight = Tenant::InFlight::kNone;
    t.ksm_registered = false;  // its tree registration dies with the host
    t.resident_bytes = 0;
    t.holds_resources = false;
    --active_;
    ++t.epoch;
    t.next_phase = 0;
    const sim::Nanos rearrive =
        now + f.restart_delay +
        static_cast<sim::Nanos>(frng.next_double() *
                                static_cast<double>(f.restart_jitter));
    t.clock = sim::Clock(rearrive);
    t.outcome.arrival = rearrive;
    t.outcome.boot_latency = 0;
    t.outcome.completion = 0;
    t.outcome.completed = false;
    t.crash_fault = f.id;
    ++v.victims;
    queue_.push(rearrive, t.id, EventKind::kArrival, t.epoch);
  }
  // The host state dies wholesale: cold page cache, empty stable tree,
  // every activity counter zeroed. fleet_apply folds the loss into the
  // incremental fleet counters exactly (set_peak_audit checks this).
  sh.ksm = mem::Ksm{};
  sh.host->page_cache().drop_caches();
  sh.non_ksm_resident = 0;
  sh.active = 0;
  sh.net_active = 0;
  sh.cpu_demand = 0.0;
  sh.tenants_by_platform.clear();
  fleet_apply(sh, before);
  if (provisioner_ != nullptr) {
    provisioner_->retire_host(index);
  }
}

sim::Nanos FleetEngine::partition_stall(int host, sim::Nanos start,
                                        sim::Nanos duration) const {
  // Hosts added mid-run sit past the initial topology and are never
  // partition targets, so indexing can simply bounds-check.
  if (partitions_.empty() || host >= static_cast<int>(partitions_.size())) {
    return duration;
  }
  const auto& windows = partitions_[static_cast<std::size_t>(host)];
  if (windows.empty()) {
    return duration;
  }
  return stalled_completion(windows, start, duration) - start;
}

void FleetEngine::note_crash_loss(Tenant& t) {
  if (t.crash_fault < 0) {
    return;
  }
  const int slot = recovery_slot_[static_cast<std::size_t>(t.crash_fault)];
  ++report_.recovery[static_cast<std::size_t>(slot)].lost;
  ++report_.crash_lost;
  // Stamp the outcome (as the *verdict index*, what an outer reader can
  // actually look up) so a router (fleet::Federation) can identify which
  // fault stranded this tenant and re-route it to another cell.
  t.outcome.lost_to_fault = slot;
  t.crash_fault = -1;  // recovery resolved: permanently lost
}


sim::Nanos FleetEngine::phase_cost(Tenant& t, WorkloadClass w,
                                   const Scenario& s) {
  Shard& sh = shards_[static_cast<std::size_t>(t.host)];
  // Lognormal around the scenario mean (mu = -sigma^2/2 keeps E[X] = mean).
  constexpr double kSigma = 0.35;
  const double base_ms =
      sim::to_millis(s.mean_phase_duration) *
      t.rng.lognormal(-kSigma * kSigma / 2.0, kSigma);
  const sim::Nanos base = sim::millis(base_ms);

  sim::Nanos cost = 0;
  switch (w) {
    case WorkloadClass::kCpu: {
      const auto& cpu = t.platform->cpu_profile();
      const double factor = 0.7 * cpu.scalar_factor + 0.3 * cpu.simd_factor;
      cost = static_cast<sim::Nanos>(static_cast<double>(base) * factor);
      break;
    }
    case WorkloadClass::kMemory: {
      const auto& mp = t.platform->memory_profile();
      const double bw = std::max(0.05, mp.bandwidth_factor);
      cost = static_cast<sim::Nanos>(static_cast<double>(base) / bw);
      break;
    }
    case WorkloadClass::kIo: {
      auto& cache = sh.host->page_cache();
      const std::uint64_t misses = cache.access_range(
          0xD47A'0000ull + t.id, 0, s.io_bytes_per_phase);
      sim::Nanos io_ns = 0;
      if (misses > 0) {
        io_ns =
            sh.host->nvme().read(misses * hostk::PageCache::kPageSize, t.rng);
      }
      cost = base / 5 + io_ns;
      break;
    }
    case WorkloadClass::kNetwork: {
      auto& nic = sh.host->nic();
      const sim::Nanos wire =
          nic.transfer_time(s.net_bytes_per_phase, t.rng) *
          std::max(1, sh.net_active);
      cost = base / 10 + wire + nic.latency(t.rng);
      break;
    }
    case WorkloadClass::kStartup:
      cost = base / 10;
      break;
  }
  auto total =
      static_cast<sim::Nanos>(static_cast<double>(cost) * sh.cpu_factor());
  if (w == WorkloadClass::kNetwork) {
    // A partition freezes NIC progress: the phase completion stretches by
    // exactly the window overlap. Computed from the immutable per-run
    // window list at scheduling time, so it is identical at every thread
    // count. t.clock.now() is still the phase start here — start_phase
    // advances the clock by this function's return value.
    const sim::Nanos stalled =
        partition_stall(sh.rollup.host, t.clock.now(), total);
    if (stalled != total) {
      ++sh.rollup.nic_stalls;
      total = stalled;
    }
  }
  return total;
}

void FleetEngine::init_shard(Shard& sh, int index, const Scenario& s) {
  sh.live = true;
  sh.ksm = mem::Ksm{};
  sh.platforms.clear();
  sh.active = 0;
  sh.net_active = 0;
  sh.cpu_demand = 0.0;
  sh.non_ksm_resident = 0;
  sh.ram_cap = s.host_ram_override_bytes != 0 ? s.host_ram_override_bytes
                                              : sh.host->spec().ram_bytes;
  sh.tenants_by_platform.clear();
  sh.rollup = HostRollup{};
  sh.rollup.host = index;
  // One shared platform instance per distinct id in the mix.
  for (const auto& share : s.platform_mix) {
    if (sh.platforms.find(share.id) == sh.platforms.end()) {
      sh.platforms[share.id] =
          platforms::PlatformFactory::create(share.id, *sh.host);
    }
  }
}

void FleetEngine::process_event(const Event& e, const Scenario& s,
                                const std::vector<sim::Nanos>& arrivals,
                                sim::Nanos& last_event) {
  ++report_.events_processed;
  global_clock_.advance_to(e.time);
  if (e.kind == EventKind::kHostEvent) {
    handle_host_event(e, s);
    return;
  }
  if (e.kind == EventKind::kAutoscaleEval) {
    handle_autoscale_eval(e.time, s);
    return;
  }
  if (e.kind == EventKind::kHostCrash || e.kind == EventKind::kPartitionStart ||
      e.kind == EventKind::kPartitionEnd ||
      e.kind == EventKind::kDegradeStart ||
      e.kind == EventKind::kDegradeEnd) {
    handle_fault(e, s);
    return;
  }
  Tenant& t = tenants_[e.tenant];
  if (e.epoch != t.epoch) {
    return;  // canceled by a drain migration; superseded lifecycle
  }
  last_event = e.time;  // makespan tracks tenant activity, not evals
  switch (e.kind) {
    case EventKind::kArrival:
      handle_arrival(t, s);
      break;
    case EventKind::kBootPhys:
      handle_boot_phys(t, s);
      break;
    case EventKind::kBootDone:
      handle_boot_done(t, s);
      break;
    case EventKind::kPhaseDone:
      handle_phase_done(t, s);
      break;
    case EventKind::kProgramStep:
      handle_program_step(t, s);
      break;
    case EventKind::kTeardown:
      handle_teardown(t, s);
      break;
    case EventKind::kHostEvent:
    case EventKind::kAutoscaleEval:
    case EventKind::kHostCrash:
    case EventKind::kPartitionStart:
    case EventKind::kPartitionEnd:
    case EventKind::kDegradeStart:
    case EventKind::kDegradeEnd:
      break;  // handled above
  }
  if (incremental_placement_) {
    // One state push for the shard this event touched. A rejected
    // arrival changed nothing, so re-publishing the tenant's previous
    // shard is a harmless (and cheap) no-op upsert.
    publish_host(shards_[static_cast<std::size_t>(t.host)]);
  }
  if (e.kind == EventKind::kArrival &&
      e.tenant == static_cast<std::uint64_t>(arrival_cursor_)) {
    // That was the cursor tenant's initial arrival (re-arrivals always
    // carry a smaller id): seed the next one — or, once the density
    // latch has tripped, reject the whole unseeded tail in bulk. Each
    // of those arrivals would have been one queue round-trip ending in
    // the pre-placement latch check; the outcome (admitted = false, one
    // fleet-level rejection, no host consulted) is identical, only the
    // per-tenant event cost disappears.
    ++arrival_cursor_;
    // Bound by the materialized population (arrivals), not s.tenant_count:
    // an explicit routed population may be any size.
    const int tenant_count = static_cast<int>(arrivals.size());
    if (arrival_cursor_ < tenant_count) {
      if (s.stop_at_first_oom && report_.first_oom_tenant >= 0) {
        for (int i = arrival_cursor_; i < tenant_count; ++i) {
          tenants_[static_cast<std::size_t>(i)].outcome.admitted = false;
          ++report_.rejected;
        }
        latched_tail_ = true;
        latched_tail_time_ = arrivals.back();
        arrival_cursor_ = tenant_count;
      } else {
        queue_.push_at_seq(
            arrivals[static_cast<std::size_t>(arrival_cursor_)],
            arrival_seq_base_ + static_cast<std::uint64_t>(arrival_cursor_),
            static_cast<std::uint64_t>(arrival_cursor_),
            EventKind::kArrival);
      }
    }
  }
}

bool FleetEngine::use_parallel(const Scenario& s) const {
  // Parallelism is across shards; a single fixed host has nothing to fan
  // out. Churn with a non-positive gap would make the conservative window
  // (bounded by churn_gap ahead of the earliest possible re-arrival)
  // empty, so such runs stay sequential.
  return s.threads > 1 && shards_.size() > 1 &&
         !(s.churn_rounds > 0 && s.churn_gap <= 0);
}

FleetReport FleetEngine::run(const Scenario& s) {
  if (s.platform_mix.empty() || s.workload_mix.empty()) {
    throw std::invalid_argument(
        "FleetEngine::run: scenario needs a platform mix and a workload mix");
  }
  if (s.phases_per_tenant <= 0) {
    // Zero phases would silently draw no workload at all and tear every
    // tenant down straight out of boot — a mis-specified scenario, not a
    // meaningful population.
    throw std::invalid_argument(
        "FleetEngine::run: phases_per_tenant must be positive");
  }
  if (s.op_max_retries < 0) {
    throw std::invalid_argument(
        "FleetEngine::run: op_max_retries must be non-negative");
  }
  if (s.op_max_retries > 0 && s.op_backoff_base_ms <= 0) {
    throw std::invalid_argument(
        "FleetEngine::run: op_max_retries needs a positive op_backoff_base_ms");
  }
  if (s.op_max_retries > 0 && s.op_slo_ms <= 0) {
    // Retries time out at the op SLO; without a budget there is nothing to
    // retry against and the knob would silently do nothing.
    throw std::invalid_argument(
        "FleetEngine::run: op_max_retries needs a positive op_slo_ms");
  }
  for (const ProgramShare& share : s.program_mix) {
    if (share.weight <= 0.0) {
      throw std::invalid_argument(
          "FleetEngine::run: program_mix weights must be positive");
    }
    if (share.program < -1 || share.program >= builtin_program_count()) {
      throw std::invalid_argument(
          "FleetEngine::run: program_mix references an unknown program (use "
          "-1 for the statistical share)");
    }
    if (share.program >= 0) {
      // Per-op retry knobs are validated only for reachable programs: the
      // builtin table is static, but the knobs compose with scenario-wide
      // defaults, so what is malformed depends on this scenario.
      for (const ProgramOp& op : builtin_program(share.program).ops) {
        if (op.max_retries < 0) {
          throw std::invalid_argument(
              "FleetEngine::run: program op max_retries must be "
              "non-negative");
        }
        if (op.max_retries > 0 && op.backoff_base_ms <= 0 &&
            s.op_backoff_base_ms <= 0) {
          throw std::invalid_argument(
              "FleetEngine::run: program op max_retries needs a positive "
              "backoff_base_ms (op-level or scenario-wide)");
        }
        if (op.max_retries > 0 && s.op_slo_ms <= 0) {
          throw std::invalid_argument(
              "FleetEngine::run: program op max_retries needs a positive "
              "op_slo_ms");
        }
      }
    }
  }
  if (shards_.size() > 1 && policy_ == nullptr) {
    throw std::invalid_argument(
        "FleetEngine::run: cluster runs need a placement policy");
  }
  if (s.autoscale.enabled && s.autoscale.eval_interval <= 0) {
    // A non-advancing evaluation would re-queue itself at the same instant
    // forever, ahead of every tenant event.
    throw std::invalid_argument(
        "FleetEngine::run: autoscale.eval_interval must be positive");
  }
  // Up-front validation and fault resolution (chaos.h): out-of-range host
  // indices, negative times and malformed racks throw here with a clear
  // message instead of corrupting state deep in the event loop.
  validate_host_events(s, static_cast<int>(shards_.size()));
  for (std::size_t i = 1; i < s.population.size(); ++i) {
    // The lazy arrival seeding below assumes arrival order; a router hands
    // cells populations it keeps sorted, so a violation is a caller bug.
    if (s.population[i].arrival < s.population[i - 1].arrival) {
      throw std::invalid_argument(
          "FleetEngine::run: explicit population must be sorted by arrival");
    }
  }
  faults_ = resolve_faults(s, static_cast<int>(shards_.size()));
  partitions_ =
      build_partition_windows(faults_, static_cast<int>(shards_.size()));
  degrades_ = build_degrade_windows(faults_, static_cast<int>(shards_.size()));
  pairs_ = build_pair_windows(faults_, static_cast<int>(shards_.size()));
  queue_ = EventQueue{};
  report_ = FleetReport{};
  report_.scenario = s.name;
  report_.seed = s.seed;
  // Runs that start single-host but may grow (autoscale, host events) need
  // the policy name too; plain single-host runs keep it empty so their
  // to_text() stays byte-identical to the pinned goldens.
  if (policy_ != nullptr &&
      (shards_.size() > 1 || s.autoscale.enabled || !s.host_events.empty())) {
    report_.placement = policy_->name();
  }
  report_.boot_slo_ms = s.boot_slo_ms;
  report_.replace_slo_ms = s.replace_slo_ms;
  report_.op_slo_ms = s.op_slo_ms;
  // Degraded-mode setup. Verdicts for degrade-family faults are created up
  // front in fault-id order: disk and pair degrades queue no events at all
  // (their windows are precomputed), so ops can be disturbed before any
  // event for the fault would have popped. Accounting is live only when a
  // degrade fault is scheduled or retries are enabled — otherwise no
  // counter moves and no extra RNG draw happens, keeping every pre-existing
  // scenario byte-identical.
  recovery_slot_.assign(faults_.size(), -1);
  degraded_slot_.assign(faults_.size(), -1);
  degrade_affected_.clear();
  degraded_accounting_ = s.op_max_retries > 0;
  for (const ProgramShare& share : s.program_mix) {
    if (share.program < 0) {
      continue;
    }
    for (const ProgramOp& op : builtin_program(share.program).ops) {
      if (op.max_retries > 0) {
        degraded_accounting_ = true;
      }
    }
  }
  for (const ResolvedFault& f : faults_) {
    if (!is_degrade_kind(f.kind)) {
      continue;
    }
    degraded_accounting_ = true;
    degraded_slot_[static_cast<std::size_t>(f.id)] =
        static_cast<int>(report_.degraded.size());
    FleetReport::DegradeVerdict dv;
    dv.fault = f.id;
    dv.kind = f.kind == Fault::Kind::kDiskDegrade    ? "disk-degrade"
              : f.kind == Fault::Kind::kMemPressure  ? "mem-pressure"
                                                     : "partial-partition";
    dv.rack = f.rack;
    dv.time = f.time;
    dv.duration = f.duration;
    dv.hosts = f.hosts;
    dv.peer = f.peer;
    dv.multiplier = f.kind == Fault::Kind::kDiskDegrade ? f.degrade : 0.0;
    report_.degraded.push_back(std::move(dv));
    degrade_affected_.emplace_back();
  }
  tenants_.clear();
  global_clock_.reset();
  active_ = 0;
  last_scale_ = 0;
  has_scaled_ = false;
  fleet_resident_ = 0;
  fleet_ksm_advised_ = 0;
  fleet_ksm_backing_ = 0;
  fleet_ksm_shared_ = 0;
  peak_audit_failed_ = false;
  latched_tail_ = false;
  latched_tail_time_ = 0;
  // Runs that can shard (now or mid-run) defer boot physics to kBootPhys
  // events so the parallel loop can execute them on shard workers. The
  // flag is fixed per run — both loops see the same event flow, which is
  // what keeps reports byte-identical across thread counts. Plain
  // single-host runs keep the inline flow the pinned goldens expect.
  deferred_boot_ = shards_.size() > 1 || s.autoscale.enabled ||
                   !s.host_events.empty() || s.faults.enabled();
  live_hosts_ = static_cast<int>(shards_.size());
  stats_by_id_.fill(nullptr);
  pstats_by_id_.fill(nullptr);
  if (policy_ != nullptr) {
    policy_->reset();
  }
  incremental_placement_ = policy_ != nullptr && policy_->incremental();

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    init_shard(shards_[i], static_cast<int>(i), s);
  }
  for (Shard& sh : shards_) {
    publish_host(sh);
  }

  // The population: either the scenario carries an explicit pre-drawn one
  // (a federation router's per-cell subset, already in arrival order) or we
  // draw tenant_count tenants from the seed. draw_population() is the
  // engine's historical inline draw hoisted onto TrafficSpec, so the drawn
  // path is byte-identical to what this loop used to produce.
  std::vector<TenantSeed> drawn;
  if (s.population.empty()) {
    drawn = s.draw_population();
  }
  const std::vector<TenantSeed>& pop = s.population.empty() ? drawn
                                                            : s.population;
  const int tenant_count = static_cast<int>(pop.size());

  std::vector<sim::Nanos> arrivals;
  arrivals.reserve(pop.size());
  for (const TenantSeed& seed : pop) {
    arrivals.push_back(seed.arrival);
  }

  for (Shard& sh : shards_) {
    sh.host->kernel().ftrace().start();
  }

  tenants_.reserve(pop.size());
  for (int i = 0; i < tenant_count; ++i) {
    const TenantSeed& seed = pop[static_cast<std::size_t>(i)];
    tenants_.emplace_back();
    Tenant& t = tenants_.back();
    t.id = static_cast<std::uint64_t>(i);
    t.platform_id = seed.platform_id;
    // Named from shard 0's instance here; re-bound to the placed shard's
    // instance at every (re-)arrival.
    t.platform = shards_.front().platforms.at(t.platform_id).get();
    t.rng = seed.rng;
    t.clock = sim::Clock(seed.arrival);
    t.rounds_left = s.churn_rounds;
    t.phases = seed.phases;
    t.outcome.id = t.id;
    t.outcome.platform_id = t.platform_id;
    t.outcome.arrival = seed.arrival;
    t.program = seed.program;
  }
  // Arrivals are seeded lazily — only the next initial arrival sits in the
  // queue — so a tripped density-stop latch can reject the unseeded tail
  // in bulk instead of paying one event per post-latch tenant. Reserving
  // the whole seq block up front keeps every event's (time, seq) key, and
  // therefore all tie-breaking, identical to an eagerly seeded queue.
  arrival_seq_base_ =
      queue_.reserve_seqs(static_cast<std::uint64_t>(tenant_count));
  arrival_cursor_ = 0;
  if (tenant_count > 0) {
    queue_.push_at_seq(arrivals.front(), arrival_seq_base_, 0,
                       EventKind::kArrival);
  }

  // Topology-change events share the one global deterministic queue with
  // tenant events, so autoscaled runs stay byte-reproducible.
  for (std::size_t i = 0; i < s.host_events.size(); ++i) {
    queue_.push(s.host_events[i].time, static_cast<std::uint64_t>(i),
                EventKind::kHostEvent);
  }
  if (s.autoscale.enabled) {
    queue_.push(s.autoscale.eval_interval, 0, EventKind::kAutoscaleEval);
  }
  // Fault events ride the same global queue. Pushed in id (= time) order,
  // so fault start events pop in id order and each pushes recovery[id].
  for (const ResolvedFault& f : faults_) {
    const auto id = static_cast<std::uint64_t>(f.id);
    if (f.kind == Fault::Kind::kPartition) {
      queue_.push(f.time, id, EventKind::kPartitionStart);
      queue_.push(f.time + f.duration, id, EventKind::kPartitionEnd);
    } else if (f.kind == Fault::Kind::kMemPressure) {
      // The only degrade kind that mutates shard state (the KSM unmerge
      // storm and its re-merge), so the only one that needs events; disk
      // degrades and partial partitions act purely through the immutable
      // precomputed windows.
      queue_.push(f.time, id, EventKind::kDegradeStart);
      queue_.push(f.time + f.duration, id, EventKind::kDegradeEnd);
    } else if (f.kind == Fault::Kind::kDiskDegrade ||
               f.kind == Fault::Kind::kPartialPartition) {
      // No events: the windows are already in degrades_/pairs_.
    } else {
      // kCrash and kCellOutage both ride the crash event; the resolved
      // fault's host list (one host vs. the whole topology) is the split.
      queue_.push(f.time, id, EventKind::kHostCrash);
    }
  }

  for (Shard& sh : shards_) {
    sh.cache_hits0 = sh.host->page_cache().hits();
    sh.cache_misses0 = sh.host->page_cache().misses();
    sh.nvme_read0 = sh.host->nvme().bytes_read();
  }

  sim::Nanos first_arrival = arrivals.empty() ? 0 : arrivals.front();
  sim::Nanos last_event = first_arrival;
  if (use_parallel(s)) {
    run_loop_parallel(s, arrivals, last_event);
  } else {
    while (!queue_.empty()) {
      process_event(queue_.pop(), s, arrivals, last_event);
    }
  }
  if (latched_tail_) {
    // The bulk-rejected arrivals never became events; without this the
    // makespan would stop at the last *processed* event instead of the
    // last arrival, as the eager queue reported it.
    last_event = std::max(last_event, latched_tail_time_);
  }

  report_.hosts.reserve(shards_.size());
  for (Shard& sh : shards_) {
    sh.host->kernel().ftrace().stop();
    const auto& ftrace = sh.host->kernel().ftrace();
    sh.rollup.hap.distinct_functions = ftrace.distinct_functions();
    sh.rollup.hap.total_invocations = ftrace.total_invocations();
    const auto& registry = sh.host->kernel().registry();
    for (const auto& [fn, count] : ftrace.counts()) {
      (void)count;
      sh.rollup.hap.extended_hap += epss_.score(registry.function(fn));
    }
    sh.rollup.ksm.enabled = s.enable_ksm;
    sh.rollup.page_cache_hits = sh.host->page_cache().hits() - sh.cache_hits0;
    sh.rollup.page_cache_misses =
        sh.host->page_cache().misses() - sh.cache_misses0;
    sh.rollup.nvme_bytes_read = sh.host->nvme().bytes_read() - sh.nvme_read0;

    report_.hap.distinct_functions += sh.rollup.hap.distinct_functions;
    report_.hap.total_invocations += sh.rollup.hap.total_invocations;
    report_.hap.extended_hap += sh.rollup.hap.extended_hap;
    report_.page_cache_hits += sh.rollup.page_cache_hits;
    report_.page_cache_misses += sh.rollup.page_cache_misses;
    report_.nvme_bytes_read += sh.rollup.nvme_bytes_read;
    report_.nic_stalls += sh.rollup.nic_stalls;
    report_.hosts.push_back(sh.rollup);
  }

  report_.ksm.enabled = s.enable_ksm;
  report_.makespan = last_event - first_arrival;
  report_.final_host_count = live_host_count();

  report_.tenants.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    report_.tenants.push_back(t.outcome);
  }
  for (std::size_t i = 0; i < report_.degraded.size(); ++i) {
    report_.degraded[i].affected =
        static_cast<int>(degrade_affected_[i].size());
  }
  return report_;
}

}  // namespace fleet
