#include "fleet/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleet {

namespace {

using platforms::PlatformId;
using platforms::WorkloadClass;

/// KSM granularity for fleet guest RAM: 2 MiB (THP-sized) units keep the
/// stable tree small enough to rescan on every admission decision.
constexpr std::uint64_t kFleetPageBytes = 2ull << 20;

/// Fraction of a guest's RAM that stays untouched (zero pages) and merges
/// across every tenant once KSM scans it.
constexpr double kZeroPageFraction = 0.35;

/// vCPUs a tenant demands while booting / per workload class.
constexpr double kBootVcpus = 2.0;

double workload_vcpus(WorkloadClass w) {
  switch (w) {
    case WorkloadClass::kCpu:
      return 2.0;
    case WorkloadClass::kMemory:
      return 1.0;
    case WorkloadClass::kIo:
    case WorkloadClass::kNetwork:
      return 0.5;
    case WorkloadClass::kStartup:
      return 1.0;
  }
  return 1.0;
}

/// Host RSS of the virtualization layer itself (device model, Sentry, ...).
std::uint64_t platform_overhead_bytes(PlatformId id) {
  switch (id) {
    case PlatformId::kQemuKvm:
      return 192ull << 20;
    case PlatformId::kKataContainers:
      return 160ull << 20;
    case PlatformId::kCloudHypervisor:
      return 48ull << 20;
    case PlatformId::kFirecracker:
      return 32ull << 20;
    case PlatformId::kOsvQemu:
      return 96ull << 20;
    case PlatformId::kOsvFirecracker:
      return 24ull << 20;
    case PlatformId::kGvisor:
      return 64ull << 20;
    case PlatformId::kNative:
    case PlatformId::kDocker:
    case PlatformId::kLxc:
      return 8ull << 20;
  }
  return 0;
}

std::uint64_t image_file_id(PlatformId id) {
  return 0xF1EE'0000ull + static_cast<std::uint64_t>(id);
}

/// Digest runs for one hypervisor tenant's guest RAM at kFleetPageBytes
/// granularity: a merged-everywhere zero-page run, a per-image run that
/// merges across tenants of the same platform, and a tenant-private run.
/// Three PageRuns describe the whole guest — no per-page vector ever
/// materializes, and the KSM stable tree ingests each run as one interval.
std::vector<mem::PageRun> guest_page_runs(std::uint64_t tenant,
                                          PlatformId platform,
                                          std::uint64_t guest_ram_bytes,
                                          std::uint64_t image_bytes) {
  const std::uint64_t total = std::max<std::uint64_t>(
      1, guest_ram_bytes / kFleetPageBytes);
  const auto zero_units = static_cast<std::uint64_t>(
      static_cast<double>(total) * kZeroPageFraction);
  const std::uint64_t image_units =
      std::min(total - zero_units, image_bytes / kFleetPageBytes);
  const std::uint64_t private_units = total - zero_units - image_units;
  return {
      {0x2E80'0000'0000'0000ull, zero_units},  // zero pages: global
      {0xBA5E'0000'0000'0000ull + (static_cast<std::uint64_t>(platform) << 32),
       image_units},
      {0x7E4A'0000'0000'0000ull + (tenant << 24) + zero_units + image_units,
       private_units},
  };
}

}  // namespace

bool is_hypervisor_backed(PlatformId id) {
  switch (id) {
    case PlatformId::kQemuKvm:
    case PlatformId::kFirecracker:
    case PlatformId::kCloudHypervisor:
    case PlatformId::kKataContainers:
    case PlatformId::kOsvQemu:
    case PlatformId::kOsvFirecracker:
      return true;
    case PlatformId::kNative:
    case PlatformId::kDocker:
    case PlatformId::kLxc:
    case PlatformId::kGvisor:
      return false;
  }
  return false;
}

double FleetEngine::cpu_factor() const {
  const double threads = static_cast<double>(host_->spec().cpu_threads);
  return std::max(1.0, cpu_demand_ / threads);
}

std::uint64_t FleetEngine::resident_bytes() const {
  return non_ksm_resident_ + ksm_.backing_pages() * kFleetPageBytes;
}

void FleetEngine::note_peaks() {
  report_.peak_active = std::max(report_.peak_active, active_);
  report_.peak_cpu_demand = std::max(
      report_.peak_cpu_demand,
      cpu_demand_ / static_cast<double>(host_->spec().cpu_threads));
  const std::uint64_t resident = resident_bytes();
  if (resident >= report_.peak_resident_bytes) {
    report_.peak_resident_bytes = resident;
    // Snapshot density at the high-water mark; teardowns later drain the
    // stable tree, so end-of-run numbers would always read empty.
    report_.ksm.advised_pages = ksm_.advised_pages();
    report_.ksm.backing_pages = ksm_.backing_pages();
    report_.ksm.density_gain = ksm_.density_gain();
    report_.ksm.shared_fraction = ksm_.shared_fraction();
  }
}

bool FleetEngine::admit(Tenant& t, const Scenario& s) {
  const std::uint64_t overhead = platform_overhead_bytes(t.platform_id);
  if (is_hypervisor_backed(t.platform_id) && s.enable_ksm) {
    ksm_.advise_runs(t.id, guest_page_runs(t.id, t.platform_id,
                                           s.guest_ram_bytes, s.image_bytes));
    ksm_.scan();
    t.resident_bytes = overhead;
    if (resident_bytes() + overhead > host_ram_cap_) {
      ksm_.remove(t.id);
      ksm_.scan();
      return false;
    }
    t.ksm_registered = true;
  } else {
    // Hypervisor guests without KSM reserve full guest RAM; namespace-
    // backed tenants only pay their process RSS.
    t.resident_bytes = is_hypervisor_backed(t.platform_id)
                           ? overhead + s.guest_ram_bytes
                           : overhead + s.guest_ram_bytes / 4;
    if (resident_bytes() + t.resident_bytes > host_ram_cap_) {
      return false;
    }
  }
  non_ksm_resident_ += t.resident_bytes;
  return true;
}

void FleetEngine::handle_arrival(Tenant& t, const Scenario& s) {
  const bool dense_stop =
      s.stop_at_first_oom && report_.first_oom_tenant >= 0;
  if (dense_stop || !admit(t, s)) {
    if (report_.first_oom_tenant < 0) {
      report_.first_oom_tenant = static_cast<std::int64_t>(t.id);
    }
    t.outcome.admitted = false;
    ++report_.rejected;
    return;
  }
  t.outcome.admitted = true;
  ++report_.admitted;
  ++active_;
  cpu_demand_ += kBootVcpus;
  note_peaks();

  // Boot: the platform's sampled end-to-end sequence plus pulling the boot
  // image through the shared host page cache, both stretched by CPU
  // contention across the fleet.
  const sim::Nanos arrival = t.clock.now();
  t.platform->boot(t.clock, t.rng);
  const sim::Nanos boot_ns = t.clock.now() - arrival;

  auto& cache = host_->page_cache();
  const std::uint64_t misses =
      cache.access_range(image_file_id(t.platform_id), 0, s.image_bytes);
  sim::Nanos image_ns = 0;
  if (misses > 0) {
    image_ns = host_->nvme().read(misses * hostk::PageCache::kPageSize, t.rng);
  } else {
    image_ns = sim::micros(50);  // fully cache-resident image
  }

  const auto total = static_cast<sim::Nanos>(
      static_cast<double>(boot_ns + image_ns) * cpu_factor());
  t.clock.advance_to(arrival + total);
  t.outcome.boot_latency = total;
  queue_.push(arrival + total, t.id, EventKind::kBootDone);
}

void FleetEngine::handle_boot_done(Tenant& t, const Scenario& s) {
  cpu_demand_ -= kBootVcpus;
  // One string-keyed lookup per tenant, here; phases reuse the cached
  // pointer. Creating the entry lazily (not at tenant setup) keeps
  // platforms whose tenants never booted out of the report table.
  auto& stats = report_.by_platform[t.platform->name()];
  t.stats = &stats;
  stats.platform = t.platform->name();
  ++stats.tenants;
  stats.boot_ms.add(sim::to_millis(t.outcome.boot_latency));

  if (t.phases.empty()) {
    queue_.push(t.clock.now(), t.id, EventKind::kTeardown);
    return;
  }
  start_phase(t, t.phases[static_cast<std::size_t>(t.next_phase)], s);
}

void FleetEngine::start_phase(Tenant& t, platforms::WorkloadClass w,
                              const Scenario& s) {
  cpu_demand_ += workload_vcpus(w);
  if (w == WorkloadClass::kNetwork) {
    ++net_active_;
  }
  note_peaks();
  t.phase_start = t.clock.now();
  t.clock.advance(phase_cost(t, w, s));
  queue_.push(t.clock.now(), t.id, EventKind::kPhaseDone);
}

void FleetEngine::handle_phase_done(Tenant& t, const Scenario& s) {
  const WorkloadClass w = t.phases[static_cast<std::size_t>(t.next_phase)];
  cpu_demand_ -= workload_vcpus(w);
  if (w == WorkloadClass::kNetwork) {
    --net_active_;
  }
  t.platform->record_workload(w, t.rng);  // fleet-wide HAP window
  t.stats->phase_ms.add(sim::to_millis(t.clock.now() - t.phase_start));
  ++t.next_phase;
  ++t.outcome.phases_run;

  if (t.next_phase < static_cast<int>(t.phases.size())) {
    start_phase(t, t.phases[static_cast<std::size_t>(t.next_phase)], s);
    return;
  }
  // Teardown costs one more trace-visible startup-class interaction.
  t.platform->record_workload(WorkloadClass::kStartup, t.rng);
  t.clock.advance(sim::millis(t.rng.uniform(2.0, 8.0)));
  queue_.push(t.clock.now(), t.id, EventKind::kTeardown);
}

void FleetEngine::handle_teardown(Tenant& t, const Scenario&) {
  if (t.ksm_registered) {
    ksm_.remove(t.id);
    ksm_.scan();
    t.ksm_registered = false;
  }
  non_ksm_resident_ -= t.resident_bytes;
  t.resident_bytes = 0;
  --active_;
  t.outcome.completed = true;
  t.outcome.completion = t.clock.now();
  ++report_.completed;
}

sim::Nanos FleetEngine::phase_cost(Tenant& t, WorkloadClass w,
                                   const Scenario& s) {
  // Lognormal around the scenario mean (mu = -sigma^2/2 keeps E[X] = mean).
  constexpr double kSigma = 0.35;
  const double base_ms =
      sim::to_millis(s.mean_phase_duration) *
      t.rng.lognormal(-kSigma * kSigma / 2.0, kSigma);
  const sim::Nanos base = sim::millis(base_ms);

  sim::Nanos cost = 0;
  switch (w) {
    case WorkloadClass::kCpu: {
      const auto& cpu = t.platform->cpu_profile();
      const double factor = 0.7 * cpu.scalar_factor + 0.3 * cpu.simd_factor;
      cost = static_cast<sim::Nanos>(static_cast<double>(base) * factor);
      break;
    }
    case WorkloadClass::kMemory: {
      const auto& mp = t.platform->memory_profile();
      const double bw = std::max(0.05, mp.bandwidth_factor);
      cost = static_cast<sim::Nanos>(static_cast<double>(base) / bw);
      break;
    }
    case WorkloadClass::kIo: {
      auto& cache = host_->page_cache();
      const std::uint64_t misses = cache.access_range(
          0xD47A'0000ull + t.id, 0, s.io_bytes_per_phase);
      sim::Nanos io_ns = 0;
      if (misses > 0) {
        io_ns = host_->nvme().read(misses * hostk::PageCache::kPageSize, t.rng);
      }
      cost = base / 5 + io_ns;
      break;
    }
    case WorkloadClass::kNetwork: {
      auto& nic = host_->nic();
      const sim::Nanos wire =
          nic.transfer_time(s.net_bytes_per_phase, t.rng) *
          std::max(1, net_active_);
      cost = base / 10 + wire + nic.latency(t.rng);
      break;
    }
    case WorkloadClass::kStartup:
      cost = base / 10;
      break;
  }
  return static_cast<sim::Nanos>(static_cast<double>(cost) * cpu_factor());
}

FleetReport FleetEngine::run(const Scenario& s) {
  if (s.platform_mix.empty() || s.workload_mix.empty()) {
    throw std::invalid_argument(
        "FleetEngine::run: scenario needs a platform mix and a workload mix");
  }
  queue_ = EventQueue{};
  report_ = FleetReport{};
  report_.scenario = s.name;
  report_.seed = s.seed;
  tenants_.clear();
  ksm_ = mem::Ksm{};
  global_clock_.reset();
  active_ = 0;
  net_active_ = 0;
  cpu_demand_ = 0.0;
  non_ksm_resident_ = 0;
  host_ram_cap_ = s.host_ram_override_bytes != 0 ? s.host_ram_override_bytes
                                                 : host_->spec().ram_bytes;

  sim::Rng rng(s.seed);

  // One shared platform instance per distinct id in the mix.
  platforms_.clear();
  double mix_total = 0.0;
  for (const auto& share : s.platform_mix) {
    mix_total += share.weight;
    if (platforms_.find(share.id) == platforms_.end()) {
      platforms_[share.id] =
          platforms::PlatformFactory::create(share.id, *host_);
    }
  }
  double workload_total = 0.0;
  for (const auto& share : s.workload_mix) {
    workload_total += share.weight;
  }

  const auto pick_platform = [&](sim::Rng& r) {
    double x = r.next_double() * mix_total;
    for (const auto& share : s.platform_mix) {
      x -= share.weight;
      if (x <= 0.0) {
        return share.id;
      }
    }
    return s.platform_mix.back().id;
  };
  const auto pick_workload = [&](sim::Rng& r) {
    double x = r.next_double() * workload_total;
    for (const auto& share : s.workload_mix) {
      x -= share.weight;
      if (x <= 0.0) {
        return share.workload;
      }
    }
    return s.workload_mix.back().workload;
  };

  // Draw arrival times, then seed the queue in arrival order.
  std::vector<sim::Nanos> arrivals;
  arrivals.reserve(static_cast<std::size_t>(s.tenant_count));
  sim::Nanos poisson_t = 0;
  for (int i = 0; i < s.tenant_count; ++i) {
    switch (s.arrival) {
      case ArrivalPattern::kStorm:
        arrivals.push_back(static_cast<sim::Nanos>(
            rng.next_double() * static_cast<double>(s.arrival_window)));
        break;
      case ArrivalPattern::kRamp:
        arrivals.push_back(s.tenant_count <= 1
                               ? 0
                               : s.arrival_window * i / (s.tenant_count - 1));
        break;
      case ArrivalPattern::kPoisson:
        poisson_t += sim::seconds(
            rng.exponential(std::max(1e-9, s.arrival_rate_per_sec)));
        arrivals.push_back(poisson_t);
        break;
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  host_->kernel().ftrace().start();

  tenants_.reserve(static_cast<std::size_t>(s.tenant_count));
  for (int i = 0; i < s.tenant_count; ++i) {
    tenants_.emplace_back();
    Tenant& t = tenants_.back();
    t.id = static_cast<std::uint64_t>(i);
    t.platform_id = pick_platform(rng);
    t.platform = platforms_.at(t.platform_id).get();
    t.rng = rng.fork();
    t.clock = sim::Clock(arrivals[static_cast<std::size_t>(i)]);
    t.phases.reserve(static_cast<std::size_t>(s.phases_per_tenant));
    for (int p = 0; p < s.phases_per_tenant; ++p) {
      t.phases.push_back(pick_workload(t.rng));
    }
    t.outcome.id = t.id;
    t.outcome.platform = t.platform->name();
    t.outcome.arrival = arrivals[static_cast<std::size_t>(i)];
    queue_.push(arrivals[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i),
                EventKind::kArrival);
  }

  const std::uint64_t cache_hits0 = host_->page_cache().hits();
  const std::uint64_t cache_miss0 = host_->page_cache().misses();
  const std::uint64_t nvme_read0 = host_->nvme().bytes_read();

  sim::Nanos first_arrival = arrivals.empty() ? 0 : arrivals.front();
  sim::Nanos last_event = first_arrival;
  while (!queue_.empty()) {
    const Event e = queue_.pop();
    ++report_.events_processed;
    global_clock_.advance_to(e.time);
    last_event = e.time;
    Tenant& t = tenants_[e.tenant];
    switch (e.kind) {
      case EventKind::kArrival:
        handle_arrival(t, s);
        break;
      case EventKind::kBootDone:
        handle_boot_done(t, s);
        break;
      case EventKind::kPhaseDone:
        handle_phase_done(t, s);
        break;
      case EventKind::kTeardown:
        handle_teardown(t, s);
        break;
    }
  }

  host_->kernel().ftrace().stop();
  const auto& ftrace = host_->kernel().ftrace();
  report_.hap.distinct_functions = ftrace.distinct_functions();
  report_.hap.total_invocations = ftrace.total_invocations();
  const auto& registry = host_->kernel().registry();
  for (const auto& [fn, count] : ftrace.counts()) {
    (void)count;
    report_.hap.extended_hap += epss_.score(registry.function(fn));
  }

  report_.ksm.enabled = s.enable_ksm;

  report_.page_cache_hits = host_->page_cache().hits() - cache_hits0;
  report_.page_cache_misses = host_->page_cache().misses() - cache_miss0;
  report_.nvme_bytes_read = host_->nvme().bytes_read() - nvme_read0;
  report_.makespan = last_event - first_arrival;

  report_.tenants.reserve(tenants_.size());
  for (const Tenant& t : tenants_) {
    report_.tenants.push_back(t.outcome);
  }
  return report_;
}

}  // namespace fleet
