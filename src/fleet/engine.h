// FleetEngine: executes a Scenario against one or more core::HostSystem
// shards.
//
// The engine is the mechanism side of the policy/mechanism split: it merges
// N per-tenant sim::Clock timelines through a deterministic priority event
// queue (event_queue.h) into one global virtual timeline, and charges every
// tenant's activity to its *shard's* host models — page cache and NVMe for
// boot images and I/O phases, the NIC for network phases, KSM for
// hypervisor guest RAM, and the host kernel's ftrace for the per-host
// attack-surface rollup. Contention is modeled analytically per shard: CPU
// demand above a host's thread count stretches every in-flight duration on
// that host, and concurrent network phases share that host's NIC line rate.
//
// Cluster runs (fleet::Cluster, cluster.h) hand the engine M host shards
// plus a PlacementPolicy consulted once per arrival; the single global
// event queue keeps cross-host runs byte-reproducible. Single-host runs
// are the M=1 special case and produce byte-identical reports to the
// pre-cluster engine (pinned by tests/fleet_golden_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/host_system.h"
#include "fleet/chaos.h"
#include "fleet/event_queue.h"
#include "fleet/placement.h"
#include "fleet/program.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "hap/epss.h"
#include "mem/ksm.h"
#include "platforms/factory.h"
#include "sim/clock.h"
#include "sim/rng.h"

namespace fleet {

/// True for platforms whose tenants reserve full guest RAM (and can be
/// KSM-deduplicated); false for namespace-backed tenants that only pay
/// their process RSS.
bool is_hypervisor_backed(platforms::PlatformId id);

/// Supplies fresh hosts for mid-run scale-out and observes drains.
/// fleet::Cluster implements this; a bare FleetEngine without one simply
/// cannot grow (scale-out requests are ignored).
class HostProvisioner {
 public:
  virtual ~HostProvisioner() = default;
  /// Create one more host (deterministic per-host RNG seed derived from
  /// its index) and return it; the engine builds a shard around it. The
  /// host must stay alive for the rest of the run.
  virtual core::HostSystem* provision_host() = 0;
  /// The engine drained this host index (its tenants were re-placed).
  virtual void retire_host(int index) { (void)index; }
};

class FleetEngine {
 public:
  explicit FleetEngine(core::HostSystem& host);

  /// Cluster mode: shard tenants across `hosts` with `policy` (non-owning;
  /// must outlive the engine). A policy is required when hosts.size() > 1.
  /// `provisioner` (optional, non-owning) enables mid-run scale-out.
  FleetEngine(const std::vector<core::HostSystem*>& hosts,
              PlacementPolicy* policy,
              HostProvisioner* provisioner = nullptr);

  /// Run one scenario to completion and return its report. Deterministic
  /// given (scenario, fresh hosts): the engine derives every random stream
  /// from scenario.seed, and placement consults no RNG.
  FleetReport run(const Scenario& scenario);

  /// Test hook: re-derive the fleet-resident and fleet-KSM sums from every
  /// shard at each peak check and compare them against the incremental
  /// counters note_peaks actually uses. A mismatch latches peak_audit_ok()
  /// to false. Costs O(M) per admission again, so tests only.
  void set_peak_audit(bool on) { peak_audit_ = on; }
  bool peak_audit_ok() const { return !peak_audit_failed_; }

 private:
  struct Tenant {
    std::uint64_t id = 0;
    platforms::PlatformId platform_id = platforms::PlatformId::kNative;
    platforms::Platform* platform = nullptr;
    /// Cached &report_.by_platform[platform->name()], resolved once per
    /// boot completion (std::map nodes are pointer-stable) so per-phase
    /// accounting skips the string-keyed lookup.
    PlatformFleetStats* stats = nullptr;
    sim::Clock clock;
    sim::Rng rng{0};
    std::vector<platforms::WorkloadClass> phases;
    int next_phase = 0;
    int host = 0;         // shard index assigned at (re-)arrival
    int rounds_left = 0;  // churn re-admissions still owed
    sim::Nanos phase_start = 0;
    TenantOutcome outcome;
    std::uint64_t resident_bytes = 0;  // non-KSM-managed share
    bool ksm_registered = false;
    bool counted_in_stats = false;  // already in its platform's tenant count
    /// What demand the tenant currently charges its shard, so a drain can
    /// release it exactly (a boot's kBootVcpus, a phase's vcpus + NIC slot,
    /// a program op's op_vcpus + NIC slot).
    enum class InFlight {
      kNone,
      kBoot,
      kPhase,
      kProgram
    } in_flight = InFlight::kNone;
    /// Built-in syscall program this tenant interprets (fleet/program.h);
    /// -1 = statistical phases. Copied from the TenantSeed.
    int program = -1;
    /// Interpreter cursor: current op index and whole-list repetitions
    /// still owed. Both reset when a boot completes, so a crash victim's
    /// re-boot restarts its program from the top (the cursor is lost with
    /// the host).
    int prog_op = 0;
    int prog_loops_left = 0;
    /// Demand and service time of the in-flight op, stashed so the
    /// completion (and a drain/crash release) undoes and records exactly
    /// what the start charged. Service excludes the op's think gap.
    double prog_vcpus = 0.0;
    sim::Nanos prog_service = 0;
    /// Cached &report_.by_program[...] slot, resolved at boot completion
    /// like `stats` (std::map nodes are pointer-stable).
    ProgramFleetStats* pstats = nullptr;
    /// Admitted and not yet released (teardown or drain migration).
    bool holds_resources = false;
    /// CPU contention factor captured at the admitting arrival, applied by
    /// the deferred kBootPhys event (cluster-capable runs only).
    double boot_factor = 1.0;
    /// Lifecycle generation; bumped by a drain migration to invalidate the
    /// tenant's already-queued events.
    std::uint32_t epoch = 0;
    /// Fault id whose crash killed this tenant; -1 outside recovery. Set
    /// when a crash re-injects the victim's arrival, cleared when the
    /// recovery resolves (re-boot served -> replace_ms sample, or
    /// rejection -> permanently lost).
    int crash_fault = -1;
  };

  /// Per-host mechanism state: one HostSystem plus everything the engine
  /// charges against it. Single-host runs have exactly one shard.
  struct Shard {
    core::HostSystem* host = nullptr;
    /// False once drained: excluded from placement snapshots and admission
    /// walks; its rollup stays in the report.
    bool live = true;
    mem::Ksm ksm;
    std::unordered_map<platforms::PlatformId,
                       std::unique_ptr<platforms::Platform>>
        platforms;
    int active = 0;      // admitted, not yet torn down
    int net_active = 0;  // tenants currently in a network phase
    double cpu_demand = 0.0;  // vCPUs demanded by in-flight activity
    std::uint64_t non_ksm_resident = 0;
    std::uint64_t ram_cap = 0;
    /// Active tenants per platform, feeding HostView::same_platform_tenants.
    std::unordered_map<platforms::PlatformId, int> tenants_by_platform;
    HostRollup rollup;
    std::uint64_t cache_hits0 = 0;   // host-model counters at run start
    std::uint64_t cache_misses0 = 0;
    std::uint64_t nvme_read0 = 0;

    /// Resident bytes actually charged against this host's RAM right now.
    std::uint64_t resident_bytes() const;

    /// CPU contention multiplier at this host's current activity.
    double cpu_factor() const;
  };

  // Lifecycle handlers.
  void handle_arrival(Tenant& t, const Scenario& s);
  void handle_boot_phys(Tenant& t, const Scenario& s);
  void handle_boot_done(Tenant& t, const Scenario& s);
  void handle_phase_done(Tenant& t, const Scenario& s);
  void handle_teardown(Tenant& t, const Scenario& s);

  /// The boot's shard-local physics: platform boot sampling, the image
  /// pull through the shard's page cache / NVMe, contention stretching by
  /// `factor`. Advances t.clock, sets t.outcome.boot_latency, returns the
  /// completion instant. Shared verbatim by the inline single-host path
  /// (factor = the shard's live cpu_factor) and the deferred kBootPhys
  /// path (factor captured at the arrival).
  sim::Nanos boot_physics(Shard& sh, Tenant& t, const Scenario& s,
                          double factor);

  /// Hard floor on a boot's total duration. Physically it never binds (the
  /// image term alone is >= 50us); it exists so a deferred boot's kBootDone
  /// provably lands at least this far after its kBootPhys, which is the
  /// horizon the parallel lane pipeline runs ahead on.
  static constexpr sim::Nanos kBootFloorNs = 50'000;

  /// Begin tenant t's next workload phase: account its demand, charge its
  /// cost, and schedule the completion event.
  void start_phase(Tenant& t, platforms::WorkloadClass w, const Scenario& s);

  /// Begin the program op at t.prog_op: account its demand, dispatch it
  /// through the host kernel and the shard's device models, and schedule
  /// the kProgramStep completion.
  void start_program_op(Tenant& t, const Scenario& s);
  /// One program op completed: release its demand, record the latency
  /// sample into the per-program rollup, and advance the interpreter
  /// cursor (next op, next loop, or the teardown path).
  void handle_program_step(Tenant& t, const Scenario& s);

  /// How a degrade-family fault disturbed one op issue, reported by
  /// program_op_cost for DegradeVerdict attribution.
  struct OpImpact {
    int fault = -1;        // first disturbing fault id; -1 = undisturbed
    sim::Nanos added = 0;  // completion delay vs the undisturbed cost
  };

  /// Virtual duration of one program op: HostKernel::invoke (CPU cost +
  /// ftrace hits) plus payload physics on the shard's page cache / NVMe /
  /// NIC, stretched by CPU contention; network ops wait out partition
  /// windows by exact overlap, disk-touching ops stretch through degrade
  /// windows, and network ops draw a peer that may sit across a partial
  /// partition. Shard-local, so window workers may call it. `impact`
  /// (optional) receives the degrade attribution.
  sim::Nanos program_op_cost(Tenant& t, const ProgramOp& op,
                             const Scenario& s, OpImpact* impact = nullptr);

  /// Outcome of one op *issue* (the retry loop around program_op_cost):
  /// how many re-issues it took, whether it still blew the SLO with
  /// retries exhausted, and which fault gets the ledger entry. Computed
  /// identically on the sequential path and window workers.
  struct OpIssue {
    sim::Nanos service = 0;  // total issue latency: timeouts+backoffs+final
    int fault = -1;          // degrade fault attributed (first disturber)
    int retries = 0;
    bool give_up = false;
    double added_ms = -1.0;  // < 0: no added-latency sample
  };

  /// Run the retry/backoff loop for the op at t.prog_op: compute the cost,
  /// and while it would blow the op SLO with retries left, time out at the
  /// budget, back off exponentially (jitter from t.rng) and re-issue.
  /// Advances t.clock through the whole issue (timeouts, backoffs, and the
  /// final attempt); the caller adds only the op's think gap.
  OpIssue issue_program_op(Tenant& t, const ProgramOp& op, const Scenario& s);

  /// Fold one issue's outcome into the fleet totals and its fault's
  /// DegradeVerdict. Coordinator-only: the sequential path calls it from
  /// start_program_op, the parallel path from replay_record.
  void note_op_outcome(std::uint64_t tenant_id, const OpIssue& issue);

  /// Admission control against the tenant's shard: would its resident set
  /// still fit? Read-only on rejection — KSM fit is decided by
  /// mem::Ksm::probe_runs, and only an accepted host mutates its tree.
  bool admit(Shard& sh, Tenant& t, const Scenario& s);

  /// Fill ranked_ with the live-host candidate walk for an arriving
  /// tenant: the policy's ranking in cluster mode, the single live shard
  /// otherwise. Legacy (snapshot + sort) path — incremental policies are
  /// walked lazily instead (see handle_arrival).
  void rank_candidates(const Tenant& t, const Scenario& s);

  /// Push one live shard's current state to an incremental policy (no-op
  /// otherwise). Called after every event that changed the shard.
  void publish_host(Shard& sh);

  /// Tell an incremental policy that `sh`'s tenant count for `id` moved.
  void notify_platform_count(Shard& sh, platforms::PlatformId id);

  /// Shard-local half of a release: in-flight CPU/NIC demand, KSM
  /// registration, resident bytes, the shard's active counters. Touches
  /// nothing fleet-global, so window workers may call it; the deltas it
  /// causes are recorded and replayed by the coordinator.
  void release_core(Shard& sh, Tenant& t);

  /// Release everything tenant t currently charges against shard sh, plus
  /// the fleet-global bookkeeping (active_, placement notification, fleet
  /// counters). Shared by teardown and drain migration on the sequential
  /// path.
  void release_tenant(Shard& sh, Tenant& t);

  // Mid-run topology changes.
  int add_shard(const Scenario& s);
  void drain_shard(int index, const Scenario& s, sim::Nanos now);
  int pick_drain_host() const;  // fewest active tenants, ties: highest index
  int live_host_count() const;
  void record_autoscale(sim::Nanos time, const std::string& action, int host,
                        double resident_fraction);
  double resident_fraction() const;  // over live hosts
  void handle_host_event(const Event& e, const Scenario& s);
  void handle_autoscale_eval(sim::Nanos now, const Scenario& s);

  // Fault injection (chaos.h). Coordinator-only: every fault kind is a
  // barrier in the parallel loop, so these never race a window worker.
  void handle_fault(const Event& e, const Scenario& s);
  /// Kill every tenant on shard `index`: release their in-flight demand,
  /// drop the host's page cache and KSM stable tree wholesale, retire the
  /// host from placement, and re-inject the victims as jittered arrivals.
  void crash_shard(int index, const ResolvedFault& f, sim::Nanos now,
                   sim::Rng& frng, FleetReport::RecoveryVerdict& v);
  /// Stretch of a NIC-bound completion by the host's partition windows;
  /// `duration` unchanged when none overlap. Reads only immutable per-run
  /// state, so window workers may call it.
  sim::Nanos partition_stall(int host, sim::Nanos start,
                             sim::Nanos duration) const;
  /// Recovery bookkeeping when a crash victim's re-arrival is rejected:
  /// the tenant is permanently lost. (Re-admission is counted where the
  /// re-boot completes — handle_boot_done / replay_record — so a victim
  /// drain-migrated mid-recovery is never double-counted.)
  void note_crash_loss(Tenant& t);

  /// Virtual duration of one workload phase, including platform profile
  /// scaling and charges to the shard's host models.
  sim::Nanos phase_cost(Tenant& t, platforms::WorkloadClass w,
                        const Scenario& s);

  void note_peaks(Shard& sh);

  /// Shard-local slice of note_peaks: the shard rollup's peak-active and
  /// peak-resident/KSM snapshot. Safe on window workers (one worker owns a
  /// shard at a time); the fleet-global slice stays coordinator-only.
  void note_shard_peaks(Shard& sh);

  /// Set up a freshly constructed or reset shard for this run: KSM tree,
  /// platform instances for the scenario mix, RAM cap, rollup identity.
  void init_shard(Shard& sh, int index, const Scenario& s);

  std::vector<Shard> shards_;
  PlacementPolicy* policy_ = nullptr;  // non-owning; required when M > 1
  HostProvisioner* provisioner_ = nullptr;  // non-owning; enables scale-out
  EventQueue queue_;
  sim::Clock global_clock_;
  /// Dense tenant table: ids are assigned 0..N-1, so the event loop indexes
  /// directly instead of hashing per event.
  std::vector<Tenant> tenants_;
  std::vector<HostView> views_;  // recycled placement snapshot storage
  std::vector<int> ranked_;      // recycled candidate-walk storage
  std::vector<mem::PageRun> run_scratch_;  // recycled guest-run storage
  hap::EpssModel epss_;
  FleetReport report_;

  /// True when policy_ maintains host orderings incrementally: the engine
  /// pushes state deltas instead of building per-arrival snapshots, and
  /// the admission walk pulls candidates lazily in O(log M) each.
  bool incremental_placement_ = false;

  /// by_platform stats resolved once per PlatformId instead of one
  /// string-keyed map lookup per boot (ids and names are 1:1 per run).
  static constexpr std::size_t kPlatformIdSlots = 16;
  static_assert(static_cast<std::size_t>(
                    platforms::PlatformId::kOsvFirecracker) <
                    kPlatformIdSlots,
                "grow kPlatformIdSlots when adding PlatformId enumerators");
  std::array<PlatformFleetStats*, kPlatformIdSlots> stats_by_id_{};

  /// by_program stats resolved once per built-in program id, mirroring
  /// stats_by_id_.
  static constexpr std::size_t kProgramIdSlots = 8;
  std::array<ProgramFleetStats*, kProgramIdSlots> pstats_by_id_{};

  /// Lazy arrival seeding: only the next initial arrival sits in the queue
  /// (with a pre-reserved seq so same-timestamp tie order is unchanged).
  /// When the density-stop latch trips, the unseeded tail is rejected in
  /// bulk without paying one event per tenant.
  int arrival_cursor_ = 0;          // tenant whose initial arrival is queued
  std::uint64_t arrival_seq_base_ = 0;
  bool latched_tail_ = false;       // bulk-rejected a post-latch tail
  sim::Nanos latched_tail_time_ = 0;  // last (bulk-rejected) arrival time

  int active_ = 0;  // fleet-wide admitted, not yet torn down
  sim::Nanos last_scale_ = 0;  // virtual time of the last autoscale action
  bool has_scaled_ = false;

  /// Resolved fault schedule for this run (chaos.h); empty when the
  /// scenario injects none. Written once before the loop starts, immutable
  /// after — worker threads read faults_/partitions_ freely.
  std::vector<ResolvedFault> faults_;
  /// Per-host partition windows (initial-topology indices only; hosts
  /// added mid-run are never partition targets).
  std::vector<std::vector<PartitionWindow>> partitions_;
  /// Per-host disk-degrade and partial-partition windows (chaos.h), built
  /// next to partitions_ and equally immutable — worker threads read them
  /// without synchronization. Both empty when no fault of that kind is
  /// scheduled, so fault-free runs pay (and draw) nothing.
  std::vector<std::vector<DegradeWindow>> degrades_;
  std::vector<std::vector<PairWindow>> pairs_;
  /// Fault id -> index into report_.recovery (crash kinds) or
  /// report_.degraded (degrade kinds); -1 for the other family. Neither
  /// verdict vector is indexable by fault id once the families interleave
  /// in one schedule.
  std::vector<int> recovery_slot_;
  std::vector<int> degraded_slot_;
  /// Degraded accounting is live for this run: a degrade-family fault is
  /// scheduled, or retries are enabled scenario-wide or on any reachable
  /// program op. Gates every retry/give-up counter and the extra RNG draws
  /// behind them, so pre-existing scenarios stay byte-identical.
  bool degraded_accounting_ = false;
  /// Distinct tenants disturbed per degraded verdict (coordinator-only;
  /// parallel runs insert during replay). Finalized into
  /// DegradeVerdict::affected at run end.
  std::vector<std::set<std::uint64_t>> degrade_affected_;
  /// Live shard count, maintained at add/drain/crash so the per-arrival
  /// zero-live-hosts check is O(1) instead of an O(M) scan.
  int live_hosts_ = 0;

  /// Fleet-wide resident/KSM sums, maintained incrementally at the only
  /// two mutation sites (admit and release_tenant) instead of re-summed
  /// over every shard per admission — the last O(M)-per-admission piece.
  /// Integer arithmetic, so note_peaks' peak snapshot is bit-identical to
  /// the summed form (set_peak_audit checks exactly that).
  std::uint64_t fleet_resident_ = 0;
  std::uint64_t fleet_ksm_advised_ = 0;
  std::uint64_t fleet_ksm_backing_ = 0;
  std::uint64_t fleet_ksm_shared_ = 0;

  /// Capture a shard's resident/KSM state before a mutation and fold the
  /// delta into the fleet counters after it (unsigned wraparound makes
  /// add-new-subtract-old exact for shrinking deltas too).
  struct FleetDelta {
    std::uint64_t resident, advised, backing, shared;
  };
  FleetDelta fleet_before(const Shard& sh) const;
  void fleet_apply(const Shard& sh, const FleetDelta& before);

  bool peak_audit_ = false;
  bool peak_audit_failed_ = false;

  // --- Parallel execution (scenario.threads > 1, cluster runs) ------------
  //
  // Conservative parallel discrete-event simulation: shards only interact
  // through placement/autoscale decisions, so between coordinator events
  // (arrivals, host events, autoscale evals) each shard's events run on a
  // worker thread. Two mechanisms share one worker pool:
  //
  //  * Lanes: a deferred kBootPhys popped at the top level has its
  //    kBootDone seq reserved immediately (determinism) and its physics
  //    computed asynchronously on the owning shard's lane; the coordinator
  //    keeps processing arrivals and harvests completed boots before the
  //    queue reaches them (kBootFloorNs is the provable safety horizon).
  //  * Windows: runs of non-coordinator events are split into per-shard
  //    sub-queues, drained concurrently with every global effect written
  //    to a WorkerRecord, then replayed by the coordinator in merged
  //    (time, seq) order — reproducing the sequential loop byte for byte.

  /// True once this run committed to the parallel loop.
  bool use_parallel(const Scenario& s) const;

  /// One sequential-loop iteration (shared by both loops for coordinator
  /// events, and the whole loop when threads == 1).
  void process_event(const Event& e, const Scenario& s,
                     const std::vector<sim::Nanos>& arrivals,
                     sim::Nanos& last_event);

  void run_loop_parallel(const Scenario& s,
                         const std::vector<sim::Nanos>& arrivals,
                         sim::Nanos& last_event);

  /// One shard-local event executed off the coordinator. Global effects
  /// are deferred here and applied during replay in merged order; `seq` is
  /// the true global seq for extracted events, or a provisional seq
  /// (>= win_seq_base_) for events born inside the window.
  struct WorkerRecord {
    sim::Nanos time = 0;
    std::uint64_t seq = 0;
    std::uint64_t tenant = 0;
    EventKind kind = EventKind::kArrival;
    bool stale = false;         // epoch mismatch: counted, otherwise inert
    bool count_tenant = false;  // first boot: ++platform tenant count
    bool gen = false;           // handler scheduled one follow-up event
    EventKind gen_kind = EventKind::kArrival;
    sim::Nanos gen_time = 0;
    double sample_ms = 0.0;     // boot_ms / phase_ms / program-op sample
    /// kProgramStep payload: the op's class and repeat-expanded invocation
    /// count; sample_ms carries its service latency.
    std::uint8_t prog_class = 0;
    std::uint32_t prog_ops = 0;
    FleetDelta delta{0, 0, 0, 0};  // teardown's fleet-counter deltas
    /// Crash-recovery resolution carried by a victim's kBootDone: the
    /// fault whose replace_ms gets `recovery_ms` during replay (-1: none).
    int recovery_fault = -1;
    double recovery_ms = 0.0;
    /// kProgramStep retry ledger: the OpIssue outcome of the *next* op the
    /// worker started, folded in by note_op_outcome during replay.
    int op_retries = 0;
    bool op_give_up = false;
    int degrade_fault = -1;        // first disturbing fault id; -1 = none
    double degrade_added_ms = -1.0;  // < 0: no added-latency sample
  };

  /// Per-shard window state, storage reused across windows.
  struct ShardTask {
    EventQueue q;                       // this window's events for the shard
    std::vector<WorkerRecord> records;  // shard-local (time, seq) order
    std::vector<std::uint64_t> born;    // provisional -> true seq, in order
    std::uint64_t next_birth = 0;       // next provisional seq to hand out
    double max_cpu_ratio = 0.0;         // window max of demand / threads
    bool dirty = false;                 // non-stale events ran: republish
    std::vector<platforms::PlatformId> counts_touched;  // teardown platforms
    std::size_t replay_pos = 0;         // merge cursor into records
  };

  /// Extract the next window out of queue_ into tasks_; returns the number
  /// of events extracted.
  std::size_t build_window(const Scenario& s);
  /// Worker body: drain one shard's window sub-queue.
  void window_drain(ShardTask& task, const Scenario& s);
  void window_step(ShardTask& task, const Event& e, const Scenario& s);
  void worker_start_phase(ShardTask& task, WorkerRecord& r, Tenant& t,
                          platforms::WorkloadClass w, const Scenario& s);
  /// Worker-side start_program_op: shard-local charges applied directly,
  /// the report-side sample deferred into the record like phases.
  void worker_start_program_op(ShardTask& task, WorkerRecord& r, Tenant& t,
                               const Scenario& s);
  /// Whether an event born at `time` still belongs to the current window.
  /// Must evaluate identically on workers and during replay.
  bool birth_in_window(sim::Nanos time) const;
  /// Merge every task's records by (time, true seq) and apply the global
  /// effects exactly as the sequential loop would have.
  void replay_window(const Scenario& s, sim::Nanos& last_event);
  void replay_record(ShardTask& task, const WorkerRecord& r,
                     const Scenario& s, sim::Nanos& last_event);

  class ParallelCtx;  // worker pool + boot lanes (engine_parallel.cpp)

  std::vector<ShardTask> tasks_;
  std::vector<int> win_shards_;    // shards touched by the current window
  sim::Nanos win_bound_ = 0;       // births at >= bound leave the window
  bool win_has_stop_ = false;      // window halted by a coordinator event
  sim::Nanos win_stop_time_ = 0;
  std::uint64_t win_seq_base_ = 0;  // provisional seqs start here

  /// Cluster-capable runs route boot physics through kBootPhys events (at
  /// every thread count, so reports stay byte-identical across threads);
  /// plain single-host runs keep the inline flow the goldens pin.
  bool deferred_boot_ = false;
};

}  // namespace fleet
