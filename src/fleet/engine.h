// FleetEngine: executes a Scenario against one or more core::HostSystem
// shards.
//
// The engine is the mechanism side of the policy/mechanism split: it merges
// N per-tenant sim::Clock timelines through a deterministic priority event
// queue (event_queue.h) into one global virtual timeline, and charges every
// tenant's activity to its *shard's* host models — page cache and NVMe for
// boot images and I/O phases, the NIC for network phases, KSM for
// hypervisor guest RAM, and the host kernel's ftrace for the per-host
// attack-surface rollup. Contention is modeled analytically per shard: CPU
// demand above a host's thread count stretches every in-flight duration on
// that host, and concurrent network phases share that host's NIC line rate.
//
// Cluster runs (fleet::Cluster, cluster.h) hand the engine M host shards
// plus a PlacementPolicy consulted once per arrival; the single global
// event queue keeps cross-host runs byte-reproducible. Single-host runs
// are the M=1 special case and produce byte-identical reports to the
// pre-cluster engine (pinned by tests/fleet_golden_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/host_system.h"
#include "fleet/event_queue.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "hap/epss.h"
#include "mem/ksm.h"
#include "platforms/factory.h"
#include "sim/clock.h"
#include "sim/rng.h"

namespace fleet {

/// True for platforms whose tenants reserve full guest RAM (and can be
/// KSM-deduplicated); false for namespace-backed tenants that only pay
/// their process RSS.
bool is_hypervisor_backed(platforms::PlatformId id);

class FleetEngine {
 public:
  explicit FleetEngine(core::HostSystem& host);

  /// Cluster mode: shard tenants across `hosts` with `policy` (non-owning;
  /// must outlive the engine). A policy is required when hosts.size() > 1.
  FleetEngine(const std::vector<core::HostSystem*>& hosts,
              PlacementPolicy* policy);

  /// Run one scenario to completion and return its report. Deterministic
  /// given (scenario, fresh hosts): the engine derives every random stream
  /// from scenario.seed, and placement consults no RNG.
  FleetReport run(const Scenario& scenario);

 private:
  struct Tenant {
    std::uint64_t id = 0;
    platforms::PlatformId platform_id = platforms::PlatformId::kNative;
    platforms::Platform* platform = nullptr;
    /// Cached &report_.by_platform[platform->name()], resolved once per
    /// boot completion (std::map nodes are pointer-stable) so per-phase
    /// accounting skips the string-keyed lookup.
    PlatformFleetStats* stats = nullptr;
    sim::Clock clock;
    sim::Rng rng{0};
    std::vector<platforms::WorkloadClass> phases;
    int next_phase = 0;
    int host = 0;         // shard index assigned at (re-)arrival
    int rounds_left = 0;  // churn re-admissions still owed
    sim::Nanos phase_start = 0;
    TenantOutcome outcome;
    std::uint64_t resident_bytes = 0;  // non-KSM-managed share
    bool ksm_registered = false;
    bool counted_in_stats = false;  // already in its platform's tenant count
  };

  /// Per-host mechanism state: one HostSystem plus everything the engine
  /// charges against it. Single-host runs have exactly one shard.
  struct Shard {
    core::HostSystem* host = nullptr;
    mem::Ksm ksm;
    std::unordered_map<platforms::PlatformId,
                       std::unique_ptr<platforms::Platform>>
        platforms;
    int active = 0;      // admitted, not yet torn down
    int net_active = 0;  // tenants currently in a network phase
    double cpu_demand = 0.0;  // vCPUs demanded by in-flight activity
    std::uint64_t non_ksm_resident = 0;
    std::uint64_t ram_cap = 0;
    /// Active tenants per platform, feeding HostView::same_platform_tenants.
    std::unordered_map<platforms::PlatformId, int> tenants_by_platform;
    HostRollup rollup;
    std::uint64_t cache_hits0 = 0;   // host-model counters at run start
    std::uint64_t cache_misses0 = 0;
    std::uint64_t nvme_read0 = 0;

    /// Resident bytes actually charged against this host's RAM right now.
    std::uint64_t resident_bytes() const;

    /// CPU contention multiplier at this host's current activity.
    double cpu_factor() const;
  };

  // Lifecycle handlers.
  void handle_arrival(Tenant& t, const Scenario& s);
  void handle_boot_done(Tenant& t, const Scenario& s);
  void handle_phase_done(Tenant& t, const Scenario& s);
  void handle_teardown(Tenant& t, const Scenario& s);

  /// Begin tenant t's next workload phase: account its demand, charge its
  /// cost, and schedule the completion event.
  void start_phase(Tenant& t, platforms::WorkloadClass w, const Scenario& s);

  /// Admission control against the tenant's shard: would its resident set
  /// still fit?
  bool admit(Shard& sh, Tenant& t, const Scenario& s);

  /// Consult the placement policy for an arriving tenant (M > 1 only).
  int place(const Tenant& t, const Scenario& s);

  /// Virtual duration of one workload phase, including platform profile
  /// scaling and charges to the shard's host models.
  sim::Nanos phase_cost(Tenant& t, platforms::WorkloadClass w,
                        const Scenario& s);

  void note_peaks(Shard& sh);

  std::vector<Shard> shards_;
  PlacementPolicy* policy_ = nullptr;  // non-owning; required when M > 1
  EventQueue queue_;
  sim::Clock global_clock_;
  /// Dense tenant table: ids are assigned 0..N-1, so the event loop indexes
  /// directly instead of hashing per event.
  std::vector<Tenant> tenants_;
  std::vector<HostView> views_;  // recycled placement snapshot storage
  hap::EpssModel epss_;
  FleetReport report_;

  int active_ = 0;  // fleet-wide admitted, not yet torn down
};

}  // namespace fleet
