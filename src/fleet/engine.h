// FleetEngine: executes a Scenario against one shared core::HostSystem.
//
// The engine is the mechanism side of the policy/mechanism split: it merges
// N per-tenant sim::Clock timelines through a deterministic priority event
// queue (event_queue.h) into one global virtual timeline, and charges every
// tenant's activity to the *shared* host models — page cache and NVMe for
// boot images and I/O phases, the NIC for network phases, KSM for
// hypervisor guest RAM, and the host kernel's ftrace for the fleet-wide
// attack-surface rollup. Contention is modeled analytically: CPU demand
// above the host's thread count stretches every in-flight duration, and
// concurrent network phases share the NIC's line rate.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/host_system.h"
#include "fleet/event_queue.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "hap/epss.h"
#include "mem/ksm.h"
#include "platforms/factory.h"
#include "sim/clock.h"
#include "sim/rng.h"

namespace fleet {

/// True for platforms whose tenants reserve full guest RAM (and can be
/// KSM-deduplicated); false for namespace-backed tenants that only pay
/// their process RSS.
bool is_hypervisor_backed(platforms::PlatformId id);

class FleetEngine {
 public:
  explicit FleetEngine(core::HostSystem& host) : host_(&host) {}

  /// Run one scenario to completion and return its report. Deterministic
  /// given (scenario, fresh HostSystem): the engine derives every random
  /// stream from scenario.seed.
  FleetReport run(const Scenario& scenario);

 private:
  struct Tenant {
    std::uint64_t id = 0;
    platforms::PlatformId platform_id = platforms::PlatformId::kNative;
    platforms::Platform* platform = nullptr;
    /// Cached &report_.by_platform[platform->name()], resolved once per
    /// tenant at boot completion (std::map nodes are pointer-stable) so
    /// per-phase accounting skips the string-keyed lookup.
    PlatformFleetStats* stats = nullptr;
    sim::Clock clock;
    sim::Rng rng{0};
    std::vector<platforms::WorkloadClass> phases;
    int next_phase = 0;
    sim::Nanos phase_start = 0;
    TenantOutcome outcome;
    std::uint64_t resident_bytes = 0;  // non-KSM-managed share
    bool ksm_registered = false;
  };

  // Lifecycle handlers.
  void handle_arrival(Tenant& t, const Scenario& s);
  void handle_boot_done(Tenant& t, const Scenario& s);
  void handle_phase_done(Tenant& t, const Scenario& s);
  void handle_teardown(Tenant& t, const Scenario& s);

  /// Begin tenant t's next workload phase: account its demand, charge its
  /// cost, and schedule the completion event.
  void start_phase(Tenant& t, platforms::WorkloadClass w, const Scenario& s);

  /// Admission control: would this tenant's resident set still fit?
  bool admit(Tenant& t, const Scenario& s);

  /// CPU contention multiplier at current fleet activity.
  double cpu_factor() const;

  /// Virtual duration of one workload phase, including platform profile
  /// scaling and charges to the shared host models.
  sim::Nanos phase_cost(Tenant& t, platforms::WorkloadClass w,
                        const Scenario& s);

  /// Resident bytes actually charged against host RAM right now.
  std::uint64_t resident_bytes() const;

  void note_peaks();

  core::HostSystem* host_;
  EventQueue queue_;
  sim::Clock global_clock_;
  /// Dense tenant table: ids are assigned 0..N-1, so the event loop indexes
  /// directly instead of hashing per event.
  std::vector<Tenant> tenants_;
  std::unordered_map<platforms::PlatformId, std::unique_ptr<platforms::Platform>>
      platforms_;
  mem::Ksm ksm_;
  hap::EpssModel epss_;
  FleetReport report_;

  int active_ = 0;       // admitted, not yet torn down
  int net_active_ = 0;   // tenants currently in a network phase
  double cpu_demand_ = 0.0;  // vCPUs demanded by in-flight activity
  std::uint64_t non_ksm_resident_ = 0;
  std::uint64_t host_ram_cap_ = 0;
};

}  // namespace fleet
