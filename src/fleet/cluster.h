// fleet::Cluster — M HostSystem shards behind one placement policy.
//
// The cluster is the sharding layer the single shared host could not give
// us: each host keeps its own page cache, NVMe, NIC, kernel ftrace and KSM
// stable tree, tenants are routed to a host by the scenario's
// PlacementPolicy at every (re-)arrival, and one global deterministic
// event queue merges all hosts' timelines so cluster runs stay
// byte-reproducible. This mirrors policy-aware middleware design (RAFDA's
// separation of application logic from distribution policy; RDA's
// device/server partitioning): the policy decides *where*, the per-host
// engine mechanism decides *what it costs*.
#pragma once

#include <memory>
#include <vector>

#include "core/host_system.h"
#include "fleet/report.h"
#include "fleet/scenario.h"

namespace fleet {

class Cluster {
 public:
  /// Build host_count hosts from the topology. Host 0 uses the default
  /// HostSystemSpec RNG seed (so a 1-host cluster reproduces the
  /// single-host engine byte for byte); later hosts perturb it.
  explicit Cluster(const ClusterTopology& topo);

  /// Run one scenario across the cluster with scenario.placement deciding
  /// where each tenant lands. Deterministic against fresh hosts; reuse
  /// warms page caches and advances host RNG streams, so build a fresh
  /// Cluster per reproducible run.
  FleetReport run(const Scenario& scenario);

  int host_count() const { return static_cast<int>(hosts_.size()); }
  core::HostSystem& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }

 private:
  std::vector<std::unique_ptr<core::HostSystem>> hosts_;
};

}  // namespace fleet
