// fleet::Cluster — M HostSystem shards behind one placement policy.
//
// The cluster is the sharding layer the single shared host could not give
// us: each host keeps its own page cache, NVMe, NIC, kernel ftrace and KSM
// stable tree, tenants are routed to a host by the scenario's
// PlacementPolicy at every (re-)arrival, and one global deterministic
// event queue merges all hosts' timelines so cluster runs stay
// byte-reproducible. This mirrors policy-aware middleware design (RAFDA's
// separation of application logic from distribution policy; RDA's
// device/server partitioning): the policy decides *where*, the per-host
// engine mechanism decides *what it costs*.
//
// The cluster is also the engine's HostProvisioner: scenarios with an
// autoscale spec or timed HostEvents can add fresh hosts mid-run (each
// with a deterministic RNG seed derived from its index) and drain live
// ones (tenants re-placed through placement + admission, then the host
// retires and takes no further placements).
#pragma once

#include <memory>
#include <vector>

#include "core/host_system.h"
#include "fleet/engine.h"
#include "fleet/report.h"
#include "fleet/scenario.h"

namespace fleet {

class Cluster : public HostProvisioner {
 public:
  /// Build host_count hosts from the topology. Host 0 uses the default
  /// HostSystemSpec RNG seed (so a 1-host cluster reproduces the
  /// single-host engine byte for byte); later hosts perturb it.
  explicit Cluster(const ClusterTopology& topo);

  /// Run one scenario across the cluster with scenario.placement deciding
  /// where each tenant lands. Deterministic against fresh hosts; reuse
  /// warms page caches, advances host RNG streams, and keeps hosts added
  /// by a previous run's autoscaler, so build a fresh Cluster per
  /// reproducible run.
  FleetReport run(const Scenario& scenario);

  /// Append one more host shaped by the topology, with the same
  /// index-derived RNG seed formula as construction — adding host i always
  /// yields the same host, whether at build time or mid-run.
  core::HostSystem& add_host();

  /// Mark a host retired. During a run the engine re-places its tenants
  /// first; a retired host takes no new placements for the rest of that
  /// run. A subsequent run() revives every host.
  void drain_host(int index);

  int host_count() const { return static_cast<int>(hosts_.size()); }
  int live_host_count() const;
  bool is_retired(int index) const {
    return retired_.at(static_cast<std::size_t>(index));
  }
  core::HostSystem& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }

  // HostProvisioner (the engine's view of the cluster):
  core::HostSystem* provision_host() override { return &add_host(); }
  void retire_host(int index) override { drain_host(index); }

 private:
  core::HostSystemSpec spec_for(int index) const;

  ClusterTopology topo_;
  std::vector<std::unique_ptr<core::HostSystem>> hosts_;
  std::vector<bool> retired_;
};

}  // namespace fleet
