// Shared-filesystem protocols between sandbox and host: 9p and virtio-fs.
//
// Secure containers pass the container's root filesystem into the sandbox
// through a shared file system. The paper (Findings 7 & 8) attributes their
// poor I/O to the 9p protocol (one synchronous message round trip per
// operation, Twalk/Topen/Tread message chatter) and shows virtio-fs (FUSE
// over virtio, DAX-mapped) to be on par with plain QEMU virtio-blk.
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.h"
#include "sim/time.h"

namespace storage {

enum class SharedFsProtocol { kNone, kNineP, kVirtioFs };

std::string shared_fs_name(SharedFsProtocol p);

/// Message-cost model of a shared filesystem transport.
class SharedFs {
 public:
  /// Build the cost model for a protocol with default parameters.
  static SharedFs make(SharedFsProtocol protocol);

  SharedFsProtocol protocol() const { return protocol_; }

  /// Number of protocol round trips for one read/write of `bytes`
  /// (9p fragments payloads at msize; virtio-fs uses scatter-gather DMA).
  std::uint64_t round_trips(std::uint64_t bytes) const;

  /// Latency added by the protocol for one operation of `bytes`.
  sim::Nanos op_latency(std::uint64_t bytes, sim::Rng& rng) const;

  /// Throughput ceiling imposed by the protocol, bytes/s (the reason
  /// Figure 9 shows secure containers at half of native).
  double bandwidth_cap_bytes_per_sec() const { return bandwidth_cap_; }

 private:
  SharedFs(SharedFsProtocol protocol, std::uint64_t msize,
           sim::Nanos rt_latency, double rt_sigma, double bandwidth_cap);

  SharedFsProtocol protocol_;
  std::uint64_t msize_;       // max payload per protocol message
  sim::Nanos rt_latency_;     // one message round trip
  double rt_sigma_;
  double bandwidth_cap_;
};

}  // namespace storage
