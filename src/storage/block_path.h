// Per-platform block I/O paths from a guest request down to the host NVMe.
//
// Reproduces the fio experiments (Figures 9 & 10) including the paper's
// methodological pitfall: a guest root filesystem presented through a loop
// device does not propagate O_DIRECT, so "direct" guest I/O may still be
// served by the *host* page cache unless the host cache is dropped first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hostk/block_device.h"
#include "hostk/host_kernel.h"
#include "hostk/page_cache.h"
#include "sim/rng.h"
#include "sim/time.h"

#include "storage/shared_fs.h"

namespace storage {

/// Declarative description of one platform's block datapath.
struct BlockPathSpec {
  std::string name;
  /// Throughput efficiency vs raw device, sequential 128 KiB requests.
  double read_bw_efficiency = 1.0;
  double write_bw_efficiency = 1.0;
  /// Fixed latency added to every request by virtualization layers.
  sim::Nanos per_request_extra = 0;
  /// Additional relative stddev on writes (hypervisor write paths are
  /// noisier; Figure 9's error bars).
  double write_jitter = 0.0;
  /// Whether O_DIRECT from the guest reaches the host block layer.
  /// False for loop-device-backed guests and for gVisor's Gofer.
  bool direct_flag_propagates = true;
  /// Shared-fs protocol in front of the block layer (secure containers).
  SharedFsProtocol shared_fs = SharedFsProtocol::kNone;
  /// Whether the platform can attach a dedicated test disk at all
  /// (Firecracker cannot; OSv lacks libaio — both excluded in Figure 9).
  bool supports_extra_disk = true;
  bool supports_libaio = true;
};

/// Executable block path: combines a spec with the host's NVMe device,
/// the host page cache, and HAP instrumentation.
class BlockPath {
 public:
  BlockPath(BlockPathSpec spec, hostk::HostKernel& kernel,
            hostk::BlockDevice& device, hostk::PageCache& host_cache);

  const BlockPathSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// One guest read. `direct` is the guest-side O_DIRECT flag; whether it
  /// reaches the device depends on the path (see spec). `file` identifies
  /// the backing file for page-cache purposes. `queue_depth` models libaio
  /// pipelining: device access latency amortizes across in-flight requests
  /// while the transfer (bandwidth) term does not.
  sim::Nanos read(std::uint64_t file, std::uint64_t offset, std::uint64_t bytes,
                  bool direct, sim::Rng& rng, std::uint32_t queue_depth = 1);

  /// One guest write (write-back: host cache absorbs unless direct).
  sim::Nanos write(std::uint64_t file, std::uint64_t offset, std::uint64_t bytes,
                   bool direct, sim::Rng& rng, std::uint32_t queue_depth = 1);

  /// Drop the *host* page cache (the paper's remedy between runs).
  void drop_host_cache();

 private:
  sim::Nanos device_read(std::uint64_t bytes, sim::Rng& rng,
                         std::uint32_t queue_depth);
  sim::Nanos device_write(std::uint64_t bytes, sim::Rng& rng,
                          std::uint32_t queue_depth);
  void record_io_syscalls(std::uint64_t bytes, bool is_write, sim::Rng& rng);

  BlockPathSpec spec_;
  SharedFs shared_fs_;
  hostk::HostKernel* kernel_;
  hostk::BlockDevice* device_;
  hostk::PageCache* host_cache_;
};

/// Catalog of the paper's platforms, calibrated to Figures 9 & 10.
class BlockPathCatalog {
 public:
  static BlockPathSpec native();
  static BlockPathSpec docker_bind_mount();
  static BlockPathSpec lxc_zfs();
  static BlockPathSpec qemu_virtio_blk();
  static BlockPathSpec cloud_hypervisor_virtio_blk();
  static BlockPathSpec firecracker_virtio_blk();  // supports_extra_disk=false
  static BlockPathSpec kata_9p();
  static BlockPathSpec kata_virtio_fs();
  static BlockPathSpec gvisor_gofer_9p();
  static BlockPathSpec osv_zfs();  // supports_libaio=false
};

}  // namespace storage
