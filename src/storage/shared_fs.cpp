#include "storage/shared_fs.h"

#include <algorithm>

#include "sim/distribution.h"

namespace storage {

std::string shared_fs_name(SharedFsProtocol p) {
  switch (p) {
    case SharedFsProtocol::kNone:
      return "none";
    case SharedFsProtocol::kNineP:
      return "9p";
    case SharedFsProtocol::kVirtioFs:
      return "virtio-fs";
  }
  return "unknown";
}

SharedFs::SharedFs(SharedFsProtocol protocol, std::uint64_t msize,
                   sim::Nanos rt_latency, double rt_sigma, double bandwidth_cap)
    : protocol_(protocol),
      msize_(msize),
      rt_latency_(rt_latency),
      rt_sigma_(rt_sigma),
      bandwidth_cap_(bandwidth_cap) {}

SharedFs SharedFs::make(SharedFsProtocol protocol) {
  switch (protocol) {
    case SharedFsProtocol::kNineP:
      // msize 256 KiB, synchronous round trips over virtio/vsock; the
      // protocol predates co-located host/guest and waits on every message,
      // and payload bytes are copied through the transport.
      return SharedFs(protocol, 256ull << 10, sim::micros(85), 0.25, 4.0e9);
    case SharedFsProtocol::kVirtioFs:
      // FUSE over virtio with DAX: requests carry scatter-gather lists and
      // data pages are *mapped*, not copied — effectively no payload copy.
      return SharedFs(protocol, 1ull << 20, sim::micros(9), 0.15, 1.0e12);
    case SharedFsProtocol::kNone:
    default:
      return SharedFs(protocol, 1ull << 30, 0, 0.0, 1e18);
  }
}

std::uint64_t SharedFs::round_trips(std::uint64_t bytes) const {
  if (protocol_ == SharedFsProtocol::kNone) {
    return 0;
  }
  return std::max<std::uint64_t>(1, (bytes + msize_ - 1) / msize_);
}

sim::Nanos SharedFs::op_latency(std::uint64_t bytes, sim::Rng& rng) const {
  if (protocol_ == SharedFsProtocol::kNone) {
    return 0;
  }
  const std::uint64_t trips = round_trips(bytes);
  const auto dist = sim::DurationDist::lognormal(rt_latency_, rt_sigma_);
  sim::Nanos total = 0;
  for (std::uint64_t i = 0; i < trips; ++i) {
    total += dist.sample(rng);
  }
  // Payload transfer bounded by the protocol's copy bandwidth.
  total += sim::seconds(static_cast<double>(bytes) / bandwidth_cap_);
  return total;
}

}  // namespace storage
