#include "storage/block_path.h"

#include <algorithm>

namespace storage {

using hostk::Syscall;

BlockPath::BlockPath(BlockPathSpec spec, hostk::HostKernel& kernel,
                     hostk::BlockDevice& device, hostk::PageCache& host_cache)
    : spec_(std::move(spec)),
      shared_fs_(SharedFs::make(spec_.shared_fs)),
      kernel_(&kernel),
      device_(&device),
      host_cache_(&host_cache) {}

sim::Nanos BlockPath::device_read(std::uint64_t bytes, sim::Rng& rng,
                                  std::uint32_t queue_depth) {
  const std::uint32_t qd = std::max<std::uint32_t>(1, queue_depth);
  // Access latency overlaps across in-flight requests; the bandwidth-bound
  // transfer term is stretched by the path's efficiency.
  sim::Nanos t = device_->read_base(rng) / qd;
  t += static_cast<sim::Nanos>(
      static_cast<double>(device_->read_transfer(bytes)) /
      std::max(0.01, spec_.read_bw_efficiency));
  return t;
}

sim::Nanos BlockPath::device_write(std::uint64_t bytes, sim::Rng& rng,
                                   std::uint32_t queue_depth) {
  const std::uint32_t qd = std::max<std::uint32_t>(1, queue_depth);
  sim::Nanos t = device_->write_base(rng) / qd;
  t += static_cast<sim::Nanos>(
      static_cast<double>(device_->write_transfer(bytes)) /
      std::max(0.01, spec_.write_bw_efficiency));
  if (spec_.write_jitter > 0.0) {
    const double factor = std::max(0.2, rng.normal(1.0, spec_.write_jitter));
    t = static_cast<sim::Nanos>(static_cast<double>(t) * factor);
  }
  return t;
}

void BlockPath::record_io_syscalls(std::uint64_t bytes, bool is_write,
                                   sim::Rng& rng) {
  if (!kernel_->ftrace().recording()) {
    return;
  }
  // libaio-style submission on the host side of the path.
  kernel_->invoke(Syscall::kIoSubmit, rng, 1);
  kernel_->invoke(Syscall::kIoGetevents, rng, 1);
  if (spec_.shared_fs == SharedFsProtocol::kNineP) {
    const std::uint64_t trips = shared_fs_.round_trips(bytes);
    kernel_->invoke(Syscall::kSendmsg, rng, trips);
    kernel_->invoke(Syscall::kRecvmsg, rng, trips);
  }
  if (!spec_.direct_flag_propagates) {
    kernel_->invoke(Syscall::kIoctlLoop, rng, 1);
  }
  (void)is_write;
}

sim::Nanos BlockPath::read(std::uint64_t file, std::uint64_t offset,
                           std::uint64_t bytes, bool direct, sim::Rng& rng,
                           std::uint32_t queue_depth) {
  // Virtio kicks and vm exits batch across queued requests, so the fixed
  // per-request virtualization cost amortizes at depth (which is why QEMU
  // throughput is near native in Figure 9 while its QD1 latency is not).
  sim::Nanos t = spec_.per_request_extra / std::max<std::uint32_t>(1, queue_depth);
  t += shared_fs_.op_latency(bytes, rng);
  record_io_syscalls(bytes, /*is_write=*/false, rng);

  const bool host_may_cache = !spec_.direct_flag_propagates || !direct;
  if (host_may_cache) {
    const std::uint64_t missed_pages = host_cache_->access_range(file, offset, bytes);
    const std::uint64_t missed_bytes = missed_pages * hostk::PageCache::kPageSize;
    if (missed_bytes > 0) {
      t += device_read(std::min(missed_bytes, std::max<std::uint64_t>(bytes, 1)),
                       rng, queue_depth);
    } else {
      // Served entirely from the host page cache: memcpy speed. This is the
      // "hypervisor beats native" artifact the paper warns about.
      t += sim::seconds(static_cast<double>(bytes) / 8.0e9);
    }
  } else {
    t += device_read(bytes, rng, queue_depth);
  }
  return t;
}

sim::Nanos BlockPath::write(std::uint64_t file, std::uint64_t offset,
                            std::uint64_t bytes, bool direct, sim::Rng& rng,
                            std::uint32_t queue_depth) {
  sim::Nanos t = spec_.per_request_extra / std::max<std::uint32_t>(1, queue_depth);
  t += shared_fs_.op_latency(bytes, rng);
  record_io_syscalls(bytes, /*is_write=*/true, rng);

  const bool host_may_cache = !spec_.direct_flag_propagates || !direct;
  if (host_may_cache) {
    // Write-back into the host cache; charge device time probabilistically
    // to model background writeback pressure at fio's sustained rates.
    host_cache_->access_range(file, offset, bytes);
    if (rng.chance(0.85)) {
      t += device_write(bytes, rng, queue_depth);
    } else {
      t += sim::seconds(static_cast<double>(bytes) / 8.0e9);
    }
  } else {
    t += device_write(bytes, rng, queue_depth);
  }
  return t;
}

void BlockPath::drop_host_cache() { host_cache_->drop_caches(); }

// --- Catalog -----------------------------------------------------------
// Efficiencies stretch only the bandwidth-bound transfer term; fixed
// virtualization costs go into per_request_extra (latency-visible) so that
// a platform can have poor throughput yet good latency (Cloud Hypervisor)
// or the reverse.

BlockPathSpec BlockPathCatalog::native() {
  return {.name = "native",
          .read_bw_efficiency = 1.0,
          .write_bw_efficiency = 1.0,
          .per_request_extra = 0,
          .write_jitter = 0.02,
          .direct_flag_propagates = true};
}

BlockPathSpec BlockPathCatalog::docker_bind_mount() {
  // A bind mount is the host filesystem; only cgroup accounting on top.
  return {.name = "docker(bind)",
          .read_bw_efficiency = 0.995,
          .write_bw_efficiency = 0.97,
          .per_request_extra = sim::micros(1),
          .write_jitter = 0.06,
          .direct_flag_propagates = true};
}

BlockPathSpec BlockPathCatalog::lxc_zfs() {
  // Dedicated ZFS pool: checksumming + COW tax, still close to native.
  return {.name = "lxc(zfs)",
          .read_bw_efficiency = 0.965,
          .write_bw_efficiency = 0.93,
          .per_request_extra = sim::micros(3),
          .write_jitter = 0.07,
          .direct_flag_propagates = true};
}

BlockPathSpec BlockPathCatalog::qemu_virtio_blk() {
  // Attached as an extra virtio-blk drive: throughput near native, latency
  // pays the virtio kick + vm exit, writes noisier (Figure 9/10).
  return {.name = "qemu(virtio-blk)",
          .read_bw_efficiency = 0.985,
          .write_bw_efficiency = 0.95,
          .per_request_extra = sim::micros(24),
          .write_jitter = 0.10,
          .direct_flag_propagates = true};
}

BlockPathSpec BlockPathCatalog::cloud_hypervisor_virtio_blk() {
  // Finding 9: markedly lower throughput than QEMU, but remarkably good
  // random-read latency.
  return {.name = "cloud-hypervisor(virtio-blk)",
          .read_bw_efficiency = 0.42,
          .write_bw_efficiency = 0.36,
          .per_request_extra = sim::micros(7),
          .write_jitter = 0.16,
          .direct_flag_propagates = true};
}

BlockPathSpec BlockPathCatalog::firecracker_virtio_blk() {
  // Firecracker cannot attach a second block device; excluded in Figure 9.
  return {.name = "firecracker(virtio-blk)",
          .read_bw_efficiency = 0.9,
          .write_bw_efficiency = 0.85,
          .per_request_extra = sim::micros(26),
          .write_jitter = 0.12,
          .direct_flag_propagates = true,
          .supports_extra_disk = false};
}

BlockPathSpec BlockPathCatalog::kata_9p() {
  // Shared rootfs over 9p: the paper's worst I/O performer (Finding 6/8),
  // exceptionally poor random-read latency (Figure 10). The virtio layer
  // itself is fine — the synchronous 9p protocol is the bottleneck.
  return {.name = "kata(9p)",
          .read_bw_efficiency = 0.90,
          .write_bw_efficiency = 0.85,
          .per_request_extra = sim::micros(12),
          .write_jitter = 0.15,
          .direct_flag_propagates = true,
          .shared_fs = SharedFsProtocol::kNineP};
}

BlockPathSpec BlockPathCatalog::kata_virtio_fs() {
  // Finding 7: virtio-fs brings Kata on par with QEMU.
  return {.name = "kata(virtio-fs)",
          .read_bw_efficiency = 0.93,
          .write_bw_efficiency = 0.90,
          .per_request_extra = sim::micros(26),
          .write_jitter = 0.11,
          .direct_flag_propagates = true,
          .shared_fs = SharedFsProtocol::kVirtioFs};
}

BlockPathSpec BlockPathCatalog::gvisor_gofer_9p() {
  // Sentry -> Gofer over 9p; Gofer opens files without O_DIRECT, so guest
  // "direct" reads are host-cached — the paper had to exclude gVisor from
  // the randread figure because of exactly this.
  return {.name = "gvisor(gofer+9p)",
          .read_bw_efficiency = 0.50,
          .write_bw_efficiency = 0.44,
          .per_request_extra = sim::micros(22),
          .write_jitter = 0.14,
          .direct_flag_propagates = false,
          .shared_fs = SharedFsProtocol::kNineP};
}

BlockPathSpec BlockPathCatalog::osv_zfs() {
  // OSv's ZFS-based VFS over virtio-blk; fio's libaio engine does not work
  // on OSv, so the paper excludes it from the fio figures.
  return {.name = "osv(zfs)",
          .read_bw_efficiency = 0.9,
          .write_bw_efficiency = 0.86,
          .per_request_extra = sim::micros(20),
          .write_jitter = 0.1,
          .direct_flag_propagates = true,
          .supports_libaio = false};
}

}  // namespace storage
