#include "securec/kata.h"

#include <stdexcept>

#include "sim/distribution.h"

namespace securec {

using hostk::Syscall;
using sim::DurationDist;
using sim::micros;
using sim::millis;

TtRpcChannel::TtRpcChannel(hostk::HostKernel& host) : host_(&host) {}

sim::Nanos TtRpcChannel::call(std::uint64_t payload_bytes, sim::Rng& rng) {
  ++calls_;
  sim::Nanos cost = 0;
  const std::uint64_t frames =
      std::max<std::uint64_t>(1, payload_bytes / (64 << 10));
  for (int attempt = 0; attempt <= max_retries_; ++attempt) {
    cost += host_->invoke(Syscall::kVsockSend, rng, frames);
    if (drop_probability_ > 0.0 && rng.chance(drop_probability_)) {
      // Exchange lost: ttRPC waits out its deadline and retries.
      ++retries_;
      cost += DurationDist::lognormal(millis(25), 0.2).sample(rng);
      continue;
    }
    cost += host_->invoke(Syscall::kVsockRecv, rng, frames);
    // Serialization + agent-side dispatch.
    cost += DurationDist::lognormal(micros(140), 0.25).sample(rng);
    return cost;
  }
  throw std::runtime_error("TtRpcChannel: agent unreachable over vsock");
}

KataRuntime::KataRuntime(KataSpec spec, hostk::HostKernel& host)
    : spec_(spec),
      host_(&host),
      vm_(vmm::VmmCatalog::kata_vm(), host),
      channel_(host) {}

core::BootTimeline KataRuntime::boot_timeline() const {
  core::BootTimeline t;
  if (spec_.via_docker_daemon) {
    t.stage("daemon:cli-to-dockerd", DurationDist::lognormal(millis(48), 0.18));
    t.stage("daemon:image-resolve", DurationDist::lognormal(millis(64), 0.20));
    t.stage("daemon:network-allocate", DurationDist::lognormal(millis(86), 0.18));
    t.stage("daemon:containerd-shim-kata-v2",
            DurationDist::lognormal(millis(52), 0.15));
  }
  t.stage("kata:runtime-invoke", DurationDist::lognormal(millis(14), 0.18));
  // The VM: stripped kernel, Clear Linux mini-OS, systemd -> kata-agent.
  t.append(vm_.boot_timeline());
  t.stage("kata:vsock-ttrpc-handshake", DurationDist::lognormal(millis(35), 0.2));
  t.stage("kata:share-rootfs-" + storage::shared_fs_name(spec_.shared_fs),
          DurationDist::lognormal(millis(45), 0.2));
  // Confined context inside the guest (namespaces + cgroups there).
  t.append(container::NamespaceSet::runc_default().setup_timeline());
  t.stage("kata:agent-exec-workload", DurationDist::lognormal(millis(12), 0.2));
  return t;
}

void KataRuntime::record_boot(sim::Rng& rng) {
  // QEMU's KVM setup happens on the host. In-guest namespace setup does
  // NOT touch the host kernel — that's Kata's defense-in-depth.
  host_->invoke(Syscall::kKvmCreateVm, rng, 1);
  host_->invoke(Syscall::kKvmCreateVcpu, rng, 4);
  host_->invoke(Syscall::kKvmSetUserMemoryRegion, rng, 4);
  host_->invoke(Syscall::kMmap, rng, 6);
  host_->invoke(Syscall::kKvmIoeventfd, rng, 9);
  host_->invoke(Syscall::kKvmRun, rng, 48);
  host_->invoke(Syscall::kVsockSend, rng, 6);
  host_->invoke(Syscall::kVsockRecv, rng, 6);
  host_->invoke(Syscall::kMount, rng, 2);  // shared rootfs mountpoint
  if (spec_.via_docker_daemon) {
    host_->invoke(Syscall::kSocket, rng, 1);
    host_->invoke(Syscall::kConnect, rng, 1);
    host_->invoke(Syscall::kSendmsg, rng, 4);
    host_->invoke(Syscall::kRecvmsg, rng, 4);
  }
}

sim::Nanos KataRuntime::exec_in_guest(sim::Clock& clock, sim::Rng& rng) {
  // kata-runtime forwards the command to the agent, which clones a process
  // inside the confined context (Section 2.3.1).
  sim::Nanos cost = channel_.call(4096, rng);
  cost += DurationDist::lognormal(millis(9), 0.2).sample(rng);
  clock.advance(cost);
  return cost;
}

}  // namespace securec
