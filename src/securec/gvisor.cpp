#include "securec/gvisor.h"

#include "sim/distribution.h"
#include "storage/shared_fs.h"

namespace securec {

using hostk::Syscall;
using sim::DurationDist;
using sim::micros;
using sim::millis;

std::string gvisor_platform_name(GvisorPlatform p) {
  return p == GvisorPlatform::kPtrace ? "ptrace" : "kvm";
}

Sentry::Sentry(SentrySpec spec, hostk::HostKernel& host)
    : spec_(spec), host_(&host) {}

sim::Nanos Sentry::interception_cost(sim::Rng& rng) const {
  if (spec_.platform == GvisorPlatform::kPtrace) {
    // PTRACE_SYSEMU: stop the tracee, wake the Sentry, fetch registers,
    // resume — two full context switches per syscall.
    return DurationDist::lognormal(micros(4.6), 0.2).sample(rng);
  }
  // KVM platform: hardware-assisted address-space switch.
  return DurationDist::lognormal(micros(1.5), 0.2).sample(rng);
}

sim::Nanos Sentry::serve_internal(sim::Rng& rng) {
  sim::Nanos cost = interception_cost(rng);
  // Sentry-side handling (Go runtime, goroutine wakeups).
  cost += DurationDist::lognormal(micros(0.9), 0.25).sample(rng);
  // Reduced host footprint of the Sentry's own operation.
  if (host_->ftrace().recording()) {
    if (spec_.platform == GvisorPlatform::kPtrace) {
      host_->invoke(Syscall::kPtraceSysemu, rng, 1);
      host_->invoke(Syscall::kPtraceGetregs, rng, 1);
      host_->invoke(Syscall::kWait4, rng, 1);
    } else {
      host_->invoke(Syscall::kKvmRun, rng, 1);
    }
    host_->invoke(Syscall::kFutexWake, rng, 1);
    host_->invoke(Syscall::kClockGettime, rng, 1);
  }
  return cost;
}

sim::Nanos Sentry::serve_via_gofer(std::uint64_t payload, sim::Rng& rng) {
  sim::Nanos cost = serve_internal(rng);
  const auto ninep = storage::SharedFs::make(storage::SharedFsProtocol::kNineP);
  cost += ninep.op_latency(payload, rng);
  if (host_->ftrace().recording()) {
    // Sentry <-> Gofer socketpair traffic.
    host_->invoke(Syscall::kSendmsg, rng, ninep.round_trips(payload));
    host_->invoke(Syscall::kRecvmsg, rng, ninep.round_trips(payload));
  }
  return cost;
}

core::BootTimeline Sentry::boot_timeline() const {
  core::BootTimeline t;
  t.stage("sentry:runsc-invoke", DurationDist::lognormal(millis(18), 0.2));
  t.stage("sentry:boot-kernel", DurationDist::lognormal(millis(80), 0.15));
  t.stage("sentry:seccomp-install", DurationDist::lognormal(millis(3.2), 0.2));
  t.append(spec_.confinement.setup_timeline());
  if (spec_.platform == GvisorPlatform::kKvm) {
    t.stage("sentry:kvm-vm-setup", DurationDist::lognormal(millis(6), 0.2));
  }
  return t;
}

void Sentry::record_boot(sim::Rng& rng) {
  spec_.confinement.record_setup(*host_, rng);
  host_->invoke(Syscall::kSeccompLoad, rng, 2);  // sentry + gofer filters
  host_->invoke(Syscall::kPrctl, rng, 2);
  host_->invoke(Syscall::kMmap, rng, 24);  // Go runtime arenas
  host_->invoke(Syscall::kFutexWait, rng, 8);
  if (spec_.platform == GvisorPlatform::kKvm) {
    host_->invoke(Syscall::kKvmCreateVm, rng, 1);
    host_->invoke(Syscall::kKvmCreateVcpu, rng, 1);
  } else {
    host_->invoke(Syscall::kPtraceSysemu, rng, 4);
  }
}

Gofer::Gofer(hostk::HostKernel& host) : host_(&host) {}

sim::Nanos Gofer::handle_request(std::uint64_t payload, sim::Rng& rng) {
  // The Gofer performs the real host VFS work on behalf of the Sentry.
  sim::Nanos cost = 0;
  cost += host_->invoke(Syscall::kRecvmsg, rng, 1);
  cost += host_->invoke(Syscall::kOpenat, rng, 1);
  cost += host_->invoke(Syscall::kRead, rng,
                        std::max<std::uint64_t>(1, payload >> 16));
  cost += host_->invoke(Syscall::kSendmsg, rng, 1);
  return cost;
}

core::BootTimeline Gofer::boot_timeline() const {
  core::BootTimeline t;
  t.stage("gofer:spawn", DurationDist::lognormal(millis(22), 0.2));
  t.stage("gofer:attach-rootfs", DurationDist::lognormal(millis(12), 0.2));
  return t;
}

}  // namespace securec
