// Kata Containers architecture: kata-runtime, hypervisor, kata-agent.
//
// Section 2.3.1 / Figure 2: the OCI command reaches kata-runtime, which
// boots a stripped QEMU VM (optimized kernel + Clear Linux mini-OS whose
// systemd immediately starts the kata-agent). The runtime talks to the
// agent over a ttRPC server exposed through a vsock; the agent creates a
// namespaced+cgrouped context inside the VM whose rootfs is the original
// container image passed through a shared mount (9p, or virtio-fs).
#pragma once

#include <cstdint>

#include "container/namespaces.h"
#include "core/boot.h"
#include "hostk/host_kernel.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "storage/shared_fs.h"
#include "vmm/vm.h"

namespace securec {

/// The host<->guest control channel (ttRPC over vsock).
///
/// Supports failure injection: with a configured drop probability each
/// vsock exchange can time out and be retried (ttRPC's deadline-based
/// retry), which tests use to verify control-plane robustness accounting.
class TtRpcChannel {
 public:
  explicit TtRpcChannel(hostk::HostKernel& host);

  /// One request/response exchange with the kata-agent. Retries dropped
  /// exchanges up to `max_retries`; throws std::runtime_error when the
  /// channel stays dead beyond that.
  sim::Nanos call(std::uint64_t payload_bytes, sim::Rng& rng);

  /// Failure injection: probability that one exchange is dropped.
  void set_drop_probability(double p) { drop_probability_ = p; }
  void set_max_retries(int retries) { max_retries_ = retries; }

  std::uint64_t calls_made() const { return calls_; }
  std::uint64_t retries_performed() const { return retries_; }

 private:
  hostk::HostKernel* host_;
  std::uint64_t calls_ = 0;
  std::uint64_t retries_ = 0;
  double drop_probability_ = 0.0;
  int max_retries_ = 3;
};

struct KataSpec {
  storage::SharedFsProtocol shared_fs = storage::SharedFsProtocol::kNineP;
  bool via_docker_daemon = false;
};

/// The Kata runtime: orchestrates VM boot and in-guest container setup.
class KataRuntime {
 public:
  KataRuntime(KataSpec spec, hostk::HostKernel& host);

  const KataSpec& spec() const { return spec_; }

  /// End-to-end sandbox creation timeline (Figure 13's ~600 ms series):
  /// runtime invocation, VM boot (stripped kernel + mini-OS + agent),
  /// vsock handshake, in-guest namespace/cgroup setup, workload exec.
  core::BootTimeline boot_timeline() const;

  /// HAP-visible boot: KVM setup by QEMU + vsock + shared-fs mounts.
  void record_boot(sim::Rng& rng);

  /// `docker exec` forwarding: runtime -> ttRPC -> agent -> new process.
  sim::Nanos exec_in_guest(sim::Clock& clock, sim::Rng& rng);

  TtRpcChannel& channel() { return channel_; }

 private:
  KataSpec spec_;
  hostk::HostKernel* host_;
  vmm::Vm vm_;
  TtRpcChannel channel_;
};

}  // namespace securec
