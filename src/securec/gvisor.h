// gVisor architecture: Sentry (user-space kernel), Gofer, Netstack.
//
// Section 2.3.2: system calls from the container are intercepted by a
// `platform` (ptrace or KVM) and served by the Sentry, a kernel
// re-implementation in user space that itself may only use a seccomp-
// reduced set of host syscalls. All file I/O must be delegated to the
// Gofer over 9p; networking runs in the Sentry's own Netstack.
#pragma once

#include <cstdint>
#include <string>

#include "container/namespaces.h"
#include "core/boot.h"
#include "hostk/host_kernel.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace securec {

/// The syscall interception mechanism.
enum class GvisorPlatform { kPtrace, kKvm };

std::string gvisor_platform_name(GvisorPlatform p);

struct SentrySpec {
  GvisorPlatform platform = GvisorPlatform::kPtrace;
  /// Number of host syscalls the seccomp allowlist admits (~70 in runsc).
  std::size_t seccomp_allowlist_size = 68;
  container::NamespaceSet confinement =
      container::NamespaceSet::sentry_confinement();
};

/// The Sentry: intercepts guest syscalls, serves them in user space.
class Sentry {
 public:
  Sentry(SentrySpec spec, hostk::HostKernel& host);

  const SentrySpec& spec() const { return spec_; }

  /// Cost of intercepting ONE guest syscall and returning to the guest —
  /// ptrace pays two context switches; KVM a lighter mode switch
  /// (the paper: "KVM mode ought to be faster").
  sim::Nanos interception_cost(sim::Rng& rng) const;

  /// Serve one guest syscall entirely inside the Sentry (no host I/O).
  /// Returns the total guest-visible cost and records the reduced host
  /// syscalls the Sentry needs (timers, futexes) into ftrace.
  sim::Nanos serve_internal(sim::Rng& rng);

  /// Serve one guest file-I/O syscall: intercept, then delegate to the
  /// Gofer over 9p. `payload` sizes the 9p messages.
  sim::Nanos serve_via_gofer(std::uint64_t payload, sim::Rng& rng);

  /// Boot stages of runsc: start Sentry, apply seccomp, join namespaces.
  core::BootTimeline boot_timeline() const;

  /// HAP-visible boot activity.
  void record_boot(sim::Rng& rng);

 private:
  SentrySpec spec_;
  hostk::HostKernel* host_;
};

/// The Gofer: the only component allowed to touch host files.
class Gofer {
 public:
  explicit Gofer(hostk::HostKernel& host);

  /// One 9p request handled against the host VFS (open/read/write path).
  sim::Nanos handle_request(std::uint64_t payload, sim::Rng& rng);

  core::BootTimeline boot_timeline() const;

 private:
  hostk::HostKernel* host_;
};

}  // namespace securec
