#include "apps/btree.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>

namespace apps {

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<Key> keys;
  std::vector<Value> values;       // leaves only, parallel to keys
  std::vector<Node*> children;     // internal only, keys.size() + 1
  Node* next = nullptr;            // leaf chain
};

struct BPlusTree::InsertResult {
  Node* new_sibling = nullptr;  // set when the child split
  Key separator = 0;
};

BPlusTree::BPlusTree(std::size_t order) : order_(order), root_(new Node()) {
  if (order_ < 4) {
    throw std::invalid_argument("BPlusTree: order must be >= 4");
  }
}

BPlusTree::~BPlusTree() { free_tree(root_); }

void BPlusTree::free_tree(Node* node) {
  if (!node->leaf) {
    for (Node* c : node->children) {
      free_tree(c);
    }
  }
  delete node;
}

const BPlusTree::Node* BPlusTree::find_leaf(Key key, BtreeOpStats* stats) const {
  const Node* node = root_;
  while (!node->leaf) {
    if (stats) {
      ++stats->nodes_visited;
    }
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    node = node->children[static_cast<std::size_t>(it - node->keys.begin())];
  }
  if (stats) {
    ++stats->nodes_visited;
  }
  return node;
}

std::optional<BPlusTree::Value> BPlusTree::find(Key key,
                                                BtreeOpStats* stats) const {
  const Node* leaf = find_leaf(key, stats);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) {
    return leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
  }
  return std::nullopt;
}

BPlusTree::InsertResult BPlusTree::insert_rec(Node* node, Key key,
                                              Value&& value,
                                              BtreeOpStats& stats) {
  ++stats.nodes_visited;
  if (node->leaf) {
    const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const auto idx = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      node->values[idx] = std::move(value);  // overwrite
      return {};
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<std::ptrdiff_t>(idx),
                        std::move(value));
    ++size_;
    if (node->keys.size() < order_) {
      return {};
    }
    // Split the leaf.
    stats.splits = true;
    Node* sibling = new Node();
    const std::size_t mid = node->keys.size() / 2;
    sibling->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                         node->keys.end());
    sibling->values.assign(
        node->values.begin() + static_cast<std::ptrdiff_t>(mid),
        node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    sibling->next = node->next;
    node->next = sibling;
    return {sibling, sibling->keys.front()};
  }

  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const auto child_idx = static_cast<std::size_t>(it - node->keys.begin());
  const InsertResult child_result =
      insert_rec(node->children[child_idx], key, std::move(value), stats);
  if (child_result.new_sibling == nullptr) {
    return {};
  }
  node->keys.insert(node->keys.begin() + static_cast<std::ptrdiff_t>(child_idx),
                    child_result.separator);
  node->children.insert(
      node->children.begin() + static_cast<std::ptrdiff_t>(child_idx) + 1,
      child_result.new_sibling);
  if (node->keys.size() < order_) {
    return {};
  }
  // Split the internal node; the middle key moves up.
  stats.splits = true;
  Node* sibling = new Node();
  sibling->leaf = false;
  const std::size_t mid = node->keys.size() / 2;
  const Key up_key = node->keys[mid];
  sibling->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                       node->keys.end());
  sibling->children.assign(
      node->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
      node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return {sibling, up_key};
}

BtreeOpStats BPlusTree::insert(Key key, Value value) {
  BtreeOpStats stats;
  const InsertResult result = insert_rec(root_, key, std::move(value), stats);
  if (result.new_sibling != nullptr) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(result.separator);
    new_root->children.push_back(root_);
    new_root->children.push_back(result.new_sibling);
    root_ = new_root;
    ++height_;
  }
  return stats;
}

bool BPlusTree::erase(Key key, BtreeOpStats* stats) {
  Node* node = root_;
  while (!node->leaf) {
    if (stats) {
      ++stats->nodes_visited;
    }
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    node = node->children[static_cast<std::size_t>(it - node->keys.begin())];
  }
  if (stats) {
    ++stats->nodes_visited;
  }
  const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it == node->keys.end() || *it != key) {
    return false;
  }
  const auto idx = static_cast<std::size_t>(it - node->keys.begin());
  node->keys.erase(it);
  node->values.erase(node->values.begin() + static_cast<std::ptrdiff_t>(idx));
  --size_;
  return true;
}

std::size_t BPlusTree::scan(
    Key first, Key last,
    const std::function<bool(Key, const Value&)>& fn) const {
  const Node* leaf = find_leaf(first, nullptr);
  std::size_t visited = 0;
  while (leaf != nullptr) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] < first) {
        continue;
      }
      if (leaf->keys[i] > last) {
        return visited;
      }
      ++visited;
      if (!fn(leaf->keys[i], leaf->values[i])) {
        return visited;
      }
    }
    leaf = leaf->next;
  }
  return visited;
}

void BPlusTree::check_node(const Node* node, Key* last_key, std::uint32_t depth,
                           std::uint32_t leaf_depth) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    throw std::logic_error("BPlusTree: unsorted keys in node");
  }
  if (node->keys.size() >= order_) {
    throw std::logic_error("BPlusTree: overfull node");
  }
  if (node->leaf) {
    if (depth != leaf_depth) {
      throw std::logic_error("BPlusTree: leaves at different depths");
    }
    if (node->keys.size() != node->values.size()) {
      throw std::logic_error("BPlusTree: key/value arity mismatch");
    }
    for (const Key k : node->keys) {
      if (last_key != nullptr) {
        if (k <= *last_key) {
          throw std::logic_error("BPlusTree: global key order violated");
        }
        *last_key = k;
      }
    }
    return;
  }
  if (node->children.size() != node->keys.size() + 1) {
    throw std::logic_error("BPlusTree: internal child arity mismatch");
  }
  for (const Node* c : node->children) {
    check_node(c, last_key, depth + 1, leaf_depth);
  }
}

void BPlusTree::check_invariants() const {
  Key last = std::numeric_limits<Key>::min();
  check_node(root_, &last, 1, height_);
}

}  // namespace apps
