// A real B+tree — the storage engine under the MiniSQL OLTP benchmark.
//
// In-memory order-B tree with linked leaves (range scans), supporting
// insert, point lookup, update, erase. Node traversal counts are exposed
// so the OLTP model can charge per-level costs (cache misses per level).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace apps {

/// Statistics of one operation, for cost accounting.
struct BtreeOpStats {
  std::uint32_t nodes_visited = 0;
  bool splits = false;
};

class BPlusTree {
 public:
  using Key = std::int64_t;
  using Value = std::string;

  explicit BPlusTree(std::size_t order = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Insert or overwrite. Returns op stats (depth walked, splits).
  BtreeOpStats insert(Key key, Value value);

  /// Point lookup.
  std::optional<Value> find(Key key, BtreeOpStats* stats = nullptr) const;

  /// Remove a key (lazy deletion: underflow is tolerated, as in many
  /// production engines' leaf-level tombstoning). Returns true if found.
  bool erase(Key key, BtreeOpStats* stats = nullptr);

  /// Ordered range scan [first, last]; invokes fn per row until it
  /// returns false. Returns rows visited.
  std::size_t scan(Key first, Key last,
                   const std::function<bool(Key, const Value&)>& fn) const;

  std::size_t size() const { return size_; }
  std::uint32_t height() const { return height_; }

  /// Validates the B+tree invariants (ordering, fill, leaf chain);
  /// throws std::logic_error on violation. Used by property tests.
  void check_invariants() const;

 private:
  struct Node;
  struct InsertResult;

  InsertResult insert_rec(Node* node, Key key, Value&& value,
                          BtreeOpStats& stats);
  const Node* find_leaf(Key key, BtreeOpStats* stats) const;
  void check_node(const Node* node, Key* last_key, std::uint32_t depth,
                  std::uint32_t leaf_depth) const;
  void free_tree(Node* node);

  std::size_t order_;
  Node* root_;
  std::size_t size_ = 0;
  std::uint32_t height_ = 1;
};

}  // namespace apps
