// Memcached + YCSB benchmark (Figure 16).
//
// A real KvStore serves a YCSB workload-A stream arriving through the
// platform's network path. Per-request latency combines the network round
// trip, the server's per-packet datapath CPU and the store operation;
// throughput is concurrency-limited by the slower of the request pipeline
// and the platform's small-packet processing capacity. This reproduces
// the paper's Findings 17-19: containers on top, newer hypervisors lower,
// Kata surprisingly low, gVisor dragged down by Netstack.
#pragma once

#include <cstdint>

#include "apps/kv_store.h"
#include "apps/ycsb.h"
#include "platforms/platform.h"
#include "sim/clock.h"

namespace apps {

struct MemcachedSpec {
  YcsbSpec workload = YcsbWorkload::workload_a();
  std::uint32_t client_threads = 32;
  std::uint32_t sampled_ops = 4'000;  // requests simulated per run
  std::uint64_t server_memory = 512ull << 20;
};

struct MemcachedResult {
  double ops_per_second = 0.0;
  double mean_latency_us = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t evictions = 0;
};

class MemcachedBench {
 public:
  explicit MemcachedBench(MemcachedSpec spec = {});

  /// One benchmark run: loads the store, then drives the request stream.
  MemcachedResult run(platforms::Platform& platform, sim::Clock& clock,
                      sim::Rng& rng) const;

 private:
  MemcachedSpec spec_;
};

}  // namespace apps
