#include "apps/oltp_bench.h"

#include <algorithm>

namespace apps {

namespace {
// Latency-model constants (calibrated against Figure 17).
constexpr double kPerQueryCpuUs = 65.0;     // parse/plan/execute per query
constexpr int kQueriesPerTxn = 14;          // 10 selects + scan + U/D/I
constexpr double kPerNodeUs = 0.4;          // B+tree node walk
constexpr double kPerRowUs = 2.0;           // row materialization
constexpr double kMemAccessesPerRow = 1100;  // buffer-pool walk accesses
constexpr double kContentionBaseMs = 1.45;  // lock wait at the knee
constexpr int kKneeGuest = 48;              // guests peak ~50 (Finding 20)
constexpr int kKneeNative = 105;            // native peaks ~110
constexpr double kEngineCapTps = 14'000;    // hot-row/log ceiling
}  // namespace

int OltpResult::peak_threads() const {
  int best = 0;
  double best_tps = -1.0;
  for (const auto& p : curve) {
    if (p.tps > best_tps) {
      best_tps = p.tps;
      best = p.threads;
    }
  }
  return best;
}

double OltpResult::peak_tps() const {
  double best = 0.0;
  for (const auto& p : curve) {
    best = std::max(best, p.tps);
  }
  return best;
}

OltpBench::OltpBench(OltpSpec spec) : spec_(std::move(spec)) {}

sim::Nanos OltpBench::txn_latency(platforms::Platform& platform, MiniSql& db,
                                  const TxnFootprint& fp, int threads,
                                  sim::Rng& rng) const {
  (void)db;
  const auto& cpu = platform.cpu_profile();
  double us = 0.0;

  // CPU: queries + real engine work.
  us += kPerQueryCpuUs * kQueriesPerTxn;
  us += kPerNodeUs * fp.btree_nodes;
  us += kPerRowUs * fp.rows_touched;

  // Memory subsystem: buffer-pool walks pay the backing penalty.
  us += platform.memory_profile().backing_extra_ns * kMemAccessesPerRow *
        fp.rows_touched / 1e3;

  // I/O: buffer-pool misses (random point reads, QD1) + one WAL flush.
  if (storage::BlockPath* path = platform.block()) {
    sim::Nanos io = 0;
    for (std::uint32_t i = 0; i < fp.page_reads; ++i) {
      io += path->read(/*file=*/0xDB, rng.next_u64() % (1ull << 33), 16 << 10,
                       /*direct=*/true, rng, /*queue_depth=*/1);
    }
    io += path->write(/*file=*/0xA10, 0, 16 << 10, true, rng, 1);
    us += sim::to_micros(io);
  }

  // Network: query/response round trips (batched by sysbench pipelining).
  auto& nic = platform.host().nic();
  us += sim::to_micros(platform.net().round_trip(nic, 256, rng)) * 2.0;

  // Synchronization: row locks + internal latches through the platform's
  // futex path...
  sim::Nanos sync = 0;
  for (std::uint32_t i = 0; i < fp.lock_acquisitions + 4; ++i) {
    sync += platform.sync_syscall_cost(rng);
  }
  us += sim::to_micros(sync);

  // ...plus contention: quadratic lock-wait growth past the platform's
  // scaling knee. Native's knee sits much higher (Finding 20).
  const int knee =
      platform.id() == platforms::PlatformId::kNative ? kKneeNative : kKneeGuest;
  const double ratio = static_cast<double>(threads) / knee;
  us += kContentionBaseMs * 1e3 * cpu.futex_cost_factor * ratio * ratio;

  // Custom schedulers inflate the whole service time with thread count
  // (OSv and gVisor, Finding 21).
  us *= 1.0 + cpu.sched_alpha * std::max(0, threads - 1);

  return sim::micros(us);
}

OltpResult OltpBench::run(platforms::Platform& platform, sim::Clock& clock,
                          sim::Rng& rng) const {
  OltpResult result;
  MiniSql db(spec_.rows_per_table);
  db.prepare(rng);

  std::uint64_t txn_id = 1;
  for (const int threads : spec_.thread_counts) {
    double latency_sum_us = 0.0;
    std::uint32_t aborts = 0;
    // Model concurrency: a window of ~threads/4 transactions keeps its
    // row locks in flight, so later transactions can genuinely conflict
    // through the real lock manager.
    const std::uint64_t window = static_cast<std::uint64_t>(threads) / 4 + 1;
    for (std::uint32_t i = 0; i < spec_.sampled_txns; ++i) {
      bool aborted = false;
      const TxnFootprint fp =
          db.run_transaction(txn_id, rng, &aborted, /*hold_locks=*/true);
      if (txn_id > window) {
        db.commit(txn_id - window);
      }
      ++txn_id;
      aborts += aborted;
      const sim::Nanos lat = txn_latency(platform, db, fp, threads, rng);
      latency_sum_us += sim::to_micros(lat);
      clock.advance(lat);
    }
    // Drain the in-flight window before the next thread count.
    for (std::uint64_t t = txn_id > window ? txn_id - window : 1; t < txn_id;
         ++t) {
      db.commit(t);
    }
    const double mean_latency_us = latency_sum_us / spec_.sampled_txns;
    double tps = static_cast<double>(threads) / (mean_latency_us * 1e-6);
    // Engine ceiling: hot-row conflicts and log serialization cap every
    // platform. Batching efficiency lets the ceiling rise gently up to
    // ~110 clients, after which it erodes — which is why native "peaks"
    // around 110 without a large margin over the platforms (Finding 20).
    const double cap = kEngineCapTps *
                       (1.0 + 0.0012 * std::min(threads, 110)) *
                       (1.0 - 0.0020 * std::max(0, threads - 110));
    tps = std::min(tps, cap);
    // Run-to-run variability (the wide error bands of Finding 23 come
    // from repeating whole runs in the figure harness).
    tps *= 1.0 + rng.normal(0.0, 0.015);
    result.curve.push_back(OltpPoint{
        threads, tps, mean_latency_us / 1e3,
        static_cast<double>(aborts) / spec_.sampled_txns});
  }
  return result;
}

}  // namespace apps
