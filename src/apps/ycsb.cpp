#include "apps/ycsb.h"

namespace apps {

YcsbWorkload::YcsbWorkload(YcsbSpec spec)
    : spec_(spec), zipf_(spec.record_count, spec.zipfian_theta) {}

YcsbSpec YcsbWorkload::workload_a() { return YcsbSpec{}; }

YcsbSpec YcsbWorkload::workload_b() {
  YcsbSpec s;
  s.read_proportion = 0.95;
  s.update_proportion = 0.05;
  return s;
}

YcsbSpec YcsbWorkload::workload_c() {
  YcsbSpec s;
  s.read_proportion = 1.0;
  s.update_proportion = 0.0;
  return s;
}

YcsbRequest YcsbWorkload::next(sim::Rng& rng) {
  const std::uint64_t record = zipf_.next(rng);
  const double p = rng.next_double();
  YcsbOp op;
  if (p < spec_.read_proportion) {
    op = YcsbOp::kRead;
  } else if (p < spec_.read_proportion + spec_.update_proportion) {
    op = YcsbOp::kUpdate;
  } else {
    op = YcsbOp::kInsert;
  }
  return YcsbRequest{op, key_for(record)};
}

std::string YcsbWorkload::key_for(std::uint64_t record) {
  // YCSB hashes the record id to avoid clustering; FNV-1a keeps it cheap
  // and deterministic.
  std::uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (record >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return "user" + std::to_string(h % 10'000'000'000ull);
}

std::string YcsbWorkload::value_for(std::uint64_t record) const {
  std::string v;
  v.reserve(spec_.value_bytes);
  const char base = static_cast<char>('a' + record % 26);
  for (std::uint32_t i = 0; i < spec_.value_bytes; ++i) {
    v.push_back(static_cast<char>(base + i % 17));
  }
  return v;
}

}  // namespace apps
