#include "apps/memcached_bench.h"

#include <algorithm>

namespace apps {

MemcachedBench::MemcachedBench(MemcachedSpec spec) : spec_(std::move(spec)) {}

MemcachedResult MemcachedBench::run(platforms::Platform& platform,
                                    sim::Clock& clock, sim::Rng& rng) const {
  MemcachedResult result;
  KvStore store(spec_.server_memory);
  YcsbWorkload workload(spec_.workload);
  auto& nic = platform.host().nic();

  // Load phase (not timed by YCSB's run phase).
  for (std::uint64_t r = 0; r < spec_.workload.record_count; ++r) {
    store.set(YcsbWorkload::key_for(r), workload.value_for(r));
  }

  // Run phase: sample per-request latency.
  double latency_sum_us = 0.0;
  const auto& mem_profile = platform.memory_profile();
  for (std::uint32_t i = 0; i < spec_.sampled_ops; ++i) {
    const YcsbRequest req = workload.next(rng);
    // Request travels the platform's network path (small request, ~1 KiB
    // response for reads).
    const std::uint32_t response_bytes =
        req.op == YcsbOp::kRead ? spec_.workload.value_bytes : 64;
    sim::Nanos lat = platform.net().round_trip(nic, response_bytes, rng);
    // Server-side datapath CPU for request + response packets.
    lat += platform.net().sender_cpu_cost(response_bytes + 64, nic);
    // The store operation itself (real hash-table work) plus the memory
    // subsystem's per-access penalty on the value copy.
    if (req.op == YcsbOp::kRead) {
      (void)store.get(req.key);
    } else {
      store.set(req.key, workload.value_for(i % spec_.workload.record_count));
    }
    lat += sim::nanos(600);  // hash + LRU bookkeeping
    lat += static_cast<sim::Nanos>(mem_profile.backing_extra_ns * 40.0);
    latency_sum_us += sim::to_micros(lat);
    clock.advance(lat);
  }
  result.mean_latency_us = latency_sum_us / spec_.sampled_ops;

  // Concurrency-limited throughput, capped by the platform's small-packet
  // processing capacity (request and response each traverse the datapath).
  const double pipeline_ops =
      static_cast<double>(spec_.client_threads) /
      (result.mean_latency_us * 1e-6);
  const sim::Nanos per_op_cpu =
      platform.net().sender_cpu_cost(spec_.workload.value_bytes, nic) +
      platform.net().sender_cpu_cost(64, nic);
  const double capacity_ops = 1.0 / std::max(sim::to_seconds(per_op_cpu), 1e-9);
  result.ops_per_second = std::min(pipeline_ops, capacity_ops);
  result.hit_ratio = store.hit_ratio();
  result.evictions = store.stats().evictions;
  return result;
}

}  // namespace apps
