#include "apps/kv_store.h"

namespace apps {

namespace {
constexpr std::uint64_t kPerItemOverhead = 56;  // header + pointers
}

KvStore::KvStore(std::uint64_t memory_limit_bytes)
    : memory_limit_(memory_limit_bytes) {}

std::uint64_t KvStore::item_cost(const std::string& key,
                                 const std::string& value) {
  return key.size() + value.size() + kPerItemOverhead;
}

void KvStore::evict_until_fits(std::uint64_t needed) {
  while (bytes_used_ + needed > memory_limit_ && !lru_.empty()) {
    const Item& victim = lru_.back();
    bytes_used_ -= item_cost(victim.key, victim.value);
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool KvStore::set(const std::string& key, std::string value) {
  ++stats_.sets;
  const std::uint64_t needed = item_cost(key, value);
  if (needed > memory_limit_) {
    return false;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_used_ -= item_cost(key, it->second->value);
    lru_.erase(it->second);
    index_.erase(it);
  }
  evict_until_fits(needed);
  lru_.push_front(Item{key, std::move(value)});
  index_[key] = lru_.begin();
  bytes_used_ += needed;
  stats_.bytes_stored = bytes_used_;
  return true;
}

std::optional<std::string> KvStore::get(const std::string& key) {
  ++stats_.gets;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return std::nullopt;
  }
  ++stats_.get_hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

bool KvStore::erase(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  bytes_used_ -= item_cost(key, it->second->value);
  lru_.erase(it->second);
  index_.erase(it);
  stats_.bytes_stored = bytes_used_;
  return true;
}

double KvStore::hit_ratio() const {
  if (stats_.gets == 0) {
    return 0.0;
  }
  return static_cast<double>(stats_.get_hits) /
         static_cast<double>(stats_.gets);
}

}  // namespace apps
