// An in-memory key-value store: the storage engine behind our Memcached.
//
// A real chained hash table with slab-style memory accounting and LRU
// eviction, like memcached's core. The simulator runs actual inserts and
// lookups; per-operation probe counts feed the service-time model.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace apps {

struct KvStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t sets = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_stored = 0;
};

/// memcached-like store: bounded memory, LRU eviction, flat string values.
class KvStore {
 public:
  explicit KvStore(std::uint64_t memory_limit_bytes = 256ull << 20);

  /// Store (or replace) a value. Evicts LRU entries to fit. Returns false
  /// only if the item alone exceeds the memory limit.
  bool set(const std::string& key, std::string value);

  /// Fetch a value; refreshes LRU position on hit.
  std::optional<std::string> get(const std::string& key);

  /// Remove a key. Returns whether it existed.
  bool erase(const std::string& key);

  std::size_t size() const { return index_.size(); }
  std::uint64_t bytes_used() const { return bytes_used_; }
  std::uint64_t memory_limit() const { return memory_limit_; }
  const KvStats& stats() const { return stats_; }
  double hit_ratio() const;

 private:
  struct Item {
    std::string key;
    std::string value;
  };
  using LruList = std::list<Item>;

  static std::uint64_t item_cost(const std::string& key,
                                 const std::string& value);
  void evict_until_fits(std::uint64_t needed);

  std::uint64_t memory_limit_;
  std::uint64_t bytes_used_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  KvStats stats_;
};

}  // namespace apps
