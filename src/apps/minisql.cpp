#include "apps/minisql.h"

namespace apps {

Table::Table(std::string name) : name_(std::move(name)) {}

std::string LockManager::key_of(const std::string& table, std::int64_t row) {
  return table + ":" + std::to_string(row);
}

bool LockManager::lock(std::uint64_t txn, const std::string& table,
                       std::int64_t row) {
  const std::string key = key_of(table, row);
  const auto it = owner_.find(key);
  if (it != owner_.end()) {
    if (it->second == txn) {
      return true;  // re-entrant
    }
    ++conflicts_;
    return false;
  }
  owner_[key] = txn;
  by_txn_[txn].push_back(key);
  return true;
}

void LockManager::release_all(std::uint64_t txn) {
  const auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) {
    return;
  }
  for (const auto& key : it->second) {
    owner_.erase(key);
  }
  by_txn_.erase(it);
}

MiniSql::MiniSql(std::uint64_t rows_per_table)
    : rows_per_table_(rows_per_table), next_insert_id_(rows_per_table + 1) {
  for (int i = 0; i < kTables; ++i) {
    tables_.push_back(std::make_unique<Table>("sbtest" + std::to_string(i + 1)));
  }
}

Row MiniSql::make_row(std::uint64_t id, sim::Rng& rng) const {
  Row row;
  row.k = static_cast<std::int64_t>(id % rows_per_table_);
  row.c = std::string(24, static_cast<char>('a' + (id + rng.next_u64() % 7) % 26));
  row.pad = std::string(12, static_cast<char>('0' + id % 10));
  return row;
}

std::string MiniSql::encode(const Row& row) {
  return std::to_string(row.k) + "|" + row.c + "|" + row.pad;
}

void MiniSql::prepare(sim::Rng& rng) {
  for (auto& table : tables_) {
    for (std::uint64_t id = 1; id <= rows_per_table_; ++id) {
      table->tree().insert(static_cast<std::int64_t>(id),
                           encode(make_row(id, rng)));
    }
  }
}

TxnFootprint MiniSql::run_transaction(std::uint64_t txn_id, sim::Rng& rng,
                                      bool* aborted, bool hold_locks) {
  TxnFootprint fp;
  if (aborted) {
    *aborted = false;
  }
  auto random_id = [&]() {
    return rng.uniform_int(1, static_cast<std::int64_t>(rows_per_table_));
  };
  auto& t1 = *tables_[static_cast<std::size_t>(
      rng.uniform_int(0, kTables - 1))];

  // 10 point SELECTs (sysbench default).
  for (int i = 0; i < 10; ++i) {
    BtreeOpStats stats;
    (void)t1.tree().find(random_id(), &stats);
    fp.btree_nodes += stats.nodes_visited;
    ++fp.rows_touched;
  }
  // Small range scan.
  const std::int64_t base = random_id();
  fp.rows_touched += static_cast<std::uint32_t>(t1.tree().scan(
      base, base + 99, [](BPlusTree::Key, const std::string&) { return true; }));

  // UPDATE one row.
  const std::int64_t upd_id = random_id();
  if (!locks_.lock(txn_id, t1.name(), upd_id)) {
    if (aborted) {
      *aborted = true;
    }
    locks_.release_all(txn_id);
    return fp;
  }
  ++fp.lock_acquisitions;
  {
    BtreeOpStats stats;
    auto row = t1.tree().find(upd_id, &stats);
    fp.btree_nodes += stats.nodes_visited;
    if (row) {
      auto ins = t1.tree().insert(upd_id, *row + "+");
      fp.btree_nodes += ins.nodes_visited;
      ++fp.rows_touched;
      ++fp.wal_appends;
      wal_bytes_ += row->size() + 32;
    }
  }

  // DELETE one row, then INSERT a fresh one (sysbench keeps cardinality).
  const std::int64_t del_id = random_id();
  if (!locks_.lock(txn_id, t1.name(), del_id)) {
    if (aborted) {
      *aborted = true;
    }
    locks_.release_all(txn_id);
    return fp;
  }
  ++fp.lock_acquisitions;
  {
    BtreeOpStats stats;
    if (t1.tree().erase(del_id, &stats)) {
      ++fp.rows_touched;
      ++fp.wal_appends;
      wal_bytes_ += 24;
    }
    fp.btree_nodes += stats.nodes_visited;
    const std::int64_t new_id =
        static_cast<std::int64_t>(next_insert_id_++);
    auto ins = t1.tree().insert(new_id, encode(make_row(
                                            static_cast<std::uint64_t>(new_id),
                                            rng)));
    fp.btree_nodes += ins.nodes_visited;
    ++fp.rows_touched;
    ++fp.wal_appends;
    wal_bytes_ += 64;
  }

  // Buffer-pool misses: the working set exceeds the pool; a fraction of
  // row touches go to storage.
  fp.page_reads = 1 + static_cast<std::uint32_t>(fp.rows_touched / 8);
  if (!hold_locks) {
    locks_.release_all(txn_id);
  }
  return fp;
}

}  // namespace apps
