// YCSB — Yahoo! Cloud Serving Benchmark workload generator (Section 3.6).
//
// Implements the request mix and key-popularity model of YCSB's core
// workloads; the paper uses workload A (50/50 reads and updates, zipfian
// record selection — "a session store recording recent actions").
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.h"

namespace apps {

enum class YcsbOp { kRead, kUpdate, kInsert, kScan };

struct YcsbSpec {
  std::uint64_t record_count = 100'000;
  std::uint32_t value_bytes = 1'000;  // 10 fields x 100 bytes in real YCSB
  double read_proportion = 0.5;       // workload A
  double update_proportion = 0.5;
  double zipfian_theta = 0.99;
};

struct YcsbRequest {
  YcsbOp op;
  std::string key;
};

/// Generates the request stream.
class YcsbWorkload {
 public:
  explicit YcsbWorkload(YcsbSpec spec = {});

  /// The canonical presets.
  static YcsbSpec workload_a();  // 50/50 read/update (the paper's choice)
  static YcsbSpec workload_b();  // 95/5 read/update
  static YcsbSpec workload_c();  // read only

  YcsbRequest next(sim::Rng& rng);

  /// Key for a record id (YCSB's "user<hash>" format).
  static std::string key_for(std::uint64_t record);

  /// Deterministic payload for a record.
  std::string value_for(std::uint64_t record) const;

  const YcsbSpec& spec() const { return spec_; }

 private:
  YcsbSpec spec_;
  sim::ZipfianGenerator zipf_;
};

}  // namespace apps
