// MiniSQL: a small relational storage engine (tables on B+trees, row
// locks, write-ahead log) — the MySQL stand-in for the paper's sysbench
// oltp_read_write experiment (Section 3.7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "apps/btree.h"
#include "sim/rng.h"

namespace apps {

/// Row payload compatible with sysbench's sbtest schema (id, k, c, pad).
struct Row {
  std::int64_t k;
  std::string c;    // 120-char filler in sysbench
  std::string pad;  // 60-char filler
};

/// Aggregate cost drivers of a transaction, for the OLTP latency model.
struct TxnFootprint {
  std::uint32_t btree_nodes = 0;   // index levels touched
  std::uint32_t rows_touched = 0;
  std::uint32_t lock_acquisitions = 0;
  std::uint32_t wal_appends = 0;
  std::uint32_t page_reads = 0;    // buffer-pool misses needing I/O
};

/// One table: a primary B+tree keyed by row id.
class Table {
 public:
  explicit Table(std::string name);

  const std::string& name() const { return name_; }
  std::size_t rows() const { return tree_.size(); }
  BPlusTree& tree() { return tree_; }

 private:
  std::string name_;
  BPlusTree tree_;
};

/// Very small row-lock manager (2PL, txn-scoped).
class LockManager {
 public:
  /// Try to lock (table, row) for a transaction. Returns false on
  /// conflict with another holder.
  bool lock(std::uint64_t txn, const std::string& table, std::int64_t row);

  /// Release all locks of a transaction.
  void release_all(std::uint64_t txn);

  std::size_t held() const { return owner_.size(); }
  std::uint64_t conflicts() const { return conflicts_; }

 private:
  static std::string key_of(const std::string& table, std::int64_t row);

  std::unordered_map<std::string, std::uint64_t> owner_;
  std::unordered_map<std::uint64_t, std::vector<std::string>> by_txn_;
  std::uint64_t conflicts_ = 0;
};

/// The engine: 3 sbtest tables, a lock manager and WAL accounting.
class MiniSql {
 public:
  static constexpr int kTables = 3;

  explicit MiniSql(std::uint64_t rows_per_table = 100'000);

  /// Populate all tables (sysbench's prepare phase). Deterministic rows.
  void prepare(sim::Rng& rng);

  /// Execute one oltp_read_write transaction: point SELECTs, one UPDATE,
  /// one DELETE and one INSERT (the paper's definition of a transaction),
  /// against real B+trees, under row locks. Returns its footprint;
  /// `aborted` is set when a lock conflict forces a retry.
  ///
  /// With `hold_locks` the transaction's row locks stay held after it
  /// returns (strict 2PL with the commit deferred); the caller models
  /// concurrent clients by releasing a window of transactions later via
  /// `commit()`. Aborted transactions always release immediately.
  TxnFootprint run_transaction(std::uint64_t txn_id, sim::Rng& rng,
                               bool* aborted = nullptr,
                               bool hold_locks = false);

  /// Release the locks of a previously held transaction.
  void commit(std::uint64_t txn_id) { locks_.release_all(txn_id); }

  std::uint64_t rows_per_table() const { return rows_per_table_; }
  Table& table(int i) { return *tables_[static_cast<std::size_t>(i)]; }
  LockManager& locks() { return locks_; }
  std::uint64_t wal_bytes() const { return wal_bytes_; }

 private:
  Row make_row(std::uint64_t id, sim::Rng& rng) const;
  static std::string encode(const Row& row);

  std::uint64_t rows_per_table_;
  std::vector<std::unique_ptr<Table>> tables_;
  LockManager locks_;
  std::uint64_t next_insert_id_;
  std::uint64_t wal_bytes_ = 0;
};

}  // namespace apps
