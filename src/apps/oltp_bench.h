// Sysbench oltp_read_write over MiniSQL (Figure 17).
//
// Executes real transactions against the B+tree engine and converts each
// transaction's footprint into platform-dependent virtual time:
//   - CPU: index traversals and row processing
//   - memory: buffer-pool walks pay the platform's per-access penalty
//     (Firecracker's root cause per Finding 22)
//   - I/O: buffer-pool misses and WAL appends through the block path
//     (Kata's root cause per Finding 22)
//   - network: client<->server query round trips
//   - synchronization: row locks through the platform's futex path, with
//     quadratic contention beyond the platform's scaling knee
// The thread sweep then reproduces the three groups of Findings 20-23.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/minisql.h"
#include "platforms/platform.h"
#include "sim/clock.h"

namespace apps {

struct OltpSpec {
  std::uint64_t rows_per_table = 20'000;  // scaled-down sbtest tables
  std::uint32_t sampled_txns = 120;       // per thread-count measurement
  std::vector<int> thread_counts = {10, 20, 40, 50, 60, 80, 110, 130, 160};
};

struct OltpPoint {
  int threads = 0;
  double tps = 0.0;
  double mean_latency_ms = 0.0;
  double abort_rate = 0.0;
};

struct OltpResult {
  std::vector<OltpPoint> curve;

  /// Threads at which tps peaks.
  int peak_threads() const;
  double peak_tps() const;
};

class OltpBench {
 public:
  explicit OltpBench(OltpSpec spec = {});

  OltpResult run(platforms::Platform& platform, sim::Clock& clock,
                 sim::Rng& rng) const;

  /// Per-transaction service time on `platform` at a given thread count
  /// (exposed for tests).
  sim::Nanos txn_latency(platforms::Platform& platform, MiniSql& db,
                         const TxnFootprint& fp, int threads,
                         sim::Rng& rng) const;

 private:
  OltpSpec spec_;
};

}  // namespace apps
