// EPSS — Exploit Prediction Scoring System model (Section 4).
//
// The paper extends the HAP metric by weighing each host kernel function
// by its likelihood of exploitation under the EPSS model (Jacobs et al.).
// We model per-function scores deterministically: a subsystem base rate
// (network-facing and KVM entry points score higher than, say, time-
// keeping helpers) modulated by a stable per-symbol hash, so that scores
// are reproducible without shipping the proprietary EPSS data set.
#pragma once

#include "hostk/kernel_function.h"

namespace hap {

class EpssModel {
 public:
  /// Probability-of-exploit score in [0, 1) for one kernel function.
  /// Deterministic: the same symbol always scores the same.
  double score(const hostk::KernelFunction& fn) const;

  /// Subsystem base rate (mean score of a function in that subsystem).
  static double subsystem_base_rate(hostk::Subsystem s);
};

}  // namespace hap
