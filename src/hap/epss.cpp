#include "hap/epss.h"

#include <algorithm>
#include <cmath>

namespace hap {

double EpssModel::subsystem_base_rate(hostk::Subsystem s) {
  using hostk::Subsystem;
  switch (s) {
    case Subsystem::kNet:
      return 0.072;  // remotely-reachable parsing code
    case Subsystem::kKvm:
      return 0.065;  // guest-controlled inputs
    case Subsystem::kVsock:
      return 0.058;
    case Subsystem::kVfs:
      return 0.041;
    case Subsystem::kExt4:
      return 0.038;
    case Subsystem::kBlock:
      return 0.031;
    case Subsystem::kMm:
      return 0.044;  // historically rich in privilege escalations
    case Subsystem::kIpc:
      return 0.046;  // futex CVE history
    case Subsystem::kNamespace:
      return 0.036;
    case Subsystem::kCgroup:
      return 0.027;
    case Subsystem::kSignal:
      return 0.029;
    case Subsystem::kSecurity:
      return 0.018;
    case Subsystem::kSched:
      return 0.016;
    case Subsystem::kTime:
      return 0.012;
    case Subsystem::kIrq:
      return 0.014;
    case Subsystem::kMisc:
      return 0.024;
  }
  return 0.02;
}

double EpssModel::score(const hostk::KernelFunction& fn) const {
  // FNV-1a over the symbol name: a stable pseudo-draw in [0,1).
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : fn.name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  // EPSS scores are heavy-tailed: most functions score near the base
  // rate, a few much higher. Model with a power-law tail.
  const double base = subsystem_base_rate(fn.subsystem);
  const double tail = std::pow(u, 6.0);  // rare high outliers
  return std::min(0.97, base * (0.4 + 1.2 * u) + tail * 0.5);
}

}  // namespace hap
