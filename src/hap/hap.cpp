#include "hap/hap.h"

namespace hap {

HapExperiment::HapExperiment(int workload_rounds)
    : workload_rounds_(workload_rounds) {}

HapScore HapExperiment::measure(platforms::Platform& platform,
                                sim::Rng& rng) const {
  using platforms::WorkloadClass;
  auto& ftrace = platform.host().kernel().ftrace();
  ftrace.start();
  for (int round = 0; round < workload_rounds_; ++round) {
    for (const auto w : {WorkloadClass::kCpu, WorkloadClass::kMemory,
                         WorkloadClass::kIo, WorkloadClass::kNetwork}) {
      platform.record_workload(w, rng);
    }
  }
  // Start the platform and shut it down (the paper's fifth trace).
  platform.record_workload(WorkloadClass::kStartup, rng);
  ftrace.stop();

  HapScore score;
  score.platform = platform.name();
  score.distinct_functions = ftrace.distinct_functions();
  score.total_invocations = ftrace.total_invocations();
  score.hap_breadth = static_cast<double>(score.distinct_functions);
  const auto& registry = platform.host().kernel().registry();
  for (const auto& [fn, count] : ftrace.counts()) {
    score.extended_hap += epss_.score(registry.function(fn));
  }
  score.by_subsystem = ftrace.distinct_by_subsystem();
  return score;
}

std::vector<HapScore> HapExperiment::measure_all(
    std::vector<std::unique_ptr<platforms::Platform>>& lineup,
    sim::Rng& rng) const {
  std::vector<HapScore> scores;
  scores.reserve(lineup.size());
  for (auto& platform : lineup) {
    scores.push_back(measure(*platform, rng));
  }
  return scores;
}

}  // namespace hap
