// The Horizontal Attack Profile experiment (Section 4, Figure 18).
//
// Methodology reproduced from the paper: run the Sysbench CPU, memory and
// I/O workloads, the iperf3 network benchmark, and a start+stop cycle on
// each platform while ftrace records every host kernel function invoked.
// The original HAP is the breadth (distinct functions); the paper's
// extension weighs each function by its EPSS exploitability score.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "hap/epss.h"
#include "platforms/platform.h"

namespace hap {

struct HapScore {
  std::string platform;
  std::size_t distinct_functions = 0;
  std::uint64_t total_invocations = 0;
  /// Original HAP metric: breadth only.
  double hap_breadth = 0.0;
  /// Extended metric: sum of EPSS scores over distinct functions hit.
  double extended_hap = 0.0;
  /// Distinct functions per subsystem (for the breakdown table).
  std::unordered_map<hostk::Subsystem, std::size_t> by_subsystem;
};

/// Runs the tracing protocol against one platform.
class HapExperiment {
 public:
  /// `workload_rounds` scales how long each traced workload runs (the
  /// paper traces full benchmark executions; breadth saturates quickly).
  explicit HapExperiment(int workload_rounds = 3);

  HapScore measure(platforms::Platform& platform, sim::Rng& rng) const;

  /// Convenience: measure a whole lineup.
  std::vector<HapScore> measure_all(
      std::vector<std::unique_ptr<platforms::Platform>>& lineup,
      sim::Rng& rng) const;

 private:
  int workload_rounds_;
  EpssModel epss_;
};

}  // namespace hap
