#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace sim {

std::string format_duration(Nanos n) {
  char buf[64];
  const double abs_n = std::abs(static_cast<double>(n));
  if (abs_n >= kNanosPerSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", to_seconds(n));
  } else if (abs_n >= kNanosPerMilli) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", to_millis(n));
  } else if (abs_n >= kNanosPerMicro) {
    std::snprintf(buf, sizeof(buf), "%.3f us", to_micros(n));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(n));
  }
  return buf;
}

}  // namespace sim
