#include "sim/rng.h"

#include <cmath>
#include <stdexcept>

namespace sim {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::uniform_int: lo > hi");
  }
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) {
    u1 = next_double();
  }
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("Rng::exponential: lambda must be positive");
  }
  double u = next_double();
  while (u <= 1e-300) {
    u = next_double();
  }
  return -std::log(u) / lambda;
}

double Rng::pareto(double scale, double shape) {
  if (scale <= 0.0 || shape <= 0.0) {
    throw std::invalid_argument("Rng::pareto: scale and shape must be positive");
  }
  double u = next_double();
  while (u <= 1e-300) {
    u = next_double();
  }
  return scale / std::pow(u, 1.0 / shape);
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) {
    throw std::invalid_argument("ZipfianGenerator: n must be positive");
  }
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double raw =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t item = static_cast<std::uint64_t>(raw);
  if (item >= n_) {
    item = n_ - 1;
  }
  return item;
}

}  // namespace sim
