// The virtual clock that every simulated component charges its costs to.
#pragma once

#include <stdexcept>

#include "sim/time.h"

namespace sim {

/// Monotonic virtual clock. Components advance it by the cost of the work
/// they model; experiments read it to convert virtual elapsed time into
/// reported metrics. The clock never goes backwards.
class Clock {
 public:
  Clock() = default;
  explicit Clock(Nanos start) : now_(start) {}

  /// Current virtual time since the clock's epoch.
  Nanos now() const { return now_; }

  /// Charge `cost` virtual nanoseconds. Throws std::invalid_argument on a
  /// negative cost; a zero cost is allowed (free bookkeeping operations).
  void advance(Nanos cost) {
    if (cost < 0) {
      throw std::invalid_argument("Clock::advance: negative cost");
    }
    now_ += cost;
  }

  /// Jump to an absolute virtual time, used when merging timelines of
  /// concurrently modeled actors. Throws if `t` is in the past.
  void advance_to(Nanos t) {
    if (t < now_) {
      throw std::invalid_argument("Clock::advance_to: time would go backwards");
    }
    now_ = t;
  }

  /// Reset to the epoch. Only experiments (not components) should call this.
  void reset() { now_ = 0; }

 private:
  Nanos now_ = 0;
};

/// RAII helper that measures the virtual time spent in a scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Clock& clock) : clock_(clock), start_(clock.now()) {}
  Nanos elapsed() const { return clock_.now() - start_; }

 private:
  const Clock& clock_;
  Nanos start_;
};

}  // namespace sim
