#include "sim/distribution.h"

#include <cmath>
#include <stdexcept>

namespace sim {

DurationDist DurationDist::constant(Nanos value) {
  if (value < 0) {
    throw std::invalid_argument("DurationDist::constant: negative duration");
  }
  return DurationDist(Constant{value});
}

DurationDist DurationDist::normal(Nanos mean, Nanos stddev) {
  if (mean < 0 || stddev < 0) {
    throw std::invalid_argument("DurationDist::normal: negative parameter");
  }
  return DurationDist(Normal{mean, stddev});
}

DurationDist DurationDist::lognormal(Nanos median, double sigma) {
  if (median <= 0 || sigma < 0) {
    throw std::invalid_argument("DurationDist::lognormal: invalid parameter");
  }
  return DurationDist(LogNormal{std::log(static_cast<double>(median)), sigma});
}

DurationDist DurationDist::exponential(Nanos mean) {
  if (mean <= 0) {
    throw std::invalid_argument("DurationDist::exponential: mean must be positive");
  }
  return DurationDist(Exponential{mean});
}

Nanos DurationDist::sample(Rng& rng) const {
  return std::visit(
      [&rng](const auto& d) -> Nanos {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Constant>) {
          return d.value;
        } else if constexpr (std::is_same_v<T, Normal>) {
          const double v = rng.normal(static_cast<double>(d.mean),
                                      static_cast<double>(d.stddev));
          return v < 0.0 ? 0 : static_cast<Nanos>(v);
        } else if constexpr (std::is_same_v<T, LogNormal>) {
          return static_cast<Nanos>(rng.lognormal(d.mu, d.sigma));
        } else {
          return static_cast<Nanos>(
              rng.exponential(1.0 / static_cast<double>(d.mean)));
        }
      },
      impl_);
}

Nanos DurationDist::mean() const {
  return std::visit(
      [](const auto& d) -> Nanos {
        using T = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<T, Constant>) {
          return d.value;
        } else if constexpr (std::is_same_v<T, Normal>) {
          return d.mean;
        } else if constexpr (std::is_same_v<T, LogNormal>) {
          return static_cast<Nanos>(std::exp(d.mu + d.sigma * d.sigma / 2.0));
        } else {
          return d.mean;
        }
      },
      impl_);
}

}  // namespace sim
