// Deterministic pseudo-random number generation for the simulator.
//
// Every experiment seeds its own Rng so figures are bit-for-bit reproducible
// across runs and machines. The generator is xoshiro256++ (public domain,
// Blackman & Vigna), seeded through splitmix64 so that small seeds still
// produce well-mixed state.
#pragma once

#include <array>
#include <cstdint>

namespace sim {

/// xoshiro256++ generator with convenience samplers for the distributions
/// the cost models need. Not thread safe; use one instance per actor.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1505'CAFE'F00D'5EEDull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda). Mean is 1/lambda.
  double exponential(double lambda);

  /// Pareto (heavy tail) with scale x_m > 0 and shape alpha > 0.
  double pareto(double scale, double shape);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Derive an independent child generator (for per-actor streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipfian sampler over [0, n) with skew theta (YCSB uses theta = 0.99).
/// Uses the Gray et al. rejection-inversion-free formulation that YCSB's
/// own generator implements, so key popularity matches the paper's workload.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta = 0.99);

  /// Sample an item index in [0, n). Hot items are small indices.
  std::uint64_t next(Rng& rng);

  std::uint64_t item_count() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace sim
