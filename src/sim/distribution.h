// Parametric latency distributions used by the hardware and platform models.
//
// Cost models describe stochastic costs (device service times, boot-stage
// durations) as small value-type distributions so that configurations stay
// declarative and testable.
#pragma once

#include <algorithm>
#include <variant>

#include "sim/rng.h"
#include "sim/time.h"

namespace sim {

/// A duration distribution. The `floor` of every sample is zero: hardware
/// never completes work in negative time, so samplers clamp.
class DurationDist {
 public:
  /// Degenerate distribution: always `value`.
  static DurationDist constant(Nanos value);

  /// Normal(mean, stddev), clamped at zero.
  static DurationDist normal(Nanos mean, Nanos stddev);

  /// Log-normal parameterized by its *resulting* median and a multiplicative
  /// spread sigma (sigma of the underlying normal). Median-parameterization
  /// keeps configs readable: `lognormal(millis(100), 0.08)` has median 100ms.
  static DurationDist lognormal(Nanos median, double sigma);

  /// Exponential with the given mean.
  static DurationDist exponential(Nanos mean);

  /// Draw one sample.
  Nanos sample(Rng& rng) const;

  /// The distribution's theoretical mean (used by analytic summaries).
  Nanos mean() const;

 private:
  struct Constant {
    Nanos value;
  };
  struct Normal {
    Nanos mean;
    Nanos stddev;
  };
  struct LogNormal {
    double mu;
    double sigma;
  };
  struct Exponential {
    Nanos mean;
  };
  using Impl = std::variant<Constant, Normal, LogNormal, Exponential>;

  explicit DurationDist(Impl impl) : impl_(impl) {}

  Impl impl_;
};

}  // namespace sim
