// Virtual time primitives for the isolation-platform simulator.
//
// All simulated activity is accounted in virtual nanoseconds. Keeping a
// dedicated strong-ish alias (rather than std::chrono) keeps arithmetic in
// cost models simple while the helper constructors below keep call sites
// readable (`sim::micros(85)` instead of `85'000`).
#pragma once

#include <cstdint>
#include <string>

namespace sim {

/// A span of virtual time, in nanoseconds. Negative durations are invalid
/// everywhere in the library and are rejected by Clock::advance.
using Nanos = std::int64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSecond = 1'000'000'000;

constexpr Nanos nanos(std::int64_t n) { return n; }
constexpr Nanos micros(double us) { return static_cast<Nanos>(us * kNanosPerMicro); }
constexpr Nanos millis(double ms) { return static_cast<Nanos>(ms * kNanosPerMilli); }
constexpr Nanos seconds(double s) { return static_cast<Nanos>(s * kNanosPerSecond); }

constexpr double to_micros(Nanos n) { return static_cast<double>(n) / kNanosPerMicro; }
constexpr double to_millis(Nanos n) { return static_cast<double>(n) / kNanosPerMilli; }
constexpr double to_seconds(Nanos n) { return static_cast<double>(n) / kNanosPerSecond; }

/// Render a duration with an automatically chosen unit, e.g. "1.25 ms".
std::string format_duration(Nanos n);

}  // namespace sim
