#include "container/runtime.h"

namespace container {

using hostk::Syscall;
using sim::DurationDist;
using sim::millis;

std::string storage_driver_name(StorageDriver d) {
  switch (d) {
    case StorageDriver::kOverlay2:
      return "overlay2";
    case StorageDriver::kZfs:
      return "zfs";
    case StorageDriver::kBindMount:
      return "bind";
  }
  return "unknown";
}

ContainerRuntime::ContainerRuntime(RuntimeSpec spec, hostk::HostKernel& host)
    : spec_(std::move(spec)), host_(&host) {}

core::BootTimeline ContainerRuntime::daemon_timeline() const {
  core::BootTimeline t;
  // Figure 13: the Docker daemon adds ~250 ms over direct OCI invocation.
  t.stage("daemon:cli-to-dockerd", DurationDist::lognormal(millis(48), 0.18));
  t.stage("daemon:image-resolve", DurationDist::lognormal(millis(64), 0.20));
  t.stage("daemon:network-allocate", DurationDist::lognormal(millis(86), 0.18));
  t.stage("daemon:containerd-shim", DurationDist::lognormal(millis(52), 0.15));
  return t;
}

core::BootTimeline ContainerRuntime::storage_timeline() const {
  core::BootTimeline t;
  switch (spec_.storage) {
    case StorageDriver::kOverlay2:
      t.stage("storage:layer-prepare", DurationDist::lognormal(millis(26), 0.2));
      t.stage("storage:overlay2-mount", DurationDist::lognormal(millis(22), 0.2));
      break;
    case StorageDriver::kZfs:
      // Clone of the container dataset inside the pool.
      t.stage("storage:zfs-clone", DurationDist::lognormal(millis(78), 0.18));
      t.stage("storage:zfs-mount", DurationDist::lognormal(millis(12), 0.2));
      break;
    case StorageDriver::kBindMount:
      t.stage("storage:bind-mount", DurationDist::lognormal(millis(2), 0.25));
      break;
  }
  return t;
}

core::BootTimeline ContainerRuntime::boot_timeline() const {
  core::BootTimeline t;
  if (spec_.via_docker_daemon) {
    t.append(daemon_timeline());
  }
  t.stage("runtime:invoke", DurationDist::lognormal(millis(14), 0.2));
  t.append(spec_.runtime_extra);
  t.stage("runtime:clone3", DurationDist::lognormal(millis(1.1), 0.2));
  t.append(spec_.namespaces.setup_timeline());
  Cgroup cg("/" + spec_.name, spec_.cgroup_version, spec_.limits);
  t.append(cg.setup_timeline());
  t.append(storage_timeline());
  t.stage("runtime:pivot-root", DurationDist::lognormal(millis(0.9), 0.2));
  if (spec_.seccomp_filter) {
    t.stage("runtime:seccomp-load", DurationDist::lognormal(millis(2.2), 0.2));
  }
  t.stage("runtime:execve", DurationDist::lognormal(millis(3.4), 0.2));
  t.append(init_system_timeline(spec_.init));
  t.stage("runtime:reap-and-teardown", init_system_shutdown(spec_.init));
  return t;
}

const core::BootTimeline& ContainerRuntime::cached_timeline() const {
  if (!timeline_cached_) {
    timeline_cache_ = boot_timeline();
    timeline_cached_ = true;
  }
  return timeline_cache_;
}

void ContainerRuntime::record_setup_syscalls(sim::Rng& rng) {
  // HAP-visible setup path.
  host_->invoke(Syscall::kClone3, rng, 1);
  spec_.namespaces.record_setup(*host_, rng);
  Cgroup cg("/" + spec_.name, spec_.cgroup_version, spec_.limits);
  cg.record_setup(*host_, rng);
  host_->invoke(Syscall::kMount, rng,
                spec_.storage == StorageDriver::kZfs ? 2 : 1);
  if (spec_.seccomp_filter) {
    host_->invoke(Syscall::kPrctl, rng, 1);
    host_->invoke(Syscall::kSeccompLoad, rng, 1);
  }
  host_->invoke(Syscall::kExecve, rng, 1);
  if (spec_.via_docker_daemon) {
    // CLI <-> daemon RPC over the unix socket.
    host_->invoke(Syscall::kSocket, rng, 1);
    host_->invoke(Syscall::kConnect, rng, 1);
    host_->invoke(Syscall::kSendmsg, rng, 4);
    host_->invoke(Syscall::kRecvmsg, rng, 4);
  }
}

core::BootResult ContainerRuntime::boot(sim::Clock& clock, sim::Rng& rng) {
  record_setup_syscalls(rng);
  const core::BootResult result = boot_timeline().run(rng);
  clock.advance(result.total);
  return result;
}

void ContainerRuntime::record_boot(sim::Clock& clock, sim::Rng& rng) {
  record_setup_syscalls(rng);
  clock.advance(cached_timeline().sample_total(rng));
}

sim::Nanos ContainerRuntime::exec_process(sim::Clock& clock, sim::Rng& rng) {
  host_->invoke(Syscall::kClone3, rng, 1);
  host_->invoke(Syscall::kSetns, rng,
                static_cast<std::uint64_t>(spec_.namespaces.size()));
  host_->invoke(Syscall::kExecve, rng, 1);
  const sim::Nanos cost =
      DurationDist::lognormal(millis(18), 0.2).sample(rng);
  clock.advance(cost);
  return cost;
}

// --- Catalog -----------------------------------------------------------

RuntimeSpec RuntimeCatalog::runc_oci() {
  return {.name = "runc-oci",
          .namespaces = NamespaceSet::runc_default(),
          .cgroup_version = CgroupVersion::kV1,
          .limits = {.cpu_shares = 1024.0, .memory_max = 8ull << 30,
                     .pids_max = 4096, .io_weight = {}},
          .storage = StorageDriver::kOverlay2,
          .init = InitKind::kTini,
          .seccomp_filter = true,
          .via_docker_daemon = false,
          .runtime_extra = {}};
}

RuntimeSpec RuntimeCatalog::docker_daemon() {
  RuntimeSpec s = runc_oci();
  s.name = "docker-daemon";
  s.via_docker_daemon = true;
  return s;
}

RuntimeSpec RuntimeCatalog::lxc() {
  core::BootTimeline lxc_extra;
  lxc_extra.stage("lxc:monitor-setup", DurationDist::lognormal(millis(24), 0.2));
  lxc_extra.stage("lxc:apparmor-profile",
                  DurationDist::lognormal(millis(16), 0.2));
  return {.name = "lxc",
          .namespaces = NamespaceSet::runc_default(),
          .cgroup_version = CgroupVersion::kV2,
          .limits = {.cpu_shares = 1024.0, .memory_max = 8ull << 30,
                     .pids_max = {}, .io_weight = {}},
          .storage = StorageDriver::kZfs,
          .init = InitKind::kSystemd,
          .seccomp_filter = true,
          .via_docker_daemon = false,
          .runtime_extra = lxc_extra};
}

RuntimeSpec RuntimeCatalog::lxc_unprivileged() {
  RuntimeSpec s = lxc();
  s.name = "lxc-unprivileged";
  s.namespaces = NamespaceSet::lxc_unprivileged();
  return s;
}

}  // namespace container
