#include "container/cgroups.h"

namespace container {

using sim::DurationDist;
using sim::micros;

Cgroup::Cgroup(std::string path, CgroupVersion version, CgroupLimits limits)
    : path_(std::move(path)), version_(version), limits_(limits) {}

std::size_t Cgroup::controller_writes() const {
  std::size_t writes = 0;
  writes += limits_.cpu_shares.has_value();
  writes += limits_.memory_max.has_value();
  writes += limits_.pids_max.has_value();
  writes += limits_.io_weight.has_value();
  return writes;
}

core::BootTimeline Cgroup::setup_timeline() const {
  core::BootTimeline t;
  // v1 touches one hierarchy per controller; v2 one unified directory.
  const sim::Nanos mkdir_cost =
      version_ == CgroupVersion::kV1 ? micros(900) : micros(350);
  t.stage("cgroup:mkdir", DurationDist::lognormal(mkdir_cost, 0.2));
  for (std::size_t i = 0; i < controller_writes(); ++i) {
    t.stage("cgroup:write-limit", DurationDist::lognormal(micros(180), 0.2));
  }
  t.stage("cgroup:attach-task", DurationDist::lognormal(micros(260), 0.2));
  return t;
}

void Cgroup::record_setup(hostk::HostKernel& host, sim::Rng& rng) const {
  using hostk::Syscall;
  host.invoke(Syscall::kCgroupWrite, rng, 1 + controller_writes());
  host.invoke(Syscall::kOpenat, rng, 1 + controller_writes());
  host.invoke(Syscall::kClose, rng, 1 + controller_writes());
}

bool Cgroup::try_charge_memory(std::uint64_t bytes) {
  if (limits_.memory_max && memory_charged_ + bytes > *limits_.memory_max) {
    return false;
  }
  memory_charged_ += bytes;
  return true;
}

}  // namespace container
