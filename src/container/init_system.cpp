#include "container/init_system.h"

namespace container {

using sim::DurationDist;
using sim::millis;

std::string init_kind_name(InitKind k) {
  switch (k) {
    case InitKind::kTini:
      return "tini";
    case InitKind::kSystemd:
      return "systemd";
    case InitKind::kSystemdMini:
      return "systemd(mini-os)";
    case InitKind::kPatchedExit:
      return "patched-exit";
  }
  return "unknown";
}

core::BootTimeline init_system_timeline(InitKind kind) {
  core::BootTimeline t;
  switch (kind) {
    case InitKind::kTini:
      t.stage("init:tini-exec", DurationDist::lognormal(millis(4), 0.20));
      break;
    case InitKind::kSystemd:
      // Full unit graph: udev, journald, mounts, sockets, targets.
      t.stage("init:systemd-pid1", DurationDist::lognormal(millis(70), 0.15));
      t.stage("init:systemd-udev", DurationDist::lognormal(millis(170), 0.20));
      t.stage("init:systemd-units", DurationDist::lognormal(millis(420), 0.18));
      break;
    case InitKind::kSystemdMini:
      // Clear Linux mini-OS: systemd trimmed to launching the kata-agent.
      t.stage("init:systemd-pid1", DurationDist::lognormal(millis(60), 0.15));
      t.stage("init:systemd-agent-unit",
              DurationDist::lognormal(millis(220), 0.18));
      break;
    case InitKind::kPatchedExit:
      t.stage("init:patched-exit", DurationDist::lognormal(millis(0.8), 0.25));
      break;
  }
  return t;
}

sim::DurationDist init_system_shutdown(InitKind kind) {
  switch (kind) {
    case InitKind::kSystemd:
      return DurationDist::lognormal(millis(9), 0.3);
    case InitKind::kSystemdMini:
      return DurationDist::lognormal(millis(5), 0.3);
    case InitKind::kTini:
    case InitKind::kPatchedExit:
      return DurationDist::lognormal(millis(1.5), 0.3);
  }
  return DurationDist::constant(0);
}

}  // namespace container
