// Linux namespaces — the core container isolation mechanism (Section 2.2).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/boot.h"
#include "hostk/host_kernel.h"

namespace container {

enum class NamespaceKind {
  kPid,
  kNet,
  kMnt,
  kUts,
  kIpc,
  kUser,
  kCgroup,
};

std::string_view namespace_name(NamespaceKind k);

/// The set of namespaces a runtime unshares for a container.
class NamespaceSet {
 public:
  NamespaceSet() = default;
  NamespaceSet(std::initializer_list<NamespaceKind> kinds);

  /// The full set runc/LXC use by default (all but user for rootful runs).
  static NamespaceSet runc_default();
  /// LXC unprivileged containers add the user namespace (cgroups v2).
  static NamespaceSet lxc_unprivileged();
  /// gVisor's Sentry confines itself in namespaces as defense in depth.
  static NamespaceSet sentry_confinement();

  bool contains(NamespaceKind k) const;
  std::size_t size() const { return kinds_.size(); }
  const std::vector<NamespaceKind>& kinds() const { return kinds_; }

  /// Setup cost stages (one unshare + per-namespace wiring).
  core::BootTimeline setup_timeline() const;

  /// Issue the host syscalls that creating these namespaces requires
  /// (unshare, mounts for mntns, /proc wiring) — HAP-visible.
  void record_setup(hostk::HostKernel& host, sim::Rng& rng) const;

 private:
  std::vector<NamespaceKind> kinds_;
};

}  // namespace container
