#include "container/namespaces.h"

#include <algorithm>

namespace container {

using sim::DurationDist;
using sim::micros;

std::string_view namespace_name(NamespaceKind k) {
  switch (k) {
    case NamespaceKind::kPid:
      return "pid";
    case NamespaceKind::kNet:
      return "net";
    case NamespaceKind::kMnt:
      return "mnt";
    case NamespaceKind::kUts:
      return "uts";
    case NamespaceKind::kIpc:
      return "ipc";
    case NamespaceKind::kUser:
      return "user";
    case NamespaceKind::kCgroup:
      return "cgroup";
  }
  return "unknown";
}

NamespaceSet::NamespaceSet(std::initializer_list<NamespaceKind> kinds)
    : kinds_(kinds) {}

NamespaceSet NamespaceSet::runc_default() {
  return NamespaceSet{NamespaceKind::kPid, NamespaceKind::kNet,
                      NamespaceKind::kMnt, NamespaceKind::kUts,
                      NamespaceKind::kIpc, NamespaceKind::kCgroup};
}

NamespaceSet NamespaceSet::lxc_unprivileged() {
  return NamespaceSet{NamespaceKind::kPid,  NamespaceKind::kNet,
                      NamespaceKind::kMnt,  NamespaceKind::kUts,
                      NamespaceKind::kIpc,  NamespaceKind::kCgroup,
                      NamespaceKind::kUser};
}

NamespaceSet NamespaceSet::sentry_confinement() {
  return NamespaceSet{NamespaceKind::kPid, NamespaceKind::kNet,
                      NamespaceKind::kMnt, NamespaceKind::kUser};
}

bool NamespaceSet::contains(NamespaceKind k) const {
  return std::find(kinds_.begin(), kinds_.end(), k) != kinds_.end();
}

core::BootTimeline NamespaceSet::setup_timeline() const {
  core::BootTimeline t;
  for (const auto k : kinds_) {
    // Network namespaces are by far the dearest (devices, sysctls, lo up).
    const sim::Nanos mean =
        k == NamespaceKind::kNet ? sim::millis(2.8) : micros(220);
    t.stage(std::string("ns:") + std::string(namespace_name(k)),
            DurationDist::lognormal(mean, 0.25));
  }
  return t;
}

void NamespaceSet::record_setup(hostk::HostKernel& host, sim::Rng& rng) const {
  using hostk::Syscall;
  host.invoke(Syscall::kUnshare, rng, 1);
  for (const auto k : kinds_) {
    switch (k) {
      case NamespaceKind::kMnt:
        host.invoke(Syscall::kMount, rng, 3);  // proc, sysfs, tmpfs
        host.invoke(Syscall::kPivotRoot, rng, 1);
        break;
      case NamespaceKind::kNet:
        host.invoke(Syscall::kSocket, rng, 2);  // netlink config sockets
        host.invoke(Syscall::kSetsockopt, rng, 2);
        break;
      case NamespaceKind::kPid:
        host.invoke(Syscall::kProcRead, rng, 1);
        break;
      default:
        host.invoke(Syscall::kSetns, rng, 1);
        break;
    }
  }
}

}  // namespace container
