// Container runtimes: runc (Docker's), LXC, and the Docker daemon path.
//
// Figure 13 separates the cost of the container runtime proper (the "OCI"
// series, invoking runc/runsc directly) from the Docker daemon's
// client-server round trip, which adds roughly 250 ms. LXC's outlier boot
// time comes from its full systemd init (Finding 13).
#pragma once

#include <string>

#include "container/cgroups.h"
#include "container/init_system.h"
#include "container/namespaces.h"
#include "core/boot.h"
#include "hostk/host_kernel.h"
#include "sim/clock.h"

namespace container {

/// Storage driver backing the container's root filesystem.
enum class StorageDriver { kOverlay2, kZfs, kBindMount };

std::string storage_driver_name(StorageDriver d);

/// Declarative runtime configuration.
struct RuntimeSpec {
  std::string name;
  NamespaceSet namespaces = NamespaceSet::runc_default();
  CgroupVersion cgroup_version = CgroupVersion::kV1;
  CgroupLimits limits;
  StorageDriver storage = StorageDriver::kOverlay2;
  InitKind init = InitKind::kTini;
  bool seccomp_filter = true;
  /// Container creation goes through dockerd + containerd-shim instead of
  /// invoking the OCI runtime directly.
  bool via_docker_daemon = false;
  /// Extra runtime-specific stages prepended before namespace setup
  /// (e.g. gVisor's Sentry+Gofer launch; Kata's hypervisor boot is added
  /// by the Kata runtime itself).
  core::BootTimeline runtime_extra;
};

/// A container runtime instance bound to a host kernel.
class ContainerRuntime {
 public:
  ContainerRuntime(RuntimeSpec spec, hostk::HostKernel& host);

  const RuntimeSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// Full create-to-exit timeline (Figure 13's end-to-end convention).
  core::BootTimeline boot_timeline() const;

  /// Boot once: advances the clock, issues HAP-visible setup syscalls.
  core::BootResult boot(sim::Clock& clock, sim::Rng& rng);

  /// boot() without the per-stage BootResult: identical syscall trace and
  /// RNG draws, but the composed timeline is cached (the spec is immutable
  /// after construction) and only the total is sampled — the fleet
  /// engine's per-boot fast path.
  void record_boot(sim::Clock& clock, sim::Rng& rng);

  /// `docker exec`-style process injection (no new sandbox).
  sim::Nanos exec_process(sim::Clock& clock, sim::Rng& rng);

 private:
  core::BootTimeline daemon_timeline() const;
  core::BootTimeline storage_timeline() const;
  void record_setup_syscalls(sim::Rng& rng);
  const core::BootTimeline& cached_timeline() const;

  RuntimeSpec spec_;
  hostk::HostKernel* host_;
  mutable core::BootTimeline timeline_cache_;
  mutable bool timeline_cached_ = false;
};

/// Runtime catalog for the container platforms of Figure 13.
class RuntimeCatalog {
 public:
  static RuntimeSpec runc_oci();        // docker's runtime, invoked directly
  static RuntimeSpec docker_daemon();   // full dockerd -> containerd -> runc
  static RuntimeSpec lxc();             // systemd init, ZFS storage
  static RuntimeSpec lxc_unprivileged();
};

}  // namespace container
