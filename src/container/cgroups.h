// Control groups — resource constraint mechanism for containers.
//
// runc and LXC both constrain containers through cgroups; LXC already
// supports the newer unified (v2) hierarchy for unprivileged containers
// (Section 2.2.2). The model captures setup cost, HAP-visible writes to
// the cgroupfs, and simple limit bookkeeping used by the examples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/boot.h"
#include "hostk/host_kernel.h"

namespace container {

enum class CgroupVersion { kV1, kV2 };

/// Resource limits a runtime writes into the cgroup.
struct CgroupLimits {
  std::optional<double> cpu_shares;           // relative weight
  std::optional<std::uint64_t> memory_max;    // bytes
  std::optional<std::uint32_t> pids_max;      // task count
  std::optional<double> io_weight;            // blkio weight
};

/// One container's cgroup (a node in the hierarchy).
class Cgroup {
 public:
  Cgroup(std::string path, CgroupVersion version, CgroupLimits limits);

  const std::string& path() const { return path_; }
  CgroupVersion version() const { return version_; }
  const CgroupLimits& limits() const { return limits_; }

  /// Number of controller files the runtime writes at setup.
  std::size_t controller_writes() const;

  /// Setup stages: mkdir + one write per configured controller.
  core::BootTimeline setup_timeline() const;

  /// HAP-visible setup syscalls.
  void record_setup(hostk::HostKernel& host, sim::Rng& rng) const;

  /// Check a memory charge against the limit (examples use this for
  /// density planning). Returns false when the charge would exceed it.
  bool try_charge_memory(std::uint64_t bytes);
  std::uint64_t memory_charged() const { return memory_charged_; }

 private:
  std::string path_;
  CgroupVersion version_;
  CgroupLimits limits_;
  std::uint64_t memory_charged_ = 0;
};

}  // namespace container
