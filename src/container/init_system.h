// Guest init systems.
//
// The paper traces LXC's slow startup to its full systemd init versus
// Docker's minimal tini (Finding 13), and patches init() to exit
// immediately for the hypervisor end-to-end measurements (Section 3.5).
#pragma once

#include <string>

#include "core/boot.h"

namespace container {

enum class InitKind {
  kTini,        // Docker's single-purpose init: reap zombies, exec the app
  kSystemd,     // full dependency-resolved unit graph (LXC, Clear Linux)
  kSystemdMini, // Kata's Clear Linux mini-OS: systemd with one target
  kPatchedExit, // the paper's patched init that exits immediately
};

std::string init_kind_name(InitKind k);

/// Boot stages contributed by the guest's init system.
core::BootTimeline init_system_timeline(InitKind kind);

/// Teardown cost at shutdown (process termination; the paper found this
/// adds only 1-2% to end-to-end measurements).
sim::DurationDist init_system_shutdown(InitKind kind);

}  // namespace container
