#include "core/host_system.h"

namespace core {

HostSystem::HostSystem(HostSystemSpec spec)
    : spec_(spec),
      kernel_(),
      nic_(spec.nic),
      nvme_(spec.nvme),
      page_cache_(spec.host_page_cache_bytes),
      memory_(spec.memory),
      rng_(spec.rng_seed) {}

}  // namespace core
