// CPU execution profile of a platform.
//
// Finding 1: basic CPU work is free everywhere; differences appear only in
// complex workloads — platforms with *custom thread schedulers* (OSv, and
// gVisor's user-space threading) pay on multi-threaded jobs, and the more
// experimental platforms add a small penalty on wide SIMD kernels.
#pragma once

#include <algorithm>

namespace core {

struct CpuProfile {
  /// Multiplier on single-threaded scalar work time (1.0 everywhere —
  /// hardware-assisted virtualization executes guest code natively).
  double scalar_factor = 1.0;

  /// Multiplier on time spent in complex SIMD kernels (video encoding).
  double simd_factor = 1.0;

  /// Scheduler inefficiency: parallel efficiency at n threads is
  /// 1 / (1 + alpha * (n - 1)). Mature kernels have tiny alpha; custom
  /// schedulers (OSv) a large one.
  double sched_alpha = 0.004;

  /// Cost multiplier on futex-class synchronization syscalls, relative to
  /// native. Drives the MySQL thread-contention knee (Finding 20-22).
  double futex_cost_factor = 1.0;

  /// Parallel efficiency for n threads in [0, 1].
  double parallel_efficiency(int threads) const {
    if (threads <= 1) {
      return 1.0;
    }
    return 1.0 / (1.0 + sched_alpha * static_cast<double>(threads - 1));
  }

  /// Effective speedup of n threads over one.
  double speedup(int threads) const {
    return static_cast<double>(std::max(threads, 1)) *
           parallel_efficiency(threads);
  }
};

}  // namespace core
