// Boot-timeline framework.
//
// Every platform's startup is modeled as an ordered list of named stages
// with stochastic durations. The startup experiments (Figures 13-15) run a
// timeline 300 times and plot the CDF of end-to-end totals; stage-level
// results also power the examples' cold-start breakdowns.
#pragma once

#include <string>
#include <vector>

#include "sim/distribution.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace core {

/// One named phase of a platform's boot sequence.
struct BootStage {
  std::string name;
  sim::DurationDist duration;
};

/// The sampled result of one boot.
struct BootResult {
  struct StageSample {
    std::string name;
    sim::Nanos duration;
  };
  std::vector<StageSample> stages;
  sim::Nanos total = 0;
};

/// An ordered, composable boot sequence.
class BootTimeline {
 public:
  BootTimeline() = default;

  /// Append one stage.
  BootTimeline& stage(std::string name, sim::DurationDist duration);

  /// Append all stages of another timeline (composition of subsystems).
  BootTimeline& append(const BootTimeline& other);

  /// Sample the whole sequence once.
  BootResult run(sim::Rng& rng) const;

  /// Sample the whole sequence once but return only the end-to-end total:
  /// identical RNG draws to run() without materializing per-stage samples
  /// (no string copies) — the fleet engine's per-boot fast path.
  sim::Nanos sample_total(sim::Rng& rng) const;

  /// Sum of stage means (analytic expectation of the total).
  sim::Nanos mean_total() const;

  const std::vector<BootStage>& stages() const { return stages_; }
  bool empty() const { return stages_.empty(); }

 private:
  std::vector<BootStage> stages_;
};

}  // namespace core
