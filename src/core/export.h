// CSV export of figure results.
//
// When the environment variable ISOPLAT_RESULTS_DIR is set, the bench
// binaries also write their series as CSV files there (one per figure),
// so plots can be regenerated with any external tool.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/figures.h"
#include "hap/hap.h"

namespace core {

/// The export directory from ISOPLAT_RESULTS_DIR, if configured.
std::optional<std::string> results_dir_from_env();

/// Each writer returns the path written, or nullopt when export is off.
std::optional<std::string> export_bars(const std::string& figure_id,
                                       const std::vector<Bar>& bars,
                                       const std::string& unit);

std::optional<std::string> export_cdfs(const std::string& figure_id,
                                       const std::vector<CdfSeries>& series);

std::optional<std::string> export_curves(const std::string& figure_id,
                                         const std::vector<Curve>& curves,
                                         const std::string& x_label,
                                         const std::string& y_label);

std::optional<std::string> export_hap(const std::string& figure_id,
                                      const std::vector<hap::HapScore>& scores);

}  // namespace core
