#include "core/export.h"

#include <cstdlib>
#include <fstream>

#include "stats/table.h"

namespace core {

std::optional<std::string> results_dir_from_env() {
  const char* dir = std::getenv("ISOPLAT_RESULTS_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return std::nullopt;
  }
  return std::string(dir);
}

namespace {
std::optional<std::string> write_csv(const std::string& figure_id,
                                     const stats::Table& table) {
  const auto dir = results_dir_from_env();
  if (!dir) {
    return std::nullopt;
  }
  const std::string path = *dir + "/" + figure_id + ".csv";
  std::ofstream out(path);
  if (!out) {
    return std::nullopt;
  }
  out << table.to_csv();
  return path;
}
}  // namespace

std::optional<std::string> export_bars(const std::string& figure_id,
                                       const std::vector<Bar>& bars,
                                       const std::string& unit) {
  stats::Table table({"platform", "mean_" + unit, "stddev", "excluded",
                      "reason"});
  for (const auto& b : bars) {
    table.add_row({b.platform, stats::Table::num(b.mean, 6),
                   stats::Table::num(b.stddev, 6), b.excluded ? "1" : "0",
                   b.exclusion_reason});
  }
  return write_csv(figure_id, table);
}

std::optional<std::string> export_cdfs(const std::string& figure_id,
                                       const std::vector<CdfSeries>& series) {
  stats::Table table({"platform", "value_ms", "fraction"});
  for (const auto& s : series) {
    for (const auto& pt : s.samples_ms.cdf(100)) {
      table.add_row({s.platform, stats::Table::num(pt.value, 4),
                     stats::Table::num(pt.fraction, 5)});
    }
  }
  return write_csv(figure_id, table);
}

std::optional<std::string> export_curves(const std::string& figure_id,
                                         const std::vector<Curve>& curves,
                                         const std::string& x_label,
                                         const std::string& y_label) {
  stats::Table table({"platform", x_label, y_label, "yerr"});
  for (const auto& c : curves) {
    for (std::size_t i = 0; i < c.x.size(); ++i) {
      table.add_row({c.platform, stats::Table::num(c.x[i], 2),
                     stats::Table::num(c.y[i], 4),
                     stats::Table::num(i < c.yerr.size() ? c.yerr[i] : 0.0, 4)});
    }
  }
  return write_csv(figure_id, table);
}

std::optional<std::string> export_hap(const std::string& figure_id,
                                      const std::vector<hap::HapScore>& scores) {
  stats::Table table({"platform", "distinct_functions", "total_invocations",
                      "hap_breadth", "extended_hap"});
  for (const auto& s : scores) {
    table.add_row({s.platform, std::to_string(s.distinct_functions),
                   std::to_string(s.total_invocations),
                   stats::Table::num(s.hap_breadth, 1),
                   stats::Table::num(s.extended_hap, 4)});
  }
  return write_csv(figure_id, table);
}

}  // namespace core
