// Figure-level experiments: one function per table/figure in the paper.
//
// Each function builds a fresh HostSystem, assembles the platforms the
// figure compares, runs the paper's protocol (>= 10 repetitions with mean
// +- stddev for bar charts; 300 startups for the CDFs; max-over-5-runs for
// iperf3) and returns structured results. The bench binaries render these
// as the rows/series the paper reports; the figure tests assert the
// paper's findings against the same data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hap/hap.h"
#include "stats/sample_set.h"
#include "stats/summary.h"

namespace core {

/// Default seed: every figure is deterministic given its seed.
constexpr std::uint64_t kFigureSeed = 0x15'0F'CA'FEull;

/// One labeled bar with error bars.
struct Bar {
  std::string platform;
  double mean = 0.0;
  double stddev = 0.0;
  bool excluded = false;          // platform not supported for this figure
  std::string exclusion_reason;
};

/// One labeled CDF (startup figures).
struct CdfSeries {
  std::string platform;
  stats::SampleSet samples_ms;
};

/// One labeled multi-point series (latency sweep, OLTP curve).
struct Curve {
  std::string platform;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> yerr;
};

// --- Section 3.1: compute -------------------------------------------------
/// Figure 5: ffmpeg re-encode wall time (ms) per platform.
std::vector<Bar> figure5_ffmpeg(int reps = 10, std::uint64_t seed = kFigureSeed);

/// Finding 1's companion: sysbench CPU prime events/s per platform
/// (expected: parity everywhere).
std::vector<Bar> finding1_sysbench_cpu(int reps = 10,
                                       std::uint64_t seed = kFigureSeed);

// --- Section 3.2: memory --------------------------------------------------
/// Figure 6: tinymembench random-access extra latency (ns) vs buffer size
/// (2^16..2^26) per platform.
std::vector<Curve> figure6_memory_latency(int reps = 10,
                                          std::uint64_t seed = kFigureSeed,
                                          bool hugepages = false);

/// Figure 7: tinymembench copy bandwidth (MB/s), regular and SSE2.
struct BandwidthBar {
  std::string platform;
  double regular_mbps = 0.0;
  double regular_std = 0.0;
  double sse2_mbps = 0.0;
  double sse2_std = 0.0;
};
std::vector<BandwidthBar> figure7_memory_bandwidth(
    int reps = 10, std::uint64_t seed = kFigureSeed);

/// Figure 8: STREAM COPY bandwidth (MB/s).
std::vector<Bar> figure8_stream(int reps = 10, std::uint64_t seed = kFigureSeed);

// --- Section 3.3: I/O -----------------------------------------------------
/// Figure 9: fio 128 KiB sequential read & write throughput (MB/s).
struct IoBar {
  std::string platform;
  Bar read;
  Bar write;
};
std::vector<IoBar> figure9_fio_throughput(int reps = 10,
                                          std::uint64_t seed = kFigureSeed);

/// Figure 10: fio 4 KiB randread latency (us). gVisor is marked excluded
/// (host-cache artifact), as in the paper.
std::vector<Bar> figure10_fio_randread(int reps = 10,
                                       std::uint64_t seed = kFigureSeed);

// --- Section 3.4: network -------------------------------------------------
/// Figure 11: iperf3 maximum throughput (Gbit/s) over 5 runs.
std::vector<Bar> figure11_iperf3(int runs = 5, std::uint64_t seed = kFigureSeed);

/// Figure 12: netperf TCP_RR 90th-percentile latency (us) over 5 runs.
std::vector<Bar> figure12_netperf(int runs = 5, std::uint64_t seed = kFigureSeed);

// --- Section 3.5: startup -------------------------------------------------
/// Figure 13: container boot CDFs, 300 startups, OCI and daemon variants.
std::vector<CdfSeries> figure13_container_boot(
    int startups = 300, std::uint64_t seed = kFigureSeed);

/// Figure 14: hypervisor boot CDFs (CH, QEMU, qboot, uVM, Firecracker).
std::vector<CdfSeries> figure14_hypervisor_boot(
    int startups = 300, std::uint64_t seed = kFigureSeed);

/// Figure 15: OSv boot CDFs under each hypervisor, measured both
/// end-to-end and by stdout line (the two must superimpose, Finding 16).
std::vector<CdfSeries> figure15_osv_boot(int startups = 300,
                                         std::uint64_t seed = kFigureSeed);

// --- Sections 3.6/3.7: applications ---------------------------------------
/// Figure 16: Memcached YCSB workload-a throughput (kops/s), 5 runs.
std::vector<Bar> figure16_memcached(int runs = 5,
                                    std::uint64_t seed = kFigureSeed);

/// Figure 17: MySQL sysbench oltp_read_write tps vs threads, 3 runs.
std::vector<Curve> figure17_mysql_oltp(int runs = 3,
                                       std::uint64_t seed = kFigureSeed);

// --- Section 4: security --------------------------------------------------
/// Figure 18: the extended HAP metric per platform.
std::vector<hap::HapScore> figure18_hap(std::uint64_t seed = kFigureSeed);

}  // namespace core
