#include "core/figures.h"

#include "apps/memcached_bench.h"
#include "apps/oltp_bench.h"
#include "core/host_system.h"
#include "platforms/factory.h"
#include "platforms/osv_platform.h"
#include "platforms/secure_platforms.h"
#include "sim/clock.h"
#include "vmm/vm.h"
#include "workloads/ffmpeg_encode.h"
#include "workloads/fio.h"
#include "workloads/netbench.h"
#include "workloads/sysbench_cpu.h"
#include "workloads/tinymembench.h"

namespace core {

namespace {

HostSystemSpec seeded_host(std::uint64_t seed) {
  HostSystemSpec spec;
  spec.rng_seed = seed;
  return spec;
}

/// Runs `fn(platform, rng)` `reps` times per platform and collects bars.
template <typename Fn>
std::vector<Bar> per_platform_bars(int reps, std::uint64_t seed, Fn&& fn) {
  HostSystem host(seeded_host(seed));
  auto lineup = platforms::PlatformFactory::paper_lineup(host);
  std::vector<Bar> bars;
  for (auto& p : lineup) {
    sim::Rng rng = host.rng().fork();
    stats::Summary summary;
    for (int r = 0; r < reps; ++r) {
      summary.add(fn(*p, rng));
    }
    bars.push_back(Bar{p->name(), summary.mean(), summary.stddev(), false, ""});
  }
  return bars;
}

}  // namespace

std::vector<Bar> figure5_ffmpeg(int reps, std::uint64_t seed) {
  const workloads::FfmpegEncode encode;
  return per_platform_bars(reps, seed,
                           [&](platforms::Platform& p, sim::Rng& rng) {
                             sim::Clock clock;
                             return sim::to_millis(
                                 encode.run(p, clock, rng).elapsed);
                           });
}

std::vector<Bar> finding1_sysbench_cpu(int reps, std::uint64_t seed) {
  const workloads::SysbenchCpu bench;
  return per_platform_bars(reps, seed,
                           [&](platforms::Platform& p, sim::Rng& rng) {
                             sim::Clock clock;
                             return bench.run(p, clock, rng).events_per_second;
                           });
}

std::vector<Curve> figure6_memory_latency(int reps, std::uint64_t seed,
                                          bool hugepages) {
  HostSystem host(seeded_host(seed));
  auto lineup = platforms::PlatformFactory::paper_lineup(host);
  const workloads::TinyMemBench bench;
  std::vector<Curve> curves;
  for (auto& p : lineup) {
    sim::Rng rng = host.rng().fork();
    Curve curve;
    curve.platform = p->name();
    std::vector<stats::Summary> per_buffer;
    std::vector<std::uint64_t> buffers;
    for (int r = 0; r < reps; ++r) {
      const auto points = bench.latency_sweep(*p, rng, hugepages);
      if (per_buffer.empty()) {
        per_buffer.resize(points.size());
        for (const auto& pt : points) {
          buffers.push_back(pt.buffer_bytes);
        }
      }
      for (std::size_t i = 0; i < points.size(); ++i) {
        per_buffer[i].add(points[i].extra_ns);
      }
    }
    for (std::size_t i = 0; i < per_buffer.size(); ++i) {
      curve.x.push_back(static_cast<double>(buffers[i]));
      curve.y.push_back(per_buffer[i].mean());
      curve.yerr.push_back(per_buffer[i].stddev());
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

std::vector<BandwidthBar> figure7_memory_bandwidth(int reps,
                                                   std::uint64_t seed) {
  HostSystem host(seeded_host(seed));
  auto lineup = platforms::PlatformFactory::paper_lineup(host);
  const workloads::TinyMemBench bench;
  std::vector<BandwidthBar> bars;
  for (auto& p : lineup) {
    sim::Rng rng = host.rng().fork();
    stats::Summary regular, sse2;
    for (int r = 0; r < reps; ++r) {
      const auto bw = bench.bandwidth(*p, rng);
      regular.add(bw.regular_bytes_per_sec / 1e6);
      sse2.add(bw.sse2_bytes_per_sec / 1e6);
    }
    bars.push_back(BandwidthBar{p->name(), regular.mean(), regular.stddev(),
                                sse2.mean(), sse2.stddev()});
  }
  return bars;
}

std::vector<Bar> figure8_stream(int reps, std::uint64_t seed) {
  const workloads::StreamBench bench;
  return per_platform_bars(reps, seed,
                           [&](platforms::Platform& p, sim::Rng& rng) {
                             return bench.copy_bandwidth(p, rng) / 1e6;
                           });
}

std::vector<IoBar> figure9_fio_throughput(int reps, std::uint64_t seed) {
  HostSystem host(seeded_host(seed));
  auto lineup = platforms::PlatformFactory::paper_lineup(host);
  std::vector<IoBar> bars;
  for (auto& p : lineup) {
    sim::Rng rng = host.rng().fork();
    IoBar bar;
    bar.platform = p->name();
    bar.read.platform = p->name();
    bar.write.platform = p->name();
    stats::Summary read_mbps, write_mbps;
    bool excluded = false;
    std::string reason;
    for (int r = 0; r < reps && !excluded; ++r) {
      sim::Clock clock;
      const workloads::Fio read_bench(
          workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead));
      const auto rres = read_bench.run(*p, clock, rng);
      if (!rres.supported) {
        excluded = true;
        reason = rres.exclusion_reason;
        break;
      }
      read_mbps.add(rres.throughput_bytes_per_sec / 1e6);
      const workloads::Fio write_bench(
          workloads::Fio::figure9_throughput(workloads::FioMode::kSeqWrite));
      const auto wres = write_bench.run(*p, clock, rng);
      write_mbps.add(wres.throughput_bytes_per_sec / 1e6);
    }
    bar.read.excluded = bar.write.excluded = excluded;
    bar.read.exclusion_reason = bar.write.exclusion_reason = reason;
    if (!excluded) {
      bar.read.mean = read_mbps.mean();
      bar.read.stddev = read_mbps.stddev();
      bar.write.mean = write_mbps.mean();
      bar.write.stddev = write_mbps.stddev();
    }
    bars.push_back(std::move(bar));
  }
  return bars;
}

std::vector<Bar> figure10_fio_randread(int reps, std::uint64_t seed) {
  HostSystem host(seeded_host(seed));
  auto lineup = platforms::PlatformFactory::paper_lineup(host);
  std::vector<Bar> bars;
  for (auto& p : lineup) {
    sim::Rng rng = host.rng().fork();
    Bar bar;
    bar.platform = p->name();
    if (!p->capabilities().extra_disk || !p->capabilities().libaio) {
      bar.excluded = true;
      bar.exclusion_reason = "no dedicated disk / no libaio";
      bars.push_back(std::move(bar));
      continue;
    }
    // The paper excludes gVisor here: its reads kept being served by the
    // host page cache even after dropping caches.
    if (!p->block()->spec().direct_flag_propagates) {
      bar.excluded = true;
      bar.exclusion_reason = "reads served from host cache (O_DIRECT lost)";
      bars.push_back(std::move(bar));
      continue;
    }
    stats::Summary latency_us;
    for (int r = 0; r < reps; ++r) {
      sim::Clock clock;
      const workloads::Fio bench(workloads::Fio::figure10_randread());
      const auto res = bench.run(*p, clock, rng);
      latency_us.add(res.latencies_us.summary().mean());
    }
    bar.mean = latency_us.mean();
    bar.stddev = latency_us.stddev();
    bars.push_back(std::move(bar));
  }
  return bars;
}

std::vector<Bar> figure11_iperf3(int runs, std::uint64_t seed) {
  const workloads::Iperf3 bench(runs);
  return per_platform_bars(/*reps=*/1, seed,
                           [&](platforms::Platform& p, sim::Rng& rng) {
                             sim::Clock clock;
                             return bench.run(p, clock, rng).max_gbps;
                           });
}

std::vector<Bar> figure12_netperf(int runs, std::uint64_t seed) {
  const workloads::Netperf bench;
  return per_platform_bars(runs, seed,
                           [&](platforms::Platform& p, sim::Rng& rng) {
                             sim::Clock clock;
                             return bench.run(p, clock, rng).p90_us;
                           });
}

namespace {
CdfSeries boot_cdf(platforms::Platform& platform, int startups, sim::Rng& rng) {
  CdfSeries series;
  series.platform = platform.name();
  for (int i = 0; i < startups; ++i) {
    series.samples_ms.add(
        sim::to_millis(platform.boot_timeline().run(rng).total));
  }
  return series;
}
}  // namespace

std::vector<CdfSeries> figure13_container_boot(int startups,
                                               std::uint64_t seed) {
  HostSystem host(seeded_host(seed));
  sim::Rng rng(seed ^ 0x13);
  std::vector<CdfSeries> result;
  using platforms::FactoryOptions;
  using platforms::PlatformFactory;
  using platforms::PlatformId;
  const auto add = [&](PlatformId id, bool via_daemon, const char* label) {
    FactoryOptions opts;
    opts.via_docker_daemon = via_daemon;
    auto p = PlatformFactory::create(id, host, opts);
    CdfSeries series = boot_cdf(*p, startups, rng);
    series.platform = label;
    result.push_back(std::move(series));
  };
  add(PlatformId::kDocker, false, "docker-oci");
  add(PlatformId::kDocker, true, "docker");
  add(PlatformId::kGvisor, false, "gvisor-oci");
  add(PlatformId::kGvisor, true, "gvisor");
  add(PlatformId::kKataContainers, false, "kata-oci");
  add(PlatformId::kKataContainers, true, "kata");
  add(PlatformId::kLxc, false, "lxc");
  return result;
}

std::vector<CdfSeries> figure14_hypervisor_boot(int startups,
                                                std::uint64_t seed) {
  hostk::HostKernel kernel;
  sim::Rng rng(seed ^ 0x14);
  std::vector<CdfSeries> result;
  for (const auto& spec :
       {vmm::VmmCatalog::cloud_hypervisor(), vmm::VmmCatalog::qemu_kvm(),
        vmm::VmmCatalog::qemu_qboot(), vmm::VmmCatalog::qemu_microvm(),
        vmm::VmmCatalog::firecracker()}) {
    vmm::Vm vm(spec, kernel);
    CdfSeries series;
    series.platform = spec.name;
    for (int i = 0; i < startups; ++i) {
      series.samples_ms.add(sim::to_millis(vm.boot_timeline().run(rng).total));
    }
    result.push_back(std::move(series));
  }
  return result;
}

std::vector<CdfSeries> figure15_osv_boot(int startups, std::uint64_t seed) {
  hostk::HostKernel kernel;
  sim::Rng rng(seed ^ 0x15);
  std::vector<CdfSeries> result;
  for (const auto& spec :
       {vmm::VmmCatalog::osv_on_firecracker(),
        vmm::VmmCatalog::osv_on_qemu_microvm(), vmm::VmmCatalog::osv_on_qemu()}) {
    vmm::Vm vm(spec, kernel);
    CdfSeries end_to_end;
    end_to_end.platform = spec.name + "(e2e)";
    CdfSeries stdout_line;
    stdout_line.platform = spec.name + "(stdout)";
    for (int i = 0; i < startups; ++i) {
      const auto boot = vm.boot_timeline().run(rng);
      end_to_end.samples_ms.add(sim::to_millis(boot.total));
      // The stdout method stops at the boot banner: everything except the
      // final teardown stage (Finding 16: the two nearly superimpose).
      sim::Nanos stdout_total = boot.total;
      if (!boot.stages.empty() && boot.stages.back().name == "vmm:teardown") {
        stdout_total -= boot.stages.back().duration;
      }
      stdout_line.samples_ms.add(sim::to_millis(stdout_total));
    }
    result.push_back(std::move(end_to_end));
    result.push_back(std::move(stdout_line));
  }
  return result;
}

std::vector<Bar> figure16_memcached(int runs, std::uint64_t seed) {
  apps::MemcachedSpec spec;
  spec.sampled_ops = 2'000;
  spec.workload.record_count = 20'000;
  const apps::MemcachedBench bench(spec);
  return per_platform_bars(runs, seed,
                           [&](platforms::Platform& p, sim::Rng& rng) {
                             sim::Clock clock;
                             return bench.run(p, clock, rng).ops_per_second /
                                    1e3;  // kops/s
                           });
}

std::vector<Curve> figure17_mysql_oltp(int runs, std::uint64_t seed) {
  HostSystem host(seeded_host(seed));
  auto lineup = platforms::PlatformFactory::paper_lineup(host);
  apps::OltpSpec spec;
  spec.rows_per_table = 8'000;
  spec.sampled_txns = 60;
  const apps::OltpBench bench(spec);
  std::vector<Curve> curves;
  for (auto& p : lineup) {
    sim::Rng rng = host.rng().fork();
    Curve curve;
    curve.platform = p->name();
    std::vector<stats::Summary> per_point(spec.thread_counts.size());
    for (int r = 0; r < runs; ++r) {
      sim::Clock clock;
      const auto result = bench.run(*p, clock, rng);
      for (std::size_t i = 0; i < result.curve.size(); ++i) {
        per_point[i].add(result.curve[i].tps);
      }
    }
    for (std::size_t i = 0; i < per_point.size(); ++i) {
      curve.x.push_back(spec.thread_counts[i]);
      curve.y.push_back(per_point[i].mean());
      curve.yerr.push_back(per_point[i].stddev());
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

std::vector<hap::HapScore> figure18_hap(std::uint64_t seed) {
  HostSystem host(seeded_host(seed));
  auto lineup = platforms::PlatformFactory::paper_lineup(host);
  sim::Rng rng(seed ^ 0x18);
  const hap::HapExperiment experiment;
  return experiment.measure_all(lineup, rng);
}

}  // namespace core
