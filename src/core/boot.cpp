#include "core/boot.h"

namespace core {

BootTimeline& BootTimeline::stage(std::string name, sim::DurationDist duration) {
  stages_.push_back(BootStage{std::move(name), duration});
  return *this;
}

BootTimeline& BootTimeline::append(const BootTimeline& other) {
  for (const auto& s : other.stages_) {
    stages_.push_back(s);
  }
  return *this;
}

BootResult BootTimeline::run(sim::Rng& rng) const {
  BootResult result;
  result.stages.reserve(stages_.size());
  for (const auto& s : stages_) {
    const sim::Nanos d = s.duration.sample(rng);
    result.stages.push_back({s.name, d});
    result.total += d;
  }
  return result;
}

sim::Nanos BootTimeline::sample_total(sim::Rng& rng) const {
  sim::Nanos total = 0;
  for (const auto& s : stages_) {
    total += s.duration.sample(rng);
  }
  return total;
}

sim::Nanos BootTimeline::mean_total() const {
  sim::Nanos total = 0;
  for (const auto& s : stages_) {
    total += s.duration.mean();
  }
  return total;
}

}  // namespace core
