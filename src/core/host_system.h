// The physical host every platform runs on.
//
// Bundles the paper's testbed (dual-socket EPYC2 7542, 256 GiB RAM, fast
// NVMe, 40G NIC, Ubuntu 20.04 host kernel) into one object that platforms
// and experiments share. One HostSystem per experiment keeps page-cache
// state, ftrace captures and RNG streams properly scoped.
#pragma once

#include <cstdint>

#include "hostk/block_device.h"
#include "hostk/host_kernel.h"
#include "hostk/nic.h"
#include "hostk/page_cache.h"
#include "mem/hierarchy.h"
#include "sim/rng.h"

namespace core {

struct HostSystemSpec {
  int cpu_threads = 128;  // 2 x 32 cores x SMT2
  std::uint64_t ram_bytes = 256ull << 30;
  std::uint64_t host_page_cache_bytes = 4ull << 30;  // cache devoted to I/O
  hostk::BlockDeviceSpec nvme = {};
  hostk::NicSpec nic = {};
  mem::HierarchySpec memory = {};
  std::uint64_t rng_seed = 0xB10C'FEED'CAFE'0001ull;
};

/// Aggregates the host kernel and hardware models.
class HostSystem {
 public:
  explicit HostSystem(HostSystemSpec spec = {});

  const HostSystemSpec& spec() const { return spec_; }

  hostk::HostKernel& kernel() { return kernel_; }
  const hostk::HostKernel& kernel() const { return kernel_; }
  hostk::Nic& nic() { return nic_; }
  hostk::BlockDevice& nvme() { return nvme_; }
  hostk::PageCache& page_cache() { return page_cache_; }
  mem::MemoryHierarchy& memory() { return memory_; }

  /// Root RNG; fork() per-actor streams from it.
  sim::Rng& rng() { return rng_; }

  /// The paper's between-run hygiene: drop the host page cache.
  void drop_caches() { page_cache_.drop_caches(); }

 private:
  HostSystemSpec spec_;
  hostk::HostKernel kernel_;
  hostk::Nic nic_;
  hostk::BlockDevice nvme_;
  hostk::PageCache page_cache_;
  mem::MemoryHierarchy memory_;
  sim::Rng rng_;
};

}  // namespace core
