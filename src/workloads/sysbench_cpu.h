// Sysbench CPU benchmark: prime verification (Section 3.1).
//
// A real trial-division primality workload. Finding 1: every platform,
// including OSv, performs nearly equivalently here — hardware-assisted
// virtualization executes guest code natively, so the only cost is the
// arithmetic itself.
#pragma once

#include <cstdint>

#include "platforms/platform.h"
#include "sim/clock.h"

namespace workloads {

struct SysbenchCpuResult {
  std::uint64_t primes_found = 0;
  std::uint64_t candidates_checked = 0;
  sim::Nanos elapsed = 0;
  double events_per_second = 0.0;
};

/// Single-threaded prime verification up to `limit` (sysbench's
/// --cpu-max-prime). The divisions are actually executed; virtual time is
/// charged per arithmetic operation through the platform's scalar factor.
class SysbenchCpu {
 public:
  explicit SysbenchCpu(std::uint64_t max_prime = 20'000);

  SysbenchCpuResult run(platforms::Platform& platform, sim::Clock& clock,
                        sim::Rng& rng) const;

 private:
  std::uint64_t max_prime_;
};

}  // namespace workloads
