// iperf3 and netperf network benchmarks (Figures 11 & 12).
#pragma once

#include <cstdint>

#include "platforms/platform.h"
#include "sim/clock.h"
#include "stats/sample_set.h"

namespace workloads {

struct Iperf3Result {
  double max_gbps = 0.0;   // paper reports the max over runs
  double mean_gbps = 0.0;
  stats::SampleSet runs_gbps;
};

/// iperf3: the host acts as client against a server in the guest; reports
/// the maximum achievable throughput over an IP connection.
class Iperf3 {
 public:
  explicit Iperf3(int runs = 5, sim::Nanos run_duration = sim::seconds(10));

  Iperf3Result run(platforms::Platform& platform, sim::Clock& clock,
                   sim::Rng& rng) const;

 private:
  int runs_;
  sim::Nanos run_duration_;
};

struct NetperfResult {
  double p50_us = 0.0;
  double p90_us = 0.0;  // the paper's Figure 12 metric
  double p99_us = 0.0;
  stats::SampleSet rtts_us;
};

/// netperf TCP_RR: request/response latency with a small payload.
class Netperf {
 public:
  explicit Netperf(int transactions = 2'000, std::uint32_t payload = 128);

  NetperfResult run(platforms::Platform& platform, sim::Clock& clock,
                    sim::Rng& rng) const;

 private:
  int transactions_;
  std::uint32_t payload_;
};

}  // namespace workloads
