#include "workloads/sysbench_cpu.h"

namespace workloads {

SysbenchCpu::SysbenchCpu(std::uint64_t max_prime) : max_prime_(max_prime) {}

SysbenchCpuResult SysbenchCpu::run(platforms::Platform& platform,
                                   sim::Clock& clock, sim::Rng& rng) const {
  SysbenchCpuResult result;
  std::uint64_t divisions = 0;
  // The sysbench kernel: for each candidate c in [3, max], trial-divide by
  // odd numbers up to sqrt(c).
  for (std::uint64_t c = 3; c <= max_prime_; ++c) {
    bool prime = true;
    for (std::uint64_t d = 2; d * d <= c; ++d) {
      ++divisions;
      if (c % d == 0) {
        prime = false;
        break;
      }
    }
    result.primes_found += prime;
    ++result.candidates_checked;
  }
  // Charge virtual time: ~1.9 ns per division (div + loop overhead on the
  // EPYC2), scaled by the platform's scalar factor (1.0 everywhere —
  // that IS Finding 1) plus benchmark noise.
  const double per_div_ns = 1.9 * platform.cpu_profile().scalar_factor *
                            (1.0 + rng.normal(0.0, 0.01));
  result.elapsed =
      static_cast<sim::Nanos>(static_cast<double>(divisions) * per_div_ns);
  clock.advance(result.elapsed);
  result.events_per_second = static_cast<double>(result.candidates_checked) /
                             sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace workloads
