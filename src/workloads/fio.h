// fio - Flexible I/O tester model (Figures 9 & 10).
//
// Reproduces the paper's block-level methodology: a file twice the guest's
// RAM is preallocated with fallocate(), then read/written in 128 KiB
// blocks through the libaio engine with direct=1, on a dedicated test
// disk. Platforms that cannot attach a disk (Firecracker) or lack libaio
// (OSv) are reported as unsupported, exactly as the paper excludes them.
// The host page cache is dropped before every run (Section 3.3's remedy).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "platforms/platform.h"
#include "sim/clock.h"
#include "stats/sample_set.h"

namespace workloads {

enum class FioMode { kSeqRead, kSeqWrite, kRandRead };

std::string fio_mode_name(FioMode m);

struct FioSpec {
  FioMode mode = FioMode::kSeqRead;
  std::uint32_t block_bytes = 128 << 10;
  bool direct = true;
  std::uint32_t queue_depth = 16;  // libaio iodepth
  std::uint64_t file_bytes = 8ull << 30;
  std::uint32_t requests = 256;  // sampled requests per run
  bool drop_host_cache_first = true;
};

struct FioResult {
  double throughput_bytes_per_sec = 0.0;
  stats::SampleSet latencies_us;  // per-request completion latency
  bool supported = true;
  std::string exclusion_reason;
};

class Fio {
 public:
  explicit Fio(FioSpec spec = {});

  /// Presets matching the paper's two fio figures.
  static FioSpec figure9_throughput(FioMode mode);
  static FioSpec figure10_randread();

  FioResult run(platforms::Platform& platform, sim::Clock& clock,
                sim::Rng& rng) const;

 private:
  FioSpec spec_;
};

}  // namespace workloads
