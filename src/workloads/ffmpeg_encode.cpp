#include "workloads/ffmpeg_encode.h"

#include <algorithm>

namespace workloads {

FfmpegEncode::FfmpegEncode(FfmpegSpec spec) : spec_(spec) {}

FfmpegResult FfmpegEncode::run(platforms::Platform& platform, sim::Clock& clock,
                               sim::Rng& rng) const {
  const core::CpuProfile& cpu = platform.cpu_profile();

  // Total core-work: frames x per-frame cost, inflated by the platform's
  // SIMD handling. The paper isolated I/O out of this benchmark (the input
  // is read into memory first), so only a fixed load cost remains.
  const double total_core_ms = static_cast<double>(spec_.frames) *
                               spec_.per_frame_core_ms * cpu.simd_factor;

  // The frame pipeline's parallel speedup is bounded by the platform's
  // scheduler: OSv's custom scheduler has a large efficiency penalty at 16
  // threads; mature kernels are near-ideal.
  const double speedup = cpu.speedup(spec_.threads);
  double wall_ms = total_core_ms / std::max(speedup, 1.0);

  // Input load from page cache / disk: second-order (<1%).
  wall_ms += static_cast<double>(spec_.input_bytes) / 2.0e9 * 1e3;

  // Run-to-run noise of a long encode (~1.5%).
  wall_ms *= 1.0 + rng.normal(0.0, 0.015);

  FfmpegResult result;
  result.elapsed = sim::millis(wall_ms);
  clock.advance(result.elapsed);
  result.fps = static_cast<double>(spec_.frames) / sim::to_seconds(result.elapsed);
  return result;
}

}  // namespace workloads
