#include "workloads/netbench.h"

#include <algorithm>

namespace workloads {

Iperf3::Iperf3(int runs, sim::Nanos run_duration)
    : runs_(runs), run_duration_(run_duration) {}

Iperf3Result Iperf3::run(platforms::Platform& platform, sim::Clock& clock,
                         sim::Rng& rng) const {
  Iperf3Result result;
  auto& nic = platform.host().nic();
  for (int i = 0; i < runs_; ++i) {
    const double bps = platform.net().iperf_throughput_bps(nic, rng);
    result.runs_gbps.add(bps / 1e9);
    clock.advance(run_duration_);
    // HAP-visible traffic for the bytes actually moved in this run.
    platform.net().record_traffic(
        static_cast<std::uint64_t>(bps / 8.0 * sim::to_seconds(run_duration_)),
        nic, rng);
  }
  result.max_gbps = result.runs_gbps.percentile(100);
  result.mean_gbps = result.runs_gbps.summary().mean();
  return result;
}

Netperf::Netperf(int transactions, std::uint32_t payload)
    : transactions_(transactions), payload_(payload) {}

NetperfResult Netperf::run(platforms::Platform& platform, sim::Clock& clock,
                           sim::Rng& rng) const {
  NetperfResult result;
  auto& nic = platform.host().nic();
  for (int i = 0; i < transactions_; ++i) {
    const sim::Nanos rtt = platform.net().round_trip(nic, payload_, rng);
    result.rtts_us.add(sim::to_micros(rtt));
    clock.advance(rtt);
  }
  result.p50_us = result.rtts_us.percentile(50);
  result.p90_us = result.rtts_us.percentile(90);
  result.p99_us = result.rtts_us.percentile(99);
  return result;
}

}  // namespace workloads
