// ffmpeg H.264 -> H.265 re-encode model (Figure 5).
//
// The paper's CPU-bound macro-benchmark: a 30 MB 1080p video re-encoded
// with the `slower` preset on 16 threads. Per-frame work is SIMD-heavy
// (motion estimation, DCT) and the frame pipeline is scheduled across
// worker threads — which is exactly where OSv's custom scheduler loses
// (Finding 1): most platforms land around 65 s, OSv far above.
#pragma once

#include <cstdint>

#include "platforms/platform.h"
#include "sim/clock.h"

namespace workloads {

struct FfmpegSpec {
  std::uint32_t frames = 14'315;           // ~10 min at 23.98 fps
  double per_frame_core_ms = 68.5;         // preset `slower` cost per frame
  int threads = 16;
  std::uint64_t input_bytes = 30ull << 20; // loaded into memory up front
};

struct FfmpegResult {
  sim::Nanos elapsed = 0;
  double fps = 0.0;
};

/// Runs the frame pipeline against a platform's CPU profile.
class FfmpegEncode {
 public:
  explicit FfmpegEncode(FfmpegSpec spec = {});

  FfmpegResult run(platforms::Platform& platform, sim::Clock& clock,
                   sim::Rng& rng) const;

  const FfmpegSpec& spec() const { return spec_; }

 private:
  FfmpegSpec spec_;
};

}  // namespace workloads
