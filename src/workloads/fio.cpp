#include "workloads/fio.h"

namespace workloads {

std::string fio_mode_name(FioMode m) {
  switch (m) {
    case FioMode::kSeqRead:
      return "read";
    case FioMode::kSeqWrite:
      return "write";
    case FioMode::kRandRead:
      return "randread";
  }
  return "unknown";
}

Fio::Fio(FioSpec spec) : spec_(spec) {}

FioSpec Fio::figure9_throughput(FioMode mode) {
  FioSpec spec;
  spec.mode = mode;
  spec.block_bytes = 128 << 10;
  spec.queue_depth = 16;
  return spec;
}

FioSpec Fio::figure10_randread() {
  FioSpec spec;
  spec.mode = FioMode::kRandRead;
  spec.block_bytes = 4 << 10;
  spec.queue_depth = 1;  // latency-sensitive configuration
  return spec;
}

FioResult Fio::run(platforms::Platform& platform, sim::Clock& clock,
                   sim::Rng& rng) const {
  FioResult result;
  if (!platform.capabilities().extra_disk) {
    result.supported = false;
    result.exclusion_reason = "cannot attach a dedicated test disk";
    return result;
  }
  if (!platform.capabilities().libaio) {
    result.supported = false;
    result.exclusion_reason = "libaio engine not available";
    return result;
  }
  storage::BlockPath* path = platform.block();
  if (path == nullptr) {
    result.supported = false;
    result.exclusion_reason = "no block path";
    return result;
  }

  if (spec_.drop_host_cache_first) {
    path->drop_host_cache();
  }

  // Preallocation (fallocate) — charged but not timed by fio itself.
  clock.advance(sim::micros(400));

  const std::uint64_t file_id = 0xF10;
  const std::uint64_t blocks_in_file = spec_.file_bytes / spec_.block_bytes;
  sim::Nanos busy = 0;
  for (std::uint32_t i = 0; i < spec_.requests; ++i) {
    std::uint64_t block_index;
    if (spec_.mode == FioMode::kRandRead) {
      block_index = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(blocks_in_file - 1)));
    } else {
      block_index = i % blocks_in_file;
    }
    const std::uint64_t offset =
        block_index * static_cast<std::uint64_t>(spec_.block_bytes);
    sim::Nanos t;
    if (spec_.mode == FioMode::kSeqWrite) {
      t = path->write(file_id, offset, spec_.block_bytes, spec_.direct, rng,
                      spec_.queue_depth);
    } else {
      t = path->read(file_id, offset, spec_.block_bytes, spec_.direct, rng,
                     spec_.queue_depth);
    }
    busy += t;
    result.latencies_us.add(sim::to_micros(t));
  }
  clock.advance(busy);
  const double total_bytes =
      static_cast<double>(spec_.requests) * spec_.block_bytes;
  result.throughput_bytes_per_sec = total_bytes / sim::to_seconds(busy);
  return result;
}

}  // namespace workloads
