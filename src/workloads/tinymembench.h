// Tinymembench: memory latency and bandwidth microbenchmarks (Figs 6 & 7).
#pragma once

#include <cstdint>
#include <vector>

#include "platforms/platform.h"
#include "sim/clock.h"

namespace workloads {

struct LatencyPoint {
  std::uint64_t buffer_bytes;
  double extra_ns;  // over the L1 latency, tinymembench's convention
};

struct BandwidthResult {
  double regular_bytes_per_sec;
  double sse2_bytes_per_sec;
};

/// Random-access latency sweep and sequential copy bandwidth, evaluated
/// against the platform's memory profile.
class TinyMemBench {
 public:
  /// One latency run over buffers 2^min_log .. 2^max_log (paper: 16..26).
  std::vector<LatencyPoint> latency_sweep(platforms::Platform& platform,
                                          sim::Rng& rng, bool hugepages = false,
                                          int min_log = 16,
                                          int max_log = 26) const;

  /// One bandwidth run (regular + SSE2 copies).
  BandwidthResult bandwidth(platforms::Platform& platform, sim::Rng& rng) const;
};

/// STREAM COPY (Figure 8): a[i] = b[i] over a 2.2 GiB allocation,
/// 16 bytes transferred per iteration, no floating point.
class StreamBench {
 public:
  static constexpr std::uint64_t kTotalBytes = 2'362'232'012;  // 2.2 GiB

  /// Best-of-`inner_runs` COPY bandwidth (the paper reports the average
  /// of per-run maxima).
  double copy_bandwidth(platforms::Platform& platform, sim::Rng& rng,
                        int inner_runs = 10) const;
};

}  // namespace workloads
