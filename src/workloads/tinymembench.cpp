#include "workloads/tinymembench.h"

#include <algorithm>

namespace workloads {

std::vector<LatencyPoint> TinyMemBench::latency_sweep(
    platforms::Platform& platform, sim::Rng& rng, bool hugepages, int min_log,
    int max_log) const {
  std::vector<LatencyPoint> points;
  auto& hierarchy = platform.host().memory();
  const auto& profile = platform.memory_profile();
  for (int n = min_log; n <= max_log; ++n) {
    const std::uint64_t buffer = 1ull << n;
    points.push_back(LatencyPoint{
        buffer,
        hierarchy.random_access_extra_ns(buffer, profile, hugepages, rng)});
  }
  return points;
}

BandwidthResult TinyMemBench::bandwidth(platforms::Platform& platform,
                                        sim::Rng& rng) const {
  auto& hierarchy = platform.host().memory();
  const auto& profile = platform.memory_profile();
  return BandwidthResult{
      hierarchy.copy_bandwidth(mem::MemoryHierarchy::CopyKind::kRegular,
                               profile, rng),
      hierarchy.copy_bandwidth(mem::MemoryHierarchy::CopyKind::kSse2, profile,
                               rng)};
}

double StreamBench::copy_bandwidth(platforms::Platform& platform, sim::Rng& rng,
                                   int inner_runs) const {
  auto& hierarchy = platform.host().memory();
  const auto& profile = platform.memory_profile();
  double best = 0.0;
  for (int i = 0; i < inner_runs; ++i) {
    best = std::max(
        best, hierarchy.copy_bandwidth(
                  mem::MemoryHierarchy::CopyKind::kStreamCopy, profile, rng));
  }
  return best;
}

}  // namespace workloads
