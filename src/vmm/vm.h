// Virtual machine assembly: VMM process + KVM + devices + guest kernel.
//
// A Vm combines the architectural ingredients of Section 2.1 into a
// bootable unit: it produces the full boot timeline for the startup
// experiments (Figure 14/15) and performs the KVM setup syscalls against
// the host kernel so the HAP study sees each hypervisor's host footprint.
#pragma once

#include <cstdint>
#include <string>

#include "container/init_system.h"
#include "core/boot.h"
#include "hostk/host_kernel.h"
#include "sim/clock.h"
#include "vmm/device_model.h"
#include "vmm/guest_boot.h"
#include "vmm/vm_memory.h"

namespace vmm {

/// Declarative description of a VMM configuration.
struct VmmSpec {
  std::string name;
  sim::DurationDist process_spawn = sim::DurationDist::constant(0);
  sim::DurationDist vmm_init = sim::DurationDist::constant(0);
  /// REST/socket configuration phase (Firecracker & Cloud Hypervisor are
  /// API-driven; QEMU takes a command line and has no such phase).
  sim::DurationDist api_setup = sim::DurationDist::constant(0);
  DeviceModel devices;
  BootProtocol protocol = BootProtocol::kBios;
  GuestKernel kernel = GuestKernelCatalog::ubuntu_generic();
  container::InitKind init = container::InitKind::kPatchedExit;
  MemoryBacking memory = MemoryBackingCatalog::qemu_mmap();
  int vcpus = 16;
  std::uint64_t guest_ram_bytes = 4ull << 30;
  /// Image-copy bandwidth of the kernel loader.
  double loader_bw_bytes_per_sec = 2.1e8;
};

/// VMM spec catalog matching the paper's hypervisor configurations.
class VmmCatalog {
 public:
  static VmmSpec qemu_kvm();
  static VmmSpec qemu_qboot();
  static VmmSpec qemu_microvm();
  static VmmSpec firecracker();
  static VmmSpec cloud_hypervisor();
  static VmmSpec kata_vm();  // the QEMU instance kata-runtime launches

  /// OSv guest variants (Figure 15).
  static VmmSpec osv_on_qemu();
  static VmmSpec osv_on_qemu_microvm();
  static VmmSpec osv_on_firecracker();
};

/// A bootable VM instance bound to a host kernel.
class Vm {
 public:
  Vm(VmmSpec spec, hostk::HostKernel& host);

  const VmmSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// The complete boot timeline: process creation through init completion
  /// and process termination (the paper's end-to-end convention).
  core::BootTimeline boot_timeline() const;

  /// Boot once: advances `clock` by the sampled end-to-end duration and
  /// issues the KVM setup syscalls against the host (visible to ftrace).
  core::BootResult boot(sim::Clock& clock, sim::Rng& rng);

  /// boot() without the per-stage BootResult: identical syscall trace and
  /// RNG draw sequence, but the composed timeline is cached (the spec is
  /// immutable after construction) and only the total is sampled — the
  /// fleet engine's per-boot fast path.
  void record_boot(sim::Clock& clock, sim::Rng& rng);

  /// Memory profile the guest observes (Figures 6-8 inputs).
  const mem::MemoryProfile& memory_profile() const {
    return spec_.memory.profile;
  }

  /// Record the host-side activity of `vm_exits` guest exits plus the
  /// VMM event loop over a steady-state window (HAP instrumentation).
  void record_steady_state(std::uint64_t vm_exits, sim::Rng& rng);

  /// Whether booting happened at least once.
  bool booted() const { return booted_; }

 private:
  void record_setup_syscalls(sim::Rng& rng);
  const core::BootTimeline& cached_timeline() const;

  VmmSpec spec_;
  hostk::HostKernel* host_;
  bool booted_ = false;
  mutable core::BootTimeline timeline_cache_;
  mutable bool timeline_cached_ = false;
};

}  // namespace vmm
