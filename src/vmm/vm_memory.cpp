#include "vmm/vm_memory.h"

namespace vmm {

MemoryBacking MemoryBackingCatalog::host_native() {
  return {.name = "host-native", .profile = {}};
}

MemoryBacking MemoryBackingCatalog::qemu_mmap() {
  mem::MemoryProfile p;
  p.ept = true;
  p.bandwidth_factor = 0.88;
  return {.name = "qemu-mmap", .profile = p};
}

MemoryBacking MemoryBackingCatalog::vm_memory_crate_firecracker() {
  mem::MemoryProfile p;
  p.ept = true;
  p.backing_extra_ns = 26.0;
  p.backing_jitter = 0.45;
  p.bandwidth_factor = 0.78;
  return {.name = "vm-memory(firecracker)", .profile = p};
}

MemoryBacking MemoryBackingCatalog::vm_memory_crate_cloud_hypervisor() {
  mem::MemoryProfile p;
  p.ept = true;
  p.backing_extra_ns = 13.0;
  p.backing_jitter = 0.22;
  p.bandwidth_factor = 0.965;
  return {.name = "vm-memory(cloud-hypervisor)", .profile = p};
}

MemoryBacking MemoryBackingCatalog::kata_nvdimm_direct() {
  mem::MemoryProfile p;
  p.ept = true;
  p.ept_walk_factor = 1.35;  // DAX mapping keeps walks short and hot
  p.bandwidth_factor = 0.99;
  p.hugepage_support = false;  // the paper: Kata does not support HugePages
  return {.name = "kata-nvdimm-direct", .profile = p};
}

MemoryBacking MemoryBackingCatalog::osv_on_qemu() {
  mem::MemoryProfile p;
  p.ept = true;
  p.ept_walk_factor = 1.5;  // single address space, huge mappings
  p.bandwidth_factor = 0.985;
  return {.name = "osv-on-qemu", .profile = p};
}

MemoryBacking MemoryBackingCatalog::osv_on_firecracker() {
  mem::MemoryProfile p;
  p.ept = true;
  p.backing_extra_ns = 24.0;
  p.backing_jitter = 0.40;
  p.bandwidth_factor = 0.80;
  return {.name = "osv-on-firecracker", .profile = p};
}

MemoryBacking MemoryBackingCatalog::gvisor_sentry() {
  mem::MemoryProfile p;
  // Sentry memory is ordinary process memory; mm-heavy syscalls are slow
  // but raw access latency/bandwidth are native.
  p.bandwidth_factor = 0.99;
  return {.name = "gvisor-sentry", .profile = p};
}

}  // namespace vmm
