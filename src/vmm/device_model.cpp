#include "vmm/device_model.h"

#include <algorithm>

namespace vmm {

using sim::micros;
using sim::millis;

DeviceModel::DeviceModel(std::vector<Device> devices)
    : devices_(std::move(devices)) {}

bool DeviceModel::has_device(const std::string& name) const {
  return std::any_of(devices_.begin(), devices_.end(),
                     [&](const Device& d) { return d.name == name; });
}

std::size_t DeviceModel::count_of_kind(DeviceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(devices_.begin(), devices_.end(),
                    [kind](const Device& d) { return d.kind == kind; }));
}

core::BootTimeline DeviceModel::boot_timeline() const {
  core::BootTimeline t;
  for (const auto& d : devices_) {
    t.stage("device:" + d.name,
            sim::DurationDist::lognormal(std::max<sim::Nanos>(d.init_cost_mean, 1),
                                         0.25));
  }
  return t;
}

bool DeviceModel::supports_extra_disk() const {
  return !frozen_ && has_device("virtio-blk");
}

bool DeviceModel::supports_vhost_user() const {
  return count_of_kind(DeviceKind::kVhostUser) > 0;
}

namespace {
Device virtio(const std::string& name, sim::Nanos cost = micros(350)) {
  return Device{name, DeviceKind::kVirtio, cost};
}
Device legacy(const std::string& name, sim::Nanos cost = micros(600)) {
  return Device{name, DeviceKind::kLegacy, cost};
}
Device platform_dev(const std::string& name, sim::Nanos cost = micros(800)) {
  return Device{name, DeviceKind::kPlatform, cost};
}
}  // namespace

DeviceModel DeviceModelCatalog::qemu_full() {
  // Emulated catalog of a stock qemu-system-x86_64 -M q35 guest.
  std::vector<Device> devs = {
      platform_dev("q35-host-bridge"), platform_dev("acpi"),
      platform_dev("ioapic"), platform_dev("pic"), platform_dev("pit"),
      platform_dev("hpet"), platform_dev("pci-bus"), platform_dev("pcie-root"),
      legacy("i8042"), legacy("rtc-cmos"), legacy("serial-16550a"),
      legacy("parallel-port"), legacy("floppy-fdc"), legacy("ide-controller"),
      legacy("sata-ahci"), legacy("usb-uhci"), legacy("usb-ehci"),
      legacy("usb-tablet"), legacy("ps2-keyboard"), legacy("ps2-mouse"),
      legacy("vga-std"), legacy("audio-alsa"), legacy("ne2k-legacy-nic"),
      legacy("e1000"), legacy("cdrom"), legacy("smbus"), legacy("tpm-tis"),
      virtio("virtio-net"), virtio("virtio-blk"), virtio("virtio-scsi"),
      virtio("virtio-serial"), virtio("virtio-rng"), virtio("virtio-balloon"),
      virtio("virtio-9p"), virtio("virtio-gpu"), virtio("virtio-vsock"),
      virtio("virtio-fs"), virtio("nvdimm", micros(500)),
      legacy("pvpanic"), legacy("debugcon"), legacy("fw-cfg"),
      legacy("qemu-monitor")};
  return DeviceModel(std::move(devs));
}

DeviceModel DeviceModelCatalog::qemu_microvm() {
  // The uVM machine model: virtio-mmio devices, no PCI, minimal legacy.
  std::vector<Device> devs = {
      platform_dev("microvm-board", micros(700)),
      legacy("i8042"), legacy("serial-16550a"),
      virtio("virtio-net"), virtio("virtio-blk"), virtio("virtio-rng"),
      virtio("virtio-serial"), virtio("virtio-vsock"), legacy("fw-cfg"),
      legacy("rtc-cmos")};
  return DeviceModel(std::move(devs));
}

DeviceModel DeviceModelCatalog::firecracker() {
  // Section 2.1.2: virtio-net, virtio-blk, virtio-vsock, a legacy i8042
  // serial console, PS/2 keyboard controller, and a pseudo boot-clock.
  std::vector<Device> devs = {
      virtio("virtio-net", micros(220)),
      virtio("virtio-blk", micros(220)),
      virtio("virtio-vsock", micros(200)),
      legacy("i8042", micros(150)),
      legacy("serial-console", micros(140)),
      legacy("ps2-keyboard", micros(120)),
      legacy("pseudo-boot-clock", micros(60))};
  DeviceModel model(std::move(devs));
  model.freeze_topology();  // no extra drives can be attached
  return model;
}

DeviceModel DeviceModelCatalog::cloud_hypervisor() {
  // Section 2.1.3: 16 devices, mostly virtio, plus vhost-user and hotplug.
  std::vector<Device> devs = {
      platform_dev("acpi", micros(500)),
      platform_dev("pci-bus", micros(450)),
      platform_dev("ioapic", micros(300)),
      legacy("serial-console", micros(150)),
      legacy("i8042", micros(140)),
      legacy("rtc-cmos", micros(120)),
      virtio("virtio-net", micros(230)),
      virtio("virtio-blk", micros(230)),
      virtio("virtio-vsock", micros(200)),
      virtio("virtio-rng", micros(160)),
      virtio("virtio-console", micros(170)),
      virtio("virtio-pmem", micros(200)),
      virtio("virtio-mem", micros(220)),
      virtio("virtio-iommu", micros(260)),
      Device{"vhost-user-net", DeviceKind::kVhostUser, micros(320)},
      Device{"vhost-user-blk", DeviceKind::kVhostUser, micros(320)}};
  DeviceModel model(std::move(devs));
  model.enable_memory_hotplug().enable_vcpu_hotplug();
  return model;
}

DeviceModel DeviceModelCatalog::kata_guest() {
  // QEMU launched by kata-runtime with a stripped machine type.
  std::vector<Device> devs = {
      platform_dev("q35-host-bridge", micros(600)),
      platform_dev("acpi", micros(500)),
      legacy("serial-16550a", micros(180)),
      virtio("virtio-net"), virtio("virtio-blk"), virtio("virtio-9p"),
      virtio("virtio-fs"), virtio("virtio-vsock"),
      virtio("nvdimm", micros(500))};
  return DeviceModel(std::move(devs));
}

}  // namespace vmm
