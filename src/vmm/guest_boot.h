// Guest boot protocol and kernel models.
//
// Section 2.1.2 explains why boot paths differ: Firecracker loads an
// *uncompressed* kernel and enters it directly in 64-bit long mode;
// QEMU runs SeaBIOS (or the minimal qboot) and a compressed bzImage that
// decompresses itself; the microvm machine model skips the BIOS but, as
// Figure 14 shows, ends up slowest in practice for Linux guests.
#pragma once

#include <cstdint>
#include <string>

#include "core/boot.h"

namespace vmm {

enum class BootProtocol {
  kBios,           // SeaBIOS: full 16->32->64 bit mode dance
  kQboot,          // minimal BIOS replacement
  kLinux64Direct,  // Firecracker/Cloud Hypervisor: enter at the 64-bit entry
  kMicroVm,        // QEMU uVM machine model (direct-ish but quirky)
};

std::string boot_protocol_name(BootProtocol p);

/// Firmware/pre-kernel boot stages for a protocol.
core::BootTimeline boot_protocol_timeline(BootProtocol p);

/// The guest kernel image to boot.
struct GuestKernel {
  std::string name;
  std::uint64_t image_bytes;
  bool compressed;       // bzImage decompresses itself at entry
  double feature_scale;  // 1.0 = distro generic; <1 = stripped (Kata, OSv)
};

/// Kernel catalog used across the experiments.
class GuestKernelCatalog {
 public:
  static GuestKernel ubuntu_generic();  // distro kernel, bzImage
  static GuestKernel uncompressed_vmlinux();  // what Firecracker boots
  static GuestKernel kata_stripped();   // kconfig-minimized Kata kernel
  static GuestKernel osv_kernel();      // the tiny OSv unikernel image
};

/// Stages to load and initialize a guest kernel through a given protocol.
/// `loader_bw_bytes_per_sec` is how fast the VMM copies the image into
/// guest memory (Firecracker's uncompressed vmlinux makes this dominate).
core::BootTimeline guest_kernel_timeline(const GuestKernel& kernel,
                                         BootProtocol protocol,
                                         double loader_bw_bytes_per_sec = 2.1e8);

}  // namespace vmm
