// Memory and vCPU hotplug (Section 2.1.3 — Cloud Hypervisor).
//
// The paper describes the mechanics precisely: memory is hotplugged by
// first allocating it on the host (in multiples of 128 MiB) and then
// mapping it from the hypervisor's userspace process into the guest;
// extra vCPUs are created with a CREATE_VCPU ioctl and advertised via
// ACPI, but stay offline until someone pokes the guest kernel's sysfs.
// This module implements that lifecycle against a Vm.
#pragma once

#include <cstdint>
#include <string>

#include "sim/clock.h"
#include "vmm/vm.h"

namespace vmm {

enum class HotplugStatus {
  kOk,
  kUnsupported,       // the device model has no hotplug capability
  kBadGranularity,    // memory not a multiple of 128 MiB
  kExceedsHostRam,    // host cannot back the allocation
  kNoStandbyVcpu,     // online requested but nothing was hotplugged
};

std::string hotplug_status_name(HotplugStatus s);

/// Drives hotplug requests through a VMM's API against one Vm.
class HotplugController {
 public:
  static constexpr std::uint64_t kMemoryGranularity = 128ull << 20;

  HotplugController(Vm& vm, hostk::HostKernel& host,
                    std::uint64_t host_ram_bytes);

  /// Hotplug guest memory. Charges host allocation + mapping time and
  /// records the KVM memory-region syscalls.
  HotplugStatus hotplug_memory(std::uint64_t bytes, sim::Clock& clock,
                               sim::Rng& rng);

  /// Create and advertise one extra vCPU (it starts in standby).
  HotplugStatus hotplug_vcpu(sim::Clock& clock, sim::Rng& rng);

  /// Bring one standby vCPU online by writing the guest's sysfs knob —
  /// the manual step the paper points out.
  HotplugStatus online_vcpu(sim::Clock& clock, sim::Rng& rng);

  std::uint64_t guest_ram_bytes() const { return guest_ram_; }
  int online_vcpus() const { return online_vcpus_; }
  int standby_vcpus() const { return standby_vcpus_; }

 private:
  Vm* vm_;
  hostk::HostKernel* host_;
  std::uint64_t host_ram_;
  std::uint64_t guest_ram_;
  int online_vcpus_;
  int standby_vcpus_ = 0;
};

}  // namespace vmm
