#include "vmm/vm.h"

namespace vmm {

using container::InitKind;
using hostk::Syscall;
using sim::DurationDist;
using sim::millis;

Vm::Vm(VmmSpec spec, hostk::HostKernel& host)
    : spec_(std::move(spec)), host_(&host) {}

core::BootTimeline Vm::boot_timeline() const {
  core::BootTimeline t;
  t.stage("vmm:process-spawn", spec_.process_spawn);
  t.stage("vmm:api-setup", spec_.api_setup);
  t.stage("vmm:init", spec_.vmm_init);
  // KVM VM + vCPU fds + memory-region registration.
  t.stage("vmm:kvm-setup", DurationDist::lognormal(millis(3.5), 0.2));
  t.append(spec_.devices.boot_timeline());
  t.append(boot_protocol_timeline(spec_.protocol));
  t.append(guest_kernel_timeline(spec_.kernel, spec_.protocol,
                                 spec_.loader_bw_bytes_per_sec));
  t.append(container::init_system_timeline(spec_.init));
  t.stage("vmm:teardown", container::init_system_shutdown(spec_.init));
  return t;
}

const core::BootTimeline& Vm::cached_timeline() const {
  if (!timeline_cached_) {
    timeline_cache_ = boot_timeline();
    timeline_cached_ = true;
  }
  return timeline_cache_;
}

void Vm::record_setup_syscalls(sim::Rng& rng) {
  // Host-visible setup syscalls (trace-relevant; their CPU time is part of
  // the sampled stage durations, so they do not advance the clock here).
  host_->invoke(Syscall::kKvmCreateVm, rng);
  host_->invoke(Syscall::kKvmCreateVcpu, rng,
                static_cast<std::uint64_t>(spec_.vcpus));
  // One memory slot per GiB of guest RAM (coarse but realistic).
  host_->invoke(Syscall::kKvmSetUserMemoryRegion, rng,
                std::max<std::uint64_t>(1, spec_.guest_ram_bytes >> 30));
  host_->invoke(Syscall::kMmap, rng,
                std::max<std::uint64_t>(1, spec_.guest_ram_bytes >> 30));
  host_->invoke(Syscall::kEventfd2, rng, spec_.devices.device_count());
  host_->invoke(Syscall::kKvmIoeventfd, rng, spec_.devices.device_count());
  host_->invoke(Syscall::kEpollCtl, rng, spec_.devices.device_count());
  host_->invoke(Syscall::kKvmSetRegs, rng,
                static_cast<std::uint64_t>(spec_.vcpus));
  // The boot itself: guest runs via KVM_RUN until init completes.
  host_->invoke(Syscall::kKvmRun, rng, 64);
}

core::BootResult Vm::boot(sim::Clock& clock, sim::Rng& rng) {
  record_setup_syscalls(rng);
  const core::BootResult result = boot_timeline().run(rng);
  clock.advance(result.total);
  booted_ = true;
  return result;
}

void Vm::record_boot(sim::Clock& clock, sim::Rng& rng) {
  record_setup_syscalls(rng);
  clock.advance(cached_timeline().sample_total(rng));
  booted_ = true;
}

void Vm::record_steady_state(std::uint64_t vm_exits, sim::Rng& rng) {
  if (!host_->ftrace().recording()) {
    return;
  }
  // Each guest exit re-enters through ioctl(KVM_RUN); the VMM event loop
  // polls its registered fds and timers (Section 2.1.1's main_loop_wait).
  host_->invoke(Syscall::kKvmRun, rng, vm_exits);
  host_->invoke(Syscall::kEpollWait, rng, std::max<std::uint64_t>(1, vm_exits / 8));
  host_->invoke(Syscall::kClockGettime, rng,
                std::max<std::uint64_t>(1, vm_exits / 4));
  host_->invoke(Syscall::kKvmIrqLine, rng, std::max<std::uint64_t>(1, vm_exits / 3));
}

// --- Catalog -----------------------------------------------------------

VmmSpec VmmCatalog::qemu_kvm() {
  return {.name = "qemu-kvm",
          .process_spawn = DurationDist::lognormal(millis(3.0), 0.2),
          .vmm_init = DurationDist::lognormal(millis(24), 0.12),
          .api_setup = DurationDist::constant(0),
          .devices = DeviceModelCatalog::qemu_full(),
          .protocol = BootProtocol::kBios,
          .kernel = GuestKernelCatalog::ubuntu_generic(),
          .init = container::InitKind::kPatchedExit,
          .memory = MemoryBackingCatalog::qemu_mmap()};
}

VmmSpec VmmCatalog::qemu_qboot() {
  VmmSpec s = qemu_kvm();
  s.name = "qemu-qboot";
  s.protocol = BootProtocol::kQboot;
  return s;
}

VmmSpec VmmCatalog::qemu_microvm() {
  VmmSpec s = qemu_kvm();
  s.name = "qemu-microvm";
  s.vmm_init = DurationDist::lognormal(millis(22), 0.12);
  s.devices = DeviceModelCatalog::qemu_microvm();
  s.protocol = BootProtocol::kMicroVm;
  return s;
}

VmmSpec VmmCatalog::firecracker() {
  return {.name = "firecracker",
          .process_spawn = DurationDist::lognormal(millis(1.4), 0.2),
          .vmm_init = DurationDist::lognormal(millis(6), 0.15),
          .api_setup = DurationDist::lognormal(millis(9), 0.15),
          .devices = DeviceModelCatalog::firecracker(),
          .protocol = BootProtocol::kLinux64Direct,
          // Firecracker boots an *uncompressed* vmlinux: copying the much
          // larger image dominates its end-to-end time (Conclusion 5).
          .kernel = GuestKernelCatalog::uncompressed_vmlinux(),
          .init = container::InitKind::kPatchedExit,
          .memory = MemoryBackingCatalog::vm_memory_crate_firecracker(),
          // Copying the uncompressed image into guest memory is the slow
          // part of Firecracker's end-to-end boot.
          .loader_bw_bytes_per_sec = 1.75e8};
}

VmmSpec VmmCatalog::cloud_hypervisor() {
  return {.name = "cloud-hypervisor",
          .process_spawn = DurationDist::lognormal(millis(1.5), 0.2),
          .vmm_init = DurationDist::lognormal(millis(8), 0.15),
          .api_setup = DurationDist::lognormal(millis(7), 0.15),
          .devices = DeviceModelCatalog::cloud_hypervisor(),
          .protocol = BootProtocol::kLinux64Direct,
          .kernel = GuestKernelCatalog::ubuntu_generic(),
          .init = container::InitKind::kPatchedExit,
          .memory = MemoryBackingCatalog::vm_memory_crate_cloud_hypervisor(),
          // CH keeps a compressed image and expands it in the VMM at
          // memcpy-like speeds.
          .loader_bw_bytes_per_sec = 5.0e8};
}

VmmSpec VmmCatalog::kata_vm() {
  return {.name = "kata-vm",
          .process_spawn = DurationDist::lognormal(millis(2.6), 0.2),
          .vmm_init = DurationDist::lognormal(millis(40), 0.12),
          .api_setup = DurationDist::constant(0),
          .devices = DeviceModelCatalog::kata_guest(),
          .protocol = BootProtocol::kQboot,
          .kernel = GuestKernelCatalog::kata_stripped(),
          .init = container::InitKind::kSystemdMini,
          .memory = MemoryBackingCatalog::kata_nvdimm_direct()};
}

VmmSpec VmmCatalog::osv_on_qemu() {
  VmmSpec s = qemu_kvm();
  s.name = "osv-qemu";
  s.kernel = GuestKernelCatalog::osv_kernel();
  s.init = container::InitKind::kPatchedExit;
  s.memory = MemoryBackingCatalog::osv_on_qemu();
  return s;
}

VmmSpec VmmCatalog::osv_on_qemu_microvm() {
  VmmSpec s = qemu_microvm();
  s.name = "osv-qemu-microvm";
  s.kernel = GuestKernelCatalog::osv_kernel();
  s.memory = MemoryBackingCatalog::osv_on_qemu();
  return s;
}

VmmSpec VmmCatalog::osv_on_firecracker() {
  VmmSpec s = firecracker();
  s.name = "osv-firecracker";
  s.kernel = GuestKernelCatalog::osv_kernel();
  s.memory = MemoryBackingCatalog::osv_on_firecracker();
  return s;
}

}  // namespace vmm
