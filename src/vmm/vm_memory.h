// Guest-memory backing models (the vm-memory crate and its alternatives).
//
// Section 3.2 attributes the memory-latency outliers to how each VMM backs
// and translates guest memory: Firecracker and Cloud Hypervisor share the
// hypervisor-agnostic `vm-memory` Rust crate (Finding 4), QEMU mmap()s
// guest RAM directly, and Kata's NVDIMM device maps a host file straight
// into the guest, bypassing the virtualized layer entirely (Finding 3).
#pragma once

#include <string>

#include "mem/hierarchy.h"

namespace vmm {

/// A named guest-memory backing with its performance fingerprint.
struct MemoryBacking {
  std::string name;
  mem::MemoryProfile profile;
};

/// Catalog calibrated against Figures 6-8.
class MemoryBackingCatalog {
 public:
  /// Plain host virtual memory; no virtualization (native, containers).
  static MemoryBacking host_native();

  /// QEMU: mmap()-backed guest RAM. Throughput dips (extra indirection in
  /// the DIMM emulation), latency close to native.
  static MemoryBacking qemu_mmap();

  /// Firecracker's vm-memory crate usage: the paper's worst case — higher
  /// average latency *and* much higher run-to-run variance, plus reduced
  /// copy bandwidth.
  static MemoryBacking vm_memory_crate_firecracker();

  /// Cloud Hypervisor's vm-memory usage: elevated latency (weaker than
  /// Firecracker's), throughput essentially fine.
  static MemoryBacking vm_memory_crate_cloud_hypervisor();

  /// Kata via QEMU NVDIMM: direct file mapping between host and guest;
  /// near-native on both axes, but no HugePages support.
  static MemoryBacking kata_nvdimm_direct();

  /// OSv under QEMU: near-native (Finding 5).
  static MemoryBacking osv_on_qemu();

  /// OSv under Firecracker: inherits the vm-memory penalty (Finding 5).
  static MemoryBacking osv_on_firecracker();

  /// gVisor: guest memory is ordinary Sentry process memory.
  static MemoryBacking gvisor_sentry();
};

}  // namespace vmm
