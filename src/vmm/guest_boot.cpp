#include "vmm/guest_boot.h"

#include <algorithm>

namespace vmm {

using sim::DurationDist;
using sim::millis;

std::string boot_protocol_name(BootProtocol p) {
  switch (p) {
    case BootProtocol::kBios:
      return "bios";
    case BootProtocol::kQboot:
      return "qboot";
    case BootProtocol::kLinux64Direct:
      return "linux64-direct";
    case BootProtocol::kMicroVm:
      return "microvm";
  }
  return "unknown";
}

core::BootTimeline boot_protocol_timeline(BootProtocol p) {
  core::BootTimeline t;
  switch (p) {
    case BootProtocol::kBios:
      t.stage("fw:seabios-post", DurationDist::lognormal(millis(40), 0.12));
      t.stage("fw:option-roms", DurationDist::lognormal(millis(10), 0.20));
      t.stage("fw:mode-switches", DurationDist::lognormal(millis(5), 0.15));
      break;
    case BootProtocol::kQboot:
      t.stage("fw:qboot", DurationDist::lognormal(millis(11), 0.15));
      t.stage("fw:mode-switches", DurationDist::lognormal(millis(6), 0.15));
      break;
    case BootProtocol::kLinux64Direct:
      // 64-bit boot protocol: no firmware, no mode-by-mode dance.
      t.stage("fw:direct-64bit-entry", DurationDist::lognormal(millis(0.6), 0.2));
      break;
    case BootProtocol::kMicroVm:
      // No BIOS, but synchronous fw-cfg DMA setup is not free; the real
      // cost of this machine model shows up in the guest's device probe
      // (see guest_kernel_timeline) — Figure 14's unexpected result.
      t.stage("fw:microvm-fwcfg", DurationDist::lognormal(millis(34), 0.18));
      t.stage("fw:virtio-mmio-setup", DurationDist::lognormal(millis(25), 0.15));
      break;
  }
  return t;
}

GuestKernel GuestKernelCatalog::ubuntu_generic() {
  return {.name = "ubuntu-5.4-bzImage",
          .image_bytes = 11ull << 20,
          .compressed = true,
          .feature_scale = 1.0};
}

GuestKernel GuestKernelCatalog::uncompressed_vmlinux() {
  return {.name = "vmlinux-5.4-uncompressed",
          .image_bytes = 46ull << 20,
          .compressed = false,
          .feature_scale = 1.0};
}

GuestKernel GuestKernelCatalog::kata_stripped() {
  return {.name = "kata-kernel-minimal",
          .image_bytes = 6ull << 20,
          .compressed = true,
          .feature_scale = 0.34};
}

GuestKernel GuestKernelCatalog::osv_kernel() {
  return {.name = "osv-unikernel",
          .image_bytes = 7ull << 20,
          .compressed = false,
          .feature_scale = 0.12};
}

core::BootTimeline guest_kernel_timeline(const GuestKernel& kernel,
                                         BootProtocol protocol,
                                         double loader_bw_bytes_per_sec) {
  core::BootTimeline t;
  // Image load: the VMM copies the image into guest memory. Uncompressed
  // vmlinux images are ~4x larger than bzImage, which is what makes
  // Firecracker's Linux end-to-end boot slow (Finding 14 / Conclusion 5).
  const double load_s =
      static_cast<double>(kernel.image_bytes) / loader_bw_bytes_per_sec;
  t.stage("kernel:load-image",
          DurationDist::lognormal(std::max<sim::Nanos>(sim::seconds(load_s), 1),
                                  0.10));
  if (kernel.compressed) {
    t.stage("kernel:self-decompress", DurationDist::lognormal(millis(30), 0.12));
  }
  // Hardware probing + subsystem init scales with the configured feature
  // surface (Kata's kconfig-minimized kernel boots much faster).
  const double init_ms = 55.0 * kernel.feature_scale;
  t.stage("kernel:init",
          DurationDist::lognormal(millis(std::max(init_ms, 1.0)), 0.10));
  if (protocol == BootProtocol::kBios || protocol == BootProtocol::kQboot) {
    t.stage("kernel:pci-probe", DurationDist::lognormal(millis(16), 0.15));
  } else if (protocol == BootProtocol::kMicroVm) {
    // Figure 14's surprise: on this QEMU version the guest's virtio-mmio
    // discovery takes a slow legacy path that scales with the kernel's
    // configured driver surface — full Linux pays dearly, OSv barely.
    t.stage("kernel:virtio-mmio-probe",
            DurationDist::lognormal(
                millis(std::max(160.0 * kernel.feature_scale, 1.0)), 0.12));
  }
  return t;
}

}  // namespace vmm
