// Hypervisor device models.
//
// Section 2.1 contrasts the device models of the three hypervisors: QEMU
// emulates 40+ devices, Cloud Hypervisor supports 16, Firecracker only 7.
// Device-model size costs VMM initialization time at boot and defines which
// features (extra disks, hotplug, vhost-user) a platform supports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/boot.h"
#include "sim/distribution.h"

namespace vmm {

enum class DeviceKind {
  kVirtio,     // paravirtualized virtio device
  kVhostUser,  // device backend in a separate userspace process
  kLegacy,     // emulated legacy hardware (i8042, serial, RTC...)
  kPlatform,   // ACPI, IOAPIC, PCI host bridge and friends
};

struct Device {
  std::string name;
  DeviceKind kind;
  sim::Nanos init_cost_mean;  // contribution to VMM startup
};

/// The set of devices a hypervisor wires into a guest.
class DeviceModel {
 public:
  DeviceModel() = default;
  explicit DeviceModel(std::vector<Device> devices);

  std::size_t device_count() const { return devices_.size(); }
  const std::vector<Device>& devices() const { return devices_; }

  bool has_device(const std::string& name) const;
  std::size_t count_of_kind(DeviceKind kind) const;

  /// Boot stages: realize/init every device.
  core::BootTimeline boot_timeline() const;

  /// Feature probes used by experiments to honor the paper's exclusions.
  bool supports_extra_disk() const;  // a second virtio-blk can be attached
  bool supports_vhost_user() const;
  bool supports_memory_hotplug() const { return memory_hotplug_; }
  bool supports_vcpu_hotplug() const { return vcpu_hotplug_; }

  DeviceModel& enable_memory_hotplug() { memory_hotplug_ = true; return *this; }
  DeviceModel& enable_vcpu_hotplug() { vcpu_hotplug_ = true; return *this; }
  /// Firecracker: the device list is fixed at build time, no extra drives.
  DeviceModel& freeze_topology() { frozen_ = true; return *this; }
  bool topology_frozen() const { return frozen_; }

 private:
  std::vector<Device> devices_;
  bool memory_hotplug_ = false;
  bool vcpu_hotplug_ = false;
  bool frozen_ = false;
};

/// Device-model catalog matching Section 2.1.
class DeviceModelCatalog {
 public:
  static DeviceModel qemu_full();        // 40+ devices
  static DeviceModel qemu_microvm();     // the uVM machine model
  static DeviceModel firecracker();      // exactly 7 devices
  static DeviceModel cloud_hypervisor(); // 16 devices, hotplug-capable
  static DeviceModel kata_guest();       // stripped QEMU for Kata guests
};

}  // namespace vmm
