#include "vmm/hotplug.h"

namespace vmm {

using hostk::Syscall;
using sim::DurationDist;
using sim::micros;
using sim::millis;

std::string hotplug_status_name(HotplugStatus s) {
  switch (s) {
    case HotplugStatus::kOk:
      return "ok";
    case HotplugStatus::kUnsupported:
      return "unsupported";
    case HotplugStatus::kBadGranularity:
      return "bad-granularity";
    case HotplugStatus::kExceedsHostRam:
      return "exceeds-host-ram";
    case HotplugStatus::kNoStandbyVcpu:
      return "no-standby-vcpu";
  }
  return "unknown";
}

HotplugController::HotplugController(Vm& vm, hostk::HostKernel& host,
                                     std::uint64_t host_ram_bytes)
    : vm_(&vm),
      host_(&host),
      host_ram_(host_ram_bytes),
      guest_ram_(vm.spec().guest_ram_bytes),
      online_vcpus_(vm.spec().vcpus) {}

HotplugStatus HotplugController::hotplug_memory(std::uint64_t bytes,
                                                sim::Clock& clock,
                                                sim::Rng& rng) {
  if (!vm_->spec().devices.supports_memory_hotplug()) {
    return HotplugStatus::kUnsupported;
  }
  if (bytes == 0 || bytes % kMemoryGranularity != 0) {
    return HotplugStatus::kBadGranularity;
  }
  if (guest_ram_ + bytes > host_ram_) {
    return HotplugStatus::kExceedsHostRam;
  }
  // API request to the VMM, host-side allocation, then mapping the new
  // region into the guest's physical address space.
  host_->invoke_on(clock, Syscall::kSendmsg, rng, 1);  // REST API call
  host_->invoke_on(clock, Syscall::kMmap, rng, bytes / kMemoryGranularity);
  host_->invoke_on(clock, Syscall::kKvmSetUserMemoryRegion, rng,
                   bytes / kMemoryGranularity);
  // Guest-side ACPI notification + memory-block onlining.
  clock.advance(DurationDist::lognormal(millis(14), 0.2).sample(rng));
  guest_ram_ += bytes;
  return HotplugStatus::kOk;
}

HotplugStatus HotplugController::hotplug_vcpu(sim::Clock& clock,
                                              sim::Rng& rng) {
  if (!vm_->spec().devices.supports_vcpu_hotplug()) {
    return HotplugStatus::kUnsupported;
  }
  host_->invoke_on(clock, Syscall::kSendmsg, rng, 1);       // API call
  host_->invoke_on(clock, Syscall::kKvmCreateVcpu, rng, 1); // CREATE_VCPU
  // ACPI advertisement to the running guest kernel.
  host_->invoke_on(clock, Syscall::kKvmIrqLine, rng, 1);
  clock.advance(DurationDist::lognormal(millis(3.5), 0.2).sample(rng));
  ++standby_vcpus_;
  return HotplugStatus::kOk;
}

HotplugStatus HotplugController::online_vcpu(sim::Clock& clock, sim::Rng& rng) {
  if (standby_vcpus_ == 0) {
    return HotplugStatus::kNoStandbyVcpu;
  }
  // "The newly provisioned vCPUs ... have to be brought online by manual
  // interaction with the guest Linux kernel sysfs interface."
  host_->invoke_on(clock, Syscall::kKvmRun, rng, 4);  // guest executes write
  clock.advance(DurationDist::lognormal(micros(850), 0.2).sample(rng));
  --standby_vcpus_;
  ++online_vcpus_;
  return HotplugStatus::kOk;
}

}  // namespace vmm
