// Streaming summary statistics (Welford) used by all experiments.
#pragma once

#include <cstddef>
#include <limits>

namespace stats {

/// Single-pass mean/variance/min/max accumulator. Numerically stable
/// (Welford's algorithm); safe to merge results of sub-experiments.
class Summary {
 public:
  void add(double x);

  /// Merge another summary into this one (parallel-run reduction).
  void merge(const Summary& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
  double cv() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stats
