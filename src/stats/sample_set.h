// Retained-sample statistics: percentiles and empirical CDFs.
//
// The paper reports mean +- stddev bar charts for most figures, p90 for the
// netperf latency figure, and CDFs over 300 startups for the boot figures.
// SampleSet supports all three from one container.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "stats/summary.h"

namespace stats {

/// A point on an empirical CDF: (value, cumulative fraction in [0,1]).
struct CdfPoint {
  double value;
  double fraction;
};

/// Collects raw observations and serves order statistics.
class SampleSet {
 public:
  SampleSet() = default;
  explicit SampleSet(std::vector<double> values);

  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  /// Linear-interpolated percentile, p in [0, 100]. Throws when empty or
  /// p is out of range.
  double percentile(double p) const;

  double median() const { return percentile(50.0); }

  /// Streaming summary over the same observations.
  Summary summary() const;

  /// Empirical CDF with at most `max_points` points (down-sampled evenly;
  /// always includes the minimum and maximum observation).
  std::vector<CdfPoint> cdf(std::size_t max_points = 100) const;

  /// Fraction of samples <= x.
  double fraction_below(double x) const;

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace stats
