// Plain-text and CSV table rendering for benchmark harness output.
//
// Every bench binary prints the rows/series of one of the paper's figures;
// Table keeps that output uniform and machine-consumable (CSV mode).
#pragma once

#include <string>
#include <vector>

namespace stats {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with sensible precision. Rendering right-aligns numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Monospace rendering with a header underline.
  std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas or quotes).
  std::string to_csv() const;

  /// Format helpers used across bench binaries.
  static std::string num(double v, int precision = 2);
  static std::string mean_pm_std(double mean, double stddev, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stats
