#include "stats/sample_set.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stats {

SampleSet::SampleSet(std::vector<double> values) : values_(std::move(values)) {}

void SampleSet::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::percentile(double p) const {
  if (values_.empty()) {
    throw std::logic_error("SampleSet::percentile: empty sample set");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("SampleSet::percentile: p out of [0,100]");
  }
  ensure_sorted();
  if (sorted_.size() == 1) {
    return sorted_.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

Summary SampleSet::summary() const {
  Summary s;
  for (double v : values_) {
    s.add(v);
  }
  return s;
}

std::vector<CdfPoint> SampleSet::cdf(std::size_t max_points) const {
  ensure_sorted();
  std::vector<CdfPoint> points;
  if (sorted_.empty() || max_points == 0) {
    return points;
  }
  const std::size_t n = sorted_.size();
  const std::size_t m = std::min(n, max_points);
  points.reserve(m);
  if (m == 1) {
    // A single point can only honor the "maximum is included" promise.
    points.push_back({sorted_.back(), 1.0});
    return points;
  }
  // Indices spread evenly over [0, n-1]; k=0 hits the minimum and k=m-1
  // the maximum, so neither extreme is ever dropped and the point count
  // never exceeds max_points. (The previous fixed-stride loop missed the
  // maximum whenever (n-1) % step != 0 and then over-ran the budget
  // appending it back.)
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t i = k * (n - 1) / (m - 1);
    points.push_back(
        {sorted_[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  return points;
}

double SampleSet::fraction_below(double x) const {
  if (values_.empty()) {
    return 0.0;
  }
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

}  // namespace stats
