#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace stats {
namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) {
        out << "  ";
      }
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) {
        out << ',';
      }
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::mean_pm_std(double mean, double stddev, int precision) {
  return num(mean, precision) + " +- " + num(stddev, precision);
}

}  // namespace stats
