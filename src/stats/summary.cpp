#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace stats {

void Summary::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::cv() const {
  if (count_ == 0 || mean_ == 0.0) {
    return 0.0;
  }
  return stddev() / std::abs(mean_);
}

}  // namespace stats
