// Physical NIC model.
//
// The paper's iperf3 native baseline reaches 37.28 Gbit/s over IP; we model
// the NIC as a line rate plus fixed per-packet CPU/DMA cost, so software
// layers stacked on top (bridges, TAP devices, user-space netstacks) each
// reduce the achievable throughput as in Figure 11.
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"

namespace hostk {

struct NicSpec {
  double line_rate_bps = 40e9;      // 40 GbE
  sim::Nanos per_packet_cost = 22;  // driver+DMA+interrupt, TSO/GRO amortized
  std::uint32_t mtu = 1500;
  sim::Nanos base_latency = sim::micros(18);  // wire + switch one-way
};

/// Computes transfer times for packetized payloads.
class Nic {
 public:
  explicit Nic(NicSpec spec = {});

  /// Number of MTU-sized packets needed for a payload.
  std::uint64_t packets_for(std::uint64_t bytes) const;

  /// Time to push `bytes` through the wire (serialization + per-packet cost).
  sim::Nanos transfer_time(std::uint64_t bytes, sim::Rng& rng) const;

  /// One-way propagation latency sample.
  sim::Nanos latency(sim::Rng& rng) const;

  const NicSpec& spec() const { return spec_; }

 private:
  NicSpec spec_;
};

}  // namespace hostk
