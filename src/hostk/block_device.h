// NVMe SSD service-time model.
//
// The paper's testbed uses "a dedicated fast NVMe SSD". We model per-request
// service time as a base access latency (lognormal) plus a transfer term
// bounded by the device's sustained bandwidth; writes are slower and
// noisier than reads, matching the wider error bars of Figure 9.
#pragma once

#include <cstdint>

#include "sim/distribution.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace hostk {

/// Static description of a block device.
struct BlockDeviceSpec {
  sim::Nanos read_base_latency = sim::micros(78);   // 4 KiB QD1 random read
  double read_latency_sigma = 0.10;
  sim::Nanos write_base_latency = sim::micros(22);  // write-cache absorbed
  double write_latency_sigma = 0.28;
  double read_bw_bytes_per_sec = 3.3e9;   // sustained sequential read
  double write_bw_bytes_per_sec = 2.4e9;  // sustained sequential write
};

/// A single NVMe namespace with read/write service-time sampling.
class BlockDevice {
 public:
  explicit BlockDevice(BlockDeviceSpec spec = {});

  /// Service time of one read of `bytes` (sequential transfers amortize the
  /// base latency across the request, not per page).
  sim::Nanos read(std::uint64_t bytes, sim::Rng& rng) const;

  /// Service time of one write of `bytes`.
  sim::Nanos write(std::uint64_t bytes, sim::Rng& rng) const;

  /// Access-latency component only (queue + flash read), no transfer.
  sim::Nanos read_base(sim::Rng& rng) const;
  sim::Nanos write_base(sim::Rng& rng) const;

  /// Bandwidth-bound transfer component only.
  sim::Nanos read_transfer(std::uint64_t bytes) const;
  sim::Nanos write_transfer(std::uint64_t bytes) const;

  const BlockDeviceSpec& spec() const { return spec_; }

  /// Totals since construction (for utilization assertions in tests).
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  BlockDeviceSpec spec_;
  mutable std::uint64_t bytes_read_ = 0;
  mutable std::uint64_t bytes_written_ = 0;
};

}  // namespace hostk
