#include "hostk/host_kernel.h"

#include <stdexcept>

namespace hostk {

namespace {
std::size_t index_of(Syscall sc) {
  const auto i = static_cast<std::size_t>(sc);
  if (i >= kSyscallCount) {
    throw std::out_of_range("HostKernel: invalid syscall");
  }
  return i;
}
}  // namespace

std::string_view syscall_name(Syscall s) {
  switch (s) {
    case Syscall::kRead: return "read";
    case Syscall::kWrite: return "write";
    case Syscall::kPread64: return "pread64";
    case Syscall::kPwrite64: return "pwrite64";
    case Syscall::kReadv: return "readv";
    case Syscall::kWritev: return "writev";
    case Syscall::kOpenat: return "openat";
    case Syscall::kClose: return "close";
    case Syscall::kFstat: return "fstat";
    case Syscall::kStatx: return "statx";
    case Syscall::kLseek: return "lseek";
    case Syscall::kFallocate: return "fallocate";
    case Syscall::kFsync: return "fsync";
    case Syscall::kGetdents64: return "getdents64";
    case Syscall::kIoSubmit: return "io_submit";
    case Syscall::kIoGetevents: return "io_getevents";
    case Syscall::kEventfd2: return "eventfd2";
    case Syscall::kEpollWait: return "epoll_wait";
    case Syscall::kEpollCtl: return "epoll_ctl";
    case Syscall::kPipe2: return "pipe2";
    case Syscall::kDup3: return "dup3";
    case Syscall::kFcntl: return "fcntl";
    case Syscall::kIoctlTun: return "ioctl(TUN)";
    case Syscall::kIoctlLoop: return "ioctl(LOOP)";
    case Syscall::kMmap: return "mmap";
    case Syscall::kMunmap: return "munmap";
    case Syscall::kMprotect: return "mprotect";
    case Syscall::kMadvise: return "madvise";
    case Syscall::kBrk: return "brk";
    case Syscall::kSocket: return "socket";
    case Syscall::kBind: return "bind";
    case Syscall::kListen: return "listen";
    case Syscall::kAccept4: return "accept4";
    case Syscall::kConnect: return "connect";
    case Syscall::kSendto: return "sendto";
    case Syscall::kRecvfrom: return "recvfrom";
    case Syscall::kSendmsg: return "sendmsg";
    case Syscall::kRecvmsg: return "recvmsg";
    case Syscall::kSetsockopt: return "setsockopt";
    case Syscall::kVsockSend: return "vsock_send";
    case Syscall::kVsockRecv: return "vsock_recv";
    case Syscall::kClone: return "clone";
    case Syscall::kClone3: return "clone3";
    case Syscall::kExecve: return "execve";
    case Syscall::kExitGroup: return "exit_group";
    case Syscall::kWait4: return "wait4";
    case Syscall::kFutexWait: return "futex(WAIT)";
    case Syscall::kFutexWake: return "futex(WAKE)";
    case Syscall::kSchedYield: return "sched_yield";
    case Syscall::kNanosleep: return "nanosleep";
    case Syscall::kKill: return "kill";
    case Syscall::kTgkill: return "tgkill";
    case Syscall::kRtSigreturn: return "rt_sigreturn";
    case Syscall::kPtraceSysemu: return "ptrace(SYSEMU)";
    case Syscall::kPtraceGetregs: return "ptrace(GETREGS)";
    case Syscall::kPtraceSetregs: return "ptrace(SETREGS)";
    case Syscall::kUnshare: return "unshare";
    case Syscall::kSetns: return "setns";
    case Syscall::kPivotRoot: return "pivot_root";
    case Syscall::kMount: return "mount";
    case Syscall::kUmount2: return "umount2";
    case Syscall::kSeccompLoad: return "seccomp(LOAD)";
    case Syscall::kPrctl: return "prctl";
    case Syscall::kCgroupWrite: return "cgroup_write";
    case Syscall::kClockGettime: return "clock_gettime";
    case Syscall::kKvmCreateVm: return "ioctl(KVM_CREATE_VM)";
    case Syscall::kKvmCreateVcpu: return "ioctl(KVM_CREATE_VCPU)";
    case Syscall::kKvmSetUserMemoryRegion: return "ioctl(KVM_SET_USER_MEMORY_REGION)";
    case Syscall::kKvmRun: return "ioctl(KVM_RUN)";
    case Syscall::kKvmIrqLine: return "ioctl(KVM_IRQ_LINE)";
    case Syscall::kKvmIoeventfd: return "ioctl(KVM_IOEVENTFD)";
    case Syscall::kKvmGetRegs: return "ioctl(KVM_GET_REGS)";
    case Syscall::kKvmSetRegs: return "ioctl(KVM_SET_REGS)";
    case Syscall::kProcRead: return "proc_read";
    case Syscall::kCount_: break;
  }
  return "unknown";
}

HostKernel::HostKernel() : ftrace_(registry_) {
  using sim::DurationDist;
  using sim::micros;
  using sim::nanos;

  // Baseline user->kernel transition cost; individual handlers add on top.
  const auto fast = DurationDist::lognormal(nanos(250), 0.15);
  const auto medium = DurationDist::lognormal(nanos(900), 0.20);
  const auto slow = DurationDist::lognormal(micros(4), 0.25);
  const auto very_slow = DurationDist::lognormal(micros(40), 0.30);

  define(Syscall::kRead, fast,
         {"ksys_read", "vfs_read", "new_sync_read", "rw_verify_area",
          "security_file_permission", "__fsnotify_parent",
          "generic_file_read_iter", "filemap_read", "copy_page_to_iter",
          "touch_atime"});
  define(Syscall::kWrite, fast,
         {"ksys_write", "vfs_write", "new_sync_write", "rw_verify_area",
          "security_file_permission", "__fsnotify_parent",
          "generic_file_write_iter", "generic_perform_write",
          "copy_page_from_iter", "file_update_time", "sb_start_write",
          "balance_dirty_pages"});
  define(Syscall::kPread64, fast,
         {"vfs_read", "rw_verify_area", "security_file_permission",
          "generic_file_read_iter", "filemap_read", "copy_page_to_iter"});
  define(Syscall::kPwrite64, fast,
         {"vfs_write", "rw_verify_area", "security_file_permission",
          "generic_file_write_iter", "generic_perform_write",
          "copy_page_from_iter", "balance_dirty_pages"});
  define(Syscall::kReadv, fast,
         {"vfs_readv", "iov_iter_init", "rw_verify_area",
          "generic_file_read_iter", "filemap_read", "copy_page_to_iter"});
  define(Syscall::kWritev, fast,
         {"vfs_writev", "iov_iter_init", "rw_verify_area",
          "generic_file_write_iter", "generic_perform_write",
          "copy_page_from_iter"});
  define(Syscall::kOpenat, medium,
         {"do_sys_openat2", "getname_flags", "do_filp_open", "path_openat",
          "link_path_walk", "lookup_fast", "walk_component", "step_into",
          "lookup_open", "open_last_lookups", "may_open", "complete_walk",
          "do_dentry_open", "vfs_open", "security_file_permission",
          "alloc_fd", "fd_install", "putname", "terminate_walk", "dput",
          "ext4_file_open"});
  define(Syscall::kClose, fast,
         {"close_fd", "filp_close", "fput", "____fput", "ext4_release_file",
          "dput"});
  define(Syscall::kFstat, fast,
         {"vfs_getattr", "vfs_statx", "ext4_getattr", "cap_capable"});
  define(Syscall::kStatx, medium,
         {"vfs_statx", "getname_flags", "link_path_walk", "lookup_fast",
          "ext4_getattr", "putname", "dput"});
  define(Syscall::kLseek, fast, {"generic_file_llseek"});
  define(Syscall::kFallocate, very_slow,
         {"vfs_fallocate", "ext4_fallocate", "ext4_map_blocks",
          "ext4_ext_map_blocks", "ext4_journal_start_sb", "sb_start_write"});
  define(Syscall::kFsync, very_slow,
         {"vfs_fsync_range", "ext4_sync_file",
          "jbd2_journal_commit_transaction", "submit_bio",
          "blk_mq_submit_bio", "nvme_queue_rq", "nvme_complete_rq",
          "bio_endio", "blk_account_io_done"});
  define(Syscall::kGetdents64, medium,
         {"iterate_dir", "dcache_readdir", "security_file_permission",
          "touch_atime"});
  define(Syscall::kIoSubmit, medium,
         {"io_submit_one", "aio_read", "aio_write", "rw_verify_area",
          "ext4_file_read_iter", "ext4_direct_IO", "iomap_dio_rw",
          "submit_bio", "submit_bio_noacct", "blk_mq_submit_bio",
          "blk_mq_get_new_requests", "blk_account_io_start",
          "nvme_setup_cmd", "nvme_queue_rq", "blk_start_plug",
          "blk_finish_plug", "bio_alloc_bioset"});
  define(Syscall::kIoGetevents, fast,
         {"do_io_getevents", "iomap_dio_bio_end_io", "bio_endio",
          "blk_mq_end_request", "blk_mq_complete_request",
          "nvme_pci_complete_rq", "nvme_process_cq", "nvme_irq",
          "blk_account_io_done"});
  define(Syscall::kEventfd2, fast, {"anon_inode_getfd", "alloc_fd", "fd_install"});
  define(Syscall::kEpollWait, fast,
         {"do_epoll_wait", "ep_poll", "ep_send_events", "schedule",
          "__schedule", "try_to_wake_up"});
  define(Syscall::kEpollCtl, fast, {"do_epoll_ctl", "ep_insert"});
  define(Syscall::kPipe2, medium,
         {"do_pipe2", "anon_inode_getfd", "alloc_fd", "fd_install"});
  define(Syscall::kDup3, fast, {"do_dup2", "fd_install"});
  define(Syscall::kFcntl, fast, {"do_fcntl"});
  define(Syscall::kIoctlTun, fast,
         {"tun_get_user", "tun_net_xmit", "netif_rx_internal",
          "enqueue_to_backlog"});
  define(Syscall::kIoctlLoop, medium,
         {"loop_queue_work", "loop_handle_cmd", "lo_rw_aio", "submit_bio",
          "blk_mq_submit_bio"});

  define(Syscall::kMmap, medium,
         {"vm_mmap_pgoff", "do_mmap", "mmap_region", "vma_merge", "vma_link",
          "security_mmap_file", "security_vm_enough_memory_mm",
          "perf_event_mmap", "find_vma"});
  define(Syscall::kMunmap, medium,
         {"__do_munmap", "unmap_region", "zap_page_range", "tlb_flush_mmu",
          "flush_tlb_mm_range", "free_unref_page", "find_vma"});
  define(Syscall::kMprotect, medium,
         {"mprotect_fixup", "change_protection", "flush_tlb_mm_range",
          "vma_merge", "find_vma"});
  define(Syscall::kMadvise, medium,
         {"madvise_dontneed_free", "zap_page_range", "ksm_madvise",
          "find_vma"});
  define(Syscall::kBrk, fast, {"do_brk_flags", "find_vma", "vma_merge"});

  define(Syscall::kSocket, medium,
         {"__sys_socket", "sock_alloc_file", "security_socket_create",
          "alloc_fd", "fd_install"});
  define(Syscall::kBind, fast, {"inet_bind", "security_capable"});
  define(Syscall::kListen, fast, {"inet_listen"});
  define(Syscall::kAccept4, medium,
         {"__sys_accept4", "inet_csk_accept", "tcp_v4_syn_recv_sock",
          "sock_alloc_file", "alloc_fd", "fd_install"});
  define(Syscall::kConnect, slow,
         {"__sys_connect", "tcp_v4_connect", "ip_route_output_key_hash",
          "fib_table_lookup", "tcp_transmit_skb", "ip_queue_xmit"});
  define(Syscall::kSendto, medium,
         {"__sys_sendto", "sock_sendmsg", "security_socket_sendmsg",
          "apparmor_socket_sendmsg", "tcp_sendmsg", "tcp_sendmsg_locked",
          "sk_stream_alloc_skb", "__alloc_skb", "tcp_push", "tcp_write_xmit",
          "__tcp_transmit_skb", "ip_queue_xmit", "ip_local_out", "ip_output",
          "ip_finish_output2", "dev_queue_xmit", "__dev_queue_xmit",
          "dev_hard_start_xmit", "sock_wfree"});
  define(Syscall::kRecvfrom, medium,
         {"__sys_recvfrom", "sock_recvmsg", "security_socket_recvmsg",
          "tcp_recvmsg", "skb_copy_datagram_iter", "tcp_rcv_established",
          "tcp_ack", "tcp_clean_rtx_queue", "skb_release_data", "kfree_skb",
          "sock_def_readable"});
  define(Syscall::kSendmsg, medium,
         {"____sys_sendmsg", "sock_sendmsg", "security_socket_sendmsg",
          "tcp_sendmsg", "tcp_write_xmit", "__tcp_transmit_skb",
          "ip_queue_xmit", "dev_queue_xmit", "__alloc_skb"});
  define(Syscall::kRecvmsg, medium,
         {"____sys_recvmsg", "sock_recvmsg", "security_socket_recvmsg",
          "tcp_recvmsg", "skb_copy_datagram_iter", "kfree_skb"});
  define(Syscall::kSetsockopt, fast, {"sock_setsockopt", "tcp_setsockopt"});

  define(Syscall::kVsockSend, medium,
         {"vsock_stream_sendmsg", "virtio_transport_send_pkt",
          "virtio_transport_do_send_pkt", "vhost_vsock_handle_tx_kick",
          "vhost_poll_queue", "eventfd_signal"});
  define(Syscall::kVsockRecv, medium,
         {"vsock_stream_recvmsg", "virtio_transport_recv_pkt",
          "vsock_queue_rcv_skb", "vhost_vsock_handle_rx_kick",
          "vsock_poll"});

  define(Syscall::kClone, slow,
         {"kernel_clone", "copy_process", "copy_namespaces",
          "security_task_alloc", "cgroup_can_fork", "cgroup_post_fork",
          "copy_page_range", "wake_up_new_task", "try_to_wake_up",
          "select_task_rq_fair"});
  define(Syscall::kClone3, slow,
         {"kernel_clone", "copy_process", "copy_namespaces",
          "security_task_alloc", "cgroup_can_fork", "cgroup_post_fork",
          "wake_up_new_task", "try_to_wake_up"});
  define(Syscall::kExecve, very_slow,
         {"do_execveat_common", "bprm_execve", "begin_new_exec",
          "load_elf_binary", "setup_arg_pages", "security_bprm_check",
          "mm_release", "exit_mm", "vm_mmap_pgoff", "do_mmap",
          "handle_mm_fault", "filemap_fault"});
  define(Syscall::kExitGroup, slow,
         {"do_group_exit", "do_exit", "exit_mm", "release_task",
          "acct_collect", "taskstats_exit", "do_task_dead", "__schedule"});
  define(Syscall::kWait4, medium,
         {"kernel_waitid", "do_wait", "release_task", "schedule",
          "__schedule"});
  define(Syscall::kFutexWait, fast,
         {"do_futex", "futex_wait", "get_futex_key", "hash_futex",
          "futex_wait_queue_me", "schedule", "__schedule",
          "finish_task_switch"});
  define(Syscall::kFutexWake, fast,
         {"do_futex", "futex_wake", "get_futex_key", "hash_futex",
          "wake_up_q", "try_to_wake_up", "ttwu_do_activate",
          "select_task_rq_fair", "enqueue_task_fair"});
  define(Syscall::kSchedYield, fast,
         {"do_sched_yield", "schedule", "__schedule", "pick_next_task_fair",
          "put_prev_task_fair", "context_switch", "finish_task_switch"});
  define(Syscall::kNanosleep, fast,
         {"hrtimer_nanosleep", "do_nanosleep", "hrtimer_start_range_ns",
          "schedule", "__schedule", "hrtimer_wakeup"});
  define(Syscall::kKill, medium,
         {"kill_pid_info", "group_send_sig_info", "__send_signal",
          "complete_signal", "signal_wake_up_state", "find_task_by_vpid",
          "pid_vnr"});
  define(Syscall::kTgkill, medium,
         {"do_send_sig_info", "__send_signal", "complete_signal",
          "signal_wake_up_state"});
  define(Syscall::kRtSigreturn, fast,
         {"restore_sigcontext", "do_signal", "get_signal"});

  define(Syscall::kPtraceSysemu, slow,
         {"ptrace_request", "ptrace_resume", "ptrace_stop", "ptrace_notify",
          "ptrace_check_attach", "__send_signal", "signal_wake_up_state",
          "schedule", "__schedule", "context_switch", "finish_task_switch",
          "try_to_wake_up"});
  define(Syscall::kPtraceGetregs, medium,
         {"ptrace_request", "arch_ptrace", "ptrace_getregs",
          "ptrace_check_attach"});
  define(Syscall::kPtraceSetregs, medium,
         {"ptrace_request", "arch_ptrace", "ptrace_setregs",
          "ptrace_check_attach"});

  define(Syscall::kUnshare, very_slow,
         {"ksys_unshare", "unshare_nsproxy_namespaces",
          "create_new_namespaces", "copy_pid_ns", "create_pid_namespace",
          "copy_net_ns", "setup_net", "copy_mnt_ns", "copy_utsname",
          "copy_ipcs", "create_user_ns", "switch_task_namespaces",
          "proc_alloc_inum"});
  define(Syscall::kSetns, slow,
         {"__do_sys_setns", "pidns_install", "mntns_install",
          "netns_install", "switch_task_namespaces"});
  define(Syscall::kPivotRoot, slow,
         {"__do_sys_pivot_root", "pivot_root", "mnt_set_mountpoint",
          "attach_recursive_mnt"});
  define(Syscall::kMount, very_slow,
         {"do_mount", "path_mount", "do_new_mount", "vfs_create_mount",
          "attach_recursive_mnt", "propagate_mnt", "security_capable"});
  define(Syscall::kUmount2, slow, {"do_umount", "dput", "path_put"});
  define(Syscall::kSeccompLoad, slow,
         {"do_seccomp", "prctl_set_seccomp", "seccomp_attach_filter",
          "security_capable"});
  define(Syscall::kPrctl, fast, {"security_capable", "cap_capable"});
  define(Syscall::kCgroupWrite, slow,
         {"cgroup_file_write", "kernfs_fop_read_iter", "cgroup_attach_task",
          "cgroup_migrate", "css_set_move_task", "cpu_cgroup_attach",
          "mem_cgroup_can_attach", "cpu_shares_write_u64",
          "memory_max_write", "pids_max_write"});
  define(Syscall::kClockGettime, DurationDist::lognormal(sim::nanos(60), 0.1),
         {"do_clock_gettime", "ktime_get", "read_tsc"});

  define(Syscall::kKvmCreateVm, very_slow,
         {"kvm_dev_ioctl", "kvm_vm_ioctl", "kvm_arch_hardware_enable",
          "anon_inode_getfd", "alloc_fd", "fd_install"});
  define(Syscall::kKvmCreateVcpu, very_slow,
         {"kvm_vm_ioctl", "kvm_vm_ioctl_create_vcpu", "kvm_arch_vcpu_create",
          "anon_inode_getfd", "alloc_fd", "fd_install"});
  define(Syscall::kKvmSetUserMemoryRegion, very_slow,
         {"kvm_vm_ioctl", "kvm_set_memory_region",
          "__kvm_set_memory_region", "kvm_mmu_load"});
  define(Syscall::kKvmRun, DurationDist::lognormal(sim::micros(1.8), 0.25),
         {"kvm_vcpu_ioctl", "kvm_arch_vcpu_ioctl_run", "vcpu_enter_guest",
          "vmx_vcpu_run", "vmx_prepare_switch_to_guest", "vmx_handle_exit",
          "kvm_guest_exit_irqoff", "kvm_load_guest_fpu", "kvm_put_guest_fpu",
          "kvm_io_bus_write", "kvm_io_bus_read", "handle_io",
          "kvm_mmu_page_fault", "handle_ept_violation", "direct_page_fault",
          "kvm_tdp_mmu_map", "record_steal_time", "kvm_on_user_return"});
  define(Syscall::kKvmIrqLine, medium,
         {"kvm_vm_ioctl", "kvm_set_msi", "kvm_irq_delivery_to_apic",
          "kvm_apic_set_irq", "kvm_vcpu_kick", "kvm_vcpu_wake_up",
          "ipi_send_single", "smp_call_function_single"});
  define(Syscall::kKvmIoeventfd, medium,
         {"kvm_vm_ioctl", "ioeventfd_write", "eventfd_signal", "irqfd_wakeup",
          "wake_up_interruptible_poll"});
  define(Syscall::kKvmGetRegs, medium, {"kvm_vcpu_ioctl"});
  define(Syscall::kKvmSetRegs, medium, {"kvm_vcpu_ioctl"});

  define(Syscall::kProcRead, medium,
         {"proc_reg_read", "proc_pid_status", "seq_read_iter",
          "kernfs_iop_lookup", "vfs_read"});
}

void HostKernel::define(Syscall sc, sim::DurationDist cost,
                        std::initializer_list<const char*> functions) {
  auto& spec = specs_[index_of(sc)];
  spec.cost = cost;
  spec.functions.clear();
  // Every syscall passes through the common entry/exit path.
  append_functions(sc,
                   {"entry_SYSCALL_64", "do_syscall_64",
                    "syscall_enter_from_user_mode",
                    "syscall_exit_to_user_mode", "exit_to_user_mode_prepare",
                    "audit_filter_syscall"});
  for (const char* name : functions) {
    spec.functions.push_back(FunctionHit{registry_.id_of(name), 1});
  }
}

void HostKernel::append_functions(Syscall sc,
                                  std::initializer_list<const char*> functions,
                                  std::uint32_t count) {
  auto& spec = specs_[index_of(sc)];
  for (const char* name : functions) {
    spec.functions.push_back(FunctionHit{registry_.id_of(name), count});
  }
}

sim::Nanos HostKernel::invoke(Syscall sc, sim::Rng& rng, std::uint64_t count) {
  if (count == 0) {
    return 0;
  }
  const std::size_t i = index_of(sc);
  const auto& spec = specs_[i];
  if (ftrace_.recording()) {
    TraceSlots& cache = trace_slots_[i];
    if (cache.generation != ftrace_.generation()) {
      cache.slots.clear();
      for (const auto& hit : spec.functions) {
        if (hit.count > 0) {  // record() never creates zero-count entries
          cache.slots.emplace_back(ftrace_.slot(hit.fn), hit.count);
        }
      }
      cache.generation = ftrace_.generation();
    }
    for (const auto& [slot, mult] : cache.slots) {
      *slot += mult * count;
    }
  }
  // One stochastic sample scaled by count: keeps long batches cheap while
  // preserving run-to-run variance of the batch total.
  return spec.cost.sample(rng) * static_cast<sim::Nanos>(count);
}

sim::Nanos HostKernel::invoke_on(sim::Clock& clock, Syscall sc, sim::Rng& rng,
                                 std::uint64_t count) {
  const sim::Nanos cost = invoke(sc, rng, count);
  clock.advance(cost);
  return cost;
}

void HostKernel::record_background(const std::vector<FunctionHit>& hits,
                                   std::uint64_t repeat) {
  if (!ftrace_.recording()) {
    return;
  }
  for (const auto& hit : hits) {
    ftrace_.record(hit.fn, static_cast<std::uint64_t>(hit.count) * repeat);
  }
}

const SyscallSpec& HostKernel::spec(Syscall sc) const {
  return specs_[index_of(sc)];
}

sim::Nanos HostKernel::mean_cost(Syscall sc) const {
  return specs_[index_of(sc)].cost.mean();
}

}  // namespace hostk
