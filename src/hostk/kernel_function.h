// Catalog of host Linux kernel functions, the unit of the HAP metric.
//
// The paper measures the Horizontal Attack Profile by ftrace-ing which host
// kernel functions each isolation platform causes to be invoked. Our host
// kernel model carries a registry of real kernel function names grouped by
// subsystem; syscall specs (see host_kernel.h) expand into these functions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hostk {

/// Kernel subsystems, used both for catalog organization and for the
/// per-subsystem breakdowns in the HAP report.
enum class Subsystem {
  kSched,
  kMm,
  kVfs,
  kExt4,
  kBlock,
  kNet,
  kKvm,
  kNamespace,
  kCgroup,
  kSecurity,
  kIpc,
  kTime,
  kIrq,
  kSignal,
  kVsock,
  kMisc,
};

std::string_view subsystem_name(Subsystem s);

/// Stable integer handle for a kernel function within a registry.
using FunctionId = std::uint32_t;

struct KernelFunction {
  FunctionId id;
  std::string name;
  Subsystem subsystem;
};

/// Immutable-after-construction registry of the modeled host kernel's
/// function symbols. A single registry is shared by a HostKernel and all
/// platforms running on it so that FunctionIds are comparable.
class KernelFunctionRegistry {
 public:
  /// Builds the full catalog (several hundred functions across subsystems).
  KernelFunctionRegistry();

  /// Look up a function id by exact symbol name. Throws std::out_of_range
  /// for unknown symbols — catching typos in syscall specs early.
  FunctionId id_of(std::string_view name) const;

  bool contains(std::string_view name) const;

  const KernelFunction& function(FunctionId id) const;

  std::vector<FunctionId> functions_in(Subsystem s) const;

  std::size_t size() const { return functions_.size(); }

 private:
  void register_function(std::string name, Subsystem s);

  std::vector<KernelFunction> functions_;
  std::unordered_map<std::string, FunctionId> by_name_;
};

}  // namespace hostk
