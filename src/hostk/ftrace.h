// ftrace-style recorder of host kernel function invocations.
//
// Models the paper's `trace-cmd` based methodology: while a workload runs,
// every host kernel function the platform causes to execute is counted.
// The HAP study (src/hap) aggregates these counts.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hostk/kernel_function.h"

namespace hostk {

/// Per-function invocation counts captured during a tracing window.
class Ftrace {
 public:
  explicit Ftrace(const KernelFunctionRegistry& registry) : registry_(&registry) {}

  /// Begin recording. Clears any previous capture.
  void start();

  /// Stop recording; counts stay available until the next start().
  void stop();

  bool recording() const { return recording_; }

  /// Record `count` invocations of `fn`. No-op unless recording.
  void record(FunctionId fn, std::uint64_t count = 1);

  /// Tracing-window generation; bumped by start(). Lets callers cache
  /// slot() pointers and invalidate them when the window restarts.
  std::uint64_t generation() const { return generation_; }

  /// Stable pointer to `fn`'s counter within the current window, creating
  /// it at zero (first-touch, exactly like record()'s first hit — the map's
  /// insertion order, and so its iteration order, is unchanged). Valid
  /// until the next start(). Only call while recording.
  std::uint64_t* slot(FunctionId fn) { return &counts_[fn]; }

  /// Number of distinct functions hit — the original HAP breadth metric.
  std::size_t distinct_functions() const { return counts_.size(); }

  /// Total invocations across all functions.
  std::uint64_t total_invocations() const;

  /// Invocations of one function (0 when never hit).
  std::uint64_t count_of(FunctionId fn) const;

  const std::unordered_map<FunctionId, std::uint64_t>& counts() const {
    return counts_;
  }

  /// Distinct functions per subsystem, for the HAP breakdown table.
  std::unordered_map<Subsystem, std::size_t> distinct_by_subsystem() const;

  const KernelFunctionRegistry& registry() const { return *registry_; }

 private:
  const KernelFunctionRegistry* registry_;
  std::unordered_map<FunctionId, std::uint64_t> counts_;
  std::uint64_t generation_ = 0;
  bool recording_ = false;
};

}  // namespace hostk
