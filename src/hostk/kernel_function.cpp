#include "hostk/kernel_function.h"

#include <stdexcept>

namespace hostk {

std::string_view subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::kSched:
      return "sched";
    case Subsystem::kMm:
      return "mm";
    case Subsystem::kVfs:
      return "vfs";
    case Subsystem::kExt4:
      return "ext4";
    case Subsystem::kBlock:
      return "block";
    case Subsystem::kNet:
      return "net";
    case Subsystem::kKvm:
      return "kvm";
    case Subsystem::kNamespace:
      return "namespace";
    case Subsystem::kCgroup:
      return "cgroup";
    case Subsystem::kSecurity:
      return "security";
    case Subsystem::kIpc:
      return "ipc";
    case Subsystem::kTime:
      return "time";
    case Subsystem::kIrq:
      return "irq";
    case Subsystem::kSignal:
      return "signal";
    case Subsystem::kVsock:
      return "vsock";
    case Subsystem::kMisc:
      return "misc";
  }
  return "unknown";
}

void KernelFunctionRegistry::register_function(std::string name, Subsystem s) {
  const FunctionId id = static_cast<FunctionId>(functions_.size());
  by_name_.emplace(name, id);
  functions_.push_back(KernelFunction{id, std::move(name), s});
}

KernelFunctionRegistry::KernelFunctionRegistry() {
  const auto reg = [this](Subsystem s, std::initializer_list<const char*> names) {
    for (const char* n : names) {
      register_function(n, s);
    }
  };

  reg(Subsystem::kSched,
      {"schedule", "__schedule", "pick_next_task_fair", "enqueue_task_fair",
       "dequeue_task_fair", "update_curr", "try_to_wake_up", "wake_up_process",
       "ttwu_do_activate", "select_task_rq_fair", "load_balance",
       "scheduler_tick", "sched_clock", "finish_task_switch",
       "context_switch", "prepare_task_switch", "do_sched_yield",
       "yield_to", "update_rq_clock", "put_prev_task_fair",
       "check_preempt_wakeup", "resched_curr", "idle_cpu",
       "update_load_avg", "set_next_entity", "place_entity",
       "task_tick_fair", "hrtick_update", "cpuacct_charge",
       "migrate_task_rq_fair"});

  reg(Subsystem::kMm,
      {"do_mmap", "mmap_region", "vm_mmap_pgoff", "__do_munmap",
       "do_brk_flags", "handle_mm_fault", "__handle_mm_fault",
       "do_anonymous_page", "do_fault", "filemap_fault", "do_wp_page",
       "alloc_pages_vma", "__alloc_pages", "get_page_from_freelist",
       "free_unref_page", "lru_cache_add", "page_add_new_anon_rmap",
       "copy_page_range", "zap_page_range", "unmap_region", "vma_merge",
       "vma_link", "find_vma", "expand_downwards", "mprotect_fixup",
       "change_protection", "madvise_dontneed_free", "ksm_madvise",
       "ksm_scan_thread", "try_to_merge_one_page", "stable_tree_search",
       "follow_page", "get_user_pages_fast", "pin_user_pages",
       "mm_populate", "__mm_populate", "populate_vma_page_range",
       "do_huge_pmd_anonymous_page", "hugetlb_fault", "alloc_huge_page",
       "shmem_fault", "shmem_getpage_gfp", "wp_page_copy",
       "page_remove_rmap", "tlb_flush_mmu", "flush_tlb_mm_range",
       "mem_cgroup_charge", "uncharge_page"});

  reg(Subsystem::kVfs,
      {"ksys_read", "ksys_write", "vfs_read", "vfs_write", "vfs_readv",
       "vfs_writev", "new_sync_read", "new_sync_write", "rw_verify_area",
       "do_sys_openat2", "do_filp_open", "path_openat", "link_path_walk",
       "lookup_fast", "walk_component", "step_into", "dput", "path_put",
       "do_dentry_open", "vfs_open", "filp_close", "fput", "____fput",
       "generic_file_read_iter", "generic_file_write_iter",
       "filemap_read", "generic_perform_write", "file_update_time",
       "vfs_fsync_range", "vfs_fallocate", "do_sys_ftruncate",
       "vfs_statx", "vfs_getattr", "iterate_dir", "dcache_readdir",
       "do_pipe2", "pipe_read", "pipe_write", "anon_inode_getfd",
       "do_dup2", "do_fcntl", "eventfd_write", "eventfd_read",
       "ep_poll", "ep_insert", "ep_send_events", "do_epoll_wait",
       "do_epoll_ctl", "io_submit_one", "aio_read", "aio_write",
       "do_io_getevents", "fsnotify", "__fsnotify_parent",
       "generic_file_llseek", "touch_atime", "sb_start_write",
       "mnt_want_write", "lookup_open", "open_last_lookups",
       "may_open", "complete_walk", "terminate_walk", "getname_flags",
       "putname", "alloc_fd", "fd_install", "close_fd", "iov_iter_init",
       "copy_page_to_iter", "copy_page_from_iter", "balance_dirty_pages"});

  reg(Subsystem::kExt4,
      {"ext4_file_read_iter", "ext4_file_write_iter", "ext4_map_blocks",
       "ext4_ext_map_blocks", "ext4_da_write_begin", "ext4_da_write_end",
       "ext4_writepages", "ext4_readpage", "ext4_mpage_readpages",
       "ext4_sync_file", "ext4_fallocate", "ext4_getattr",
       "ext4_file_open", "ext4_release_file", "ext4_dirty_inode",
       "ext4_journal_start_sb", "jbd2_journal_commit_transaction",
       "ext4_es_lookup_extent", "ext4_block_write_begin",
       "ext4_direct_IO", "iomap_dio_rw", "iomap_dio_bio_end_io"});

  reg(Subsystem::kBlock,
      {"submit_bio", "submit_bio_noacct", "blk_mq_submit_bio",
       "blk_mq_get_new_requests", "blk_mq_run_hw_queue",
       "blk_mq_dispatch_rq_list", "blk_mq_end_request",
       "blk_mq_complete_request", "blk_account_io_start",
       "blk_account_io_done", "bio_alloc_bioset", "bio_endio",
       "nvme_queue_rq", "nvme_complete_rq", "nvme_pci_complete_rq",
       "nvme_irq", "nvme_process_cq", "nvme_setup_cmd",
       "blk_finish_plug", "blk_start_plug", "blkdev_read_iter",
       "blkdev_write_iter", "blkdev_direct_IO", "loop_queue_work",
       "lo_rw_aio", "loop_handle_cmd", "wbt_wait", "rq_qos_throttle"});

  reg(Subsystem::kNet,
      {"sock_sendmsg", "sock_recvmsg", "__sys_sendto", "__sys_recvfrom",
       "____sys_sendmsg", "____sys_recvmsg", "tcp_sendmsg",
       "tcp_sendmsg_locked", "tcp_recvmsg", "tcp_write_xmit",
       "tcp_push", "tcp_rcv_established", "tcp_ack", "tcp_data_queue",
       "tcp_v4_rcv", "tcp_v4_do_rcv", "tcp_transmit_skb",
       "__tcp_transmit_skb", "ip_queue_xmit", "ip_local_out",
       "ip_output", "ip_finish_output2", "ip_rcv", "ip_local_deliver",
       "__netif_receive_skb", "netif_receive_skb", "napi_gro_receive",
       "dev_queue_xmit", "__dev_queue_xmit", "dev_hard_start_xmit",
       "sch_direct_xmit", "pfifo_fast_dequeue", "net_rx_action",
       "__napi_poll", "process_backlog", "skb_copy_datagram_iter",
       "skb_release_data", "kfree_skb", "alloc_skb", "__alloc_skb",
       "sk_stream_alloc_skb", "tcp_v4_connect", "tcp_v4_syn_recv_sock",
       "inet_csk_accept", "__sys_accept4", "__sys_connect",
       "__sys_socket", "sock_alloc_file", "inet_bind", "inet_listen",
       "sock_setsockopt", "tcp_setsockopt", "br_handle_frame",
       "br_forward", "br_nf_pre_routing", "veth_xmit",
       "tun_get_user", "tun_sendmsg", "tun_recvmsg", "tun_net_xmit",
       "tap_do_read", "vhost_net_tx", "vhost_net_rx", "vhost_poll_queue",
       "nf_hook_slow", "nf_conntrack_in", "ipt_do_table",
       "netif_rx_internal", "enqueue_to_backlog", "dst_release",
       "fib_table_lookup", "ip_route_output_key_hash", "udp_sendmsg",
       "udp_recvmsg", "sock_wfree", "sock_def_readable",
       "tcp_clean_rtx_queue", "tcp_rate_skb_delivered"});

  reg(Subsystem::kKvm,
      {"kvm_vcpu_ioctl", "kvm_arch_vcpu_ioctl_run", "vcpu_enter_guest",
       "vmx_vcpu_run", "vmx_handle_exit", "kvm_emulate_hypercall",
       "handle_ept_violation", "kvm_mmu_page_fault", "direct_page_fault",
       "kvm_tdp_mmu_map", "kvm_set_memory_region",
       "__kvm_set_memory_region", "kvm_dev_ioctl", "kvm_vm_ioctl",
       "kvm_vm_ioctl_create_vcpu", "kvm_arch_vcpu_create",
       "kvm_vcpu_kick", "kvm_vcpu_wake_up", "kvm_vcpu_block",
       "kvm_arch_vcpu_runnable", "kvm_apic_set_irq",
       "kvm_irq_delivery_to_apic", "kvm_set_msi", "kvm_io_bus_write",
       "kvm_io_bus_read", "ioeventfd_write", "irqfd_wakeup",
       "kvm_lapic_expired_hv_timer", "handle_io", "handle_mmio",
       "complete_emulated_io", "kvm_mmu_load", "kvm_arch_hardware_enable",
       "vmx_prepare_switch_to_guest", "kvm_load_guest_fpu",
       "kvm_put_guest_fpu", "kvm_on_user_return", "kvm_steal_time_set",
       "record_steal_time", "kvm_guest_exit_irqoff"});

  reg(Subsystem::kNamespace,
      {"copy_namespaces", "create_new_namespaces", "unshare_nsproxy_namespaces",
       "ksys_unshare", "copy_pid_ns", "create_pid_namespace",
       "copy_net_ns", "setup_net", "copy_mnt_ns", "copy_utsname",
       "copy_ipcs", "create_user_ns", "switch_task_namespaces",
       "__do_sys_setns", "pidns_install", "mntns_install",
       "netns_install", "free_nsproxy", "put_pid_ns", "proc_alloc_inum",
       "pivot_root", "__do_sys_pivot_root", "do_mount", "path_mount",
       "do_new_mount", "vfs_create_mount", "attach_recursive_mnt",
       "do_umount", "propagate_mnt", "mnt_set_mountpoint"});

  reg(Subsystem::kCgroup,
      {"cgroup_mkdir", "cgroup_rmdir", "cgroup_attach_task",
       "cgroup_migrate", "cgroup_procs_write", "css_set_move_task",
       "cgroup_post_fork", "cgroup_can_fork", "cpu_cgroup_attach",
       "mem_cgroup_can_attach", "cpuset_can_attach", "cgroup_file_write",
       "cgroup_apply_control", "rebind_subsystems",
       "cpu_shares_write_u64", "memory_max_write", "pids_max_write",
       "blkcg_conf_open_bdev", "cgroup_freeze", "throttle_cfs_rq"});

  reg(Subsystem::kSecurity,
      {"security_file_permission", "security_vm_enough_memory_mm",
       "security_mmap_file", "security_socket_sendmsg",
       "security_socket_recvmsg", "security_socket_create",
       "security_task_alloc", "security_bprm_check", "apparmor_file_permission",
       "apparmor_socket_sendmsg", "seccomp_filter", "__seccomp_filter",
       "seccomp_run_filters", "bpf_prog_run_pin_on_cpu", "do_seccomp",
       "prctl_set_seccomp", "seccomp_attach_filter", "populate_seccomp_data",
       "security_capable", "cap_capable", "audit_log_start",
       "audit_filter_syscall"});

  reg(Subsystem::kIpc,
      {"do_futex", "futex_wait", "futex_wake", "futex_wait_queue_me",
       "futex_requeue", "get_futex_key", "hash_futex",
       "wake_up_q", "do_signalfd4", "signalfd_read", "mq_timedsend",
       "mq_timedreceive", "do_shmat", "shm_open", "do_msgsnd",
       "do_msgrcv"});

  reg(Subsystem::kTime,
      {"hrtimer_start_range_ns", "hrtimer_interrupt", "hrtimer_wakeup",
       "__hrtimer_run_queues", "do_nanosleep", "hrtimer_nanosleep",
       "ktime_get", "ktime_get_update_offsets_now", "clock_was_set",
       "do_clock_gettime", "posix_ktime_get_ts", "timekeeping_update",
       "tick_sched_timer", "tick_sched_handle", "update_wall_time",
       "read_tsc", "kvm_clock_get_cycles", "pvclock_clocksource_read",
       "alarm_timer_arm", "timerfd_read", "timerfd_tmrproc"});

  reg(Subsystem::kIrq,
      {"handle_irq_event", "handle_edge_irq", "__handle_domain_irq",
       "do_IRQ", "irq_exit_rcu", "__do_softirq", "run_ksoftirqd",
       "tasklet_action_common", "raise_softirq", "ipi_send_single",
       "smp_call_function_single", "generic_smp_call_function_single_interrupt",
       "apic_timer_interrupt", "reschedule_interrupt", "msi_domain_activate",
       "eventfd_signal", "wake_up_interruptible_poll"});

  reg(Subsystem::kSignal,
      {"do_signal", "get_signal", "send_signal", "__send_signal",
       "complete_signal", "signal_wake_up_state", "do_send_sig_info",
       "kill_pid_info", "group_send_sig_info", "sigprocmask",
       "restore_sigcontext", "setup_rt_frame", "do_sigaction",
       "ptrace_stop", "ptrace_notify", "ptrace_request",
       "ptrace_resume", "ptrace_setregs", "ptrace_getregs",
       "arch_ptrace", "ptrace_attach", "ptrace_check_attach"});

  reg(Subsystem::kVsock,
      {"vsock_connect", "vsock_stream_sendmsg", "vsock_stream_recvmsg",
       "virtio_transport_send_pkt", "virtio_transport_recv_pkt",
       "virtio_transport_do_send_pkt", "vhost_vsock_handle_tx_kick",
       "vhost_vsock_handle_rx_kick", "vsock_queue_rcv_skb",
       "vhost_transport_do_send_pkt", "vsock_poll", "vsock_accept"});

  reg(Subsystem::kMisc,
      {"do_syscall_64", "syscall_enter_from_user_mode",
       "syscall_exit_to_user_mode", "entry_SYSCALL_64",
       "exit_to_user_mode_prepare", "copy_process", "kernel_clone",
       "wake_up_new_task", "do_exit", "do_group_exit", "release_task",
       "begin_new_exec", "load_elf_binary", "do_execveat_common",
       "bprm_execve", "setup_arg_pages", "do_task_dead", "mm_release",
       "exit_mm", "pid_vnr", "find_task_by_vpid", "do_wait",
       "kernel_waitid", "proc_reg_read", "proc_pid_status",
       "seq_read_iter", "kernfs_fop_read_iter", "kernfs_iop_lookup",
       "get_random_bytes", "urandom_read", "vdso_fault",
       "perf_event_mmap", "acct_collect", "taskstats_exit"});
}

FunctionId KernelFunctionRegistry::id_of(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    throw std::out_of_range("KernelFunctionRegistry: unknown symbol: " +
                            std::string(name));
  }
  return it->second;
}

bool KernelFunctionRegistry::contains(std::string_view name) const {
  return by_name_.find(std::string(name)) != by_name_.end();
}

const KernelFunction& KernelFunctionRegistry::function(FunctionId id) const {
  return functions_.at(id);
}

std::vector<FunctionId> KernelFunctionRegistry::functions_in(Subsystem s) const {
  std::vector<FunctionId> out;
  for (const auto& f : functions_) {
    if (f.subsystem == s) {
      out.push_back(f.id);
    }
  }
  return out;
}

}  // namespace hostk
