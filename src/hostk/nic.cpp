#include "hostk/nic.h"

namespace hostk {

Nic::Nic(NicSpec spec) : spec_(spec) {}

std::uint64_t Nic::packets_for(std::uint64_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  return (bytes + spec_.mtu - 1) / spec_.mtu;
}

sim::Nanos Nic::transfer_time(std::uint64_t bytes, sim::Rng& rng) const {
  const double serialization_s =
      static_cast<double>(bytes) * 8.0 / spec_.line_rate_bps;
  const std::uint64_t pkts = packets_for(bytes);
  const sim::Nanos jitter =
      static_cast<sim::Nanos>(rng.uniform(0.0, 50.0));
  return sim::seconds(serialization_s) +
         static_cast<sim::Nanos>(pkts) * spec_.per_packet_cost + jitter;
}

sim::Nanos Nic::latency(sim::Rng& rng) const {
  return spec_.base_latency + static_cast<sim::Nanos>(rng.uniform(0.0, 2000.0));
}

}  // namespace hostk
