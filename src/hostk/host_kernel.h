// The modeled host Linux kernel.
//
// All isolation platforms ultimately execute on one HostKernel instance.
// Invoking a syscall (a) charges its modeled CPU cost and (b) records the
// kernel functions its handler executes into the shared Ftrace — the raw
// material of the paper's HAP study (Section 4).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hostk/ftrace.h"
#include "hostk/kernel_function.h"
#include "hostk/syscall.h"
#include "sim/clock.h"
#include "sim/distribution.h"
#include "sim/rng.h"

namespace hostk {

/// One kernel function hit by a syscall handler, with its per-invocation
/// multiplicity (e.g. a read hits fsnotify twice).
struct FunctionHit {
  FunctionId fn;
  std::uint32_t count;
};

/// Cost + trace expansion of one syscall.
struct SyscallSpec {
  sim::DurationDist cost = sim::DurationDist::constant(0);
  std::vector<FunctionHit> functions;
};

/// Host kernel model: syscall dispatcher + ftrace instrumentation.
///
/// Thread-unsafe by design: the simulator is single-threaded and models
/// concurrency analytically.
class HostKernel {
 public:
  HostKernel();

  const KernelFunctionRegistry& registry() const { return registry_; }
  Ftrace& ftrace() { return ftrace_; }
  const Ftrace& ftrace() const { return ftrace_; }

  /// Execute `count` back-to-back invocations of `sc`: records the kernel
  /// functions into the ftrace and returns the total modeled CPU cost.
  /// The caller charges the cost to whichever clock represents the caller's
  /// execution context.
  sim::Nanos invoke(Syscall sc, sim::Rng& rng, std::uint64_t count = 1);

  /// Convenience: invoke and charge `clock` in one step.
  sim::Nanos invoke_on(sim::Clock& clock, Syscall sc, sim::Rng& rng,
                       std::uint64_t count = 1);

  /// Record extra kernel functions that run outside any syscall (softirq
  /// network receive path, kthreads like ksmd). Cost-free; trace-only.
  void record_background(const std::vector<FunctionHit>& hits,
                         std::uint64_t repeat = 1);

  /// The spec backing a syscall (exposed for tests and the HAP model).
  const SyscallSpec& spec(Syscall sc) const;

  /// Mean cost of a syscall without dispatching it (analytic planning).
  sim::Nanos mean_cost(Syscall sc) const;

 private:
  void define(Syscall sc, sim::DurationDist cost,
              std::initializer_list<const char*> functions);
  void append_functions(Syscall sc, std::initializer_list<const char*> functions,
                        std::uint32_t count = 1);

  /// Per-syscall cache of (counter slot, multiplicity) pairs into the
  /// ftrace's current window, rebuilt lazily when the window generation
  /// changes. Unordered-map node pointers are stable, and the rebuild
  /// touches the window's counters in the same first-touch order record()
  /// would, so counts_ iteration order — and every float sum derived from
  /// it — is unchanged; dispatch just skips the per-function hash lookups.
  struct TraceSlots {
    std::uint64_t generation = 0;
    std::vector<std::pair<std::uint64_t*, std::uint64_t>> slots;
  };

  KernelFunctionRegistry registry_;
  Ftrace ftrace_;
  std::array<SyscallSpec, kSyscallCount> specs_;
  std::array<TraceSlots, kSyscallCount> trace_slots_;
};

}  // namespace hostk
