#include "hostk/page_cache.h"

namespace hostk {

PageCache::PageCache(std::uint64_t capacity_bytes)
    : capacity_pages_(capacity_bytes / kPageSize) {}

bool PageCache::access(PageKey key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void PageCache::insert(PageKey key) {
  if (capacity_pages_ == 0) {
    return;
  }
  const auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  map_[key] = lru_.begin();
  evict_if_needed();
}

std::uint64_t PageCache::access_range(std::uint64_t file, std::uint64_t offset,
                                      std::uint64_t len) {
  if (len == 0) {
    return 0;
  }
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  std::uint64_t miss_count = 0;
  for (std::uint64_t p = first; p <= last; ++p) {
    const PageKey key{file, p};
    if (!access(key)) {
      ++miss_count;
      insert(key);
    }
  }
  return miss_count;
}

bool PageCache::resident(std::uint64_t file, std::uint64_t offset,
                         std::uint64_t len) const {
  if (len == 0) {
    return true;
  }
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    if (map_.find(PageKey{file, p}) == map_.end()) {
      return false;
    }
  }
  return true;
}

void PageCache::drop_caches() {
  lru_.clear();
  map_.clear();
}

void PageCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

void PageCache::evict_if_needed() {
  while (map_.size() > capacity_pages_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace hostk
