#include "hostk/page_cache.h"

namespace hostk {

PageCache::PageCache(std::uint64_t capacity_bytes)
    : capacity_pages_(capacity_bytes / kPageSize) {}

std::uint64_t PageCache::hash(PageKey key) {
  std::uint64_t x = key.file * 0x9E3779B97F4A7C15ull + key.page;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint32_t PageCache::find(PageKey key, std::uint64_t* slot) const {
  if (table_.empty()) {
    *slot = 0;
    return kNil;
  }
  std::uint64_t i = hash(key) & table_mask_;
  while (true) {
    const std::uint32_t n = table_[i];
    if (n == kNil) {
      *slot = i;
      return kNil;
    }
    if (nodes_[n].key == key) {
      *slot = i;
      return n;
    }
    i = (i + 1) & table_mask_;
  }
}

void PageCache::link_front(std::uint32_t n) {
  nodes_[n].prev = kNil;
  nodes_[n].next = head_;
  if (head_ != kNil) {
    nodes_[head_].prev = n;
  }
  head_ = n;
  if (tail_ == kNil) {
    tail_ = n;
  }
}

void PageCache::unlink(std::uint32_t n) {
  const std::uint32_t p = nodes_[n].prev;
  const std::uint32_t q = nodes_[n].next;
  if (p != kNil) {
    nodes_[p].next = q;
  } else {
    head_ = q;
  }
  if (q != kNil) {
    nodes_[q].prev = p;
  } else {
    tail_ = p;
  }
}

void PageCache::promote(std::uint32_t n) {
  if (head_ == n) {
    return;
  }
  unlink(n);
  link_front(n);
}

void PageCache::erase_slot_of(PageKey key) {
  std::uint64_t i = 0;
  const std::uint32_t n = find(key, &i);
  if (n == kNil) {
    return;
  }
  // Backward-shift deletion keeps probe chains intact without tombstones.
  while (true) {
    table_[i] = kNil;
    std::uint64_t j = i;
    while (true) {
      j = (j + 1) & table_mask_;
      const std::uint32_t m = table_[j];
      if (m == kNil) {
        return;
      }
      const std::uint64_t home = hash(nodes_[m].key) & table_mask_;
      // Move m into the hole unless its home slot lies cyclically in (i, j].
      const bool stays = (j > i) ? (home > i && home <= j)
                                 : (home > i || home <= j);
      if (!stays) {
        table_[i] = m;
        i = j;
        break;
      }
    }
  }
}

void PageCache::grow_table() {
  const std::uint64_t new_size = table_.empty() ? 256 : table_.size() * 2;
  table_.assign(new_size, kNil);
  table_mask_ = new_size - 1;
  for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
    std::uint64_t i = hash(nodes_[n].key) & table_mask_;
    while (table_[i] != kNil) {
      i = (i + 1) & table_mask_;
    }
    table_[i] = n;
  }
}

void PageCache::maybe_grow() {
  if (table_.empty() || (size_ + 1) * 4 > table_.size() * 3) {
    grow_table();
  }
}

void PageCache::insert_new(PageKey key, std::uint64_t slot) {
  std::uint32_t n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
  }
  nodes_[n].key = key;
  table_[slot] = n;
  link_front(n);
  ++size_;
  if (size_ > capacity_pages_) {
    evict_lru();
  }
}

void PageCache::evict_lru() {
  const std::uint32_t t = tail_;
  erase_slot_of(nodes_[t].key);
  unlink(t);
  free_.push_back(t);
  --size_;
}

bool PageCache::access(PageKey key) {
  std::uint64_t slot = 0;
  const std::uint32_t n = find(key, &slot);
  if (n == kNil) {
    ++misses_;
    return false;
  }
  ++hits_;
  promote(n);
  return true;
}

void PageCache::insert(PageKey key) {
  if (capacity_pages_ == 0) {
    return;
  }
  maybe_grow();
  std::uint64_t slot = 0;
  const std::uint32_t n = find(key, &slot);
  if (n != kNil) {
    promote(n);
    return;
  }
  insert_new(key, slot);
}

std::uint64_t PageCache::access_range(std::uint64_t file, std::uint64_t offset,
                                      std::uint64_t len) {
  if (len == 0) {
    return 0;
  }
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  std::uint64_t miss_count = 0;
  for (std::uint64_t p = first; p <= last; ++p) {
    const PageKey key{file, p};
    if (capacity_pages_ != 0) {
      maybe_grow();  // before find(): growth would invalidate the slot
    }
    std::uint64_t slot = 0;
    const std::uint32_t n = find(key, &slot);
    if (n != kNil) {
      ++hits_;
      promote(n);
      continue;
    }
    ++misses_;
    ++miss_count;
    if (capacity_pages_ != 0) {
      insert_new(key, slot);
    }
  }
  return miss_count;
}

bool PageCache::resident(std::uint64_t file, std::uint64_t offset,
                         std::uint64_t len) const {
  if (len == 0) {
    return true;
  }
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    std::uint64_t slot = 0;
    if (find(PageKey{file, p}, &slot) == kNil) {
      return false;
    }
  }
  return true;
}

void PageCache::drop_caches() {
  table_.assign(table_.size(), kNil);
  nodes_.clear();
  free_.clear();
  head_ = kNil;
  tail_ = kNil;
  size_ = 0;
}

void PageCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace hostk
