#include "hostk/page_cache.h"

#include <algorithm>

namespace hostk {

PageCache::PageCache(std::uint64_t capacity_bytes)
    : capacity_pages_(capacity_bytes / kPageSize) {}

std::uint32_t PageCache::alloc_node() {
  if (!free_.empty()) {
    const std::uint32_t n = free_.back();
    free_.pop_back();
    return n;
  }
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  return n;
}

void PageCache::free_node(std::uint32_t n) { free_.push_back(n); }

void PageCache::link_front(std::uint32_t n) {
  nodes_[n].prev = kNil;
  nodes_[n].next = head_;
  if (head_ != kNil) {
    nodes_[head_].prev = n;
  }
  head_ = n;
  if (tail_ == kNil) {
    tail_ = n;
  }
}

void PageCache::link_before(std::uint32_t n, std::uint32_t next) {
  const std::uint32_t p = nodes_[next].prev;
  nodes_[n].prev = p;
  nodes_[n].next = next;
  nodes_[next].prev = n;
  if (p != kNil) {
    nodes_[p].next = n;
  } else {
    head_ = n;
  }
}

void PageCache::unlink(std::uint32_t n) {
  const std::uint32_t p = nodes_[n].prev;
  const std::uint32_t q = nodes_[n].next;
  if (p != kNil) {
    nodes_[p].next = q;
  } else {
    head_ = q;
  }
  if (q != kNil) {
    nodes_[q].prev = p;
  } else {
    tail_ = p;
  }
}

std::uint32_t PageCache::covering(std::uint64_t file, std::uint64_t page) const {
  auto it = index_.upper_bound({file, page});
  if (it == index_.begin()) {
    return kNil;
  }
  --it;
  if (it->first.first != file) {
    return kNil;
  }
  const std::uint32_t n = it->second;
  return nodes_[n].end > page ? n : kNil;
}

void PageCache::carve(std::uint32_t n, std::uint64_t lo, std::uint64_t hi) {
  // By value: alloc_node() below may grow nodes_ and invalidate references.
  const std::uint64_t file = nodes_[n].file;
  const std::uint64_t start = nodes_[n].start;
  const std::uint64_t end = nodes_[n].end;
  if (start < lo && end > hi) {
    // Middle removal: the higher (more recent) fragment takes a new node
    // just head-ward of n; n keeps the lower fragment and its index key.
    const std::uint32_t h = alloc_node();
    nodes_[h] = Node{file, hi, end, kNil, kNil};
    nodes_[n].end = lo;
    link_before(h, n);
    index_[{file, hi}] = h;
    return;
  }
  if (start < lo) {
    nodes_[n].end = lo;
    return;
  }
  if (end > hi) {
    index_.erase({file, start});
    nodes_[n].start = hi;
    index_[{file, hi}] = n;
    return;
  }
  index_.erase({file, start});
  unlink(n);
  free_node(n);
}

void PageCache::evict_lru() {
  const std::uint32_t t = tail_;
  Node& node = nodes_[t];
  index_.erase({node.file, node.start});
  ++node.start;
  --size_;
  if (node.start == node.end) {
    unlink(t);
    free_node(t);
  } else {
    index_[{node.file, node.start}] = t;
  }
}

void PageCache::try_merge_with_next(std::uint32_t n) {
  const std::uint32_t m = nodes_[n].next;
  if (m == kNil) {
    return;
  }
  if (nodes_[m].file != nodes_[n].file || nodes_[m].end != nodes_[n].start) {
    return;
  }
  index_.erase({nodes_[n].file, nodes_[n].start});
  index_.erase({nodes_[m].file, nodes_[m].start});
  nodes_[n].start = nodes_[m].start;
  index_[{nodes_[n].file, nodes_[n].start}] = n;
  unlink(m);
  free_node(m);
}

void PageCache::promote_page(std::uint32_t n, PageKey key) {
  if (n == head_ && nodes_[n].end == key.page + 1) {
    return;  // already the MRU page
  }
  carve(n, key.page, key.page + 1);
  link_single_front(key);
}

void PageCache::link_single_front(PageKey key) {
  const std::uint32_t s = alloc_node();
  nodes_[s] = Node{key.file, key.page, key.page + 1, kNil, kNil};
  link_front(s);
  index_[{key.file, key.page}] = s;
  try_merge_with_next(s);
}

bool PageCache::access(PageKey key) {
  const std::uint32_t n = covering(key.file, key.page);
  if (n == kNil) {
    ++misses_;
    return false;
  }
  ++hits_;
  promote_page(n, key);
  return true;
}

void PageCache::insert(PageKey key) {
  if (capacity_pages_ == 0) {
    return;
  }
  const std::uint32_t n = covering(key.file, key.page);
  if (n != kNil) {
    promote_page(n, key);
    return;
  }
  link_single_front(key);
  ++size_;
  while (size_ > capacity_pages_) {
    evict_lru();
  }
}

std::uint64_t PageCache::access_range(std::uint64_t file, std::uint64_t offset,
                                      std::uint64_t len) {
  if (len == 0) {
    return 0;
  }
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  if (capacity_pages_ == 0) {
    // Caching disabled: nothing is ever resident, every page misses.
    const std::uint64_t n = last - first + 1;
    misses_ += n;
    return n;
  }
  std::uint64_t miss_count = 0;
  // The forming extent accumulates [first, cur) at the head as the walk
  // transfers hit runs and inserts miss runs — exactly the state a per-page
  // LRU reaches after promoting/inserting each page in ascending order.
  const std::uint32_t forming = alloc_node();
  nodes_[forming] = Node{file, first, first, kNil, kNil};
  link_front(forming);
  bool indexed = false;  // entered into index_ once non-empty
  std::uint64_t cur = first;
  while (cur <= last) {
    const std::uint32_t n = covering(file, cur);
    std::uint64_t seg_end;
    if (n != kNil) {
      seg_end = std::min(nodes_[n].end - 1, last);
      hits_ += seg_end - cur + 1;
      carve(n, cur, seg_end + 1);
    } else {
      seg_end = last;
      const auto it = index_.upper_bound({file, cur});
      if (it != index_.end() && it->first.first == file &&
          it->first.second <= last) {
        seg_end = it->first.second - 1;
      }
      const std::uint64_t n_miss = seg_end - cur + 1;
      misses_ += n_miss;
      miss_count += n_miss;
      size_ += n_miss;
    }
    nodes_[forming].end = seg_end + 1;
    if (!indexed) {
      index_[{file, nodes_[forming].start}] = forming;
      indexed = true;
    }
    cur = seg_end + 1;
    // Evicting after the whole run (not per page) removes the same LRU
    // pages in the same order; the forming extent is never emptied because
    // eviction stops at capacity >= 1 and it sits at the head.
    while (size_ > capacity_pages_) {
      evict_lru();
    }
  }
  try_merge_with_next(forming);
  return miss_count;
}

bool PageCache::resident(std::uint64_t file, std::uint64_t offset,
                         std::uint64_t len) const {
  if (len == 0) {
    return true;
  }
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  std::uint64_t cur = first;
  while (cur <= last) {
    const std::uint32_t n = covering(file, cur);
    if (n == kNil) {
      return false;
    }
    cur = nodes_[n].end;
  }
  return true;
}

void PageCache::drop_caches() {
  index_.clear();
  nodes_.clear();
  free_.clear();
  head_ = kNil;
  tail_ = kNil;
  size_ = 0;
}

void PageCache::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace hostk
