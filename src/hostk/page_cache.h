// Host buffer (page) cache model.
//
// Central to the paper's I/O methodology: guests that bypass their own cache
// with O_DIRECT can still be served from the *host* page cache when the flag
// is not propagated through a loop device — the pitfall Section 3.3 works
// around by dropping host caches before each run. We model the cache at
// 4 KiB page granularity with LRU eviction.
//
// The LRU is intrusive and index-based: nodes live in one contiguous vector
// linked by 32-bit prev/next indices, and the key index is an open-addressed
// linear-probing table of node indices — no per-page allocation, no
// std::list, no bucket chasing. access_range() is extent-aware: it walks the
// page extent in one pass with a single find-or-insert probe per page
// (instead of a find in access() followed by a second find in insert()).
// Hit/miss accounting and eviction order are exactly those of a per-page
// LRU, so simulation reports are byte-identical to the naive model.
#pragma once

#include <cstdint>
#include <vector>

namespace hostk {

/// Identifies a cached page: (file id, page index within the file).
struct PageKey {
  std::uint64_t file;
  std::uint64_t page;
  bool operator==(const PageKey& other) const {
    return file == other.file && page == other.page;
  }
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const {
    return std::hash<std::uint64_t>()(k.file * 0x9E3779B97F4A7C15ull + k.page);
  }
};

/// LRU page cache with hit/miss accounting.
class PageCache {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// `capacity_bytes` is rounded down to whole pages; zero disables caching.
  explicit PageCache(std::uint64_t capacity_bytes);

  /// Look up one page; promotes on hit. Returns true on hit.
  bool access(PageKey key);

  /// Insert (or refresh) a page, evicting LRU pages as needed.
  void insert(PageKey key);

  /// Access a byte range: returns the number of page *misses*; all touched
  /// pages are inserted (read-ahead/readback behavior).
  std::uint64_t access_range(std::uint64_t file, std::uint64_t offset,
                             std::uint64_t len);

  /// Whether the range is fully resident (no promotion side effects).
  bool resident(std::uint64_t file, std::uint64_t offset, std::uint64_t len) const;

  /// `echo 3 > /proc/sys/vm/drop_caches`.
  void drop_caches();

  std::uint64_t capacity_pages() const { return capacity_pages_; }
  std::uint64_t size_pages() const { return size_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats();

 private:
  static constexpr std::uint32_t kNil = 0xFFFF'FFFFu;

  struct Node {
    PageKey key{0, 0};
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  static std::uint64_t hash(PageKey key);

  /// Linear-probe for `key`. Returns the node index (or kNil) and leaves
  /// `slot` at the matching table slot — or, on a miss, at the first empty
  /// slot, which is exactly where an insertion of `key` belongs.
  std::uint32_t find(PageKey key, std::uint64_t* slot) const;

  /// Allocate a node for `key`, place it at `slot`, link it as MRU, and
  /// evict from the tail if over capacity. `slot` must come from find().
  void insert_new(PageKey key, std::uint64_t slot);

  void link_front(std::uint32_t n);
  void unlink(std::uint32_t n);
  void promote(std::uint32_t n);
  void evict_lru();
  void erase_slot_of(PageKey key);
  void maybe_grow();
  void grow_table();

  std::uint64_t capacity_pages_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;   // recycled node indices
  std::vector<std::uint32_t> table_;  // open addressing: node index or kNil
  std::uint64_t table_mask_ = 0;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  std::uint64_t size_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hostk
