// Host buffer (page) cache model.
//
// Central to the paper's I/O methodology: guests that bypass their own cache
// with O_DIRECT can still be served from the *host* page cache when the flag
// is not propagated through a loop device — the pitfall Section 3.3 works
// around by dropping host caches before each run. We model the cache at
// 4 KiB page granularity with LRU eviction.
//
// The LRU is *extent-based*: nodes represent runs of consecutive pages of
// one file whose recencies are themselves consecutive, linked MRU->LRU by
// intrusive 32-bit indices, with an ordered (file, start-page) index for
// coverage lookups. A sequential access_range() — the dominant pattern
// (boot images, I/O phases) — costs O(log extents) per overlap boundary
// instead of one probe per 4 KiB page, so a 64 MiB image pull is a handful
// of map operations rather than 16k hash lookups. Hit/miss accounting and
// eviction order are exactly those of a per-page LRU (the invariant: within
// an extent, recency increases with page number, so the LRU page is always
// the tail extent's first page); tests/page_cache_model_test.cpp pins the
// equivalence against a naive per-page reference.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace hostk {

/// Identifies a cached page: (file id, page index within the file).
struct PageKey {
  std::uint64_t file;
  std::uint64_t page;
  bool operator==(const PageKey& other) const {
    return file == other.file && page == other.page;
  }
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const {
    return std::hash<std::uint64_t>()(k.file * 0x9E3779B97F4A7C15ull + k.page);
  }
};

/// LRU page cache with hit/miss accounting.
class PageCache {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// `capacity_bytes` is rounded down to whole pages; zero disables caching.
  explicit PageCache(std::uint64_t capacity_bytes);

  /// Look up one page; promotes on hit. Returns true on hit.
  bool access(PageKey key);

  /// Insert (or refresh) a page, evicting LRU pages as needed.
  void insert(PageKey key);

  /// Access a byte range: returns the number of page *misses*; all touched
  /// pages are inserted (read-ahead/readback behavior).
  std::uint64_t access_range(std::uint64_t file, std::uint64_t offset,
                             std::uint64_t len);

  /// Whether the range is fully resident (no promotion side effects).
  bool resident(std::uint64_t file, std::uint64_t offset, std::uint64_t len) const;

  /// `echo 3 > /proc/sys/vm/drop_caches`.
  void drop_caches();

  std::uint64_t capacity_pages() const { return capacity_pages_; }
  std::uint64_t size_pages() const { return size_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats();

  /// Extent count — an implementation health metric: sequential workloads
  /// should keep this near the number of distinct files touched.
  std::size_t extent_count() const { return index_.size(); }

 private:
  static constexpr std::uint32_t kNil = 0xFFFF'FFFFu;

  /// One cached extent: pages [start, end) of `file`. Within an extent,
  /// recency increases with page number (page `start` is its LRU end);
  /// extents are linked head_ (MRU) to tail_ (LRU).
  struct Node {
    std::uint64_t file = 0;
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint64_t pages() const { return end - start; }
  };

  using IndexKey = std::pair<std::uint64_t, std::uint64_t>;  // (file, start)

  std::uint32_t alloc_node();
  void free_node(std::uint32_t n);
  void link_front(std::uint32_t n);
  void link_before(std::uint32_t n, std::uint32_t next);
  void unlink(std::uint32_t n);

  /// Extent covering (file, page), or kNil.
  std::uint32_t covering(std::uint64_t file, std::uint64_t page) const;

  /// Remove pages [lo, hi) from extent n (which must cover them), keeping
  /// the remainder's list position and recency order. size_ is unchanged —
  /// callers move the pages elsewhere or adjust size_ themselves.
  void carve(std::uint32_t n, std::uint64_t lo, std::uint64_t hi);

  /// Evict the single LRU page (the tail extent's first page).
  void evict_lru();

  /// Make (file, page) — currently inside extent n — the MRU page, like a
  /// per-page LRU's promote. Shared by access() hits and insert() refresh.
  void promote_page(std::uint32_t n, PageKey key);

  /// Link a fresh single-page extent for `key` at the head and index it
  /// (merging with a page-adjacent neighbor when possible).
  void link_single_front(PageKey key);

  /// Merge `n` with its list successor when file- and page-adjacent (the
  /// successor holding the immediately-preceding, immediately-less-recent
  /// pages). Keeps sequential workloads at one extent per file.
  void try_merge_with_next(std::uint32_t n);

  std::uint64_t capacity_pages_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;        // recycled node indices
  std::map<IndexKey, std::uint32_t> index_;  // (file, start) -> node
  std::uint32_t head_ = kNil;  // most recently used extent
  std::uint32_t tail_ = kNil;  // least recently used extent
  std::uint64_t size_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hostk
