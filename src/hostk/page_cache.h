// Host buffer (page) cache model.
//
// Central to the paper's I/O methodology: guests that bypass their own cache
// with O_DIRECT can still be served from the *host* page cache when the flag
// is not propagated through a loop device — the pitfall Section 3.3 works
// around by dropping host caches before each run. We model the cache at
// 4 KiB page granularity with LRU eviction.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace hostk {

/// Identifies a cached page: (file id, page index within the file).
struct PageKey {
  std::uint64_t file;
  std::uint64_t page;
  bool operator==(const PageKey& other) const {
    return file == other.file && page == other.page;
  }
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const {
    return std::hash<std::uint64_t>()(k.file * 0x9E3779B97F4A7C15ull + k.page);
  }
};

/// LRU page cache with hit/miss accounting.
class PageCache {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// `capacity_bytes` is rounded down to whole pages; zero disables caching.
  explicit PageCache(std::uint64_t capacity_bytes);

  /// Look up one page; promotes on hit. Returns true on hit.
  bool access(PageKey key);

  /// Insert (or refresh) a page, evicting LRU pages as needed.
  void insert(PageKey key);

  /// Access a byte range: returns the number of page *misses*; all touched
  /// pages are inserted (read-ahead/readback behavior).
  std::uint64_t access_range(std::uint64_t file, std::uint64_t offset,
                             std::uint64_t len);

  /// Whether the range is fully resident (no promotion side effects).
  bool resident(std::uint64_t file, std::uint64_t offset, std::uint64_t len) const;

  /// `echo 3 > /proc/sys/vm/drop_caches`.
  void drop_caches();

  std::uint64_t capacity_pages() const { return capacity_pages_; }
  std::uint64_t size_pages() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats();

 private:
  void evict_if_needed();

  std::uint64_t capacity_pages_;
  std::list<PageKey> lru_;  // front = most recent
  std::unordered_map<PageKey, std::list<PageKey>::iterator, PageKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hostk
