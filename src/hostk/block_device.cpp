#include "hostk/block_device.h"

namespace hostk {

BlockDevice::BlockDevice(BlockDeviceSpec spec) : spec_(spec) {}

sim::Nanos BlockDevice::read_base(sim::Rng& rng) const {
  return sim::DurationDist::lognormal(spec_.read_base_latency,
                                      spec_.read_latency_sigma)
      .sample(rng);
}

sim::Nanos BlockDevice::write_base(sim::Rng& rng) const {
  return sim::DurationDist::lognormal(spec_.write_base_latency,
                                      spec_.write_latency_sigma)
      .sample(rng);
}

sim::Nanos BlockDevice::read_transfer(std::uint64_t bytes) const {
  return sim::seconds(static_cast<double>(bytes) / spec_.read_bw_bytes_per_sec);
}

sim::Nanos BlockDevice::write_transfer(std::uint64_t bytes) const {
  return sim::seconds(static_cast<double>(bytes) / spec_.write_bw_bytes_per_sec);
}

sim::Nanos BlockDevice::read(std::uint64_t bytes, sim::Rng& rng) const {
  bytes_read_ += bytes;
  return read_base(rng) + read_transfer(bytes);
}

sim::Nanos BlockDevice::write(std::uint64_t bytes, sim::Rng& rng) const {
  bytes_written_ += bytes;
  return write_base(rng) + write_transfer(bytes);
}

}  // namespace hostk
