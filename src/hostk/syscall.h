// Host system call vocabulary.
//
// Platforms interact with the modeled host kernel exclusively through these
// syscalls; each expands into a chain of kernel functions (host_kernel.h)
// with an associated CPU cost. KVM ioctl sub-commands are first-class
// entries because their kernel paths (and HAP contributions) differ wildly.
#pragma once

#include <string_view>

namespace hostk {

enum class Syscall {
  // File & I/O
  kRead,
  kWrite,
  kPread64,
  kPwrite64,
  kReadv,
  kWritev,
  kOpenat,
  kClose,
  kFstat,
  kStatx,
  kLseek,
  kFallocate,
  kFsync,
  kGetdents64,
  kIoSubmit,
  kIoGetevents,
  kEventfd2,
  kEpollWait,
  kEpollCtl,
  kPipe2,
  kDup3,
  kFcntl,
  kIoctlTun,
  kIoctlLoop,
  // Memory
  kMmap,
  kMunmap,
  kMprotect,
  kMadvise,
  kBrk,
  // Network
  kSocket,
  kBind,
  kListen,
  kAccept4,
  kConnect,
  kSendto,
  kRecvfrom,
  kSendmsg,
  kRecvmsg,
  kSetsockopt,
  // Vsock (kata-agent control channel)
  kVsockSend,
  kVsockRecv,
  // Process & threads
  kClone,
  kClone3,
  kExecve,
  kExitGroup,
  kWait4,
  kFutexWait,
  kFutexWake,
  kSchedYield,
  kNanosleep,
  kKill,
  kTgkill,
  kRtSigreturn,
  kPtraceSysemu,
  kPtraceGetregs,
  kPtraceSetregs,
  // Namespaces, mounts, cgroups, seccomp
  kUnshare,
  kSetns,
  kPivotRoot,
  kMount,
  kUmount2,
  kSeccompLoad,
  kPrctl,
  kCgroupWrite,
  // Time
  kClockGettime,
  // KVM ioctls
  kKvmCreateVm,
  kKvmCreateVcpu,
  kKvmSetUserMemoryRegion,
  kKvmRun,
  kKvmIrqLine,
  kKvmIoeventfd,
  kKvmGetRegs,
  kKvmSetRegs,
  // /proc and sysfs reads (HAP-relevant observability surface)
  kProcRead,

  kCount_,  // sentinel
};

constexpr std::size_t kSyscallCount = static_cast<std::size_t>(Syscall::kCount_);

std::string_view syscall_name(Syscall s);

}  // namespace hostk
