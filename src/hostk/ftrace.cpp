#include "hostk/ftrace.h"

namespace hostk {

void Ftrace::start() {
  counts_.clear();
  ++generation_;
  recording_ = true;
}

void Ftrace::stop() { recording_ = false; }

void Ftrace::record(FunctionId fn, std::uint64_t count) {
  if (!recording_ || count == 0) {
    return;
  }
  counts_[fn] += count;
}

std::uint64_t Ftrace::total_invocations() const {
  std::uint64_t total = 0;
  for (const auto& [fn, count] : counts_) {
    total += count;
  }
  return total;
}

std::uint64_t Ftrace::count_of(FunctionId fn) const {
  const auto it = counts_.find(fn);
  return it == counts_.end() ? 0 : it->second;
}

std::unordered_map<Subsystem, std::size_t> Ftrace::distinct_by_subsystem() const {
  std::unordered_map<Subsystem, std::size_t> out;
  for (const auto& [fn, count] : counts_) {
    ++out[registry_->function(fn).subsystem];
  }
  return out;
}

}  // namespace hostk
