// Kernel Samepage Merging (KSM) model.
//
// Section 3.2 of the paper discusses KSM as a density/performance technique
// for hypervisor guests that simultaneously weakens the isolation boundary
// (cross-VM side channels, Irazoqui et al.). This model deduplicates
// identical pages across registered VMs and reports density gains; the
// multitenant_density example uses it, and the HAP study counts the ksmd
// scan functions it triggers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mem {

/// Content hash of a guest page (the model never stores page bytes).
using PageDigest = std::uint64_t;

/// One registered VM's advised memory range.
struct KsmClient {
  std::uint64_t vm_id;
  std::vector<PageDigest> pages;
};

class Ksm {
 public:
  /// Register (MADV_MERGEABLE) a VM's pages.
  void advise(std::uint64_t vm_id, std::vector<PageDigest> pages);

  /// Remove a VM (teardown); its contribution to the stable tree is dropped.
  void remove(std::uint64_t vm_id);

  /// One pass of ksmd: builds the stable tree and merges duplicates.
  /// Returns the number of pages newly merged in this pass.
  std::uint64_t scan();

  /// Total pages advised across VMs.
  std::uint64_t advised_pages() const;

  /// Pages physically backing the advised set after merging.
  std::uint64_t backing_pages() const;

  /// advised / backing; 1.0 = no sharing.
  double density_gain() const;

  /// Fraction of advised pages that share backing with at least one other
  /// VM — pages observable through a KSM timing side channel.
  double shared_fraction() const;

 private:
  std::vector<KsmClient> clients_;
  std::unordered_map<PageDigest, std::uint64_t> stable_tree_;  // digest -> refs
  bool scanned_ = false;
};

}  // namespace mem
