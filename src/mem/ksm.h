// Kernel Samepage Merging (KSM) model.
//
// Section 3.2 of the paper discusses KSM as a density/performance technique
// for hypervisor guests that simultaneously weakens the isolation boundary
// (cross-VM side channels, Irazoqui et al.). This model deduplicates
// identical pages across registered VMs and reports density gains; the
// multitenant_density example uses it, and the HAP study counts the ksmd
// scan functions it triggers.
//
// The stable tree is an interval map over digest ranges with refcounts,
// updated *incrementally* by advise()/remove() in O(runs touched) — not
// rebuilt per scan. Fleet-scale callers advise run-length PageRun ranges
// (contiguous digests) so a multi-GiB guest costs a handful of interval
// operations instead of one tree node per page. scan() itself is O(1): it
// only flips the model between the "advised but not yet merged" and
// "merged" accounting views.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace mem {

/// Content hash of a guest page (the model never stores page bytes).
using PageDigest = std::uint64_t;

/// A run of `count` consecutive digests starting at `base_digest` — the
/// run-length representation of one contiguous guest memory region (zero
/// pages, image pages, private pages) that never materializes per-page.
struct PageRun {
  PageRun() = default;
  PageRun(PageDigest base, std::uint64_t n) : base_digest(base), count(n) {}

  PageDigest base_digest = 0;
  std::uint64_t count = 0;
};

class Ksm {
 public:
  /// What advising a run set would change, computed without mutating the
  /// tree (see probe_runs).
  struct ProbeDelta {
    /// Additional backing (distinct) pages the runs would create.
    std::uint64_t backing_delta = 0;
    /// Additional cross-VM shared pages the runs would create.
    std::uint64_t shared_delta = 0;
  };

  /// Register (MADV_MERGEABLE) a VM's pages, one digest per page.
  /// Consecutive digests are coalesced into runs internally.
  void advise(std::uint64_t vm_id, const std::vector<PageDigest>& pages);

  /// Read-only admission trial: the exact backing/shared-page delta that
  /// advise_runs(new_vm, runs) followed by scan() would cause, without
  /// touching the stable tree. Handles self-overlapping runs and the
  /// digest 2^64-1 decomposition exactly like advise_runs (differential
  /// test in tests/mem_test.cpp). The VM must not already be registered
  /// (advise_runs on a registered VM first drops its old runs, which a
  /// const probe cannot model).
  ProbeDelta probe_runs(const std::vector<PageRun>& runs) const;

  /// Register a VM's pages as digest runs (the fleet-scale fast path).
  void advise_runs(std::uint64_t vm_id, std::vector<PageRun> runs);

  /// Remove a VM (teardown); its contribution to the stable tree is dropped.
  void remove(std::uint64_t vm_id);

  /// One pass of ksmd: merges the advised duplicates. The stable tree is
  /// maintained incrementally, so this only switches the accounting view.
  /// Returns the number of pages newly merged in this pass.
  std::uint64_t scan();

  /// Unmerge storm (memory-pressure fault): every merged page re-expands
  /// to its own backing copy, as if the kernel broke COW on the whole
  /// stable tree at once. The tree itself is kept — the next scan()
  /// re-merges in one pass. Returns the number of pages re-expanded
  /// (backing_pages jumps by exactly this much).
  std::uint64_t unmerge() {
    if (!scanned_) {
      return 0;
    }
    scanned_ = false;
    return advised_ - distinct_;
  }

  /// Total pages advised across VMs.
  std::uint64_t advised_pages() const { return advised_; }

  /// Pages physically backing the advised set after merging.
  std::uint64_t backing_pages() const {
    return scanned_ ? distinct_ : advised_;
  }

  /// advised / backing; 1.0 = no sharing.
  double density_gain() const;

  /// Fraction of advised pages that share backing with at least one other
  /// VM — pages observable through a KSM timing side channel.
  double shared_fraction() const;

  /// Absolute count behind shared_fraction(): advised pages whose backing
  /// is shared with at least one other VM after the last scan.
  std::uint64_t shared_pages() const { return scanned_ ? shared_ : 0; }

  /// Interval count of the stable tree — an implementation health metric:
  /// bounded by the number of distinct run boundaries alive, not by churn.
  std::size_t stable_tree_intervals() const {
    return tree_.size() + (max_digest_refs_ > 0 ? 1 : 0);
  }

 private:
  /// One stable-tree interval [start, end) of digests with a uniform
  /// refcount; keyed by start in tree_. Intervals are disjoint.
  struct Interval {
    PageDigest end = 0;
    std::uint64_t refs = 0;
  };

  /// Add (+1) or drop (-1) one reference for every digest in [lo, hi),
  /// splitting intervals at the boundaries and updating the cached
  /// advised/backing/shared counters as refcounts cross 0<->1 and 1<->2.
  void add_range(PageDigest lo, PageDigest hi, bool add);

  /// Re-merge adjacent intervals around [lo, hi] whose refcounts ended up
  /// equal, so churning clients with heterogeneous run boundaries cannot
  /// fragment the tree without bound.
  void coalesce(PageDigest lo, PageDigest hi);

  /// Apply one run's references. Intervals use exclusive ends, which cannot
  /// express 2^64 — so a run reaching the top digest is decomposed into
  /// [base, MAX), the MAX digest itself (dedicated refcount), and any
  /// wrapped remainder, keeping advised/backing/shared exactly in sync.
  void apply_run(const PageRun& run, bool add);
  void touch_max_digest(bool add);

  std::map<PageDigest, Interval> tree_;  // digest interval -> refs
  std::uint64_t max_digest_refs_ = 0;    // refs on digest 2^64-1 (see above)
  std::unordered_map<std::uint64_t, std::vector<PageRun>> clients_;
  std::uint64_t advised_ = 0;   // total refs = sum of run lengths
  std::uint64_t distinct_ = 0;  // total interval length (backing pages)
  std::uint64_t shared_ = 0;    // sum of len*refs over intervals with refs>1
  bool scanned_ = false;
};

}  // namespace mem
