// Memory-hierarchy model: TLB, cache levels, DRAM, page-table walks.
//
// Reproduces the shape of the paper's tinymembench (Figures 6 & 7) and
// STREAM (Figure 8) results. The latency model is analytic: for a random
// access in a buffer of B bytes, each cache level of size S serves a
// min(1, S/B) fraction of accesses; TLB misses add a page-walk cost that is
// amplified under nested paging (EPT); platforms that route guest memory
// through an extra software layer (the vm-memory crate in Firecracker and
// Cloud Hypervisor) add a per-DRAM-access penalty with run-to-run jitter.
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"

namespace mem {

/// Hardware parameters, defaults calibrated to the paper's dual-socket
/// AMD EPYC2 7542 testbed.
struct HierarchySpec {
  std::uint64_t l1_size = 32ull << 10;
  double l1_latency_ns = 1.1;
  std::uint64_t l2_size = 512ull << 10;
  double l2_latency_ns = 3.8;
  std::uint64_t l3_size = 16ull << 20;  // per-CCX slice actually visible
  double l3_latency_ns = 13.5;
  double dram_latency_ns = 88.0;

  std::uint32_t tlb_entries_4k = 1536;   // unified L2 dTLB
  std::uint32_t tlb_entries_2m = 1536;   // shares the same structure
  std::uint64_t page_size_4k = 4096;
  std::uint64_t page_size_2m = 2ull << 20;
  int walk_levels = 4;
  double walk_ref_latency_ns = 7.0;  // per level, page-walk caches warm

  double copy_bw_regular = 11.8e9;  // single-thread memcpy, bytes/s
  double copy_bw_sse2 = 13.6e9;     // non-temporal SSE2 stores
  double stream_copy_bw = 15.2e9;   // STREAM COPY kernel
};

/// How a platform's virtualization layer perturbs the memory subsystem.
struct MemoryProfile {
  /// Nested paging: guest-physical -> host-physical adds a second dimension
  /// to every page walk.
  bool ept = false;
  double ept_walk_factor = 2.3;

  /// Extra per-DRAM-access cost from the guest-memory backing layer
  /// (vm-memory crate, Section 3.2). Zero for direct-mapped layouts
  /// (Kata's NVDIMM) and for namespace platforms.
  double backing_extra_ns = 0.0;
  /// Run-to-run variability of the backing layer (stddev of a per-run
  /// offset, as a fraction of backing_extra_ns).
  double backing_jitter = 0.0;

  /// Sustained-bandwidth multiplier (1.0 = native).
  double bandwidth_factor = 1.0;

  bool hugepage_support = true;
};

/// Analytic memory model shared by all platforms on a host.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(HierarchySpec spec = {});

  /// Mean latency of one random access in a `buffer_bytes` buffer, in ns,
  /// *excluding* the base L1 latency (tinymembench's reporting convention).
  /// One call represents one benchmark run: the backing-layer jitter is
  /// sampled once per call, matching the per-run variance in Figure 6.
  double random_access_extra_ns(std::uint64_t buffer_bytes,
                                const MemoryProfile& profile, bool hugepages,
                                sim::Rng& rng) const;

  /// Sequential copy bandwidth in bytes/s for one run.
  enum class CopyKind { kRegular, kSse2, kStreamCopy };
  double copy_bandwidth(CopyKind kind, const MemoryProfile& profile,
                        sim::Rng& rng) const;

  /// Fraction of accesses served by DRAM for a buffer size (exposed for
  /// tests and for workloads that charge per-access costs).
  double dram_fraction(std::uint64_t buffer_bytes) const;

  /// TLB miss probability for a buffer size and page size.
  double tlb_miss_fraction(std::uint64_t buffer_bytes, bool hugepages) const;

  const HierarchySpec& spec() const { return spec_; }

 private:
  HierarchySpec spec_;
};

}  // namespace mem
