#include "mem/hierarchy.h"

#include <algorithm>
#include <cmath>

namespace mem {

MemoryHierarchy::MemoryHierarchy(HierarchySpec spec) : spec_(spec) {}

double MemoryHierarchy::dram_fraction(std::uint64_t buffer_bytes) const {
  if (buffer_bytes == 0) {
    return 0.0;
  }
  const double b = static_cast<double>(buffer_bytes);
  return std::max(0.0, 1.0 - static_cast<double>(spec_.l3_size) / b);
}

double MemoryHierarchy::tlb_miss_fraction(std::uint64_t buffer_bytes,
                                          bool hugepages) const {
  if (buffer_bytes == 0) {
    return 0.0;
  }
  const double coverage =
      hugepages ? static_cast<double>(spec_.tlb_entries_2m) *
                      static_cast<double>(spec_.page_size_2m)
                : static_cast<double>(spec_.tlb_entries_4k) *
                      static_cast<double>(spec_.page_size_4k);
  return std::max(0.0, 1.0 - coverage / static_cast<double>(buffer_bytes));
}

double MemoryHierarchy::random_access_extra_ns(std::uint64_t buffer_bytes,
                                               const MemoryProfile& profile,
                                               bool hugepages,
                                               sim::Rng& rng) const {
  const double b = static_cast<double>(std::max<std::uint64_t>(buffer_bytes, 1));
  const auto level_fraction = [&](std::uint64_t size) {
    return std::min(1.0, static_cast<double>(size) / b);
  };
  const double f_l1 = level_fraction(spec_.l1_size);
  const double f_l2 = level_fraction(spec_.l2_size);
  const double f_l3 = level_fraction(spec_.l3_size);

  double latency = f_l1 * spec_.l1_latency_ns +
                   (f_l2 - f_l1) * spec_.l2_latency_ns +
                   (f_l3 - f_l2) * spec_.l3_latency_ns +
                   (1.0 - f_l3) * spec_.dram_latency_ns;

  // Page-walk contribution. Under EPT each guest walk level requires a
  // nested walk through the host tables, amplifying the effective cost.
  const bool use_huge = hugepages && profile.hugepage_support;
  const double miss = tlb_miss_fraction(buffer_bytes, use_huge);
  double walk = static_cast<double>(spec_.walk_levels) * spec_.walk_ref_latency_ns;
  if (profile.ept) {
    walk *= profile.ept_walk_factor;
  }
  latency += miss * walk;

  // Backing-layer penalty applies to accesses that reach DRAM; the per-run
  // jitter offset models the wide error bars of Firecracker in Figure 6.
  if (profile.backing_extra_ns > 0.0) {
    double extra = profile.backing_extra_ns;
    if (profile.backing_jitter > 0.0) {
      extra = std::max(
          0.0, rng.normal(extra, extra * profile.backing_jitter));
    }
    latency += dram_fraction(buffer_bytes) * extra;
  }

  // Measurement noise of the benchmark itself (~1.5%).
  latency *= 1.0 + rng.normal(0.0, 0.015);
  return std::max(0.0, latency - spec_.l1_latency_ns);
}

double MemoryHierarchy::copy_bandwidth(CopyKind kind,
                                       const MemoryProfile& profile,
                                       sim::Rng& rng) const {
  double base = 0.0;
  switch (kind) {
    case CopyKind::kRegular:
      base = spec_.copy_bw_regular;
      break;
    case CopyKind::kSse2:
      base = spec_.copy_bw_sse2;
      break;
    case CopyKind::kStreamCopy:
      base = spec_.stream_copy_bw;
      break;
  }
  double bw = base * profile.bandwidth_factor;
  // Streaming copies page in their working set once; EPT makes those cold
  // walks dearer, a second-order effect on bandwidth.
  if (profile.ept) {
    bw *= 0.985;
  }
  bw *= 1.0 + rng.normal(0.0, 0.012);
  return std::max(0.0, bw);
}

}  // namespace mem
