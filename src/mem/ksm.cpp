#include "mem/ksm.h"

namespace mem {

void Ksm::add_range(PageDigest lo, PageDigest hi, bool add) {
  if (lo >= hi) {
    return;
  }
  auto it = tree_.lower_bound(lo);
  // Split a predecessor interval straddling lo so lo becomes a boundary.
  if (it != tree_.begin()) {
    const auto prev = std::prev(it);
    if (prev->second.end > lo) {
      const Interval tail{prev->second.end, prev->second.refs};
      prev->second.end = lo;
      it = tree_.insert(it, {lo, tail});
    }
  }
  PageDigest cur = lo;
  while (cur < hi) {
    const PageDigest next_start =
        (it == tree_.end() || it->first > hi) ? hi : it->first;
    if (cur < next_start) {
      // Gap [cur, next_start): digests with no backing yet. Dropping refs
      // in a gap cannot happen for well-formed clients; tolerate it.
      if (add) {
        it = tree_.insert(it, {cur, Interval{next_start, 1}});
        distinct_ += next_start - cur;
        ++it;
      }
      cur = next_start;
      continue;
    }
    // Interval starting exactly at cur. Split it if it straddles hi.
    if (it->second.end > hi) {
      const Interval tail{it->second.end, it->second.refs};
      it->second.end = hi;
      tree_.insert(std::next(it), {hi, tail});
    }
    const PageDigest len = it->second.end - cur;
    const std::uint64_t r = it->second.refs;
    cur = it->second.end;
    if (add) {
      if (r == 1) {
        shared_ += 2 * len;  // first duplicate: both copies become shared
      } else if (r >= 2) {
        shared_ += len;
      }
      it->second.refs = r + 1;
      ++it;
    } else {
      if (r == 2) {
        shared_ -= 2 * len;  // back to a single copy: no longer shared
      } else if (r >= 3) {
        shared_ -= len;
      }
      if (r <= 1) {
        distinct_ -= len;
        it = tree_.erase(it);
      } else {
        it->second.refs = r - 1;
        ++it;
      }
    }
  }
}

void Ksm::coalesce(PageDigest lo, PageDigest hi) {
  auto it = tree_.lower_bound(lo);
  if (it != tree_.begin()) {
    --it;  // the interval ending at lo may now match its new neighbor
  }
  while (it != tree_.end() && it->first <= hi) {
    const auto next = std::next(it);
    if (next == tree_.end()) {
      break;
    }
    if (it->second.end == next->first &&
        it->second.refs == next->second.refs) {
      it->second.end = next->second.end;
      tree_.erase(next);
    } else {
      it = next;
    }
  }
}

void Ksm::advise(std::uint64_t vm_id, const std::vector<PageDigest>& pages) {
  std::vector<PageRun> runs;
  for (PageDigest d : pages) {
    if (!runs.empty() &&
        d == runs.back().base_digest + runs.back().count) {
      ++runs.back().count;
    } else {
      runs.push_back({d, 1});
    }
  }
  advise_runs(vm_id, std::move(runs));
}

void Ksm::touch_max_digest(bool add) {
  if (add) {
    if (max_digest_refs_ == 0) {
      ++distinct_;
    } else if (max_digest_refs_ == 1) {
      shared_ += 2;
    } else {
      shared_ += 1;
    }
    ++max_digest_refs_;
  } else {
    if (max_digest_refs_ == 0) {
      return;  // tolerate, mirroring add_range's gap handling
    }
    --max_digest_refs_;
    if (max_digest_refs_ == 0) {
      --distinct_;
    } else if (max_digest_refs_ == 1) {
      shared_ -= 2;
    } else {
      shared_ -= 1;
    }
  }
}

void Ksm::apply_run(const PageRun& run, bool add) {
  constexpr PageDigest kMax = ~PageDigest{0};
  const PageDigest lo = run.base_digest;
  std::uint64_t count = run.count;
  if (count == 0) {
    return;
  }
  if (count - 1 >= kMax - lo) {
    // Run reaches digest 2^64-1 (and may wrap): peel off the pieces the
    // exclusive-end interval map cannot express.
    const std::uint64_t below_max = kMax - lo;  // pages in [lo, kMax)
    add_range(lo, kMax, add);
    coalesce(lo, kMax);
    touch_max_digest(add);
    const std::uint64_t rest = count - below_max - 1;  // wrapped onto [0, ...)
    if (rest > 0) {
      add_range(0, rest, add);
      coalesce(0, rest);
    }
    return;
  }
  add_range(lo, lo + count, add);
  coalesce(lo, lo + count);
}

Ksm::ProbeDelta Ksm::probe_runs(const std::vector<PageRun>& runs) const {
  constexpr PageDigest kMax = ~PageDigest{0};
  ProbeDelta delta;
  // Overlay of references this probe has "virtually" added, so
  // self-overlapping runs see each other exactly as sequential apply_run
  // calls would. Interval::refs counts probe-added references only.
  std::map<PageDigest, Interval> overlay;
  std::uint64_t probe_max_refs = 0;

  // Add one virtual reference on [a, b), splitting the overlay like
  // add_range splits the tree.
  const auto overlay_add = [&overlay](PageDigest a, PageDigest b) {
    auto it = overlay.upper_bound(a);
    if (it != overlay.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > a) {
        if (prev->first < a) {
          const Interval tail{prev->second.end, prev->second.refs};
          prev->second.end = a;
          it = overlay.insert(it, {a, tail});
        } else {
          it = prev;
        }
        // The caller only adds within one uniform piece, so [a, b) cannot
        // straddle an overlay boundary beyond a split at b.
        if (it->second.end > b) {
          const Interval tail{it->second.end, it->second.refs};
          it->second.end = b;
          overlay.insert(std::next(it), {b, tail});
        }
        ++it->second.refs;
        return;
      }
    }
    overlay.insert({a, Interval{b, 1}});
  };

  // Account one piece [cur, next) whose combined (tree + overlay) refcount
  // before this reference is r — the same 0->1 / 1->2 / n->n+1 transitions
  // add_range applies to the cached counters.
  const auto account = [&delta](std::uint64_t r, PageDigest len) {
    if (r == 0) {
      delta.backing_delta += len;
    } else if (r == 1) {
      delta.shared_delta += 2 * len;
    } else {
      delta.shared_delta += len;
    }
  };

  const auto probe_range = [&](PageDigest lo, PageDigest hi) {
    PageDigest cur = lo;
    while (cur < hi) {
      // Existing refs and the next uniformity boundary from the tree.
      std::uint64_t tree_refs = 0;
      PageDigest boundary = hi;
      auto it = tree_.upper_bound(cur);
      if (it != tree_.begin()) {
        const auto prev = std::prev(it);
        if (prev->second.end > cur) {
          tree_refs = prev->second.refs;
          boundary = std::min(boundary, prev->second.end);
        }
      }
      if (tree_refs == 0 && it != tree_.end()) {
        boundary = std::min(boundary, it->first);
      }
      // Same from the overlay.
      std::uint64_t ov_refs = 0;
      auto ov = overlay.upper_bound(cur);
      if (ov != overlay.begin()) {
        const auto prev = std::prev(ov);
        if (prev->second.end > cur) {
          ov_refs = prev->second.refs;
          boundary = std::min(boundary, prev->second.end);
        }
      }
      if (ov_refs == 0 && ov != overlay.end()) {
        boundary = std::min(boundary, ov->first);
      }
      account(tree_refs + ov_refs, boundary - cur);
      overlay_add(cur, boundary);
      cur = boundary;
    }
  };

  for (const auto& run : runs) {
    const PageDigest lo = run.base_digest;
    const std::uint64_t count = run.count;
    if (count == 0) {
      continue;
    }
    if (count - 1 >= kMax - lo) {
      // Mirror apply_run's 2^64-1 decomposition: [lo, kMax), the top
      // digest itself, then the wrapped remainder.
      const std::uint64_t below_max = kMax - lo;
      probe_range(lo, kMax);
      account(max_digest_refs_ + probe_max_refs, 1);
      ++probe_max_refs;
      const std::uint64_t rest = count - below_max - 1;
      if (rest > 0) {
        probe_range(0, rest);
      }
      continue;
    }
    probe_range(lo, lo + count);
  }
  return delta;
}

void Ksm::advise_runs(std::uint64_t vm_id, std::vector<PageRun> runs) {
  remove(vm_id);
  for (const auto& r : runs) {
    apply_run(r, /*add=*/true);
    advised_ += r.count;
  }
  clients_[vm_id] = std::move(runs);
  scanned_ = false;
}

void Ksm::remove(std::uint64_t vm_id) {
  const auto it = clients_.find(vm_id);
  if (it != clients_.end()) {
    for (const auto& r : it->second) {
      apply_run(r, /*add=*/false);
      advised_ -= r.count;
    }
    clients_.erase(it);
  }
  scanned_ = false;
}

std::uint64_t Ksm::scan() {
  const std::uint64_t before = backing_pages();
  scanned_ = true;
  const std::uint64_t after = distinct_;
  return before > after ? before - after : 0;
}

double Ksm::density_gain() const {
  const std::uint64_t backing = backing_pages();
  if (backing == 0) {
    return 1.0;
  }
  return static_cast<double>(advised_) / static_cast<double>(backing);
}

double Ksm::shared_fraction() const {
  if (!scanned_ || advised_ == 0) {
    return 0.0;
  }
  return static_cast<double>(shared_) / static_cast<double>(advised_);
}

}  // namespace mem
