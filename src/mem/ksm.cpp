#include "mem/ksm.h"

#include <algorithm>

namespace mem {

void Ksm::advise(std::uint64_t vm_id, std::vector<PageDigest> pages) {
  remove(vm_id);
  clients_.push_back(KsmClient{vm_id, std::move(pages)});
  scanned_ = false;
}

void Ksm::remove(std::uint64_t vm_id) {
  clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                [vm_id](const KsmClient& c) {
                                  return c.vm_id == vm_id;
                                }),
                 clients_.end());
  scanned_ = false;
}

std::uint64_t Ksm::scan() {
  const std::uint64_t before = backing_pages();
  stable_tree_.clear();
  for (const auto& client : clients_) {
    for (PageDigest d : client.pages) {
      ++stable_tree_[d];
    }
  }
  scanned_ = true;
  const std::uint64_t after = backing_pages();
  return before > after ? before - after : 0;
}

std::uint64_t Ksm::advised_pages() const {
  std::uint64_t total = 0;
  for (const auto& client : clients_) {
    total += client.pages.size();
  }
  return total;
}

std::uint64_t Ksm::backing_pages() const {
  if (!scanned_) {
    return advised_pages();
  }
  return stable_tree_.size();
}

double Ksm::density_gain() const {
  const std::uint64_t backing = backing_pages();
  if (backing == 0) {
    return 1.0;
  }
  return static_cast<double>(advised_pages()) / static_cast<double>(backing);
}

double Ksm::shared_fraction() const {
  if (!scanned_ || advised_pages() == 0) {
    return 0.0;
  }
  std::uint64_t shared = 0;
  for (const auto& [digest, refs] : stable_tree_) {
    if (refs > 1) {
      shared += refs;
    }
  }
  return static_cast<double>(shared) / static_cast<double>(advised_pages());
}

}  // namespace mem
