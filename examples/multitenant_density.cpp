// Multi-tenant density vs isolation trade-off explorer.
//
// Section 3.2 discusses KSM: sharing identical pages across VMs increases
// density but weakens the isolation boundary (cross-VM side channels).
// Section 4's HAP quantifies the host attack surface. This example places
// tenants on one host and reports, per platform: how many fit (with and
// without KSM), and what host attack surface each choice exposes.
#include <cstdio>
#include <vector>

#include "core/host_system.h"
#include "fleet/engine.h"
#include "fleet/scenario.h"
#include "hap/hap.h"
#include "mem/ksm.h"
#include "platforms/factory.h"

namespace {

/// Deterministic page digests for a tenant: a shared base image plus
/// tenant-private dirty pages.
std::vector<mem::PageDigest> tenant_pages(std::uint64_t tenant,
                                          std::uint64_t base_pages,
                                          std::uint64_t private_pages) {
  std::vector<mem::PageDigest> pages;
  pages.reserve(base_pages + private_pages);
  for (std::uint64_t p = 0; p < base_pages; ++p) {
    pages.push_back(0xBA5E'0000'0000ull + p);  // identical across tenants
  }
  for (std::uint64_t p = 0; p < private_pages; ++p) {
    pages.push_back((tenant << 32) | p);
  }
  return pages;
}

}  // namespace

int main() {
  constexpr std::uint64_t kGuestRamMb = 512;
  constexpr std::uint64_t kHostRamMb = 16 * 1024;
  constexpr std::uint64_t kPagesPerMb = 256;
  constexpr std::uint64_t kBasePages = 300 * kPagesPerMb;  // shared image
  constexpr std::uint64_t kPrivatePages =
      (kGuestRamMb - 300) * kPagesPerMb;

  // --- Density with and without KSM -------------------------------------
  mem::Ksm ksm;
  std::uint64_t tenants_with_ksm = 0;
  const std::uint64_t host_pages = kHostRamMb * kPagesPerMb;
  for (std::uint64_t t = 1; t <= 128; ++t) {
    ksm.advise(t, tenant_pages(t, kBasePages, kPrivatePages));
    ksm.scan();
    if (ksm.backing_pages() > host_pages) {
      ksm.remove(t);
      ksm.scan();
      break;
    }
    tenants_with_ksm = t;
  }
  const std::uint64_t tenants_without_ksm = kHostRamMb / kGuestRamMb;

  std::printf("Host: %llu MiB RAM; tenants want %llu MiB each\n",
              static_cast<unsigned long long>(kHostRamMb),
              static_cast<unsigned long long>(kGuestRamMb));
  std::printf("  without KSM : %llu tenants\n",
              static_cast<unsigned long long>(tenants_without_ksm));
  std::printf("  with KSM    : %llu tenants (density gain %.2fx,\n"
              "                but %.0f%% of pages shared across tenants -\n"
              "                exposed to cross-VM timing channels)\n\n",
              static_cast<unsigned long long>(tenants_with_ksm),
              ksm.density_gain(), 100.0 * ksm.shared_fraction());

  // --- Attack surface of the platform choice ----------------------------
  core::HostSystem host;
  sim::Rng rng = host.rng().fork();
  const hap::HapExperiment hap_exp;
  std::printf("%-18s %13s %14s  %s\n", "platform", "distinct fns",
              "extended HAP", "isolation notes");
  for (const auto id :
       {platforms::PlatformId::kDocker, platforms::PlatformId::kQemuKvm,
        platforms::PlatformId::kFirecracker,
        platforms::PlatformId::kKataContainers,
        platforms::PlatformId::kGvisor, platforms::PlatformId::kOsvQemu}) {
    auto platform = platforms::PlatformFactory::create(id, host);
    const auto score = hap_exp.measure(*platform, rng);
    const char* note = "";
    switch (id) {
      case platforms::PlatformId::kKataContainers:
        note = "wide HAP but defense-in-depth (ns + VM)";
        break;
      case platforms::PlatformId::kGvisor:
        note = "wide HAP but defense-in-depth (Sentry)";
        break;
      case platforms::PlatformId::kFirecracker:
        note = "minimal devices != minimal host interface";
        break;
      case platforms::PlatformId::kOsvQemu:
        note = "narrowest host interface";
        break;
      default:
        break;
    }
    std::printf("%-18s %13zu %14.2f  %s\n", platform->name().c_str(),
                score.distinct_functions, score.extended_hap, note);
  }
  std::printf(
      "\nThe HAP measures breadth only: Kata and gVisor score wide yet add\n"
      "vertical defense-in-depth the metric cannot see (Finding 28).\n");

  // --- The same question, dynamically ------------------------------------
  // The static count above assumes tenants arrive once and stay. The fleet
  // engine replays the sweep as a live scenario: tenants boot, run phases
  // and tear down while admission control tracks the KSM-merged resident
  // set against host RAM.
  auto sweep = fleet::Scenario::density_sweep(128);
  sweep.guest_ram_bytes = kGuestRamMb << 20;
  sweep.host_ram_override_bytes = kHostRamMb << 20;
  sweep.arrival_window = sim::millis(150);  // arrivals outpace teardowns
  core::HostSystem sweep_host;
  fleet::FleetEngine engine(sweep_host);
  const auto report = engine.run(sweep);
  std::printf(
      "\nDynamic sweep (fleet engine, %d offered tenants): %d admitted\n"
      "before the RAM wall, KSM gain %.2fx at peak residency %.1f GiB.\n",
      sweep.tenant_count, report.admitted, report.ksm.density_gain,
      static_cast<double>(report.peak_resident_bytes) / (1ull << 30));
  return 0;
}
