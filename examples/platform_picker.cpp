// Platform picker: reproduce the paper's decision guidance for a workload.
//
// The paper closes with 28 findings "to help practitioners make educated
// decisions". This example automates that: describe your workload's
// sensitivities and get a ranked shortlist with per-subsystem evidence
// from the same models that regenerate the paper's figures.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/host_system.h"
#include "platforms/factory.h"
#include "workloads/fio.h"
#include "workloads/netbench.h"
#include "workloads/tinymembench.h"

namespace {

struct Weights {
  double network = 0.0;
  double disk = 0.0;
  double memory = 0.0;
  double startup = 0.0;
  double isolation = 0.0;  // narrow host interface preferred
};

struct Assessment {
  std::string platform;
  double net_gbps = 0.0;
  double disk_mbps = 0.0;
  double mem_mbps = 0.0;
  double boot_ms = 0.0;
  bool disk_supported = true;
  double score = 0.0;
};

}  // namespace

int main() {
  // Scenario: a latency-tolerant web cache - network-heavy, some disk,
  // fast autoscaling, moderate isolation needs.
  const Weights weights{.network = 0.4, .disk = 0.15, .memory = 0.1,
                        .startup = 0.25, .isolation = 0.1};

  core::HostSystem host;
  sim::Rng rng = host.rng().fork();
  auto lineup = platforms::PlatformFactory::paper_lineup(host);

  std::vector<Assessment> table;
  for (auto& p : lineup) {
    Assessment a;
    a.platform = p->name();
    sim::Clock clock;
    a.net_gbps = workloads::Iperf3(3).run(*p, clock, rng).max_gbps;
    const workloads::Fio fio(
        workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead));
    const auto io = fio.run(*p, clock, rng);
    a.disk_supported = io.supported;
    a.disk_mbps = io.supported ? io.throughput_bytes_per_sec / 1e6 : 0.0;
    a.mem_mbps =
        workloads::TinyMemBench().bandwidth(*p, rng).regular_bytes_per_sec / 1e6;
    a.boot_ms = sim::to_millis(p->boot_timeline().mean_total());
    table.push_back(a);
  }

  // Normalize each axis to the best performer and combine.
  const auto best = [&](auto getter) {
    double m = 0.0;
    for (const auto& a : table) {
      m = std::max(m, getter(a));
    }
    return m;
  };
  const double best_net = best([](const auto& a) { return a.net_gbps; });
  const double best_disk = best([](const auto& a) { return a.disk_mbps; });
  const double best_mem = best([](const auto& a) { return a.mem_mbps; });
  double best_boot = 1e18;
  for (const auto& a : table) {
    best_boot = std::min(best_boot, a.boot_ms);
  }
  for (auto& a : table) {
    a.score = weights.network * a.net_gbps / best_net +
              weights.disk * (a.disk_supported ? a.disk_mbps / best_disk : 0) +
              weights.memory * a.mem_mbps / best_mem +
              weights.startup * best_boot / a.boot_ms;
    // Isolation: reward narrow architectures per the paper's Section 4
    // (unikernel < containers < hypervisors < secure containers in HAP
    // breadth, with secure containers adding defense-in-depth instead).
    if (a.platform == "osv" || a.platform == "osv-fc") {
      a.score += weights.isolation * 1.0;
    } else if (a.platform == "docker-oci" || a.platform == "lxc") {
      a.score += weights.isolation * 0.8;
    } else if (a.platform == "cloud-hypervisor") {
      a.score += weights.isolation * 0.7;
    } else {
      a.score += weights.isolation * 0.5;
    }
  }
  std::sort(table.begin(), table.end(),
            [](const auto& a, const auto& b) { return a.score > b.score; });

  std::printf(
      "Scenario: web cache (network %.0f%%, disk %.0f%%, memory %.0f%%,\n"
      "startup %.0f%%, isolation %.0f%%)\n\n",
      weights.network * 100, weights.disk * 100, weights.memory * 100,
      weights.startup * 100, weights.isolation * 100);
  std::printf("%-18s %6s %10s %10s %9s %9s\n", "platform", "score",
              "net(Gb/s)", "disk(MB/s)", "mem(MB/s)", "boot(ms)");
  for (const auto& a : table) {
    char disk[32];
    if (a.disk_supported) {
      std::snprintf(disk, sizeof(disk), "%.0f", a.disk_mbps);
    } else {
      std::snprintf(disk, sizeof(disk), "n/a");
    }
    std::printf("%-18s %6.3f %10.2f %10s %9.0f %9.1f\n", a.platform.c_str(),
                a.score, a.net_gbps, disk, a.mem_mbps, a.boot_ms);
  }
  return 0;
}
