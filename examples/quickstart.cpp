// Quickstart: boot a platform, run a workload, read the results.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
//
// Demonstrates the core public API: HostSystem -> PlatformFactory ->
// Platform::boot -> workloads.
#include <cstdio>

#include "core/host_system.h"
#include "platforms/factory.h"
#include "workloads/netbench.h"
#include "workloads/sysbench_cpu.h"

int main() {
  // 1. Model the physical host (defaults: the paper's dual-EPYC2 testbed).
  core::HostSystem host;
  sim::Rng rng = host.rng().fork();

  // 2. Build a platform. Any of the ten paper configurations works here.
  auto docker = platforms::PlatformFactory::create(
      platforms::PlatformId::kDocker, host);

  // 3. Boot it and inspect the startup timeline.
  sim::Clock clock;
  const core::BootResult boot = docker->boot(clock, rng);
  std::printf("%s booted in %s; slowest stages:\n", docker->name().c_str(),
              sim::format_duration(boot.total).c_str());
  for (const auto& stage : boot.stages) {
    if (stage.duration > sim::millis(5)) {
      std::printf("  %-28s %s\n", stage.name.c_str(),
                  sim::format_duration(stage.duration).c_str());
    }
  }

  // 4. Run workloads against it.
  const workloads::SysbenchCpu cpu_bench;
  const auto cpu = cpu_bench.run(*docker, clock, rng);
  std::printf("\nsysbench cpu: %llu primes <= 20000, %.0f events/s\n",
              static_cast<unsigned long long>(cpu.primes_found),
              cpu.events_per_second);

  const workloads::Iperf3 iperf;
  const auto net = iperf.run(*docker, clock, rng);
  std::printf("iperf3: %.2f Gbit/s max over 5 runs\n", net.max_gbps);

  // 5. Compare against another platform in three lines.
  auto gvisor = platforms::PlatformFactory::create(
      platforms::PlatformId::kGvisor, host);
  const auto gvisor_net = iperf.run(*gvisor, clock, rng);
  std::printf("gvisor iperf3: %.2f Gbit/s (Netstack penalty: %.0f%%)\n",
              gvisor_net.max_gbps,
              100.0 * (1.0 - gvisor_net.max_gbps / net.max_gbps));
  return 0;
}
