// Does placement policy matter once you have more than one host?
//
// coldstart_storm.cpp shows 64 tenants contending for ONE host. This
// example shards a 256-tenant storm across a 4-host fleet::Cluster under
// each placement policy and compares what an operator actually trades:
// round-robin, least-loaded and least-pressure spread load (best boot
// tail), ksm-affinity and pack-then-spill co-locate tenants sharing a
// platform image so their KSM digest runs merge (fewest backing pages ->
// most headroom), at some cost in tail latency on the piled-up hosts.
// Placement is only a preference: the policy *ranks* the hosts and the
// admission walk spills a refused tenant to the next candidate instead of
// recording an OOM.
#include <cstdio>

#include "fleet/cluster.h"
#include "fleet/placement.h"
#include "fleet/scenario.h"
#include "stats/table.h"

int main() {
  constexpr int kTenants = 256;
  constexpr int kHosts = 4;

  stats::Table table({"policy", "admitted", "ksm backing pages",
                      "density gain", "boot p50 (ms)", "boot p99 (ms)"});
  std::printf("cluster-storm: %d tenants across %d hosts, one policy at a "
              "time\n\n", kTenants, kHosts);

  fleet::FleetReport last;
  for (const auto kind : fleet::all_placement_kinds()) {
    const auto scenario = fleet::Scenario::cluster_storm(kTenants, kHosts, kind);
    fleet::Cluster cluster(scenario.cluster);  // fresh hosts per policy
    const auto report = cluster.run(scenario);
    table.add_row({fleet::placement_kind_name(kind),
                   std::to_string(report.admitted),
                   std::to_string(report.ksm.backing_pages),
                   stats::Table::num(report.ksm.density_gain),
                   stats::Table::num(report.cluster_boot_ms.percentile(50)),
                   stats::Table::num(report.cluster_boot_ms.percentile(99))});
    last = report;
  }
  std::printf("%s\n", table.to_text().c_str());

  std::printf(
      "Reading the table: every policy admits every tenant (these hosts\n"
      "have RAM to spare), but the co-locating policies (ksm-affinity,\n"
      "pack-then-spill) need the fewest backing pages: same-image guests\n"
      "share their zero-page and image digest runs only when they sit on\n"
      "the SAME host's KSM stable tree. Under RAM pressure that headroom\n"
      "becomes extra admissions, and overshoot spills to the next-ranked\n"
      "host instead of OOMing -- run fleet_scale --hosts 4 --autoscale to\n"
      "see it at 10k tenants, plus the autoscaler growing the fleet.\n\n"
      "The per-host rollup of the last run (%s) shows the other side:\n"
      "piling everything onto few hosts narrows the fleet's attack surface\n"
      "(hap fns column) but concentrates its boot storm.\n\n%s\n",
      last.placement.c_str(), last.to_text().c_str());
  return 0;
}
