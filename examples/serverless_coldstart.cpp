// Serverless cold-start planner.
//
// The paper motivates startup time with serverless computing (Section
// 3.5): regions of isolation are spawned and de-spawned per request.
// This example sizes a FaaS fleet: given a target p99 cold-start budget,
// which isolation platforms qualify, and what does each platform's boot
// time decompose into?
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/host_system.h"
#include "platforms/factory.h"
#include "stats/sample_set.h"

namespace {

struct Candidate {
  std::string name;
  stats::SampleSet boots_ms;
  std::map<std::string, double> stage_means_ms;
};

}  // namespace

int main() {
  constexpr double kColdStartBudgetMs = 250.0;  // p99 budget
  constexpr int kTrials = 300;

  core::HostSystem host;
  sim::Rng rng = host.rng().fork();

  std::vector<Candidate> candidates;
  for (const auto id :
       {platforms::PlatformId::kDocker, platforms::PlatformId::kGvisor,
        platforms::PlatformId::kKataContainers,
        platforms::PlatformId::kFirecracker,
        platforms::PlatformId::kCloudHypervisor,
        platforms::PlatformId::kOsvFirecracker}) {
    auto platform = platforms::PlatformFactory::create(id, host);
    Candidate c;
    c.name = platform->name();
    std::map<std::string, stats::Summary> stages;
    for (int i = 0; i < kTrials; ++i) {
      const auto boot = platform->boot_timeline().run(rng);
      c.boots_ms.add(sim::to_millis(boot.total));
      for (const auto& s : boot.stages) {
        stages[s.name].add(sim::to_millis(s.duration));
      }
    }
    for (const auto& [name, summary] : stages) {
      c.stage_means_ms[name] = summary.mean();
    }
    candidates.push_back(std::move(c));
  }

  std::printf("Cold-start budget: p99 <= %.0f ms (%d startups each)\n\n",
              kColdStartBudgetMs, kTrials);
  std::printf("%-18s %9s %9s %9s  %s\n", "platform", "p50(ms)", "p99(ms)",
              "verdict", "dominant boot stage");
  for (const auto& c : candidates) {
    const double p99 = c.boots_ms.percentile(99);
    const auto dominant = std::max_element(
        c.stage_means_ms.begin(), c.stage_means_ms.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    std::printf("%-18s %9.1f %9.1f %9s  %s (%.0f ms)\n", c.name.c_str(),
                c.boots_ms.percentile(50), p99,
                p99 <= kColdStartBudgetMs ? "OK" : "too slow",
                dominant->first.c_str(), dominant->second);
  }

  std::printf(
      "\nNote how Firecracker misses the budget end-to-end despite its\n"
      "minimal device model: loading the uncompressed kernel image\n"
      "dominates (the paper's Conclusion 5). The OSv unikernel on the\n"
      "same hypervisor fits comfortably.\n");
  return 0;
}
