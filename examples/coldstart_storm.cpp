// What happens when everyone cold-starts at once?
//
// serverless_coldstart.cpp sizes platforms one boot at a time; this example
// asks the fleet-level question: 64 function instances arrive within 50 ms
// on one shared host, so boots compete for CPU, the first boot per image
// warms the host page cache for the rest, and the p99 an operator actually
// observes is set by contention, not by the per-platform CDF alone.
#include <cstdio>

#include "core/host_system.h"
#include "fleet/engine.h"
#include "fleet/scenario.h"

int main() {
  auto scenario = fleet::Scenario::coldstart_storm(64);

  core::HostSystem host;
  fleet::FleetEngine engine(host);
  const auto report = engine.run(scenario);

  std::printf("%s\n\n", report.to_text().c_str());

  std::printf(
      "Reading the table: the storm stretches every platform's tail. The\n"
      "first tenant per image pays the NVMe read to warm the host page\n"
      "cache (%llu misses); later tenants boot from cache. Peak demand hit\n"
      "%.2fx the host's threads, so end-to-end cold starts run that much\n"
      "slower than the single-tenant CDFs of Figures 13-15 suggest.\n",
      static_cast<unsigned long long>(report.page_cache_misses),
      report.peak_cpu_demand);
  return 0;
}
