// Fleet engine scaling benchmark: the repo's recorded perf trajectory.
//
// Runs the cold-start storm and the density sweep at 1k/4k/10k tenants
// against a fresh HostSystem each, and reports real wall-clock time and
// simulator events per second — the first-order answer to "does the engine
// run as fast as the hardware allows as the fleet grows". With --hosts M
// (M > 1) it additionally shards the largest storm across an M-host
// fleet::Cluster under every placement policy, running each policy twice
// and failing hard unless the two reports are byte-identical — the
// cluster's determinism guarantee is checked on every bench run, not just
// in unit tests. Results are written as JSON (default
// BENCH_fleet_scale.json, see README "Performance") so successive PRs can
// compare runs; the checked-in copy at the repo root records the
// trajectory including the pre-optimization baseline. CI's perf gate
// (tools/check_perf_trajectory.py) diffs a fresh run against that copy.
//
// Additional cluster sweeps at explicit shapes (e.g. the 100k-tenant /
// 64-host storm the PR 5 engine unlocked) ride along via
// --clusters TENANTSxHOSTS[,...]; each emits its own block in the JSON
// "clusters" list and runs under the same run-twice byte-identity check.
//
// With --threads N[,N...] the largest cluster shape is additionally run
// once per thread count under least-loaded placement (threads=1 is always
// included as the sequential baseline) and every parallel report is
// checked byte-identical to the sequential one — the parallel engine's
// determinism guarantee, enforced on every bench run. The sweep lands in
// the JSON as a "parallel" block with per-thread wall clock and speedup.
//
// With --chaos the crash-recovery storm (host crash mid-ramp on a
// RAM-tight autoscaled fleet) is run twice — byte-identical or bust — and
// its recovery SLOs (re-admission fraction, time-to-re-place percentiles)
// land in the JSON as a "chaos" block, so the perf gate tracks fault
// turbulence next to clean-path throughput.
//
// With --cells CELLSxHOSTSxTENANTS[,...] the federation storm (the same
// cold-start storm routed across K cluster cells, federation.h) runs once
// per routing policy at each shape, each run performed twice against
// fresh federations — byte-identical or bust, the same determinism
// contract every other sweep enforces — and lands in the JSON as a
// "federation" list with per-routing wall clock and inter-cell spills.
//
// With --programs the program storm (most tenants interpreting a built-in
// syscall program over the HostKernel, src/fleet/program.h) is run twice —
// byte-identical or bust — and its per-op latency tail and SLO verdict
// land in the JSON as a "programs" block, so the perf gate tracks the
// program interpreter's cost next to the statistical phase path.
//
// With --degraded the degrade storm (disk degrade + KSM unmerge pressure +
// partial partition + mid-pressure crash over interpreted programs, with
// per-op retry/backoff on) is run twice — byte-identical or bust — plus a
// no-retry control over the same fault schedule. The retry differential
// (give-ups and permanently lost tenants, both arms) lands in the JSON as
// a "degraded" block, so the perf gate tracks graceful degradation next
// to clean-path throughput. Always the committed 180x3 storm shape: the
// fault windows are tuned against its boot/program phase boundary.
//
// Usage: fleet_scale [--tenants N[,N...]] [--hosts M]
//                    [--clusters NxM[,NxM...]] [--threads N[,N...]]
//                    [--cells KxMxN[,KxMxN...]]
//                    [--autoscale] [--chaos] [--programs] [--degraded]
//                    [--out PATH] [--no-json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/host_system.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/federation.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "stats/table.h"

namespace {

struct ScaleResult {
  std::string scenario;
  int tenants = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  int admitted = 0;
  int completed = 0;
};

ScaleResult run_one(const fleet::Scenario& scenario) {
  core::HostSystem host;  // fresh host: cold page cache, pristine ftrace
  fleet::FleetEngine engine(host);
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = engine.run(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  ScaleResult r;
  r.scenario = scenario.name;
  r.tenants = scenario.tenant_count;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = report.events_processed;
  r.events_per_sec =
      r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3)
                      : 0.0;
  r.admitted = report.admitted;
  r.completed = report.completed;
  return r;
}

struct ClusterScaleResult {
  std::string policy;
  int hosts = 0;
  int tenants = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  int admitted = 0;
  int completed = 0;
  int spills = 0;
  std::uint64_t ksm_shared_pages = 0;
  std::uint64_t ksm_backing_pages = 0;
  double boot_p50_ms = 0.0;
  double boot_p99_ms = 0.0;
  double makespan_ms = 0.0;
};

/// One cluster sweep configuration and its per-policy results.
struct ClusterBlock {
  int tenants = 0;
  int hosts = 0;
  std::vector<ClusterScaleResult> runs;
};

/// The autoscaled storm vs its fixed-topology control at the same size.
struct AutoscaleResult {
  int initial_hosts = 0;
  int max_hosts = 0;
  int final_hosts = 0;
  int tenants = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  int admitted = 0;  // admissions, incl. drain-migration re-admissions
  int tenants_admitted = 0;  // distinct tenants admitted at run end
  int completed = 0;
  int spills = 0;
  int peak_hosts = 0;  // most live hosts at any point
  int scale_outs = 0;
  int scale_ins = 0;
  int drain_migrations = 0;
  int fixed_admitted = 0;          // same storm, autoscale off
  int fixed_tenants_admitted = 0;  // distinct, autoscale off
  double makespan_ms = 0.0;
};

/// One policy run against a fresh cluster; fills wall-clock and returns
/// the report (whose to_text() the caller uses for the determinism check).
fleet::FleetReport run_cluster_once(const fleet::Scenario& scenario,
                                    double* wall_ms) {
  fleet::Cluster cluster(scenario.cluster);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = cluster.run(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  *wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return report;
}

/// Runs the storm under every placement policy, twice each (byte-identical
/// reports or bust). Returns false on a determinism violation.
bool run_cluster_sweep(int tenants, int hosts,
                       std::vector<ClusterScaleResult>* results) {
  for (const auto kind : fleet::all_placement_kinds()) {
    const auto scenario = fleet::Scenario::cluster_storm(tenants, hosts, kind);
    double wall_a = 0.0;
    double wall_b = 0.0;
    const auto a = run_cluster_once(scenario, &wall_a);
    const auto b = run_cluster_once(scenario, &wall_b);
    // to_text() deliberately omits events_processed (compatibility
    // surface), so compare it explicitly too.
    if (a.to_text() != b.to_text() ||
        a.events_processed != b.events_processed) {
      std::fprintf(stderr,
                   "fleet_scale: DETERMINISM VIOLATION — policy %s produced "
                   "different reports across two fresh runs\n",
                   fleet::placement_kind_name(kind).c_str());
      return false;
    }
    ClusterScaleResult r;
    r.policy = fleet::placement_kind_name(kind);
    r.hosts = hosts;
    r.tenants = tenants;
    r.wall_ms = std::min(wall_a, wall_b);
    r.events = a.events_processed;
    r.events_per_sec =
        r.wall_ms > 0.0
            ? static_cast<double>(r.events) / (r.wall_ms / 1e3)
            : 0.0;
    r.admitted = a.admitted;
    r.completed = a.completed;
    r.spills = a.spills;
    r.ksm_shared_pages = a.ksm.shared_pages;
    r.ksm_backing_pages = a.ksm.backing_pages;
    r.boot_p50_ms = a.cluster_boot_ms.empty() ? 0.0
                                              : a.cluster_boot_ms.percentile(50);
    r.boot_p99_ms = a.cluster_boot_ms.empty() ? 0.0
                                              : a.cluster_boot_ms.percentile(99);
    r.makespan_ms = sim::to_millis(a.makespan);
    results->push_back(r);
  }
  return true;
}

/// The retry-on-reject differential: a RAM-tight two-platform storm under
/// ksm-affinity, where the policy's first choice is always the platform's
/// pile host. Single-shot placement (PR 3 semantics, emulated by ranking
/// only the first choice) keeps rejecting against the full pile while
/// other hosts sit idle; the retry walk spills the overflow there.
struct RetryDifferentialResult {
  int hosts = 0;
  int tenants = 0;
  int retry_admitted = 0;
  int single_shot_admitted = 0;
  int spills = 0;
  double wall_ms = 0.0;
};

fleet::Scenario retry_differential_scenario(int tenants, int hosts) {
  auto s = fleet::Scenario::cluster_storm(tenants, hosts,
                                          fleet::PlacementKind::kKsmAffinity);
  // Two platforms on M hosts: affinity builds two piles and leaves the
  // rest of the fleet as pure spill capacity single-shot placement never
  // reaches.
  s.platform_mix = {
      {platforms::PlatformId::kFirecracker, 0.5},
      {platforms::PlatformId::kQemuKvm, 0.5},
  };
  return s;
}

bool run_retry_differential(int tenants, int hosts,
                            RetryDifferentialResult* out) {
  const auto scenario = retry_differential_scenario(tenants, hosts);
  double wall_a = 0.0;
  double wall_b = 0.0;
  const auto a = run_cluster_once(scenario, &wall_a);
  const auto b = run_cluster_once(scenario, &wall_b);
  if (a.to_text() != b.to_text() || a.events_processed != b.events_processed) {
    std::fprintf(stderr,
                 "fleet_scale: DETERMINISM VIOLATION — retry differential "
                 "produced different reports across two fresh runs\n");
    return false;
  }

  fleet::Cluster cluster(scenario.cluster);
  std::vector<core::HostSystem*> cluster_hosts;
  cluster_hosts.reserve(static_cast<std::size_t>(cluster.host_count()));
  for (int i = 0; i < cluster.host_count(); ++i) {
    cluster_hosts.push_back(&cluster.host(i));
  }
  fleet::SingleShotPolicy single_shot(
      fleet::make_placement(fleet::PlacementKind::kKsmAffinity));
  fleet::FleetEngine engine(cluster_hosts, &single_shot);
  const auto ss = engine.run(scenario);

  out->hosts = hosts;
  out->tenants = tenants;
  out->retry_admitted = a.admitted;
  out->single_shot_admitted = ss.admitted;
  out->spills = a.spills;
  out->wall_ms = std::min(wall_a, wall_b);
  return true;
}

/// Autoscaled storm at the largest size: start at `hosts`, allow growth to
/// 2x, run twice (byte-identical or bust), plus the fixed-topology control.
/// Returns false on a determinism violation.
bool run_autoscale(int tenants, int hosts, AutoscaleResult* out) {
  const auto scenario =
      fleet::Scenario::autoscale_storm(tenants, hosts, 2 * hosts);
  double wall_a = 0.0;
  double wall_b = 0.0;
  const auto a = run_cluster_once(scenario, &wall_a);
  const auto b = run_cluster_once(scenario, &wall_b);
  if (a.to_text() != b.to_text() || a.events_processed != b.events_processed) {
    std::fprintf(stderr,
                 "fleet_scale: DETERMINISM VIOLATION — autoscaled storm "
                 "produced different reports across two fresh runs\n");
    return false;
  }
  auto fixed = scenario;
  fixed.autoscale.enabled = false;
  double wall_fixed = 0.0;
  const auto f = run_cluster_once(fixed, &wall_fixed);

  out->initial_hosts = hosts;
  out->max_hosts = 2 * hosts;
  out->final_hosts = a.final_host_count;
  out->tenants = tenants;
  out->wall_ms = std::min(wall_a, wall_b);
  out->events = a.events_processed;
  out->admitted = a.admitted;
  out->tenants_admitted = a.tenants_admitted();
  out->completed = a.completed;
  out->spills = a.spills;
  out->peak_hosts = hosts;
  for (const auto& action : a.autoscale_timeline) {
    out->peak_hosts = std::max(out->peak_hosts, action.live_hosts);
    if (action.action == "scale-out") {
      ++out->scale_outs;
    } else if (action.action == "scale-in") {
      ++out->scale_ins;
    }
  }
  out->drain_migrations = a.drain_migrations;
  out->fixed_admitted = f.admitted;
  out->fixed_tenants_admitted = f.tenants_admitted();
  out->makespan_ms = sim::to_millis(a.makespan);
  return true;
}

/// The crash-recovery storm: a mid-ramp host crash on a RAM-tight
/// autoscaled fleet, reported as recovery SLOs next to wall-clock.
struct ChaosResult {
  int tenants = 0;
  int hosts = 0;
  int max_hosts = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  int victims = 0;
  int readmitted = 0;
  int lost = 0;
  double readmission_fraction = 0.0;
  double replace_p50_ms = 0.0;
  double replace_p99_ms = 0.0;
  int scale_outs = 0;
  double makespan_ms = 0.0;
};

/// Crash-recovery storm run twice (byte-identical or bust). Returns false
/// on a determinism violation.
bool run_chaos(int tenants, int hosts, ChaosResult* out) {
  const auto scenario =
      fleet::Scenario::crash_recovery(tenants, hosts, 2 * hosts);
  double wall_a = 0.0;
  double wall_b = 0.0;
  const auto a = run_cluster_once(scenario, &wall_a);
  const auto b = run_cluster_once(scenario, &wall_b);
  if (a.to_text() != b.to_text() || a.events_processed != b.events_processed) {
    std::fprintf(stderr,
                 "fleet_scale: DETERMINISM VIOLATION — crash-recovery storm "
                 "produced different reports across two fresh runs\n");
    return false;
  }
  out->tenants = tenants;
  out->hosts = hosts;
  out->max_hosts = 2 * hosts;
  out->wall_ms = std::min(wall_a, wall_b);
  out->events = a.events_processed;
  out->events_per_sec =
      out->wall_ms > 0.0
          ? static_cast<double>(out->events) / (out->wall_ms / 1e3)
          : 0.0;
  out->victims = a.crash_victims;
  out->readmitted = a.crash_readmitted;
  out->lost = a.crash_lost;
  out->readmission_fraction = a.readmission_fraction();
  out->replace_p50_ms = a.replace_ms.empty() ? 0.0 : a.replace_ms.percentile(50);
  out->replace_p99_ms = a.replace_ms.empty() ? 0.0 : a.replace_ms.percentile(99);
  for (const auto& action : a.autoscale_timeline) {
    if (action.action == "scale-out") {
      ++out->scale_outs;
    }
  }
  out->makespan_ms = sim::to_millis(a.makespan);
  return true;
}

/// The program storm: per-tenant interpreted syscall programs, reported as
/// op throughput and the worst per-class p99 next to wall-clock.
struct ProgramsResult {
  int tenants = 0;
  int hosts = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  int admitted = 0;
  int completed = 0;
  int program_tenants = 0;       // tenants that interpreted a program
  std::uint64_t total_ops = 0;   // summed across programs and op classes
  double ops_per_sec = 0.0;      // total_ops / wall
  double op_p99_worst_ms = 0.0;  // worst per-class p99 across programs
  bool slo_pass = false;
  double makespan_ms = 0.0;
};

/// Program storm run twice (byte-identical or bust). Returns false on a
/// determinism violation.
bool run_programs(int tenants, int hosts, ProgramsResult* out) {
  const auto scenario = fleet::Scenario::program_storm(tenants, hosts);
  double wall_a = 0.0;
  double wall_b = 0.0;
  const auto a = run_cluster_once(scenario, &wall_a);
  const auto b = run_cluster_once(scenario, &wall_b);
  if (a.to_text() != b.to_text() || a.events_processed != b.events_processed) {
    std::fprintf(stderr,
                 "fleet_scale: DETERMINISM VIOLATION — program storm "
                 "produced different reports across two fresh runs\n");
    return false;
  }
  out->tenants = tenants;
  out->hosts = hosts;
  out->wall_ms = std::min(wall_a, wall_b);
  out->events = a.events_processed;
  out->events_per_sec =
      out->wall_ms > 0.0
          ? static_cast<double>(out->events) / (out->wall_ms / 1e3)
          : 0.0;
  out->admitted = a.admitted;
  out->completed = a.completed;
  for (const auto& [name, prog] : a.by_program) {
    (void)name;
    out->program_tenants += prog.tenants;
    for (const auto& cls : prog.by_class) {
      out->total_ops += cls.ops;
      if (!cls.op_ms.empty()) {
        out->op_p99_worst_ms =
            std::max(out->op_p99_worst_ms, cls.op_ms.percentile(99));
      }
    }
  }
  out->ops_per_sec =
      out->wall_ms > 0.0
          ? static_cast<double>(out->total_ops) / (out->wall_ms / 1e3)
          : 0.0;
  out->slo_pass = a.program_slo_pass();
  out->makespan_ms = sim::to_millis(a.makespan);
  return true;
}

/// The degrade storm plus its no-retry control: same fault schedule, the
/// only difference is per-op retry/backoff. The differential is the
/// committed graceful-degradation claim — the retry arm must give up on
/// fewer ops and permanently lose fewer crash victims.
struct DegradedResult {
  int tenants = 0;
  int hosts = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double makespan_ms = 0.0;
  int faults = 0;        // DegradeVerdicts (disk, mem-pressure, partition)
  int affected = 0;      // tenants disturbed, summed over degrade faults
  int op_retries = 0;
  int op_give_ups = 0;
  int crash_lost = 0;
  double added_p99_worst_ms = 0.0;  // worst per-fault added-latency p99
  int control_give_ups = 0;   // no-retry arm
  int control_crash_lost = 0;
};

/// Degrade storm run twice (byte-identical or bust) plus the no-retry
/// control once. Returns false on a determinism violation.
bool run_degraded(int tenants, int hosts, DegradedResult* out) {
  const auto scenario = fleet::Scenario::degrade_storm(tenants, hosts);
  double wall_a = 0.0;
  double wall_b = 0.0;
  const auto a = run_cluster_once(scenario, &wall_a);
  const auto b = run_cluster_once(scenario, &wall_b);
  if (a.to_text() != b.to_text() || a.events_processed != b.events_processed) {
    std::fprintf(stderr,
                 "fleet_scale: DETERMINISM VIOLATION — degrade storm "
                 "produced different reports across two fresh runs\n");
    return false;
  }
  auto control = scenario;
  control.op_max_retries = 0;
  control.op_backoff_base_ms = 0;
  double wall_c = 0.0;
  const auto c = run_cluster_once(control, &wall_c);

  out->tenants = tenants;
  out->hosts = hosts;
  out->wall_ms = std::min(wall_a, wall_b);
  out->events = a.events_processed;
  out->events_per_sec =
      out->wall_ms > 0.0
          ? static_cast<double>(out->events) / (out->wall_ms / 1e3)
          : 0.0;
  out->makespan_ms = sim::to_millis(a.makespan);
  out->faults = static_cast<int>(a.degraded.size());
  for (const auto& v : a.degraded) {
    out->affected += v.affected;
    if (!v.added_ms.empty()) {
      out->added_p99_worst_ms =
          std::max(out->added_p99_worst_ms, v.added_ms.percentile(99));
    }
  }
  out->op_retries = a.op_retries;
  out->op_give_ups = a.op_give_ups;
  out->crash_lost = a.crash_lost;
  out->control_give_ups = c.op_give_ups;
  out->control_crash_lost = c.crash_lost;
  return true;
}

/// One routing policy's run of the federation storm at one shape.
struct FederationRunResult {
  std::string routing;
  double wall_ms = 0.0;
  std::uint64_t events = 0;  // summed over the final per-cell runs
  double events_per_sec = 0.0;
  int admitted = 0;
  int rejected = 0;
  int completed = 0;
  int spills = 0;  // inter-cell moves
  double makespan_ms = 0.0;
};

/// One federation sweep shape (K cells x M hosts each x N tenants) and its
/// per-routing results.
struct FederationBlock {
  int cells = 0;
  int hosts_per_cell = 0;
  int tenants = 0;
  std::vector<FederationRunResult> runs;
};

/// One federation run against fresh cells; fills wall-clock and returns
/// the report for the determinism check.
fleet::FederationReport run_federation_once(
    const fleet::FederatedScenario& fs, double* wall_ms) {
  fleet::Federation fed(fs.topology);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = fed.run(fs);
  const auto t1 = std::chrono::steady_clock::now();
  *wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return report;
}

/// The federation storm at one shape, once per routing policy, each run
/// twice (byte-identical or bust). Returns false on a determinism
/// violation.
bool run_federation_sweep(FederationBlock* block) {
  for (const fleet::RoutingKind kind : fleet::all_routing_kinds()) {
    const auto fs = fleet::FederatedScenario::federation_storm(
        block->tenants, block->cells, block->hosts_per_cell, kind);
    double wall_a = 0.0;
    double wall_b = 0.0;
    const auto a = run_federation_once(fs, &wall_a);
    const auto b = run_federation_once(fs, &wall_b);
    if (a.to_text() != b.to_text() ||
        a.events_processed != b.events_processed) {
      std::fprintf(stderr,
                   "fleet_scale: DETERMINISM VIOLATION — federation storm "
                   "(%s) produced different reports across two fresh runs\n",
                   fleet::routing_kind_name(kind).c_str());
      return false;
    }
    FederationRunResult r;
    r.routing = fleet::routing_kind_name(kind);
    r.wall_ms = std::min(wall_a, wall_b);
    r.events = a.events_processed;
    r.events_per_sec =
        r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3)
                        : 0.0;
    r.admitted = a.admitted;
    r.rejected = a.rejected;
    r.completed = a.completed;
    r.spills = a.spills;
    r.makespan_ms = sim::to_millis(a.makespan);
    block->runs.push_back(r);
  }
  return true;
}

/// One thread count of the parallel sweep.
struct ParallelSweepResult {
  int threads = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double speedup = 0.0;  // vs the threads=1 run of the same sweep
};

/// The sequential-vs-parallel sweep at one cluster shape.
struct ParallelSweep {
  int tenants = 0;
  int hosts = 0;
  std::string policy;
  std::vector<ParallelSweepResult> runs;
};

/// Runs the storm once per thread count (threads=1 first — the sequential
/// baseline) and requires every parallel report byte-identical to it.
/// Returns false on a determinism violation.
bool run_parallel_sweep(int tenants, int hosts,
                        const std::vector<int>& thread_counts,
                        ParallelSweep* out) {
  auto scenario = fleet::Scenario::cluster_storm(
      tenants, hosts, fleet::PlacementKind::kLeastLoaded);
  out->tenants = tenants;
  out->hosts = hosts;
  out->policy = fleet::placement_kind_name(scenario.placement);

  std::vector<int> counts = {1};
  for (const int n : thread_counts) {
    if (n > 1 && std::find(counts.begin(), counts.end(), n) == counts.end()) {
      counts.push_back(n);
    }
  }

  std::string sequential_text;
  std::uint64_t sequential_events = 0;
  double sequential_wall = 0.0;
  for (const int threads : counts) {
    auto s = scenario;
    s.threads = threads;
    double wall = 0.0;
    const auto report = run_cluster_once(s, &wall);
    if (threads == 1) {
      sequential_text = report.to_text();
      sequential_events = report.events_processed;
      sequential_wall = wall;
    } else if (report.to_text() != sequential_text ||
               report.events_processed != sequential_events) {
      std::fprintf(stderr,
                   "fleet_scale: DETERMINISM VIOLATION — --threads %d "
                   "produced a report different from the sequential run\n",
                   threads);
      return false;
    }
    ParallelSweepResult r;
    r.threads = threads;
    r.wall_ms = wall;
    r.events = report.events_processed;
    r.events_per_sec =
        wall > 0.0 ? static_cast<double>(r.events) / (wall / 1e3) : 0.0;
    r.speedup = wall > 0.0 ? sequential_wall / wall : 0.0;
    out->runs.push_back(r);
  }
  return true;
}

/// Parse a --clusters list: "TENANTSxHOSTS[,TENANTSxHOSTS...]".
bool parse_cluster_configs(const char* arg, std::vector<ClusterBlock>* out) {
  std::string token;
  const auto flush = [&]() {
    if (token.empty()) {
      return true;
    }
    const auto x = token.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= token.size()) {
      return false;
    }
    ClusterBlock block;
    block.tenants = std::atoi(token.substr(0, x).c_str());
    block.hosts = std::atoi(token.substr(x + 1).c_str());
    token.clear();
    if (block.tenants <= 0 || block.hosts <= 0) {
      return false;
    }
    out->push_back(block);
    return true;
  };
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!flush()) {
        return false;
      }
      if (*p == '\0') {
        return true;
      }
    } else {
      token += *p;
    }
  }
}

/// Parse a --cells list: "CELLSxHOSTSxTENANTS[,...]".
bool parse_federation_configs(const char* arg,
                              std::vector<FederationBlock>* out) {
  std::string token;
  const auto flush = [&]() {
    if (token.empty()) {
      return true;
    }
    const auto x1 = token.find('x');
    if (x1 == std::string::npos || x1 == 0) {
      return false;
    }
    const auto x2 = token.find('x', x1 + 1);
    if (x2 == std::string::npos || x2 == x1 + 1 || x2 + 1 >= token.size()) {
      return false;
    }
    FederationBlock block;
    block.cells = std::atoi(token.substr(0, x1).c_str());
    block.hosts_per_cell = std::atoi(token.substr(x1 + 1, x2 - x1 - 1).c_str());
    block.tenants = std::atoi(token.substr(x2 + 1).c_str());
    token.clear();
    if (block.cells <= 0 || block.hosts_per_cell <= 0 || block.tenants <= 0) {
      return false;
    }
    out->push_back(block);
    return true;
  };
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!flush()) {
        return false;
      }
      if (*p == '\0') {
        return true;
      }
    } else {
      token += *p;
    }
  }
}

std::vector<int> parse_sizes(const char* arg) {
  std::vector<int> sizes;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        sizes.push_back(std::atoi(token.c_str()));
        token.clear();
      }
      if (*p == '\0') {
        break;
      }
    } else {
      token += *p;
    }
  }
  return sizes;
}

/// Pre-optimization wall-clock and throughput for the same scenarios and
/// sizes, measured at PR 4 (commit d1d449a) on the engine with per-page
/// page-cache walks, mutate-and-rollback KSM admission trials and full
/// per-arrival placement sorts. A fixed historical record: emitting it
/// from here keeps the checked-in BENCH_fleet_scale.json fully
/// regenerable by just running this bench.
struct BaselineEntry {
  const char* scenario;
  int tenants;
  double wall_ms;
  double events_per_sec;
};
constexpr BaselineEntry kPrePrBaseline[] = {
    {"coldstart-storm", 1000, 394.1, 10150.0},
    {"density-sweep", 1000, 144.8, 12344.0},
    {"coldstart-storm", 4000, 998.8, 11163.0},
    {"density-sweep", 4000, 158.3, 30248.0},
    {"coldstart-storm", 10000, 889.0, 19151.0},
    {"density-sweep", 10000, 172.7, 62450.0},
};

/// The committed PR 4 cluster sweep at 10k tenants / 4 hosts — the
/// denominator of the tentpole's >=10x events/sec target.
struct ClusterBaselineEntry {
  const char* policy;
  double wall_ms;
  double events_per_sec;
};
constexpr int kClusterBaselineHosts = 4;
constexpr int kClusterBaselineTenants = 10000;
constexpr ClusterBaselineEntry kPrePrClusterBaseline[] = {
    {"round-robin", 3203.3, 9642.0},   {"least-loaded", 3209.4, 9627.0},
    {"ksm-affinity", 2252.3, 13717.0}, {"least-pressure", 3030.6, 10195.0},
    {"pack-then-spill", 2511.7, 12297.0},
};

const BaselineEntry* baseline_for(const ScaleResult& r) {
  for (const BaselineEntry& b : kPrePrBaseline) {
    if (r.scenario == b.scenario && r.tenants == b.tenants) {
      return &b;
    }
  }
  return nullptr;
}

const ClusterBaselineEntry* cluster_baseline_for(const ClusterBlock& block,
                                                 const std::string& policy) {
  if (block.hosts != kClusterBaselineHosts ||
      block.tenants != kClusterBaselineTenants) {
    return nullptr;
  }
  for (const ClusterBaselineEntry& b : kPrePrClusterBaseline) {
    if (policy == b.policy) {
      return &b;
    }
  }
  return nullptr;
}

void write_json(const std::string& path, const std::vector<ScaleResult>& runs,
                const std::vector<ClusterBlock>& clusters,
                const ParallelSweep* parallel,
                const RetryDifferentialResult* retry,
                const AutoscaleResult* autoscale, const ChaosResult* chaos,
                const ProgramsResult* programs,
                const DegradedResult* degraded,
                const std::vector<FederationBlock>& federations) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fleet_scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fleet_scale\",\n");
  std::fprintf(f, "  \"schema_version\": 9,\n");
  std::fprintf(f, "  \"unit\": {\"wall_ms\": \"milliseconds\", "
                  "\"events_per_sec\": \"simulator events per second\"},\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScaleResult& r = runs[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"tenants\": %d, "
                 "\"wall_ms\": %.1f, \"events\": %llu, "
                 "\"events_per_sec\": %.0f, \"admitted\": %d, "
                 "\"completed\": %d}%s\n",
                 r.scenario.c_str(), r.tenants, r.wall_ms,
                 static_cast<unsigned long long>(r.events), r.events_per_sec,
                 r.admitted, r.completed, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"baseline_pre_pr\": {\n");
  std::fprintf(f, "    \"commit\": \"d1d449a\",\n");
  std::fprintf(f, "    \"note\": \"same scenarios and sizes on the "
                  "pre-PR-5 engine (per-page page-cache walks, "
                  "mutate-and-rollback KSM admission trials, full "
                  "per-arrival placement sorts, per-boot timeline "
                  "construction)\",\n");
  std::fprintf(f, "    \"runs\": [\n");
  bool first = true;
  for (const ScaleResult& r : runs) {
    const BaselineEntry* b = baseline_for(r);
    if (b == nullptr) {
      continue;
    }
    std::fprintf(f,
                 "%s      {\"scenario\": \"%s\", \"tenants\": %d, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f}",
                 first ? "" : ",\n", b->scenario, b->tenants, b->wall_ms,
                 b->events_per_sec);
    first = false;
  }
  std::fprintf(f, "\n    ],\n");
  std::fprintf(f, "    \"cluster\": {\"hosts\": %d, \"tenants\": %d, "
                  "\"runs\": [\n",
               kClusterBaselineHosts, kClusterBaselineTenants);
  for (std::size_t i = 0; i < std::size(kPrePrClusterBaseline); ++i) {
    const ClusterBaselineEntry& b = kPrePrClusterBaseline[i];
    std::fprintf(f,
                 "      {\"policy\": \"%s\", \"wall_ms\": %.1f, "
                 "\"events_per_sec\": %.0f}%s\n",
                 b.policy, b.wall_ms, b.events_per_sec,
                 i + 1 < std::size(kPrePrClusterBaseline) ? "," : "");
  }
  std::fprintf(f, "    ]}\n  },\n");
  std::fprintf(f, "  \"speedup_vs_pre_pr\": {");
  first = true;
  for (const ScaleResult& r : runs) {
    const BaselineEntry* b = baseline_for(r);
    if (b == nullptr || r.wall_ms <= 0.0) {
      continue;
    }
    std::fprintf(f, "%s\"%s@%d\": %.1f", first ? "" : ", ",
                 r.scenario.c_str(), r.tenants, b->wall_ms / r.wall_ms);
    first = false;
  }
  for (const ClusterBlock& block : clusters) {
    for (const ClusterScaleResult& r : block.runs) {
      const ClusterBaselineEntry* b = cluster_baseline_for(block, r.policy);
      if (b == nullptr || r.wall_ms <= 0.0) {
        continue;
      }
      std::fprintf(f, "%s\"cluster-%s@%dx%d\": %.1f", first ? "" : ", ",
                   r.policy.c_str(), block.tenants, block.hosts,
                   b->wall_ms / r.wall_ms);
      first = false;
    }
  }
  const bool more = !clusters.empty() || parallel != nullptr ||
                    autoscale != nullptr || retry != nullptr ||
                    chaos != nullptr || programs != nullptr || degraded != nullptr ||
                    !federations.empty();
  std::fprintf(f, "}%s\n", more ? "," : "");
  if (!clusters.empty()) {
    std::fprintf(f, "  \"clusters\": [\n");
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const ClusterBlock& block = clusters[c];
      std::fprintf(f, "    {\n");
      std::fprintf(f, "      \"scenario\": \"cluster-storm\",\n");
      std::fprintf(f, "      \"hosts\": %d,\n", block.hosts);
      std::fprintf(f, "      \"tenants\": %d,\n", block.tenants);
      std::fprintf(f, "      \"determinism\": \"each policy run twice "
                      "against fresh clusters, reports byte-identical\",\n");
      std::fprintf(f, "      \"runs\": [\n");
      for (std::size_t i = 0; i < block.runs.size(); ++i) {
        const ClusterScaleResult& r = block.runs[i];
        std::fprintf(
            f,
            "        {\"policy\": \"%s\", \"wall_ms\": %.1f, "
            "\"events\": %llu, \"events_per_sec\": %.0f, "
            "\"admitted\": %d, \"completed\": %d, "
            "\"spills\": %d, "
            "\"ksm_shared_pages\": %llu, \"ksm_backing_pages\": %llu, "
            "\"boot_p50_ms\": %.2f, "
            "\"boot_p99_ms\": %.2f, \"makespan_ms\": %.2f}%s\n",
            r.policy.c_str(), r.wall_ms,
            static_cast<unsigned long long>(r.events), r.events_per_sec,
            r.admitted, r.completed, r.spills,
            static_cast<unsigned long long>(r.ksm_shared_pages),
            static_cast<unsigned long long>(r.ksm_backing_pages),
            r.boot_p50_ms, r.boot_p99_ms, r.makespan_ms,
            i + 1 < block.runs.size() ? "," : "");
      }
      std::fprintf(f, "      ]\n    }%s\n",
                   c + 1 < clusters.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n",
                 parallel != nullptr || retry != nullptr ||
                         autoscale != nullptr || chaos != nullptr ||
                         programs != nullptr || degraded != nullptr || !federations.empty()
                     ? ","
                     : "");
  }
  if (parallel != nullptr) {
    std::fprintf(f, "  \"parallel\": {\n");
    std::fprintf(f, "    \"scenario\": \"cluster-storm\",\n");
    std::fprintf(f, "    \"hosts\": %d,\n", parallel->hosts);
    std::fprintf(f, "    \"tenants\": %d,\n", parallel->tenants);
    std::fprintf(f, "    \"policy\": \"%s\",\n", parallel->policy.c_str());
    std::fprintf(f, "    \"determinism\": \"every parallel run's report "
                    "byte-identical to the threads=1 run\",\n");
    std::fprintf(f, "    \"runs\": [\n");
    for (std::size_t i = 0; i < parallel->runs.size(); ++i) {
      const ParallelSweepResult& r = parallel->runs[i];
      std::fprintf(f,
                   "      {\"threads\": %d, \"wall_ms\": %.1f, "
                   "\"events\": %llu, \"events_per_sec\": %.0f, "
                   "\"speedup_vs_sequential\": %.2f}%s\n",
                   r.threads, r.wall_ms,
                   static_cast<unsigned long long>(r.events),
                   r.events_per_sec, r.speedup,
                   i + 1 < parallel->runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }%s\n",
                 retry != nullptr || autoscale != nullptr ||
                         chaos != nullptr || programs != nullptr || degraded != nullptr ||
                         !federations.empty()
                     ? ","
                     : "");
  }
  if (retry != nullptr) {
    std::fprintf(f, "  \"retry_vs_single_shot\": {\n");
    std::fprintf(f, "    \"scenario\": \"cluster-storm, firecracker/qemu-kvm "
                    "mix, ksm-affinity\",\n");
    std::fprintf(f, "    \"hosts\": %d,\n", retry->hosts);
    std::fprintf(f, "    \"tenants\": %d,\n", retry->tenants);
    std::fprintf(f, "    \"note\": \"single-shot = PR 3 semantics (walk only "
                    "the first-ranked host); the pile hosts fill while the "
                    "rest of the fleet idles\",\n");
    std::fprintf(f,
                 "    \"retry_admitted\": %d,\n"
                 "    \"single_shot_admitted\": %d,\n"
                 "    \"spills\": %d,\n"
                 "    \"wall_ms\": %.1f\n",
                 retry->retry_admitted, retry->single_shot_admitted,
                 retry->spills, retry->wall_ms);
    std::fprintf(f, "  }%s\n",
                 autoscale != nullptr || chaos != nullptr ||
                         programs != nullptr || degraded != nullptr || !federations.empty()
                     ? ","
                     : "");
  }
  if (autoscale != nullptr) {
    const AutoscaleResult& r = *autoscale;
    std::fprintf(f, "  \"autoscale\": {\n");
    std::fprintf(f, "    \"scenario\": \"autoscale-storm\",\n");
    std::fprintf(f, "    \"hosts\": %d,\n", r.initial_hosts);
    std::fprintf(f, "    \"max_hosts\": %d,\n", r.max_hosts);
    std::fprintf(f, "    \"tenants\": %d,\n", r.tenants);
    std::fprintf(f, "    \"determinism\": \"autoscaled storm run twice "
                    "against fresh clusters, reports byte-identical\",\n");
    std::fprintf(f,
                 "    \"run\": {\"wall_ms\": %.1f, \"events\": %llu, "
                 "\"admitted\": %d, \"tenants_admitted\": %d, "
                 "\"completed\": %d, \"spills\": %d, "
                 "\"final_hosts\": %d, \"peak_hosts\": %d, "
                 "\"scale_outs\": %d, "
                 "\"scale_ins\": %d, \"drain_migrations\": %d, "
                 "\"makespan_ms\": %.2f},\n",
                 r.wall_ms, static_cast<unsigned long long>(r.events),
                 r.admitted, r.tenants_admitted, r.completed, r.spills,
                 r.final_hosts, r.peak_hosts,
                 r.scale_outs, r.scale_ins, r.drain_migrations, r.makespan_ms);
    std::fprintf(f, "    \"fixed_topology\": {\"admitted\": %d, "
                    "\"tenants_admitted\": %d}\n",
                 r.fixed_admitted, r.fixed_tenants_admitted);
    std::fprintf(f, "  }%s\n",
                 chaos != nullptr || programs != nullptr || degraded != nullptr ||
                         !federations.empty()
                     ? ","
                     : "");
  }
  if (chaos != nullptr) {
    const ChaosResult& r = *chaos;
    std::fprintf(f, "  \"chaos\": {\n");
    std::fprintf(f, "    \"scenario\": \"crash-recovery\",\n");
    std::fprintf(f, "    \"hosts\": %d,\n", r.hosts);
    std::fprintf(f, "    \"max_hosts\": %d,\n", r.max_hosts);
    std::fprintf(f, "    \"tenants\": %d,\n", r.tenants);
    std::fprintf(f, "    \"determinism\": \"crash-recovery storm run twice "
                    "against fresh clusters, reports byte-identical\",\n");
    std::fprintf(f,
                 "    \"run\": {\"wall_ms\": %.1f, \"events\": %llu, "
                 "\"events_per_sec\": %.0f, \"makespan_ms\": %.2f},\n",
                 r.wall_ms, static_cast<unsigned long long>(r.events),
                 r.events_per_sec, r.makespan_ms);
    std::fprintf(f,
                 "    \"recovery\": {\"victims\": %d, \"readmitted\": %d, "
                 "\"lost\": %d, \"readmission_fraction\": %.4f, "
                 "\"replace_p50_ms\": %.2f, \"replace_p99_ms\": %.2f, "
                 "\"scale_outs\": %d}\n",
                 r.victims, r.readmitted, r.lost, r.readmission_fraction,
                 r.replace_p50_ms, r.replace_p99_ms, r.scale_outs);
    std::fprintf(f, "  }%s\n",
                 programs != nullptr || degraded != nullptr || !federations.empty() ? "," : "");
  }
  if (programs != nullptr) {
    const ProgramsResult& r = *programs;
    std::fprintf(f, "  \"programs\": {\n");
    std::fprintf(f, "    \"scenario\": \"program-storm\",\n");
    std::fprintf(f, "    \"hosts\": %d,\n", r.hosts);
    std::fprintf(f, "    \"tenants\": %d,\n", r.tenants);
    std::fprintf(f, "    \"determinism\": \"program storm run twice against "
                    "fresh clusters, reports byte-identical\",\n");
    std::fprintf(f,
                 "    \"run\": {\"wall_ms\": %.1f, \"events\": %llu, "
                 "\"events_per_sec\": %.0f, \"makespan_ms\": %.2f},\n",
                 r.wall_ms, static_cast<unsigned long long>(r.events),
                 r.events_per_sec, r.makespan_ms);
    std::fprintf(f,
                 "    \"ops\": {\"program_tenants\": %d, \"total_ops\": %llu, "
                 "\"ops_per_sec\": %.0f, \"op_p99_worst_ms\": %.3f, "
                 "\"slo_pass\": %s}\n",
                 r.program_tenants,
                 static_cast<unsigned long long>(r.total_ops), r.ops_per_sec,
                 r.op_p99_worst_ms, r.slo_pass ? "true" : "false");
    std::fprintf(f, "  }%s\n",
                 degraded != nullptr || !federations.empty() ? "," : "");
  }
  if (degraded != nullptr) {
    const DegradedResult& r = *degraded;
    std::fprintf(f, "  \"degraded\": {\n");
    std::fprintf(f, "    \"scenario\": \"degrade-storm\",\n");
    std::fprintf(f, "    \"hosts\": %d,\n", r.hosts);
    std::fprintf(f, "    \"tenants\": %d,\n", r.tenants);
    std::fprintf(f, "    \"determinism\": \"degrade storm run twice against "
                    "fresh clusters, reports byte-identical\",\n");
    std::fprintf(f,
                 "    \"run\": {\"wall_ms\": %.1f, \"events\": %llu, "
                 "\"events_per_sec\": %.0f, \"makespan_ms\": %.2f},\n",
                 r.wall_ms, static_cast<unsigned long long>(r.events),
                 r.events_per_sec, r.makespan_ms);
    std::fprintf(f,
                 "    \"faults\": {\"degrade_faults\": %d, \"affected\": %d, "
                 "\"added_p99_worst_ms\": %.3f},\n",
                 r.faults, r.affected, r.added_p99_worst_ms);
    std::fprintf(f,
                 "    \"retry\": {\"op_retries\": %d, \"op_give_ups\": %d, "
                 "\"crash_lost\": %d},\n",
                 r.op_retries, r.op_give_ups, r.crash_lost);
    std::fprintf(f,
                 "    \"no_retry_control\": {\"op_give_ups\": %d, "
                 "\"crash_lost\": %d}\n",
                 r.control_give_ups, r.control_crash_lost);
    std::fprintf(f, "  }%s\n", federations.empty() ? "" : ",");
  }
  if (!federations.empty()) {
    std::fprintf(f, "  \"federation\": [\n");
    for (std::size_t c = 0; c < federations.size(); ++c) {
      const FederationBlock& block = federations[c];
      std::fprintf(f, "    {\n");
      std::fprintf(f, "      \"scenario\": \"federation-storm\",\n");
      std::fprintf(f, "      \"cells\": %d,\n", block.cells);
      std::fprintf(f, "      \"hosts_per_cell\": %d,\n", block.hosts_per_cell);
      std::fprintf(f, "      \"tenants\": %d,\n", block.tenants);
      std::fprintf(f, "      \"determinism\": \"each routing policy run "
                      "twice against fresh federations, reports "
                      "byte-identical\",\n");
      std::fprintf(f, "      \"runs\": [\n");
      for (std::size_t i = 0; i < block.runs.size(); ++i) {
        const FederationRunResult& r = block.runs[i];
        std::fprintf(f,
                     "        {\"routing\": \"%s\", \"wall_ms\": %.1f, "
                     "\"events\": %llu, \"events_per_sec\": %.0f, "
                     "\"admitted\": %d, \"rejected\": %d, "
                     "\"completed\": %d, \"spills\": %d, "
                     "\"makespan_ms\": %.2f}%s\n",
                     r.routing.c_str(), r.wall_ms,
                     static_cast<unsigned long long>(r.events),
                     r.events_per_sec, r.admitted, r.rejected, r.completed,
                     r.spills, r.makespan_ms,
                     i + 1 < block.runs.size() ? "," : "");
      }
      std::fprintf(f, "      ]\n    }%s\n",
                   c + 1 < federations.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {1000, 4000, 10000};
  std::string out = "BENCH_fleet_scale.json";
  bool json = true;
  bool autoscale = false;
  bool chaos = false;
  bool programs = false;
  bool degraded = false;
  int hosts = 1;
  std::vector<ClusterBlock> extra_clusters;
  std::vector<FederationBlock> federations;
  std::vector<int> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      sizes = parse_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      hosts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      if (!parse_cluster_configs(argv[++i], &extra_clusters)) {
        std::fprintf(stderr,
                     "fleet_scale: --clusters wants TENANTSxHOSTS[,...] "
                     "with positive integers\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      if (!parse_federation_configs(argv[++i], &federations)) {
        std::fprintf(stderr,
                     "fleet_scale: --cells wants CELLSxHOSTSxTENANTS[,...] "
                     "with positive integers\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = parse_sizes(argv[++i]);
      if (thread_counts.empty()) {
        std::fprintf(stderr,
                     "fleet_scale: --threads wants N[,N...] with positive "
                     "integers\n");
        return 2;
      }
      for (const int n : thread_counts) {
        if (n <= 0) {
          std::fprintf(stderr,
                       "fleet_scale: thread counts must be positive\n");
          return 2;
        }
      }
    } else if (std::strcmp(argv[i], "--autoscale") == 0) {
      autoscale = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--programs") == 0) {
      programs = true;
    } else if (std::strcmp(argv[i], "--degraded") == 0) {
      degraded = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      json = false;
    } else {
      std::fprintf(stderr,
                   "usage: fleet_scale [--tenants N[,N...]] [--hosts M] "
                   "[--clusters NxM[,NxM...]] [--threads N[,N...]] "
                   "[--cells KxMxN[,KxMxN...]] "
                   "[--autoscale] [--chaos] [--programs] [--degraded] "
                   "[--out PATH] [--no-json]\n");
      return 2;
    }
  }
  if (autoscale && hosts < 2) {
    std::fprintf(stderr, "fleet_scale: --autoscale needs --hosts >= 2\n");
    return 2;
  }
  if (chaos && hosts < 2) {
    std::fprintf(stderr, "fleet_scale: --chaos needs --hosts >= 2\n");
    return 2;
  }
  if (programs && hosts < 2) {
    std::fprintf(stderr, "fleet_scale: --programs needs --hosts >= 2\n");
    return 2;
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "fleet_scale: --tenants needs at least one size\n");
    return 2;
  }
  for (int n : sizes) {
    if (n <= 0) {
      std::fprintf(stderr,
                   "fleet_scale: tenant sizes must be positive integers\n");
      return 2;
    }
  }
  if (hosts < 1) {
    std::fprintf(stderr, "fleet_scale: --hosts must be >= 1\n");
    return 2;
  }

  benchutil::print_header(
      "fleet scale",
      "Engine scaling trajectory: cold-start storm and density sweep at\n"
      "growing tenant counts, real wall-clock and events/sec per run.");

  std::vector<ScaleResult> runs;
  for (int n : sizes) {
    runs.push_back(run_one(fleet::Scenario::coldstart_storm(n)));
    auto sweep = fleet::Scenario::density_sweep(n);
    // Arrivals must outpace teardowns or the density wall is never reached.
    sweep.arrival_window = sim::millis(250);
    runs.push_back(run_one(sweep));
  }

  stats::Table table({"scenario", "tenants", "wall (ms)", "events",
                      "events/sec", "admitted"});
  for (const ScaleResult& r : runs) {
    table.add_row({r.scenario, std::to_string(r.tenants),
                   stats::Table::num(r.wall_ms),
                   std::to_string(r.events),
                   stats::Table::num(r.events_per_sec, 0),
                   std::to_string(r.admitted)});
  }
  std::printf("%s\n", table.to_text().c_str());

  std::vector<ClusterBlock> clusters;
  if (hosts > 1) {
    ClusterBlock primary;
    primary.tenants = *std::max_element(sizes.begin(), sizes.end());
    primary.hosts = hosts;
    clusters.push_back(primary);
  }
  for (const ClusterBlock& block : extra_clusters) {
    clusters.push_back(block);
  }
  for (ClusterBlock& block : clusters) {
    std::printf("cluster-storm: %d tenants sharded across %d hosts, every "
                "placement policy run twice\n\n",
                block.tenants, block.hosts);
    if (!run_cluster_sweep(block.tenants, block.hosts, &block.runs)) {
      return 1;
    }
    stats::Table cluster_table({"policy", "wall (ms)", "events/sec",
                                "admitted", "completed", "spills",
                                "ksm shared", "ksm backing", "boot p50 (ms)",
                                "boot p99 (ms)", "makespan (ms)"});
    for (const ClusterScaleResult& r : block.runs) {
      cluster_table.add_row(
          {r.policy, stats::Table::num(r.wall_ms),
           stats::Table::num(r.events_per_sec, 0), std::to_string(r.admitted),
           std::to_string(r.completed), std::to_string(r.spills),
           std::to_string(r.ksm_shared_pages),
           std::to_string(r.ksm_backing_pages),
           stats::Table::num(r.boot_p50_ms), stats::Table::num(r.boot_p99_ms),
           stats::Table::num(r.makespan_ms)});
    }
    std::printf("%s\n", cluster_table.to_text().c_str());
    std::printf("determinism: %zu policies x 2 fresh runs each, reports "
                "byte-identical\n\n",
                block.runs.size());
  }

  ParallelSweep parallel_sweep;
  const bool want_parallel = !thread_counts.empty();
  if (want_parallel) {
    if (clusters.empty()) {
      std::fprintf(stderr,
                   "fleet_scale: --threads needs a cluster shape "
                   "(--hosts M or --clusters NxM)\n");
      return 2;
    }
    // Sweep the first explicit --clusters shape (the canonical parallel
    // configuration — CI pins 100000x64 here), falling back to the
    // --hosts primary block when no explicit shapes were given. Keeping
    // the choice positional lets a regeneration run carry bigger cluster
    // blocks (e.g. 1Mx256) without moving the gated parallel config.
    const ClusterBlock* shape =
        extra_clusters.empty() ? &clusters.front() : &extra_clusters.front();
    std::printf("\nparallel sweep: %d tenants x %d hosts, least-loaded, "
                "one run per thread count, byte-identical to threads=1\n\n",
                shape->tenants, shape->hosts);
    if (!run_parallel_sweep(shape->tenants, shape->hosts, thread_counts,
                            &parallel_sweep)) {
      return 1;
    }
    stats::Table parallel_table(
        {"threads", "wall (ms)", "events/sec", "speedup"});
    for (const ParallelSweepResult& r : parallel_sweep.runs) {
      parallel_table.add_row({std::to_string(r.threads),
                              stats::Table::num(r.wall_ms),
                              stats::Table::num(r.events_per_sec, 0),
                              stats::Table::num(r.speedup) + "x"});
    }
    std::printf("%s\n", parallel_table.to_text().c_str());
  }

  RetryDifferentialResult retry_result;
  if (hosts > 1) {
    const int rd_tenants = *std::max_element(sizes.begin(), sizes.end());
    std::printf("\nretry vs single-shot: %d tenants, %d hosts, two-platform "
                "ksm-affinity piles\n\n",
                rd_tenants, hosts);
    if (!run_retry_differential(rd_tenants, hosts, &retry_result)) {
      return 1;
    }
    std::printf("retry-on-reject admitted %d (%d spills); single-shot "
                "placement admitted %d\n",
                retry_result.retry_admitted, retry_result.spills,
                retry_result.single_shot_admitted);
  }

  AutoscaleResult autoscale_result;
  if (autoscale) {
    const int as_tenants = *std::max_element(sizes.begin(), sizes.end());
    std::printf("\nautoscale-storm: %d tenants, %d -> up to %d hosts, run "
                "twice + fixed-topology control\n\n",
                as_tenants, hosts, 2 * hosts);
    if (!run_autoscale(as_tenants, hosts, &autoscale_result)) {
      return 1;
    }
    std::printf("tenants admitted %d (fixed topology: %d), hosts %d peak / "
                "%d final, %d scale-outs, %d scale-ins, %d drain migrations, "
                "%d spills, wall %.1f ms\n",
                autoscale_result.tenants_admitted,
                autoscale_result.fixed_tenants_admitted,
                autoscale_result.peak_hosts, autoscale_result.final_hosts,
                autoscale_result.scale_outs,
                autoscale_result.scale_ins, autoscale_result.drain_migrations,
                autoscale_result.spills, autoscale_result.wall_ms);
  }

  ChaosResult chaos_result;
  if (chaos) {
    const int ch_tenants = *std::max_element(sizes.begin(), sizes.end());
    std::printf("\ncrash-recovery: %d tenants, %d -> up to %d hosts, host 0 "
                "crashes mid-ramp, run twice\n\n",
                ch_tenants, hosts, 2 * hosts);
    if (!run_chaos(ch_tenants, hosts, &chaos_result)) {
      return 1;
    }
    std::printf("crash victims %d, re-admitted %d (%.0f%%), lost %d, "
                "re-place p50 %.2f ms / p99 %.2f ms, %d scale-outs, "
                "wall %.1f ms\n",
                chaos_result.victims, chaos_result.readmitted,
                100.0 * chaos_result.readmission_fraction, chaos_result.lost,
                chaos_result.replace_p50_ms, chaos_result.replace_p99_ms,
                chaos_result.scale_outs, chaos_result.wall_ms);
  }

  ProgramsResult programs_result;
  if (programs) {
    const int pg_tenants = *std::max_element(sizes.begin(), sizes.end());
    std::printf("\nprogram-storm: %d tenants x %d hosts, built-in syscall "
                "programs over the HostKernel, run twice\n\n",
                pg_tenants, hosts);
    if (!run_programs(pg_tenants, hosts, &programs_result)) {
      return 1;
    }
    std::printf("program tenants %d, %llu ops (%.0f ops/sec), worst per-class "
                "p99 %.3f ms, SLO %s, wall %.1f ms\n",
                programs_result.program_tenants,
                static_cast<unsigned long long>(programs_result.total_ops),
                programs_result.ops_per_sec, programs_result.op_p99_worst_ms,
                programs_result.slo_pass ? "PASS" : "FAIL",
                programs_result.wall_ms);
  }

  DegradedResult degraded_result;
  if (degraded) {
    std::printf("\ndegrade-storm: 180 tenants x 3 hosts (committed shape), "
                "disk degrade + mem pressure + partial partition + crash, "
                "run twice + no-retry control\n\n");
    if (!run_degraded(180, 3, &degraded_result)) {
      return 1;
    }
    std::printf("degrade faults %d (%d tenants affected, worst added p99 "
                "%.2f ms); retry arm: %d retries, %d give-ups, %d lost; "
                "no-retry control: %d give-ups, %d lost; wall %.1f ms\n",
                degraded_result.faults, degraded_result.affected,
                degraded_result.added_p99_worst_ms,
                degraded_result.op_retries, degraded_result.op_give_ups,
                degraded_result.crash_lost, degraded_result.control_give_ups,
                degraded_result.control_crash_lost, degraded_result.wall_ms);
  }

  for (FederationBlock& block : federations) {
    std::printf("\nfederation-storm: %d tenants routed across %d cells x %d "
                "hosts, every routing policy run twice\n\n",
                block.tenants, block.cells, block.hosts_per_cell);
    if (!run_federation_sweep(&block)) {
      return 1;
    }
    stats::Table fed_table({"routing", "wall (ms)", "events/sec", "admitted",
                            "rejected", "completed", "spills",
                            "makespan (ms)"});
    for (const FederationRunResult& r : block.runs) {
      fed_table.add_row(
          {r.routing, stats::Table::num(r.wall_ms),
           stats::Table::num(r.events_per_sec, 0), std::to_string(r.admitted),
           std::to_string(r.rejected), std::to_string(r.completed),
           std::to_string(r.spills), stats::Table::num(r.makespan_ms)});
    }
    std::printf("%s\n", fed_table.to_text().c_str());
    std::printf("determinism: %zu routings x 2 fresh runs each, reports "
                "byte-identical\n",
                block.runs.size());
  }

  if (json) {
    write_json(out, runs, clusters,
               want_parallel ? &parallel_sweep : nullptr,
               hosts > 1 ? &retry_result : nullptr,
               autoscale ? &autoscale_result : nullptr,
               chaos ? &chaos_result : nullptr,
               programs ? &programs_result : nullptr,
               degraded ? &degraded_result : nullptr, federations);
  }
  return 0;
}
