// Fleet engine scaling benchmark: the repo's recorded perf trajectory.
//
// Runs the cold-start storm and the density sweep at 1k/4k/10k tenants
// against a fresh HostSystem each, and reports real wall-clock time and
// simulator events per second — the first-order answer to "does the engine
// run as fast as the hardware allows as the fleet grows". With --hosts M
// (M > 1) it additionally shards the largest storm across an M-host
// fleet::Cluster under every placement policy, running each policy twice
// and failing hard unless the two reports are byte-identical — the
// cluster's determinism guarantee is checked on every bench run, not just
// in unit tests. Results are written as JSON (default
// BENCH_fleet_scale.json, see README "Performance") so successive PRs can
// compare runs; the checked-in copy at the repo root records the
// trajectory including the pre-optimization baseline. CI's perf gate
// (tools/check_perf_trajectory.py) diffs a fresh run against that copy.
//
// Usage: fleet_scale [--tenants N[,N...]] [--hosts M] [--out PATH] [--no-json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/host_system.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "stats/table.h"

namespace {

struct ScaleResult {
  std::string scenario;
  int tenants = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  int admitted = 0;
  int completed = 0;
};

ScaleResult run_one(const fleet::Scenario& scenario) {
  core::HostSystem host;  // fresh host: cold page cache, pristine ftrace
  fleet::FleetEngine engine(host);
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = engine.run(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  ScaleResult r;
  r.scenario = scenario.name;
  r.tenants = scenario.tenant_count;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = report.events_processed;
  r.events_per_sec =
      r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3)
                      : 0.0;
  r.admitted = report.admitted;
  r.completed = report.completed;
  return r;
}

struct ClusterScaleResult {
  std::string policy;
  int hosts = 0;
  int tenants = 0;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  int admitted = 0;
  int completed = 0;
  std::uint64_t ksm_shared_pages = 0;
  std::uint64_t ksm_backing_pages = 0;
  double boot_p50_ms = 0.0;
  double boot_p99_ms = 0.0;
  double makespan_ms = 0.0;
};

/// One policy run against a fresh cluster; fills wall-clock and returns
/// the report (whose to_text() the caller uses for the determinism check).
fleet::FleetReport run_cluster_once(const fleet::Scenario& scenario,
                                    double* wall_ms) {
  fleet::Cluster cluster(scenario.cluster);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = cluster.run(scenario);
  const auto t1 = std::chrono::steady_clock::now();
  *wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return report;
}

/// Runs the storm under every placement policy, twice each (byte-identical
/// reports or bust). Returns false on a determinism violation.
bool run_cluster_sweep(int tenants, int hosts,
                       std::vector<ClusterScaleResult>* results) {
  for (const auto kind : fleet::all_placement_kinds()) {
    const auto scenario = fleet::Scenario::cluster_storm(tenants, hosts, kind);
    double wall_a = 0.0;
    double wall_b = 0.0;
    const auto a = run_cluster_once(scenario, &wall_a);
    const auto b = run_cluster_once(scenario, &wall_b);
    // to_text() deliberately omits events_processed (compatibility
    // surface), so compare it explicitly too.
    if (a.to_text() != b.to_text() ||
        a.events_processed != b.events_processed) {
      std::fprintf(stderr,
                   "fleet_scale: DETERMINISM VIOLATION — policy %s produced "
                   "different reports across two fresh runs\n",
                   fleet::placement_kind_name(kind).c_str());
      return false;
    }
    ClusterScaleResult r;
    r.policy = fleet::placement_kind_name(kind);
    r.hosts = hosts;
    r.tenants = tenants;
    r.wall_ms = std::min(wall_a, wall_b);
    r.events = a.events_processed;
    r.admitted = a.admitted;
    r.completed = a.completed;
    r.ksm_shared_pages = a.ksm.shared_pages;
    r.ksm_backing_pages = a.ksm.backing_pages;
    r.boot_p50_ms = a.cluster_boot_ms.empty() ? 0.0
                                              : a.cluster_boot_ms.percentile(50);
    r.boot_p99_ms = a.cluster_boot_ms.empty() ? 0.0
                                              : a.cluster_boot_ms.percentile(99);
    r.makespan_ms = sim::to_millis(a.makespan);
    results->push_back(r);
  }
  return true;
}

std::vector<int> parse_sizes(const char* arg) {
  std::vector<int> sizes;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        sizes.push_back(std::atoi(token.c_str()));
        token.clear();
      }
      if (*p == '\0') {
        break;
      }
    } else {
      token += *p;
    }
  }
  return sizes;
}

/// Pre-optimization wall-clock for the same scenarios and sizes, measured
/// at PR 1 (commit 1055723) on the clear-and-rebuild-KSM engine. A fixed
/// historical record: emitting it from here keeps the checked-in
/// BENCH_fleet_scale.json fully regenerable by just running this bench.
struct BaselineEntry {
  const char* scenario;
  int tenants;
  double wall_ms;
};
constexpr BaselineEntry kPrePrBaseline[] = {
    {"coldstart-storm", 1000, 709.0},   {"density-sweep", 1000, 2109.8},
    {"coldstart-storm", 4000, 9260.8},  {"density-sweep", 4000, 2001.0},
    {"coldstart-storm", 10000, 33955.4}, {"density-sweep", 10000, 1995.7},
};

const BaselineEntry* baseline_for(const ScaleResult& r) {
  for (const BaselineEntry& b : kPrePrBaseline) {
    if (r.scenario == b.scenario && r.tenants == b.tenants) {
      return &b;
    }
  }
  return nullptr;
}

void write_json(const std::string& path, const std::vector<ScaleResult>& runs,
                const std::vector<ClusterScaleResult>& cluster_runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fleet_scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fleet_scale\",\n");
  std::fprintf(f, "  \"schema_version\": 2,\n");
  std::fprintf(f, "  \"unit\": {\"wall_ms\": \"milliseconds\", "
                  "\"events_per_sec\": \"simulator events per second\"},\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScaleResult& r = runs[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"tenants\": %d, "
                 "\"wall_ms\": %.1f, \"events\": %llu, "
                 "\"events_per_sec\": %.0f, \"admitted\": %d, "
                 "\"completed\": %d}%s\n",
                 r.scenario.c_str(), r.tenants, r.wall_ms,
                 static_cast<unsigned long long>(r.events), r.events_per_sec,
                 r.admitted, r.completed, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"baseline_pre_pr\": {\n");
  std::fprintf(f, "    \"commit\": \"1055723\",\n");
  std::fprintf(f, "    \"note\": \"same scenarios and sizes on the "
                  "pre-optimization engine (clear-and-rebuild KSM scan, "
                  "std::list page cache, hashed tenant table, unbatched "
                  "event heap)\",\n");
  std::fprintf(f, "    \"runs\": [\n");
  bool first = true;
  for (const ScaleResult& r : runs) {
    const BaselineEntry* b = baseline_for(r);
    if (b == nullptr) {
      continue;
    }
    std::fprintf(f,
                 "%s      {\"scenario\": \"%s\", \"tenants\": %d, "
                 "\"wall_ms\": %.1f}",
                 first ? "" : ",\n", b->scenario, b->tenants, b->wall_ms);
    first = false;
  }
  std::fprintf(f, "\n    ]\n  },\n");
  std::fprintf(f, "  \"speedup_vs_pre_pr\": {");
  first = true;
  for (const ScaleResult& r : runs) {
    const BaselineEntry* b = baseline_for(r);
    if (b == nullptr || r.wall_ms <= 0.0) {
      continue;
    }
    std::fprintf(f, "%s\"%s@%d\": %.1f", first ? "" : ", ",
                 r.scenario.c_str(), r.tenants, b->wall_ms / r.wall_ms);
    first = false;
  }
  std::fprintf(f, "}%s\n", cluster_runs.empty() ? "" : ",");
  if (!cluster_runs.empty()) {
    std::fprintf(f, "  \"cluster\": {\n");
    std::fprintf(f, "    \"scenario\": \"cluster-storm\",\n");
    std::fprintf(f, "    \"hosts\": %d,\n", cluster_runs.front().hosts);
    std::fprintf(f, "    \"tenants\": %d,\n", cluster_runs.front().tenants);
    std::fprintf(f, "    \"determinism\": \"each policy run twice against "
                    "fresh clusters, reports byte-identical\",\n");
    std::fprintf(f, "    \"runs\": [\n");
    for (std::size_t i = 0; i < cluster_runs.size(); ++i) {
      const ClusterScaleResult& r = cluster_runs[i];
      std::fprintf(f,
                   "      {\"policy\": \"%s\", \"wall_ms\": %.1f, "
                   "\"events\": %llu, \"admitted\": %d, \"completed\": %d, "
                   "\"ksm_shared_pages\": %llu, \"ksm_backing_pages\": %llu, "
                   "\"boot_p50_ms\": %.2f, "
                   "\"boot_p99_ms\": %.2f, \"makespan_ms\": %.2f}%s\n",
                   r.policy.c_str(), r.wall_ms,
                   static_cast<unsigned long long>(r.events), r.admitted,
                   r.completed,
                   static_cast<unsigned long long>(r.ksm_shared_pages),
                   static_cast<unsigned long long>(r.ksm_backing_pages),
                   r.boot_p50_ms, r.boot_p99_ms, r.makespan_ms,
                   i + 1 < cluster_runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  }\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {1000, 4000, 10000};
  std::string out = "BENCH_fleet_scale.json";
  bool json = true;
  int hosts = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      sizes = parse_sizes(argv[++i]);
    } else if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      hosts = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      json = false;
    } else {
      std::fprintf(stderr,
                   "usage: fleet_scale [--tenants N[,N...]] [--hosts M] "
                   "[--out PATH] [--no-json]\n");
      return 2;
    }
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "fleet_scale: --tenants needs at least one size\n");
    return 2;
  }
  for (int n : sizes) {
    if (n <= 0) {
      std::fprintf(stderr,
                   "fleet_scale: tenant sizes must be positive integers\n");
      return 2;
    }
  }
  if (hosts < 1) {
    std::fprintf(stderr, "fleet_scale: --hosts must be >= 1\n");
    return 2;
  }

  benchutil::print_header(
      "fleet scale",
      "Engine scaling trajectory: cold-start storm and density sweep at\n"
      "growing tenant counts, real wall-clock and events/sec per run.");

  std::vector<ScaleResult> runs;
  for (int n : sizes) {
    runs.push_back(run_one(fleet::Scenario::coldstart_storm(n)));
    auto sweep = fleet::Scenario::density_sweep(n);
    // Arrivals must outpace teardowns or the density wall is never reached.
    sweep.arrival_window = sim::millis(250);
    runs.push_back(run_one(sweep));
  }

  stats::Table table({"scenario", "tenants", "wall (ms)", "events",
                      "events/sec", "admitted"});
  for (const ScaleResult& r : runs) {
    table.add_row({r.scenario, std::to_string(r.tenants),
                   stats::Table::num(r.wall_ms),
                   std::to_string(r.events),
                   stats::Table::num(r.events_per_sec, 0),
                   std::to_string(r.admitted)});
  }
  std::printf("%s\n", table.to_text().c_str());

  std::vector<ClusterScaleResult> cluster_runs;
  if (hosts > 1) {
    const int cluster_tenants = *std::max_element(sizes.begin(), sizes.end());
    std::printf("cluster-storm: %d tenants sharded across %d hosts, every "
                "placement policy run twice\n\n",
                cluster_tenants, hosts);
    if (!run_cluster_sweep(cluster_tenants, hosts, &cluster_runs)) {
      return 1;
    }
    stats::Table cluster_table({"policy", "wall (ms)", "admitted", "completed",
                                "ksm shared", "ksm backing", "boot p50 (ms)",
                                "boot p99 (ms)", "makespan (ms)"});
    for (const ClusterScaleResult& r : cluster_runs) {
      cluster_table.add_row(
          {r.policy, stats::Table::num(r.wall_ms), std::to_string(r.admitted),
           std::to_string(r.completed), std::to_string(r.ksm_shared_pages),
           std::to_string(r.ksm_backing_pages),
           stats::Table::num(r.boot_p50_ms), stats::Table::num(r.boot_p99_ms),
           stats::Table::num(r.makespan_ms)});
    }
    std::printf("%s\n", cluster_table.to_text().c_str());
    std::printf("determinism: %zu policies x 2 fresh runs each, reports "
                "byte-identical\n",
                cluster_runs.size());
  }

  if (json) {
    write_json(out, runs, cluster_runs);
  }
  return 0;
}
