// google-benchmark microbenchmarks of the framework's own primitives:
// RNG, statistics, ftrace recording, syscall dispatch, page cache, B+tree
// and KV-store operations. These guard the simulator's performance (the
// figure harnesses run hundreds of thousands of modeled operations).
#include <benchmark/benchmark.h>

#include "apps/btree.h"
#include "apps/kv_store.h"
#include "apps/ycsb.h"
#include "hostk/host_kernel.h"
#include "hostk/page_cache.h"
#include "sim/rng.h"
#include "stats/sample_set.h"
#include "stats/summary.h"

namespace {

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

void BM_ZipfianNext(benchmark::State& state) {
  sim::Rng rng(1);
  sim::ZipfianGenerator zipf(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(1'000)->Arg(100'000);

void BM_SummaryAdd(benchmark::State& state) {
  stats::Summary summary;
  double x = 0.0;
  for (auto _ : state) {
    summary.add(x += 1.0);
  }
  benchmark::DoNotOptimize(summary.mean());
}
BENCHMARK(BM_SummaryAdd);

void BM_SampleSetPercentile(benchmark::State& state) {
  sim::Rng rng(3);
  stats::SampleSet samples;
  for (int i = 0; i < state.range(0); ++i) {
    samples.add(rng.next_double());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(samples.percentile(90));
  }
}
BENCHMARK(BM_SampleSetPercentile)->Arg(300)->Arg(10'000);

void BM_SyscallDispatch(benchmark::State& state) {
  hostk::HostKernel kernel;
  sim::Rng rng(5);
  const bool traced = state.range(0) != 0;
  if (traced) {
    kernel.ftrace().start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.invoke(hostk::Syscall::kRead, rng));
  }
}
BENCHMARK(BM_SyscallDispatch)->Arg(0)->Arg(1);

void BM_PageCacheAccess(benchmark::State& state) {
  hostk::PageCache cache(64ull << 20);
  sim::Rng rng(7);
  for (auto _ : state) {
    const auto page = rng.next_u64() % 32'768;
    benchmark::DoNotOptimize(cache.access_range(1, page * 4096, 4096));
  }
}
BENCHMARK(BM_PageCacheAccess);

void BM_BtreeInsert(benchmark::State& state) {
  apps::BPlusTree tree;
  std::int64_t key = 0;
  for (auto _ : state) {
    tree.insert(key++, "value");
  }
  benchmark::DoNotOptimize(tree.size());
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeFind(benchmark::State& state) {
  apps::BPlusTree tree;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    tree.insert(i, "value");
  }
  sim::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.find(rng.uniform_int(0, state.range(0) - 1)));
  }
}
BENCHMARK(BM_BtreeFind)->Arg(10'000)->Arg(100'000);

void BM_KvStoreGet(benchmark::State& state) {
  apps::KvStore store(64ull << 20);
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    store.set(apps::YcsbWorkload::key_for(i), "0123456789abcdef");
  }
  sim::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(apps::YcsbWorkload::key_for(
        static_cast<std::uint64_t>(rng.uniform_int(0, 49'999)))));
  }
}
BENCHMARK(BM_KvStoreGet);

}  // namespace

BENCHMARK_MAIN();
