// google-benchmark microbenchmarks of the framework's own primitives:
// RNG, statistics, ftrace recording, syscall dispatch, page cache, B+tree
// and KV-store operations. These guard the simulator's performance (the
// figure harnesses run hundreds of thousands of modeled operations).
#include <benchmark/benchmark.h>

#include "apps/btree.h"
#include "apps/kv_store.h"
#include "apps/ycsb.h"
#include "fleet/placement.h"
#include "hostk/host_kernel.h"
#include "hostk/page_cache.h"
#include "mem/ksm.h"
#include "sim/rng.h"
#include "stats/sample_set.h"
#include "stats/summary.h"

namespace {

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

void BM_ZipfianNext(benchmark::State& state) {
  sim::Rng rng(1);
  sim::ZipfianGenerator zipf(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext)->Arg(1'000)->Arg(100'000);

void BM_SummaryAdd(benchmark::State& state) {
  stats::Summary summary;
  double x = 0.0;
  for (auto _ : state) {
    summary.add(x += 1.0);
  }
  benchmark::DoNotOptimize(summary.mean());
}
BENCHMARK(BM_SummaryAdd);

void BM_SampleSetPercentile(benchmark::State& state) {
  sim::Rng rng(3);
  stats::SampleSet samples;
  for (int i = 0; i < state.range(0); ++i) {
    samples.add(rng.next_double());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(samples.percentile(90));
  }
}
BENCHMARK(BM_SampleSetPercentile)->Arg(300)->Arg(10'000);

void BM_SyscallDispatch(benchmark::State& state) {
  hostk::HostKernel kernel;
  sim::Rng rng(5);
  const bool traced = state.range(0) != 0;
  if (traced) {
    kernel.ftrace().start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.invoke(hostk::Syscall::kRead, rng));
  }
}
BENCHMARK(BM_SyscallDispatch)->Arg(0)->Arg(1);

void BM_PageCacheAccess(benchmark::State& state) {
  hostk::PageCache cache(64ull << 20);
  sim::Rng rng(7);
  for (auto _ : state) {
    const auto page = rng.next_u64() % 32'768;
    benchmark::DoNotOptimize(cache.access_range(1, page * 4096, 4096));
  }
}
BENCHMARK(BM_PageCacheAccess);

void BM_BtreeInsert(benchmark::State& state) {
  apps::BPlusTree tree;
  std::int64_t key = 0;
  for (auto _ : state) {
    tree.insert(key++, "value");
  }
  benchmark::DoNotOptimize(tree.size());
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeFind(benchmark::State& state) {
  apps::BPlusTree tree;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    tree.insert(i, "value");
  }
  sim::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.find(rng.uniform_int(0, state.range(0) - 1)));
  }
}
BENCHMARK(BM_BtreeFind)->Arg(10'000)->Arg(100'000);

/// A KSM stable tree resembling a fleet host: `tenants` hypervisor guests
/// of three digest runs each (shared zero pages, per-image pages, private
/// pages) — the structure FleetEngine::admit probes on every trial.
mem::Ksm fleet_like_tree(int tenants) {
  mem::Ksm ksm;
  for (int t = 0; t < tenants; ++t) {
    const auto id = static_cast<std::uint64_t>(t);
    ksm.advise_runs(id, {{0x2E80'0000'0000'0000ull, 89},
                         {0xBA5E'0000'0000'0000ull, 32},
                         {0x7E4A'0000'0000'0000ull + (id << 24), 135}});
  }
  ksm.scan();
  return ksm;
}

std::vector<mem::PageRun> candidate_runs(std::uint64_t id) {
  return {{0x2E80'0000'0000'0000ull, 89},
          {0xBA5E'0000'0000'0000ull, 32},
          {0x7E4A'0000'0000'0000ull + (id << 24), 135}};
}

/// Read-only admission trial (the PR 5 hot path): one const overlap query.
void BM_KsmProbeRuns(benchmark::State& state) {
  mem::Ksm ksm = fleet_like_tree(static_cast<int>(state.range(0)));
  const auto runs = candidate_runs(1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ksm.probe_runs(runs));
  }
}
BENCHMARK(BM_KsmProbeRuns)->Arg(100)->Arg(2'000);

/// The pre-probe admission trial: mutate the tree, scan, roll back, scan —
/// what every refusing candidate host used to pay per arrival.
void BM_KsmAdviseScanRemove(benchmark::State& state) {
  mem::Ksm ksm = fleet_like_tree(static_cast<int>(state.range(0)));
  const auto runs = candidate_runs(1'000'000);
  for (auto _ : state) {
    ksm.advise_runs(1'000'000, runs);
    ksm.scan();
    ksm.remove(1'000'000);
    benchmark::DoNotOptimize(ksm.scan());
  }
}
BENCHMARK(BM_KsmAdviseScanRemove)->Arg(100)->Arg(2'000);

std::vector<fleet::HostView> bench_host_views(int hosts, sim::Rng& rng) {
  std::vector<fleet::HostView> views;
  views.reserve(static_cast<std::size_t>(hosts));
  for (int i = 0; i < hosts; ++i) {
    fleet::HostView v;
    v.index = i;
    v.ram_cap_bytes = 256ull << 30;
    v.resident_bytes = rng.next_u64() % v.ram_cap_bytes;
    v.active_tenants = static_cast<int>(rng.next_u64() % 2000);
    v.same_platform_tenants = static_cast<int>(rng.next_u64() % 500);
    v.pressure.cpu_demand = static_cast<double>(rng.next_u64() % 256);
    v.pressure.cpu_threads = 128;
    v.pressure.net_active = static_cast<int>(rng.next_u64() % 64);
    views.push_back(v);
  }
  return views;
}

/// Sort-based ranking: the full O(M log M) snapshot sort per arrival.
void BM_RankHostsSort(benchmark::State& state) {
  sim::Rng rng(21);
  const auto policy = fleet::make_placement(fleet::PlacementKind::kLeastLoaded);
  const auto views = bench_host_views(static_cast<int>(state.range(0)), rng);
  fleet::PlacementRequest req;
  std::vector<int> ranked;
  for (auto _ : state) {
    ranked.clear();
    policy->rank_hosts(req, views, ranked);
    benchmark::DoNotOptimize(ranked.data());
  }
}
BENCHMARK(BM_RankHostsSort)->Arg(4)->Arg(64)->Arg(1024);

/// Heap-backed walk, first candidate only — the admission walk's common
/// case (most arrivals admit on their first try), O(log M) per pop.
void BM_RankHostsHeapWalk(benchmark::State& state) {
  sim::Rng rng(21);
  const auto policy = fleet::make_placement(fleet::PlacementKind::kLeastLoaded);
  const auto views = bench_host_views(static_cast<int>(state.range(0)), rng);
  policy->reset();
  for (const auto& v : views) {
    fleet::HostState s;
    s.index = v.index;
    s.ram_cap_bytes = v.ram_cap_bytes;
    s.resident_bytes = v.resident_bytes;
    s.active_tenants = v.active_tenants;
    s.pressure = v.pressure;
    policy->host_updated(s);
  }
  fleet::PlacementRequest req;
  for (auto _ : state) {
    policy->walk_begin(req);
    benchmark::DoNotOptimize(policy->walk_next());
  }
}
BENCHMARK(BM_RankHostsHeapWalk)->Arg(4)->Arg(64)->Arg(1024);

void BM_KvStoreGet(benchmark::State& state) {
  apps::KvStore store(64ull << 20);
  for (std::uint64_t i = 0; i < 50'000; ++i) {
    store.set(apps::YcsbWorkload::key_for(i), "0123456789abcdef");
  }
  sim::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get(apps::YcsbWorkload::key_for(
        static_cast<std::uint64_t>(rng.uniform_int(0, 49'999)))));
  }
}
BENCHMARK(BM_KvStoreGet);

}  // namespace

BENCHMARK_MAIN();
