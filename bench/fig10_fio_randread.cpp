// Figure 10: fio randread latency for 4 KiB blocks (libaio).
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 10 - fio 4 KiB random-read latency",
      "Mean completion latency (us). gVisor is excluded: its reads are\n"
      "served from the host page cache even with caches dropped (the\n"
      "O_DIRECT flag does not survive the Gofer). Expected shape:\n"
      "containers ~native; hypervisors elevated; Cloud Hypervisor\n"
      "remarkably good; Kata exceptionally poor (9p).");
  benchutil::print_bars(core::figure10_fio_randread(), "us", 1,
                        "fig10_fio_randread");
  return 0;
}
