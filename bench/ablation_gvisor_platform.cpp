// Ablation 2 (Section 2.3.2): gVisor's interception platform - ptrace vs
// KVM. The paper: "the KVM mode ought to be faster because ptrace has a
// relatively high context-switch penalty".
#include "bench_util.h"
#include "core/host_system.h"
#include "platforms/secure_platforms.h"

int main() {
  benchutil::print_header(
      "Ablation - gVisor platform: ptrace vs KVM",
      "Per-syscall interception cost and syscall-heavy workload impact.");
  core::HostSystem host;
  sim::Rng rng = host.rng().fork();

  platforms::GvisorPlatform ptrace_gv(host, securec::GvisorPlatform::kPtrace);
  platforms::GvisorPlatform kvm_gv(host, securec::GvisorPlatform::kKvm);

  stats::Table table({"platform", "intercept (us)", "serve-internal (us)",
                      "gofer 128k op (us)"});
  for (auto* gv : {&ptrace_gv, &kvm_gv}) {
    stats::Summary intercept, internal, gofer;
    for (int i = 0; i < 2'000; ++i) {
      intercept.add(sim::to_micros(gv->sentry().interception_cost(rng)));
      internal.add(sim::to_micros(gv->sentry().serve_internal(rng)));
      gofer.add(sim::to_micros(gv->sentry().serve_via_gofer(128 << 10, rng)));
    }
    table.add_row({gv->name(), stats::Table::num(intercept.mean(), 2),
                   stats::Table::num(internal.mean(), 2),
                   stats::Table::num(gofer.mean(), 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "ptrace pays two context switches per intercepted syscall; the KVM\n"
      "platform uses hardware-assisted address-space switching instead.\n"
      "Gofer-bound I/O is dominated by 9p either way (Finding 8).\n");
  return 0;
}
