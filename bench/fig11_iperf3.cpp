// Figure 11: iperf3 network throughput (max over 5 runs).
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 11 - iperf3 network throughput",
      "Maximum achievable throughput (Gbit/s) over 5 runs, host as client,\n"
      "server in the guest. Expected shape: native 37.28, OSv 36.36,\n"
      "bridges ~-9.5%, TAP+virtio hypervisors ~-25% (CH < QEMU), Kata =\n"
      "its weakest link (QEMU), gVisor an extreme outlier (Netstack).");
  benchutil::print_bars(core::figure11_iperf3(), "Gbit/s", 2, "fig11_iperf3");
  return 0;
}
