// Ablation 4: KSM / NVDIMM-style direct mapping for the Kata memory path.
// Finding 3's mechanism: Kata avoids the hypervisor memory penalty via
// direct host<->guest mappings; this sweep turns the pieces on and off.
#include "bench_util.h"
#include "mem/hierarchy.h"
#include "sim/rng.h"
#include "vmm/vm_memory.h"

int main() {
  benchutil::print_header(
      "Ablation - Kata memory path: nested paging x direct mapping",
      "Random-access extra latency (ns) at a 64 MiB buffer under different\n"
      "guest-memory configurations. The NVDIMM direct map is what keeps\n"
      "Kata near-native in Figures 6-8 despite running QEMU.");
  mem::MemoryHierarchy hierarchy;
  sim::Rng rng(99);

  struct Config {
    const char* label;
    mem::MemoryProfile profile;
  };
  std::vector<Config> configs;
  configs.push_back({"native (no EPT)", {}});
  {
    mem::MemoryProfile p;
    p.ept = true;
    configs.push_back({"EPT, plain mmap (qemu)", p});
  }
  configs.push_back({"EPT + vm-memory crate (firecracker)",
                     vmm::MemoryBackingCatalog::vm_memory_crate_firecracker()
                         .profile});
  configs.push_back({"EPT + NVDIMM direct map (kata)",
                     vmm::MemoryBackingCatalog::kata_nvdimm_direct().profile});

  std::vector<core::Bar> bars;
  for (const auto& c : configs) {
    stats::Summary ns;
    for (int i = 0; i < 200; ++i) {
      ns.add(hierarchy.random_access_extra_ns(64ull << 20, c.profile,
                                              /*hugepages=*/false, rng));
    }
    bars.push_back({c.label, ns.mean(), ns.stddev(), false, ""});
  }
  benchutil::print_bars(bars, "ns", 1);

  std::printf(
      "The direct map shortens nested walks (hot, DAX-backed mappings);\n"
      "the vm-memory crate adds per-access cost AND run-to-run variance.\n"
      "Trade-off per the paper: direct sharing weakens the isolation\n"
      "boundary (see the multitenant_density example for the KSM side).\n");
  return 0;
}
