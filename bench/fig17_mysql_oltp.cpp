// Figure 17: MySQL sysbench oltp_read_write, tps vs client threads.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 17 - MySQL sysbench oltp_read_write",
      "Transactions/s vs client threads (10..160), 3 runs. Expected shape:\n"
      "platforms peak ~50 threads, native ~110 (without a significant\n"
      "margin); three groups - {OSv, OSv-FC, gVisor} severely low & flat,\n"
      "{Firecracker, Kata} ~half, the rest alike with wide error bands.");
  benchutil::print_curves(core::figure17_mysql_oltp(), "threads", "tps",
                          false, "fig17_mysql_oltp");
  return 0;
}
