// Figure 13: container boot-time CDFs, 300 startups per platform.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 13 - container runtime boot time (CDF)",
      "300 startups per platform, end-to-end (process creation to\n"
      "termination). OCI rows invoke the underlying runtime directly,\n"
      "circumventing the Docker daemon (~250 ms cheaper). Expected shape:\n"
      "Docker ~100 ms, gVisor ~190 ms, Kata ~600 ms, LXC ~800 ms (systemd).");
  benchutil::print_cdfs(core::figure13_container_boot(), "fig13_container_boot");
  return 0;
}
