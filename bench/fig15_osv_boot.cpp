// Figure 15: OSv boot-time CDFs under its supported hypervisors, measured
// both end-to-end and by stdout banner (the two must superimpose).
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 15 - OSv boot time under different hypervisors (CDF)",
      "300 startups. Expected shape: the ordering INVERTS relative to\n"
      "Figure 14 - Firecracker fastest, QEMU-microvm second, plain QEMU\n"
      "last; (e2e) and (stdout) series nearly superimposed (Finding 16).");
  benchutil::print_cdfs(core::figure15_osv_boot(), "fig15_osv_boot");
  return 0;
}
