// Figure 9: fio 128 KiB sequential read/write throughput, libaio, direct.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 9 - fio block I/O throughput",
      "128 KiB blocks, libaio, O_DIRECT, dedicated test disk, host cache\n"
      "dropped between runs. Firecracker (no extra disk) and OSv (no\n"
      "libaio) are excluded, as in the paper. Expected shape: Docker/LXC/\n"
      "QEMU ~native; Cloud Hypervisor markedly worse; gVisor and Kata at\n"
      "half of native or less (9p).");
  stats::Table table({"platform", "read (MB/s)", "std", "write (MB/s)", "std",
                      "note"});
  const auto io_bars = core::figure9_fio_throughput();
  std::vector<core::Bar> reads, writes;
  for (const auto& bar : io_bars) {
    reads.push_back(bar.read);
    writes.push_back(bar.write);
  }
  benchutil::note_export(core::export_bars("fig09_fio_read", reads, "MB/s"));
  benchutil::note_export(core::export_bars("fig09_fio_write", writes, "MB/s"));
  for (const auto& bar : io_bars) {
    if (bar.read.excluded) {
      table.add_row({bar.platform, "-", "-", "-", "-",
                     "excluded: " + bar.read.exclusion_reason});
    } else {
      table.add_row({bar.platform, stats::Table::num(bar.read.mean, 0),
                     stats::Table::num(bar.read.stddev, 0),
                     stats::Table::num(bar.write.mean, 0),
                     stats::Table::num(bar.write.stddev, 0), ""});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  return 0;
}
