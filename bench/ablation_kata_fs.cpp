// Ablation 1 (Finding 7): Kata Containers' shared filesystem - 9p vs
// virtio-fs - across the fio experiments, versus QEMU as the reference.
#include "bench_util.h"
#include "core/host_system.h"
#include "platforms/factory.h"
#include "workloads/fio.h"

namespace {

core::Bar run_fio(platforms::Platform& p, workloads::FioMode mode,
                  sim::Rng& rng, int reps = 10) {
  stats::Summary mbps;
  for (int r = 0; r < reps; ++r) {
    sim::Clock clock;
    const workloads::Fio bench(workloads::Fio::figure9_throughput(mode));
    mbps.add(bench.run(p, clock, rng).throughput_bytes_per_sec / 1e6);
  }
  return {p.name(), mbps.mean(), mbps.stddev(), false, ""};
}

core::Bar run_randread(platforms::Platform& p, sim::Rng& rng, int reps = 10) {
  stats::Summary us;
  for (int r = 0; r < reps; ++r) {
    sim::Clock clock;
    const workloads::Fio bench(workloads::Fio::figure10_randread());
    us.add(bench.run(p, clock, rng).latencies_us.summary().mean());
  }
  return {p.name(), us.mean(), us.stddev(), false, ""};
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation - Kata shared filesystem: 9p vs virtio-fs",
      "Finding 7: virtio-fs significantly outperforms 9p and brings Kata\n"
      "on par with plain QEMU in the fio experiments.");
  core::HostSystem host;
  sim::Rng rng = host.rng().fork();

  platforms::FactoryOptions ninep_opts;
  platforms::FactoryOptions vfs_opts;
  vfs_opts.kata_shared_fs = storage::SharedFsProtocol::kVirtioFs;
  auto kata_9p = platforms::PlatformFactory::create(
      platforms::PlatformId::kKataContainers, host, ninep_opts);
  auto kata_vfs = platforms::PlatformFactory::create(
      platforms::PlatformId::kKataContainers, host, vfs_opts);
  auto qemu = platforms::PlatformFactory::create(
      platforms::PlatformId::kQemuKvm, host);

  std::vector<core::Bar> reads, latencies;
  for (auto* p : {kata_9p.get(), kata_vfs.get(), qemu.get()}) {
    host.drop_caches();
    reads.push_back(run_fio(*p, workloads::FioMode::kSeqRead, rng));
    host.drop_caches();
    latencies.push_back(run_randread(*p, rng));
  }
  std::printf("-- 128 KiB sequential read --\n");
  benchutil::print_bars(reads, "MB/s", 0);
  std::printf("-- 4 KiB randread latency --\n");
  benchutil::print_bars(latencies, "us", 1);
  return 0;
}
