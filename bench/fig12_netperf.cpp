// Figure 12: netperf TCP_RR 90th-percentile latency over 5 runs.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 12 - netperf p90 round-trip latency",
      "90th percentile of TCP_RR round trips (us). Expected shape: bridge\n"
      "platforms (Docker, Kata, LXC) best, then the hypervisors, OSv\n"
      "slightly below the hypervisors, gVisor 3-4x its competitors.");
  benchutil::print_bars(core::figure12_netperf(), "us_p90", 1, "fig12_netperf");
  return 0;
}
