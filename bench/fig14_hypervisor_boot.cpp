// Figure 14: hypervisor boot-time CDFs (replication of Agache et al.'s
// experiment with end-to-end measurement), 300 startups per platform.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 14 - hypervisor boot time (CDF)",
      "Same kernel + rootfs, patched init exits immediately, 300 startups.\n"
      "Expected shape: Cloud Hypervisor fastest, then QEMU (plain and\n"
      "qboot), Firecracker ~350 ms (NOT the fastest, contrary to its\n"
      "paper), QEMU-microvm unexpectedly slowest.");
  benchutil::print_cdfs(core::figure14_hypervisor_boot(), "fig14_hypervisor_boot");
  return 0;
}
