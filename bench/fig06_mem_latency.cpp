// Figure 6: tinymembench random-access latency vs buffer size (2^16..2^26).
#include <cmath>

#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 6 - tinymembench memory access latency",
      "Average extra time (ns, over L1 latency) for accessing a random\n"
      "element in buffers of 2^16..2^26 bytes. Expected shape: latency grows\n"
      "with buffer size; Firecracker worst (mean AND variance), Cloud\n"
      "Hypervisor elevated, Kata ~native (NVDIMM), OSv/QEMU ~native.");
  benchutil::print_curves(core::figure6_memory_latency(), "buffer_bytes",
                          "extra_ns", /*x_as_log2=*/true,
                          "fig06_mem_latency");

  benchutil::print_header(
      "Figure 6 (companion) - HugePages relief",
      "Same sweep with 2 MiB pages on supporting platforms: the paper\n"
      "reports ~30% lower latency in the larger buffers.");
  benchutil::print_curves(core::figure6_memory_latency(10, core::kFigureSeed,
                                                       /*hugepages=*/true),
                          "buffer bytes", "extra ns", true);
  return 0;
}
