// Findings report: re-evaluates the paper's 28 findings as PASS/FAIL
// assertions against freshly generated data. The harness-level smoke test:
// if a calibration change breaks a finding, this binary says which one.
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/figures.h"

namespace {

struct Check {
  int finding;
  std::string summary;
  std::function<bool()> holds;
};

const core::Bar& bar(const std::vector<core::Bar>& bars,
                     const std::string& name) {
  for (const auto& b : bars) {
    if (b.platform == name) {
      return b;
    }
  }
  throw std::logic_error("missing bar " + name);
}

double p50(const std::vector<core::CdfSeries>& series,
           const std::string& name) {
  for (const auto& s : series) {
    if (s.platform == name) {
      return s.samples_ms.percentile(50);
    }
  }
  throw std::logic_error("missing series " + name);
}

const core::Curve& curve(const std::vector<core::Curve>& curves,
                         const std::string& name) {
  for (const auto& c : curves) {
    if (c.platform == name) {
      return c;
    }
  }
  throw std::logic_error("missing curve " + name);
}

double peak(const core::Curve& c) {
  double best = 0;
  for (const double v : c.y) {
    best = std::max(best, v);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("Regenerating data for the findings report...\n");
  const auto fig5 = core::figure5_ffmpeg(4);
  const auto f1 = core::finding1_sysbench_cpu(4);
  const auto fig6 = core::figure6_memory_latency(5);
  const auto fig7 = core::figure7_memory_bandwidth(5);
  const auto fig9 = core::figure9_fio_throughput(4);
  const auto fig10 = core::figure10_fio_randread(4);
  const auto fig11 = core::figure11_iperf3();
  const auto fig12 = core::figure12_netperf();
  const auto fig13 = core::figure13_container_boot(100);
  const auto fig14 = core::figure14_hypervisor_boot(100);
  const auto fig15 = core::figure15_osv_boot(100);
  const auto fig16 = core::figure16_memcached(3);
  const auto fig17 = core::figure17_mysql_oltp(2);
  const auto fig18 = core::figure18_hap();

  std::map<std::string, const hap::HapScore*> hap;
  for (const auto& s : fig18) {
    hap[s.platform] = &s;
  }
  const auto fio_read = [&](const char* n) {
    for (const auto& b : fig9) {
      if (b.platform == n) {
        return b.read;
      }
    }
    throw std::logic_error("missing io bar");
  };
  const auto mem_last = [&](const char* n) {
    return curve(fig6, n).y.back();
  };
  const auto bw = [&](const char* n) {
    for (const auto& b : fig7) {
      if (b.platform == n) {
        return b.regular_mbps;
      }
    }
    throw std::logic_error("missing bw bar");
  };

  std::vector<Check> checks = {
      {1, "basic CPU parity; complex CPU work penalizes custom schedulers",
       [&] {
         double lo = 1e18, hi = 0;
         for (const auto& b : f1) {
           lo = std::min(lo, b.mean);
           hi = std::max(hi, b.mean);
         }
         return hi / lo < 1.05 &&
                bar(fig5, "osv").mean > bar(fig5, "native").mean * 1.3;
       }},
      {2, "all containers on par with native for CPU-bound work",
       [&] {
         return std::abs(bar(fig5, "docker-oci").mean -
                         bar(fig5, "native").mean) <
                bar(fig5, "native").mean * 0.06;
       }},
      {3, "Kata and OSv/QEMU unimpaired in memory despite hypervisors",
       [&] {
         return mem_last("kata-containers") < mem_last("native") * 1.25 &&
                mem_last("osv") < mem_last("native") * 1.25;
       }},
      {4, "Firecracker worst memory; CH latency-only; QEMU throughput-only",
       [&] {
         return mem_last("firecracker") > mem_last("cloud-hypervisor") &&
                mem_last("cloud-hypervisor") > mem_last("native") &&
                bw("qemu-kvm") < bw("native") * 0.93 &&
                bw("cloud-hypervisor") > bw("native") * 0.90;
       }},
      {5, "OSv memory performance depends on its hypervisor",
       [&] { return mem_last("osv-fc") > mem_last("osv") * 1.1; }},
      {6, "I/O near native except gVisor, Kata, Cloud Hypervisor",
       [&] {
         return fio_read("qemu-kvm").mean > fio_read("native").mean * 0.9 &&
                fio_read("kata-containers").mean <
                    fio_read("native").mean * 0.5 &&
                fio_read("gvisor").mean < fio_read("native").mean * 0.5 &&
                fio_read("cloud-hypervisor").mean <
                    fio_read("native").mean * 0.6;
       }},
      {7, "virtio-fs on par with QEMU (see ablation_kata_fs)", [&] {
         return true;  // asserted numerically in the ablation + unit tests
       }},
      {8, "gVisor I/O hampered by 9p + Gofer",
       [&] { return fio_read("gvisor").mean < fio_read("native").mean * 0.5; }},
      {9, "CH poor I/O throughput but good randread latency",
       [&] {
         return bar(fig10, "cloud-hypervisor").mean <
                bar(fig10, "qemu-kvm").mean;
       }},
      {10, "bridge containers have the best netperf latency",
       [&] {
         return bar(fig12, "docker-oci").mean < bar(fig12, "qemu-kvm").mean &&
                bar(fig12, "kata-containers").mean <
                    bar(fig12, "qemu-kvm").mean;
       }},
      {11, "OSv latency slightly below the hypervisors",
       [&] { return bar(fig12, "osv").mean < bar(fig12, "qemu-kvm").mean; }},
      {12, "gVisor p90 3-4x competitors",
       [&] {
         const double r =
             bar(fig12, "gvisor").mean / bar(fig12, "docker-oci").mean;
         return r > 2.5 && r < 5.5;
       }},
      {13, "containers boot fast except Kata and LXC",
       [&] {
         return p50(fig13, "docker-oci") < 200 &&
                p50(fig13, "kata-oci") > 450 && p50(fig13, "lxc") > 600;
       }},
      {14, "Firecracker not fastest; CH fastest; uVM slowest",
       [&] {
         return p50(fig14, "cloud-hypervisor") < p50(fig14, "qemu-qboot") &&
                p50(fig14, "firecracker") > p50(fig14, "qemu-kvm") &&
                p50(fig14, "qemu-microvm") > p50(fig14, "firecracker");
       }},
      {15, "OSv boots as fast as containers; hypervisor choice matters",
       [&] {
         return p50(fig15, "osv-firecracker(e2e)") < 150 &&
                p50(fig15, "osv-qemu(e2e)") >
                    p50(fig15, "osv-firecracker(e2e)") * 1.5;
       }},
      {16, "end-to-end and stdout measurements superimpose",
       [&] {
         const double e2e = p50(fig15, "osv-qemu(e2e)");
         const double so = p50(fig15, "osv-qemu(stdout)");
         return std::abs(1.0 - so / e2e) < 0.03;
       }},
      {17, "containers great at Memcached; newer hypervisors worse",
       [&] {
         return bar(fig16, "lxc").mean > bar(fig16, "qemu-kvm").mean &&
                bar(fig16, "qemu-kvm").mean >
                    bar(fig16, "firecracker").mean &&
                bar(fig16, "firecracker").mean >
                    bar(fig16, "cloud-hypervisor").mean;
       }},
      {18, "Kata's Memcached surprisingly low",
       [&] {
         return bar(fig16, "kata-containers").mean <
                bar(fig16, "cloud-hypervisor").mean * 0.7;
       }},
      {19, "gVisor Memcached poor due to networking",
       [&] {
         return bar(fig16, "gvisor").mean <
                bar(fig16, "docker-oci").mean * 0.35;
       }},
      {20, "platforms peak ~50 threads; native ~110 without big margin",
       [&] {
         const auto& native = curve(fig17, "native");
         std::size_t ni = 0;
         for (std::size_t i = 0; i < native.y.size(); ++i) {
           if (native.y[i] > native.y[ni]) {
             ni = i;
           }
         }
         return native.x[ni] >= 80 &&
                peak(curve(fig17, "native")) <
                    peak(curve(fig17, "docker-oci")) * 1.6;
       }},
      {21, "OSv and gVisor severely underperform in OLTP",
       [&] {
         return peak(curve(fig17, "osv")) <
                    peak(curve(fig17, "docker-oci")) * 0.45 &&
                peak(curve(fig17, "gvisor")) <
                    peak(curve(fig17, "docker-oci")) * 0.45;
       }},
      {22, "Firecracker and Kata around half of the leading group",
       [&] {
         return peak(curve(fig17, "firecracker")) <
                    peak(curve(fig17, "docker-oci")) * 0.75 &&
                peak(curve(fig17, "kata-containers")) <
                    peak(curve(fig17, "docker-oci")) * 0.85;
       }},
      {23, "remaining platforms perform alike",
       [&] {
         const double d = peak(curve(fig17, "docker-oci"));
         return std::abs(peak(curve(fig17, "lxc")) / d - 1.0) < 0.2 &&
                std::abs(peak(curve(fig17, "qemu-kvm")) / d - 1.0) < 0.3;
       }},
      {24, "Firecracker has the widest host interface",
       [&] {
         for (const auto& [name, s] : hap) {
           if (name != "firecracker" &&
               s->distinct_functions >=
                   hap.at("firecracker")->distinct_functions) {
             return false;
           }
         }
         return true;
       }},
      {25, "Cloud Hypervisor invokes very few host functions",
       [&] {
         return hap.at("cloud-hypervisor")->distinct_functions <
                hap.at("qemu-kvm")->distinct_functions / 2;
       }},
      {26, "secure containers high, above regular containers",
       [&] {
         return hap.at("gvisor")->distinct_functions >
                    hap.at("docker-oci")->distinct_functions &&
                hap.at("kata-containers")->distinct_functions >
                    hap.at("lxc")->distinct_functions;
       }},
      {27, "OSv exercises the host kernel most sparingly",
       [&] {
         for (const auto& [name, s] : hap) {
           if (name != "osv" && name != "osv-fc" &&
               s->distinct_functions < hap.at("osv")->distinct_functions) {
             return false;
           }
         }
         return true;
       }},
      {28, "HAP cannot capture defense-in-depth (definitional)",
       [&] { return true; }},
  };

  int passed = 0;
  for (const auto& check : checks) {
    const bool ok = check.holds();
    passed += ok;
    std::printf("[%s] Finding %2d: %s\n", ok ? "PASS" : "FAIL", check.finding,
                check.summary.c_str());
  }
  std::printf("\n%d/%zu findings reproduced.\n", passed, checks.size());
  return passed == static_cast<int>(checks.size()) ? 0 : 1;
}
