// Figure 7: tinymembench sequential copy bandwidth (regular + SSE2).
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 7 - tinymembench memory copy throughput",
      "Sequential bytes copied per second using regular and SSE2\n"
      "instructions (MB/s). Expected shape: platforms near-equal, QEMU and\n"
      "Firecracker below native; Kata and OSv/QEMU unimpaired.");
  stats::Table table({"platform", "regular (MB/s)", "std", "sse2 (MB/s)",
                      "std"});
  for (const auto& bar : core::figure7_memory_bandwidth()) {
    table.add_row({bar.platform, stats::Table::num(bar.regular_mbps, 0),
                   stats::Table::num(bar.regular_std, 0),
                   stats::Table::num(bar.sse2_mbps, 0),
                   stats::Table::num(bar.sse2_std, 0)});
  }
  std::printf("%s\n", table.to_text().c_str());
  return 0;
}
