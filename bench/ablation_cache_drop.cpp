// Ablation 3 (Section 3.3's methodology pitfall): what fio reports when
// the host page cache is NOT dropped between runs. Guest-side O_DIRECT
// does not cross a loop device, so "direct" guest reads come back at
// host-memcpy speed - the "hypervisors beat native" artifact.
#include "bench_util.h"
#include "core/host_system.h"
#include "platforms/factory.h"
#include "workloads/fio.h"

int main() {
  benchutil::print_header(
      "Ablation - host page cache hygiene for fio",
      "gVisor reads with and without dropping the host cache first. The\n"
      "paper excluded gVisor from Figure 10 because of exactly this.");
  core::HostSystem host;
  sim::Rng rng = host.rng().fork();
  auto gvisor = platforms::PlatformFactory::create(
      platforms::PlatformId::kGvisor, host);
  auto native = platforms::PlatformFactory::create(
      platforms::PlatformId::kNative, host);

  stats::Table table({"configuration", "seq read (MB/s)", "vs native"});
  double native_mbps = 0.0;
  {
    workloads::FioSpec spec =
        workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead);
    sim::Clock clock;
    native_mbps = workloads::Fio(spec)
                      .run(*native, clock, rng)
                      .throughput_bytes_per_sec /
                  1e6;
    table.add_row({"native (cache dropped)", stats::Table::num(native_mbps, 0),
                   "1.00x"});
  }
  {
    // Proper hygiene: drop before the (single) measured run.
    workloads::FioSpec spec =
        workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead);
    spec.drop_host_cache_first = true;
    sim::Clock clock;
    const double mbps = workloads::Fio(spec)
                            .run(*gvisor, clock, rng)
                            .throughput_bytes_per_sec /
                        1e6;
    table.add_row({"gvisor (cache dropped)", stats::Table::num(mbps, 0),
                   stats::Table::num(mbps / native_mbps, 2) + "x"});
  }
  {
    // The pitfall: warm host cache + non-propagated O_DIRECT.
    workloads::FioSpec warm =
        workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead);
    warm.drop_host_cache_first = false;
    sim::Clock clock;
    workloads::Fio(warm).run(*gvisor, clock, rng);  // warm the host cache
    const double mbps = workloads::Fio(warm)
                            .run(*gvisor, clock, rng)
                            .throughput_bytes_per_sec /
                        1e6;
    table.add_row({"gvisor (warm host cache)", stats::Table::num(mbps, 0),
                   stats::Table::num(mbps / native_mbps, 2) + "x  <- bogus"});
  }
  std::printf("%s\n", table.to_text().c_str());
  return 0;
}
