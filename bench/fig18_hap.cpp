// Figure 18: the extended (EPSS-weighted) Horizontal Attack Profile.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 18 - extended HAP metric",
      "Host kernel functions traced (ftrace) while running sysbench\n"
      "cpu/memory/io, iperf3, and a start/stop cycle; breadth weighted by\n"
      "per-function EPSS exploitability. Expected shape: Firecracker\n"
      "highest; Kata and gVisor high (defense-in-depth is NOT visible to\n"
      "HAP); QEMU above the containers; Cloud Hypervisor very low; OSv\n"
      "lowest.");
  stats::Table table({"platform", "distinct fns", "invocations",
                      "HAP (breadth)", "extended HAP (EPSS)"});
  const auto scores = core::figure18_hap();
  benchutil::note_export(core::export_hap("fig18_hap", scores));
  for (const auto& s : scores) {
    table.add_row({s.platform, std::to_string(s.distinct_functions),
                   std::to_string(s.total_invocations),
                   stats::Table::num(s.hap_breadth, 0),
                   stats::Table::num(s.extended_hap, 2)});
  }
  std::printf("%s\n", table.to_text().c_str());
  return 0;
}
