// Ablation 7: YCSB workload mix sensitivity for Memcached. The paper uses
// workload A (50/50); this sweep shows how the platform ranking holds
// across read-heavier mixes (B: 95/5, C: read-only) — network cost per
// operation, not the read/write ratio, is what separates the platforms.
#include "apps/memcached_bench.h"
#include "bench_util.h"
#include "core/host_system.h"
#include "platforms/factory.h"

int main() {
  benchutil::print_header(
      "Ablation - YCSB workload mix (A 50/50, B 95/5, C read-only)",
      "Memcached kops/s per platform and mix. Rankings should be stable:\n"
      "the datapath dominates, not the op type.");
  core::HostSystem host;
  auto lineup = platforms::PlatformFactory::paper_lineup(host);

  struct Mix {
    const char* label;
    apps::YcsbSpec spec;
  };
  const Mix mixes[] = {
      {"A(50/50)", apps::YcsbWorkload::workload_a()},
      {"B(95/5)", apps::YcsbWorkload::workload_b()},
      {"C(100/0)", apps::YcsbWorkload::workload_c()},
  };

  stats::Table table({"platform", "A(50/50) kops/s", "B(95/5) kops/s",
                      "C(100/0) kops/s"});
  for (auto& p : lineup) {
    std::vector<std::string> row = {p->name()};
    sim::Rng rng = host.rng().fork();
    for (const auto& mix : mixes) {
      apps::MemcachedSpec spec;
      spec.workload = mix.spec;
      spec.workload.record_count = 20'000;
      spec.sampled_ops = 1'500;
      sim::Clock clock;
      const auto result = apps::MemcachedBench(spec).run(*p, clock, rng);
      row.push_back(stats::Table::num(result.ops_per_second / 1e3, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_text().c_str());
  return 0;
}
