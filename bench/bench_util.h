// Shared rendering helpers for the per-figure bench binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/export.h"
#include "core/figures.h"
#include "stats/table.h"

namespace benchutil {

inline void print_header(const char* figure, const char* description) {
  std::printf("=== %s ===\n%s\n\n", figure, description);
}

inline void note_export(const std::optional<std::string>& path) {
  if (path) {
    std::printf("(csv written to %s)\n\n", path->c_str());
  }
}

inline void print_bars(const std::vector<core::Bar>& bars, const char* unit,
                       int precision = 1, const char* export_id = nullptr) {
  stats::Table table({"platform", std::string("mean (") + unit + ")",
                      "stddev", "note"});
  for (const auto& bar : bars) {
    if (bar.excluded) {
      table.add_row({bar.platform, "-", "-",
                     "excluded: " + bar.exclusion_reason});
    } else {
      table.add_row({bar.platform, stats::Table::num(bar.mean, precision),
                     stats::Table::num(bar.stddev, precision), ""});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  if (export_id != nullptr) {
    note_export(core::export_bars(export_id, bars, unit));
  }
}

inline void print_cdfs(const std::vector<core::CdfSeries>& series,
                       const char* export_id = nullptr) {
  stats::Table table({"platform", "p10 (ms)", "p50 (ms)", "p90 (ms)",
                      "p99 (ms)"});
  for (const auto& s : series) {
    table.add_row({s.platform, stats::Table::num(s.samples_ms.percentile(10)),
                   stats::Table::num(s.samples_ms.percentile(50)),
                   stats::Table::num(s.samples_ms.percentile(90)),
                   stats::Table::num(s.samples_ms.percentile(99))});
  }
  std::printf("%s\n", table.to_text().c_str());
  // Compact CDF series (10 points each), the figure's actual content.
  for (const auto& s : series) {
    std::printf("cdf %-24s", s.platform.c_str());
    for (const auto& pt : s.samples_ms.cdf(10)) {
      std::printf(" %.0fms:%.2f", pt.value, pt.fraction);
    }
    std::printf("\n");
  }
  std::printf("\n");
  if (export_id != nullptr) {
    note_export(core::export_cdfs(export_id, series));
  }
}

inline void print_curves(const std::vector<core::Curve>& curves,
                         const char* x_label, const char* y_label,
                         bool x_as_log2 = false,
                         const char* export_id = nullptr) {
  std::printf("series: %s -> %s\n", x_label, y_label);
  for (const auto& c : curves) {
    std::printf("%-18s", c.platform.c_str());
    for (std::size_t i = 0; i < c.x.size(); ++i) {
      if (x_as_log2) {
        std::printf(" 2^%.0f:%.1f", std::log2(c.x[i]), c.y[i]);
      } else {
        std::printf(" %.0f:%.0f", c.x[i], c.y[i]);
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
  if (export_id != nullptr) {
    note_export(core::export_curves(export_id, curves, x_label, y_label));
  }
}

}  // namespace benchutil
