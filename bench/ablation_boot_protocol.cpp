// Ablation 5: boot-protocol sweep over one fixed VMM body. Isolates the
// firmware/kernel-load choices of Section 2.1 from everything else.
#include "bench_util.h"
#include "hostk/host_kernel.h"
#include "vmm/vm.h"

int main() {
  benchutil::print_header(
      "Ablation - boot protocol x kernel image, one VMM body",
      "Same minimal VMM (Firecracker-like init costs, 7 devices), varying\n"
      "only the boot protocol and the kernel image format. Shows why\n"
      "'direct 64-bit boot' does not imply fast end-to-end boot when the\n"
      "image is an uncompressed vmlinux (Conclusion 5).");
  hostk::HostKernel kernel;
  sim::Rng rng(77);

  struct Variant {
    const char* label;
    vmm::BootProtocol protocol;
    vmm::GuestKernel image;
  };
  const Variant variants[] = {
      {"bios + bzImage", vmm::BootProtocol::kBios,
       vmm::GuestKernelCatalog::ubuntu_generic()},
      {"qboot + bzImage", vmm::BootProtocol::kQboot,
       vmm::GuestKernelCatalog::ubuntu_generic()},
      {"direct64 + bzImage", vmm::BootProtocol::kLinux64Direct,
       vmm::GuestKernelCatalog::ubuntu_generic()},
      {"direct64 + vmlinux", vmm::BootProtocol::kLinux64Direct,
       vmm::GuestKernelCatalog::uncompressed_vmlinux()},
      {"microvm + bzImage", vmm::BootProtocol::kMicroVm,
       vmm::GuestKernelCatalog::ubuntu_generic()},
      {"direct64 + osv", vmm::BootProtocol::kLinux64Direct,
       vmm::GuestKernelCatalog::osv_kernel()},
  };

  std::vector<core::Bar> bars;
  for (const auto& v : variants) {
    vmm::VmmSpec spec = vmm::VmmCatalog::firecracker();
    spec.name = v.label;
    spec.protocol = v.protocol;
    spec.kernel = v.image;
    vmm::Vm vm(spec, kernel);
    stats::Summary ms;
    for (int i = 0; i < 100; ++i) {
      ms.add(sim::to_millis(vm.boot_timeline().run(rng).total));
    }
    bars.push_back({v.label, ms.mean(), ms.stddev(), false, ""});
  }
  benchutil::print_bars(bars, "ms", 1);
  return 0;
}
