// Figure 5: ffmpeg H.264->H.265 re-encode, 16 threads, per-platform time.
// Plus Finding 1's companion table: sysbench CPU prime events/s (parity).
#include <cmath>

#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 5 - ffmpeg video re-encode (CPU bound)",
      "Re-encoding a 1080p 30MB video from H.264 to H.265, preset `slower`,\n"
      "16 threads. Time in ms per platform; mean +- stddev over 10 runs.\n"
      "Expected shape: ~65000 ms everywhere, OSv a severe outlier "
      "(custom scheduler).");
  benchutil::print_bars(core::figure5_ffmpeg(), "ms", 0, "fig05_ffmpeg");

  benchutil::print_header(
      "Finding 1 - sysbench CPU prime verification",
      "Single-threaded prime check. Expected: near-identical events/s on\n"
      "every platform (basic CPU work is never virtualization-bound).");
  benchutil::print_bars(core::finding1_sysbench_cpu(), "events/s", 0, "finding1_sysbench_cpu");
  return 0;
}
