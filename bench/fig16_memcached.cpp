// Figure 16: Memcached under YCSB workload A.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 16 - Memcached YCSB (workload A) throughput",
      "50/50 read/update mix, zipfian keys, 32 client threads (kops/s over\n"
      "5 runs). Expected shape: containers (esp. LXC) on top, hypervisors\n"
      "lower with newer ones worse, Kata surprisingly low, gVisor poor\n"
      "(network stack).");
  benchutil::print_bars(core::figure16_memcached(), "kops/s", 1, "fig16_memcached");
  return 0;
}
