// Figure 8: STREAM COPY sustained memory bandwidth.
#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Figure 8 - STREAM COPY throughput",
      "a[i] = b[i] over a 2.2 GiB allocation, 16 bytes per iteration, no\n"
      "floating point. Average of per-run maxima over 10 runs (MB/s).\n"
      "Expected shape: hypervisors (esp. Firecracker) below native;\n"
      "containers, Kata and OSv/QEMU on par.");
  benchutil::print_bars(core::figure8_stream(), "MB/s", 0, "fig08_stream");
  return 0;
}
