// Ablation 6: HAP with vs without EPSS weighting. Does the paper's
// extension change any platform's relative standing?
#include <algorithm>

#include "bench_util.h"

int main() {
  benchutil::print_header(
      "Ablation - original HAP (breadth) vs extended HAP (EPSS-weighted)",
      "Rank platforms under both metrics; rank shifts mark platforms whose\n"
      "host-interface skews toward high-exploitability subsystems.");
  auto scores = core::figure18_hap();

  auto by_breadth = scores;
  std::sort(by_breadth.begin(), by_breadth.end(),
            [](const auto& a, const auto& b) {
              return a.hap_breadth > b.hap_breadth;
            });
  auto by_extended = scores;
  std::sort(by_extended.begin(), by_extended.end(),
            [](const auto& a, const auto& b) {
              return a.extended_hap > b.extended_hap;
            });

  stats::Table table({"rank", "by breadth", "fns", "by extended HAP", "score",
                      "avg EPSS/fn"});
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const auto& b = by_breadth[i];
    const auto& e = by_extended[i];
    table.add_row({std::to_string(i + 1), b.platform,
                   std::to_string(b.distinct_functions), e.platform,
                   stats::Table::num(e.extended_hap, 2),
                   stats::Table::num(e.extended_hap /
                                         static_cast<double>(
                                             e.distinct_functions),
                                     4)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "Finding 28 caveat: neither variant captures defense-in-depth. Kata\n"
      "and gVisor rank 'wide' here yet interpose an extra boundary that\n"
      "the HAP cannot see.\n");
  return 0;
}
