// Fleet scenario harness: the consolidation questions the per-figure
// benches cannot ask.
//
// Runs the three built-in scenarios — a 64-tenant serverless cold-start
// storm across four platform types, a density sweep that packs hypervisor
// tenants until the host runs out of RAM (with and without KSM), and a
// steady-state mixed-platform fleet — each against a fresh HostSystem so
// output is byte-identical for identical seeds, then shards the storm
// across a 4-host fleet::Cluster under every placement policy.
//
// --threads N runs the cluster and autoscale sections through the
// engine's parallel execution mode. Output is byte-identical at every
// thread count — CI's determinism job diffs this harness across
// --threads 1/2/8.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "platforms/platform.h"
#include "core/export.h"
#include "core/host_system.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/placement.h"
#include "fleet/scenario.h"

namespace {

fleet::FleetReport run_fresh(const fleet::Scenario& scenario) {
  core::HostSystem host;  // fresh host: cold page cache, pristine ftrace
  fleet::FleetEngine engine(host);
  return engine.run(scenario);
}

void print_report(const fleet::FleetReport& report) {
  std::printf("%s\n\n", report.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "fleet_scenarios: --threads must be >= 1\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: fleet_scenarios [--threads N]\n");
      return 2;
    }
  }

  benchutil::print_header(
      "fleet scenarios",
      "Multi-tenant consolidation on one shared host: cold-start storm,\n"
      "density sweep to first OOM, and a steady-state mixed fleet.");

  // --- 1. Serverless cold-start storm -------------------------------------
  const auto storm = fleet::Scenario::coldstart_storm(64);
  const auto storm_report = run_fresh(storm);
  std::printf("--- %s: %d tenants, arrivals within %.0f ms ---\n",
              storm.name.c_str(), storm.tenant_count,
              sim::to_millis(storm.arrival_window));
  print_report(storm_report);
  benchutil::note_export(
      core::export_cdfs("fleet_coldstart_storm", storm_report.boot_cdfs()));

  // --- 2. Density sweep to first OOM --------------------------------------
  auto sweep = fleet::Scenario::density_sweep(256);
  // Arrivals must outpace teardowns or the wall is never reached: early
  // tenants would free their RAM before the ramp ends.
  sweep.arrival_window = sim::millis(250);
  const auto with_ksm = run_fresh(sweep);
  sweep.enable_ksm = false;
  const auto without_ksm = run_fresh(sweep);
  std::string mix_names;
  for (const auto& share : sweep.platform_mix) {
    if (!mix_names.empty()) {
      mix_names += "/";
    }
    mix_names += platforms::platform_id_name(share.id);
  }
  std::printf("--- %s: pack %s guests until RAM runs out ---\n",
              sweep.name.c_str(), mix_names.c_str());
  std::printf("admitted with KSM    : %d tenants (density gain %.2fx)\n",
              with_ksm.admitted, with_ksm.ksm.density_gain);
  std::printf("admitted without KSM : %d tenants\n\n", without_ksm.admitted);
  print_report(with_ksm);

  // --- 3. Steady-state mixed-platform fleet --------------------------------
  const auto mix = fleet::Scenario::steady_state_mix(48);
  const auto mix_report = run_fresh(mix);
  std::printf("--- %s: Poisson arrivals, all workload classes ---\n",
              mix.name.c_str());
  print_report(mix_report);

  // --- 4. Cluster placement-policy sweep -----------------------------------
  // The same storm sharded across 4 hosts: policy ranks the hosts, the
  // admission walk spills refusals to the next candidate, the per-host
  // engine mechanism decides what everything costs.
  bool exported_cluster_cdf = false;
  for (const auto kind : fleet::all_placement_kinds()) {
    auto cluster_scenario = fleet::Scenario::cluster_storm(128, 4, kind);
    cluster_scenario.threads = threads;
    fleet::Cluster cluster(cluster_scenario.cluster);
    const auto report = cluster.run(cluster_scenario);
    std::printf("--- %s across %d hosts, placement %s ---\n",
                cluster_scenario.name.c_str(),
                cluster_scenario.cluster.host_count,
                fleet::placement_kind_name(kind).c_str());
    print_report(report);
    if (!exported_cluster_cdf) {
      benchutil::note_export(core::export_cdfs("fleet_cluster_storm",
                                               {report.cluster_boot_cdf()}));
      exported_cluster_cdf = true;
    }
  }

  // --- 5. Autoscaled storm vs fixed topology --------------------------------
  // A RAM-tight ramp on 2 hosts that may grow to 4: the watermark
  // autoscaler adds hosts while pressure builds and drains them once the
  // storm subsides, re-placing drained tenants through placement +
  // admission. Deterministic like everything else here.
  auto scaled = fleet::Scenario::autoscale_storm(192, 2, 4);
  scaled.threads = threads;
  scaled.guest_ram_bytes = 2048ull << 20;
  scaled.cluster.ram_bytes = 24ull << 30;
  auto fixed = scaled;
  fixed.autoscale.enabled = false;
  fleet::Cluster fixed_cluster(fixed.cluster);
  const auto fixed_report = fixed_cluster.run(fixed);
  fleet::Cluster scaled_cluster(scaled.cluster);
  const auto scaled_report = scaled_cluster.run(scaled);
  std::printf("--- %s: %d tenants, %d hosts fixed vs autoscale to %d ---\n",
              scaled.name.c_str(), scaled.tenant_count,
              scaled.cluster.host_count, scaled.autoscale.max_hosts);
  std::printf("fixed topology   : %d admitted, %d rejected\n",
              fixed_report.admitted, fixed_report.rejected);
  std::printf("with autoscaling : %d admitted, %d rejected, final %d hosts\n\n",
              scaled_report.admitted, scaled_report.rejected,
              scaled_report.final_host_count);
  print_report(scaled_report);

  // --- 6. Crash-recovery storm ----------------------------------------------
  // Chaos composed with autoscaling: host 0 crashes mid-ramp on a
  // RAM-tight fleet, the victims re-arrive on the survivors, and the
  // re-admission surge (not ambient load) trips the scale-out watermark.
  // The report grows a recovery section with per-fault verdicts.
  auto crash = fleet::Scenario::crash_recovery(192, 2, 4);
  crash.threads = threads;
  fleet::Cluster crash_cluster(crash.cluster);
  const auto crash_report = crash_cluster.run(crash);
  std::printf("--- %s: %d tenants, host 0 crashes at %.0f ms ---\n",
              crash.name.c_str(), crash.tenant_count,
              sim::to_millis(crash.faults.timed[0].time));
  std::printf("crash victims %d, re-admitted %d (%.0f%%), lost %d\n\n",
              crash_report.crash_victims, crash_report.crash_readmitted,
              100.0 * crash_report.readmission_fraction(),
              crash_report.crash_lost);
  print_report(crash_report);

  // --- 7. Syscall-program storm ---------------------------------------------
  // Most tenants interpret a built-in syscall program through the
  // HostKernel instead of drawing statistical phases; a statistical control
  // share rides along on the same hosts. The report grows a per-program
  // rollup with per-op-class p50/p99 and SLO verdicts, and must stay
  // byte-identical across runs and thread counts like everything else.
  auto programs = fleet::Scenario::program_storm(160, 2);
  programs.threads = threads;
  fleet::Cluster program_cluster(programs.cluster);
  const auto program_report = program_cluster.run(programs);
  std::printf("--- %s: %d tenants, built-in programs over the HostKernel ---\n",
              programs.name.c_str(), programs.tenant_count);
  print_report(program_report);

  // --- 8. Degrade storm ------------------------------------------------------
  // The degrade-family faults over interpreted programs: a disk running at
  // 1/6 throughput, a KSM unmerge storm spiking resident memory, a partial
  // partition cutting one host pair, and a mid-pressure crash — with per-op
  // retry/backoff on, so ops that would blow their SLO time out and
  // re-issue instead of completing late. The report grows a degraded:
  // section with per-fault verdicts, and the no-retry control shows what
  // the same schedule costs without graceful degradation.
  auto degraded = fleet::Scenario::degrade_storm(180, 3);
  degraded.threads = threads;
  fleet::Cluster degraded_cluster(degraded.cluster);
  const auto degraded_report = degraded_cluster.run(degraded);
  auto no_retry = degraded;
  no_retry.op_max_retries = 0;
  no_retry.op_backoff_base_ms = 0;
  fleet::Cluster no_retry_cluster(no_retry.cluster);
  const auto no_retry_report = no_retry_cluster.run(no_retry);
  std::printf("--- %s: %d tenants, degrade faults + per-op retry/backoff ---\n",
              degraded.name.c_str(), degraded.tenant_count);
  std::printf("with retries   : %d retries, %d give-ups, %d lost to crash\n",
              degraded_report.op_retries, degraded_report.op_give_ups,
              degraded_report.crash_lost);
  std::printf("no-retry control: %d retries, %d give-ups, %d lost to crash\n\n",
              no_retry_report.op_retries, no_retry_report.op_give_ups,
              no_retry_report.crash_lost);
  print_report(degraded_report);

  return 0;
}
