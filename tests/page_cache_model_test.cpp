// Differential test: the intrusive open-addressing PageCache against a
// naive reference LRU (std::list + std::unordered_map, the pre-optimization
// implementation). The optimized cache must agree *exactly* — hit/miss
// counters, occupancy, and per-key residency (which pins down the eviction
// order) — over randomized workloads with heavy eviction pressure.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <random>
#include <unordered_map>

#include "hostk/page_cache.h"

namespace {

using hostk::PageCache;
using hostk::PageKey;
using hostk::PageKeyHash;

/// Reference model: verbatim port of the original std::list-based cache.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::uint64_t capacity_bytes)
      : capacity_pages_(capacity_bytes / PageCache::kPageSize) {}

  bool access(PageKey key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  void insert(PageKey key) {
    if (capacity_pages_ == 0) {
      return;
    }
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
    while (map_.size() > capacity_pages_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  std::uint64_t access_range(std::uint64_t file, std::uint64_t offset,
                             std::uint64_t len) {
    if (len == 0) {
      return 0;
    }
    const std::uint64_t first = offset / PageCache::kPageSize;
    const std::uint64_t last = (offset + len - 1) / PageCache::kPageSize;
    std::uint64_t miss_count = 0;
    for (std::uint64_t p = first; p <= last; ++p) {
      const PageKey key{file, p};
      if (!access(key)) {
        ++miss_count;
        insert(key);
      }
    }
    return miss_count;
  }

  bool resident(PageKey key) const { return map_.count(key) > 0; }
  void drop_caches() {
    lru_.clear();
    map_.clear();
  }

  std::uint64_t size_pages() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::uint64_t capacity_pages_;
  std::list<PageKey> lru_;
  std::unordered_map<PageKey, std::list<PageKey>::iterator, PageKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

constexpr std::uint64_t kFiles = 4;
constexpr std::uint64_t kPagesPerFile = 32;

/// Full-state agreement: counters plus residency of every key in the
/// universe (residency after eviction pressure pins down the LRU order).
void expect_same_state(const PageCache& cache, const ReferenceLru& ref) {
  ASSERT_EQ(cache.hits(), ref.hits());
  ASSERT_EQ(cache.misses(), ref.misses());
  ASSERT_EQ(cache.size_pages(), ref.size_pages());
  for (std::uint64_t f = 0; f < kFiles; ++f) {
    for (std::uint64_t p = 0; p < kPagesPerFile; ++p) {
      ASSERT_EQ(cache.resident(f, p * PageCache::kPageSize, 1),
                ref.resident(PageKey{f, p}))
          << "file " << f << " page " << p;
    }
  }
}

void run_differential(std::uint64_t capacity_bytes, std::uint32_t seed,
                      int ops) {
  PageCache cache(capacity_bytes);
  ReferenceLru ref(capacity_bytes);
  std::mt19937 rng(seed);
  const auto rand_file = [&] { return rng() % kFiles; };
  const auto rand_page = [&] { return rng() % kPagesPerFile; };
  for (int i = 0; i < ops; ++i) {
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2: {  // single-page access
        const PageKey key{rand_file(), rand_page()};
        ASSERT_EQ(cache.access(key), ref.access(key));
        break;
      }
      case 3:
      case 4: {  // insert / refresh
        const PageKey key{rand_file(), rand_page()};
        cache.insert(key);
        ref.insert(key);
        break;
      }
      case 5:
      case 6:
      case 7:
      case 8: {  // ranged access, may span far more pages than capacity
        const std::uint64_t file = rand_file();
        const std::uint64_t offset =
            rand_page() * PageCache::kPageSize + rng() % 512;
        const std::uint64_t len = rng() % (16 * PageCache::kPageSize);
        ASSERT_EQ(cache.access_range(file, offset, len),
                  ref.access_range(file, offset, len));
        break;
      }
      default: {  // occasional full drop
        if (rng() % 8 == 0) {
          cache.drop_caches();
          ref.drop_caches();
        }
        break;
      }
    }
    expect_same_state(cache, ref);
  }
}

TEST(PageCacheModelTest, TinyCacheHeavyEviction) {
  run_differential(8 * PageCache::kPageSize, 0xC0FFEE, 1500);
}

TEST(PageCacheModelTest, MidCacheMixedWorkload) {
  run_differential(24 * PageCache::kPageSize, 0xBEEF, 1500);
}

TEST(PageCacheModelTest, CacheLargerThanUniverse) {
  run_differential(4096 * PageCache::kPageSize, 0xFACADE, 800);
}

TEST(PageCacheModelTest, ZeroCapacityAlwaysMisses) {
  run_differential(0, 0xD15EA5E, 500);
}

TEST(PageCacheModelTest, CapacityRoundsDownToWholePages) {
  // 2.5 pages of capacity behaves exactly like 2 pages.
  run_differential(2 * PageCache::kPageSize + PageCache::kPageSize / 2,
                   0xA11CE, 800);
}

}  // namespace
