// Tests for the network-path models (Figures 11 & 12 building blocks).
#include <gtest/gtest.h>

#include <vector>

#include "hostk/host_kernel.h"
#include "hostk/nic.h"
#include "net/net_path.h"
#include "sim/rng.h"
#include "stats/sample_set.h"
#include "stats/summary.h"

namespace {

using net::NetPath;
using net::NetPathCatalog;
using net::NetPathSpec;

struct Fixture {
  hostk::HostKernel kernel;
  hostk::Nic nic;
  sim::Rng rng{101};
};

double mean_gbps(const NetPathSpec& spec, Fixture& f, int runs = 30) {
  NetPath path(spec, f.kernel);
  stats::Summary s;
  for (int i = 0; i < runs; ++i) {
    s.add(path.iperf_throughput_bps(f.nic, f.rng) / 1e9);
  }
  return s.mean();
}

TEST(NetPathTest, NativeMatchesPaperBaseline) {
  Fixture f;
  // Paper: native mean 37.28 Gbit/s.
  EXPECT_NEAR(mean_gbps(NetPathCatalog::native(), f), 37.28, 0.8);
}

TEST(NetPathTest, OsvQemuSecondBest) {
  Fixture f;
  const double osv = mean_gbps(NetPathCatalog::osv_qemu(), f);
  const double native = mean_gbps(NetPathCatalog::native(), f);
  EXPECT_NEAR(osv, 36.36, 0.8);
  EXPECT_LT(osv, native);
}

TEST(NetPathTest, QemuVsOsvGap) {
  Fixture f;
  const double osv = mean_gbps(NetPathCatalog::osv_qemu(), f);
  const double qemu = mean_gbps(NetPathCatalog::qemu_tap(), f);
  // Paper: OSv outperforms plain QEMU by 25.7%.
  EXPECT_NEAR(osv / qemu, 1.257, 0.05);
}

TEST(NetPathTest, OsvFirecrackerSmallGap) {
  Fixture f;
  const double osv_fc = mean_gbps(NetPathCatalog::osv_firecracker(), f);
  const double fc = mean_gbps(NetPathCatalog::firecracker_tap(), f);
  // Paper: only a 6.53% increase.
  EXPECT_NEAR(osv_fc / fc, 1.0653, 0.03);
}

TEST(NetPathTest, BridgePenaltyAroundTenPercent) {
  Fixture f;
  const double native = mean_gbps(NetPathCatalog::native(), f);
  const double docker = mean_gbps(NetPathCatalog::docker_bridge(), f);
  const double lxc = mean_gbps(NetPathCatalog::lxc_bridge(), f);
  EXPECT_NEAR(1.0 - docker / native, 0.0984, 0.02);
  EXPECT_NEAR(1.0 - lxc / native, 0.0919, 0.02);
}

TEST(NetPathTest, HypervisorPenaltyAroundQuarter) {
  Fixture f;
  const double native = mean_gbps(NetPathCatalog::native(), f);
  for (const auto& spec :
       {NetPathCatalog::qemu_tap(), NetPathCatalog::firecracker_tap()}) {
    const double hv = mean_gbps(spec, f);
    EXPECT_NEAR(1.0 - hv / native, 0.25, 0.05) << spec.name;
  }
}

TEST(NetPathTest, CloudHypervisorBelowQemu) {
  Fixture f;
  EXPECT_LT(mean_gbps(NetPathCatalog::cloud_hypervisor_tap(), f),
            mean_gbps(NetPathCatalog::qemu_tap(), f) * 0.93);
}

TEST(NetPathTest, KataEqualsWeakestLinkQemu) {
  Fixture f;
  const double kata = mean_gbps(NetPathCatalog::kata_bridge_tap(), f);
  const double qemu = mean_gbps(NetPathCatalog::qemu_tap(), f);
  EXPECT_NEAR(kata / qemu, 1.0, 0.05);
}

TEST(NetPathTest, GvisorExtremeOutlier) {
  Fixture f;
  const double gv = mean_gbps(NetPathCatalog::gvisor_netstack(), f);
  EXPECT_LT(gv, 5.0);  // single-digit Gbit/s
}

stats::SampleSet rtt_samples(const NetPathSpec& spec, Fixture& f, int n = 400) {
  NetPath path(spec, f.kernel);
  stats::SampleSet s;
  for (int i = 0; i < n; ++i) {
    s.add(sim::to_micros(path.round_trip(f.nic, 128, f.rng)));
  }
  return s;
}

TEST(NetPathTest, BridgesHaveLowestP90) {
  Fixture f;
  const double docker_p90 = rtt_samples(NetPathCatalog::docker_bridge(), f).percentile(90);
  const double qemu_p90 = rtt_samples(NetPathCatalog::qemu_tap(), f).percentile(90);
  EXPECT_LT(docker_p90, qemu_p90);
}

TEST(NetPathTest, KataLatencyNearBridges) {
  Fixture f;
  const double kata_p90 = rtt_samples(NetPathCatalog::kata_bridge_tap(), f).percentile(90);
  const double qemu_p90 = rtt_samples(NetPathCatalog::qemu_tap(), f).percentile(90);
  EXPECT_LT(kata_p90, qemu_p90);
}

TEST(NetPathTest, GvisorP90ThreeToFourTimesCompetitors) {
  Fixture f;
  const double gv = rtt_samples(NetPathCatalog::gvisor_netstack(), f).percentile(90);
  const double docker = rtt_samples(NetPathCatalog::docker_bridge(), f).percentile(90);
  EXPECT_GT(gv / docker, 2.5);
  EXPECT_LT(gv / docker, 6.0);
}

TEST(NetPathTest, OsvSlightlyBetterLatencyThanHypervisors) {
  Fixture f;
  const double osv = rtt_samples(NetPathCatalog::osv_qemu(), f).percentile(90);
  const double qemu = rtt_samples(NetPathCatalog::qemu_tap(), f).percentile(90);
  EXPECT_LT(osv, qemu);
}

TEST(NetPathTest, TrafficRecordingRequiresTracing) {
  Fixture f;
  NetPath path(NetPathCatalog::docker_bridge(), f.kernel);
  path.record_traffic(1 << 20, f.nic, f.rng);
  EXPECT_EQ(f.kernel.ftrace().distinct_functions(), 0u);
}

TEST(NetPathTest, BridgeTrafficHitsBridgeFunctions) {
  Fixture f;
  NetPath path(NetPathCatalog::docker_bridge(), f.kernel);
  f.kernel.ftrace().start();
  path.record_traffic(1 << 20, f.nic, f.rng);
  const auto& reg = f.kernel.registry();
  EXPECT_GT(f.kernel.ftrace().count_of(reg.id_of("br_handle_frame")), 0u);
  EXPECT_GT(f.kernel.ftrace().count_of(reg.id_of("veth_xmit")), 0u);
}

TEST(NetPathTest, TapTrafficHitsVhostAndIoeventfd) {
  Fixture f;
  NetPath path(NetPathCatalog::qemu_tap(), f.kernel);
  f.kernel.ftrace().start();
  path.record_traffic(1 << 20, f.nic, f.rng);
  const auto& reg = f.kernel.registry();
  EXPECT_GT(f.kernel.ftrace().count_of(reg.id_of("vhost_net_tx")), 0u);
  EXPECT_GT(f.kernel.ftrace().count_of(reg.id_of("ioeventfd_write")), 0u);
}

TEST(NetPathTest, NetstackTrafficUsesPlainReadWrite) {
  Fixture f;
  NetPath path(NetPathCatalog::gvisor_netstack(), f.kernel);
  f.kernel.ftrace().start();
  path.record_traffic(1 << 20, f.nic, f.rng);
  const auto& reg = f.kernel.registry();
  EXPECT_GT(f.kernel.ftrace().count_of(reg.id_of("vfs_read")), 0u);
  // Netstack terminates TCP in user space: no host TCP functions.
  EXPECT_EQ(f.kernel.ftrace().count_of(reg.id_of("tcp_sendmsg")), 0u);
}

TEST(NetPathTest, SenderCpuCostScalesWithBytes) {
  Fixture f;
  NetPath path(NetPathCatalog::native(), f.kernel);
  EXPECT_GT(path.sender_cpu_cost(1 << 20, f.nic),
            path.sender_cpu_cost(1 << 10, f.nic));
}

}  // namespace
