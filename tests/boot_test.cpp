// Tests for boot timelines: device models, boot protocols, container
// runtimes and the hypervisor/OSv orderings of Figures 13-15.
#include <gtest/gtest.h>

#include "container/init_system.h"
#include "container/runtime.h"
#include "core/boot.h"
#include "hostk/host_kernel.h"
#include "sim/rng.h"
#include "stats/sample_set.h"
#include "vmm/device_model.h"
#include "vmm/guest_boot.h"
#include "vmm/vm.h"

namespace {

using container::ContainerRuntime;
using container::InitKind;
using container::RuntimeCatalog;
using core::BootTimeline;
using vmm::BootProtocol;
using vmm::DeviceModelCatalog;
using vmm::GuestKernelCatalog;
using vmm::Vm;
using vmm::VmmCatalog;

double mean_boot_ms(const BootTimeline& t) {
  return sim::to_millis(t.mean_total());
}

TEST(BootTimelineTest, StagesAccumulate) {
  BootTimeline t;
  t.stage("a", sim::DurationDist::constant(sim::millis(10)));
  t.stage("b", sim::DurationDist::constant(sim::millis(5)));
  sim::Rng rng(1);
  const auto result = t.run(rng);
  EXPECT_EQ(result.total, sim::millis(15));
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_EQ(result.stages[0].name, "a");
  EXPECT_EQ(t.mean_total(), sim::millis(15));
}

TEST(BootTimelineTest, AppendComposes) {
  BootTimeline a, b;
  a.stage("a", sim::DurationDist::constant(1));
  b.stage("b", sim::DurationDist::constant(2));
  a.append(b);
  EXPECT_EQ(a.stages().size(), 2u);
  EXPECT_EQ(a.mean_total(), 3);
}

TEST(DeviceModelTest, CountsMatchPaper) {
  EXPECT_GE(DeviceModelCatalog::qemu_full().device_count(), 40u);
  EXPECT_EQ(DeviceModelCatalog::firecracker().device_count(), 7u);
  EXPECT_EQ(DeviceModelCatalog::cloud_hypervisor().device_count(), 16u);
}

TEST(DeviceModelTest, FirecrackerTopologyFrozen) {
  const auto fc = DeviceModelCatalog::firecracker();
  EXPECT_TRUE(fc.topology_frozen());
  EXPECT_FALSE(fc.supports_extra_disk());  // Figure 9 exclusion
  EXPECT_TRUE(DeviceModelCatalog::qemu_full().supports_extra_disk());
}

TEST(DeviceModelTest, CloudHypervisorFeatures) {
  const auto ch = DeviceModelCatalog::cloud_hypervisor();
  EXPECT_TRUE(ch.supports_vhost_user());
  EXPECT_TRUE(ch.supports_memory_hotplug());
  EXPECT_TRUE(ch.supports_vcpu_hotplug());
  EXPECT_FALSE(DeviceModelCatalog::firecracker().supports_vhost_user());
}

TEST(DeviceModelTest, MostCloudHypervisorDevicesAreParavirtualized) {
  const auto ch = DeviceModelCatalog::cloud_hypervisor();
  const auto pv = ch.count_of_kind(vmm::DeviceKind::kVirtio) +
                  ch.count_of_kind(vmm::DeviceKind::kVhostUser);
  EXPECT_GT(pv, ch.device_count() / 2);
}

TEST(BootProtocolTest, DirectBootIsCheapest) {
  const double bios = mean_boot_ms(boot_protocol_timeline(BootProtocol::kBios));
  const double qboot = mean_boot_ms(boot_protocol_timeline(BootProtocol::kQboot));
  const double direct =
      mean_boot_ms(boot_protocol_timeline(BootProtocol::kLinux64Direct));
  EXPECT_LT(direct, qboot);
  EXPECT_LT(qboot, bios);
}

TEST(GuestKernelTest, UncompressedVmlinuxLoadsSlowly) {
  const auto bz = guest_kernel_timeline(GuestKernelCatalog::ubuntu_generic(),
                                        BootProtocol::kBios);
  const auto vmlinux = guest_kernel_timeline(
      GuestKernelCatalog::uncompressed_vmlinux(), BootProtocol::kLinux64Direct);
  // The 46 MiB vmlinux image copy dominates; the bzImage pays decompress
  // but loads 4x less data.
  EXPECT_GT(mean_boot_ms(vmlinux), mean_boot_ms(bz));
}

TEST(GuestKernelTest, StrippedKernelsBootFaster) {
  const auto generic = guest_kernel_timeline(GuestKernelCatalog::ubuntu_generic(),
                                             BootProtocol::kQboot);
  const auto kata = guest_kernel_timeline(GuestKernelCatalog::kata_stripped(),
                                          BootProtocol::kQboot);
  EXPECT_LT(mean_boot_ms(kata), mean_boot_ms(generic) * 0.7);
}

TEST(InitSystemTest, SystemdSlowerThanTini) {
  const double tini = mean_boot_ms(init_system_timeline(InitKind::kTini));
  const double systemd = mean_boot_ms(init_system_timeline(InitKind::kSystemd));
  EXPECT_GT(systemd, 400.0);
  EXPECT_LT(tini, 10.0);
}

// --- Figure 14: hypervisor boot ordering -------------------------------

struct HypervisorBoot {
  const char* name;
  double mean_ms;
};

class HypervisorBootFixture : public ::testing::Test {
 protected:
  double boot_ms(const vmm::VmmSpec& spec) {
    hostk::HostKernel kernel;
    Vm vm(spec, kernel);
    return mean_boot_ms(vm.boot_timeline());
  }
};

TEST_F(HypervisorBootFixture, CloudHypervisorFastest) {
  const double ch = boot_ms(VmmCatalog::cloud_hypervisor());
  EXPECT_LT(ch, boot_ms(VmmCatalog::qemu_kvm()));
  EXPECT_LT(ch, boot_ms(VmmCatalog::qemu_qboot()));
  EXPECT_LT(ch, boot_ms(VmmCatalog::firecracker()));
  EXPECT_LT(ch, boot_ms(VmmCatalog::qemu_microvm()));
}

TEST_F(HypervisorBootFixture, FirecrackerAround350ms) {
  // Finding 14 / Conclusion 5: Firecracker is NOT the fastest; its
  // end-to-end boot lands around 350 ms.
  EXPECT_NEAR(boot_ms(VmmCatalog::firecracker()), 350.0, 60.0);
}

TEST_F(HypervisorBootFixture, MicroVmUnexpectedlySlowest) {
  const double uvm = boot_ms(VmmCatalog::qemu_microvm());
  EXPECT_GT(uvm, boot_ms(VmmCatalog::qemu_kvm()));
  EXPECT_GT(uvm, boot_ms(VmmCatalog::firecracker()));
}

TEST_F(HypervisorBootFixture, QbootBeatsSeaBios) {
  EXPECT_LT(boot_ms(VmmCatalog::qemu_qboot()), boot_ms(VmmCatalog::qemu_kvm()));
}

// --- Figure 15: OSv boot ordering inverts ------------------------------

TEST_F(HypervisorBootFixture, OsvOrderingIsOpposite) {
  const double osv_fc = boot_ms(VmmCatalog::osv_on_firecracker());
  const double osv_uvm = boot_ms(VmmCatalog::osv_on_qemu_microvm());
  const double osv_qemu = boot_ms(VmmCatalog::osv_on_qemu());
  EXPECT_LT(osv_fc, osv_uvm);
  EXPECT_LT(osv_uvm, osv_qemu);
}

TEST_F(HypervisorBootFixture, OsvBootsAsFastAsContainers) {
  // Finding 15: unikernels boot generally as fast as containers.
  EXPECT_LT(boot_ms(VmmCatalog::osv_on_firecracker()), 150.0);
}

// --- Figure 13: container boot -----------------------------------------

class ContainerBootFixture : public ::testing::Test {
 protected:
  double boot_ms(const container::RuntimeSpec& spec) {
    hostk::HostKernel kernel;
    ContainerRuntime rt(spec, kernel);
    return mean_boot_ms(rt.boot_timeline());
  }
};

TEST_F(ContainerBootFixture, DockerOciAround100ms) {
  EXPECT_NEAR(boot_ms(RuntimeCatalog::runc_oci()), 100.0, 35.0);
}

TEST_F(ContainerBootFixture, DaemonAddsQuarterSecond) {
  const double oci = boot_ms(RuntimeCatalog::runc_oci());
  const double daemon = boot_ms(RuntimeCatalog::docker_daemon());
  EXPECT_NEAR(daemon - oci, 250.0, 50.0);
}

TEST_F(ContainerBootFixture, LxcAround800msDueToSystemd) {
  EXPECT_NEAR(boot_ms(RuntimeCatalog::lxc()), 800.0, 120.0);
}

TEST_F(ContainerBootFixture, BootAdvancesClockAndTraces) {
  hostk::HostKernel kernel;
  ContainerRuntime rt(RuntimeCatalog::runc_oci(), kernel);
  sim::Clock clock;
  sim::Rng rng(3);
  kernel.ftrace().start();
  const auto result = rt.boot(clock, rng);
  EXPECT_EQ(clock.now(), result.total);
  const auto& reg = kernel.registry();
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("create_new_namespaces")), 0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("cgroup_attach_task")), 0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("seccomp_attach_filter")), 0u);
}

TEST_F(ContainerBootFixture, ExecJoinsNamespaces) {
  hostk::HostKernel kernel;
  ContainerRuntime rt(RuntimeCatalog::runc_oci(), kernel);
  sim::Clock clock;
  sim::Rng rng(4);
  kernel.ftrace().start();
  rt.exec_process(clock, rng);
  EXPECT_GT(clock.now(), 0);
  EXPECT_GT(kernel.ftrace().count_of(kernel.registry().id_of("pidns_install")),
            0u);
}

TEST(VmBootTest, KvmSetupTraced) {
  hostk::HostKernel kernel;
  Vm vm(VmmCatalog::qemu_kvm(), kernel);
  sim::Clock clock;
  sim::Rng rng(5);
  kernel.ftrace().start();
  vm.boot(clock, rng);
  EXPECT_TRUE(vm.booted());
  EXPECT_GT(clock.now(), 0);
  const auto& reg = kernel.registry();
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("kvm_vm_ioctl_create_vcpu")), 0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("vcpu_enter_guest")), 0u);
}

TEST(VmBootTest, BootCdfIsTight) {
  // 300 startups (the paper's protocol): the CDF should be monotonic and
  // reasonably tight (lognormal stages, ~10-15% spread).
  hostk::HostKernel kernel;
  Vm vm(VmmCatalog::cloud_hypervisor(), kernel);
  sim::Rng rng(6);
  stats::SampleSet samples;
  for (int i = 0; i < 300; ++i) {
    samples.add(sim::to_millis(vm.boot_timeline().run(rng).total));
  }
  EXPECT_LT(samples.summary().cv(), 0.15);
  const auto cdf = samples.cdf(50);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

}  // namespace
