// Tests for block paths and shared filesystems (Figures 9 & 10 building
// blocks), including the O_DIRECT/loop-device caching pitfall.
#include <gtest/gtest.h>

#include "hostk/block_device.h"
#include "hostk/host_kernel.h"
#include "hostk/page_cache.h"
#include "sim/rng.h"
#include "stats/summary.h"
#include "storage/block_path.h"
#include "storage/shared_fs.h"

namespace {

using storage::BlockPath;
using storage::BlockPathCatalog;
using storage::BlockPathSpec;
using storage::SharedFs;
using storage::SharedFsProtocol;

struct Fixture {
  hostk::HostKernel kernel;
  hostk::BlockDevice device;
  hostk::PageCache host_cache{1ull << 30};  // 1 GiB host page cache
  sim::Rng rng{77};

  BlockPath make(const BlockPathSpec& spec) {
    return BlockPath(spec, kernel, device, host_cache);
  }
};

double read_throughput_mbps(BlockPath& path, Fixture& f, bool direct,
                            int requests = 64) {
  // Sequential 128 KiB reads over a fresh extent (offset advances),
  // pipelined at libaio queue depth 16 as fio does.
  const std::uint64_t bs = 128 << 10;
  sim::Nanos total = 0;
  for (int i = 0; i < requests; ++i) {
    total += path.read(/*file=*/1, static_cast<std::uint64_t>(i) * bs, bs,
                       direct, f.rng, /*queue_depth=*/16);
  }
  const double bytes = static_cast<double>(bs) * requests;
  return bytes / sim::to_seconds(total) / 1e6;
}

TEST(SharedFsTest, NoneIsFree) {
  const auto fs = SharedFs::make(SharedFsProtocol::kNone);
  sim::Rng rng(1);
  EXPECT_EQ(fs.round_trips(1 << 20), 0u);
  EXPECT_EQ(fs.op_latency(1 << 20, rng), 0);
}

TEST(SharedFsTest, NinePFragmentsAtMsize) {
  const auto fs = SharedFs::make(SharedFsProtocol::kNineP);
  EXPECT_EQ(fs.round_trips(1), 1u);
  EXPECT_EQ(fs.round_trips(256 << 10), 1u);
  EXPECT_EQ(fs.round_trips((256 << 10) + 1), 2u);
}

TEST(SharedFsTest, VirtioFsCheaperThanNineP) {
  const auto ninep = SharedFs::make(SharedFsProtocol::kNineP);
  const auto vfs = SharedFs::make(SharedFsProtocol::kVirtioFs);
  sim::Rng rng(2);
  stats::Summary n, v;
  for (int i = 0; i < 200; ++i) {
    n.add(static_cast<double>(ninep.op_latency(128 << 10, rng)));
    v.add(static_cast<double>(vfs.op_latency(128 << 10, rng)));
  }
  EXPECT_GT(n.mean(), v.mean() * 2.5);
}

TEST(BlockPathTest, NativeDirectReadMatchesDevice) {
  Fixture f;
  auto path = f.make(BlockPathCatalog::native());
  const double mbps = read_throughput_mbps(path, f, /*direct=*/true);
  // Device: 3.3 GB/s sequential; 128k requests pay base latency each.
  EXPECT_GT(mbps, 1000.0);
  EXPECT_LT(mbps, 3300.0);
}

TEST(BlockPathTest, SecureContainersAtMostHalfNative) {
  Fixture f;
  auto native = f.make(BlockPathCatalog::native());
  const double native_mbps = read_throughput_mbps(native, f, true);
  for (const auto& spec :
       {BlockPathCatalog::kata_9p(), BlockPathCatalog::gvisor_gofer_9p()}) {
    f.host_cache.drop_caches();
    auto path = f.make(spec);
    const double mbps = read_throughput_mbps(path, f, true);
    EXPECT_LT(mbps, native_mbps * 0.55) << spec.name;
  }
}

TEST(BlockPathTest, KataVirtioFsOnParWithQemu) {
  Fixture f;
  auto qemu = f.make(BlockPathCatalog::qemu_virtio_blk());
  auto kata_vfs = f.make(BlockPathCatalog::kata_virtio_fs());
  const double q = read_throughput_mbps(qemu, f, true);
  f.host_cache.drop_caches();
  const double k = read_throughput_mbps(kata_vfs, f, true);
  EXPECT_GT(k / q, 0.8);
}

TEST(BlockPathTest, CloudHypervisorPoorThroughputGoodLatency) {
  Fixture f;
  auto ch = f.make(BlockPathCatalog::cloud_hypervisor_virtio_blk());
  auto qemu = f.make(BlockPathCatalog::qemu_virtio_blk());
  // Throughput clearly below QEMU.
  const double ch_tp = read_throughput_mbps(ch, f, true);
  f.host_cache.drop_caches();
  const double q_tp = read_throughput_mbps(qemu, f, true);
  EXPECT_LT(ch_tp, q_tp * 0.75);
  // 4k randread latency better than QEMU (Finding 9 + Figure 10).
  stats::Summary ch_lat, q_lat;
  for (int i = 0; i < 300; ++i) {
    ch_lat.add(static_cast<double>(
        ch.read(2, static_cast<std::uint64_t>(i) * 7919 * 4096, 4096, true, f.rng)));
    q_lat.add(static_cast<double>(
        qemu.read(3, static_cast<std::uint64_t>(i) * 7919 * 4096, 4096, true, f.rng)));
  }
  EXPECT_LT(ch_lat.mean(), q_lat.mean());
}

TEST(BlockPathTest, KataNinePWorstRandreadLatency) {
  Fixture f;
  auto kata = f.make(BlockPathCatalog::kata_9p());
  auto native = f.make(BlockPathCatalog::native());
  stats::Summary k, n;
  for (int i = 0; i < 300; ++i) {
    k.add(static_cast<double>(
        kata.read(2, static_cast<std::uint64_t>(i) * 104729 * 4096, 4096, true, f.rng)));
    n.add(static_cast<double>(
        native.read(3, static_cast<std::uint64_t>(i) * 104729 * 4096, 4096, true, f.rng)));
  }
  EXPECT_GT(k.mean(), n.mean() * 1.8);
}

TEST(BlockPathTest, GvisorDirectFlagDoesNotPropagate) {
  Fixture f;
  auto gv = f.make(BlockPathCatalog::gvisor_gofer_9p());
  // First pass populates the host cache even though the guest asked for
  // O_DIRECT; second pass is served from the host cache (faster — the
  // artifact that forced the paper to exclude gVisor from Figure 10).
  const double first = read_throughput_mbps(gv, f, /*direct=*/true);
  const double second = read_throughput_mbps(gv, f, /*direct=*/true);
  EXPECT_GT(second, first * 1.25);
}

TEST(BlockPathTest, DropHostCacheRestoresDeviceSpeeds) {
  Fixture f;
  auto gv = f.make(BlockPathCatalog::gvisor_gofer_9p());
  read_throughput_mbps(gv, f, true);         // warm host cache
  gv.drop_host_cache();                      // paper's remedy between runs
  const double after_drop = read_throughput_mbps(gv, f, true);
  gv.drop_host_cache();
  const double cold = read_throughput_mbps(gv, f, true);
  EXPECT_NEAR(after_drop / cold, 1.0, 0.25);
}

TEST(BlockPathTest, NativeDirectBypassesHostCache) {
  Fixture f;
  auto native = f.make(BlockPathCatalog::native());
  const double first = read_throughput_mbps(native, f, true);
  const double second = read_throughput_mbps(native, f, true);
  // No cache effect for propagated O_DIRECT.
  EXPECT_NEAR(second / first, 1.0, 0.2);
}

TEST(BlockPathTest, BufferedReadUsesHostCache) {
  Fixture f;
  auto native = f.make(BlockPathCatalog::native());
  const double cold = read_throughput_mbps(native, f, /*direct=*/false);
  const double warm = read_throughput_mbps(native, f, /*direct=*/false);
  EXPECT_GT(warm, cold * 1.5);
}

TEST(BlockPathTest, WritesNoisierOnHypervisors) {
  Fixture f;
  auto native = f.make(BlockPathCatalog::native());
  auto qemu = f.make(BlockPathCatalog::qemu_virtio_blk());
  stats::Summary n, q;
  const std::uint64_t bs = 128 << 10;
  for (int i = 0; i < 400; ++i) {
    n.add(static_cast<double>(
        native.write(4, static_cast<std::uint64_t>(i) * bs, bs, true, f.rng)));
    q.add(static_cast<double>(
        qemu.write(5, static_cast<std::uint64_t>(i) * bs, bs, true, f.rng)));
  }
  EXPECT_GT(q.cv(), n.cv());
}

TEST(BlockPathTest, CapabilityFlagsMatchPaperExclusions) {
  EXPECT_FALSE(BlockPathCatalog::firecracker_virtio_blk().supports_extra_disk);
  EXPECT_FALSE(BlockPathCatalog::osv_zfs().supports_libaio);
  EXPECT_TRUE(BlockPathCatalog::native().supports_extra_disk);
  EXPECT_TRUE(BlockPathCatalog::native().supports_libaio);
}

TEST(BlockPathTest, NinePTrafficRecordsVsockMessaging) {
  Fixture f;
  auto kata = f.make(BlockPathCatalog::kata_9p());
  f.kernel.ftrace().start();
  kata.read(1, 0, 128 << 10, true, f.rng);
  const auto& reg = f.kernel.registry();
  EXPECT_GT(f.kernel.ftrace().count_of(reg.id_of("tcp_sendmsg")), 0u);
  EXPECT_GT(f.kernel.ftrace().count_of(reg.id_of("io_submit_one")), 0u);
}

}  // namespace
