// Tests for the workload implementations (Sections 3.1-3.5 generators).
#include <gtest/gtest.h>

#include "core/host_system.h"
#include "platforms/factory.h"
#include "workloads/ffmpeg_encode.h"
#include "workloads/fio.h"
#include "workloads/netbench.h"
#include "workloads/sysbench_cpu.h"
#include "workloads/tinymembench.h"

namespace {

using platforms::PlatformFactory;
using platforms::PlatformId;

struct Fixture : public ::testing::Test {
  core::HostSystem host;
  sim::Rng rng{321};
};

TEST_F(Fixture, SysbenchFindsCorrectPrimeCount) {
  const workloads::SysbenchCpu bench(100);
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  sim::Clock clock;
  const auto result = bench.run(*native, clock, rng);
  // Primes in [3, 100]: 24 of them (25 primes <= 100, minus 2).
  EXPECT_EQ(result.primes_found, 24u);
  EXPECT_EQ(result.candidates_checked, 98u);
  EXPECT_GT(clock.now(), 0);
}

TEST_F(Fixture, SysbenchParityAcrossPlatforms) {
  // Finding 1: every platform performs nearly equivalently.
  const workloads::SysbenchCpu bench(5'000);
  double min_eps = 1e18, max_eps = 0;
  for (auto& p : PlatformFactory::paper_lineup(host)) {
    sim::Clock clock;
    const double eps = bench.run(*p, clock, rng).events_per_second;
    min_eps = std::min(min_eps, eps);
    max_eps = std::max(max_eps, eps);
  }
  EXPECT_LT(max_eps / min_eps, 1.05);
}

TEST_F(Fixture, FfmpegMostPlatformsNear65s) {
  const workloads::FfmpegEncode bench;
  for (const auto id : {PlatformId::kNative, PlatformId::kDocker,
                        PlatformId::kQemuKvm, PlatformId::kKataContainers}) {
    auto p = PlatformFactory::create(id, host);
    sim::Clock clock;
    const auto result = bench.run(*p, clock, rng);
    EXPECT_NEAR(sim::to_millis(result.elapsed), 65'000, 5'000) << p->name();
  }
}

TEST_F(Fixture, FfmpegOsvSevereOutlier) {
  const workloads::FfmpegEncode bench;
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  auto osv = PlatformFactory::create(PlatformId::kOsvQemu, host);
  sim::Clock c1, c2;
  const auto n = bench.run(*native, c1, rng);
  const auto o = bench.run(*osv, c2, rng);
  EXPECT_GT(sim::to_millis(o.elapsed), sim::to_millis(n.elapsed) * 1.3);
}

TEST_F(Fixture, FfmpegFpsConsistentWithElapsed) {
  const workloads::FfmpegEncode bench;
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  sim::Clock clock;
  const auto result = bench.run(*native, clock, rng);
  EXPECT_NEAR(result.fps * sim::to_seconds(result.elapsed),
              bench.spec().frames, 1.0);
}

TEST_F(Fixture, TinyMemLatencySweepCoversPaperRange) {
  const workloads::TinyMemBench bench;
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  const auto points = bench.latency_sweep(*native, rng);
  ASSERT_EQ(points.size(), 11u);  // 2^16 .. 2^26
  EXPECT_EQ(points.front().buffer_bytes, 1ull << 16);
  EXPECT_EQ(points.back().buffer_bytes, 1ull << 26);
}

TEST_F(Fixture, FioUnsupportedPlatformsReportReason) {
  const workloads::Fio bench(
      workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead));
  auto fc = PlatformFactory::create(PlatformId::kFirecracker, host);
  sim::Clock clock;
  const auto fc_result = bench.run(*fc, clock, rng);
  EXPECT_FALSE(fc_result.supported);
  EXPECT_FALSE(fc_result.exclusion_reason.empty());

  auto osv = PlatformFactory::create(PlatformId::kOsvQemu, host);
  const auto osv_result = bench.run(*osv, clock, rng);
  EXPECT_FALSE(osv_result.supported);
}

TEST_F(Fixture, FioReadFasterThanWriteOnNative) {
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  sim::Clock clock;
  const workloads::Fio read_bench(
      workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead));
  const workloads::Fio write_bench(
      workloads::Fio::figure9_throughput(workloads::FioMode::kSeqWrite));
  const auto r = read_bench.run(*native, clock, rng);
  const auto w = write_bench.run(*native, clock, rng);
  EXPECT_GT(r.throughput_bytes_per_sec, w.throughput_bytes_per_sec);
}

TEST_F(Fixture, FioRandreadLatencyAboveSequentialPerRequest) {
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  sim::Clock clock;
  const workloads::Fio rand_bench(workloads::Fio::figure10_randread());
  const auto result = rand_bench.run(*native, clock, rng);
  ASSERT_TRUE(result.supported);
  // 4k randread at QD1 pays the full device base latency (~78 us).
  EXPECT_NEAR(result.latencies_us.summary().mean(), 79.0, 8.0);
}

TEST_F(Fixture, FioAdvancesClock) {
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  sim::Clock clock;
  const workloads::Fio bench(
      workloads::Fio::figure9_throughput(workloads::FioMode::kSeqRead));
  bench.run(*native, clock, rng);
  EXPECT_GT(clock.now(), 0);
}

TEST_F(Fixture, Iperf3MaxAtLeastMean) {
  const workloads::Iperf3 bench;
  auto docker = PlatformFactory::create(PlatformId::kDocker, host);
  sim::Clock clock;
  const auto result = bench.run(*docker, clock, rng);
  EXPECT_GE(result.max_gbps, result.mean_gbps);
  EXPECT_EQ(result.runs_gbps.size(), 5u);
}

TEST_F(Fixture, NetperfPercentilesOrdered) {
  const workloads::Netperf bench(500);
  auto qemu = PlatformFactory::create(PlatformId::kQemuKvm, host);
  sim::Clock clock;
  const auto result = bench.run(*qemu, clock, rng);
  EXPECT_LE(result.p50_us, result.p90_us);
  EXPECT_LE(result.p90_us, result.p99_us);
  EXPECT_GT(result.p50_us, 0.0);
}

// Parameterized sweep: fio block sizes scale throughput sensibly.
class FioBlockSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FioBlockSize, ThroughputGrowsWithBlockSize) {
  core::HostSystem host;
  sim::Rng rng(17);
  auto native = PlatformFactory::create(PlatformId::kNative, host);
  workloads::FioSpec small_spec;
  small_spec.block_bytes = 4 << 10;
  workloads::FioSpec large_spec;
  large_spec.block_bytes = GetParam();
  sim::Clock clock;
  const auto small = workloads::Fio(small_spec).run(*native, clock, rng);
  host.drop_caches();
  const auto large = workloads::Fio(large_spec).run(*native, clock, rng);
  EXPECT_GT(large.throughput_bytes_per_sec, small.throughput_bytes_per_sec);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FioBlockSize,
                         ::testing::Values(64 << 10, 128 << 10, 512 << 10,
                                           1 << 20));

}  // namespace
