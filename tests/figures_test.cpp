// Figure-level integration tests: every experiment function reproduces
// the paper's qualitative findings (who wins, rough factors, crossovers).
// These run the same code paths as the bench binaries, with reduced
// repetition counts for speed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/figures.h"

namespace {

using core::Bar;

const Bar& bar_of(const std::vector<Bar>& bars, const std::string& name) {
  for (const auto& b : bars) {
    if (b.platform == name) {
      return b;
    }
  }
  throw std::logic_error("no bar for " + name);
}

// --- Figure 5 / Finding 1 ----------------------------------------------

TEST(Figure5, MostPlatformsNear65Seconds) {
  const auto bars = core::figure5_ffmpeg(3);
  for (const auto& b : bars) {
    if (b.platform == "osv" || b.platform == "osv-fc" || b.platform == "gvisor") {
      continue;
    }
    EXPECT_NEAR(b.mean, 65'000, 6'000) << b.platform;
  }
}

TEST(Figure5, OsvSevereOutlier) {
  const auto bars = core::figure5_ffmpeg(3);
  EXPECT_GT(bar_of(bars, "osv").mean, bar_of(bars, "native").mean * 1.3);
  EXPECT_GT(bar_of(bars, "osv-fc").mean, bar_of(bars, "native").mean * 1.3);
}

TEST(Finding1, SysbenchCpuParity) {
  const auto bars = core::finding1_sysbench_cpu(3);
  double lo = 1e18, hi = 0;
  for (const auto& b : bars) {
    lo = std::min(lo, b.mean);
    hi = std::max(hi, b.mean);
  }
  EXPECT_LT(hi / lo, 1.04);
}

// --- Figures 6-8: memory ------------------------------------------------

TEST(Figure6, FirecrackerWorstLatencyAndVariance) {
  const auto curves = core::figure6_memory_latency(6);
  const auto find = [&](const std::string& name) -> const core::Curve& {
    for (const auto& c : curves) {
      if (c.platform == name) {
        return c;
      }
    }
    throw std::logic_error("missing curve " + name);
  };
  const auto& fc = find("firecracker");
  const auto& native = find("native");
  const auto& ch = find("cloud-hypervisor");
  const auto& kata = find("kata-containers");
  const auto& osv = find("osv");
  const std::size_t last = fc.y.size() - 1;
  // Finding 4: Firecracker substantially worst, CH elevated but weaker.
  EXPECT_GT(fc.y[last], native.y[last] * 1.2);
  EXPECT_GT(fc.y[last], ch.y[last]);
  EXPECT_GT(ch.y[last], native.y[last] * 1.02);
  EXPECT_GT(fc.yerr[last], native.yerr[last] * 1.5);
  // Finding 3: Kata (NVDIMM) and OSv/QEMU close to native.
  EXPECT_LT(kata.y[last], native.y[last] * 1.25);
  EXPECT_LT(osv.y[last], native.y[last] * 1.25);
  // Finding 5: OSv under Firecracker underperforms OSv under QEMU.
  EXPECT_GT(find("osv-fc").y[last], osv.y[last] * 1.1);
}

TEST(Figure6, LatencyGrowsWithBufferSize) {
  for (const auto& c : core::figure6_memory_latency(3)) {
    for (std::size_t i = 1; i < c.y.size(); ++i) {
      EXPECT_GE(c.y[i], c.y[i - 1] - 2.0) << c.platform << " @" << i;
    }
    EXPECT_GT(c.y.back(), c.y.front() + 40.0) << c.platform;
  }
}

TEST(Figure6, HugePagesRelieveLargeBuffers) {
  const auto regular = core::figure6_memory_latency(4);
  const auto huge = core::figure6_memory_latency(4, core::kFigureSeed, true);
  for (std::size_t i = 0; i < regular.size(); ++i) {
    if (regular[i].platform == "kata-containers") {
      continue;  // no HugePages support
    }
    // ~30% relief in the larger buffers (paper, Section 3.2).
    EXPECT_LT(huge[i].y.back(), regular[i].y.back() * 0.85)
        << regular[i].platform;
  }
}

TEST(Figure7, HypervisorThroughputPenalty) {
  const auto bars = core::figure7_memory_bandwidth(4);
  const auto find = [&](const std::string& n) {
    for (const auto& b : bars) {
      if (b.platform == n) {
        return b;
      }
    }
    throw std::logic_error("missing " + n);
  };
  const auto native = find("native");
  // Finding 4: Firecracker throughput clearly reduced; QEMU reduced;
  // CH throughput essentially fine; Kata & containers unimpaired.
  EXPECT_LT(find("firecracker").regular_mbps, native.regular_mbps * 0.85);
  EXPECT_LT(find("qemu-kvm").regular_mbps, native.regular_mbps * 0.93);
  EXPECT_GT(find("cloud-hypervisor").regular_mbps, native.regular_mbps * 0.90);
  EXPECT_GT(find("kata-containers").regular_mbps, native.regular_mbps * 0.93);
  EXPECT_GT(find("docker-oci").regular_mbps, native.regular_mbps * 0.95);
  // SSE2 copies are faster everywhere.
  for (const auto& b : bars) {
    EXPECT_GT(b.sse2_mbps, b.regular_mbps) << b.platform;
  }
}

TEST(Figure8, StreamShapeMatchesTinymem) {
  const auto bars = core::figure8_stream(4);
  EXPECT_LT(bar_of(bars, "firecracker").mean,
            bar_of(bars, "native").mean * 0.85);
  EXPECT_GT(bar_of(bars, "kata-containers").mean,
            bar_of(bars, "native").mean * 0.92);
  EXPECT_GT(bar_of(bars, "osv").mean, bar_of(bars, "native").mean * 0.92);
}

// --- Figures 9-10: I/O ----------------------------------------------------

TEST(Figure9, ExclusionsMatchPaper) {
  const auto bars = core::figure9_fio_throughput(2);
  std::map<std::string, bool> excluded;
  for (const auto& b : bars) {
    excluded[b.platform] = b.read.excluded;
  }
  EXPECT_TRUE(excluded.at("firecracker"));
  EXPECT_TRUE(excluded.at("osv"));
  EXPECT_TRUE(excluded.at("osv-fc"));
  EXPECT_FALSE(excluded.at("native"));
  EXPECT_FALSE(excluded.at("gvisor"));
}

TEST(Figure9, SecureContainersAtMostHalf) {
  const auto bars = core::figure9_fio_throughput(3);
  const auto find = [&](const std::string& n) {
    for (const auto& b : bars) {
      if (b.platform == n) {
        return b;
      }
    }
    throw std::logic_error("missing " + n);
  };
  const double native_read = find("native").read.mean;
  EXPECT_LT(find("kata-containers").read.mean, native_read * 0.5);
  EXPECT_LT(find("gvisor").read.mean, native_read * 0.5);
  EXPECT_LT(find("cloud-hypervisor").read.mean, native_read * 0.6);
  EXPECT_GT(find("docker-oci").read.mean, native_read * 0.9);
  EXPECT_GT(find("lxc").read.mean, native_read * 0.9);
  EXPECT_GT(find("qemu-kvm").read.mean, native_read * 0.9);
}

TEST(Figure10, LatencyShape) {
  const auto bars = core::figure10_fio_randread(3);
  EXPECT_TRUE(bar_of(bars, "gvisor").excluded);  // host-cache artifact
  const double native = bar_of(bars, "native").mean;
  const double qemu = bar_of(bars, "qemu-kvm").mean;
  const double ch = bar_of(bars, "cloud-hypervisor").mean;
  const double kata = bar_of(bars, "kata-containers").mean;
  EXPECT_GT(qemu, native * 1.15);  // hypervisors elevated
  EXPECT_LT(ch, qemu);             // CH remarkably good (Finding 9)
  EXPECT_GT(kata, qemu * 1.5);     // Kata exceptionally poor (9p)
}

// --- Figures 11-12: network ------------------------------------------------

TEST(Figure11, ThroughputAnchors) {
  const auto bars = core::figure11_iperf3();
  EXPECT_NEAR(bar_of(bars, "native").mean, 37.28, 1.2);
  EXPECT_NEAR(bar_of(bars, "osv").mean, 36.36, 1.2);
  const double native = bar_of(bars, "native").mean;
  EXPECT_NEAR(bar_of(bars, "docker-oci").mean / native, 0.9016, 0.03);
  EXPECT_NEAR(bar_of(bars, "lxc").mean / native, 0.9081, 0.03);
  EXPECT_NEAR(bar_of(bars, "osv").mean / bar_of(bars, "qemu-kvm").mean, 1.257,
              0.08);
  EXPECT_NEAR(bar_of(bars, "osv-fc").mean / bar_of(bars, "firecracker").mean,
              1.0653, 0.05);
  EXPECT_LT(bar_of(bars, "cloud-hypervisor").mean,
            bar_of(bars, "qemu-kvm").mean);
  EXPECT_LT(bar_of(bars, "gvisor").mean, 6.0);  // extreme outlier
}

TEST(Figure12, LatencyOrdering) {
  const auto bars = core::figure12_netperf();
  const double docker = bar_of(bars, "docker-oci").mean;
  const double lxc = bar_of(bars, "lxc").mean;
  const double kata = bar_of(bars, "kata-containers").mean;
  const double qemu = bar_of(bars, "qemu-kvm").mean;
  const double osv = bar_of(bars, "osv").mean;
  const double gv = bar_of(bars, "gvisor").mean;
  // Finding 10: bridges (Docker, Kata, LXC) perform very well.
  EXPECT_LT(docker, qemu);
  EXPECT_LT(lxc, qemu);
  EXPECT_LT(kata, qemu);
  // Finding 11: OSv slightly better than the hypervisors.
  EXPECT_LT(osv, qemu);
  // Finding 12: gVisor p90 3-4x competitors.
  EXPECT_GT(gv / docker, 2.5);
  EXPECT_LT(gv / docker, 5.5);
}

// --- Figures 13-15: startup -------------------------------------------------

const stats::SampleSet& cdf_of(const std::vector<core::CdfSeries>& series,
                               const std::string& name) {
  for (const auto& s : series) {
    if (s.platform == name) {
      return s.samples_ms;
    }
  }
  throw std::logic_error("missing series " + name);
}

TEST(Figure13, ContainerBootShape) {
  const auto series = core::figure13_container_boot(120);
  EXPECT_NEAR(cdf_of(series, "docker-oci").percentile(50), 100, 35);
  EXPECT_NEAR(cdf_of(series, "gvisor-oci").percentile(50), 190, 60);
  EXPECT_NEAR(cdf_of(series, "kata-oci").percentile(50), 600, 120);
  EXPECT_NEAR(cdf_of(series, "lxc").percentile(50), 800, 130);
  // The Docker daemon adds ~250 ms (Figure 13's OCI comparison).
  EXPECT_NEAR(cdf_of(series, "docker").percentile(50) -
                  cdf_of(series, "docker-oci").percentile(50),
              250, 60);
}

TEST(Figure14, HypervisorBootOrdering) {
  const auto series = core::figure14_hypervisor_boot(120);
  const double ch = cdf_of(series, "cloud-hypervisor").percentile(50);
  const double qemu = cdf_of(series, "qemu-kvm").percentile(50);
  const double qboot = cdf_of(series, "qemu-qboot").percentile(50);
  const double fc = cdf_of(series, "firecracker").percentile(50);
  const double uvm = cdf_of(series, "qemu-microvm").percentile(50);
  EXPECT_LT(ch, qboot);
  EXPECT_LT(qboot, qemu);
  EXPECT_LT(qemu, fc);     // Conclusion 5: FC not the fastest
  EXPECT_LT(fc, uvm);      // Finding 14: uVM unexpectedly slowest
  EXPECT_NEAR(fc, 350, 60);
}

TEST(Figure15, OsvOrderingInvertsAndMethodsSuperimpose) {
  const auto series = core::figure15_osv_boot(120);
  const double fc = cdf_of(series, "osv-firecracker(e2e)").percentile(50);
  const double uvm = cdf_of(series, "osv-qemu-microvm(e2e)").percentile(50);
  const double qemu = cdf_of(series, "osv-qemu(e2e)").percentile(50);
  EXPECT_LT(fc, uvm);
  EXPECT_LT(uvm, qemu);
  // Finding 16: the stdout method superimposes on end-to-end (1-2%).
  for (const auto* name : {"osv-firecracker", "osv-qemu-microvm", "osv-qemu"}) {
    const double e2e = cdf_of(series, std::string(name) + "(e2e)").percentile(50);
    const double sout =
        cdf_of(series, std::string(name) + "(stdout)").percentile(50);
    EXPECT_NEAR(sout / e2e, 0.985, 0.02) << name;
  }
}

// --- Figures 16-17: applications --------------------------------------------

TEST(Figure16, MemcachedShape) {
  const auto bars = core::figure16_memcached(3);
  const double native = bar_of(bars, "native").mean;
  const double docker = bar_of(bars, "docker-oci").mean;
  const double lxc = bar_of(bars, "lxc").mean;
  const double qemu = bar_of(bars, "qemu-kvm").mean;
  const double fc = bar_of(bars, "firecracker").mean;
  const double ch = bar_of(bars, "cloud-hypervisor").mean;
  const double kata = bar_of(bars, "kata-containers").mean;
  const double gv = bar_of(bars, "gvisor").mean;
  // Finding 17: containers on top; the newer the hypervisor the worse.
  EXPECT_GT(docker, qemu);
  EXPECT_GT(lxc, qemu);
  EXPECT_GT(qemu, fc);
  EXPECT_GT(fc, ch);
  EXPECT_LT(docker, native * 1.02);
  // Finding 18: Kata surprisingly low.
  EXPECT_LT(kata, ch * 0.7);
  // Finding 19: gVisor poor (network).
  EXPECT_LT(gv, docker * 0.35);
}

TEST(Figure17, OltpThreeGroups) {
  const auto curves = core::figure17_mysql_oltp(2);
  const auto find = [&](const std::string& n) -> const core::Curve& {
    for (const auto& c : curves) {
      if (c.platform == n) {
        return c;
      }
    }
    throw std::logic_error("missing " + n);
  };
  const auto peak = [](const core::Curve& c) {
    return *std::max_element(c.y.begin(), c.y.end());
  };
  const double docker = peak(find("docker-oci"));
  const double lxc = peak(find("lxc"));
  const double qemu = peak(find("qemu-kvm"));
  const double fc = peak(find("firecracker"));
  const double kata = peak(find("kata-containers"));
  const double gv = peak(find("gvisor"));
  const double osv = peak(find("osv"));
  const double native = peak(find("native"));
  // Group 1 severely low.
  EXPECT_LT(gv, docker * 0.45);
  EXPECT_LT(osv, docker * 0.45);
  // Group 2 around half.
  EXPECT_LT(fc, docker * 0.75);
  EXPECT_LT(kata, docker * 0.85);
  EXPECT_GT(fc, gv);
  // Group 3 alike; native without a significant margin.
  EXPECT_NEAR(lxc / docker, 1.0, 0.15);
  EXPECT_NEAR(qemu / docker, 1.0, 0.25);
  EXPECT_LT(native / docker, 1.6);
}

TEST(Figure17, PeakPositions) {
  const auto curves = core::figure17_mysql_oltp(2);
  for (const auto& c : curves) {
    const auto it = std::max_element(c.y.begin(), c.y.end());
    const double peak_threads = c.x[static_cast<std::size_t>(
        it - c.y.begin())];
    if (c.platform == "native") {
      EXPECT_GE(peak_threads, 80) << "native peaks late (~110)";
    } else if (c.platform == "gvisor" || c.platform == "osv" ||
               c.platform == "osv-fc") {
      EXPECT_LE(peak_threads, 40) << c.platform << " flat/declining";
    } else {
      EXPECT_GE(peak_threads, 40) << c.platform;
      EXPECT_LE(peak_threads, 80) << c.platform;
    }
  }
}

// --- Figure 18: HAP ---------------------------------------------------------

TEST(Figure18, HapOrdering) {
  const auto scores = core::figure18_hap();
  std::map<std::string, double> breadth;
  std::map<std::string, double> extended;
  for (const auto& s : scores) {
    breadth[s.platform] = s.hap_breadth;
    extended[s.platform] = s.extended_hap;
  }
  // Finding 24: Firecracker calls into the host most.
  for (const auto& [name, b] : breadth) {
    if (name != "firecracker") {
      EXPECT_GT(breadth.at("firecracker"), b) << name;
    }
  }
  // Finding 25: Cloud Hypervisor very few.
  EXPECT_LT(breadth.at("cloud-hypervisor"), breadth.at("qemu-kvm") * 0.55);
  // Finding 26: secure containers high vs regular containers.
  EXPECT_GT(breadth.at("kata-containers"), breadth.at("docker-oci"));
  EXPECT_GT(breadth.at("gvisor"), breadth.at("docker-oci"));
  // Finding 27 / Conclusion 8: OSv least.
  for (const auto& [name, b] : breadth) {
    if (name != "osv" && name != "osv-fc") {
      EXPECT_LE(breadth.at("osv"), b) << name;
    }
  }
  // The extended metric preserves the headline ordering.
  EXPECT_GT(extended.at("firecracker"), extended.at("kata-containers"));
  EXPECT_GT(extended.at("kata-containers"), extended.at("docker-oci"));
  EXPECT_LT(extended.at("osv"), extended.at("cloud-hypervisor") * 1.1);
}

}  // namespace
