// Tests for the Platform public API: factory, capabilities, profiles,
// boot integration and HAP-visible workload recording.
#include <gtest/gtest.h>

#include <set>

#include "platforms/container_platforms.h"
#include "platforms/factory.h"
#include "platforms/hypervisor_platforms.h"
#include "platforms/osv_platform.h"
#include "platforms/secure_platforms.h"
#include "sim/clock.h"

namespace {

using platforms::FactoryOptions;
using platforms::Platform;
using platforms::PlatformFactory;
using platforms::PlatformId;
using platforms::WorkloadClass;

class PlatformFixture : public ::testing::Test {
 protected:
  core::HostSystem host;
  sim::Rng rng{99};
};

TEST_F(PlatformFixture, PaperLineupHasTenPlatforms) {
  const auto lineup = PlatformFactory::paper_lineup(host);
  EXPECT_EQ(lineup.size(), 10u);
  std::set<std::string> names;
  for (const auto& p : lineup) {
    EXPECT_TRUE(names.insert(p->name()).second) << "duplicate " << p->name();
  }
}

TEST_F(PlatformFixture, EveryPlatformBoots) {
  for (const auto& p : PlatformFactory::paper_lineup(host)) {
    sim::Clock clock;
    const auto result = p->boot(clock, rng);
    EXPECT_GT(result.total, 0) << p->name();
    EXPECT_EQ(clock.now(), result.total) << p->name();
    EXPECT_FALSE(result.stages.empty()) << p->name();
  }
}

TEST_F(PlatformFixture, CapabilitiesMatchPaperExclusions) {
  const auto fc = PlatformFactory::create(PlatformId::kFirecracker, host);
  EXPECT_FALSE(fc->capabilities().extra_disk);
  // The root drive exists, but no dedicated benchmark disk can be added.
  EXPECT_NE(fc->block(), nullptr);

  const auto osv = PlatformFactory::create(PlatformId::kOsvQemu, host);
  EXPECT_FALSE(osv->capabilities().libaio);
  EXPECT_FALSE(osv->capabilities().fork_exec);

  const auto kata = PlatformFactory::create(PlatformId::kKataContainers, host);
  EXPECT_FALSE(kata->capabilities().hugepages);

  const auto docker = PlatformFactory::create(PlatformId::kDocker, host);
  EXPECT_TRUE(docker->capabilities().extra_disk);
  EXPECT_TRUE(docker->capabilities().fork_exec);
}

TEST_F(PlatformFixture, MemoryProfilesMatchArchitecture) {
  const auto native = PlatformFactory::create(PlatformId::kNative, host);
  EXPECT_FALSE(native->memory_profile().ept);
  const auto qemu = PlatformFactory::create(PlatformId::kQemuKvm, host);
  EXPECT_TRUE(qemu->memory_profile().ept);
  EXPECT_EQ(qemu->memory_profile().backing_extra_ns, 0.0);
  const auto fc = PlatformFactory::create(PlatformId::kFirecracker, host);
  EXPECT_GT(fc->memory_profile().backing_extra_ns, 0.0);
  const auto kata = PlatformFactory::create(PlatformId::kKataContainers, host);
  EXPECT_EQ(kata->memory_profile().backing_extra_ns, 0.0);  // NVDIMM direct
  EXPECT_FALSE(kata->memory_profile().hugepage_support);
}

TEST_F(PlatformFixture, CpuProfilesSeparateCustomSchedulers) {
  const auto native = PlatformFactory::create(PlatformId::kNative, host);
  const auto osv = PlatformFactory::create(PlatformId::kOsvQemu, host);
  const auto gv = PlatformFactory::create(PlatformId::kGvisor, host);
  EXPECT_GT(osv->cpu_profile().sched_alpha, native->cpu_profile().sched_alpha * 5);
  EXPECT_GT(gv->cpu_profile().futex_cost_factor, 3.0);
  // Finding 1: scalar single-thread work is free everywhere.
  for (const auto& p : PlatformFactory::paper_lineup(host)) {
    EXPECT_DOUBLE_EQ(p->cpu_profile().scalar_factor, 1.0) << p->name();
  }
}

TEST_F(PlatformFixture, SyncSyscallCostOrdering) {
  const auto native = PlatformFactory::create(PlatformId::kNative, host);
  const auto gv = PlatformFactory::create(PlatformId::kGvisor, host);
  const auto osv = PlatformFactory::create(PlatformId::kOsvQemu, host);
  double native_sum = 0, gv_sum = 0, osv_sum = 0;
  for (int i = 0; i < 200; ++i) {
    native_sum += static_cast<double>(native->sync_syscall_cost(rng));
    gv_sum += static_cast<double>(gv->sync_syscall_cost(rng));
    osv_sum += static_cast<double>(osv->sync_syscall_cost(rng));
  }
  // gVisor pays interception on every syscall; OSv pays contended handoffs.
  EXPECT_GT(gv_sum, native_sum * 2);
  EXPECT_GT(osv_sum, native_sum * 2);
}

TEST_F(PlatformFixture, WorkloadRecordingProducesTrace) {
  for (const auto& p : PlatformFactory::paper_lineup(host)) {
    host.kernel().ftrace().start();
    for (const auto w :
         {WorkloadClass::kCpu, WorkloadClass::kMemory, WorkloadClass::kIo,
          WorkloadClass::kNetwork, WorkloadClass::kStartup}) {
      p->record_workload(w, rng);
    }
    EXPECT_GT(host.kernel().ftrace().distinct_functions(), 30u) << p->name();
    host.kernel().ftrace().stop();
  }
}

TEST_F(PlatformFixture, FirecrackerWidestHostInterface) {
  // Finding 24: Firecracker calls into the host kernel most often.
  std::size_t fc_fns = 0, qemu_fns = 0, ch_fns = 0;
  for (const auto id : {PlatformId::kFirecracker, PlatformId::kQemuKvm,
                        PlatformId::kCloudHypervisor}) {
    const auto p = PlatformFactory::create(id, host);
    host.kernel().ftrace().start();
    for (const auto w :
         {WorkloadClass::kCpu, WorkloadClass::kMemory, WorkloadClass::kIo,
          WorkloadClass::kNetwork, WorkloadClass::kStartup}) {
      p->record_workload(w, rng);
    }
    const std::size_t fns = host.kernel().ftrace().distinct_functions();
    host.kernel().ftrace().stop();
    if (id == PlatformId::kFirecracker) fc_fns = fns;
    if (id == PlatformId::kQemuKvm) qemu_fns = fns;
    if (id == PlatformId::kCloudHypervisor) ch_fns = fns;
  }
  EXPECT_GT(fc_fns, qemu_fns);
  EXPECT_LT(ch_fns, qemu_fns);  // Finding 25
}

TEST_F(PlatformFixture, KataVirtioFsOptionChangesBlockPath) {
  FactoryOptions ninep;
  FactoryOptions vfs;
  vfs.kata_shared_fs = storage::SharedFsProtocol::kVirtioFs;
  const auto kata_9p =
      PlatformFactory::create(PlatformId::kKataContainers, host, ninep);
  const auto kata_vfs =
      PlatformFactory::create(PlatformId::kKataContainers, host, vfs);
  EXPECT_EQ(kata_9p->block()->spec().shared_fs,
            storage::SharedFsProtocol::kNineP);
  EXPECT_EQ(kata_vfs->block()->spec().shared_fs,
            storage::SharedFsProtocol::kVirtioFs);
}

TEST_F(PlatformFixture, GvisorKvmPlatformCheaperInterception) {
  platforms::GvisorPlatform ptrace_gv(host, securec::GvisorPlatform::kPtrace);
  platforms::GvisorPlatform kvm_gv(host, securec::GvisorPlatform::kKvm);
  double ptrace_sum = 0, kvm_sum = 0;
  for (int i = 0; i < 300; ++i) {
    ptrace_sum += static_cast<double>(ptrace_gv.sentry().interception_cost(rng));
    kvm_sum += static_cast<double>(kvm_gv.sentry().interception_cost(rng));
  }
  EXPECT_GT(ptrace_sum, kvm_sum * 2);  // "KVM mode ought to be faster"
}

TEST_F(PlatformFixture, OsvRejectsForkingApps) {
  platforms::OsvPlatform osv(host, platforms::OsvHypervisor::kQemu);
  unikernel::AppImage forking{.name = "postgres", .uses_fork = true};
  EXPECT_EQ(osv.can_run(forking), unikernel::LoadResult::kRequiresFork);
  unikernel::AppImage nonpie{.name = "static-app", .position_independent = false};
  EXPECT_EQ(osv.can_run(nonpie), unikernel::LoadResult::kNotRelocatable);
  unikernel::AppImage good{.name = "redis"};
  EXPECT_EQ(osv.can_run(good), unikernel::LoadResult::kOk);
}

TEST_F(PlatformFixture, DockerDaemonSlowerThanOci) {
  platforms::DockerPlatform oci(host, /*via_daemon=*/false);
  platforms::DockerPlatform daemon(host, /*via_daemon=*/true);
  EXPECT_GT(daemon.boot_timeline().mean_total(),
            oci.boot_timeline().mean_total() + sim::millis(150));
}

TEST_F(PlatformFixture, KataBootDominatedByVmAndAgent) {
  const auto kata = PlatformFactory::create(PlatformId::kKataContainers, host);
  // Figure 13: Kata around 600 ms.
  EXPECT_NEAR(sim::to_millis(kata->boot_timeline().mean_total()), 600.0, 120.0);
}

TEST_F(PlatformFixture, GvisorBootAround190ms) {
  const auto gv = PlatformFactory::create(PlatformId::kGvisor, host);
  EXPECT_NEAR(sim::to_millis(gv->boot_timeline().mean_total()), 190.0, 60.0);
}

TEST_F(PlatformFixture, PlatformIdNamesUnique) {
  std::set<std::string> names;
  for (const auto id :
       {PlatformId::kNative, PlatformId::kDocker, PlatformId::kLxc,
        PlatformId::kQemuKvm, PlatformId::kFirecracker,
        PlatformId::kCloudHypervisor, PlatformId::kKataContainers,
        PlatformId::kGvisor, PlatformId::kOsvQemu,
        PlatformId::kOsvFirecracker}) {
    EXPECT_TRUE(names.insert(platforms::platform_id_name(id)).second);
  }
}

}  // namespace
