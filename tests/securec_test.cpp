// Tests for the secure-container components: Kata's ttRPC/vsock control
// plane (including failure injection), the Sentry/Gofer split, seccomp
// confinement, and the hotplug lifecycle of Cloud Hypervisor.
#include <gtest/gtest.h>

#include "hostk/host_kernel.h"
#include "securec/gvisor.h"
#include "securec/kata.h"
#include "sim/clock.h"
#include "stats/summary.h"
#include "vmm/hotplug.h"
#include "vmm/vm.h"

namespace {

using securec::Gofer;
using securec::GvisorPlatform;
using securec::KataRuntime;
using securec::KataSpec;
using securec::Sentry;
using securec::SentrySpec;
using securec::TtRpcChannel;
using vmm::HotplugController;
using vmm::HotplugStatus;

struct Fixture : public ::testing::Test {
  hostk::HostKernel kernel;
  sim::Rng rng{808};
};

// --- ttRPC / vsock -------------------------------------------------------

TEST_F(Fixture, TtRpcCallCostsAndCounts) {
  TtRpcChannel channel(kernel);
  const auto cost = channel.call(4096, rng);
  EXPECT_GT(cost, 0);
  EXPECT_EQ(channel.calls_made(), 1u);
  EXPECT_EQ(channel.retries_performed(), 0u);
}

TEST_F(Fixture, TtRpcLargePayloadsFragment) {
  TtRpcChannel channel(kernel);
  kernel.ftrace().start();
  channel.call(1 << 20, rng);  // 1 MiB -> 16 vsock frames
  const auto& reg = kernel.registry();
  EXPECT_GE(kernel.ftrace().count_of(reg.id_of("virtio_transport_send_pkt")),
            16u);
}

TEST_F(Fixture, TtRpcDropsAreRetriedWithDeadlineCost) {
  TtRpcChannel lossy(kernel);
  lossy.set_drop_probability(0.5);
  lossy.set_max_retries(24);  // make total failure vanishingly unlikely
  stats::Summary costs;
  for (int i = 0; i < 200; ++i) {
    costs.add(static_cast<double>(lossy.call(4096, rng)));
  }
  EXPECT_GT(lossy.retries_performed(), 30u);
  // Deadline waits make lossy calls far dearer than clean ones.
  TtRpcChannel clean(kernel);
  stats::Summary clean_costs;
  for (int i = 0; i < 200; ++i) {
    clean_costs.add(static_cast<double>(clean.call(4096, rng)));
  }
  EXPECT_GT(costs.mean(), clean_costs.mean() * 5);
}

TEST_F(Fixture, TtRpcDeadChannelThrows) {
  TtRpcChannel dead(kernel);
  dead.set_drop_probability(1.0);
  dead.set_max_retries(2);
  EXPECT_THROW(dead.call(4096, rng), std::runtime_error);
}

// --- Kata runtime --------------------------------------------------------

TEST_F(Fixture, KataExecForwardsThroughAgent) {
  KataRuntime runtime(KataSpec{}, kernel);
  sim::Clock clock;
  kernel.ftrace().start();
  runtime.exec_in_guest(clock, rng);
  EXPECT_GT(clock.now(), 0);
  EXPECT_EQ(runtime.channel().calls_made(), 1u);
  // The exec travels over vsock, not via host namespaces (unlike runc).
  const auto& reg = kernel.registry();
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("vsock_stream_sendmsg")), 0u);
  EXPECT_EQ(kernel.ftrace().count_of(reg.id_of("pidns_install")), 0u);
}

TEST_F(Fixture, KataBootTraceShowsDefenseInDepthSplit) {
  KataRuntime runtime(KataSpec{}, kernel);
  kernel.ftrace().start();
  runtime.record_boot(rng);
  const auto& reg = kernel.registry();
  // Host sees KVM setup and the shared mount...
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("kvm_vm_ioctl_create_vcpu")), 0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("attach_recursive_mnt")), 0u);
  // ...but NOT the in-guest namespace creation (that happens inside the VM).
  EXPECT_EQ(kernel.ftrace().count_of(reg.id_of("create_pid_namespace")), 0u);
}

TEST_F(Fixture, KataDaemonVariantAddsDaemonStages) {
  KataRuntime direct(KataSpec{}, kernel);
  KataRuntime via_daemon(KataSpec{.shared_fs = storage::SharedFsProtocol::kNineP,
                                  .via_docker_daemon = true},
                         kernel);
  EXPECT_GT(via_daemon.boot_timeline().mean_total(),
            direct.boot_timeline().mean_total() + sim::millis(150));
}

TEST_F(Fixture, KataVirtioFsNamesItsMountStage) {
  KataRuntime vfs(KataSpec{.shared_fs = storage::SharedFsProtocol::kVirtioFs},
                  kernel);
  const auto timeline = vfs.boot_timeline();
  bool found = false;
  for (const auto& stage : timeline.stages()) {
    found |= stage.name == "kata:share-rootfs-virtio-fs";
  }
  EXPECT_TRUE(found);
}

// --- Sentry / Gofer ------------------------------------------------------

TEST_F(Fixture, SentryInternalSyscallAvoidsHostVfs) {
  Sentry sentry(SentrySpec{}, kernel);
  kernel.ftrace().start();
  sentry.serve_internal(rng);
  const auto& reg = kernel.registry();
  // Interception machinery visible; no host file I/O.
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("ptrace_stop")), 0u);
  EXPECT_EQ(kernel.ftrace().count_of(reg.id_of("vfs_read")), 0u);
}

TEST_F(Fixture, GoferDoesTheHostVfsWork) {
  Gofer gofer(kernel);
  kernel.ftrace().start();
  gofer.handle_request(128 << 10, rng);
  const auto& reg = kernel.registry();
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("vfs_read")), 0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("path_openat")), 0u);
}

TEST_F(Fixture, GoferPathCostsDominateInterception) {
  Sentry sentry(SentrySpec{}, kernel);
  stats::Summary internal, via_gofer;
  for (int i = 0; i < 300; ++i) {
    internal.add(static_cast<double>(sentry.serve_internal(rng)));
    via_gofer.add(static_cast<double>(sentry.serve_via_gofer(128 << 10, rng)));
  }
  // Finding 8: the 9p detour, not interception, dominates I/O cost.
  EXPECT_GT(via_gofer.mean(), internal.mean() * 5);
}

TEST_F(Fixture, KvmPlatformAddsVmSetupStage) {
  Sentry ptrace_sentry(SentrySpec{.platform = GvisorPlatform::kPtrace}, kernel);
  Sentry kvm_sentry(SentrySpec{.platform = GvisorPlatform::kKvm}, kernel);
  EXPECT_GT(kvm_sentry.boot_timeline().stages().size(),
            ptrace_sentry.boot_timeline().stages().size());
}

// --- Hotplug (Section 2.1.3) ----------------------------------------------

struct HotplugFixture : public Fixture {
  vmm::Vm ch_vm{vmm::VmmCatalog::cloud_hypervisor(), kernel};
  vmm::Vm fc_vm{vmm::VmmCatalog::firecracker(), kernel};
  sim::Clock clock;
};

TEST_F(HotplugFixture, MemoryHotplugHappyPath) {
  HotplugController hp(ch_vm, kernel, /*host_ram=*/256ull << 30);
  const auto before = hp.guest_ram_bytes();
  EXPECT_EQ(hp.hotplug_memory(256ull << 20, clock, rng), HotplugStatus::kOk);
  EXPECT_EQ(hp.guest_ram_bytes(), before + (256ull << 20));
  EXPECT_GT(clock.now(), 0);
}

TEST_F(HotplugFixture, MemoryMustBeMultipleOf128MiB) {
  HotplugController hp(ch_vm, kernel, 256ull << 30);
  EXPECT_EQ(hp.hotplug_memory(100ull << 20, clock, rng),
            HotplugStatus::kBadGranularity);
  EXPECT_EQ(hp.hotplug_memory(0, clock, rng), HotplugStatus::kBadGranularity);
}

TEST_F(HotplugFixture, MemoryBoundedByHostRam) {
  HotplugController hp(ch_vm, kernel, /*host_ram=*/8ull << 30);
  EXPECT_EQ(hp.hotplug_memory(8ull << 30, clock, rng),
            HotplugStatus::kExceedsHostRam);
}

TEST_F(HotplugFixture, FirecrackerCannotHotplug) {
  HotplugController hp(fc_vm, kernel, 256ull << 30);
  EXPECT_EQ(hp.hotplug_memory(128ull << 20, clock, rng),
            HotplugStatus::kUnsupported);
  EXPECT_EQ(hp.hotplug_vcpu(clock, rng), HotplugStatus::kUnsupported);
}

TEST_F(HotplugFixture, VcpuNeedsManualOnline) {
  HotplugController hp(ch_vm, kernel, 256ull << 30);
  const int initial = hp.online_vcpus();
  EXPECT_EQ(hp.hotplug_vcpu(clock, rng), HotplugStatus::kOk);
  // Advertised but not yet usable (the paper's sysfs step).
  EXPECT_EQ(hp.online_vcpus(), initial);
  EXPECT_EQ(hp.standby_vcpus(), 1);
  EXPECT_EQ(hp.online_vcpu(clock, rng), HotplugStatus::kOk);
  EXPECT_EQ(hp.online_vcpus(), initial + 1);
  EXPECT_EQ(hp.standby_vcpus(), 0);
}

TEST_F(HotplugFixture, OnlineWithoutHotplugFails) {
  HotplugController hp(ch_vm, kernel, 256ull << 30);
  EXPECT_EQ(hp.online_vcpu(clock, rng), HotplugStatus::kNoStandbyVcpu);
}

TEST_F(HotplugFixture, HotplugSyscallsAreTraced) {
  HotplugController hp(ch_vm, kernel, 256ull << 30);
  kernel.ftrace().start();
  hp.hotplug_memory(128ull << 20, clock, rng);
  hp.hotplug_vcpu(clock, rng);
  const auto& reg = kernel.registry();
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("__kvm_set_memory_region")), 0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("kvm_vm_ioctl_create_vcpu")), 0u);
}

}  // namespace
